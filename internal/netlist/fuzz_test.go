package netlist

import (
	"strings"
	"testing"

	"repro/internal/tech"
)

// FuzzReadSim checks that arbitrary input never panics the parser and
// that anything it accepts passes the structural checker and survives a
// write/re-read round trip.
func FuzzReadSim(f *testing.F) {
	seeds := []string{
		sampleSim,
		"| units: 100 tech: nmos\ne a b c\n",
		"e g s d 2 2\nd o Vdd o 8 2\np g a b 2 4\n",
		"C a b 10\nN a 5\n= a b\n@ in a\n@ out b\n",
		"@ flow a>b 0\n",
		"e g a b 2 2\n@ flow b>a 0\n@ precharged a\n",
		"r a b 5000\nC b GND 100\n",
		"",
		"| just a comment\n",
		"N x 1e300\n",
		"e g a b 99999999 1\n",
		// Alias cycle: `resolve` used to chase this pair forever.
		"= a b\n= b a\nN a 1\n",
		"= a a\nN a 1\n",
		"= x y\nN y 2\n= y x\nN x 3\n",
		// Two-phase intern reconciliation: with the 8-byte chunk floor
		// these split across chunks, so the same symbol is tokenized by
		// several workers and must reconcile to one canonical string.
		// One name repeated in every chunk:
		"N aa 1\nN aa 2\nN aa 3\nN aa 4\nN aa 5\nN aa 6\n",
		// Alias whose two sides first appear in different chunks, with
		// devices referencing both spellings afterwards:
		"e node_alpha x0 y0\ne node_beta x1 y1\n= node_alpha node_beta\nN node_beta 7\n",
		// Many distinct names (spread across intern shards), then reuse
		// of every one of them from a later chunk:
		"e a0 b0 c0\ne a1 b1 c1\ne a2 b2 c2\ne a3 b3 c3\ne c3 b2 a1\ne c0 b1 a2\n",
		// Rails interned from every chunk alongside locals:
		"e g1 Vdd n1\ne g2 GND n2\ne g3 Vdd n1\ne g4 GND n2\n",
		// Alias chain whose links land in separate chunks:
		"= p q\n= q r\n= r s\nN s 9\ne p s GND\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	p := tech.NMOS4()
	f.Fuzz(func(t *testing.T, input string) {
		nw, err := ReadSim("fuzz", p, strings.NewReader(input))
		// The parallel parser must agree with the serial one on every
		// input, accepted or rejected — same network, same error text.
		// A chunk floor of 8 bytes forces real multi-chunk merges even
		// on fuzz-sized inputs.
		pnw, perr := readSimChunked("fuzz", p, strings.NewReader(input), 3, 8)
		if (err == nil) != (perr == nil) {
			t.Fatalf("serial/parallel disagree on acceptance: %v vs %v\ninput:\n%s", err, perr, input)
		}
		if err != nil {
			if err.Error() != perr.Error() {
				t.Fatalf("serial/parallel error mismatch:\n  serial:   %v\n  parallel: %v\ninput:\n%s", err, perr, input)
			}
			return // rejected inputs are fine; panics are not
		}
		if derr := DiffNetworks(nw, pnw); derr != nil {
			t.Fatalf("serial/parallel network mismatch: %v\ninput:\n%s", derr, input)
		}
		if err := nw.Check(); err != nil {
			// The parser accepted something structurally invalid. The
			// only known case is a supply short, which the format can
			// express; everything else is a parser bug.
			if !strings.Contains(err.Error(), "shorts the supplies") {
				t.Fatalf("accepted netlist fails Check: %v\ninput:\n%s", err, input)
			}
			return
		}
		var sb strings.Builder
		if err := WriteSim(&sb, nw); err != nil {
			t.Fatalf("WriteSim failed on accepted netlist: %v", err)
		}
		if _, err := ReadSim("fuzz2", p, strings.NewReader(sb.String())); err != nil {
			t.Fatalf("round trip failed: %v\nwritten:\n%s", err, sb.String())
		}
	})
}
