package core

import (
	"strings"
	"testing"

	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

func analyticModel(p *tech.Params, name string) delay.Model {
	m, err := delay.ByName(name, delay.AnalyticTables(p))
	if err != nil {
		panic(err)
	}
	return m
}

// runChain analyzes an n-stage inverter chain and returns the worst
// arrival at "out".
func runChain(t *testing.T, p *tech.Params, n int, model string) float64 {
	t.Helper()
	nw, err := gen.InverterChain(p, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := New(nw, analyticModel(p, model), Options{})
	if err := a.SetInputEventName("in", tech.Rise, 0, 1e-9); err != nil {
		t.Fatal(err)
	}
	if err := a.SetInputEventName("in", tech.Fall, 0, 1e-9); err != nil {
		t.Fatal(err)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	out := nw.Lookup("out")
	worst := 0.0
	for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
		if ev := a.Arrival(out, tr); ev.Valid && ev.T > worst {
			worst = ev.T
		}
	}
	if worst == 0 {
		t.Fatal("no arrival at chain output")
	}
	return worst
}

func TestInverterChainDelayGrowsLinearly(t *testing.T) {
	p := tech.NMOS4()
	d2 := runChain(t, p, 2, "rc")
	d4 := runChain(t, p, 4, "rc")
	d8 := runChain(t, p, 8, "rc")
	if !(d2 < d4 && d4 < d8) {
		t.Fatalf("chain delays not increasing: %g %g %g", d2, d4, d8)
	}
	// Doubling the chain should roughly double the delay (within 40%:
	// first-stage input slope differs from steady state).
	ratio := d8 / d4
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("8/4 chain delay ratio = %g, want ≈ 2", ratio)
	}
}

func TestChainBothTechnologies(t *testing.T) {
	for _, p := range []*tech.Params{tech.NMOS4(), tech.CMOS3()} {
		for _, m := range []string{"lumped", "rc", "slope"} {
			d := runChain(t, p, 4, m)
			if d <= 0 || d > 1e-6 {
				t.Errorf("%s/%s: chain delay %g s out of plausible range", p.Name, m, d)
			}
		}
	}
}

func TestCriticalPathTracesToInput(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.RippleAdder(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := New(nw, analyticModel(p, "slope"), Options{})
	for _, in := range nw.Inputs() {
		a.SetInputEvent(in, tech.Rise, 0, 0)
		a.SetInputEvent(in, tech.Fall, 0, 0)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	paths := a.CriticalPaths(3)
	if len(paths) == 0 {
		t.Fatal("no critical paths found")
	}
	for _, path := range paths {
		first := path.Hops[0]
		if first.Node.Kind != netlist.KindInput {
			t.Errorf("path starts at %s (%v), want an input", first.Node.Name, first.Node.Kind)
		}
		if first.Event.Via != nil {
			t.Error("first hop should be a seeded event")
		}
		// Times must be non-decreasing along the path.
		for i := 1; i < len(path.Hops); i++ {
			if path.Hops[i].Event.T < path.Hops[i-1].Event.T {
				t.Errorf("path time decreases at hop %d", i)
			}
		}
	}
	// The adder's critical path should end at the top sum or carry.
	end := paths[0].End().Node.Name
	if end != "cout" && end != "s3" {
		t.Logf("note: critical endpoint is %s (cout/s3 expected for ripple carry)", end)
	}
}

func TestAdderCriticalPathScalesWithWidth(t *testing.T) {
	p := tech.NMOS4()
	measure := func(w int) float64 {
		nw, err := gen.RippleAdder(p, w)
		if err != nil {
			t.Fatal(err)
		}
		a := New(nw, analyticModel(p, "rc"), Options{})
		for _, in := range nw.Inputs() {
			a.SetInputEvent(in, tech.Rise, 0, 0)
			a.SetInputEvent(in, tech.Fall, 0, 0)
		}
		if err := a.Run(); err != nil {
			t.Fatal(err)
		}
		ev, _ := a.MaxArrival()
		if !ev.Valid {
			t.Fatal("no arrival")
		}
		return ev.T
	}
	d2, d4, d8 := measure(2), measure(4), measure(8)
	if !(d2 < d4 && d4 < d8) {
		t.Fatalf("ripple delay not increasing with width: %g %g %g", d2, d4, d8)
	}
}

func TestLumpedPessimisticOnPassChain(t *testing.T) {
	p := tech.NMOS4()
	worst := func(model string, n int) float64 {
		nw, err := gen.PassChain(p, n)
		if err != nil {
			t.Fatal(err)
		}
		a := New(nw, analyticModel(p, model), Options{})
		// Control already high; data transitions.
		a.SetFixed(nw.Lookup("ctl"), switchsim.V1)
		a.SetInputEventName("in", tech.Rise, 0, 0)
		a.SetInputEventName("in", tech.Fall, 0, 0)
		if err := a.Run(); err != nil {
			t.Fatal(err)
		}
		out := nw.Lookup("out")
		w := 0.0
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			if ev := a.Arrival(out, tr); ev.Valid && ev.T > w {
				w = ev.T
			}
		}
		if w == 0 {
			t.Fatalf("no arrival at pass chain output (model %s)", model)
		}
		return w
	}
	for _, n := range []int{4, 8} {
		l := worst("lumped", n)
		r := worst("rc", n)
		if l < r {
			t.Errorf("n=%d: lumped (%g) should be ≥ distributed (%g)", n, l, r)
		}
		// Asymptotically lumped/rc → 2 for a uniform chain; with side
		// loading and end effects expect meaningfully > 1.2 at n=8.
		if n == 8 && l/r < 1.2 {
			t.Errorf("n=8: lumped/rc ratio %g, want > 1.2", l/r)
		}
	}
}

func TestSlopeModelRespondsToInputSlope(t *testing.T) {
	p := tech.NMOS4()
	arrive := func(model string, slope float64) float64 {
		nw, err := gen.FanoutInverter(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		a := New(nw, analyticModel(p, model), Options{})
		a.SetInputEventName("in", tech.Rise, 0, slope)
		if err := a.Run(); err != nil {
			t.Fatal(err)
		}
		ev := a.Arrival(nw.Lookup("out"), tech.Fall)
		if !ev.Valid {
			t.Fatal("no fall arrival at inverter output")
		}
		return ev.T
	}
	fast := arrive("slope", 0.1e-9)
	slow := arrive("slope", 30e-9)
	if slow <= fast {
		t.Errorf("slope model: slow input (%g) should arrive later than fast (%g)", slow, fast)
	}
	rcFast := arrive("rc", 0.1e-9)
	rcSlow := arrive("rc", 30e-9)
	if rcFast != rcSlow {
		t.Errorf("rc model should ignore input slope: %g vs %g", rcFast, rcSlow)
	}
}

func TestPrechargedBusDischarge(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.PrechargedBus(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := New(nw, analyticModel(p, "slope"), Options{})
	// Data high and stable; enable 0 rises at t=0.
	for i := 0; i < 4; i++ {
		a.SetFixed(nw.Lookup(busName("d", i)), switchsim.V1)
	}
	for i := 1; i < 4; i++ {
		a.SetFixed(nw.Lookup(busName("en", i)), switchsim.V0)
	}
	a.SetInputEventName("en0", tech.Rise, 0, 1e-9)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	bus := nw.Lookup("bus")
	fall := a.Arrival(bus, tech.Fall)
	if !fall.Valid {
		t.Fatal("bus never discharges")
	}
	if fall.T <= 0 || fall.T > 1e-6 {
		t.Errorf("bus discharge at %g s, implausible", fall.T)
	}
	// The output inverter should then rise.
	out := a.Arrival(nw.Lookup("out"), tech.Rise)
	if !out.Valid || out.T <= fall.T {
		t.Errorf("out rise %+v should follow bus fall %g", out, fall.T)
	}
}

func busName(p string, i int) string {
	return p + string(rune('0'+i))
}

func TestFixedValuesPruneStages(t *testing.T) {
	// A NAND with one input fixed low can never pull its output low.
	p := tech.NMOS4()
	l := gen.NewLib("nand2", p)
	a1, b1, out := l.NW.Node("a"), l.NW.Node("b"), l.NW.Node("out")
	l.NW.MarkInput(a1)
	l.NW.MarkInput(b1)
	l.NW.MarkOutput(out)
	l.Nand(out, a1, b1)
	an := New(l.NW, analyticModel(p, "rc"), Options{})
	an.SetFixed(b1, switchsim.V0)
	an.SetInputEvent(a1, tech.Rise, 0, 0)
	an.SetInputEvent(a1, tech.Fall, 0, 0)
	if err := an.Run(); err != nil {
		t.Fatal(err)
	}
	if ev := an.Arrival(out, tech.Fall); ev.Valid {
		t.Errorf("output fall should be pruned with b=0, got arrival %g", ev.T)
	}
}

func TestRunErrors(t *testing.T) {
	p := tech.NMOS4()
	nw, _ := gen.InverterChain(p, 2, 0)
	a := New(nw, analyticModel(p, "rc"), Options{})
	if err := a.Run(); err == nil {
		t.Error("Run with no seeded events should fail")
	}
	a2 := New(nw, analyticModel(p, "rc"), Options{})
	if err := a2.SetInputEventName("nope", tech.Rise, 0, 0); err == nil {
		t.Error("seeding a missing node should fail")
	}
	if err := a2.SetInputEventName("out", tech.Rise, 0, 0); err == nil {
		t.Error("seeding a non-input should fail")
	}
	a2.SetInputEventName("in", tech.Rise, 0, 0)
	if err := a2.Run(); err != nil {
		t.Fatal(err)
	}
	if err := a2.Run(); err == nil {
		t.Error("second Run should fail")
	}
}

func TestCriticalPathsThrough(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.RippleAdder(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := New(nw, analyticModel(p, "rc"), Options{})
	for _, in := range nw.Inputs() {
		a.SetInputEvent(in, tech.Rise, 0, 0)
		a.SetInputEvent(in, tech.Fall, 0, 0)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	c2 := nw.Lookup("c2")
	through := a.CriticalPathsThrough(c2, 3)
	if len(through) == 0 {
		t.Fatal("no paths through the carry chain")
	}
	for _, pth := range through {
		found := false
		for _, h := range pth.Hops {
			if h.Node == c2 {
				found = true
			}
		}
		if !found {
			t.Error("returned path does not contain c2")
		}
	}
	// A node nothing routes through: the first-bit input a0 appears only
	// as a path start, so ask for paths through an isolated load node.
	iso := nw.Lookup("s0")
	pths := a.CriticalPathsThrough(iso, 1)
	for _, pth := range pths {
		if pth.End().Node != iso && len(pth.Hops) < 2 {
			t.Error("degenerate path returned")
		}
	}
}

func TestFeedbackGuardFlagsUnbounded(t *testing.T) {
	// An enabled NAND ring oscillator has no worst-case arrival: the
	// analyzer must terminate and report the nodes as unbounded.
	p := tech.NMOS4()
	l := gen.NewLib("ring", p)
	en := l.NW.Node("en")
	l.NW.MarkInput(en)
	r0, r1, r2 := l.NW.Node("r0"), l.NW.Node("r1"), l.NW.Node("r2")
	l.Nand(r0, en, r2)
	l.Inverter(r0, r1, 1)
	l.Inverter(r1, r2, 1)
	a := New(l.NW, analyticModel(p, "rc"), Options{MaxEventsPerNode: 20})
	a.SetInputEvent(en, tech.Rise, 0, 0)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if len(a.Unbounded) == 0 {
		t.Error("ring oscillator should hit the feedback guard")
	}
}

func TestLoopBreakDirective(t *testing.T) {
	// The ring oscillator from the guard test, with the loop broken at
	// r1: no unbounded nodes, far fewer stage evaluations, and r1 still
	// has an arrival (recorded, just not propagated).
	p := tech.NMOS4()
	build := func() (*netlist.Network, *netlist.Node) {
		l := gen.NewLib("ring", p)
		en := l.NW.Node("en")
		l.NW.MarkInput(en)
		r0, r1, r2 := l.NW.Node("r0"), l.NW.Node("r1"), l.NW.Node("r2")
		l.Nand(r0, en, r2)
		l.Inverter(r0, r1, 1)
		l.Inverter(r1, r2, 1)
		return l.NW, r1
	}
	nw, r1 := build()
	a := New(nw, analyticModel(p, "rc"), Options{LoopBreak: []*netlist.Node{r1}})
	a.SetInputEventName("en", tech.Rise, 0, 0)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if len(a.Unbounded) != 0 {
		t.Errorf("broken loop should not hit the guard: %v", a.Unbounded)
	}
	if !a.Arrival(r1, tech.Rise).Valid && !a.Arrival(r1, tech.Fall).Valid {
		t.Error("loop-break node should still record arrivals")
	}
	// And r2 (past the break) must have no arrival from this direction.
	nwB, _ := build()
	b := New(nwB, analyticModel(p, "rc"), Options{MaxEventsPerNode: 20})
	b.SetInputEventName("en", tech.Rise, 0, 0)
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if a.StagesEvaluated() >= b.StagesEvaluated() {
		t.Errorf("loop break should cut work: %d vs %d stages",
			a.StagesEvaluated(), b.StagesEvaluated())
	}
}

func TestWorstArrivalCoversInternalNodes(t *testing.T) {
	// With outputs marked, MaxArrival is restricted to them while
	// WorstArrival scans everything — on a chain whose last node is not
	// marked, they differ.
	p := tech.NMOS4()
	l := gen.NewLib("tail", p)
	in := l.NW.Node("in")
	l.NW.MarkInput(in)
	mid := l.NW.Node("mid")
	l.NW.MarkOutput(mid)
	tail := l.NW.Node("tail") // unmarked, later than mid
	l.Inverter(in, mid, 1)
	l.Inverter(mid, tail, 1)
	a := New(l.NW, analyticModel(p, "rc"), Options{})
	a.SetInputEvent(in, tech.Rise, 0, 0)
	a.SetInputEvent(in, tech.Fall, 0, 0)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	evOut, _ := a.MaxArrival()
	evAll, path := a.WorstArrival()
	if !evAll.Valid || path == nil {
		t.Fatal("no worst arrival")
	}
	if evAll.T <= evOut.T {
		t.Errorf("WorstArrival %g should exceed output-restricted MaxArrival %g", evAll.T, evOut.T)
	}
	if path.End().Node != tail {
		t.Errorf("worst endpoint = %s, want tail", path.End().Node.Name)
	}
}

func TestPolyWireTiming(t *testing.T) {
	// End-to-end timing across interconnect resistors: arrivals exist at
	// the wire's far end, the lumped model is more pessimistic than the
	// distributed one, and delay grows with wire length.
	p := tech.NMOS4()
	measure := func(model string, scale float64) float64 {
		nw, err := gen.PolyWire(p, 6, 30e3*scale, 300e-15*scale)
		if err != nil {
			t.Fatal(err)
		}
		a := New(nw, analyticModel(p, model), Options{})
		a.SetInputEventName("in", tech.Rise, 0, 1e-9)
		if err := a.Run(); err != nil {
			t.Fatal(err)
		}
		ev := a.Arrival(nw.Lookup("wend"), tech.Fall)
		if !ev.Valid {
			t.Fatalf("no arrival across the wire (model %s)", model)
		}
		return ev.T
	}
	l1, r1 := measure("lumped", 1), measure("rc", 1)
	if l1 <= r1 {
		t.Errorf("lumped %g should exceed rc %g on a wire", l1, r1)
	}
	r2 := measure("rc", 2)
	if r2 <= r1 {
		t.Errorf("doubling the wire should slow it: %g vs %g", r2, r1)
	}
}

func TestReportOutput(t *testing.T) {
	p := tech.CMOS3()
	nw, err := gen.RippleAdder(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := New(nw, analyticModel(p, "slope"), Options{})
	for _, in := range nw.Inputs() {
		a.SetInputEvent(in, tech.Rise, 0, 0)
		a.SetInputEvent(in, tech.Fall, 0, 0)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := a.WriteReport(&sb, 2); err != nil {
		t.Fatal(err)
	}
	rep := sb.String()
	for _, want := range []string{"timing report", "path 1:", "(input)"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
