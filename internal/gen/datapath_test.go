package gen

import (
	"fmt"
	"testing"

	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

func TestDatapathStructure(t *testing.T) {
	both(t, func(t *testing.T, p *tech.Params) {
		nw, err := Datapath(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, nw)
		st := nw.Stats()
		// Decoder + 8×4 register file + 4-bit ALU + 4-bit shifter.
		if st.Trans < 300 {
			t.Errorf("datapath has only %d transistors", st.Trans)
		}
		// Ports present and correctly directed.
		for _, name := range []string{"addr0", "cin", "fadd", "b0", "sh0"} {
			n := nw.Lookup(name)
			if n == nil || n.Kind != netlist.KindInput {
				t.Errorf("input port %s missing or misdirected", name)
			}
		}
		for _, name := range []string{"out0", "out3"} {
			n := nw.Lookup(name)
			if n == nil || n.Kind != netlist.KindOutput {
				t.Errorf("output port %s missing or misdirected", name)
			}
		}
		// Internal buses are not ports.
		for _, name := range []string{"rbit0", "res0", "word0"} {
			n := nw.Lookup(name)
			if n == nil || n.Kind != netlist.KindNormal {
				t.Errorf("internal net %s missing or exposed", name)
			}
		}
	})
}

func TestDatapathShifterPassesALUResult(t *testing.T) {
	// Functional slice: bypass the register file uncertainty by checking
	// that an OR of (X-valued) rbit with b=1 gives definite 1 through the
	// ALU and the shifter: OR(X, 1) = 1 regardless of the stored cells.
	p := tech.NMOS4()
	const w = 4
	nw, err := Datapath(p, w)
	if err != nil {
		t.Fatal(err)
	}
	s := switchsim.New(nw)
	// Select word 0, OR function, all b bits high, shift by 0.
	setBits(t, s, "addr", 3, 0)
	for _, f := range []string{"fand", "fxor", "fadd"} {
		s.SetInputName(f, switchsim.V0)
	}
	s.SetInputName("for", switchsim.V1)
	s.SetInputName("cin", switchsim.V0)
	setBits(t, s, "b", w, 0b1111)
	for j := 0; j < w; j++ {
		s.SetInputName(fmt.Sprintf("sh%d", j), switchsim.FromBool(j == 0))
	}
	s.Settle()
	got, ok := readBits(t, s, "out", w)
	if !ok {
		t.Fatalf("X at outputs: %v %v %v %v",
			s.ValueName("out0"), s.ValueName("out1"), s.ValueName("out2"), s.ValueName("out3"))
	}
	if got != 0b1111 {
		t.Errorf("OR(reg, 1111) = %04b, want 1111", got)
	}
	// AND with b=0 must give 0 regardless of stored cells.
	s.SetInputName("for", switchsim.V0)
	s.SetInputName("fand", switchsim.V1)
	setBits(t, s, "b", w, 0)
	s.Settle()
	got, ok = readBits(t, s, "out", w)
	if !ok {
		t.Fatal("X at outputs for AND")
	}
	if got != 0 {
		t.Errorf("AND(reg, 0) = %04b, want 0", got)
	}
}
