package gen

import (
	"testing"

	"repro/internal/switchsim"
	"repro/internal/tech"
)

func TestArrayMultiplierExhaustiveSmall(t *testing.T) {
	both(t, func(t *testing.T, p *tech.Params) {
		const w = 3
		nw, err := ArrayMultiplier(p, w)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, nw)
		s := switchsim.New(nw)
		for a := 0; a < 1<<w; a++ {
			for b := 0; b < 1<<w; b++ {
				setBits(t, s, "a", w, a)
				setBits(t, s, "b", w, b)
				s.Settle()
				got, ok := readBits(t, s, "p", 2*w)
				if !ok {
					t.Fatalf("mul(%d,%d): X in product", a, b)
				}
				if want := a * b; got != want {
					t.Fatalf("mul(%d,%d) = %d, want %d", a, b, got, want)
				}
			}
		}
	})
}

func TestArrayMultiplierVectors4(t *testing.T) {
	// Spot vectors at width 4 (exhaustive is 256 settles × 2 tech — ok,
	// but keep the runtime balanced).
	p := tech.NMOS4()
	const w = 4
	nw, err := ArrayMultiplier(p, w)
	if err != nil {
		t.Fatal(err)
	}
	checkNet(t, nw)
	s := switchsim.New(nw)
	vectors := [][2]int{{0, 0}, {1, 1}, {15, 15}, {9, 7}, {12, 5}, {3, 11}, {8, 8}}
	for _, v := range vectors {
		setBits(t, s, "a", w, v[0])
		setBits(t, s, "b", w, v[1])
		s.Settle()
		got, ok := readBits(t, s, "p", 2*w)
		if !ok {
			t.Fatalf("mul(%d,%d): X in product", v[0], v[1])
		}
		if want := v[0] * v[1]; got != want {
			t.Errorf("mul(%d,%d) = %d, want %d", v[0], v[1], got, want)
		}
	}
}

func TestCarrySelectAdderExhaustive(t *testing.T) {
	both(t, func(t *testing.T, p *tech.Params) {
		const w = 4
		nw, err := CarrySelectAdder(p, w, 2)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, nw)
		s := switchsim.New(nw)
		for a := 0; a < 1<<w; a++ {
			for b := 0; b < 1<<w; b++ {
				for c := 0; c < 2; c++ {
					setBits(t, s, "a", w, a)
					setBits(t, s, "b", w, b)
					s.SetInputName("cin", switchsim.FromBool(c == 1))
					s.Settle()
					sum, ok := readBits(t, s, "s", w)
					if !ok {
						t.Fatalf("add(%d,%d,%d): X in sum", a, b, c)
					}
					co, ok := s.ValueName("cout").Bool()
					if !ok {
						t.Fatalf("add(%d,%d,%d): X carry", a, b, c)
					}
					got := sum
					if co {
						got |= 1 << w
					}
					if want := a + b + c; got != want {
						t.Fatalf("add(%d,%d,%d) = %d, want %d", a, b, c, got, want)
					}
				}
			}
		}
	})
}

func TestArithGeneratorErrors(t *testing.T) {
	p := tech.NMOS4()
	if _, err := ArrayMultiplier(p, 1); err == nil {
		t.Error("ArrayMultiplier(1) should fail")
	}
	if _, err := ArrayMultiplier(p, 99); err == nil {
		t.Error("ArrayMultiplier(99) should fail")
	}
	if _, err := CarrySelectAdder(p, 0, 2); err == nil {
		t.Error("CarrySelectAdder(0) should fail")
	}
	// A degenerate block size is clamped, not rejected.
	if _, err := CarrySelectAdder(p, 3, 100); err != nil {
		t.Errorf("block clamp failed: %v", err)
	}
}

func TestRegistryBuild(t *testing.T) {
	p := tech.NMOS4()
	specs := []string{
		"invchain:4", "invchain:4,2", "fanout:3", "passchain:5",
		"superbuffer", "bus:2", "ripple:4", "manchester:4", "barrel:4",
		"decoder:3", "alu:2", "regfile:2,2", "pla:4,6,2", "pla:4,6,2,9",
		"arraymul:3", "carrysel:8,4", "carrysel:8",
	}
	for _, sp := range specs {
		nw, err := Build(sp, p)
		if err != nil {
			t.Errorf("Build(%q): %v", sp, err)
			continue
		}
		if err := nw.Check(); err != nil {
			t.Errorf("Build(%q): %v", sp, err)
		}
	}
	bad := []string{"nope", "alu", "alu:x", "regfile:2"}
	for _, sp := range bad {
		if _, err := Build(sp, p); err == nil {
			t.Errorf("Build(%q) should fail", sp)
		}
	}
	if len(List()) < 12 {
		t.Errorf("registry lists %d circuits", len(List()))
	}
	// List is sorted.
	ls := List()
	for i := 1; i < len(ls); i++ {
		if ls[i].Name < ls[i-1].Name {
			t.Error("List not sorted")
		}
	}
}

func TestArrayMultiplierScales(t *testing.T) {
	p := tech.NMOS4()
	t4, err := ArrayMultiplier(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := ArrayMultiplier(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := float64(t8.Stats().Trans) / float64(t4.Stats().Trans)
	if r < 3 || r > 5.5 {
		t.Errorf("8/4 transistor ratio = %g, want ≈ 4 (w² growth)", r)
	}
}
