package incremental

import (
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/tech"
)

func TestParseEditLine(t *testing.T) {
	cases := []struct {
		line string
		want Edit
	}{
		{"add nenh g a b", Edit{Kind: AddTrans, Dev: tech.NEnh, Gate: "g", A: "a", B: "b"}},
		{"add ndep g a b 4e-6 2e-6", Edit{Kind: AddTrans, Dev: tech.NDep, Gate: "g", A: "a", B: "b", W: 4e-6, L: 2e-6}},
		{"wire a b 1500", Edit{Kind: AddTrans, Dev: tech.RWire, A: "a", B: "b", R: 1500}},
		{"del 7", Edit{Kind: RemoveTrans, Index: 7}},
		{"resize 3 8e-6 0", Edit{Kind: Resize, Index: 3, W: 8e-6}},
		{"cap out 2e-14", Edit{Kind: AddCap, Node: "out", Cap: 2e-14}},
		{"retype q output", Edit{Kind: Retype, Node: "q", NodeKind: netlist.KindOutput}},
	}
	for _, tc := range cases {
		got, err := ParseEditLine(strings.Fields(tc.line))
		if err != nil {
			t.Errorf("%q: %v", tc.line, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%q = %+v, want %+v", tc.line, got, tc.want)
		}
	}
}

func TestParseEditLineErrors(t *testing.T) {
	cases := []string{
		"frobnicate q",        // unknown edit
		"add zmos g a b",      // unknown device
		"add nenh g a",        // wrong arity
		"add nenh g a b 4e-6", // wrong arity (w without l)
		"add penh g a b x y",  // bad numbers
		"wire a b ohms",       // bad number
		"del seven",           // bad index
		"resize 0 wide 2e-6",  // bad number
		"resize x 1e-6 2e-6",  // bad index
		"cap",                 // wrong arity
		"cap out much",        // bad number
		"retype q tristate",   // unknown kind
	}
	for _, line := range cases {
		if _, err := ParseEditLine(strings.Fields(line)); err == nil {
			t.Errorf("%q should fail", line)
		}
	}
}

// TestReplayScript pins the batching protocol: batches split at `run`
// barriers, comments and blank lines skipped, empty barriers dropped, and
// a trailing batch applied at end of input.
func TestReplayScript(t *testing.T) {
	script := `
# comment only
cap a 1e-15
cap b 2e-15  # trailing comment
run
run
del 0
` // trailing batch without run
	var batches [][]Edit
	err := ReplayScript(strings.NewReader(script), "test", func(_ int, batch []Edit) error {
		batches = append(batches, append([]Edit(nil), batch...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("want 2 batches, got %d: %+v", len(batches), batches)
	}
	if len(batches[0]) != 2 || batches[0][0].Node != "a" || batches[0][1].Node != "b" {
		t.Errorf("batch 0 = %+v", batches[0])
	}
	if len(batches[1]) != 1 || batches[1][0].Kind != RemoveTrans {
		t.Errorf("batch 1 = %+v", batches[1])
	}
}

func TestReplayScriptErrors(t *testing.T) {
	// Parse errors carry the source name and line number.
	err := ReplayScript(strings.NewReader("cap a 1e-15\nbogus line\n"), "s.script",
		func(int, []Edit) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "s.script:2") {
		t.Errorf("want s.script:2 error, got %v", err)
	}
	// Apply errors are wrapped the same way.
	err = ReplayScript(strings.NewReader("cap a 1e-15\nrun\n"), "s.script",
		func(int, []Edit) error { return errTest })
	if err == nil || !strings.Contains(err.Error(), "s.script:2") {
		t.Errorf("want wrapped apply error, got %v", err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
