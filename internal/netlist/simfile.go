// Berkeley .sim file reader and writer.
//
// The .sim format is the lingua franca of the Berkeley switch-level tools
// (esim, crystal, irsim, mextra). The subset implemented here:
//
//	| comment text                      comment / header line
//	| units: <n> tech: <name>           header produced by mextra
//	e <g> <s> <d> [l w [x y]]           n-channel enhancement transistor
//	n <g> <s> <d> [l w [x y]]           synonym for e
//	d <g> <s> <d> [l w [x y]]           n-channel depletion transistor
//	p <g> <s> <d> [l w [x y]]           p-channel transistor
//	r <a> <b> <ohms>                    interconnect (wire) resistor
//	C <a> <b> <cap>                     capacitor, cap in femtofarads
//	c <a> <b> <cap>                     synonym for C
//	N <node> <cap>                      node capacitance in femtofarads
//	= <node> <alias>                    net alias
//	@ in|out <node>...                  input/output markers (extension)
//	@ flow a>b|b>a|off <index>          flow hint for transistor (extension)
//	@ precharged <node>...              precharge markers (extension)
//	@ inst <path> <lo> <hi>             hierarchical stamp annotation:
//	                                    transistors [lo,hi) form instance
//	                                    <path> (extension)
//
// Geometry (l, w) is in "units" — hundredths of a micron scaled by the
// units header (mextra convention: units gives centimicrons per unit;
// absent a header, 1 unit = 1 centimicron = 1e-8 m). Capacitor values are
// femtofarads.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/tech"
)

// centimicron is the base geometry unit of .sim files, in meters.
const centimicron = 1e-8

// femto converts femtofarads to farads.
const femto = 1e-15

// maxSimLine bounds one .sim line; both the serial scanner and the
// parallel tokenizer reject longer lines identically.
const maxSimLine = 4 * 1024 * 1024

// followAliases chases the alias chain from nm to its final target. It
// reports ok=false when the chain loops: `= a b` / `= b a` is expressible
// in the format, and an unbounded walk would hang the parser. The bound is
// the alias-table size — any walk longer than that revisited a name.
func followAliases(aliases map[string]string, nm string) (final string, ok bool) {
	for steps := 0; ; steps++ {
		tgt, hit := aliases[nm]
		if !hit {
			return nm, true
		}
		if steps >= len(aliases) {
			return nm, false
		}
		nm = tgt
	}
}

// ReadSim parses a .sim netlist from r into a new Network named name,
// using technology p for defaults. It returns the network or the first
// syntax error, annotated with a line number.
func ReadSim(name string, p *tech.Params, r io.Reader) (*Network, error) {
	nw := New(name, p)
	scale := 1.0 // units → centimicrons
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxSimLine)
	lineno := 0
	aliases := make(map[string]string)
	// One canonical allocation per distinct symbol: node names, alias
	// table entries and directive operands all share it, instead of each
	// mention pinning its scanner line.
	itn := NewInterner(256)

	resolve := func(nm string) (*Node, error) {
		final, ok := followAliases(aliases, nm)
		if !ok {
			return nil, fmt.Errorf("sim %s:%d: alias cycle resolving %q", name, lineno, nm)
		}
		return nw.Node(itn.Intern(final)), nil
	}

	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		key := fields[0]
		fail := func(format string, args ...any) error {
			return fmt.Errorf("sim %s:%d: %s", name, lineno, fmt.Sprintf(format, args...))
		}
		switch key {
		case "|":
			// Header or comment. Recognize "| units: N ..." to set scale.
			for i := 1; i < len(fields)-1; i++ {
				if fields[i] == "units:" {
					u, err := strconv.ParseFloat(fields[i+1], 64)
					if err != nil || u <= 0 {
						return nil, fail("bad units value %q", fields[i+1])
					}
					scale = u
				}
			}
		case "e", "n", "d", "p":
			if len(fields) < 4 {
				return nil, fail("transistor line needs at least 3 node names")
			}
			var d tech.Device
			switch key {
			case "e", "n":
				d = tech.NEnh
			case "d":
				d = tech.NDep
			case "p":
				if !p.HasPChannel() {
					return nil, fail("p-channel transistor in technology %s", p.Name)
				}
				d = tech.PEnh
			}
			g, err := resolve(fields[1])
			if err != nil {
				return nil, err
			}
			a, err := resolve(fields[2])
			if err != nil {
				return nil, err
			}
			b, err := resolve(fields[3])
			if err != nil {
				return nil, err
			}
			l, w := p.MinL, p.MinW
			if len(fields) >= 6 {
				lv, err1 := strconv.ParseFloat(fields[4], 64)
				wv, err2 := strconv.ParseFloat(fields[5], 64)
				if err1 != nil || err2 != nil {
					return nil, fail("bad geometry %q %q", fields[4], fields[5])
				}
				if lv <= 0 || wv <= 0 {
					return nil, fail("non-positive geometry %g x %g", lv, wv)
				}
				l = lv * scale * centimicron
				w = wv * scale * centimicron
			}
			nw.AddTrans(d, g, a, b, w, l)
		case "r":
			if len(fields) < 4 {
				return nil, fail("resistor line needs two nodes and a value")
			}
			rv, err := strconv.ParseFloat(fields[3], 64)
			if err != nil || rv <= 0 {
				return nil, fail("bad resistance %q", fields[3])
			}
			a, err := resolve(fields[1])
			if err != nil {
				return nil, err
			}
			b, err := resolve(fields[2])
			if err != nil {
				return nil, err
			}
			nw.AddResistor(a, b, rv)
		case "C", "c":
			if len(fields) < 4 {
				return nil, fail("capacitor line needs two nodes and a value")
			}
			cv, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fail("bad capacitance %q", fields[3])
			}
			if cv < 0 {
				return nil, fail("negative capacitance %g", cv)
			}
			a, err := resolve(fields[1])
			if err != nil {
				return nil, err
			}
			b, err := resolve(fields[2])
			if err != nil {
				return nil, err
			}
			c := cv * femto
			// Capacitance to a rail is pure node load; between two
			// signal nodes, split it (switch-level tools do not model
			// coupling).
			switch {
			case a.IsRail() && b.IsRail():
				// Rail-to-rail decoupling: irrelevant to timing.
			case a.IsRail():
				nw.AddCap(b, c)
			case b.IsRail():
				nw.AddCap(a, c)
			default:
				nw.AddCap(a, c/2)
				nw.AddCap(b, c/2)
			}
		case "N":
			if len(fields) < 3 {
				return nil, fail("node capacitance line needs a node and a value")
			}
			cv, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				return nil, fail("bad capacitance %q", fields[len(fields)-1])
			}
			n, err := resolve(fields[1])
			if err != nil {
				return nil, err
			}
			nw.AddCap(n, cv*femto)
		case "=":
			if len(fields) < 3 {
				return nil, fail("alias line needs two names")
			}
			// "= canonical alias": make alias refer to canonical.
			canon, alias := fields[1], fields[2]
			if alias == canon {
				break
			}
			aliases[itn.Intern(alias)] = itn.Intern(canon)
		case "@":
			if len(fields) < 2 {
				return nil, fail("directive line needs a keyword")
			}
			switch fields[1] {
			case "in":
				for _, nm := range fields[2:] {
					n, err := resolve(nm)
					if err != nil {
						return nil, err
					}
					nw.MarkInput(n)
				}
			case "out":
				for _, nm := range fields[2:] {
					n, err := resolve(nm)
					if err != nil {
						return nil, err
					}
					nw.MarkOutput(n)
				}
			case "precharged":
				for _, nm := range fields[2:] {
					n, err := resolve(nm)
					if err != nil {
						return nil, err
					}
					n.Precharged = true
				}
			case "flow":
				if len(fields) < 4 {
					return nil, fail("flow directive needs a direction and a transistor index")
				}
				idx, err := strconv.Atoi(fields[3])
				if err != nil || idx < 0 || idx >= len(nw.Trans) {
					return nil, fail("bad transistor index %q", fields[3])
				}
				switch fields[2] {
				case "a>b":
					nw.Trans[idx].Flow = FlowAB
				case "b>a":
					nw.Trans[idx].Flow = FlowBA
				case "off":
					nw.Trans[idx].Flow = FlowOff
				case "both":
					nw.Trans[idx].Flow = FlowBoth
				default:
					return nil, fail("unknown flow direction %q", fields[2])
				}
			case "inst":
				if len(fields) < 5 {
					return nil, fail("inst directive needs a path and a transistor range")
				}
				lo, err1 := strconv.Atoi(fields[3])
				hi, err2 := strconv.Atoi(fields[4])
				if err1 != nil || err2 != nil || lo < 0 || hi < lo || hi > len(nw.Trans) {
					return nil, fail("bad instance range %q %q", fields[3], fields[4])
				}
				nw.Instances = append(nw.Instances, Instance{
					Path: itn.Intern(fields[2]), TransLo: lo, TransHi: hi,
				})
			default:
				return nil, fail("unknown directive %q", fields[1])
			}
		default:
			return nil, fail("unknown record type %q", key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sim %s: %w", name, err)
	}
	return nw, nil
}

// WriteSim writes the network to w in .sim format. Geometry is emitted in
// centimicrons (units: 1); explicit node capacitance is emitted as N
// records in femtofarads. Input/output/flow/precharge attributes are
// emitted as @ directive extensions so that a ReadSim round trip preserves
// them.
func WriteSim(w io.Writer, nw *Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "| units: 1 tech: %s name: %s\n", nw.Tech.Name, nw.Name)
	for _, t := range nw.Trans {
		if t.IsWire() {
			fmt.Fprintf(bw, "r %s %s %.6g\n", t.A.Name, t.B.Name, t.ROverride)
			continue
		}
		fmt.Fprintf(bw, "%s %s %s %s %.0f %.0f\n",
			t.Type, t.Gate.Name, t.A.Name, t.B.Name,
			t.L/centimicron, t.W/centimicron)
	}
	for _, n := range nw.Nodes {
		if n.IsRail() {
			continue // rails are ideal; their capacitance is meaningless
		}
		// Emit only capacitance beyond the technology default so the
		// round trip is stable (ReadSim re-applies the default).
		if extra := n.Cap - nw.Tech.CWire; extra > 1e-21 {
			fmt.Fprintf(bw, "N %s %.6g\n", n.Name, extra/femto)
		}
	}
	var ins, outs, pre []string
	for _, n := range nw.Nodes {
		switch n.Kind {
		case KindInput:
			ins = append(ins, n.Name)
		case KindOutput:
			outs = append(outs, n.Name)
		}
		if n.Precharged {
			pre = append(pre, n.Name)
		}
	}
	if len(ins) > 0 {
		fmt.Fprintf(bw, "@ in %s\n", strings.Join(ins, " "))
	}
	if len(outs) > 0 {
		fmt.Fprintf(bw, "@ out %s\n", strings.Join(outs, " "))
	}
	if len(pre) > 0 {
		fmt.Fprintf(bw, "@ precharged %s\n", strings.Join(pre, " "))
	}
	for _, t := range nw.Trans {
		if t.Flow != FlowBoth {
			fmt.Fprintf(bw, "@ flow %s %d\n", t.Flow, t.Index)
		}
	}
	for _, inst := range nw.Instances {
		fmt.Fprintf(bw, "@ inst %s %d %d\n", inst.Path, inst.TransLo, inst.TransHi)
	}
	return bw.Flush()
}
