package tech

import (
	"math"
	"testing"
)

func TestBuiltinParamsValidate(t *testing.T) {
	for _, p := range []*Params{NMOS4(), CMOS3()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"empty name", func(p *Params) { p.Name = "" }},
		{"zero vdd", func(p *Params) { p.Vdd = 0 }},
		{"vtn negative", func(p *Params) { p.VtN = -1 }},
		{"vtn above vdd", func(p *Params) { p.VtN = 6 }},
		{"vtdep positive", func(p *Params) { p.VtDep = 1 }},
		{"vtp positive", func(p *Params) { p.VtP = 1 }},
		{"zero gate cap", func(p *Params) { p.CGate = 0 }},
		{"negative wire cap", func(p *Params) { p.CWire = -1 }},
		{"zero lambda", func(p *Params) { p.Lambda = 0 }},
		{"zero kpn", func(p *Params) { p.KPn = 0 }},
		{"no pulldown", func(p *Params) { p.RDown[NEnh] = 0 }},
		{"no depletion pullup", func(p *Params) { p.RUp[NDep] = 0 }},
	}
	for _, m := range mutations {
		p := NMOS4()
		m.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
	// CMOS-specific: p-channel present but KPp zero.
	p := CMOS3()
	p.KPp = 0
	if err := p.Validate(); err == nil {
		t.Error("p-channel without KPp should fail")
	}
	if err := (*Params)(nil).Validate(); err == nil {
		t.Error("nil params should fail")
	}
}

func TestRGeometryScaling(t *testing.T) {
	p := NMOS4()
	base := p.R(NEnh, Fall, p.MinW, p.MinL)
	wide := p.R(NEnh, Fall, 2*p.MinW, p.MinL)
	long := p.R(NEnh, Fall, p.MinW, 2*p.MinL)
	if math.Abs(wide-base/2) > 1e-9 {
		t.Errorf("doubling width should halve R: %g vs %g", wide, base/2)
	}
	if math.Abs(long-2*base) > 1e-9 {
		t.Errorf("doubling length should double R: %g vs %g", long, 2*base)
	}
	if base != p.RSquare(NEnh, Fall) {
		t.Error("minimum device should be one square")
	}
}

func TestCapsPositive(t *testing.T) {
	p := CMOS3()
	if p.GateCap(p.MinW, p.MinL) <= 0 {
		t.Error("gate cap must be positive")
	}
	if p.DiffCap(p.MinW) <= 0 {
		t.Error("diffusion cap must be positive")
	}
	// Diffusion cap grows with width.
	if p.DiffCap(2*p.MinW) <= p.DiffCap(p.MinW) {
		t.Error("diffusion cap should grow with width")
	}
}

func TestVtAndKP(t *testing.T) {
	p := CMOS3()
	if p.Vt(NEnh) != p.VtN || p.Vt(PEnh) != p.VtP || p.Vt(NDep) != p.VtDep {
		t.Error("Vt mapping wrong")
	}
	if p.KP(NEnh) != p.KPn || p.KP(NDep) != p.KPn || p.KP(PEnh) != p.KPp {
		t.Error("KP mapping wrong")
	}
}

func TestHasPChannel(t *testing.T) {
	if NMOS4().HasPChannel() {
		t.Error("nMOS should not have p-channel")
	}
	if !CMOS3().HasPChannel() {
		t.Error("CMOS should have p-channel")
	}
}

func TestDeviceAndTransitionStrings(t *testing.T) {
	if NEnh.String() != "e" || NDep.String() != "d" || PEnh.String() != "p" {
		t.Error("device mnemonics wrong")
	}
	if Rise.String() != "rise" || Fall.String() != "fall" {
		t.Error("transition names wrong")
	}
	if Rise.Opposite() != Fall || Fall.Opposite() != Rise {
		t.Error("Opposite wrong")
	}
	if len(Devices()) != 3 {
		t.Error("Devices should list all three types")
	}
	if Device(99).String() == "" {
		t.Error("unknown device should still render")
	}
}
