// Package rctree analyzes RC tree networks: trees of resistors rooted at a
// voltage source, with capacitance to ground at every node. This is the
// mathematical core of the paper's distributed ("RC") delay model: a stage
// of conducting transistors driving a fan-out of capacitive nodes is an RC
// tree, and its delay is estimated from the Elmore time constant with
// Rubinstein–Penfield–Horowitz (RPH) bounds available as a certificate.
//
// Definitions (following RPH, "Signal Delay in RC Tree Networks"):
//
//	Rkk — total resistance on the unique path from the root to node k.
//	Rke — resistance of the portion of the root→k path shared with the
//	      root→e path.
//	TP  = Σk Rkk·Ck  (a global time constant, independent of e)
//	TDe = Σk Rke·Ck  (the Elmore delay of node e)
//	TRe = Σk Rke²/Ree·Ck
//
// with TRe ≤ TDe ≤ TP always. The step response at e is bounded by
// exponentials in these constants, giving rigorous lower and upper bounds
// on the time to cross any threshold.
package rctree

import (
	"errors"
	"fmt"
	"math"
)

// Tree is an RC tree. Node 0 is the root: the point where the (ideal)
// step source connects through the first resistor. The root itself may
// carry capacitance (it usually represents the driver's output diffusion).
type Tree struct {
	parent []int     // parent[i] is the parent index, -1 for root
	r      []float64 // r[i] is resistance from parent[i] to i; r[0] unused (0)
	c      []float64 // c[i] is capacitance at node i
	name   []string  // optional labels for reports
	order  []int     // topological order (parents first), rebuilt lazily
	dirty  bool
}

// New returns a tree containing only the root with capacitance c0.
func New(c0 float64, name string) *Tree {
	return &Tree{
		parent: []int{-1},
		r:      []float64{0},
		c:      []float64{c0},
		name:   []string{name},
		dirty:  true,
	}
}

// Reset reinitializes the tree in place to a root-only tree with
// capacitance c0, retaining the backing arrays so a caller evaluating many
// trees of similar size (delay-model stages, randomized-tree sweeps) can
// reuse one Tree as a scratch buffer instead of allocating per evaluation.
func (t *Tree) Reset(c0 float64, name string) {
	t.parent = append(t.parent[:0], -1)
	t.r = append(t.r[:0], 0)
	t.c = append(t.c[:0], c0)
	t.name = append(t.name[:0], name)
	t.order = t.order[:0]
	t.dirty = true
}

// Add appends a node connected to parent through resistance r, carrying
// capacitance c, and returns its index. It panics on an invalid parent —
// tree construction errors are programming errors, not data errors.
func (t *Tree) Add(parent int, r, c float64, name string) int {
	if parent < 0 || parent >= len(t.parent) {
		panic(fmt.Sprintf("rctree: parent %d out of range [0,%d)", parent, len(t.parent)))
	}
	t.parent = append(t.parent, parent)
	t.r = append(t.r, r)
	t.c = append(t.c, c)
	t.name = append(t.name, name)
	t.dirty = true
	return len(t.parent) - 1
}

// Len returns the number of nodes including the root.
func (t *Tree) Len() int { return len(t.parent) }

// Name returns the label of node i.
func (t *Tree) Name(i int) string { return t.name[i] }

// C returns the capacitance at node i.
func (t *Tree) C(i int) float64 { return t.c[i] }

// R returns the resistance between node i and its parent.
func (t *Tree) R(i int) float64 { return t.r[i] }

// Parent returns the parent index of node i (-1 for the root).
func (t *Tree) Parent(i int) int { return t.parent[i] }

// AddCap adds extra capacitance to an existing node.
func (t *Tree) AddCap(i int, c float64) { t.c[i] += c }

// Validate checks that resistances (except the root's) are positive and
// capacitances non-negative, with at least some capacitance in the tree.
func (t *Tree) Validate() error {
	total := 0.0
	for i := range t.parent {
		if i > 0 && t.r[i] <= 0 {
			return fmt.Errorf("rctree: node %d (%s) has non-positive resistance %g", i, t.name[i], t.r[i])
		}
		if t.c[i] < 0 {
			return fmt.Errorf("rctree: node %d (%s) has negative capacitance %g", i, t.name[i], t.c[i])
		}
		total += t.c[i]
	}
	if total <= 0 {
		return errors.New("rctree: tree has no capacitance")
	}
	return nil
}

// TotalCap returns the sum of all node capacitances.
func (t *Tree) TotalCap() float64 {
	s := 0.0
	for _, c := range t.c {
		s += c
	}
	return s
}

// TotalR returns the sum of all branch resistances.
func (t *Tree) TotalR() float64 {
	s := 0.0
	for _, r := range t.r {
		s += r
	}
	return s
}

// PathR returns Rkk: total resistance from the root to node k.
func (t *Tree) PathR(k int) float64 {
	s := 0.0
	for i := k; i > 0; i = t.parent[i] {
		s += t.r[i]
	}
	return s
}

// path returns the set of nodes on the root→e path as a map from node
// index to cumulative resistance root→node.
func (t *Tree) path(e int) map[int]float64 {
	// Collect path indices root..e, then accumulate forward.
	var idx []int
	for i := e; i != -1; i = t.parent[i] {
		idx = append(idx, i)
	}
	m := make(map[int]float64, len(idx))
	acc := 0.0
	for j := len(idx) - 1; j >= 0; j-- {
		i := idx[j]
		acc += t.r[i] // r[root] is 0
		m[i] = acc
	}
	return m
}

// CommonR returns Rke: the resistance of the common portion of the
// root→k and root→e paths.
func (t *Tree) CommonR(k, e int) float64 {
	onPath := t.path(e)
	// Walk up from k until we hit a node on the e-path; the common
	// resistance is the cumulative root-resistance of that node.
	for i := k; i != -1; i = t.parent[i] {
		if r, ok := onPath[i]; ok {
			return r
		}
	}
	return 0 // unreachable in a tree: root is always common
}

// Constants bundles the three RPH time constants for a node.
type Constants struct {
	TP  float64 // Σ Rkk·Ck — global
	TDe float64 // Σ Rke·Ck — the Elmore delay of e
	TRe float64 // Σ Rke²/Ree·Ck
}

// ConstantsAt computes TP, TDe and TRe for node e in O(n·depth) time.
func (t *Tree) ConstantsAt(e int) Constants {
	onPath := t.path(e)
	ree := onPath[e]
	var k Constants
	for i := range t.parent {
		rkk := t.PathR(i)
		rke := 0.0
		for j := i; j != -1; j = t.parent[j] {
			if r, ok := onPath[j]; ok {
				rke = r
				break
			}
		}
		k.TP += rkk * t.c[i]
		k.TDe += rke * t.c[i]
		if ree > 0 {
			k.TRe += rke * rke / ree * t.c[i]
		}
	}
	if ree == 0 {
		// e is the root: its own delay is zero, and the exponential
		// bounds degenerate. Represent with TDe=TRe=0.
		k.TDe, k.TRe = 0, 0
	}
	return k
}

// Elmore returns the Elmore delay TDe of node e: the first moment of the
// impulse response, and the workhorse point estimate of the distributed
// delay model.
func (t *Tree) Elmore(e int) float64 {
	return t.ConstantsAt(e).TDe
}

// ElmoreAll returns the Elmore delay of every node in O(n) time using two
// tree passes: a downstream-capacitance accumulation and a root-to-leaf
// prefix sum of r·Cdown. Exactly equal (up to rounding) to calling Elmore
// on each node, but linear.
func (t *Tree) ElmoreAll() []float64 {
	n := len(t.parent)
	t.ensureOrder()
	cdown := make([]float64, n)
	copy(cdown, t.c)
	// Leaves-to-root accumulation of downstream capacitance.
	for i := n - 1; i >= 1; i-- {
		k := t.order[i]
		cdown[t.parent[k]] += cdown[k]
	}
	td := make([]float64, n)
	for i := 1; i < n; i++ {
		k := t.order[i]
		td[k] = td[t.parent[k]] + t.r[k]*cdown[k]
	}
	return td
}

// ensureOrder rebuilds the parents-first traversal order if needed.
func (t *Tree) ensureOrder() {
	if !t.dirty && len(t.order) == len(t.parent) {
		return
	}
	n := len(t.parent)
	t.order = make([]int, 0, n)
	// Nodes are appended with parents existing first, so index order is
	// already topological: parent[i] < i holds for every Add.
	for i := 0; i < n; i++ {
		t.order = append(t.order, i)
	}
	t.dirty = false
}

// DelayBounds returns rigorous lower and upper bounds on the time at
// which node e crosses the fraction v (0 < v < 1) of its final value
// under a unit step applied at the root at time zero. The bounds are the
// exponential forms of RPH:
//
//	lower: t ≥ TP·ln(TDe / (TP·(1−v)))            (clamped at 0)
//	upper: t ≤ TDe − TRe + TRe·ln(1/(1−v))
//
// Both collapse to the exact single-pole answer RC·ln(1/(1−v)) when the
// tree is a single lump. For the root node both bounds are zero.
func (t *Tree) DelayBounds(e int, v float64) (lo, hi float64) {
	if v <= 0 || v >= 1 {
		panic(fmt.Sprintf("rctree: threshold %g outside (0,1)", v))
	}
	k := t.ConstantsAt(e)
	if k.TDe == 0 {
		return 0, 0
	}
	lo = k.TP * math.Log(k.TDe/(k.TP*(1-v)))
	if lo < 0 {
		lo = 0
	}
	hi = k.TDe - k.TRe + k.TRe*math.Log(1/(1-v))
	if hi < lo {
		// Numerically the forms can cross by rounding when the tree is
		// nearly a single lump; collapse to the midpoint.
		mid := (hi + lo) / 2
		lo, hi = mid, mid
	}
	return lo, hi
}

// Delay50 returns the Elmore-based estimate of the 50% crossing time,
// ln2·TDe, which is exact for a single pole and within the RPH bounds in
// general.
func (t *Tree) Delay50(e int) float64 {
	return math.Ln2 * t.Elmore(e)
}

// Leaves returns the indices of all childless nodes.
func (t *Tree) Leaves() []int {
	n := len(t.parent)
	hasChild := make([]bool, n)
	for i := 1; i < n; i++ {
		hasChild[t.parent[i]] = true
	}
	var out []int
	for i := 0; i < n; i++ {
		if !hasChild[i] {
			out = append(out, i)
		}
	}
	return out
}

// String renders the tree for diagnostics: one line per node.
func (t *Tree) String() string {
	s := ""
	for i := range t.parent {
		s += fmt.Sprintf("%3d %-12s parent=%-3d R=%-10.4g C=%.4g\n",
			i, t.name[i], t.parent[i], t.r[i], t.c[i])
	}
	return s
}
