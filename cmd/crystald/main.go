// Command crystald is the long-lived timing-analysis service: it holds
// parsed netlists, compiled network views and stage-database generations
// resident in a bounded session cache and answers analyze/edit/critical
// queries over HTTP/JSON — the service form of the crystal CLI's designer
// loop, where re-verifying after an edit costs an incremental drain
// instead of a fresh parse-compile-analyze.
//
// Usage:
//
//	crystald [-addr :8653] [-max-sessions 16] [-workers 0]
//	         [-reorder on] [-drain-timeout 30s] [-snapshot-dir DIR]
//	         [-netarena on] [-job-workers 2] [-job-queue 32]
//	         [-chaos-job-delay 0] [-chaos-job-fail-every 0]
//
// Long requests (a chip-scale analyze, a big edit script) can be
// submitted with {"async": true}: the daemon answers 202 with a job id
// and the work runs on a bounded worker pool (-job-workers) behind a
// bounded queue (-job-queue; full = 429 + Retry-After); poll
// GET /v1/jobs/{id} for the result. The -chaos-* flags inject slow and
// failing jobs for the load/chaos harness (cmd/loadgen).
//
// With -snapshot-dir, every parsed session is persisted as a binary
// .simx snapshot keyed by its network identity (source hash + tech +
// report name), and a POST over identical content — including after a
// daemon restart — loads the snapshot instead of re-parsing the .sim
// text. Where the platform supports mmap, warm loads additionally go
// through the shared network arena: every session of the same chip
// aliases one read-only mapped view, with copy-on-edit detach onto a
// private heap copy at the first edit barrier (see docs/PERFORMANCE.md
// "Ingest" and docs/SERVER.md on RSS accounting). -netarena off keeps
// the snapshot cache but gives every session its own heap copy.
//
// The API is documented in docs/SERVER.md. On SIGTERM/SIGINT the daemon
// drains gracefully: the listener closes immediately, in-flight requests
// (including a running drain) get -drain-timeout to finish, then the
// process exits. /metrics serves the service counters as JSON; the same
// document is published through expvar at /debug/vars.
//
// -hier on enables hierarchical macromodel analysis for every session:
// replicated instances (annotated @ inst in the .sim) analyze one
// representative and stamp the timing onto the other copies. Results are
// bit-identical either way; analyze responses then carry a "hier"
// provenance block and /metrics a hier.* section.
//
// -debug-addr starts a second HTTP listener serving only net/http/pprof
// (/debug/pprof/...). It is separate from -addr so profiling stays off
// any exposed service port; bind it to localhost.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8653", "listen address")
	maxSessions := flag.Int("max-sessions", 16, "LRU session cache bound (memory knob)")
	workers := flag.Int("workers", 0, "default drain parallelism per analysis (0 = all cores)")
	reorder := flag.String("reorder", "on", "cache-conscious node reordering of compiled networks: on or off (results are bit-identical either way)")
	hier := flag.String("hier", "off", "hierarchical macromodel analysis over instance annotations: on or off (results are bit-identical either way)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this second address (empty = disabled; bind to localhost)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown grace period")
	snapshotDir := flag.String("snapshot-dir", "", "persist .simx session snapshots here for warm starts (empty = disabled)")
	netarena := flag.String("netarena", "on", "share one read-only mapped network view across sessions of the same chip: on or off (off = a private heap copy per session)")
	jobWorkers := flag.Int("job-workers", 2, "async job plane worker-pool size (concurrent {\"async\":true} analyzes/edit scripts)")
	jobQueue := flag.Int("job-queue", 32, "async job queue bound; a full queue answers 429 + Retry-After")
	chaosJobDelay := flag.Duration("chaos-job-delay", 0, "fault injection: stretch every async job execution by this much (load/chaos harness only)")
	chaosJobFailEvery := flag.Int("chaos-job-fail-every", 0, "fault injection: fail every Nth async job with a synthetic 500 (load/chaos harness only; 0 = off)")
	flag.Parse()
	if *reorder != "on" && *reorder != "off" {
		fmt.Fprintf(os.Stderr, "crystald: -reorder: want on or off, got %q\n", *reorder)
		os.Exit(1)
	}
	if *netarena != "on" && *netarena != "off" {
		fmt.Fprintf(os.Stderr, "crystald: -netarena: want on or off, got %q\n", *netarena)
		os.Exit(1)
	}
	if *hier != "on" && *hier != "off" {
		fmt.Fprintf(os.Stderr, "crystald: -hier: want on or off, got %q\n", *hier)
		os.Exit(1)
	}

	sv := server.New(server.Options{
		MaxSessions:    *maxSessions,
		DefaultWorkers: *workers,
		NoReorder:      *reorder == "off",
		Hier:           *hier == "on",
		SnapshotDir:    *snapshotDir,
		NoSharedViews:  *netarena == "off",
		JobWorkers:     *jobWorkers,
		JobQueueDepth:  *jobQueue,
		JobDelay:       *chaosJobDelay,
		JobFailEvery:   *chaosJobFailEvery,
	})
	// The service metrics through the stock expvar protocol, next to the
	// runtime's memstats/cmdline vars.
	expvar.Publish("crystald", expvar.Func(func() any { return sv.MetricsSnapshot() }))
	mux := http.NewServeMux()
	mux.Handle("/", sv)
	mux.Handle("/debug/vars", expvar.Handler())

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("crystald: listening on %s (max %d sessions)", *addr, *maxSessions)

	if *debugAddr != "" {
		// Profiling side mux: only the pprof handlers, on its own listener,
		// so a CPU/heap capture against a loaded daemon never needs the
		// service port. Best effort — a dead debug listener is logged, not
		// fatal.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("crystald: pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				log.Printf("crystald: debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errc:
		// Listener failed before any signal (bad address, port in use).
		fmt.Fprintln(os.Stderr, "crystald:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	log.Printf("crystald: draining (grace %s)", *drainTimeout)
	// Job plane first: new async submissions get 503 while in-flight
	// synchronous requests and already-admitted jobs run out the grace
	// period; then the listener closes and waits for its connections.
	sv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("crystald: forced exit: %v", err)
		os.Exit(1)
	}
	if !sv.WaitJobs(*drainTimeout) {
		log.Printf("crystald: job plane did not drain within %s", *drainTimeout)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "crystald:", err)
		os.Exit(1)
	}
	log.Printf("crystald: drained, bye")
}
