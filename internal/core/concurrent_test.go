package core

import (
	"sync"
	"testing"

	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/stage"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// sameEvent compares arrivals by value, ignoring the Via stage pointer:
// analyzers with private databases hold distinct (but equivalent) stage
// objects, and the guarantee under test is bit-identical times.
func sameEvent(a, b Event) bool {
	return a.Valid == b.Valid && a.T == b.T && a.Slope == b.Slope &&
		a.FromNode == b.FromNode && a.FromTr == b.FromTr
}

// TestConcurrentSharedDB runs several analyzers at once over one network,
// all sharing one stage database, and checks every arrival is bit-identical
// to a strict-serial baseline. Run under -race this exercises the database's
// once-per-entry construction: the "cold" case starts from an empty DB so
// the concurrent analyzers race to build each entry.
func TestConcurrentSharedDB(t *testing.T) {
	p := tech.NMOS4()
	const width = 4
	nw, err := gen.Chip(p, width)
	if err != nil {
		t.Fatal(err)
	}
	fixed, lb := gen.ChipDirectives(width)
	m := delay.NewSlope(delay.AnalyticTables(p))

	newAnalyzer := func(db *stage.DB) *Analyzer {
		opts := Options{DB: db, Workers: 1}
		for _, name := range lb {
			n := nw.Lookup(name)
			if n == nil {
				t.Fatalf("directive node %s missing", name)
			}
			opts.LoopBreak = append(opts.LoopBreak, n)
		}
		a := New(nw, m, opts)
		for name, v := range fixed {
			a.SetFixed(nw.Lookup(name), switchsim.FromBool(v == "1"))
		}
		for _, in := range nw.Inputs() {
			if _, ok := fixed[in.Name]; ok {
				continue
			}
			a.SetInputEvent(in, tech.Rise, 0, 0)
			a.SetInputEvent(in, tech.Fall, 0, 0)
		}
		return a
	}

	// Strict-serial baseline with a private database.
	base := newAnalyzer(nil)
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	warm := base.StageDB()
	if warm == nil {
		t.Fatal("no stage database after run")
	}

	// A cold database with the matching stamp: nothing built yet, so the
	// concurrent runs below contend on every entry's sync.Once.
	cold := stage.NewDB(nw, stage.Options{Oracle: base.oracle()})
	cold.Stamp = warm.Stamp

	for _, tc := range []struct {
		name string
		db   *stage.DB
	}{{"warm", warm}, {"cold", cold}} {
		const runs = 4
		as := make([]*Analyzer, runs)
		errs := make([]error, runs)
		var wg sync.WaitGroup
		for i := range as {
			as[i] = newAnalyzer(tc.db)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = as[i].Run()
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s run %d: %v", tc.name, i, err)
			}
		}
		for i, a := range as {
			if a.StageDB() != tc.db {
				t.Errorf("%s run %d rejected the shared database", tc.name, i)
			}
			for _, n := range nw.Nodes {
				for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
					want, got := base.Arrival(n, tr), a.Arrival(n, tr)
					if !sameEvent(want, got) {
						t.Fatalf("%s run %d: arrival %s/%s = %+v, want %+v",
							tc.name, i, n.Name, tr, got, want)
					}
				}
			}
		}
	}
}

// TestSharedDBStampMismatch checks the safety valve: an analyzer handed a
// database built under a different sensitization must fall back to a
// private one rather than reuse wrong enumerations.
func TestSharedDBStampMismatch(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.Chip(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, lb := gen.ChipDirectives(4)
	m := delay.NewSlope(delay.AnalyticTables(p))
	var opts Options
	for _, name := range lb {
		opts.LoopBreak = append(opts.LoopBreak, nw.Lookup(name))
	}

	stale := stage.NewDB(nw, stage.Options{})
	stale.Stamp = "not-the-real-stamp"
	opts.DB = stale
	opts.Workers = 1
	a := New(nw, m, opts)
	for _, in := range nw.Inputs() {
		a.SetInputEvent(in, tech.Rise, 0, 0)
		a.SetInputEvent(in, tech.Fall, 0, 0)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if a.StageDB() == stale {
		t.Error("analyzer accepted a database with a mismatched stamp")
	}
}
