// Binary network snapshots (.simx): the warm-start half of the ingest
// pipeline. Parsing a chip-scale .sim file costs tokenizing, symbol
// interning and graph construction; a snapshot is the finished graph in
// a flat, versioned, checksummed encoding that loads with little more
// than one allocation per node and transistor. Snapshots are a cache,
// never a source of truth: every snapshot records the SHA-256 of the
// text it was built from plus the technology name, and loaders reject
// (and callers re-parse) on any mismatch — wrong hash, wrong tech, wrong
// version, corrupt payload.
//
// Two format versions coexist: this file implements the compact uvarint
// version 1, simx2.go the fixed-layout memory-mappable version 2 that
// WriteSnapshot now emits by default. ReadSnapshot accepts both.
//
// Version-1 layout (all integers little-endian or uvarint, floats as
// IEEE-754 bit patterns):
//
//	magic    "SIMX"
//	version  uint32 (currently 1)
//	crc32    uint32 — IEEE CRC-32 of the payload that follows
//	payload:
//	  sourceHash [32]byte      SHA-256 of the originating .sim text
//	  tech       uvarint-len string
//	  name       uvarint-len string
//	  nNodes     uvarint
//	  nTrans     uvarint
//	  node × nNodes:
//	    name     uvarint-len string
//	    kind     uvarint
//	    flags    byte (bit 0: precharged)
//	    cap      float64 bits
//	  trans × nTrans:
//	    type     uvarint
//	    flow     uvarint
//	    gate,a,b uvarint node indexes
//	    w, l, r  float64 bits (r = ROverride)
//
// Adjacency (Node.Gates / Node.Terms) is not stored: rebuilding it by
// replaying transistors in index order reproduces AddTrans's order
// exactly and costs a fraction of the I/O saved.
package netlist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/tech"
)

const snapshotMagic = "SIMX"

// SnapshotVersion is the legacy compact .simx format version. Readers
// accept it alongside SnapshotVersion2 and reject anything else.
const SnapshotVersion = 1

// maxSnapshotNodes bounds the node/transistor counts a reader will
// trust before allocating — a corrupt header must not ask for terabytes.
const maxSnapshotCount = 1 << 28

// WriteSnapshot encodes nw to w in the current .simx format (version 2,
// memory-mappable). sourceHash should be the SHA-256 of the .sim text
// (or any caller-defined cache key) that nw was built from; ReadSnapshot
// hands it back so callers can validate freshness.
func WriteSnapshot(w io.Writer, nw *Network, sourceHash [32]byte) error {
	return WriteSnapshotV2(w, nw, sourceHash)
}

// WriteSnapshotV1 encodes nw in the legacy compact uvarint format —
// kept for version-negotiation tests and for tools that must emit files
// readable by older binaries.
func WriteSnapshotV1(w io.Writer, nw *Network, sourceHash [32]byte) error {
	payload := make([]byte, 0, 64+len(nw.Nodes)*24+len(nw.Trans)*40)
	payload = append(payload, sourceHash[:]...)
	payload = appendString(payload, nw.Tech.Name)
	payload = appendString(payload, nw.Name)
	payload = binary.AppendUvarint(payload, uint64(len(nw.Nodes)))
	payload = binary.AppendUvarint(payload, uint64(len(nw.Trans)))
	for _, n := range nw.Nodes {
		payload = appendString(payload, n.Name)
		payload = binary.AppendUvarint(payload, uint64(n.Kind))
		var flags byte
		if n.Precharged {
			flags |= 1
		}
		payload = append(payload, flags)
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(n.Cap))
	}
	for _, t := range nw.Trans {
		payload = binary.AppendUvarint(payload, uint64(t.Type))
		payload = binary.AppendUvarint(payload, uint64(t.Flow))
		payload = binary.AppendUvarint(payload, uint64(t.Gate.Index))
		payload = binary.AppendUvarint(payload, uint64(t.A.Index))
		payload = binary.AppendUvarint(payload, uint64(t.B.Index))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(t.W))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(t.L))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(t.ROverride))
	}
	var hdr [12]byte
	copy(hdr[:4], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], SnapshotVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("simx: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("simx: %w", err)
	}
	return nil
}

// ReadSnapshot decodes a .simx snapshot (either version) from r into a
// fresh Network in technology p, returning the network and the source
// hash recorded at write time. It fails on bad magic, unknown version,
// checksum mismatch, truncated payload, or a technology name different
// from p.Name — all of which mean "re-parse the source", not "the file
// is usable anyway".
func ReadSnapshot(r io.Reader, p *tech.Params) (*Network, [32]byte, error) {
	var sourceHash [32]byte
	data, err := readAllSized(r)
	if err != nil {
		return nil, sourceHash, fmt.Errorf("simx: %w", err)
	}
	if len(data) < 12 || string(data[:4]) != snapshotMagic {
		return nil, sourceHash, fmt.Errorf("simx: bad magic")
	}
	switch v := binary.LittleEndian.Uint32(data[4:8]); v {
	case SnapshotVersion: // fall through to the v1 decoder below
	case SnapshotVersion2:
		return readSnapshotV2(data, p)
	default:
		return nil, sourceHash, fmt.Errorf("simx: version %d, want %d or %d", v, SnapshotVersion, SnapshotVersion2)
	}
	payload := data[12:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(data[8:12]) {
		return nil, sourceHash, fmt.Errorf("simx: checksum mismatch")
	}
	// One string conversion of the whole payload up front: node names are
	// returned as substrings of it, so the decode loop allocates nothing
	// per name (the payload is about the size of the network it encodes,
	// so pinning it behind the name strings costs little).
	d := snapDecoder{buf: payload, str: string(payload)}
	copy(sourceHash[:], d.bytes(32))
	techName := d.string()
	name := d.string()
	nNodes := d.uvarint()
	nTrans := d.uvarint()
	if d.err != nil {
		return nil, sourceHash, fmt.Errorf("simx: truncated header")
	}
	if techName != p.Name {
		return nil, sourceHash, fmt.Errorf("simx: technology %q, want %q", techName, p.Name)
	}
	if nNodes > maxSnapshotCount || nTrans > maxSnapshotCount {
		return nil, sourceHash, fmt.Errorf("simx: implausible counts %d/%d", nNodes, nTrans)
	}
	nw := &Network{
		Name:   name,
		Tech:   p,
		Nodes:  make([]*Node, 0, nNodes),
		Trans:  make([]*Trans, 0, nTrans),
		byName: make(map[string]*Node, nNodes),
	}
	nodes := make([]Node, nNodes) // one allocation for all node structs
	for i := range nodes {
		n := &nodes[i]
		n.Index = i
		n.Name = d.string()
		kind := d.uvarint()
		if kind > uint64(KindOutput) {
			return nil, sourceHash, fmt.Errorf("simx: node %d has kind %d", i, kind)
		}
		n.Kind = NodeKind(kind)
		flags := d.byte()
		n.Precharged = flags&1 != 0
		n.Cap = d.float64()
		if d.err != nil {
			return nil, sourceHash, fmt.Errorf("simx: truncated node %d", i)
		}
		if _, dup := nw.byName[n.Name]; dup {
			return nil, sourceHash, fmt.Errorf("simx: duplicate node name %q", n.Name)
		}
		nw.Nodes = append(nw.Nodes, n)
		nw.byName[n.Name] = n
		switch n.Kind {
		case KindVdd:
			nw.vdd = n
		case KindGnd:
			nw.gnd = n
		}
	}
	if nw.vdd == nil || nw.gnd == nil {
		return nil, sourceHash, fmt.Errorf("simx: missing supply rails")
	}
	trans := make([]Trans, nTrans) // one allocation for all transistors
	gateCnt := make([]int32, nNodes)
	termCnt := make([]int32, nNodes)
	for j := range trans {
		t := &trans[j]
		t.Index = j
		typ, fl := d.uvarint(), d.uvarint()
		if typ > uint64(tech.RWire) || fl > uint64(FlowOff) {
			return nil, sourceHash, fmt.Errorf("simx: transistor %d has type %d flow %d", j, typ, fl)
		}
		t.Type = tech.Device(typ)
		t.Flow = Flow(fl)
		gi, ai, bi := d.uvarint(), d.uvarint(), d.uvarint()
		t.W = d.float64()
		t.L = d.float64()
		t.ROverride = d.float64()
		if d.err != nil {
			return nil, sourceHash, fmt.Errorf("simx: truncated transistor %d", j)
		}
		if gi >= nNodes || ai >= nNodes || bi >= nNodes {
			return nil, sourceHash, fmt.Errorf("simx: transistor %d references node out of range", j)
		}
		t.Gate, t.A, t.B = nw.Nodes[gi], nw.Nodes[ai], nw.Nodes[bi]
		nw.Trans = append(nw.Trans, t)
		gateCnt[gi]++
		termCnt[ai]++
		if bi != ai {
			termCnt[bi]++
		}
	}
	if d.rest() != 0 {
		return nil, sourceHash, fmt.Errorf("simx: %d trailing bytes", d.rest())
	}
	// Rebuild adjacency exactly as AddTrans would have, in index order —
	// but with the exact per-node capacities known from the pass above,
	// every fan-in/fan-out list is a slice of two shared backing arrays:
	// two allocations total instead of one growth chain per node.
	var totalG, totalT int
	for i := range gateCnt {
		totalG += int(gateCnt[i])
		totalT += int(termCnt[i])
	}
	adjBack := make([]*Trans, totalG+totalT)
	gatesBack, termsBack := adjBack[:totalG], adjBack[totalG:]
	offG, offT := 0, 0
	for i := range nodes {
		g, t := int(gateCnt[i]), int(termCnt[i])
		nodes[i].Gates = gatesBack[offG : offG : offG+g]
		nodes[i].Terms = termsBack[offT : offT : offT+t]
		offG += g
		offT += t
	}
	for j := range trans {
		t := &trans[j]
		t.Gate.Gates = append(t.Gate.Gates, t)
		t.A.Terms = append(t.A.Terms, t)
		if t.B != t.A {
			t.B.Terms = append(t.B.Terms, t)
		}
	}
	return nw, sourceHash, nil
}

// readAllSized reads r to EOF like io.ReadAll, but pre-sizes the buffer
// when the reader can report its length (bytes.Reader via Len, os.File
// via Stat) — the growth-chain copies of a blind ReadAll are a large
// fraction of a warm load, and both sized cases cover every production
// caller.
func readAllSized(r io.Reader) ([]byte, error) {
	size := -1
	switch rr := r.(type) {
	case interface{ Len() int }:
		size = rr.Len()
	case *os.File:
		if st, err := rr.Stat(); err == nil && st.Mode().IsRegular() {
			if s := st.Size(); 0 <= s && s < int64(math.MaxInt32) {
				size = int(s)
			}
		}
	}
	if size < 0 {
		return io.ReadAll(r)
	}
	data := make([]byte, size)
	n, err := io.ReadFull(r, data)
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return data[:n], nil
	}
	if err != nil {
		return nil, err
	}
	// The source may hold more than the hint (e.g. a file grown between
	// Stat and read); drain the remainder the slow way.
	rest, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return append(data, rest...), nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// snapDecoder is a cursor over the snapshot payload; on underflow it
// sets err and returns zero values, so decode loops check once per
// record instead of per field. The cursor is a plain integer offset —
// the buf and str views are never re-sliced, so the hot decode loop
// performs no pointer writes (and therefore no GC write barriers). str,
// when set, is the payload as a string; string() slices it instead of
// allocating.
type snapDecoder struct {
	buf []byte
	str string
	pos int
	err error
}

func (d *snapDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("short payload")
	}
}

// rest reports the unconsumed byte count.
func (d *snapDecoder) rest() int { return len(d.buf) - d.pos }

func (d *snapDecoder) bytes(n int) []byte {
	if d.rest() < n {
		d.fail()
		return make([]byte, n)
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *snapDecoder) byte() byte {
	if d.rest() < 1 {
		d.fail()
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *snapDecoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

func (d *snapDecoder) float64() float64 {
	if d.rest() < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return v
}

func (d *snapDecoder) string() string {
	n := d.uvarint()
	if d.err != nil || uint64(d.rest()) < n {
		d.fail()
		return ""
	}
	var s string
	if len(d.str) == len(d.buf) {
		s = d.str[d.pos : d.pos+int(n)]
	} else {
		s = string(d.buf[d.pos : d.pos+int(n)])
	}
	d.pos += int(n)
	return s
}
