// Package switchsim is a three-valued switch-level logic simulator in the
// tradition of esim/IRSIM: node values are {0, 1, X}, signals carry
// strengths {power, drive, depletion, charge}, and networks settle by
// fixpoint iteration over channel-connected groups.
//
// The timing verifier uses it to establish steady-state node values (which
// transistors definitely conduct, which definitely do not), and the test
// suite uses it to verify the functional correctness of every generated
// circuit — an ALU that doesn't add is not worth timing.
package switchsim

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// Value is a ternary logic value.
type Value uint8

const (
	// V0 is logic low.
	V0 Value = iota
	// V1 is logic high.
	V1
	// VX is unknown/conflict.
	VX
)

// String renders the value as "0", "1" or "X".
func (v Value) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	default:
		return "X"
	}
}

// Bool converts a definite value to a bool; ok is false for VX.
func (v Value) Bool() (b, ok bool) {
	switch v {
	case V0:
		return false, true
	case V1:
		return true, true
	}
	return false, false
}

// FromBool converts a bool to V0/V1.
func FromBool(b bool) Value {
	if b {
		return V1
	}
	return V0
}

// strength orders signal sources from weakest to strongest.
type strength uint8

const (
	sNone   strength = iota
	sCharge          // stored charge on a capacitive node
	sDep             // through a depletion-mode pullup
	sDrive           // through an on enhancement transistor from power
	sPower           // rails and chip inputs
)

// sig is a strength/value pair, the element of the resolution lattice.
type sig struct {
	s strength
	v Value
}

// combine merges two contributions: higher strength wins, equal strengths
// with disagreeing values yield X.
func combine(a, b sig) sig {
	switch {
	case a.s > b.s:
		return a
	case b.s > a.s:
		return b
	case a.v == b.v:
		return a
	default:
		return sig{a.s, VX}
	}
}

// conduction describes whether a transistor's channel conducts under the
// current gate value.
type conduction uint8

const (
	condOff conduction = iota
	condOn
	condMaybe
)

// Sim is a simulator instance bound to one network. Create with New, set
// inputs, call Settle, read values.
type Sim struct {
	nw     *netlist.Network
	val    []Value // current value per node index
	fixed  []bool  // rails and driven inputs
	osc    []bool  // nodes forced to X by oscillation detection
	settle int     // settle calls, for diagnostics

	// scratch reused across Settle calls
	dirty   []bool
	queue   []int
	groupID []int
}

// New creates a simulator with rails at their fixed values and every other
// node at X.
func New(nw *netlist.Network) *Sim {
	s := &Sim{
		nw:      nw,
		val:     make([]Value, len(nw.Nodes)),
		fixed:   make([]bool, len(nw.Nodes)),
		osc:     make([]bool, len(nw.Nodes)),
		dirty:   make([]bool, len(nw.Nodes)),
		groupID: make([]int, len(nw.Nodes)),
	}
	for _, n := range nw.Nodes {
		s.val[n.Index] = VX
	}
	s.val[nw.Vdd().Index] = V1
	s.fixed[nw.Vdd().Index] = true
	s.val[nw.GND().Index] = V0
	s.fixed[nw.GND().Index] = true
	return s
}

// SetInput drives node n to value v as a strong source. Rails cannot be
// overridden. Passing VX releases the node back to undriven unknown.
func (s *Sim) SetInput(n *netlist.Node, v Value) error {
	if n.IsRail() {
		return fmt.Errorf("switchsim: cannot drive rail %s", n.Name)
	}
	if v == VX {
		s.fixed[n.Index] = false
		s.val[n.Index] = VX
	} else {
		s.fixed[n.Index] = true
		s.val[n.Index] = v
	}
	s.markDirty(n.Index)
	return nil
}

// SetValue overwrites node n's *stored* value without driving it: the
// node keeps charge-strength state, as if it had been driven earlier and
// then released. Clocked analyses use this to carry latched state across
// phases. Rails cannot be overwritten.
func (s *Sim) SetValue(n *netlist.Node, v Value) error {
	if n.IsRail() {
		return fmt.Errorf("switchsim: cannot overwrite rail %s", n.Name)
	}
	if s.fixed[n.Index] {
		return fmt.Errorf("switchsim: %s is driven; release it before SetValue", n.Name)
	}
	s.val[n.Index] = v
	s.markDirty(n.Index)
	return nil
}

// SetInputName is SetInput by node name.
func (s *Sim) SetInputName(name string, v Value) error {
	n := s.nw.Lookup(name)
	if n == nil {
		return fmt.Errorf("switchsim: no node named %q", name)
	}
	return s.SetInput(n, v)
}

// Value returns the current value of node n.
func (s *Sim) Value(n *netlist.Node) Value { return s.val[n.Index] }

// ValueName returns the value of the named node, or VX if absent.
func (s *Sim) ValueName(name string) Value {
	n := s.nw.Lookup(name)
	if n == nil {
		return VX
	}
	return s.val[n.Index]
}

// Oscillated reports whether the last Settle forced any node to X because
// it failed to stabilize (combinational feedback).
func (s *Sim) Oscillated() bool {
	for _, o := range s.osc {
		if o {
			return true
		}
	}
	return false
}

func (s *Sim) markDirty(idx int) {
	if !s.dirty[idx] {
		s.dirty[idx] = true
		s.queue = append(s.queue, idx)
	}
}

// conducts classifies transistor t's channel under current node values.
func (s *Sim) conducts(t *netlist.Trans) conduction {
	if t.AlwaysOn() {
		return condOn
	}
	g := s.val[t.Gate.Index]
	on := FromBool(t.ConductsOn() == 1)
	switch g {
	case on:
		return condOn
	case VX:
		return condMaybe
	default:
		return condOff
	}
}

// Settle iterates until all node values are stable, or until the
// iteration bound is reached, in which case still-changing nodes are
// forced to X and marked as oscillating. It returns the number of sweeps
// performed. On first call (or after SetInput on many nodes) it evaluates
// everything; later calls are incremental from dirty nodes.
func (s *Sim) Settle() int {
	s.settle++
	if s.settle == 1 && len(s.queue) == 0 {
		// First settle with no explicit inputs: evaluate everything.
		for i := range s.nw.Nodes {
			s.markDirty(i)
		}
	}
	for i := range s.osc {
		s.osc[i] = false
	}
	limit := 20 + 2*len(s.nw.Nodes)
	hard := 2*limit + 2*len(s.nw.Nodes)
	sweeps := 0
	xmode := false // oscillation recovery: changes collapse to X
	for len(s.queue) > 0 {
		sweeps++
		if sweeps > limit {
			xmode = true
		}
		if sweeps > hard {
			// Safety net: abandon whatever still ping-pongs.
			for _, idx := range s.queue {
				s.dirty[idx] = false
				if !s.fixed[idx] && s.val[idx] != VX {
					s.val[idx] = VX
					s.osc[idx] = true
				}
			}
			s.queue = s.queue[:0]
			break
		}
		// A dirty node re-resolves (a) channel groups containing or
		// adjacent to it and (b) the channels of every transistor it
		// gates, whose conduction may have changed.
		work := s.queue
		s.queue = nil
		seeds := make([]int, 0, 2*len(work))
		for _, idx := range work {
			s.dirty[idx] = false
			seeds = append(seeds, idx)
			for _, t := range s.nw.Nodes[idx].Gates {
				seeds = append(seeds, t.A.Index, t.B.Index)
			}
		}
		changed := s.resolveGroups(seeds)
		for _, idx := range changed {
			if xmode && !s.fixed[idx] && s.val[idx] != VX {
				// Oscillation recovery: a node still changing after the
				// sweep limit has no stable value — it becomes X, and X
				// then spreads monotonically until the loop quiesces.
				s.val[idx] = VX
				s.osc[idx] = true
			}
			s.markDirty(idx)
		}
	}
	return sweeps
}

// resolveGroups collects the channel-connected groups containing the seed
// nodes (through non-off transistors), resolves each, applies new values,
// and returns the indexes whose value changed.
func (s *Sim) resolveGroups(seeds []int) []int {
	for i := range s.groupID {
		s.groupID[i] = -1
	}
	var changed []int
	gid := 0
	for _, seed := range seeds {
		n := s.nw.Nodes[seed]
		if n.IsRail() || s.fixed[seed] {
			// Strong sources are group boundaries, so a changed source
			// seeds the groups of its channel neighbors instead of its
			// own (which would be just itself).
			for _, t := range n.Terms {
				o := t.Other(n)
				if o == nil || s.groupID[o.Index] != -1 ||
					o.IsRail() || s.fixed[o.Index] {
					continue
				}
				group := s.collectGroup(o.Index, gid)
				gid++
				changed = append(changed, s.resolveGroup(group)...)
			}
			continue
		}
		if s.groupID[seed] != -1 {
			continue
		}
		group := s.collectGroup(seed, gid)
		gid++
		changed = append(changed, s.resolveGroup(group)...)
	}
	return changed
}

// collectGroup gathers the channel-connected component of seed through
// transistors that are not definitely off, tagging members with gid.
func (s *Sim) collectGroup(seed, gid int) []int {
	stack := []int{seed}
	s.groupID[seed] = gid
	var group []int
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		group = append(group, idx)
		n := s.nw.Nodes[idx]
		if n.IsRail() || s.fixed[idx] {
			// Strong sources terminate the group: values do not need
			// to propagate *through* them, only from them.
			continue
		}
		for _, t := range n.Terms {
			if s.conducts(t) == condOff {
				continue
			}
			o := t.Other(n)
			if o == nil || s.groupID[o.Index] != -1 {
				continue
			}
			s.groupID[o.Index] = gid
			stack = append(stack, o.Index)
		}
	}
	return group
}

// nodeSig is the full resolution state of one node: what definitely
// drives it, plus the strongest *possible* high and low contributions
// reaching it through maybe-conducting paths. Tracking the potential
// strengths separately — and propagating them through the channel graph —
// is what makes NAND(X, X) = X while keeping NOR(1, X) = 0: a possible
// path only forces X when it is strong enough to overturn the definite
// result with the opposite value.
type nodeSig struct {
	def    sig
	potHi  strength // strongest possible contribution of value 1 or X
	potLo  strength // strongest possible contribution of value 0 or X
	source bool     // rails and fixed inputs: immutable during resolution
}

// value reduces the resolved state to a ternary node value.
func (ns nodeSig) value() Value {
	v := ns.def.v
	if v == V1 && ns.potLo >= ns.def.s {
		return VX
	}
	if v == V0 && ns.potHi >= ns.def.s {
		return VX
	}
	return v
}

// baseSig returns the node's intrinsic contribution: its power value for
// sources, its stored charge otherwise.
func (s *Sim) baseSig(idx int) nodeSig {
	n := s.nw.Nodes[idx]
	st := sCharge
	src := false
	if n.IsRail() || s.fixed[idx] {
		st = sPower
		src = true
	}
	v := s.val[idx]
	ns := nodeSig{def: sig{st, v}, source: src}
	if v != V0 {
		ns.potHi = st
	}
	if v != V1 {
		ns.potLo = st
	}
	return ns
}

// strengthCap returns the maximum strength a signal retains after passing
// through transistor t: drive through enhancement devices, depletion
// through depletion loads. Wire resistors are transparent — a driven
// signal stays driven across interconnect.
func strengthCap(t *netlist.Trans) strength {
	switch t.Type {
	case tech.NDep:
		return sDep
	case tech.RWire:
		return sPower
	}
	return sDrive
}

func minStrength(a, b strength) strength {
	if a < b {
		return a
	}
	return b
}

func maxStrength(a, b strength) strength {
	if a > b {
		return a
	}
	return b
}

// resolveGroup computes the fixpoint of the strength/value lattice on one
// channel group and writes back values, returning changed node indexes.
func (s *Sim) resolveGroup(group []int) []int {
	sigs := make(map[int]nodeSig, len(group))
	for _, idx := range group {
		sigs[idx] = s.baseSig(idx)
	}
	// Relax until stable. Each pass propagates one transistor hop, so
	// the group diameter bounds the iteration count.
	for pass := 0; pass <= len(group)+1; pass++ {
		anyChange := false
		for _, idx := range group {
			cur := sigs[idx]
			if cur.source {
				continue
			}
			acc := s.baseSig(idx)
			n := s.nw.Nodes[idx]
			for _, t := range n.Terms {
				cond := s.conducts(t)
				if cond == condOff {
					continue
				}
				o := t.Other(n)
				if o == nil {
					continue
				}
				src, ok := sigs[o.Index]
				if !ok {
					// Neighbor outside the group (beyond a source
					// boundary, or another component).
					src = s.baseSig(o.Index)
				}
				cap := strengthCap(t)
				if cond == condOn {
					acc.def = combine(acc.def, sig{minStrength(src.def.s, cap), src.def.v})
				}
				// Potential strengths flow through both on and
				// maybe-on channels.
				acc.potHi = maxStrength(acc.potHi, minStrength(src.potHi, cap))
				acc.potLo = maxStrength(acc.potLo, minStrength(src.potLo, cap))
			}
			if acc != cur {
				sigs[idx] = acc
				anyChange = true
			}
		}
		if !anyChange {
			break
		}
	}
	var changed []int
	for _, idx := range group {
		ns := sigs[idx]
		if ns.source {
			continue
		}
		if nv := ns.value(); nv != s.val[idx] {
			s.val[idx] = nv
			changed = append(changed, idx)
		}
	}
	return changed
}

// ApplyVector sets several inputs by name and settles; a convenience for
// tests and the verifier.
func (s *Sim) ApplyVector(vec map[string]Value) error {
	for name, v := range vec {
		if err := s.SetInputName(name, v); err != nil {
			return err
		}
	}
	s.Settle()
	return nil
}

// Snapshot returns a copy of all node values indexed like Network.Nodes.
func (s *Sim) Snapshot() []Value {
	out := make([]Value, len(s.val))
	copy(out, s.val)
	return out
}
