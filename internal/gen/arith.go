// Larger arithmetic blocks: the scaling workloads for the capacity
// experiment (E6) beyond the basic datapath set.
package gen

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// ArrayMultiplier builds a w×w unsigned array multiplier: a grid of AND
// partial-product gates summed by a carry-save full-adder array with a
// ripple final row. Ports: "a0".."a(w-1)", "b0".."b(w-1)"; outputs
// "p0".."p(2w-1)". Transistor count grows as w², making it the largest
// standard block.
func ArrayMultiplier(p *tech.Params, w int) (*netlist.Network, error) {
	if w < 2 || w > 32 {
		return nil, fmt.Errorf("gen: multiplier width must be in 2..32, got %d", w)
	}
	l := NewLib(fmt.Sprintf("arraymul-%d", w), p)
	a := make([]*netlist.Node, w)
	b := make([]*netlist.Node, w)
	for i := 0; i < w; i++ {
		a[i] = l.NW.Node(fmt.Sprintf("a%d", i))
		b[i] = l.NW.Node(fmt.Sprintf("b%d", i))
		l.NW.MarkInput(a[i])
		l.NW.MarkInput(b[i])
	}
	// Partial products pp[i][j] = a[j] AND b[i].
	pp := make([][]*netlist.Node, w)
	for i := 0; i < w; i++ {
		pp[i] = make([]*netlist.Node, w)
		for j := 0; j < w; j++ {
			pp[i][j] = l.Fresh(fmt.Sprintf("pp_%d_%d", i, j))
			l.And(pp[i][j], a[j], b[i])
		}
	}
	outs := make([]*netlist.Node, 2*w)
	for i := range outs {
		outs[i] = l.NW.Node(fmt.Sprintf("p%d", i))
		l.NW.MarkOutput(outs[i])
	}
	// Carry-save reduction, row by row: row i adds pp[i] into the
	// running sum with its carries deferred one column left.
	zero := l.Fresh("zero")
	l.Nor(zero, l.NW.Vdd())           // constant 0 gate (input high → output low)
	sum := make([]*netlist.Node, w)   // running sum bits, column j holds weight i+j
	carry := make([]*netlist.Node, w) // deferred carries
	for j := 0; j < w; j++ {
		sum[j] = pp[0][j]
		carry[j] = zero
	}
	// p0 peels off immediately.
	l.Buffer(sum[0], outs[0], 1)
	for i := 1; i < w; i++ {
		newSum := make([]*netlist.Node, w)
		newCarry := make([]*netlist.Node, w)
		for j := 0; j < w; j++ {
			// Column j of row i adds pp[i][j], sum[j+1] (shifted) and
			// carry[j].
			var shifted *netlist.Node
			if j+1 < w {
				shifted = sum[j+1]
			} else {
				shifted = zero
			}
			s := l.Fresh(fmt.Sprintf("s_%d_%d", i, j))
			c := l.Fresh(fmt.Sprintf("c_%d_%d", i, j))
			l.FullAdder(s, c, pp[i][j], shifted, carry[j])
			newSum[j] = s
			newCarry[j] = c
		}
		sum, carry = newSum, newCarry
		l.Buffer(sum[0], outs[i], 1)
	}
	// Final ripple row combines the remaining sum and carry vectors.
	rip := zero
	for j := 1; j < w; j++ {
		s := l.Fresh(fmt.Sprintf("fin_s%d", j))
		c := l.Fresh(fmt.Sprintf("fin_c%d", j))
		l.FullAdder(s, c, sum[j], carry[j-1], rip)
		l.Buffer(s, outs[w+j-1], 1)
		rip = c
	}
	// Top bit: final carry plus the last deferred carry.
	top := l.Fresh("top")
	l.Or(top, rip, carry[w-1])
	l.Buffer(top, outs[2*w-1], 1)
	return l.NW, nil
}

// CarrySelectAdder builds a w-bit carry-select adder with the given block
// size: each block computes both carry-in polarities with ripple adders
// and selects with pass muxes — the structure that trades area for the
// ripple critical path. Ports as RippleAdder.
func CarrySelectAdder(p *tech.Params, w, block int) (*netlist.Network, error) {
	if w < 1 {
		return nil, fmt.Errorf("gen: adder width must be >= 1, got %d", w)
	}
	if block < 1 || block > w {
		block = 4
		if block > w {
			block = w
		}
	}
	l := NewLib(fmt.Sprintf("carrysel-%d-%d", w, block), p)
	carry := l.NW.Node("cin")
	l.NW.MarkInput(carry)
	for lo := 0; lo < w; lo += block {
		hi := lo + block
		if hi > w {
			hi = w
		}
		n := hi - lo
		// Two speculative ripple chains: carry-in 0 and carry-in 1.
		zero := l.Fresh("czero")
		l.Nor(zero, l.NW.Vdd())
		one := l.Fresh("cone")
		l.Nand(one, l.NW.GND())
		spec := [2][]*netlist.Node{} // per polarity: sums then carry-out
		for pol := 0; pol < 2; pol++ {
			c := zero
			if pol == 1 {
				c = one
			}
			for i := 0; i < n; i++ {
				bit := lo + i
				a := l.NW.Node(fmt.Sprintf("a%d", bit))
				b := l.NW.Node(fmt.Sprintf("b%d", bit))
				l.NW.MarkInput(a)
				l.NW.MarkInput(b)
				s := l.Fresh(fmt.Sprintf("s%d_p%d", bit, pol))
				co := l.Fresh(fmt.Sprintf("co%d_p%d", bit, pol))
				l.FullAdder(s, co, a, b, c)
				spec[pol] = append(spec[pol], s)
				c = co
			}
			spec[pol] = append(spec[pol], c)
		}
		// Select with the real block carry-in.
		selB := l.Fresh("selb")
		l.Inverter(carry, selB, 1)
		for i := 0; i < n; i++ {
			out := l.NW.Node(fmt.Sprintf("s%d", lo+i))
			l.NW.MarkOutput(out)
			bus := l.Fresh("selbus")
			l.PassGateDir(carry, selB, spec[1][i], bus)
			l.PassGateDir(selB, carry, spec[0][i], bus)
			mid := l.Fresh("selrest")
			l.Inverter(bus, mid, 1)
			l.Inverter(mid, out, 1)
		}
		var next *netlist.Node
		if hi == w {
			next = l.NW.Node("cout")
			l.NW.MarkOutput(next)
		} else {
			next = l.Fresh(fmt.Sprintf("blkc%d", hi))
		}
		busC := l.Fresh("selbusC")
		l.PassGateDir(carry, selB, spec[1][n], busC)
		l.PassGateDir(selB, carry, spec[0][n], busC)
		midC := l.Fresh("selrestC")
		l.Inverter(busC, midC, 1)
		l.Inverter(midC, next, 1)
		carry = next
	}
	return l.NW, nil
}
