// Package stage implements Crystal's central structural abstraction: the
// *stage*. A stage is a path of (potentially) conducting transistors from
// a strong signal source — a supply rail or a chip input — through the
// channel graph to a target node, together with all the capacitance the
// path must charge or discharge, including side branches hanging off the
// path. Every delay model in this repository evaluates stages; the timing
// verifier enumerates them.
package stage

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/netlist"
	"repro/internal/rctree"
	"repro/internal/tech"
)

// Conduction is the three-valued answer to "does this transistor's channel
// conduct?" supplied by the sensitization oracle.
type Conduction int

const (
	// Off: the channel definitely does not conduct; paths may not use it.
	Off Conduction = iota
	// On: the channel definitely conducts.
	On
	// Maybe: unknown; worst-case analysis must assume it may conduct.
	Maybe
)

// Oracle reports channel conduction for path enumeration. A nil oracle
// means worst case: every device may conduct (except those with FlowOff).
type Oracle func(t *netlist.Trans) Conduction

// worstCase is the nil-oracle behaviour.
func worstCase(*netlist.Trans) Conduction { return Maybe }

// Element is one transistor hop on a stage path, oriented source→target.
type Element struct {
	Trans *netlist.Trans
	// From is the terminal nearer the stage's source; To nearer the target.
	From, To *netlist.Node
}

// SideLoad is capacitance hanging off the path: a node reachable from a
// path node through conducting side transistors.
type SideLoad struct {
	Node *netlist.Node
	// Attach indexes the path position the branch hangs from: 0 attaches
	// at the source node, i>0 at Path[i-1].To.
	Attach int
	// R is the accumulated side-branch resistance from the attach point
	// to Node, in ohms, for the stage's transition direction.
	R float64
	// C is the capacitance of Node in farads.
	C float64
}

// Stage is a driving path plus its loading.
type Stage struct {
	// Source is the strong node supplying the transition (rail or input).
	Source *netlist.Node
	// Target is the node whose transition this stage times.
	Target *netlist.Node
	// Trigger is the path transistor whose gate transition initiates the
	// stage, or nil when the stage is initiated by a channel-side event
	// (an input transition propagating through already-on devices) or by
	// another device turning off (load pullup stages).
	Trigger *netlist.Trans
	// Path runs source→target; never empty.
	Path []Element
	// Side holds off-path capacitive loading.
	Side []SideLoad
	// PathCap caches the total capacitance of each path node (index
	// aligned with Path: PathCap[i] loads Path[i].To), precomputed at
	// construction so delay models avoid re-walking adjacency lists.
	PathCap []float64
	// Transition is the direction Target moves (Rise when Source is high).
	Transition tech.Transition

	// pathBloom is a 64-bit bloom of the path transistors' indices; a
	// clear bit proves a transistor is not on the path, so UsesTrans can
	// reject without scanning. Zero means "not computed" (hand-built
	// stages), which falls back to the scan.
	pathBloom uint64
	// sideSorted records that Side is ordered by ascending Attach, the
	// invariant the delay models' allocation-free Elmore merge relies on.
	sideSorted bool
	// driver caches the path index of the element whose device governs
	// the stage's slope behaviour (the trigger if on the path, else the
	// source-adjacent element); driverSet distinguishes a computed 0 from
	// a hand-built stage.
	driver    int
	driverSet bool
	// srcInput caches Source.Index+1 when the source is a chip input, 0
	// otherwise (or on hand-built stages, which fall back to the pointer).
	// The analyzer's per-evaluation source-validity check reads this
	// instead of dereferencing Source.
	srcInput int32

	// memo is an opaque slot for delay-model evaluation constants. An
	// enumerated stage is immutable (finish freezes its loading into
	// PathCap/Side), so everything a model derives from it other than the
	// input slope is a per-stage constant; models stash those here keyed
	// by their own table identity. Concurrent stores race benignly: the
	// value is a pure function of the (stage, tables) pair, so every
	// writer stores identical contents.
	memo atomic.Pointer[any]
}

// Memo returns the cached evaluation constants stored by SetMemo, or nil.
// Callers must validate the value's key (e.g. a table pointer) themselves.
func (s *Stage) Memo() any {
	if p := s.memo.Load(); p != nil {
		return *p
	}
	return nil
}

// SetMemo stores evaluation constants for Memo to return. Safe for
// concurrent use.
func (s *Stage) SetMemo(m any) { s.memo.Store(&m) }

// finish computes the derived loading fields (side loads, path caps).
func (s *Stage) finish(nw *netlist.Network, opt Options) {
	s.Side = sideLoads(nw, s, opt)
	// Sorting the side loads by attach position lets evaluators merge
	// them into a single backwards path walk with no scratch allocation.
	sort.Slice(s.Side, func(i, j int) bool { return s.Side[i].Attach < s.Side[j].Attach })
	s.sideSorted = true
	s.PathCap = make([]float64, len(s.Path))
	for i, e := range s.Path {
		s.PathCap[i] = opt.nodeCap(nw, e.To)
		s.pathBloom |= 1 << (uint(e.Trans.Index) & 63)
	}
	s.driver = 0
	if s.Trigger != nil {
		for i, e := range s.Path {
			if e.Trans == s.Trigger {
				s.driver = i
				break
			}
		}
	}
	s.driverSet = true
	if s.Source.Kind == netlist.KindInput {
		s.srcInput = int32(s.Source.Index) + 1
	}
}

// Driver returns the precomputed driver element index and whether it was
// computed (false for hand-assembled stages, which must derive it).
func (s *Stage) Driver() (int, bool) { return s.driver, s.driverSet }

// SideSorted reports whether Side is sorted by ascending Attach (true for
// every enumerated stage; hand-assembled stages may not be).
func (s *Stage) SideSorted() bool { return s.sideSorted }

// SourceInputIndex returns the node index of the stage's source when that
// source is a chip input, and -1 otherwise. Enumerated stages answer from
// a cached field; hand-assembled ones fall back to the source node.
func (s *Stage) SourceInputIndex() int {
	if s.srcInput > 0 {
		return int(s.srcInput) - 1
	}
	if !s.driverSet && s.Source != nil && s.Source.Kind == netlist.KindInput {
		return s.Source.Index
	}
	return -1
}

// UsesTrans reports whether the stage's path runs through transistor t.
// The bloom filter rejects most queries without touching the path.
// Identity is by index, not pointer: a stage memoized in a previous edit
// generation of the network describes the same device under the same
// index (the incremental engine re-enumerates any group whose indexes
// were disturbed), so cross-generation queries still answer correctly.
func (s *Stage) UsesTrans(t *netlist.Trans) bool {
	if s.pathBloom != 0 && s.pathBloom&(1<<(uint(t.Index)&63)) == 0 {
		return false
	}
	for _, e := range s.Path {
		if e.Trans.Index == t.Index {
			return true
		}
	}
	return false
}

// String renders the stage compactly: "Vdd -(d:out)-> out [rise]".
func (s *Stage) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", s.Source.Name)
	for _, e := range s.Path {
		fmt.Fprintf(&b, " -(%s g=%s)-> %s", e.Trans.Type, e.Trans.Gate.Name, e.To.Name)
	}
	fmt.Fprintf(&b, " [%s]", s.Transition)
	return b.String()
}

// elementR returns the effective resistance of one element for the given
// transition: the element's own override (wire resistors) or the
// technology's rule-of-thumb table.
func elementR(p *tech.Params, t *netlist.Trans, tr tech.Transition) float64 {
	if t.ROverride > 0 {
		return t.ROverride
	}
	return p.R(t.Type, tr, t.W, t.L)
}

// SeriesR returns the total series resistance of the path in ohms for the
// stage's transition, using the technology's step-input effective
// resistances (callers with calibrated tables scale per element).
func (s *Stage) SeriesR(p *tech.Params) float64 {
	r := 0.0
	for _, e := range s.Path {
		r += elementR(p, e.Trans, s.Transition)
	}
	return r
}

// TotalC returns the total capacitance the stage drives: every path node
// after the source, plus all side loads.
func (s *Stage) TotalC(nw *netlist.Network) float64 {
	c := 0.0
	if s.PathCap != nil {
		for _, pc := range s.PathCap {
			c += pc
		}
	} else {
		for _, e := range s.Path {
			c += nw.NodeCap(e.To)
		}
	}
	for _, sl := range s.Side {
		c += sl.C
	}
	return c
}

// ElementR returns the step-input effective resistance of path element i.
func (s *Stage) ElementR(nw *netlist.Network, i int) float64 {
	e := s.Path[i]
	return elementR(nw.Tech, e.Trans, s.Transition)
}

// Tree builds the RC tree of the stage: root at the source, a chain of
// path nodes, side loads attached with their branch resistance. rscale
// optionally multiplies the resistance of individual path elements
// (index-aligned with Path); nil applies no scaling. The returned indexes
// map path positions to tree nodes: treeIdx[0] is the source/root,
// treeIdx[i] is Path[i-1].To, so treeIdx[len(Path)] is the target.
func (s *Stage) Tree(nw *netlist.Network, rscale []float64) (*rctree.Tree, []int) {
	t := rctree.New(0, s.Source.Name) // source: driven rail, no cap charge needed
	treeIdx := make([]int, len(s.Path)+1)
	treeIdx[0] = 0
	for i, e := range s.Path {
		r := s.ElementR(nw, i)
		if rscale != nil && rscale[i] > 0 {
			r *= rscale[i]
		}
		treeIdx[i+1] = t.Add(treeIdx[i], r, nw.NodeCap(e.To), e.To.Name)
	}
	for _, sl := range s.Side {
		r := sl.R
		if r <= 0 {
			// A zero-resistance side branch (directly attached cap)
			// merges into its attach node.
			t.AddCap(treeIdx[sl.Attach], sl.C)
			continue
		}
		t.Add(treeIdx[sl.Attach], r, sl.C, sl.Node.Name)
	}
	return t, treeIdx
}

// Options bounds stage enumeration.
type Options struct {
	// Oracle supplies conduction; nil = worst case (everything Maybe).
	Oracle Oracle
	// MaxDepth bounds path length in transistors (default 64).
	MaxDepth int
	// MaxPaths bounds the number of source paths enumerated per query
	// (default 256). Overflow is reported via Truncated.
	MaxPaths int

	// caps, when non-nil, is a node-index-keyed snapshot of NodeCap over
	// the (immutable) network being enumerated. The database installs it so
	// stage construction reads a float instead of re-walking adjacency
	// lists per node; direct enumeration calls leave it nil and fall back.
	caps []float64
}

// nodeCap returns the total capacitance loading n, from the snapshot when
// one is installed.
func (o *Options) nodeCap(nw *netlist.Network, n *netlist.Node) float64 {
	if o.caps != nil {
		return o.caps[n.Index]
	}
	return nw.NodeCap(n)
}

// Fill returns the options with defaults applied (the exported form, used
// by callers that need to know the effective bounds, e.g. for cache keys).
func (o Options) Fill() Options { return o.fill() }

func (o Options) fill() Options {
	if o.Oracle == nil {
		o.Oracle = worstCase
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 64
	}
	if o.MaxPaths <= 0 {
		o.MaxPaths = 256
	}
	return o
}

// Result carries enumerated stages plus enumeration diagnostics.
type Result struct {
	Stages []*Stage
	// Truncated is true if MaxPaths or MaxDepth pruned the enumeration.
	Truncated bool
}

// sourceWanted reports whether node n can source the given target
// transition: Vdd and high inputs source rises, GND and low inputs source
// falls. Inputs source both (their own transition direction is decided by
// the caller), so they are accepted for either.
func sourceWanted(n *netlist.Node, tr tech.Transition) bool {
	switch n.Kind {
	case netlist.KindVdd:
		return tr == tech.Rise
	case netlist.KindGnd:
		return tr == tech.Fall
	case netlist.KindInput:
		return true
	}
	return false
}

// ToNode enumerates all stages that could drive target with transition tr:
// every acyclic path from an appropriate strong source to target through
// transistors the oracle does not rule out, respecting flow hints. Side
// loading is computed per stage.
func ToNode(nw *netlist.Network, target *netlist.Node, tr tech.Transition, opt Options) Result {
	opt = opt.fill()
	var res Result
	if target.IsSource() {
		return res
	}
	// DFS backward from target toward sources. Paths are built
	// target→source then reversed.
	onPath := make(map[*netlist.Node]bool)
	var rev []Element // elements target→source orientation (From/To in final orientation)
	var dfs func(n *netlist.Node, depth int)
	dfs = func(n *netlist.Node, depth int) {
		if len(res.Stages) >= opt.MaxPaths {
			res.Truncated = true
			return
		}
		if depth > opt.MaxDepth {
			res.Truncated = true
			return
		}
		onPath[n] = true
		defer delete(onPath, n)
		for _, t := range n.Terms {
			if opt.Oracle(t) == Off {
				continue
			}
			o := t.Other(n)
			if o == nil || onPath[o] {
				continue
			}
			// Final orientation is source→target, so the signal flows
			// o→n here; check the flow hint in that direction.
			if !t.CanFlow(o) {
				continue
			}
			rev = append(rev, Element{Trans: t, From: o, To: n})
			if o.IsSource() {
				if sourceWanted(o, tr) {
					res.Stages = append(res.Stages, buildStage(nw, o, target, rev, tr, opt))
				}
			} else {
				dfs(o, depth+1)
			}
			rev = rev[:len(rev)-1]
		}
	}
	dfs(target, 0)
	return res
}

// buildStage reverses the collected path and computes side loading.
func buildStage(nw *netlist.Network, source, target *netlist.Node, rev []Element, tr tech.Transition, opt Options) *Stage {
	path := make([]Element, len(rev))
	for i, e := range rev {
		path[len(rev)-1-i] = e
	}
	st := &Stage{Source: source, Target: target, Path: path, Transition: tr}
	st.finish(nw, opt)
	return st
}

// slQent is one pending BFS visit of the side-load walk.
type slQent struct {
	n      *netlist.Node
	attach int
	r      float64
}

// slScratch is the recycled working set of sideLoads: epoch-stamped marks
// keyed by node/transistor index instead of per-call maps. sideLoads runs
// once per enumerated stage — hundreds of thousands of times on a chip —
// and two fresh maps per call (visited nodes, path membership) dominated
// the whole enumeration in both time and garbage. A stamp match replaces
// the map hit; bumping the stamp replaces clearing.
type slScratch struct {
	stamp     uint32
	nodeStamp []uint32 // node index → stamp when last visited
	transOn   []uint32 // trans index → stamp when on the current path
	q         []slQent
}

var slPool sync.Pool

// next readies the scratch for one sideLoads call over nw.
func (s *slScratch) next(nw *netlist.Network) {
	if len(s.nodeStamp) < len(nw.Nodes) {
		s.nodeStamp = make([]uint32, len(nw.Nodes))
	}
	if len(s.transOn) < len(nw.Trans) {
		s.transOn = make([]uint32, len(nw.Trans))
	}
	s.stamp++
	if s.stamp == 0 { // wrapped: marks are ambiguous, start over
		clear(s.nodeStamp)
		clear(s.transOn)
		s.stamp = 1
	}
	s.q = s.q[:0]
}

// sideLoads walks outward from every path node through conducting
// transistors (per the oracle), collecting the capacitance of off-path
// nodes. Each off-path node is attributed to the first path node that
// reaches it (shortest-hop via BFS from the whole path at once), with the
// accumulated branch resistance.
func sideLoads(nw *netlist.Network, st *Stage, opt Options) []SideLoad {
	s, _ := slPool.Get().(*slScratch)
	if s == nil {
		s = &slScratch{}
	}
	s.next(nw)
	defer slPool.Put(s)
	// Seed with path nodes (and source) at zero resistance. Attachment
	// point and branch resistance ride in the queue entries; only the
	// visited marks live in the stamped arrays.
	s.nodeStamp[st.Source.Index] = s.stamp
	s.q = append(s.q, slQent{st.Source, 0, 0})
	for i, e := range st.Path {
		s.nodeStamp[e.To.Index] = s.stamp
		s.q = append(s.q, slQent{e.To, i + 1, 0})
		s.transOn[e.Trans.Index] = s.stamp
	}
	var out []SideLoad
	for qi := 0; qi < len(s.q); qi++ {
		cur := s.q[qi]
		if cur.n.IsSource() {
			// Ideal sources absorb: nothing behind a rail or input
			// loads the stage, and expansion must not pass through.
			continue
		}
		for _, t := range cur.n.Terms {
			if opt.Oracle(t) == Off {
				continue
			}
			// Skip path elements themselves.
			if s.transOn[t.Index] == s.stamp {
				continue
			}
			o := t.Other(cur.n)
			if o == nil {
				continue
			}
			if !t.CanFlow(cur.n) {
				continue
			}
			if s.nodeStamp[o.Index] == s.stamp {
				continue
			}
			r := cur.r + elementR(nw.Tech, t, st.Transition)
			s.nodeStamp[o.Index] = s.stamp
			// A strong node absorbs the branch: it contributes no
			// capacitance (it is a rail/input) and stops expansion.
			if o.IsSource() {
				continue
			}
			out = append(out, SideLoad{Node: o, Attach: cur.attach, R: r, C: opt.nodeCap(nw, o)})
			s.q = append(s.q, slQent{o, cur.attach, r})
		}
	}
	return out
}

// Through enumerates the stages created when transistor trig becomes
// conducting: every stage whose path passes through trig, targeting each
// node reachable on the far side (including trig's own far terminal).
// Source-side paths are enumerated exhaustively (bounded by MaxPaths);
// the far side is expanded as a spanning tree, one stage per reached node.
func Through(nw *netlist.Network, trig *netlist.Trans, tr tech.Transition, opt Options) Result {
	opt = opt.fill()
	var res Result
	// For each orientation of the trigger (A→B and B→A), find source
	// paths ending at the near terminal, then extend to far-side nodes.
	for _, orient := range [2]struct{ near, far *netlist.Node }{
		{trig.A, trig.B}, {trig.B, trig.A},
	} {
		if !trig.CanFlow(orient.near) || orient.near == orient.far {
			continue
		}
		srcPaths := pathsToNode(nw, orient.near, tr, opt, trig)
		if srcPaths.Truncated {
			res.Truncated = true
		}
		if len(srcPaths.paths) == 0 && orient.near.IsSource() && sourceWanted(orient.near, tr) {
			// The near terminal is itself a source: the trivial path.
			srcPaths.paths = append(srcPaths.paths, nil)
		}
		for _, sp := range srcPaths.paths {
			exts := spanningExtensions(nw, orient.far, orient.near, sp, trig, opt)
			for _, ext := range exts {
				if len(sp)+1+len(ext) > opt.MaxDepth {
					res.Truncated = true
					continue
				}
				full := make([]Element, 0, len(sp)+1+len(ext))
				full = append(full, sp...)
				full = append(full, Element{Trans: trig, From: orient.near, To: orient.far})
				full = append(full, ext...)
				src := orient.near
				if len(sp) > 0 {
					src = sp[0].From
				}
				target := full[len(full)-1].To
				st := &Stage{
					Source:     src,
					Target:     target,
					Trigger:    trig,
					Path:       full,
					Transition: tr,
				}
				st.finish(nw, opt)
				res.Stages = append(res.Stages, st)
				if len(res.Stages) >= opt.MaxPaths {
					res.Truncated = true
					return res
				}
			}
		}
	}
	return res
}

type pathSet struct {
	paths     [][]Element // each source→near orientation
	Truncated bool
}

// pathsToNode enumerates acyclic source→end paths not using `exclude`.
func pathsToNode(nw *netlist.Network, end *netlist.Node, tr tech.Transition, opt Options, exclude *netlist.Trans) pathSet {
	var ps pathSet
	if end.IsSource() {
		return ps
	}
	onPath := map[*netlist.Node]bool{}
	var rev []Element
	var dfs func(n *netlist.Node, depth int)
	dfs = func(n *netlist.Node, depth int) {
		if len(ps.paths) >= opt.MaxPaths || depth > opt.MaxDepth {
			ps.Truncated = true
			return
		}
		onPath[n] = true
		defer delete(onPath, n)
		for _, t := range n.Terms {
			if t == exclude || opt.Oracle(t) == Off {
				continue
			}
			o := t.Other(n)
			if o == nil || onPath[o] || !t.CanFlow(o) {
				continue
			}
			rev = append(rev, Element{Trans: t, From: o, To: n})
			if o.IsSource() {
				if sourceWanted(o, tr) {
					p := make([]Element, len(rev))
					for i, e := range rev {
						p[len(rev)-1-i] = e
					}
					ps.paths = append(ps.paths, p)
				}
			} else {
				dfs(o, depth+1)
			}
			rev = rev[:len(rev)-1]
		}
	}
	dfs(end, 0)
	return ps
}

// spanningExtensions returns, for every node reachable from `from` through
// conducting transistors without touching the source path, the tree path
// to it (as a list of elements from `from` outward). The empty extension
// (targeting `from` itself) is always first.
func spanningExtensions(nw *netlist.Network, from, near *netlist.Node, srcPath []Element, trig *netlist.Trans, opt Options) [][]Element {
	blocked := map[*netlist.Node]bool{near: true}
	for _, e := range srcPath {
		blocked[e.From] = true
		blocked[e.To] = true
	}
	exts := [][]Element{nil}
	if from.IsSource() {
		return exts
	}
	type item struct {
		n    *netlist.Node
		path []Element
	}
	seen := map[*netlist.Node]bool{from: true}
	q := []item{{from, nil}}
	for len(q) > 0 {
		cur := q[0]
		q = q[1:]
		if len(cur.path) >= opt.MaxDepth {
			continue
		}
		for _, t := range cur.n.Terms {
			if t == trig || opt.Oracle(t) == Off {
				continue
			}
			o := t.Other(cur.n)
			if o == nil || seen[o] || blocked[o] || !t.CanFlow(cur.n) {
				continue
			}
			seen[o] = true
			if o.IsSource() {
				continue
			}
			np := make([]Element, len(cur.path)+1)
			copy(np, cur.path)
			np[len(cur.path)] = Element{Trans: t, From: cur.n, To: o}
			exts = append(exts, np)
			q = append(q, item{o, np})
		}
	}
	return exts
}

// FromNode enumerates the stages created when node src itself transitions
// (an externally timed event, e.g. a chip input feeding pass transistors):
// a spanning tree of the conducting channel graph rooted at src, one stage
// per reachable node, each with Source = src and no trigger.
func FromNode(nw *netlist.Network, src *netlist.Node, tr tech.Transition, opt Options) Result {
	opt = opt.fill()
	var res Result
	type item struct {
		n    *netlist.Node
		path []Element
	}
	seen := map[*netlist.Node]bool{src: true}
	q := []item{{src, nil}}
	for len(q) > 0 {
		cur := q[0]
		q = q[1:]
		if len(cur.path) >= opt.MaxDepth {
			res.Truncated = true
			continue
		}
		for _, t := range cur.n.Terms {
			if opt.Oracle(t) == Off {
				continue
			}
			o := t.Other(cur.n)
			if o == nil || seen[o] || !t.CanFlow(cur.n) {
				continue
			}
			seen[o] = true
			if o.IsSource() {
				continue
			}
			np := make([]Element, len(cur.path)+1)
			copy(np, cur.path)
			np[len(cur.path)] = Element{Trans: t, From: cur.n, To: o}
			st := &Stage{Source: src, Target: o, Path: np, Transition: tr}
			st.finish(nw, opt)
			res.Stages = append(res.Stages, st)
			if len(res.Stages) >= opt.MaxPaths {
				res.Truncated = true
				return res
			}
			q = append(q, item{o, np})
		}
	}
	return res
}

// WorstRC returns the lumped time constant (series R × total C) of the
// stage, a convenience several reports use.
func (s *Stage) WorstRC(nw *netlist.Network) float64 {
	return s.SeriesR(nw.Tech) * s.TotalC(nw)
}

// Validate checks structural sanity of a stage: non-empty contiguous path
// from source to target with positive geometry.
func (s *Stage) Validate() error {
	if len(s.Path) == 0 {
		return fmt.Errorf("stage: empty path")
	}
	if s.Path[0].From != s.Source {
		return fmt.Errorf("stage: path starts at %s, source is %s", s.Path[0].From, s.Source)
	}
	if s.Path[len(s.Path)-1].To != s.Target {
		return fmt.Errorf("stage: path ends at %s, target is %s", s.Path[len(s.Path)-1].To, s.Target)
	}
	for i := 1; i < len(s.Path); i++ {
		if s.Path[i].From != s.Path[i-1].To {
			return fmt.Errorf("stage: discontinuity at element %d", i)
		}
	}
	for _, sl := range s.Side {
		if sl.Attach < 0 || sl.Attach > len(s.Path) {
			return fmt.Errorf("stage: side load attach %d out of range", sl.Attach)
		}
		if sl.C < 0 || sl.R < 0 || math.IsNaN(sl.C) || math.IsNaN(sl.R) {
			return fmt.Errorf("stage: bad side load on %s", sl.Node)
		}
	}
	return nil
}
