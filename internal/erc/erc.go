// Package erc implements the electrical rule checks that accompanied the
// switch-level timing work: the static sanity rules Crystal and its
// contemporaries applied before timing a chip. Violations here usually
// explain "impossible" timing results, so cmd/crystal exposes the checker
// behind a flag.
//
// Rules:
//
//	ratio           — nMOS ratioed-logic pullup/pulldown ratio too small
//	                  (the output low level rises and successors slow down
//	                  or misswitch)
//	threshold-drop  — a node that can only be driven high through
//	                  n-channel pass devices (reaching Vdd−Vt) gates
//	                  further pass devices, compounding the drop
//	floating        — a node that gates transistors but can never be
//	                  driven to either rail
//	static-short    — an always-on (depletion) path connects Vdd to GND
//	charge-sharing  — a precharged node can lose too much of its charge
//	                  to discharged capacitance in its channel group
package erc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netlist"
	"repro/internal/stage"
	"repro/internal/tech"
)

// Severity grades findings.
type Severity int

const (
	// Warning marks questionable but possibly intended structures.
	Warning Severity = iota
	// Error marks structures that cannot work as drawn.
	Error
)

// String renders the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one rule violation.
type Finding struct {
	Rule     string
	Severity Severity
	// Node is the subject net (may be nil for device-level findings).
	Node *netlist.Node
	// Detail is a human-readable explanation with the numbers that
	// triggered the rule.
	Detail string
}

// String renders the finding on one line.
func (f Finding) String() string {
	where := "-"
	if f.Node != nil {
		where = f.Node.Name
	}
	return fmt.Sprintf("%-7s %-15s %-12s %s", f.Severity, f.Rule, where, f.Detail)
}

// Options tunes rule thresholds.
type Options struct {
	// MinRatio is the minimum acceptable pullup/pulldown resistance
	// ratio for nMOS ratioed gates (default 3.5; the classic rule is 4).
	MinRatio float64
	// MaxChargeShare is the largest acceptable fraction of a precharged
	// node's charge lost to its channel group (default 0.30).
	MaxChargeShare float64
	// Stage bounds the path searches.
	Stage stage.Options
}

func (o Options) fill() Options {
	if o.MinRatio <= 0 {
		o.MinRatio = 3.5
	}
	if o.MaxChargeShare <= 0 {
		o.MaxChargeShare = 0.30
	}
	return o
}

// Check runs every rule and returns findings sorted by severity then node
// name (deterministic for golden tests).
func Check(nw *netlist.Network, opt Options) []Finding {
	opt = opt.fill()
	var out []Finding
	out = append(out, checkStaticShorts(nw)...)
	out = append(out, checkFloating(nw, opt)...)
	out = append(out, checkRatios(nw, opt)...)
	out = append(out, checkThresholdDrops(nw, opt)...)
	out = append(out, checkChargeSharing(nw, opt)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		ni, nj := "", ""
		if out[i].Node != nil {
			ni = out[i].Node.Name
		}
		if out[j].Node != nil {
			nj = out[j].Node.Name
		}
		return ni < nj
	})
	return out
}

// checkStaticShorts finds always-on conduction paths between the rails.
func checkStaticShorts(nw *netlist.Network) []Finding {
	// BFS from Vdd through always-on devices only.
	seen := make(map[*netlist.Node]bool)
	q := []*netlist.Node{nw.Vdd()}
	seen[nw.Vdd()] = true
	var out []Finding
	for len(q) > 0 {
		n := q[0]
		q = q[1:]
		for _, t := range n.Terms {
			if !t.AlwaysOn() {
				continue
			}
			// A depletion device with gate tied to source is a load:
			// it conducts, so it still propagates the search.
			o := t.Other(n)
			if o == nil || seen[o] {
				continue
			}
			if o.Kind == netlist.KindGnd {
				out = append(out, Finding{
					Rule: "static-short", Severity: Error, Node: n,
					Detail: fmt.Sprintf("always-on path reaches GND through %s", t),
				})
				continue
			}
			seen[o] = true
			if !o.IsSource() {
				q = append(q, o)
			}
		}
	}
	return out
}

// checkFloating flags nodes that gate transistors but have no possible
// driving path in either direction.
func checkFloating(nw *netlist.Network, opt Options) []Finding {
	var out []Finding
	for _, n := range nw.Nodes {
		if n.IsSource() || len(n.Gates) == 0 {
			continue
		}
		rise := stage.ToNode(nw, n, tech.Rise, opt.Stage)
		fall := stage.ToNode(nw, n, tech.Fall, opt.Stage)
		if len(rise.Stages) == 0 && len(fall.Stages) == 0 {
			out = append(out, Finding{
				Rule: "floating", Severity: Error, Node: n,
				Detail: fmt.Sprintf("gates %d transistor(s) but no stage can drive it", len(n.Gates)),
			})
		}
	}
	return out
}

// checkRatios verifies nMOS ratioed gates: for every node with a
// depletion pullup, the pullup resistance must sufficiently exceed the
// strongest pulldown path.
func checkRatios(nw *netlist.Network, opt Options) []Finding {
	var out []Finding
	if nw.Tech.HasPChannel() {
		return nil // complementary logic is not ratioed
	}
	for _, n := range nw.Nodes {
		if n.IsSource() {
			continue
		}
		// Find a depletion load: dep device between n and Vdd (a wire
		// resistor to Vdd is not a logic load).
		var load *netlist.Trans
		for _, t := range n.Terms {
			if t.Type == tech.NDep && (t.Other(n) == nw.Vdd()) {
				load = t
				break
			}
		}
		if load == nil {
			continue
		}
		rUp := nw.Tech.R(load.Type, tech.Rise, load.W, load.L)
		// Strongest (minimum-resistance) pulldown path.
		falls := stage.ToNode(nw, n, tech.Fall, opt.Stage)
		best := 0.0
		var bestStage *stage.Stage
		for _, st := range falls.Stages {
			if st.Source.Kind != netlist.KindGnd {
				continue
			}
			r := st.SeriesR(nw.Tech)
			if bestStage == nil || r < best {
				best, bestStage = r, st
			}
		}
		if bestStage == nil {
			continue
		}
		ratio := rUp / best
		if ratio < opt.MinRatio {
			out = append(out, Finding{
				Rule: "ratio", Severity: Warning, Node: n,
				Detail: fmt.Sprintf("pullup/pulldown ratio %.2f < %.2f (pullup %.0fΩ, strongest pulldown %.0fΩ via %s)",
					ratio, opt.MinRatio, rUp, best, bestStage),
			})
		}
	}
	return out
}

// degradedHigh reports whether every way to drive node n high passes
// through an n-channel enhancement device (losing a threshold).
func degradedHigh(nw *netlist.Network, n *netlist.Node, opt Options) bool {
	rises := stage.ToNode(nw, n, tech.Rise, opt.Stage)
	if len(rises.Stages) == 0 {
		return false // cannot rise at all; the floating rule covers it
	}
	for _, st := range rises.Stages {
		clean := true
		for _, e := range st.Path {
			if e.Trans.Type == tech.NEnh {
				clean = false
				break
			}
		}
		if clean {
			return false // some restoring path exists
		}
	}
	return true
}

// checkThresholdDrops flags degraded-high nodes that gate n-channel pass
// devices whose channels must in turn pass a high level: the second
// device's output only reaches Vdd − 2Vt.
func checkThresholdDrops(nw *netlist.Network, opt Options) []Finding {
	var out []Finding
	for _, n := range nw.Nodes {
		if n.IsSource() || len(n.Gates) == 0 {
			continue
		}
		if !degradedHigh(nw, n, opt) {
			continue
		}
		// Degraded node gating an n-enh whose channel is not a simple
		// pulldown (neither terminal is GND) is passing data: the
		// compounded drop rule.
		for _, t := range n.Gates {
			if t.Type != tech.NEnh {
				continue
			}
			if t.A.Kind == netlist.KindGnd || t.B.Kind == netlist.KindGnd {
				continue // pulldown use: a weak gate is a ratio problem, not a drop
			}
			out = append(out, Finding{
				Rule: "threshold-drop", Severity: Warning, Node: n,
				Detail: fmt.Sprintf("level Vdd−Vt gates pass device %s; its output high is degraded twice", t),
			})
			break
		}
	}
	return out
}

// checkChargeSharing estimates, for each precharged node, the worst-case
// fraction of its charge redistributed into its (possibly conducting)
// channel group during evaluation.
func checkChargeSharing(nw *netlist.Network, opt Options) []Finding {
	var out []Finding
	for _, n := range nw.Nodes {
		if !n.Precharged || n.IsSource() {
			continue
		}
		own := nw.NodeCap(n)
		if own <= 0 {
			continue
		}
		// Worst case: every channel neighbor reachable without passing
		// a rail shares its capacitance.
		sharedCap := 0.0
		seen := map[*netlist.Node]bool{n: true}
		q := []*netlist.Node{n}
		for len(q) > 0 {
			cur := q[0]
			q = q[1:]
			for _, t := range cur.Terms {
				o := t.Other(cur)
				if o == nil || seen[o] {
					continue
				}
				seen[o] = true
				if o.IsSource() {
					continue // a rail connection is a drive, not sharing
				}
				sharedCap += nw.NodeCap(o)
				q = append(q, o)
			}
		}
		frac := sharedCap / (own + sharedCap)
		if frac > opt.MaxChargeShare {
			out = append(out, Finding{
				Rule: "charge-sharing", Severity: Warning, Node: n,
				Detail: fmt.Sprintf("worst case loses %.0f%% of charge to %.1f fF of group capacitance (node %.1f fF)",
					frac*100, sharedCap*1e15, own*1e15),
			})
		}
	}
	return out
}

// Format renders findings as an aligned report.
func Format(fs []Finding) string {
	if len(fs) == 0 {
		return "electrical rules: clean\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "electrical rules: %d finding(s)\n", len(fs))
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}
