// File-level ingest with snapshot caching: the one entry point the
// command-line tools use to turn a .sim path into a Network. The cache
// protocol is deliberately simple — one .simx file per .sim file, keyed
// by content hash, validated on every load:
//
//	hash := SHA-256(sim bytes)
//	snapshot exists && snapshot.hash == hash && snapshot.tech == tech
//	    → load snapshot (no parsing)
//	otherwise
//	    → parse (parallel), then rewrite the snapshot atomically
//
// Editing the .sim file, switching technologies, corrupting the
// snapshot, or bumping the format version all change or fail one of the
// checks and fall back to a parse; a stale snapshot can never be served.
package netlist

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/tech"
)

// LoadOptions configures LoadSimFile.
type LoadOptions struct {
	// Workers is the parser worker count: 0 = GOMAXPROCS, 1 = serial,
	// N = at most N.
	Workers int
	// Snapshot, when non-empty, is the path of the .simx cache file to
	// load from when fresh and rewrite after a parse. Empty disables
	// caching.
	Snapshot string
	// NoMmap disables the memory-mapped snapshot fast path; fresh v2
	// snapshots are then heap-decoded like v1 ones. Used by benchmarks
	// and fallback tests; production callers leave it false.
	NoMmap bool
}

// Load sources, in decreasing order of preference.
const (
	// SourceMmap: a fresh v2 snapshot served as a zero-copy mapped view.
	SourceMmap = "mmap"
	// SourceSnapshot: a fresh snapshot heap-decoded (v1 file, NoMmap,
	// or a platform without mmap).
	SourceSnapshot = "snapshot"
	// SourceParse: no usable snapshot; the .sim text was parsed.
	SourceParse = "parse"
)

// LoadResult describes how LoadSimFile obtained the network.
type LoadResult struct {
	// Source is SourceMmap, SourceSnapshot or SourceParse.
	Source string
	// Mapped is the live mapping when Source is SourceMmap, else nil.
	// The caller owns its lifetime; see Mapped.Close for the rules.
	// Callers that cannot bound the network's lifetime keep it open for
	// the life of the process.
	Mapped *Mapped
}

// FromCache reports whether the parse was skipped (either cached path).
func (r LoadResult) FromCache() bool { return r.Source != SourceParse }

// LoadSimFile reads the .sim netlist at path into a checked Network
// named name, via the snapshot cache when one is configured and fresh.
// A fresh v2 snapshot is served as a zero-copy memory-mapped view
// (res.Source == SourceMmap) where the platform supports it; v1 files
// and mmap failures fall back to the heap decoder, and any snapshot
// failure at all falls back to a parse. The parse path runs
// Network.Check before the snapshot is written, so a snapshot hit skips
// both the parse and the structural check — a .simx file never holds a
// network that did not pass. A snapshot that fails to load for any
// reason is treated as a miss, and a snapshot write failure is returned
// as an error only after the network itself loaded — callers that only
// care about the network may ignore it, but silently losing the cache
// forever is worse than saying so.
func LoadSimFile(name, path string, p *tech.Params, opt LoadOptions) (nw *Network, res LoadResult, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, res, err
	}
	hash := sha256.Sum256(data)
	if opt.Snapshot != "" {
		if snap, res, ok := loadFreshSnapshot(opt.Snapshot, name, p, hash, opt.NoMmap); ok {
			return snap, res, nil
		}
	}
	res = LoadResult{Source: SourceParse}
	nw, err = ReadSimParallel(name, p, bytes.NewReader(data), opt.Workers)
	if err != nil {
		return nil, res, err
	}
	if err := nw.Check(); err != nil {
		return nil, res, err
	}
	if opt.Snapshot != "" {
		if werr := WriteSnapshotFile(opt.Snapshot, nw, hash); werr != nil {
			return nw, res, fmt.Errorf("writing snapshot: %w", werr)
		}
	}
	return nw, res, nil
}

// loadFreshSnapshot loads path and reports whether it matches the
// wanted source hash and technology. Any failure — missing file,
// version skew, checksum, staleness — is a cache miss. The network name
// is a caller-chosen label, not part of the structure the hash pins, so
// a hit is relabeled to the requested name; this lets a snapshot
// emitted by `benchgen -snapshot` serve `crystal -sim f.sim`, whose
// name (the file path) benchgen cannot know.
func loadFreshSnapshot(path, name string, p *tech.Params, hash [32]byte, noMmap bool) (*Network, LoadResult, bool) {
	if mmapSupported && !noMmap {
		if m, err := OpenMapped(path, p); err == nil {
			if m.SourceHash == hash {
				m.Net.Name = name
				return m.Net, LoadResult{Source: SourceMmap, Mapped: m}, true
			}
			m.Close() // stale: the network never escaped, unmapping is safe
		}
		// Any mapped-path failure (v1 file, platform quirk) falls through
		// to the heap decoder, which accepts both versions.
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, LoadResult{}, false
	}
	defer f.Close()
	nw, gotHash, err := ReadSnapshot(f, p)
	if err != nil || gotHash != hash {
		return nil, LoadResult{}, false
	}
	nw.Name = name
	return nw, LoadResult{Source: SourceSnapshot}, true
}

// WriteSnapshotFile writes nw as a .simx snapshot at path, atomically:
// the bytes land in a temp file in the same directory and are renamed
// into place, so concurrent readers see either the old snapshot or the
// new one, never a torn write.
func WriteSnapshotFile(path string, nw *Network, sourceHash [32]byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".simx-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteSnapshot(tmp, nw, sourceHash); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
