package sched

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
)

// Pool is a set of persistent worker goroutines for the drain's parallel
// phases. Workers are spawned once and reused every round, so the
// per-frontier cost is two channel hops per worker, not a goroutine spawn.
//
// Every worker goroutine carries pprof labels — worker=<id> permanently,
// phase=<name> for the duration of each round — so CPU profiles of a
// parallel analysis break down by drain phase (see docs/PERFORMANCE.md).
type Pool struct {
	workers int
	rounds  []chan round
	wg      sync.WaitGroup
}

type round struct {
	phase string
	fn    func(worker int)
	done  *sync.WaitGroup
}

// NewPool starts n workers (minimum 1). Close must be called to release
// them.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{workers: n, rounds: make([]chan round, n)}
	for w := 0; w < n; w++ {
		p.rounds[w] = make(chan round, 1)
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker(w int) {
	defer p.wg.Done()
	base := pprof.Labels("subsystem", "sched", "worker", strconv.Itoa(w))
	pprof.Do(context.Background(), base, func(ctx context.Context) {
		for r := range p.rounds[w] {
			pprof.Do(ctx, pprof.Labels("phase", r.phase), func(context.Context) {
				r.fn(w)
			})
			r.done.Done()
		}
	})
}

// Do runs fn once per worker concurrently (fn receives the worker id) and
// waits for all of them. The phase string becomes the workers' pprof
// "phase" label for the duration. Do must not be called concurrently with
// itself or Close.
func (p *Pool) Do(phase string, fn func(worker int)) {
	var done sync.WaitGroup
	done.Add(p.workers)
	r := round{phase: phase, fn: fn, done: &done}
	for w := 0; w < p.workers; w++ {
		p.rounds[w] <- r
	}
	done.Wait()
}

// Close stops the workers and waits for them to exit.
func (p *Pool) Close() {
	for w := 0; w < p.workers; w++ {
		close(p.rounds[w])
	}
	p.wg.Wait()
}
