package netlist

import (
	"math"
	"testing"

	"repro/internal/tech"
)

// subInverter builds a one-inverter network with ports "in"/"out".
func subInverter(p *tech.Params) *Network {
	nw := New("inv", p)
	in, out := nw.Node("in"), nw.Node("out")
	nw.MarkInput(in)
	nw.MarkOutput(out)
	nw.AddCap(out, 5e-15)
	nw.AddTrans(tech.NEnh, in, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 0, 4*p.MinL)
	return nw
}

func TestImportBasics(t *testing.T) {
	p := tech.NMOS4()
	top := New("top", p)
	a := top.Node("a")
	top.MarkInput(a)
	sub := subInverter(p)
	if err := top.Import(sub, "u1_", map[string]string{"in": "a", "out": "y"}); err != nil {
		t.Fatal(err)
	}
	if err := top.Check(); err != nil {
		t.Fatal(err)
	}
	if len(top.Trans) != 2 {
		t.Fatalf("transistor count %d, want 2", len(top.Trans))
	}
	// The sub's gate now hangs off "a".
	if len(a.Gates) != 1 {
		t.Errorf("a gates %d devices, want 1", len(a.Gates))
	}
	y := top.Lookup("y")
	if y == nil {
		t.Fatal("port y missing")
	}
	// Extra cap (5 fF beyond default) merged onto the port.
	want := p.CWire + 5e-15
	if math.Abs(y.Cap-want) > 1e-21 {
		t.Errorf("y cap = %g, want %g", y.Cap, want)
	}
	// a kept its top-level kind.
	if a.Kind != KindInput {
		t.Errorf("a kind = %v", a.Kind)
	}
}

func TestImportPrefixesUnconnected(t *testing.T) {
	p := tech.NMOS4()
	top := New("top", p)
	sub := subInverter(p)
	if err := top.Import(sub, "u1_", nil); err != nil {
		t.Fatal(err)
	}
	if top.Lookup("u1_in") == nil || top.Lookup("u1_out") == nil {
		t.Fatal("prefixed nodes missing")
	}
	if top.Lookup("u1_in").Kind != KindInput {
		t.Error("unconnected port should keep its kind")
	}
	// Importing again with the same prefix collides.
	if err := top.Import(sub, "u1_", nil); err == nil {
		t.Error("prefix collision should fail")
	}
	// A different prefix is fine.
	if err := top.Import(sub, "u2_", nil); err != nil {
		t.Error(err)
	}
	if err := top.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestImportErrors(t *testing.T) {
	p := tech.NMOS4()
	top := New("top", p)
	if err := top.Import(nil, "x_", nil); err == nil {
		t.Error("nil sub should fail")
	}
	sub := subInverter(tech.CMOS3())
	if err := top.Import(sub, "x_", nil); err == nil {
		t.Error("technology mismatch should fail")
	}
	sub2 := subInverter(p)
	if err := top.Import(sub2, "x_", map[string]string{"nope": "a"}); err == nil {
		t.Error("bad connect source should fail")
	}
}

func TestImportPreservesAttributes(t *testing.T) {
	p := tech.NMOS4()
	sub := New("dyn", p)
	g := sub.Node("g")
	sub.MarkInput(g)
	d := sub.Node("d")
	d.Precharged = true
	tr := sub.AddTrans(tech.NEnh, g, sub.Node("s"), d, 3e-6, 2e-6)
	tr.Flow = FlowBA
	top := New("top", p)
	if err := top.Import(sub, "k_", nil); err != nil {
		t.Fatal(err)
	}
	kd := top.Lookup("k_d")
	if kd == nil || !kd.Precharged {
		t.Error("precharge lost")
	}
	if top.Trans[0].Flow != FlowBA {
		t.Error("flow hint lost")
	}
	if top.Trans[0].W != 3e-6 {
		t.Error("geometry lost")
	}
}
