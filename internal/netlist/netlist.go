// Package netlist represents digital MOS circuits at the switch level: a
// bipartite graph of nodes (electrical nets carrying capacitance) and
// transistors (switches with a gate terminal and two interchangeable
// channel terminals). This is the representation the timing verifier, the
// switch-level simulator, and the stage extractor all operate on.
//
// Networks can be built programmatically (package gen does so), read from
// Berkeley .sim files (ReadSim), or written back out (WriteSim).
package netlist

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/tech"
)

// Flow restricts the direction in which signals may propagate through a
// transistor's channel during stage extraction. Extracted layouts do not
// distinguish source from drain, so by default information may flow both
// ways; user hints (Crystal's "flow" attributes) break pathological cases
// such as barrel shifters, where unrestricted flow invents impossible paths.
type Flow int

const (
	// FlowBoth permits propagation in either direction (default).
	FlowBoth Flow = iota
	// FlowAB permits propagation only from terminal A to terminal B.
	FlowAB
	// FlowBA permits propagation only from terminal B to terminal A.
	FlowBA
	// FlowOff forbids the stage extractor from passing through the
	// channel entirely (the device still loads its terminals).
	FlowOff
)

// String returns a mnemonic for the flow restriction.
func (f Flow) String() string {
	switch f {
	case FlowBoth:
		return "both"
	case FlowAB:
		return "a>b"
	case FlowBA:
		return "b>a"
	case FlowOff:
		return "off"
	}
	return fmt.Sprintf("Flow(%d)", int(f))
}

// NodeKind classifies special nodes.
type NodeKind int

const (
	// KindNormal is an ordinary internal node.
	KindNormal NodeKind = iota
	// KindVdd is the positive supply rail.
	KindVdd
	// KindGnd is the ground rail.
	KindGnd
	// KindInput is a chip input: a strong source with externally
	// specified timing.
	KindInput
	// KindOutput is a watched output (affects reporting only).
	KindOutput
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case KindNormal:
		return "normal"
	case KindVdd:
		return "vdd"
	case KindGnd:
		return "gnd"
	case KindInput:
		return "input"
	case KindOutput:
		return "output"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Node is one electrical net.
type Node struct {
	// Index is the node's position in Network.Nodes; stable for the
	// lifetime of the network and usable as a dense array key.
	Index int
	// Name is the net name. Unique within a network.
	Name string
	// Kind classifies rails, inputs and outputs.
	Kind NodeKind
	// Cap is explicit capacitance to ground in farads (wiring plus any
	// .sim-file capacitors). Device capacitances are added on top by
	// Network.NodeCap.
	Cap float64
	// Gates lists transistors whose gate terminal is this node.
	Gates []*Trans
	// Terms lists transistors with a channel terminal (A or B) here.
	Terms []*Trans
	// Precharged marks nodes initialized high by a precharge clock;
	// the timing verifier seeds their initial value accordingly.
	Precharged bool
}

// IsRail reports whether the node is Vdd or GND.
func (n *Node) IsRail() bool { return n.Kind == KindVdd || n.Kind == KindGnd }

// IsSource reports whether the node is a strong signal source from the
// point of view of stage extraction: a rail or a chip input.
func (n *Node) IsSource() bool { return n.IsRail() || n.Kind == KindInput }

// String returns the node name.
func (n *Node) String() string { return n.Name }

// Degree returns the number of transistor terminals attached to the node
// (gates plus channel terminals).
func (n *Node) Degree() int { return len(n.Gates) + len(n.Terms) }

// Trans is one transistor.
type Trans struct {
	// Index is the transistor's position in Network.Trans.
	Index int
	// Type is the device type (n-enhancement, n-depletion, p-enhancement).
	Type tech.Device
	// Gate is the controlling node.
	Gate *Node
	// A and B are the channel terminals. The switch-level view does not
	// distinguish source from drain; Flow optionally restricts direction.
	A, B *Node
	// W, L are channel width and length in meters.
	W, L float64
	// Flow restricts stage-extraction direction through the channel.
	Flow Flow
	// ROverride, when positive, replaces the technology-table resistance
	// for this element — used by RWire interconnect resistors, whose
	// resistance is a property of the wire, not the process tables.
	ROverride float64
}

// Other returns the channel terminal opposite n, or nil if n is not a
// channel terminal of the transistor.
func (t *Trans) Other(n *Node) *Node {
	switch n {
	case t.A:
		return t.B
	case t.B:
		return t.A
	}
	return nil
}

// ConductsOn returns the gate value (0 or 1) at which the device conducts.
// Depletion devices conduct regardless; for them the returned value is 1
// and callers should consult AlwaysOn.
func (t *Trans) ConductsOn() int {
	if t.Type == tech.PEnh {
		return 0
	}
	return 1
}

// AlwaysOn reports whether the device conducts regardless of gate voltage
// (depletion-mode devices with their large negative threshold, and wire
// resistors).
func (t *Trans) AlwaysOn() bool { return t.Type == tech.NDep || t.Type == tech.RWire }

// IsWire reports whether the element is an interconnect resistor.
func (t *Trans) IsWire() bool { return t.Type == tech.RWire }

// CanFlow reports whether stage extraction may move from channel terminal
// `from` to the opposite terminal.
func (t *Trans) CanFlow(from *Node) bool {
	switch t.Flow {
	case FlowBoth:
		return true
	case FlowAB:
		return from == t.A
	case FlowBA:
		return from == t.B
	}
	return false
}

// String renders the transistor compactly for diagnostics.
func (t *Trans) String() string {
	return fmt.Sprintf("%s(g=%s a=%s b=%s w=%.2g l=%.2g)",
		t.Type, t.Gate.Name, t.A.Name, t.B.Name, t.W, t.L)
}

// Instance records that the transistors [TransLo, TransHi) were stamped
// as one hierarchical block. Composition (Import) appends these
// automatically; .sim files carry them as "@ inst" directives and .simx v2
// snapshots as an optional section. They are annotations only — nothing in
// the electrical model reads them — but the hierarchical analyzer
// (internal/hier) uses them as candidate regions for macromodel reuse.
type Instance struct {
	// Path is the hierarchical name, e.g. "t3_" or "t3_dp_". Non-empty.
	Path string
	// TransLo and TransHi bound the instance's transistors, half-open in
	// index space: every device the stamp created, contiguous by
	// construction (Import appends).
	TransLo, TransHi int
}

// Network is a switch-level circuit: nodes, transistors, and the
// technology they are drawn in.
type Network struct {
	// Name labels the network in reports.
	Name string
	// Tech supplies device constants. Never nil.
	Tech *tech.Params
	// Nodes and Trans own the graph. Indexes are dense.
	Nodes []*Node
	Trans []*Trans

	// Instances lists hierarchical stamp annotations, children before
	// their enclosing parent (the order Import records them in). May be
	// empty; ranges may nest but never partially overlap when produced by
	// Import.
	Instances []Instance

	// byName is the name index. Construction paths build it eagerly; the
	// memory-mapped .simx loader leaves it nil and nameOnce materializes
	// it on the first Lookup/Node call — analysis touches nodes by index
	// only, so a mapped load never pays the map build (and concurrent
	// sessions aliasing one read-only view race-safely share the build).
	byName   map[string]*Node
	nameOnce sync.Once
	vdd      *Node
	gnd      *Node
}

// ensureByName materializes the lazy name index. Safe for concurrent use
// on an otherwise immutable network (the Once fast path is one atomic
// load); a no-op when the index was built eagerly at construction.
func (nw *Network) ensureByName() {
	nw.nameOnce.Do(func() {
		if nw.byName != nil {
			return
		}
		m := make(map[string]*Node, len(nw.Nodes))
		for _, n := range nw.Nodes {
			m[n.Name] = n
		}
		nw.byName = m
	})
}

// New creates an empty network in the given technology. The rails "Vdd"
// and "GND" are created immediately and are accessible via Vdd and GND.
func New(name string, p *tech.Params) *Network {
	if p == nil {
		panic("netlist: nil tech.Params")
	}
	nw := &Network{Name: name, Tech: p, byName: make(map[string]*Node)}
	nw.vdd = nw.Node("Vdd")
	nw.vdd.Kind = KindVdd
	nw.gnd = nw.Node("GND")
	nw.gnd.Kind = KindGnd
	// Rails are ideal sources; they carry no load of their own.
	nw.vdd.Cap = 0
	nw.gnd.Cap = 0
	return nw
}

// Vdd returns the positive supply node.
func (nw *Network) Vdd() *Node { return nw.vdd }

// GND returns the ground node.
func (nw *Network) GND() *Node { return nw.gnd }

// Node returns the node with the given name, creating it (as KindNormal,
// with the technology's default wire capacitance) if it does not exist.
// The names "Vdd", "VDD", "vdd" alias the supply; "GND", "Gnd", "gnd",
// "VSS", "Vss", "vss" alias ground.
func (nw *Network) Node(name string) *Node {
	switch name {
	case "VDD", "vdd":
		name = "Vdd"
	case "Gnd", "gnd", "VSS", "Vss", "vss":
		name = "GND"
	}
	nw.ensureByName()
	if n, ok := nw.byName[name]; ok {
		return n
	}
	n := &Node{Index: len(nw.Nodes), Name: name, Cap: nw.Tech.CWire}
	nw.Nodes = append(nw.Nodes, n)
	nw.byName[name] = n
	return n
}

// Lookup returns the node with the given name, or nil if absent. Unlike
// Node it never creates.
func (nw *Network) Lookup(name string) *Node {
	nw.ensureByName()
	return nw.byName[name]
}

// AddTrans adds a transistor of type d with the given terminals and
// geometry (meters). Zero or negative w/l are replaced by the technology
// minima. It returns the new transistor.
func (nw *Network) AddTrans(d tech.Device, gate, a, b *Node, w, l float64) *Trans {
	if w <= 0 {
		w = nw.Tech.MinW
	}
	if l <= 0 {
		l = nw.Tech.MinL
	}
	t := &Trans{Index: len(nw.Trans), Type: d, Gate: gate, A: a, B: b, W: w, L: l}
	nw.Trans = append(nw.Trans, t)
	gate.Gates = append(gate.Gates, t)
	a.Terms = append(a.Terms, t)
	if b != a {
		b.Terms = append(b.Terms, t)
	}
	return t
}

// AddResistor adds an interconnect resistor of r ohms between nodes a and
// b: an always-conducting, strength-preserving element whose resistance
// lives on the element itself. Its "gate" is tied to Vdd for structural
// uniformity. It panics on non-positive resistance (a programming error).
func (nw *Network) AddResistor(a, b *Node, r float64) *Trans {
	if r <= 0 {
		panic(fmt.Sprintf("netlist: resistor %g Ω must be positive", r))
	}
	t := nw.AddTrans(tech.RWire, nw.vdd, a, b, nw.Tech.MinW, nw.Tech.MinL)
	t.ROverride = r
	return t
}

// AddCap adds c farads of explicit capacitance to node n. Capacitance
// between two signal nodes in a .sim file is split half to each, per
// common practice for switch-level tools.
func (nw *Network) AddCap(n *Node, c float64) {
	n.Cap += c
}

// MarkInput declares the named node a chip input (a strong source).
func (nw *Network) MarkInput(n *Node) {
	if n.IsRail() {
		return
	}
	n.Kind = KindInput
}

// MarkOutput declares the named node a watched output.
func (nw *Network) MarkOutput(n *Node) {
	if n.Kind == KindNormal {
		n.Kind = KindOutput
	}
}

// NodeCap returns the total capacitance in farads loading node n: explicit
// capacitance plus the gate capacitance of every device gated by n plus
// one diffusion-terminal capacitance per channel terminal attached.
func (nw *Network) NodeCap(n *Node) float64 {
	c := n.Cap
	for _, t := range n.Gates {
		if t.IsWire() {
			continue // a wire's "gate" tie is structural, not a load
		}
		c += nw.Tech.GateCap(t.W, t.L)
	}
	for _, t := range n.Terms {
		if t.IsWire() {
			continue // wire capacitance is explicit, not diffusion
		}
		c += nw.Tech.DiffCap(t.W)
		if t.A == n && t.B == n {
			c += nw.Tech.DiffCap(t.W) // both terminals land here
		}
	}
	return c
}

// Stats summarizes a network.
type Stats struct {
	Nodes, Trans             int
	NEnh, NDep, PEnh, Wires  int
	Inputs, Outputs          int
	TotalCap                 float64 // farads, explicit + device
	MaxFanout, MaxChannelDeg int
}

// Stats computes summary statistics in one pass.
func (nw *Network) Stats() Stats {
	var s Stats
	s.Nodes = len(nw.Nodes)
	s.Trans = len(nw.Trans)
	for _, t := range nw.Trans {
		switch t.Type {
		case tech.NEnh:
			s.NEnh++
		case tech.NDep:
			s.NDep++
		case tech.PEnh:
			s.PEnh++
		case tech.RWire:
			s.Wires++
		}
	}
	for _, n := range nw.Nodes {
		switch n.Kind {
		case KindInput:
			s.Inputs++
		case KindOutput:
			s.Outputs++
		}
		s.TotalCap += nw.NodeCap(n)
		if len(n.Gates) > s.MaxFanout {
			s.MaxFanout = len(n.Gates)
		}
		if len(n.Terms) > s.MaxChannelDeg {
			s.MaxChannelDeg = len(n.Terms)
		}
	}
	return s
}

// Check verifies structural invariants of the network and returns the
// first violation found, or nil. Invariants: names are unique and
// non-empty; indexes are dense; adjacency lists are consistent with
// transistor terminals; geometry is positive; device types are legal for
// the technology; no transistor gates itself into a rail short
// (gate on a rail is fine; both channel terminals on opposite rails is
// flagged as a supply short).
func (nw *Network) Check() error {
	seen := make(map[string]bool, len(nw.Nodes))
	for i, n := range nw.Nodes {
		if n.Index != i {
			return fmt.Errorf("netlist %s: node %q has index %d, want %d", nw.Name, n.Name, n.Index, i)
		}
		if n.Name == "" {
			return fmt.Errorf("netlist %s: node %d has empty name", nw.Name, i)
		}
		if seen[n.Name] {
			return fmt.Errorf("netlist %s: duplicate node name %q", nw.Name, n.Name)
		}
		seen[n.Name] = true
		if n.Cap < 0 {
			return fmt.Errorf("netlist %s: node %q has negative capacitance %g", nw.Name, n.Name, n.Cap)
		}
	}
	for i, t := range nw.Trans {
		if t.Index != i {
			return fmt.Errorf("netlist %s: transistor %d has index %d", nw.Name, i, t.Index)
		}
		if t.Gate == nil || t.A == nil || t.B == nil {
			return fmt.Errorf("netlist %s: transistor %d has nil terminal", nw.Name, i)
		}
		if t.W <= 0 || t.L <= 0 {
			return fmt.Errorf("netlist %s: transistor %d has non-positive geometry %gx%g", nw.Name, i, t.W, t.L)
		}
		if t.Type == tech.PEnh && !nw.Tech.HasPChannel() {
			return fmt.Errorf("netlist %s: p-channel transistor %d in technology %s", nw.Name, i, nw.Tech.Name)
		}
		if t.Type == tech.RWire && t.ROverride <= 0 {
			return fmt.Errorf("netlist %s: wire resistor %d has no resistance", nw.Name, i)
		}
		if t.Type != tech.RWire && t.ROverride != 0 {
			return fmt.Errorf("netlist %s: transistor %d carries a resistance override", nw.Name, i)
		}
		if (t.A.Kind == KindVdd && t.B.Kind == KindGnd) || (t.A.Kind == KindGnd && t.B.Kind == KindVdd) {
			return fmt.Errorf("netlist %s: transistor %d shorts the supplies through one channel", nw.Name, i)
		}
	}
	// Adjacency consistency in O(nodes + edges). A per-transistor scan of
	// the terminal lists (`t ∈ t.A.Terms`) is quadratic on rails — GND's
	// Terms holds a large fraction of every transistor in the design, so a
	// chip-scale Check would spend minutes re-walking it. Instead walk
	// each list once: every entry must name the owning node among its
	// terminals (validity), appear at most once per list (dedup marker),
	// and the per-transistor tallies must land exactly on the expected
	// membership count (1 gate list; 1 terminal list when A == B, else 2).
	gateSeen := make([]uint8, len(nw.Trans))
	termSeen := make([]uint8, len(nw.Trans))
	lastList := make([]int32, len(nw.Trans)) // node index+1 of the last Terms list naming this trans
	for _, n := range nw.Nodes {
		for _, t := range n.Gates {
			if t == nil || t.Index < 0 || t.Index >= len(nw.Trans) || nw.Trans[t.Index] != t {
				return fmt.Errorf("netlist %s: gate list of %q holds a foreign transistor", nw.Name, n.Name)
			}
			if t.Gate != n {
				return fmt.Errorf("netlist %s: gate list of %q holds transistor %d gated by %q", nw.Name, n.Name, t.Index, t.Gate.Name)
			}
			if gateSeen[t.Index] != 0 {
				return fmt.Errorf("netlist %s: transistor %d appears twice in the gate list of %q", nw.Name, t.Index, n.Name)
			}
			gateSeen[t.Index] = 1
		}
		for _, t := range n.Terms {
			if t == nil || t.Index < 0 || t.Index >= len(nw.Trans) || nw.Trans[t.Index] != t {
				return fmt.Errorf("netlist %s: terminal list of %q holds a foreign transistor", nw.Name, n.Name)
			}
			if t.A != n && t.B != n {
				return fmt.Errorf("netlist %s: terminal list of %q holds transistor %d with terminals %q/%q", nw.Name, n.Name, t.Index, t.A.Name, t.B.Name)
			}
			if lastList[t.Index] == int32(n.Index)+1 {
				return fmt.Errorf("netlist %s: transistor %d appears twice in the terminal list of %q", nw.Name, t.Index, n.Name)
			}
			lastList[t.Index] = int32(n.Index) + 1
			termSeen[t.Index]++
		}
	}
	for i, t := range nw.Trans {
		if gateSeen[i] == 0 {
			return fmt.Errorf("netlist %s: transistor %d missing from gate list of %q", nw.Name, i, t.Gate.Name)
		}
		want := uint8(2)
		if t.A == t.B {
			want = 1
		}
		if termSeen[i] != want {
			return fmt.Errorf("netlist %s: transistor %d missing from a terminal list", nw.Name, i)
		}
	}
	for i, inst := range nw.Instances {
		if inst.Path == "" {
			return fmt.Errorf("netlist %s: instance %d has empty path", nw.Name, i)
		}
		if inst.TransLo < 0 || inst.TransHi < inst.TransLo || inst.TransHi > len(nw.Trans) {
			return fmt.Errorf("netlist %s: instance %q has transistor range [%d,%d) outside [0,%d)",
				nw.Name, inst.Path, inst.TransLo, inst.TransHi, len(nw.Trans))
		}
	}
	return nil
}

// SortedNodeNames returns all node names in lexical order; handy for
// deterministic reports and tests.
func (nw *Network) SortedNodeNames() []string {
	names := make([]string, 0, len(nw.Nodes))
	for _, n := range nw.Nodes {
		names = append(names, n.Name)
	}
	sort.Strings(names)
	return names
}

// Inputs returns all nodes marked as chip inputs, in index order.
func (nw *Network) Inputs() []*Node {
	var in []*Node
	for _, n := range nw.Nodes {
		if n.Kind == KindInput {
			in = append(in, n)
		}
	}
	return in
}

// Outputs returns all nodes marked as watched outputs, in index order.
func (nw *Network) Outputs() []*Node {
	var out []*Node
	for _, n := range nw.Nodes {
		if n.Kind == KindOutput {
			out = append(out, n)
		}
	}
	return out
}
