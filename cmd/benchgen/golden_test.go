package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// update rewrites the golden files instead of diffing against them:
//
//	go test ./cmd/benchgen -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden output files")

// TestGoldenOutput pins the generator listing and the emitted .sim text
// for representative circuits: the interchange format (device lines,
// geometry units, cap records, @ directives) is what every downstream
// tool parses, so drift here is an interface break.
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		name string
		cfg  config
	}{
		{"list", config{list: true}},
		{"invchain4", config{circuit: "invchain:4", techName: "nmos-4u"}},
		{"superbuffer", config{circuit: "superbuffer", techName: "nmos-4u"}},
		{"passchain3-cmos", config{circuit: "passchain:3", techName: "cmos-3u"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, diag strings.Builder
			if err := run(tc.cfg, &out, &diag); err != nil {
				t.Fatal(err)
			}
			got := out.String() + diag.String()
			golden := "testdata/golden/" + tc.name + ".txt"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s:\n--- want ---\n%s\n--- got ---\n%s",
					golden, want, got)
			}
		})
	}
}

// TestGoldenE6XLStats pins the E6-XL scale point's stats line — the
// 100k+ node chip grid BENCH_7 ingests. Only the summary is pinned
// (the multi-MB .sim body is discarded): the contract is the family's
// shape, not its bytes, which the smaller goldens already cover.
func TestGoldenE6XLStats(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second generate in -short mode")
	}
	var diag strings.Builder
	cfg := config{circuit: "chip:32,10", techName: "nmos-4u"}
	if err := run(cfg, io.Discard, &diag); err != nil {
		t.Fatal(err)
	}
	const want = "benchgen: chip-32x10 — 181730 transistors, 109670 nodes, 698 inputs, 1010 outputs\n"
	if diag.String() != want {
		t.Errorf("E6-XL stats line:\n got %q\nwant %q", diag.String(), want)
	}
}

// TestSnapshotEmission pins the warm-handoff contract: the .simx written
// by `benchgen -snapshot` must be served as a fresh cache hit when
// crystal-style ingest loads the sibling .sim file.
func TestSnapshotEmission(t *testing.T) {
	dir := t.TempDir()
	simPath := filepath.Join(dir, "alu4.sim")
	snapPath := filepath.Join(dir, "alu4.simx")

	var out, diag strings.Builder
	cfg := config{circuit: "alu:4", techName: "nmos-4u", snapshot: snapPath}
	if err := run(cfg, &out, &diag); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(simPath, []byte(out.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	p := tech.NMOS4()
	parsed, res, err := netlist.LoadSimFile(simPath, simPath, p, netlist.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache() {
		t.Fatal("uncached load claimed a snapshot hit")
	}
	warm, res, err := netlist.LoadSimFile(simPath, simPath, p,
		netlist.LoadOptions{Snapshot: snapPath})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache() {
		t.Fatal("benchgen-emitted snapshot was not served for the sibling .sim")
	}
	if derr := netlist.DiffNetworks(parsed, warm); derr != nil {
		t.Fatalf("snapshot network differs from parsed .sim: %v", derr)
	}
}

func TestRunErrors(t *testing.T) {
	for _, cfg := range []config{
		{},                    // no circuit, no list
		{circuit: "nosuch:4"}, // unknown generator
		{circuit: "invchain:4", techName: "ge-5"}, // unknown technology
		{circuit: "invchain:zebra"},               // bad argument
	} {
		if err := run(cfg, &strings.Builder{}, &strings.Builder{}); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}
