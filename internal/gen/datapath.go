// A composed datapath "chip": generator blocks stitched together with
// netlist.Import, giving the capacity experiment a realistic multi-block
// workload and exercising hierarchical composition end to end.
package gen

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// Datapath builds a w-bit mini datapath:
//
//	register file (8×w) → ALU → barrel shifter → outputs
//
// with an address decoder driving the register word lines. Top-level
// ports: "addr0..2" (register address), ALU controls "fand/for/fxor/fadd",
// shifter selects "sh0..(w-1)", operand "b0..(w-1)", "cin"; outputs
// "out0..(w-1)".
func Datapath(p *tech.Params, w int) (*netlist.Network, error) {
	if w < 2 || w > 64 {
		return nil, fmt.Errorf("gen: datapath width must be in 2..64, got %d", w)
	}
	const words = 8
	top := netlist.New(fmt.Sprintf("datapath-%d", w), p)

	dec, err := Decoder(p, 3)
	if err != nil {
		return nil, err
	}
	// Decoder outputs drive the register file word lines.
	conn := map[string]string{}
	for i := 0; i < 3; i++ {
		conn[fmt.Sprintf("a%d", i)] = fmt.Sprintf("addr%d", i)
	}
	for v := 0; v < words; v++ {
		conn[fmt.Sprintf("y%d", v)] = fmt.Sprintf("word%d", v)
	}
	if err := top.Import(dec, "dec_", conn); err != nil {
		return nil, err
	}

	rf, err := RegisterFile(p, words, w)
	if err != nil {
		return nil, err
	}
	conn = map[string]string{}
	for v := 0; v < words; v++ {
		conn[fmt.Sprintf("w%d", v)] = fmt.Sprintf("word%d", v)
	}
	for b := 0; b < w; b++ {
		conn[fmt.Sprintf("bit%d", b)] = fmt.Sprintf("rbit%d", b)
	}
	if err := top.Import(rf, "rf_", conn); err != nil {
		return nil, err
	}

	alu, err := ALU(p, w)
	if err != nil {
		return nil, err
	}
	conn = map[string]string{"cin": "cin", "cout": "alu_cout"}
	for _, f := range []string{"fand", "for", "fxor", "fadd"} {
		conn[f] = f
	}
	for b := 0; b < w; b++ {
		conn[fmt.Sprintf("a%d", b)] = fmt.Sprintf("rbit%d", b)
		conn[fmt.Sprintf("b%d", b)] = fmt.Sprintf("b%d", b)
		conn[fmt.Sprintf("r%d", b)] = fmt.Sprintf("res%d", b)
	}
	if err := top.Import(alu, "alu_", conn); err != nil {
		return nil, err
	}

	sh, err := BarrelShifter(p, w)
	if err != nil {
		return nil, err
	}
	conn = map[string]string{}
	for b := 0; b < w; b++ {
		conn[fmt.Sprintf("in%d", b)] = fmt.Sprintf("res%d", b)
		conn[fmt.Sprintf("out%d", b)] = fmt.Sprintf("out%d", b)
		conn[fmt.Sprintf("sh%d", b)] = fmt.Sprintf("sh%d", b)
	}
	if err := top.Import(sh, "sh_", conn); err != nil {
		return nil, err
	}

	// Port directions at the top level: the Import preserved sub kinds,
	// but merged ports took the first import's kind — normalize.
	markIn := func(names ...string) {
		for _, n := range names {
			node := top.Lookup(n)
			if node == nil {
				panic("gen: datapath port missing: " + n)
			}
			node.Kind = netlist.KindInput
		}
	}
	markIn("addr0", "addr1", "addr2", "cin", "fand", "for", "fxor", "fadd")
	for b := 0; b < w; b++ {
		markIn(fmt.Sprintf("b%d", b), fmt.Sprintf("sh%d", b))
		out := top.Lookup(fmt.Sprintf("out%d", b))
		out.Kind = netlist.KindOutput
	}
	// Internal buses: plain nodes.
	for v := 0; v < words; v++ {
		top.Lookup(fmt.Sprintf("word%d", v)).Kind = netlist.KindNormal
	}
	for b := 0; b < w; b++ {
		top.Lookup(fmt.Sprintf("rbit%d", b)).Kind = netlist.KindNormal
		top.Lookup(fmt.Sprintf("res%d", b)).Kind = netlist.KindNormal
	}
	top.Lookup("alu_cout").Kind = netlist.KindNormal
	return top, nil
}
