// A name-based registry over the generators, so command-line tools can
// build any benchmark circuit from a compact spec string.
package gen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// Spec describes one registered generator for listings.
type Spec struct {
	Name string
	Args string // human-readable argument signature
	Doc  string
}

type builder struct {
	spec  Spec
	nargs int // required integer arguments
	build func(p *tech.Params, args []int) (*netlist.Network, error)
}

var registry = []builder{
	{Spec{"invchain", "n[,fanout]", "chain of n inverters, optional per-stage fan-out"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) {
			fan := 0
			if len(a) > 1 {
				fan = a[1]
			}
			return InverterChain(p, a[0], fan)
		}},
	{Spec{"fanout", "n", "one inverter driving n inverter loads"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return FanoutInverter(p, a[0]) }},
	{Spec{"passchain", "n", "chain of n pass transistors with restoring output"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return PassChain(p, a[0]) }},
	{Spec{"superbuffer", "", "two-stage driver into a heavy load"}, 0,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return Superbuffer(p) }},
	{Spec{"bus", "n", "precharged bus with n two-high drivers"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return PrechargedBus(p, a[0]) }},
	{Spec{"ripple", "w", "w-bit ripple-carry adder"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return RippleAdder(p, a[0]) }},
	{Spec{"manchester", "w", "w-bit Manchester carry-chain adder"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return ManchesterAdder(p, a[0]) }},
	{Spec{"barrel", "w", "w-bit pass-transistor barrel shifter"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return BarrelShifter(p, a[0]) }},
	{Spec{"decoder", "n", "n-to-2^n decoder"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return Decoder(p, a[0]) }},
	{Spec{"alu", "w", "w-bit 4-function ALU with pass-mux result bus"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return ALU(p, a[0]) }},
	{Spec{"regfile", "words,bits", "static cell array with pass access"}, 2,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return RegisterFile(p, a[0], a[1]) }},
	{Spec{"polywire", "n[,ohms,fF]", "inverter driving an n-section resistive wire"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) {
			r, c := 50000.0, 500.0
			if len(a) > 1 {
				r = float64(a[1])
			}
			if len(a) > 2 {
				c = float64(a[2])
			}
			return PolyWire(p, a[0], r, c*1e-15)
		}},
	{Spec{"chip", "w[,tiles]", "processor-scale composition: datapath + multiplier + address unit + control PLA; tiles replicates it on a shared opcode bus (chip:32,10 is the 100k+ node E6-XL point)"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) {
			tiles := 1
			if len(a) > 1 {
				tiles = a[1]
			}
			return ChipGrid(p, a[0], tiles)
		}},
	{Spec{"datapath", "w", "composed chip: decoder + register file + ALU + shifter"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return Datapath(p, a[0]) }},
	{Spec{"shiftreg", "n", "two-phase dynamic shift register"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return ShiftRegister(p, a[0]) }},
	{Spec{"arraymul", "w", "w×w carry-save array multiplier"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) { return ArrayMultiplier(p, a[0]) }},
	{Spec{"carrysel", "w[,block]", "carry-select adder"}, 1,
		func(p *tech.Params, a []int) (*netlist.Network, error) {
			block := 4
			if len(a) > 1 {
				block = a[1]
			}
			return CarrySelectAdder(p, a[0], block)
		}},
	{Spec{"pla", "in,prod,out[,seed]", "NOR-NOR PLA with pseudorandom programming"}, 3,
		func(p *tech.Params, a []int) (*netlist.Network, error) {
			seed := uint64(1)
			if len(a) > 3 {
				seed = uint64(a[3])
			}
			return PLA(p, a[0], a[1], a[2], seed)
		}},
}

// List returns the registered generator specs, sorted by name.
func List() []Spec {
	out := make([]Spec, 0, len(registry))
	for _, b := range registry {
		out = append(out, b.spec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Build constructs a circuit from a spec string "name:arg1,arg2" (colon or
// space separated from the name; arguments comma separated integers).
func Build(spec string, p *tech.Params) (*netlist.Network, error) {
	name, rest, _ := strings.Cut(strings.TrimSpace(spec), ":")
	name = strings.TrimSpace(name)
	var args []int
	if rest != "" {
		for _, s := range strings.Split(rest, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("gen: bad argument %q in spec %q", s, spec)
			}
			args = append(args, v)
		}
	}
	for _, b := range registry {
		if b.spec.Name != name {
			continue
		}
		if len(args) < b.nargs {
			return nil, fmt.Errorf("gen: %s needs %d argument(s) (%s), got %d",
				name, b.nargs, b.spec.Args, len(args))
		}
		return b.build(p, args)
	}
	return nil, fmt.Errorf("gen: unknown circuit %q (try one of: %s)", name, names())
}

func names() string {
	var ns []string
	for _, s := range List() {
		ns = append(ns, s.Name)
	}
	return strings.Join(ns, ", ")
}
