package gen_test

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/tech"
)

// ExampleBuild constructs circuits from registry spec strings, the same
// strings cmd/benchgen accepts.
func ExampleBuild() {
	p := tech.NMOS4()
	for _, spec := range []string{"ripple:4", "barrel:8", "pla:6,12,4"} {
		nw, err := gen.Build(spec, p)
		if err != nil {
			log.Fatal(err)
		}
		st := nw.Stats()
		fmt.Printf("%-12s %4d transistors, %3d nodes\n", spec, st.Trans, st.Nodes)
	}
	// Output:
	// ripple:4      148 transistors, 111 nodes
	// barrel:8       64 transistors,  26 nodes
	// pla:6,12,4     84 transistors,  34 nodes
}
