// Warm-start cache coverage: a daemon with a snapshot directory must
// parse a given netlist exactly once across its own lifetime *and*
// across restarts, serve warm loads from the .simx cache (memory-mapped
// where the platform allows, heap-decoded otherwise) with identical
// analysis results, and fall back to parsing whenever the cache is
// stale or corrupt. Snapshot files are keyed by network identity
// (source hash + tech + name), so configs that differ only in analysis
// directives share one file and one mapped view.
package server

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netlist"
)

// snapshotFiles lists the .simx entries in dir.
func snapshotFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.simx"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// warmSource is the expected create source for a cache hit: the shared
// mmap view where the platform supports it, the heap decoder otherwise.
func warmSource() string {
	if netlist.MmapSupported {
		return "mmap"
	}
	return "snapshot"
}

func TestSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	cfg := dlatchConfig(t)

	// Cold daemon, cold cache: the load parses and persists a snapshot.
	c1 := newTestClient(t, Options{SnapshotDir: dir})
	cold := c1.create(cfg)
	if cold.Source != "parse" {
		t.Fatalf("cold load source = %q, want parse", cold.Source)
	}
	if files := snapshotFiles(t, dir); len(files) != 1 {
		t.Fatalf("snapshot files after cold load: %v", files)
	}
	coldReport := c1.analyze(cold.Session, 1).Report
	m := c1.metrics()
	if m.Snapshots.Hits != 0 || m.Snapshots.Misses != 1 || m.Snapshots.Writes != 1 {
		t.Fatalf("cold metrics: %+v", m.Snapshots)
	}

	// "Restart": a fresh server over the same directory. The LRU is
	// empty (no dedup possible), so only the snapshot cache can skip the
	// parse — and it must.
	c2 := newTestClient(t, Options{SnapshotDir: dir})
	warm := c2.create(cfg)
	if warm.Source != warmSource() {
		t.Fatalf("warm load source = %q, want %q", warm.Source, warmSource())
	}
	if warm.Cached {
		t.Fatal("warm load claimed LRU dedup on a fresh server")
	}
	if warm.Nodes != cold.Nodes || warm.Transistors != cold.Transistors {
		t.Fatalf("warm network shape %d/%d differs from cold %d/%d",
			warm.Nodes, warm.Transistors, cold.Nodes, cold.Transistors)
	}
	// The analysis over the snapshot-loaded network is byte-identical.
	if warmReport := c2.analyze(warm.Session, 1).Report; warmReport != coldReport {
		t.Fatalf("warm report differs from cold:\n--- cold\n%s\n--- warm\n%s", coldReport, warmReport)
	}
	m = c2.metrics()
	if m.Snapshots.Hits != 1 || m.Snapshots.Misses != 0 || m.Snapshots.Writes != 0 {
		t.Fatalf("warm metrics: %+v", m.Snapshots)
	}

	// Same daemon, repeated POST after deleting the session: the LRU no
	// longer holds it, so this is another cache hit, not a parse.
	if st := c2.do("DELETE", "/v1/sessions/"+warm.Session, nil, nil); st != http.StatusOK {
		t.Fatalf("delete: status %d", st)
	}
	again := c2.create(cfg)
	if again.Source != warmSource() {
		t.Fatalf("re-create after eviction: source = %q, want %q", again.Source, warmSource())
	}

	// A config change (different fix directive) is a different LRU key
	// but the *same network*: snapshot files are keyed by network
	// identity, so this is another warm hit against the same single
	// file, not a parse.
	cfg2 := dlatchConfig(t)
	cfg2.Fix = map[string]string{"wr": "0"}
	other := c2.create(cfg2)
	if other.Source != warmSource() {
		t.Fatalf("changed config source = %q, want %q", other.Source, warmSource())
	}
	if other.Cached {
		t.Fatal("changed config claimed LRU dedup")
	}
	if files := snapshotFiles(t, dir); len(files) != 1 {
		t.Fatalf("snapshot files after second config: %v (want the shared network file only)", files)
	}
	m = c2.metrics()
	if m.Snapshots.Hits != 3 || m.Snapshots.Misses != 0 || m.Snapshots.Writes != 0 {
		t.Fatalf("metrics after shared-network hit: %+v", m.Snapshots)
	}

	// A genuinely different network (different report name) gets its own
	// snapshot file.
	cfg3 := dlatchConfig(t)
	cfg3.Name = "dlatch-b"
	if resp := c2.create(cfg3); resp.Source != "parse" {
		t.Fatalf("renamed network source = %q, want parse", resp.Source)
	}
	if files := snapshotFiles(t, dir); len(files) != 2 {
		t.Fatalf("snapshot files after renamed network: %v", files)
	}
}

func TestSnapshotCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	cfg := dlatchConfig(t)
	c := newTestClient(t, Options{SnapshotDir: dir})
	if resp := c.create(cfg); resp.Source != "parse" {
		t.Fatalf("cold source = %q", resp.Source)
	}
	files := snapshotFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("snapshot files: %v", files)
	}
	// Flip one payload byte: the CRC must reject it — in both the mmap
	// loader and the heap decoder — and the load must quietly parse
	// (and rewrite the snapshot).
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := newTestClient(t, Options{SnapshotDir: dir})
	resp := c2.create(cfg)
	if resp.Source != "parse" {
		t.Fatalf("corrupt snapshot served: source = %q", resp.Source)
	}
	// And the rewrite healed the cache.
	c3 := newTestClient(t, Options{SnapshotDir: dir})
	if resp := c3.create(cfg); resp.Source != warmSource() {
		t.Fatalf("healed cache source = %q, want %q", resp.Source, warmSource())
	}
}

// TestSnapshotDisabled pins the default: no snapshot directory, no
// source field, no cache files.
func TestSnapshotDisabled(t *testing.T) {
	c := newTestClient(t, Options{})
	resp := c.create(dlatchConfig(t))
	if resp.Source != "" {
		t.Fatalf("source = %q with cache disabled, want empty", resp.Source)
	}
	m := c.metrics()
	if m.Snapshots.Hits != 0 || m.Snapshots.Misses != 0 || m.Snapshots.Writes != 0 {
		t.Fatalf("snapshot metrics moved with cache disabled: %+v", m.Snapshots)
	}
}
