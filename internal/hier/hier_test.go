package hier

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// TestDetectChipGrid: the replicated-tile chip yields one class holding
// every tile after the first, with identical boundaries (the literally
// shared opcode bus) and rank-consistent interiors. Tile 0 classes alone:
// the shared op nodes are created mid-way through its import, so they
// order differently against tile 0's interior indexes than against the
// later tiles' (the rankpos part of the fingerprint) — and queue-order
// ties genuinely could resolve differently there, so keeping it flat is
// correct, not conservative.
func TestDetectChipGrid(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.ChipGrid(p, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan := Detect(nw)
	if len(plan.Instances) != 3 {
		t.Fatalf("selected %d outermost instances, want 3 tiles", len(plan.Instances))
	}
	for i, inst := range plan.Instances {
		if inst.Path != []string{"t0_", "t1_", "t2_"}[i] {
			t.Errorf("instance %d is %q, want tile stamp", i, inst.Path)
		}
		if len(inst.Interior) == 0 {
			t.Errorf("tile %q has no interior", inst.Path)
		}
	}
	if len(plan.Classes) != 2 || len(plan.Classes[0]) != 1 || len(plan.Classes[1]) != 2 {
		t.Fatalf("classes = %v, want [[t0] [t1 t2]]", plan.Classes)
	}
	if plan.Instances[1].Class != plan.Instances[2].Class {
		t.Errorf("tiles t1/t2 in different classes %d/%d",
			plan.Instances[1].Class, plan.Instances[2].Class)
	}
	instances, stampable := plan.Stats()
	if instances != 3 || stampable != 2 {
		t.Errorf("Stats() = (%d, %d), want (3, 2)", instances, stampable)
	}

	rep, m1 := &plan.Instances[1], &plan.Instances[2]
	if len(rep.Interior) != len(m1.Interior) || len(rep.Boundary) != len(m1.Boundary) {
		t.Fatalf("member shapes differ: interior %d/%d, boundary %d/%d",
			len(rep.Interior), len(m1.Interior), len(rep.Boundary), len(m1.Boundary))
	}
	// Boundaries are the same global nodes, and include the shared bus.
	onBoundary := map[string]bool{}
	for k, b := range rep.Boundary {
		if b != m1.Boundary[k] {
			t.Fatalf("boundary %d differs between members: %d vs %d", k, b, m1.Boundary[k])
		}
		n := nw.Nodes[b]
		if n.IsRail() {
			t.Errorf("rail %s on the boundary list", n.Name)
		}
		onBoundary[n.Name] = true
	}
	if !onBoundary["op0"] {
		t.Errorf("shared opcode bit op0 not on the tile boundary: %v", onBoundary)
	}
	// Interior ranks: ascending, owned, and Rank round-trips.
	for i := range plan.Instances {
		inst := &plan.Instances[i]
		prev := int32(-1)
		for r, idx := range inst.Interior {
			if idx <= prev {
				t.Fatalf("instance %d interior not ascending at rank %d", i, r)
			}
			prev = idx
			if got := plan.MemberOf[idx]; got != int32(i)+1 {
				t.Fatalf("MemberOf[%d] = %d, want %d", idx, got, i+1)
			}
			if got := plan.Rank(i, idx); got != int32(r) {
				t.Fatalf("Rank(%d, %d) = %d, want %d", i, idx, got, r)
			}
		}
		for _, b := range inst.Boundary {
			if plan.Rank(i, b) != -1 {
				t.Fatalf("boundary node %d reported interior", b)
			}
		}
		// Structurally corresponding ranks carry the same node kind.
		for r := range inst.Interior {
			if nw.Nodes[inst.Interior[r]].Kind != nw.Nodes[rep.Interior[r]].Kind {
				t.Fatalf("rank %d kind differs between tile %d and the representative", r, i)
			}
		}
	}
	// Covering: range membership in trans-index space.
	for i, inst := range plan.Instances {
		if got := plan.Covering(inst.TransLo); got != i {
			t.Errorf("Covering(%d) = %d, want %d", inst.TransLo, got, i)
		}
		if got := plan.Covering(inst.TransHi - 1); got != i {
			t.Errorf("Covering(%d) = %d, want %d", inst.TransHi-1, got, i)
		}
	}
	if plan.Covering(-1) != -1 {
		t.Error("Covering(-1) should be -1")
	}
	if first := plan.Instances[0].TransLo; first > 0 && plan.Covering(first-1) != -1 {
		t.Error("Covering before the first range should be -1")
	}
}

// TestDetectNoAnnotations: a network without instance records yields an
// empty (but non-nil) plan.
func TestDetectNoAnnotations(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.RippleAdder(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := Detect(nw)
	if plan == nil {
		t.Fatal("Detect returned nil")
	}
	if len(plan.Instances) != 0 || len(plan.Classes) != 0 {
		t.Fatalf("expected empty plan, got %d instances", len(plan.Instances))
	}
	instances, stampable := plan.Stats()
	if instances != 0 || stampable != 0 {
		t.Errorf("Stats() = (%d, %d), want (0, 0)", instances, stampable)
	}
	for i, m := range plan.MemberOf {
		if m != 0 {
			t.Fatalf("MemberOf[%d] = %d in an unannotated network", i, m)
		}
	}
}

// TestDetectMalformedRanges: corrupt annotations are dropped, nested ones
// fold into their enclosing stamp, and detection still finds the tiles.
func TestDetectMalformedRanges(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.ChipGrid(p, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw.Instances = append(nw.Instances,
		netlist.Instance{Path: "bad1_", TransLo: -5, TransHi: 10},
		netlist.Instance{Path: "bad2_", TransLo: 10, TransHi: 10},
		netlist.Instance{Path: "bad3_", TransLo: 20, TransHi: 10},
		netlist.Instance{Path: "bad4_", TransLo: 0, TransHi: len(nw.Trans) + 1},
	)
	plan := Detect(nw)
	if len(plan.Instances) != 3 {
		t.Fatalf("selected %d instances with corrupt annotations present, want 3", len(plan.Instances))
	}
	for _, inst := range plan.Instances {
		if strings.HasPrefix(inst.Path, "bad") {
			t.Errorf("malformed annotation %q selected", inst.Path)
		}
	}
}

// buildCell appends one two-device inverter cell (depletion load plus
// enhancement pulldown gated by en) and returns its instance annotation.
func buildCell(nw *netlist.Network, name string, en *netlist.Node, w float64) netlist.Instance {
	lo := len(nw.Trans)
	out := nw.Node(name + "out")
	nw.AddTrans(tech.NDep, out, out, nw.Vdd(), 2e-6, 8e-6)
	nw.AddTrans(tech.NEnh, en, out, nw.GND(), w, 2e-6)
	return netlist.Instance{Path: name, TransLo: lo, TransHi: len(nw.Trans)}
}

// TestClassSeparation: identical cells on the same select line class
// together; a cell on a different select line or with different geometry
// gets its own class (the boundary and the structure are both part of
// stamp equivalence).
func TestClassSeparation(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("cells", p)
	en1, en2 := nw.Node("en1"), nw.Node("en2")
	nw.MarkInput(en1)
	nw.MarkInput(en2)
	nw.Instances = append(nw.Instances,
		buildCell(nw, "u0_", en1, 4e-6),
		buildCell(nw, "u1_", en1, 4e-6),
		buildCell(nw, "u2_", en2, 4e-6),
		buildCell(nw, "u3_", en1, 8e-6),
	)
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	plan := Detect(nw)
	if len(plan.Instances) != 4 {
		t.Fatalf("selected %d instances, want 4", len(plan.Instances))
	}
	c := func(i int) int { return plan.Instances[i].Class }
	if c(0) != c(1) {
		t.Errorf("identical cells u0/u1 in different classes %d/%d", c(0), c(1))
	}
	if c(2) == c(0) {
		t.Error("u2 (different select line) classed with u0")
	}
	if c(3) == c(0) {
		t.Error("u3 (different geometry) classed with u0")
	}
	instances, stampable := plan.Stats()
	if instances != 4 || stampable != 2 {
		t.Errorf("Stats() = (%d, %d), want (4, 2)", instances, stampable)
	}
}

// TestEligibility: a channel reaching a non-source boundary node makes the
// instance flat-only, as does an instance with no interior at all.
func TestEligibility(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("elig", p)
	in := nw.Node("in")
	nw.MarkInput(in)
	mid := nw.Node("mid")

	// u0_: inner node a1, but a pass device hangs its channel on mid,
	// which is also used outside the instance (and is not a source).
	lo := len(nw.Trans)
	a1 := nw.Node("a1")
	nw.AddTrans(tech.NDep, a1, a1, nw.Vdd(), 2e-6, 8e-6)
	nw.AddTrans(tech.NEnh, in, a1, nw.GND(), 4e-6, 2e-6)
	nw.AddTrans(tech.NEnh, in, a1, mid, 4e-6, 2e-6)
	nw.Instances = append(nw.Instances, netlist.Instance{Path: "u0_", TransLo: lo, TransHi: len(nw.Trans)})

	// u1_: a single device whose every node is seen elsewhere — interior
	// empty.
	lo = len(nw.Trans)
	nw.AddTrans(tech.NEnh, mid, in, nw.GND(), 4e-6, 2e-6)
	nw.Instances = append(nw.Instances, netlist.Instance{Path: "u1_", TransLo: lo, TransHi: len(nw.Trans)})

	// Outside references keeping mid and in exterior.
	out := nw.Node("zout")
	nw.AddTrans(tech.NEnh, mid, out, nw.GND(), 4e-6, 2e-6)
	nw.AddTrans(tech.NDep, out, out, nw.Vdd(), 2e-6, 8e-6)

	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	plan := Detect(nw)
	if len(plan.Instances) != 2 {
		t.Fatalf("selected %d instances, want 2", len(plan.Instances))
	}
	u0 := plan.Instances[0]
	if u0.Class != -1 || !strings.Contains(u0.Reason, "channel crosses the boundary") {
		t.Errorf("u0_: class %d, reason %q; want flat with a boundary-crossing reason", u0.Class, u0.Reason)
	}
	if !strings.Contains(u0.Reason, "mid") {
		t.Errorf("u0_ reason %q does not name the crossing node", u0.Reason)
	}
	u1 := plan.Instances[1]
	if u1.Class != -1 || !strings.Contains(u1.Reason, "no interior") {
		t.Errorf("u1_: class %d, reason %q; want flat with no-interior reason", u1.Class, u1.Reason)
	}
}
