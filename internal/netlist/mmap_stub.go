//go:build !linux && !darwin

package netlist

import (
	"errors"
	"os"
)

const mmapSupported = false

var errNoMmap = errors.New("simx: mmap not supported on this platform")

func mmapFile(f *os.File, size int) ([]byte, error) { return nil, errNoMmap }

func munmapFile(b []byte) error { return nil }
