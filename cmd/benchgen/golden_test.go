package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// update rewrites the golden files instead of diffing against them:
//
//	go test ./cmd/benchgen -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden output files")

// TestGoldenOutput pins the generator listing and the emitted .sim text
// for representative circuits: the interchange format (device lines,
// geometry units, cap records, @ directives) is what every downstream
// tool parses, so drift here is an interface break.
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		name string
		cfg  config
	}{
		{"list", config{list: true}},
		{"invchain4", config{circuit: "invchain:4", techName: "nmos-4u"}},
		{"superbuffer", config{circuit: "superbuffer", techName: "nmos-4u"}},
		{"passchain3-cmos", config{circuit: "passchain:3", techName: "cmos-3u"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, diag strings.Builder
			if err := run(tc.cfg, &out, &diag); err != nil {
				t.Fatal(err)
			}
			got := out.String() + diag.String()
			golden := "testdata/golden/" + tc.name + ".txt"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s:\n--- want ---\n%s\n--- got ---\n%s",
					golden, want, got)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	for _, cfg := range []config{
		{},                    // no circuit, no list
		{circuit: "nosuch:4"}, // unknown generator
		{circuit: "invchain:4", techName: "ge-5"}, // unknown technology
		{circuit: "invchain:zebra"},               // bad argument
	} {
		if err := run(cfg, &strings.Builder{}, &strings.Builder{}); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}
