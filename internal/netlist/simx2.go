// The .simx version-2 layout: the memory-mappable half of the ingest
// pipeline. Version 1 (snapshot.go) is a compact uvarint stream — cheap
// to write, but every load must run a per-record decode and the format
// cannot be mapped (nothing is aligned, nothing is fixed-width). Version
// 2 trades ~25% file size for a fixed layout of 8-byte-aligned
// little-endian sections, so a load is mmap + header/CRC validation +
// slice-casting views over the file: no per-record decode, no payload
// copy, node names sliced straight out of the mapping.
//
// Layout (all integers little-endian; CRCs are CRC-32C/Castagnoli, which
// is hardware-accelerated on amd64/arm64 — validating a 30 MB chip costs
// about a millisecond):
//
//	header (72 bytes):
//	  [0:4]    magic "SIMX"
//	  [4:8]    version   uint32 = 2
//	  [8:12]   headerCRC uint32 — CRC-32C of bytes [12:payloadStart]
//	  [12:16]  sectionCount uint32
//	  [16:24]  fileSize  uint64 — total file length; trailing bytes reject
//	  [24:56]  sourceHash [32]byte — SHA-256 of the originating .sim text
//	  [56:60]  payloadCRC uint32 — CRC-32C of bytes [payloadStart:fileSize]
//	  [60:64]  nNodes    uint32
//	  [64:68]  nTrans    uint32
//	  [68:72]  reserved  uint32 = 0
//	section table (sectionCount × 24 bytes at offset 72):
//	  id uint32, reserved uint32 = 0, off uint64, len uint64
//	sections (each off ≥ payloadStart, off %8 == 0, zero padding between):
//	  1 tech       technology name bytes
//	  2 name       network name bytes
//	  3 nodeKind   nNodes × uint8
//	  4 nodeFlags  nNodes × uint8 (bit 0: precharged)
//	  5 nodeCap    nNodes × float64
//	  6 trans      nTrans × 40-byte record {W,L,R float64; Gate,A,B int32;
//	               Type,Flow uint8; pad [2]byte}
//	  7 gateStart  (nNodes+1) × uint32 — CSR offsets of Node.Gates
//	  8 termStart  (nNodes+1) × uint32 — CSR offsets of Node.Terms
//	  9 nameOff    (nNodes+1) × uint32 — offsets into nameData
//	 10 nameData   concatenated node names
//	 11 inst       nInst × 16-byte record {TransLo,TransHi,PathOff,PathEnd
//	               uint32} — OPTIONAL; present only when the network carries
//	               hierarchical instance annotations, so instance-free files
//	               are byte-identical to what earlier writers produced
//	 12 instPath   concatenated instance path bytes (with section 11)
//
// The adjacency reference lists themselves are not stored: replaying
// transistors in index order reproduces AddTrans's insertion order
// exactly, and the stored CSR offsets are re-derived from the records at
// load and must match — a redundancy check on top of the CRC, since a
// wrong offset table would silently mis-slice the shared backing array.
//
// Every byte of a v2 file is covered by a check: [0:12] by the explicit
// magic/version/headerCRC comparisons, [12:payloadStart] by headerCRC,
// [payloadStart:fileSize] (including alignment padding, which writers
// zero) by payloadCRC, and anything beyond fileSize by the exact-length
// requirement.
package netlist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sync"
	"unsafe"

	"repro/internal/tech"
)

// SnapshotVersion2 is the fixed-layout, memory-mappable .simx version.
// WriteSnapshot emits it by default; ReadSnapshot accepts both versions.
const SnapshotVersion2 = 2

const (
	v2HeaderSize  = 72
	v2SectionSize = 24
	v2MaxSections = 64

	secTech      = 1
	secName      = 2
	secNodeKind  = 3
	secNodeFlags = 4
	secNodeCap   = 5
	secTrans     = 6
	secGateStart = 7
	secTermStart = 8
	secNameOff   = 9
	secNameData  = 10
	secInst      = 11 // optional: instance records
	secInstPath  = 12 // optional: instance path bytes

	v2InstRecSize = 16
)

// transRec is the fixed-width on-disk transistor record. The field order
// packs the three float64 columns first so the struct is 8-aligned with
// exactly two trailing pad bytes; the compile-time assertion below pins
// the 40-byte size the format depends on.
type transRec struct {
	W, L, R    float64
	Gate, A, B int32
	Type, Flow uint8
	_          [2]byte
}

const transRecSize = 40

var _ [transRecSize]byte = [unsafe.Sizeof(transRec{})]byte{}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether the native byte order matches the
// on-disk order, which is what makes the zero-copy slice casts legal.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// v2Section is one parsed section-table entry resolved to its bytes.
type v2Section struct {
	id  uint32
	buf []byte
}

// v2File is a validated view over a v2 snapshot's bytes: header fields
// plus the located sections. The byte slices alias the input data.
type v2File struct {
	sourceHash     [32]byte
	nNodes, nTrans int

	techName, name       []byte
	nodeKind, nodeFlags  []byte
	nodeCap              []byte // nNodes × float64
	trans                []byte // nTrans × transRec
	gateStart, termStart []byte // (nNodes+1) × uint32
	nameOff              []byte // (nNodes+1) × uint32
	nameData             []byte
	inst, instPath       []byte // optional instance sections (may be nil)

	payload    []byte // everything past the section table; see verifyPayload
	payloadCRC uint32 // stored checksum the payload must match
}

// parseV2 validates a v2 snapshot image structurally — magic, version,
// header CRC, bounds-checked section table, exact section sizes — and
// returns the section views. It never allocates proportionally to the
// input, so it is equally the entry point for the heap decoder and the
// mmap loader. The payload checksum is NOT verified here: callers must
// also run verifyPayload, either before buildV2 (the heap decoder) or
// concurrently with it (the mmap loader) — see that method for why the
// overlap is sound.
func parseV2(data []byte) (*v2File, error) {
	if len(data) < v2HeaderSize || string(data[:4]) != snapshotMagic {
		return nil, fmt.Errorf("simx: bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != SnapshotVersion2 {
		return nil, fmt.Errorf("simx: version %d, want %d", v, SnapshotVersion2)
	}
	count := binary.LittleEndian.Uint32(data[12:16])
	if count == 0 || count > v2MaxSections {
		return nil, fmt.Errorf("simx: implausible section count %d", count)
	}
	payloadStart := v2HeaderSize + int(count)*v2SectionSize
	if len(data) < payloadStart {
		return nil, fmt.Errorf("simx: truncated section table")
	}
	fileSize := binary.LittleEndian.Uint64(data[16:24])
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("simx: file is %d bytes, header says %d", len(data), fileSize)
	}
	if got, want := crc32.Checksum(data[12:payloadStart], castagnoli), binary.LittleEndian.Uint32(data[8:12]); got != want {
		return nil, fmt.Errorf("simx: header checksum mismatch")
	}
	if binary.LittleEndian.Uint32(data[68:72]) != 0 {
		return nil, fmt.Errorf("simx: nonzero reserved header field")
	}

	v := &v2File{
		nNodes:     int(binary.LittleEndian.Uint32(data[60:64])),
		nTrans:     int(binary.LittleEndian.Uint32(data[64:68])),
		payload:    data[payloadStart:],
		payloadCRC: binary.LittleEndian.Uint32(data[56:60]),
	}
	copy(v.sourceHash[:], data[24:56])
	if uint64(v.nNodes) > maxSnapshotCount || uint64(v.nTrans) > maxSnapshotCount {
		return nil, fmt.Errorf("simx: implausible counts %d/%d", v.nNodes, v.nTrans)
	}
	secs := make(map[uint32][]byte, count)
	for i := 0; i < int(count); i++ {
		ent := data[v2HeaderSize+i*v2SectionSize:][:v2SectionSize]
		id := binary.LittleEndian.Uint32(ent[0:4])
		if binary.LittleEndian.Uint32(ent[4:8]) != 0 {
			return nil, fmt.Errorf("simx: section %d has nonzero reserved field", id)
		}
		off := binary.LittleEndian.Uint64(ent[8:16])
		length := binary.LittleEndian.Uint64(ent[16:24])
		if off%8 != 0 {
			return nil, fmt.Errorf("simx: section %d misaligned at offset %d", id, off)
		}
		if off < uint64(payloadStart) || off > fileSize || length > fileSize-off {
			return nil, fmt.Errorf("simx: section %d out of bounds (off %d len %d)", id, off, length)
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("simx: duplicate section %d", id)
		}
		secs[id] = data[off : off+length]
	}
	want := func(id uint32, size int, what string) ([]byte, error) {
		b, ok := secs[id]
		if !ok {
			return nil, fmt.Errorf("simx: missing %s section", what)
		}
		if size >= 0 && len(b) != size {
			return nil, fmt.Errorf("simx: %s section is %d bytes, want %d", what, len(b), size)
		}
		return b, nil
	}
	n, t := v.nNodes, v.nTrans
	var err error
	if v.techName, err = want(secTech, -1, "tech"); err != nil {
		return nil, err
	}
	if v.name, err = want(secName, -1, "name"); err != nil {
		return nil, err
	}
	if v.nodeKind, err = want(secNodeKind, n, "node-kind"); err != nil {
		return nil, err
	}
	if v.nodeFlags, err = want(secNodeFlags, n, "node-flags"); err != nil {
		return nil, err
	}
	if v.nodeCap, err = want(secNodeCap, 8*n, "node-cap"); err != nil {
		return nil, err
	}
	if v.trans, err = want(secTrans, transRecSize*t, "transistor"); err != nil {
		return nil, err
	}
	if v.gateStart, err = want(secGateStart, 4*(n+1), "gate-start"); err != nil {
		return nil, err
	}
	if v.termStart, err = want(secTermStart, 4*(n+1), "term-start"); err != nil {
		return nil, err
	}
	if v.nameOff, err = want(secNameOff, 4*(n+1), "name-offset"); err != nil {
		return nil, err
	}
	if v.nameData, err = want(secNameData, -1, "name-data"); err != nil {
		return nil, err
	}
	// The instance sections are optional — written only when the network
	// carries hierarchy annotations — so their absence is not an error;
	// unknown section ids beyond these remain tolerated for forward
	// compatibility.
	if b, ok := secs[secInst]; ok {
		if len(b)%v2InstRecSize != 0 {
			return nil, fmt.Errorf("simx: instance section is %d bytes, not a record multiple", len(b))
		}
		if uint64(len(b)/v2InstRecSize) > maxSnapshotCount {
			return nil, fmt.Errorf("simx: implausible instance count %d", len(b)/v2InstRecSize)
		}
		v.inst = b
		v.instPath = secs[secInstPath] // absent ⇒ every PathEnd must be 0
	}
	return v, nil
}

// buildInstances decodes the optional instance sections into Instance
// values, validating every record against the transistor count and the
// path payload. Paths are copied (never zero-copy views): the table is
// tiny next to the network, and hierarchy consumers outlive mappings.
func (v *v2File) buildInstances() ([]Instance, error) {
	if len(v.inst) == 0 {
		return nil, nil
	}
	out := make([]Instance, len(v.inst)/v2InstRecSize)
	for i := range out {
		r := v.inst[i*v2InstRecSize:]
		lo := binary.LittleEndian.Uint32(r[0:4])
		hi := binary.LittleEndian.Uint32(r[4:8])
		po := binary.LittleEndian.Uint32(r[8:12])
		pe := binary.LittleEndian.Uint32(r[12:16])
		if lo > hi || int(hi) > v.nTrans {
			return nil, fmt.Errorf("simx: instance %d has transistor range [%d,%d) outside [0,%d)", i, lo, hi, v.nTrans)
		}
		if po > pe || uint64(pe) > uint64(len(v.instPath)) {
			return nil, fmt.Errorf("simx: instance %d has path range [%d,%d) outside the path payload", i, po, pe)
		}
		out[i] = Instance{Path: string(v.instPath[po:pe]), TransLo: int(lo), TransHi: int(hi)}
	}
	return out, nil
}

// verifyPayload checks the payload checksum — the one validation pass
// that touches every byte, and so the dominant cost of opening a large
// file. It is split out of parseV2 so the mmap loader can run it on its
// own goroutine while buildV2 materializes the network: the overlap is
// sound because buildV2 bounds-checks every index it consumes and never
// trusts payload contents for memory safety, so the worst a corrupt
// payload can do before the checksum verdict lands is produce a network
// that is then discarded. Callers that race the two must report this
// error in preference to the build's.
func (v *v2File) verifyPayload() error {
	if crc32.Checksum(v.payload, castagnoli) != v.payloadCRC {
		return fmt.Errorf("simx: payload checksum mismatch")
	}
	return nil
}

// aligned8 reports whether the slice base is 8-byte aligned (always true
// for mmap pages; true in practice for heap buffers, but checked so the
// cast view is never undefined behaviour).
func aligned8(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

// f64View returns the section as a []float64 — a zero-copy cast when the
// host is little-endian and the base is aligned, a decoded copy otherwise.
func f64View(b []byte) []float64 {
	if hostLittleEndian && aligned8(b) {
		return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8)
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// u32View returns the section as a []uint32, zero-copy when possible.
func u32View(b []byte) []uint32 {
	if hostLittleEndian && aligned8(b) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// transRecs returns the record section as a []transRec — a zero-copy
// cast view on little-endian hosts, a one-shot decoded copy elsewhere.
func transRecs(b []byte) []transRec {
	if hostLittleEndian && aligned8(b) {
		return unsafe.Slice((*transRec)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/transRecSize)
	}
	out := make([]transRec, len(b)/transRecSize)
	for i := range out {
		r := b[i*transRecSize:]
		out[i] = transRec{
			W:    math.Float64frombits(binary.LittleEndian.Uint64(r[0:8])),
			L:    math.Float64frombits(binary.LittleEndian.Uint64(r[8:16])),
			R:    math.Float64frombits(binary.LittleEndian.Uint64(r[16:24])),
			Gate: int32(binary.LittleEndian.Uint32(r[24:28])),
			A:    int32(binary.LittleEndian.Uint32(r[28:32])),
			B:    int32(binary.LittleEndian.Uint32(r[32:36])),
			Type: r[36], Flow: r[37],
		}
	}
	return out
}

// buildV2 materializes a Network from a validated v2 view. With zeroCopy
// set (the mmap loader), node names are unsafe string views over the
// mapped name payload and the byName index is left to lazy construction —
// the caller owns keeping the mapping alive for the network's lifetime.
// Without it (the heap decoder), the name payload is copied once and the
// index is built eagerly, matching the v1 decoder's behaviour.
func buildV2(v *v2File, p *tech.Params, zeroCopy bool) (*Network, [32]byte, error) {
	fail := func(format string, args ...any) (*Network, [32]byte, error) {
		return nil, v.sourceHash, fmt.Errorf("simx: "+format, args...)
	}
	if got := string(v.techName); got != p.Name {
		return fail("technology %q, want %q", got, p.Name)
	}
	nNodes, nTrans := v.nNodes, v.nTrans
	nameOff := u32View(v.nameOff)
	if nameOff[0] != 0 || nameOff[nNodes] != uint32(len(v.nameData)) {
		return fail("name offset table does not span the name payload")
	}
	// Full monotonicity check before slicing any name: with the endpoints
	// pinned above, non-decreasing offsets guarantee every name slice is
	// in bounds — a corrupt table must produce an error, never a panic.
	for i := 0; i < nNodes; i++ {
		if nameOff[i] > nameOff[i+1] {
			return fail("node %d has descending name offset", i)
		}
	}
	nameAt := func(i int) string {
		return unsafe.String(unsafe.SliceData(v.nameData[nameOff[i]:]), int(nameOff[i+1]-nameOff[i]))
	}
	if !zeroCopy {
		// One copy of the name payload; every name is a substring of it.
		str := string(v.nameData)
		nameAt = func(i int) string { return str[nameOff[i]:nameOff[i+1]] }
	}

	// The stored CSR offset tables must be plausible before they steer
	// any write: monotone non-decreasing with pinned endpoints (every
	// transistor gates exactly one node; terminal refs are 1 or 2 per
	// device). The per-record cursor checks below then prove the tables
	// agree with the records exactly — a mis-written table the CRC alone
	// cannot catch must produce an error, never an overrun.
	recs := transRecs(v.trans)
	gateStart, termStart := u32View(v.gateStart), u32View(v.termStart)
	if gateStart[0] != 0 || int(gateStart[nNodes]) != nTrans ||
		termStart[0] != 0 || int(termStart[nNodes]) < nTrans || int(termStart[nNodes]) > 2*nTrans {
		return fail("adjacency offset table does not span the records")
	}
	for i := 0; i < nNodes; i++ {
		if gateStart[i] > gateStart[i+1] || termStart[i] > termStart[i+1] {
			return fail("adjacency offset table descends at node %d", i)
		}
	}
	totalG, totalT := int(gateStart[nNodes]), int(termStart[nNodes])

	nw := &Network{
		Name:  string(v.name),
		Tech:  p,
		Nodes: make([]*Node, nNodes),
		Trans: make([]*Trans, nTrans),
	}
	insts, instErr := v.buildInstances()
	if instErr != nil {
		return nil, v.sourceHash, instErr
	}
	nw.Instances = insts
	trans := make([]Trans, nTrans) // one allocation for all transistors
	un := uint32(nNodes)

	nodes := make([]Node, nNodes) // one allocation for all node structs
	caps := f64View(v.nodeCap)

	// Adjacency fills (both paths below) place each record at its node's
	// cursor in record order — exactly the order an AddTrans replay
	// would append — and prove the CSR tables honest: a cursor hitting
	// the next node's start means the table under-counted, cursors
	// short of it at the end mean it over-counted.
	//
	// With only one P (or a small network) the build is one fused scan:
	// each record is read once, its Trans fields and all three adjacency
	// placements done while it is hot, then a single node loop sets
	// headers and rails.
	if runtime.GOMAXPROCS(0) == 1 || nTrans < 1<<14 {
		gatesBack := make([]*Trans, totalG)
		termsBack := make([]*Trans, totalT)
		gcur := make([]uint32, nNodes)
		copy(gcur, gateStart[:nNodes])
		tcur := make([]uint32, nNodes)
		copy(tcur, termStart[:nNodes])
		for j := range recs {
			r := &recs[j]
			if r.Type > uint8(tech.RWire) || r.Flow > uint8(FlowOff) {
				return fail("transistor %d has type %d flow %d", j, r.Type, r.Flow)
			}
			g, ta, tb := uint32(r.Gate), uint32(r.A), uint32(r.B)
			if g >= un || ta >= un || tb >= un {
				return fail("transistor %d references node out of range", j)
			}
			t := &trans[j]
			t.Index = j
			t.Type = tech.Device(r.Type)
			t.Flow = Flow(r.Flow)
			t.Gate, t.A, t.B = &nodes[g], &nodes[ta], &nodes[tb]
			t.W, t.L, t.ROverride = r.W, r.L, r.R
			nw.Trans[j] = t
			p := gcur[g]
			if p == gateStart[g+1] {
				return fail("adjacency offset table disagrees with records at node %d", g)
			}
			gatesBack[p] = t
			gcur[g] = p + 1
			p = tcur[ta]
			if p == termStart[ta+1] {
				return fail("adjacency offset table disagrees with records at node %d", ta)
			}
			termsBack[p] = t
			tcur[ta] = p + 1
			if tb != ta {
				p = tcur[tb]
				if p == termStart[tb+1] {
					return fail("adjacency offset table disagrees with records at node %d", tb)
				}
				termsBack[p] = t
				tcur[tb] = p + 1
			}
		}
		for i := 0; i < nNodes; i++ {
			if gcur[i] != gateStart[i+1] || tcur[i] != termStart[i+1] {
				return fail("adjacency offset table disagrees with records at node %d", i)
			}
		}
		for i := range nodes {
			n := &nodes[i]
			n.Index = i
			kind := v.nodeKind[i]
			if kind > uint8(KindOutput) {
				return fail("node %d has kind %d", i, kind)
			}
			n.Name = nameAt(i)
			n.Kind = NodeKind(kind)
			n.Precharged = v.nodeFlags[i]&1 != 0
			n.Cap = caps[i]
			n.Gates = gatesBack[gateStart[i]:gateStart[i+1]]
			n.Terms = termsBack[termStart[i]:termStart[i+1]]
			nw.Nodes[i] = n
			switch n.Kind {
			case KindVdd:
				if nw.vdd != nil {
					return fail("duplicate Vdd rail")
				}
				nw.vdd = n
			case KindGnd:
				if nw.gnd != nil {
					return fail("duplicate GND rail")
				}
				nw.gnd = n
			}
		}
		if nw.vdd == nil || nw.gnd == nil {
			return fail("missing supply rails")
		}
		if !zeroCopy {
			nw.byName = make(map[string]*Node, nNodes)
			for _, n := range nw.Nodes {
				if _, dup := nw.byName[n.Name]; dup {
					return fail("duplicate node name %q", n.Name)
				}
				nw.byName[n.Name] = n
			}
		}
		return nw, v.sourceHash, nil
	}

	// The parallel build is overlapped passes over disjoint memory: the
	// gate and terminal adjacency lists, the Trans struct fields
	// (sharded), the node structs (sharded), each on its own goroutine.
	// Each pass validates every index it consumes — the others may still
	// be behind — and each sets only its own fields, so no two passes
	// write the same word. Nothing may return before the barrier: the
	// mmap caller unmaps on error, and a live pass must not read an
	// unmapped record.
	var wg sync.WaitGroup
	var gateErr, termErr error
	var gatesBack, termsBack []*Trans // gatesBack assigned by its pass; read after the barrier
	wg.Add(1)
	go func() { // gate adjacency (needs only trans addresses)
		defer wg.Done()
		back := make([]*Trans, totalG)
		gcur := make([]uint32, nNodes)
		copy(gcur, gateStart[:nNodes])
		for j := range recs {
			g := uint32(recs[j].Gate)
			if g >= un {
				gateErr = fmt.Errorf("transistor %d references node out of range", j)
				return
			}
			p := gcur[g]
			if p == gateStart[g+1] {
				gateErr = fmt.Errorf("adjacency offset table disagrees with records at node %d", g)
				return
			}
			back[p] = &trans[j]
			gcur[g] = p + 1
		}
		for i := 0; i < nNodes; i++ {
			if gcur[i] != gateStart[i+1] {
				gateErr = fmt.Errorf("adjacency offset table disagrees with records at node %d", i)
				return
			}
		}
		gatesBack = back
	}()

	shards := runtime.GOMAXPROCS(0)
	if shards > 4 {
		shards = 4
	}
	fieldShardErrs := make([]error, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(lo, hi, s int) { // Trans fields and the nw.Trans pointer table
			defer wg.Done()
			for j := lo; j < hi; j++ {
				r := &recs[j]
				if uint32(r.Gate) >= un || uint32(r.A) >= un || uint32(r.B) >= un {
					fieldShardErrs[s] = fmt.Errorf("transistor %d references node out of range", j)
					return
				}
				t := &trans[j]
				t.Index = j
				t.Type = tech.Device(r.Type)
				t.Flow = Flow(r.Flow)
				t.Gate, t.A, t.B = &nodes[r.Gate], &nodes[r.A], &nodes[r.B]
				t.W, t.L, t.ROverride = r.W, r.L, r.R
				nw.Trans[j] = t
			}
		}(s*nTrans/shards, (s+1)*nTrans/shards, s)
	}

	// Node structs, sharded the same way; each shard reports its rails
	// so duplicates are detected across the merge.
	nodeShards := shards
	if nNodes < 1<<14 {
		nodeShards = 1
	}
	type railPair struct{ vdd, gnd []*Node }
	rails := make([]railPair, nodeShards)
	nodeShardErrs := make([]error, nodeShards)
	nodeShard := func(lo, hi, s int) {
		for i := lo; i < hi; i++ {
			n := &nodes[i]
			n.Index = i
			kind := v.nodeKind[i]
			if kind > uint8(KindOutput) {
				nodeShardErrs[s] = fmt.Errorf("node %d has kind %d", i, kind)
				return
			}
			n.Name = nameAt(i)
			n.Kind = NodeKind(kind)
			n.Precharged = v.nodeFlags[i]&1 != 0
			n.Cap = caps[i]
			nw.Nodes[i] = n
			switch n.Kind {
			case KindVdd:
				rails[s].vdd = append(rails[s].vdd, n)
			case KindGnd:
				rails[s].gnd = append(rails[s].gnd, n)
			}
		}
	}
	for s := 1; s < nodeShards; s++ {
		wg.Add(1)
		go func(lo, hi, s int) {
			defer wg.Done()
			nodeShard(lo, hi, s)
		}(s*nNodes/nodeShards, (s+1)*nNodes/nodeShards, s)
	}
	nodeShard(0, nNodes/nodeShards, 0)

	// Terminal adjacency, split by node range: each shard scans every
	// record but places only terminals landing in its own [lo,hi) node
	// window, so the cursor entries and back-array regions it touches
	// are disjoint from the other shard's (per-node CSR ranges do not
	// overlap). Type/flow validation rides along on shard 0 only.
	termsBack = make([]*Trans, totalT)
	tcur := make([]uint32, nNodes)
	copy(tcur, termStart[:nNodes])
	termShards := 1
	if shards > 1 && nNodes >= 2 {
		termShards = 2
	}
	termErrs := make([]error, termShards)
	termFill := func(lo, hi uint32, s int, validate bool) {
		for j := range recs {
			r := &recs[j]
			if validate && (r.Type > uint8(tech.RWire) || r.Flow > uint8(FlowOff)) {
				termErrs[s] = fmt.Errorf("transistor %d has type %d flow %d", j, r.Type, r.Flow)
				return
			}
			ta, tb := uint32(r.A), uint32(r.B)
			if ta >= un || tb >= un {
				termErrs[s] = fmt.Errorf("transistor %d references node out of range", j)
				return
			}
			t := &trans[j]
			if ta >= lo && ta < hi {
				p := tcur[ta]
				if p == termStart[ta+1] {
					termErrs[s] = fmt.Errorf("adjacency offset table disagrees with records at node %d", ta)
					return
				}
				termsBack[p] = t
				tcur[ta] = p + 1
			}
			if tb != ta && tb >= lo && tb < hi {
				p := tcur[tb]
				if p == termStart[tb+1] {
					termErrs[s] = fmt.Errorf("adjacency offset table disagrees with records at node %d", tb)
					return
				}
				termsBack[p] = t
				tcur[tb] = p + 1
			}
		}
		for i := lo; i < hi; i++ {
			if tcur[i] != termStart[i+1] {
				termErrs[s] = fmt.Errorf("adjacency offset table disagrees with records at node %d", i)
				return
			}
		}
	}
	if termShards == 2 {
		mid := un / 2
		wg.Add(1)
		go func() {
			defer wg.Done()
			termFill(mid, un, 1, false)
		}()
		termFill(0, mid, 0, true)
	} else {
		termFill(0, un, 0, true)
	}
	wg.Wait()
	for _, err := range termErrs {
		if err != nil {
			termErr = err
			break
		}
	}
	if err := termErr; err != nil {
		return fail("%v", err)
	}
	if gateErr != nil {
		return fail("%v", gateErr)
	}
	for _, err := range nodeShardErrs {
		if err != nil {
			return fail("%v", err)
		}
	}
	for _, err := range fieldShardErrs {
		if err != nil {
			return fail("%v", err)
		}
	}
	// Adjacency headers, sharded like the node pass — post-barrier, both
	// back arrays are complete and each index writes only its own node.
	setAdj := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			nodes[i].Gates = gatesBack[gateStart[i]:gateStart[i+1]]
			nodes[i].Terms = termsBack[termStart[i]:termStart[i+1]]
		}
	}
	if nodeShards > 1 {
		var hwg sync.WaitGroup
		for s := 1; s < nodeShards; s++ {
			hwg.Add(1)
			go func(lo, hi int) {
				defer hwg.Done()
				setAdj(lo, hi)
			}(s*nNodes/nodeShards, (s+1)*nNodes/nodeShards)
		}
		setAdj(0, nNodes/nodeShards)
		hwg.Wait()
	} else {
		setAdj(0, nNodes)
	}
	// Merge the shards' rail sightings: exactly one of each.
	for _, rp := range rails {
		for _, n := range rp.vdd {
			if nw.vdd != nil {
				return fail("duplicate Vdd rail")
			}
			nw.vdd = n
		}
		for _, n := range rp.gnd {
			if nw.gnd != nil {
				return fail("duplicate GND rail")
			}
			nw.gnd = n
		}
	}
	if nw.vdd == nil || nw.gnd == nil {
		return fail("missing supply rails")
	}
	if !zeroCopy {
		nw.byName = make(map[string]*Node, nNodes)
		for _, n := range nw.Nodes {
			if _, dup := nw.byName[n.Name]; dup {
				return fail("duplicate node name %q", n.Name)
			}
			nw.byName[n.Name] = n
		}
	}
	return nw, v.sourceHash, nil
}

// WriteSnapshotV2 encodes nw to w in the fixed-layout v2 format.
func WriteSnapshotV2(w io.Writer, nw *Network, sourceHash [32]byte) error {
	n, t := len(nw.Nodes), len(nw.Trans)
	type sec struct {
		id  uint32
		buf []byte
	}
	pad8 := func(x int) int { return (x + 7) &^ 7 }

	techB := []byte(nw.Tech.Name)
	nameB := []byte(nw.Name)
	kinds := make([]byte, n)
	flags := make([]byte, n)
	caps := make([]byte, 8*n)
	gateStart := make([]byte, 4*(n+1))
	termStart := make([]byte, 4*(n+1))
	nameOff := make([]byte, 4*(n+1))
	var nameData []byte
	var offG, offT, offN uint32
	for i, nd := range nw.Nodes {
		kinds[i] = uint8(nd.Kind)
		if nd.Precharged {
			flags[i] |= 1
		}
		binary.LittleEndian.PutUint64(caps[8*i:], math.Float64bits(nd.Cap))
		binary.LittleEndian.PutUint32(gateStart[4*i:], offG)
		binary.LittleEndian.PutUint32(termStart[4*i:], offT)
		binary.LittleEndian.PutUint32(nameOff[4*i:], offN)
		offG += uint32(len(nd.Gates))
		offT += uint32(len(nd.Terms))
		offN += uint32(len(nd.Name))
		nameData = append(nameData, nd.Name...)
	}
	binary.LittleEndian.PutUint32(gateStart[4*n:], offG)
	binary.LittleEndian.PutUint32(termStart[4*n:], offT)
	binary.LittleEndian.PutUint32(nameOff[4*n:], offN)
	recs := make([]byte, transRecSize*t)
	for j, tr := range nw.Trans {
		r := recs[j*transRecSize:]
		binary.LittleEndian.PutUint64(r[0:8], math.Float64bits(tr.W))
		binary.LittleEndian.PutUint64(r[8:16], math.Float64bits(tr.L))
		binary.LittleEndian.PutUint64(r[16:24], math.Float64bits(tr.ROverride))
		binary.LittleEndian.PutUint32(r[24:28], uint32(tr.Gate.Index))
		binary.LittleEndian.PutUint32(r[28:32], uint32(tr.A.Index))
		binary.LittleEndian.PutUint32(r[32:36], uint32(tr.B.Index))
		r[36], r[37] = uint8(tr.Type), uint8(tr.Flow)
	}

	secs := []sec{
		{secTech, techB},
		{secName, nameB},
		{secNodeKind, kinds},
		{secNodeFlags, flags},
		{secNodeCap, caps},
		{secTrans, recs},
		{secGateStart, gateStart},
		{secTermStart, termStart},
		{secNameOff, nameOff},
		{secNameData, nameData},
	}
	// Instance sections ride behind the fixed ten only when the network
	// carries hierarchy annotations, so instance-free networks produce
	// files byte-identical to earlier writers'.
	if len(nw.Instances) > 0 {
		instB := make([]byte, v2InstRecSize*len(nw.Instances))
		var instPathB []byte
		for i, inst := range nw.Instances {
			r := instB[v2InstRecSize*i:]
			binary.LittleEndian.PutUint32(r[0:4], uint32(inst.TransLo))
			binary.LittleEndian.PutUint32(r[4:8], uint32(inst.TransHi))
			binary.LittleEndian.PutUint32(r[8:12], uint32(len(instPathB)))
			instPathB = append(instPathB, inst.Path...)
			binary.LittleEndian.PutUint32(r[12:16], uint32(len(instPathB)))
		}
		secs = append(secs, sec{secInst, instB}, sec{secInstPath, instPathB})
	}
	payloadStart := v2HeaderSize + len(secs)*v2SectionSize
	total := payloadStart
	offs := make([]int, len(secs))
	for i, s := range secs {
		offs[i] = total
		total = pad8(total + len(s.buf))
	}
	out := make([]byte, total) // ends at the last section's padded edge
	copy(out[:4], snapshotMagic)
	binary.LittleEndian.PutUint32(out[4:8], SnapshotVersion2)
	binary.LittleEndian.PutUint32(out[12:16], uint32(len(secs)))
	binary.LittleEndian.PutUint64(out[16:24], uint64(total))
	copy(out[24:56], sourceHash[:])
	binary.LittleEndian.PutUint32(out[60:64], uint32(n))
	binary.LittleEndian.PutUint32(out[64:68], uint32(t))
	for i, s := range secs {
		ent := out[v2HeaderSize+i*v2SectionSize:][:v2SectionSize]
		binary.LittleEndian.PutUint32(ent[0:4], s.id)
		binary.LittleEndian.PutUint64(ent[8:16], uint64(offs[i]))
		binary.LittleEndian.PutUint64(ent[16:24], uint64(len(s.buf)))
		copy(out[offs[i]:], s.buf)
	}
	binary.LittleEndian.PutUint32(out[56:60], crc32.Checksum(out[payloadStart:], castagnoli))
	binary.LittleEndian.PutUint32(out[8:12], crc32.Checksum(out[12:payloadStart], castagnoli))
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("simx: %w", err)
	}
	return nil
}

// readSnapshotV2 is the heap decoder for a complete v2 image.
func readSnapshotV2(data []byte, p *tech.Params) (*Network, [32]byte, error) {
	var zero [32]byte
	v, err := parseV2(data)
	if err != nil {
		return nil, zero, err
	}
	if err := v.verifyPayload(); err != nil {
		return nil, zero, err
	}
	return buildV2(v, p, false)
}
