// Incremental re-analysis: apply an edit batch from package incremental,
// derive the next stage-database generation sharing every untouched entry,
// reset only the arrivals the edits can move, and re-drain the event queue
// from the dirty frontier. Results are bit-identical to a from-scratch
// analysis of the edited network — the deterministic tie-break in improve
// makes the fixpoint independent of propagation order, and the engine
// falls back to a full run whenever it cannot prove the shortcut safe.
package core

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/incremental"
	"repro/internal/netlist"
	"repro/internal/stage"
	"repro/internal/tech"
)

// ReanalyzeStats reports what one Reanalyze call did.
type ReanalyzeStats struct {
	// Full reports that the engine fell back to a from-scratch analysis;
	// Reason says why.
	Full   bool
	Reason string

	// DirtyNodes / TotalNodes / DirtyFrac describe the invalidation plan
	// (non-source nodes; DirtyFrac = DirtyNodes/TotalNodes).
	DirtyNodes int
	TotalNodes int
	DirtyFrac  float64

	// Epoch is the stage-database generation after the call.
	Epoch uint64
	// StagesEvaluated counts model evaluations this call performed (the
	// same metric StagesEvaluated reports cumulatively).
	StagesEvaluated int
}

// Reanalyze applies the edit batch and brings the analysis up to date.
// The previous network generation is never mutated — concurrent readers
// of the old network or its stage database always finish on a consistent
// snapshot — and afterwards a.Net, a.StageDB() and every arrival describe
// the edited network exactly as a fresh Run over it would.
//
// The incremental path is taken when the invalidation plan stays under
// Options.ReanalyzeMaxDirty and nothing poisons the shortcut; otherwise
// the analysis reruns from scratch (still against the new generation).
// Either way the seeded input events and fixed values carry over.
func (a *Analyzer) Reanalyze(edits []incremental.Edit) (*ReanalyzeStats, error) {
	if a.events == nil {
		return nil, fmt.Errorf("core: Reanalyze before Run")
	}
	oldStatic := a.static
	oldDB := a.db

	res, err := incremental.Apply(a.Net, edits)
	if err != nil {
		return nil, err
	}
	a.rebind(res.Net)
	if err := a.settleStatic(); err != nil {
		return nil, err
	}
	plan := res.Plan(oldStatic, a.static)
	if a.hier != nil && !plan.ForceFull {
		// Detach stamped instances the batch reaches (widening the plan to
		// cover their interiors) before the incremental/full decision reads
		// the dirty fraction.
		a.hierReanalyze(res, plan)
	}

	stats := &ReanalyzeStats{
		DirtyNodes: plan.DirtyNodes,
		DirtyFrac:  plan.Frac,
	}
	for _, n := range a.Net.Nodes {
		if !n.IsSource() {
			stats.TotalNodes++
		}
	}
	switch {
	case plan.ForceFull:
		stats.Full, stats.Reason = true, "retype changed the strong-source set"
	case plan.Frac > a.Opts.ReanalyzeMaxDirty:
		stats.Full, stats.Reason = true,
			fmt.Sprintf("dirty fraction %.2f above threshold %.2f", plan.Frac, a.Opts.ReanalyzeMaxDirty)
	case a.dirtyTouchesUnbounded(plan):
		// The edit perturbs a feedback region whose spin the guard cut
		// off. The cycle usually spans the dirty/clean boundary, and the
		// clean half only replays its recorded history — it cannot respond
		// to the recomputed half — so the incremental drain would settle
		// the cycle at a non-canonical cutoff. Only a from-scratch drain
		// reproduces the full run's spin.
		stats.Full, stats.Reason = true, "edit touches a feedback region"
	}
	if stats.Full {
		// A from-scratch drain recomputes every arrival flat; nothing
		// stays stamped, so hierarchical state would only misreport.
		a.dropHier()
	}

	// Next stage-database generation. A full fallback still derives when
	// it can: the entries are valid either way, only the arrivals need
	// recomputing. ForceFull means the source set changed under the
	// enumerator's feet, so nothing old is trustworthy.
	opt := a.Opts.Stage
	opt.Oracle = a.oracle()
	stamp := a.stageStamp()
	if plan.ForceFull || oldDB == nil {
		a.db = stage.NewDB(a.Net, opt)
		if oldDB != nil {
			a.db.Epoch = oldDB.Epoch + 1
		}
	} else {
		a.db = oldDB.Derive(a.Net, opt, plan.DirtyTrans, plan.DBDirtyNode, res.OldTrans)
	}
	a.db.Stamp = stamp
	stats.Epoch = a.db.Epoch

	evBefore := a.stageEv
	if stats.Full {
		a.runFull()
	} else {
		carried := a.runIncremental(plan)
		if len(a.Unbounded) > carried {
			// The feedback guard fired inside the dirty cone: its cutoff
			// point is order-dependent, so only a from-scratch drain gives
			// the canonical answer. (Guard hits wholly in the clean region
			// carry over unchanged — the clean region's event stream is
			// independent of the dirty cone, so its cutoffs are already
			// canonical.)
			stats.Full, stats.Reason = true, "feedback detected in the edited region"
			a.dropHier()
			a.runFull()
		}
	}
	a.Truncated = a.Truncated || a.db.Truncated()
	stats.StagesEvaluated = a.stageEv - evBefore
	return stats, nil
}

// dirtyTouchesUnbounded reports whether any node the previous analysis
// left on the feedback guard is inside the invalidation plan's dirty cone.
// Guard hits wholly outside the cone are safe to carry: their groups'
// event streams are frozen, and replay reproduces the complete propagated
// stream (see nodeHist) — including its length, so downstream guard
// counts re-accumulate exactly.
func (a *Analyzer) dirtyTouchesUnbounded(plan *incremental.Plan) bool {
	for _, n := range a.Unbounded {
		if plan.NodeDirty(n.Index) {
			return true
		}
	}
	return false
}

// rebind repoints the analyzer at the next network generation. Node
// indexes are stable across edits, so index-keyed state (fixed values,
// initial values) carries over untouched; node pointers must be remapped,
// and the ROW-indexed drain state re-permuted: recompiling yields a new
// RCM layout (added nodes and devices shift the whole walk), so every
// per-row array is rewritten old-row → node index → new-row. History
// chunk indexes are arena-flat and survive unchanged.
func (a *Analyzer) rebind(nw *netlist.Network) {
	a.Net = nw
	for i := range a.seeded {
		a.seeded[i].node = nw.Nodes[a.seeded[i].node.Index]
	}
	for i, n := range a.Opts.LoopBreak {
		a.Opts.LoopBreak[i] = nw.Nodes[n.Index]
	}
	a.Opts.DB = nil // a caller-shared DB describes the old generation
	old := a.cnet
	a.buildGates()
	if a.events == nil || old == nil {
		return
	}
	n := len(nw.Nodes)
	events := make([][2]Event, n)
	count := make([][2]int, n)
	hist := make([][2]nodeHist, n)
	queued := make([][2]bool, n)
	for oldRow := range a.events {
		orig := old.InvPerm[oldRow]
		nr := a.cnet.Perm[orig]
		events[nr] = a.events[oldRow]
		count[nr] = a.count[oldRow]
		hist[nr] = a.hist[oldRow]
		queued[nr] = a.queued[oldRow]
	}
	a.events, a.count, a.hist, a.queued = events, count, hist, queued
}

// runFull redoes the analysis from scratch over the current generation
// (the stage database is already bound).
func (a *Analyzer) runFull() {
	nw := a.Net
	a.events = make([][2]Event, len(nw.Nodes))
	a.count = make([][2]int, len(nw.Nodes))
	a.hist = make([][2]nodeHist, len(nw.Nodes))
	a.resetHistArena()
	a.queued = make([][2]bool, len(nw.Nodes))
	a.queue.Reset()
	a.queue.Grow(4 * len(nw.Nodes))
	a.Unbounded = nil
	if w := Workers(a.Opts.Workers, 0); w > 1 {
		a.db.Prewarm(w)
	}
	a.seedAll()
	a.drainRouted(nil)
}

// runIncremental resets only the dirty arrivals and re-propagates from the
// clean/dirty boundary.
//
// Why this reaches the same fixpoint as runFull: every timing edge runs
// either within one channel-connected group (stages span one group) or
// along gate fanout (a gate event triggers stages in the gated device's
// group). The plan's time-dirty set is closed under gate fanout from every
// perturbed group, so no arrival outside it can change — clean events are
// already at the full analysis's fixpoint, and re-applying their candidates
// is a no-op under the tie-break. Conversely every event inside the dirty
// cone is rederivable from the boundary: the clean nodes (and inputs)
// whose events trigger stages into dirty groups.
// It returns the number of carried-over Unbounded entries: feedback-guard
// hits wholly in the clean region, which remain canonical (dirty-region
// hits are dropped and re-detected; the caller falls back to a full run if
// any new ones appear).
func (a *Analyzer) runIncremental(plan *incremental.Plan) int {
	nw := a.Net
	// rebind already re-permuted the per-row state to this generation's
	// layout (new nodes hold zero rows); only the dirty resets remain.
	for i := range nw.Nodes {
		if plan.NodeDirty(i) {
			row := a.row(i)
			a.events[row] = [2]Event{}
			a.count[row] = [2]int{}
			for tr := range a.hist[row] {
				a.freeHist(&a.hist[row][tr])
			}
			a.queued[row] = [2]bool{}
		}
	}
	a.queue.Reset()
	// Carry over guard hits outside the dirty cone (remapped to the new
	// generation — node indexes are stable). Clean nodes never re-enter the
	// heap, so they cannot re-report themselves; dropping them would make
	// Unbounded diverge from what a fresh full run reports.
	carried := a.Unbounded[:0:0]
	for _, n := range a.Unbounded {
		if !plan.NodeDirty(n.Index) {
			carried = append(carried, nw.Nodes[n.Index])
		}
	}
	a.Unbounded = carried

	// Boundary replay: collect every clean event that can trigger a stage
	// whose group is time-dirty — not just the final arrival, but the whole
	// recorded history (superseded-but-propagated events first), because a
	// full run propagated those too and a steeper superseded slope can
	// produce the latest downstream consequence. The items are merged into
	// the drain in trigger-time order so candidate generation follows the
	// same global order as a from-scratch run. Improvements can only land on
	// dirty nodes (see above), so clean state — including propagation counts
	// and history — is never touched.
	var replays []replayItem
	for i, n := range nw.Nodes {
		if plan.NodeDirty(i) {
			continue
		}
		touches := false
		for _, ref := range a.cnet.Gates(i) {
			ti, _ := netlist.UnpackGateRef(ref)
			if plan.TransTouchesDirty(nw.Trans[ti]) {
				touches = true
				break
			}
		}
		if !touches && n.Kind == netlist.KindInput && len(n.Terms) > 0 {
			touches = plan.SourceTouchesDirty(n)
		}
		if !touches {
			continue
		}
		row := a.row(i)
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			h := &a.hist[row][tr]
			for ci := h.head; ci != 0; ci = a.histChunkAt(ci).next {
				c := a.histChunkAt(ci)
				for k := int32(0); k < c.n; k++ {
					replays = append(replays, replayItem{i, tr, c.ev[k].t, c.ev[k].slope})
				}
			}
			if ev := a.events[row][tr]; ev.Valid && h.propagated {
				replays = append(replays, replayItem{i, tr, ev.T, ev.Slope})
			}
		}
	}
	slices.SortFunc(replays, func(x, y replayItem) int {
		switch {
		case x.t != y.t:
			return cmp.Compare(x.t, y.t)
		case x.node != y.node:
			return cmp.Compare(x.node, y.node)
		default:
			return cmp.Compare(x.tr, y.tr)
		}
	})
	// Seeds on dirty nodes: an input is a strong source and never dirty,
	// but re-applying is cheap and covers any seed landing on a node the
	// batch created or perturbed.
	for _, s := range a.seeded {
		if plan.NodeDirty(s.node.Index) {
			a.improve(s.node.Index, s.tr, Event{
				T: s.t, Slope: s.slope, Valid: true, FromNode: -1,
			})
		}
	}
	a.drainRouted(replays)
	return len(carried)
}
