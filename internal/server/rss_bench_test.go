// BENCH_7's RSS-vs-session-count curves: per-session memory for N
// concurrent sessions of the E6-XL chip (chip:32,10 — 100k+ nodes,
// ~182k transistors), shared-arena versus per-session-copy. The
// benchmark is memory-shaped, not time-shaped: run it with
// -benchtime 1x and read the reported metrics —
//
//	heapMB/session   live Go heap added per session (graph copies)
//	mappedMB         the arena's resident mapped bytes (paid once)
//	totalMB          heap delta + mapped bytes for the whole fleet
//
// The shared arm's totalMB should be near-flat in N (one mapping plus
// per-session bookkeeping); the copy arm's grows by a full ~30 MB
// network graph per session.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var (
	rssOnce sync.Once
	rssSim  string // E6-XL .sim source text
	rssDir  string // snapshot dir pre-seeded with the E6-XL .simx
)

// rssCorpus generates the E6-XL netlist once and seeds a snapshot
// directory with its .simx, so every measured create is a warm load.
func rssCorpus(b *testing.B) {
	b.Helper()
	rssOnce.Do(func() {
		p := tech.NMOS4()
		nw, err := gen.ChipGrid(p, 32, 10)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := netlist.WriteSim(&buf, nw); err != nil {
			panic(err)
		}
		rssSim = buf.String()
		dir, err := os.MkdirTemp("", "rssbench")
		if err != nil {
			panic(err)
		}
		rssDir = dir
		srv := httptest.NewServer(New(Options{SnapshotDir: dir}))
		defer srv.Close()
		if resp := rssCreate(srv, rssSim, 3); resp.Source != "parse" {
			panic(fmt.Sprintf("seed create source = %q, want parse", resp.Source))
		}
	})
}

// rssCreate posts a session over the E6-XL sim with a distinct Top (a
// distinct session key, same network identity) and returns the reply.
func rssCreate(srv *httptest.Server, sim string, top int) createResponse {
	cfg := SessionConfig{Name: "chip-32x10", Sim: sim, Tech: "nmos-4u", Top: top}
	body, err := json.Marshal(cfg)
	if err != nil {
		panic(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var out createResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(err)
	}
	if out.Session == "" {
		panic("create returned no session id")
	}
	return out
}

func liveHeap() uint64 {
	// Two cycles: mark+free, then finish sweeping, so HeapAlloc is the
	// settled live set.
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func BenchmarkSessionRSS(b *testing.B) {
	if !netlist.MmapSupported {
		b.Skip("no mmap on this platform")
	}
	rssCorpus(b)
	for _, arm := range []struct {
		name     string
		noShared bool
		source   string
	}{
		{"shared", false, "mmap"},
		{"copy", true, "snapshot"},
	} {
		for _, n := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/%d", arm.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					srv := httptest.NewServer(New(Options{
						SnapshotDir:   rssDir,
						NoSharedViews: arm.noShared,
					}))
					before := liveHeap()
					for k := 0; k < n; k++ {
						if resp := rssCreate(srv, rssSim, 3+k); resp.Source != arm.source {
							b.Fatalf("session %d source = %q, want %q", k, resp.Source, arm.source)
						}
					}
					after := liveHeap()
					var heapDelta float64
					if after > before {
						heapDelta = float64(after - before)
					}
					var m MetricsSnapshot
					mresp, err := srv.Client().Get(srv.URL + "/metrics")
					if err != nil {
						b.Fatal(err)
					}
					if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
						b.Fatal(err)
					}
					mresp.Body.Close()
					mapped := float64(m.NetArena.ResidentBytes)
					b.ReportMetric(heapDelta/float64(n)/1e6, "heapMB/session")
					b.ReportMetric(mapped/1e6, "mappedMB")
					b.ReportMetric((heapDelta+mapped)/1e6, "totalMB")
					srv.Close()
				}
			})
		}
	}
}
