// Interconnect study: a resistive polysilicon wire timed three ways — the
// switch-level models, the rigorous Rubinstein–Penfield–Horowitz bounds on
// the stage's RC tree, and the transistor-level analog reference.
//
//	go run ./examples/interconnect
package main

import (
	"fmt"
	"log"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/tech"
)

func main() {
	p := tech.NMOS4()
	const sections = 10
	totalR, totalC := 60e3, 600e-15 // a long, narrow poly run
	nw, err := gen.PolyWire(p, sections, totalR, totalC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wire: %.0f kΩ / %.0f fF in %d sections, nMOS driver\n\n",
		totalR/1e3, totalC*1e15, sections)

	tables := delay.AnalyticTables(p)
	wend := nw.Lookup("wend")

	// Switch-level models.
	for _, m := range delay.All(tables) {
		a := core.New(nw, m, core.Options{})
		a.SetInputEventName("in", tech.Rise, 0, 1e-9)
		if err := a.Run(); err != nil {
			log.Fatal(err)
		}
		ev := a.Arrival(wend, tech.Fall)
		fmt.Printf("%-8s model: wire end falls at %6.2f ns\n", m.Name(), ev.T*1e9)
	}

	// RPH bounds on the driving stage's RC tree.
	a := core.New(nw, &delay.Bounded{T: tables}, core.Options{})
	a.SetInputEventName("in", tech.Rise, 0, 1e-9)
	if err := a.Run(); err != nil {
		log.Fatal(err)
	}
	ev := a.Arrival(wend, tech.Fall)
	if st := ev.Via; st != nil {
		lo, hi, err := (&delay.Bounded{T: tables}).Bounds(nw, st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nRPH certificate for the final stage alone (step input,\n"+
			"excluding the driver's own switching): [%.2f, %.2f] ns\n", lo*1e9, hi*1e9)
	}

	// Analog reference: drive the input with a 1 ns ramp after a long
	// settle, measure the 50% crossing at the wire end.
	in := nw.Lookup("in")
	c, nmap, err := analog.FromNetlist(nw, []analog.InputDrive{
		{Node: in, W: analog.Ramp(0, p.Vdd, 600e-9, 1e-9)},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Tran(analog.TranOpts{
		Stop: 900e-9, Step: 100e-12,
		Record: []int{nmap[in.Index], nmap[wend.Index]},
	})
	if err != nil {
		log.Fatal(err)
	}
	d, err := res.Delay50(nmap[in.Index], nmap[wend.Index], true, false, 0, p.Vdd, 300e-9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analog reference: %.2f ns\n", d*1e9)
	plot, err := res.Plot(nmap[wend.Index], 60, 0, p.Vdd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwire end waveform: %s\n", plot)
	fmt.Println("\nthe lumped estimate overshoots by ~2× on long wires; the")
	fmt.Println("distributed estimate tracks the reference — the result that")
	fmt.Println("motivated the distributed RC model.")
}
