// Command crystal is the timing verifier: it reads a switch-level netlist
// (Berkeley .sim format, as produced by layout extraction or cmd/benchgen),
// seeds worst-case input events, runs the analysis under a chosen delay
// model, and prints the critical paths — the end-user tool the paper's
// system presents.
//
// Usage:
//
//	crystal -sim alu8.sim [-tech nmos-4u] [-model slope] [-tables char]
//	        [-rise a0,b0] [-fall a0] [-fix ctl=1,en=0] [-slope 1e-9]
//	        [-top 5] [-erc] [-deadline 200e-9] [-workers 1]
//	        [-snapshot alu8.simx]
//
// With no -rise/-fall flags every node marked "@ in" in the netlist
// toggles in both directions at t=0, the fully vectorless worst case.
// With -deadline, a slack report follows the critical paths and the exit
// status is 2 if any endpoint misses the deadline. -workers parallelizes
// both the .sim parse and the drain of this single analysis (0 selects
// all cores); arrival times and reports are bit-identical at every
// worker count, so the flag is purely a speed knob. -snapshot names a
// binary .simx cache for the parsed netlist: fresh (same source bytes,
// same tech) it is loaded in place of parsing, otherwise it is
// rewritten after the parse (see docs/PERFORMANCE.md, "Ingest").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/charlib"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/erc"
	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// config collects everything main parses from flags; run executes it.
type config struct {
	simFile   string
	snapshot  string
	techName  string
	model     string
	tables    string
	rise      string
	fall      string
	fix       string
	inSlope   float64
	workers   int
	reorder   string
	hier      string
	top       int
	runERC    bool
	deadline  float64
	loopbreak string
	edits     string
	watch     bool
	cpuprof   string
	memprof   string

	// watchIn overrides os.Stdin as the -watch source (tests).
	watchIn io.Reader
}

// profileStart begins CPU profiling if cpuprof names a file, returning a
// stop function to defer. profileStop writes a heap profile if memprof
// names a file. Both are the stock runtime/pprof protocol, analyzed with
// `go tool pprof`.
func profileStart(cpuprof string) (func(), error) {
	if cpuprof == "" {
		return func() {}, nil
	}
	f, err := os.Create(cpuprof)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

func profileStop(memprof string) error {
	if memprof == "" {
		return nil
	}
	f, err := os.Create(memprof)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile reflects live data
	return pprof.WriteHeapProfile(f)
}

func main() {
	var cfg config
	flag.StringVar(&cfg.simFile, "sim", "", "input .sim netlist (required)")
	flag.StringVar(&cfg.snapshot, "snapshot", "", "binary .simx netlist cache: load it when fresh, rewrite it after a parse")
	flag.StringVar(&cfg.techName, "tech", "nmos-4u", "technology: nmos-4u or cmos-3u")
	flag.StringVar(&cfg.model, "model", "slope", "delay model: lumped, rc, or slope")
	flag.StringVar(&cfg.tables, "tables", "char", "delay tables: char or analytic")
	flag.StringVar(&cfg.rise, "rise", "", "comma list of inputs that rise at t=0")
	flag.StringVar(&cfg.fall, "fall", "", "comma list of inputs that fall at t=0")
	flag.StringVar(&cfg.fix, "fix", "", "comma list of node=0|1 fixed values")
	flag.Float64Var(&cfg.inSlope, "slope", 1e-9, "input transition time in seconds")
	flag.IntVar(&cfg.workers, "workers", 1, "drain worker count for one analysis (0 = all cores); results are bit-identical at every setting")
	flag.StringVar(&cfg.reorder, "reorder", "on", "cache-conscious node reordering of the compiled network: on or off (results are bit-identical either way)")
	flag.StringVar(&cfg.hier, "hier", "off", "hierarchical macromodel analysis over instance annotations: on or off (results are bit-identical either way)")
	flag.IntVar(&cfg.top, "top", 5, "number of critical paths to print")
	flag.BoolVar(&cfg.runERC, "erc", false, "run electrical rule checks before timing")
	flag.Float64Var(&cfg.deadline, "deadline", 0, "if positive, print a slack report against this time (seconds)")
	flag.StringVar(&cfg.loopbreak, "loopbreak", "", "comma list of nodes whose fanout is cut (feedback directive)")
	flag.StringVar(&cfg.edits, "edits", "", "edit script to replay with incremental re-analysis after the initial run")
	flag.BoolVar(&cfg.watch, "watch", false, "after the initial run, read edit-script lines from stdin and re-analyze at each `run`")
	flag.StringVar(&cfg.cpuprof, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memprof, "memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopCPU, err := profileStart(cfg.cpuprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crystal:", err)
		os.Exit(1)
	}
	violations, err := run(cfg, os.Stdout)
	stopCPU()
	if err != nil {
		fmt.Fprintln(os.Stderr, "crystal:", err)
		os.Exit(1)
	}
	if err := profileStop(cfg.memprof); err != nil {
		fmt.Fprintln(os.Stderr, "crystal:", err)
		os.Exit(1)
	}
	if violations > 0 {
		os.Exit(2)
	}
}

// run executes one analysis, writing reports to w. It returns the number
// of deadline violations (0 when no deadline was given).
func run(cfg config, w io.Writer) (int, error) {
	if cfg.simFile == "" {
		return 0, fmt.Errorf("missing -sim file")
	}
	var p *tech.Params
	switch cfg.techName {
	case "nmos-4u", "nmos":
		p = tech.NMOS4()
	case "cmos-3u", "cmos":
		p = tech.CMOS3()
	default:
		return 0, fmt.Errorf("unknown technology %q", cfg.techName)
	}

	nw, res, err := netlist.LoadSimFile(cfg.simFile, cfg.simFile, p,
		netlist.LoadOptions{Workers: cfg.workers, Snapshot: cfg.snapshot})
	if err != nil {
		return 0, err
	}
	if cfg.snapshot != "" {
		// A mapped view stays mapped for the life of the process (node
		// names alias the mapping); stderr so report goldens are unaffected.
		fmt.Fprintf(os.Stderr, "crystal: netlist source: %s\n", res.Source)
	}

	if cfg.runERC {
		fmt.Fprint(w, erc.Format(erc.Check(nw, erc.Options{})))
	}

	var tb *delay.Tables
	switch cfg.tables {
	case "char":
		tb, err = charlib.Default(p)
		if err != nil {
			fmt.Fprintf(w, "crystal: characterization failed (%v); using analytic tables\n", err)
		}
	case "analytic":
		tb = delay.AnalyticTables(p)
	default:
		return 0, fmt.Errorf("unknown tables %q", cfg.tables)
	}
	m, err := delay.ByName(cfg.model, tb)
	if err != nil {
		return 0, err
	}

	// The drain parallelism of the single analysis this command runs.
	// Reports are built from arrivals, which are bit-identical at every
	// worker count, so -workers only changes how fast the answer arrives.
	opts := core.Options{Workers: cfg.workers}
	switch cfg.reorder {
	case "on", "":
	case "off":
		opts.NoReorder = true
	default:
		return 0, fmt.Errorf("-reorder: want on or off, got %q", cfg.reorder)
	}
	switch cfg.hier {
	case "on":
		opts.Hier = true
	case "off", "":
	default:
		return 0, fmt.Errorf("-hier: want on or off, got %q", cfg.hier)
	}
	for _, name := range splitList(cfg.loopbreak) {
		n := nw.Lookup(name)
		if n == nil {
			return 0, fmt.Errorf("-loopbreak: no node named %q", name)
		}
		opts.LoopBreak = append(opts.LoopBreak, n)
	}
	a := core.New(nw, m, opts)
	fixedNames := map[string]bool{}
	for _, kv := range splitList(cfg.fix) {
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return 0, fmt.Errorf("bad -fix entry %q (want node=0|1)", kv)
		}
		n := nw.Lookup(name)
		if n == nil {
			return 0, fmt.Errorf("-fix: no node named %q", name)
		}
		switch val {
		case "0":
			a.SetFixed(n, switchsim.V0)
		case "1":
			a.SetFixed(n, switchsim.V1)
		default:
			return 0, fmt.Errorf("bad -fix value %q for %s", val, name)
		}
		fixedNames[name] = true
	}

	seeded := false
	for _, name := range splitList(cfg.rise) {
		if err := a.SetInputEventName(name, tech.Rise, 0, cfg.inSlope); err != nil {
			return 0, err
		}
		seeded = true
	}
	for _, name := range splitList(cfg.fall) {
		if err := a.SetInputEventName(name, tech.Fall, 0, cfg.inSlope); err != nil {
			return 0, err
		}
		seeded = true
	}
	if !seeded {
		for _, in := range nw.Inputs() {
			if fixedNames[in.Name] {
				continue
			}
			if err := a.SetInputEvent(in, tech.Rise, 0, cfg.inSlope); err != nil {
				return 0, err
			}
			if err := a.SetInputEvent(in, tech.Fall, 0, cfg.inSlope); err != nil {
				return 0, err
			}
		}
	}

	if err := a.Run(); err != nil {
		return 0, err
	}
	// report writes the path (and optional slack) report for the current
	// analysis state; the edit modes call it again after each re-analysis.
	report := func() (int, error) {
		st := a.Net.Stats()
		fmt.Fprintf(w, "crystal: %s — %d transistors, %d nodes (%s tables)\n",
			a.Net.Name, st.Trans, st.Nodes, tb.Source)
		if opts.Hier {
			hs := a.HierStats()
			fmt.Fprintf(w, "crystal: hier: %d instances, %d stamped, %d flat\n",
				hs.Instances, hs.Stamped, hs.Flat)
		}
		if err := a.WriteReport(w, cfg.top); err != nil {
			return 0, err
		}
		if cfg.deadline > 0 {
			fmt.Fprintln(w)
			return a.WriteSlackReport(w, cfg.deadline, cfg.top), nil
		}
		return 0, nil
	}
	violations, err := report()
	if err != nil {
		return 0, err
	}
	if cfg.edits != "" {
		ef, err := os.Open(cfg.edits)
		if err != nil {
			return violations, err
		}
		v, err := replayEdits(a, ef, cfg.edits, w, report, violations)
		ef.Close()
		if err != nil {
			return violations, err
		}
		violations = v
	}
	if cfg.watch {
		in := cfg.watchIn
		if in == nil {
			in = os.Stdin
		}
		v, err := replayEdits(a, in, "stdin", w, report, violations)
		if err != nil {
			return violations, err
		}
		violations = v
	}
	return violations, nil
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
