package delay_test

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stage"
	"repro/internal/tech"
)

// Example evaluates one stage — a three-transistor pass chain — under all
// three delay models, showing the lumped model's pessimism.
func Example() {
	p := tech.NMOS4()
	nw := netlist.New("chain", p)
	in, ctl := nw.Node("in"), nw.Node("ctl")
	nw.MarkInput(in)
	nw.MarkInput(ctl)
	prev := in
	for _, name := range []string{"n1", "n2", "n3"} {
		next := nw.Node(name)
		nw.AddTrans(tech.NEnh, ctl, prev, next, 0, 0)
		prev = next
	}
	// The stage driving the chain's far end from the input.
	res := stage.FromNode(nw, in, tech.Fall, stage.Options{})
	st := res.Stages[len(res.Stages)-1]

	tables := delay.AnalyticTables(p)
	for _, m := range delay.All(tables) {
		r := m.Evaluate(nw, st, 1e-9)
		fmt.Printf("%-7s %.2f ns\n", m.Name(), r.Delay*1e9)
	}
	// Output:
	// lumped  3.12 ns
	// rc      1.99 ns
	// slope   2.17 ns
}
