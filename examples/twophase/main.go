// Two-phase clocked analysis: timing a dynamic shift register across its
// clock schedule, the workload Crystal was built for. Each phase's logic
// is timed with the latched state carried over from the previous phase,
// and arrivals are checked against the phase duration.
//
//	go run ./examples/twophase
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

func main() {
	p := tech.NMOS4()
	nw, err := gen.ShiftRegister(p, 4)
	if err != nil {
		log.Fatal(err)
	}
	st := nw.Stats()
	fmt.Printf("4-stage two-phase shift register: %d transistors, %d nodes\n\n", st.Trans, st.Nodes)

	phi1 := nw.Lookup("phi1")
	phi2 := nw.Lookup("phi2")
	schedule := func(dur float64) []core.Phase {
		return []core.Phase{
			{Name: "phi1", High: []*netlist.Node{phi1}, Low: []*netlist.Node{phi2}, Duration: dur, Slope: 2e-9},
			{Name: "phi2", High: []*netlist.Node{phi2}, Low: []*netlist.Node{phi1}, Duration: dur, Slope: 2e-9},
		}
	}

	for _, dur := range []float64{100e-9, 40e-9, 10e-9} {
		ca := &core.ClockedAnalysis{
			Net:    nw,
			Model:  delay.NewSlope(delay.AnalyticTables(p)),
			Phases: schedule(dur),
			Fixed:  map[string]switchsim.Value{"in": switchsim.V1},
		}
		results, err := ca.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("phase duration %.0f ns:\n", dur*1e9)
		core.WritePhaseReport(os.Stdout, results)
		fmt.Println()
	}
	fmt.Println("shortening the phase below the stage delay turns the schedule")
	fmt.Println("into violations — the minimum clock period falls out directly.")
}
