package switchsim_test

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// Example simulates an nMOS NAND gate over its truth table.
func Example() {
	p := tech.NMOS4()
	nw := netlist.New("nand", p)
	a, b, out, mid := nw.Node("a"), nw.Node("b"), nw.Node("out"), nw.Node("mid")
	nw.MarkInput(a)
	nw.MarkInput(b)
	nw.AddTrans(tech.NEnh, a, out, mid, 0, 0)
	nw.AddTrans(tech.NEnh, b, mid, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 0, 4*p.MinL)

	s := switchsim.New(nw)
	for _, va := range []switchsim.Value{switchsim.V0, switchsim.V1} {
		for _, vb := range []switchsim.Value{switchsim.V0, switchsim.V1} {
			s.SetInput(a, va)
			s.SetInput(b, vb)
			s.Settle()
			fmt.Printf("nand(%v,%v) = %v\n", va, vb, s.Value(out))
		}
	}
	// Output:
	// nand(0,0) = 1
	// nand(0,1) = 1
	// nand(1,0) = 1
	// nand(1,1) = 0
}
