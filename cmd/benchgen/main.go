// Command benchgen emits generated benchmark circuits as Berkeley .sim
// files, the interchange format the timing verifier (cmd/crystal) reads —
// the stand-in for layout extraction in the paper's toolchain.
//
// Usage:
//
//	benchgen -list
//	benchgen -circuit alu:8 [-tech nmos-4u] [-o alu8.sim]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
)

func main() {
	circuit := flag.String("circuit", "", "circuit spec, e.g. alu:8 or passchain:6")
	techName := flag.String("tech", "nmos-4u", "technology: nmos-4u or cmos-3u")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list available circuits")
	flag.Parse()

	if *list {
		fmt.Println("available circuits:")
		for _, s := range gen.List() {
			fmt.Printf("  %-12s %-16s %s\n", s.Name, s.Args, s.Doc)
		}
		return
	}
	if *circuit == "" {
		fatal(fmt.Errorf("missing -circuit (or use -list)"))
	}
	var p *tech.Params
	switch *techName {
	case "nmos-4u", "nmos":
		p = tech.NMOS4()
	case "cmos-3u", "cmos":
		p = tech.CMOS3()
	default:
		fatal(fmt.Errorf("unknown technology %q", *techName))
	}
	nw, err := gen.Build(*circuit, p)
	if err != nil {
		fatal(err)
	}
	if err := nw.Check(); err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := netlist.WriteSim(w, nw); err != nil {
		fatal(err)
	}
	st := nw.Stats()
	fmt.Fprintf(os.Stderr, "benchgen: %s — %d transistors, %d nodes, %d inputs, %d outputs\n",
		nw.Name, st.Trans, st.Nodes, st.Inputs, st.Outputs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
