package switchsim

// The vectorized batch engine: the same Bryant strength lattice as the
// scalar Sim, evaluated 64 input vectors at a time in bit-plane form.
//
// A ternary value is two bit planes — p0 ("could be low") and p1 ("could
// be high"); X sets both. Signal resolution state is four plane stacks per
// node, one word per strength level s ∈ {K1, K2, G2, G1, Ω}, in the
// cumulative encoding "a contribution of strength ≥ s exists":
//
//	dh[s]/dl[s]  definite high/low contribution at strength ≥ s
//	ph[s]/pl[s]  possible high/low contribution at strength ≥ s
//
// A base contribution of strength σ sets levels 1..σ; propagation through
// a device of strength g copies levels 1..g across the channel, which is
// exactly min-attenuation in cumulative form. The join of the lattice is
// bitwise OR, so the whole monotone fixed point runs as word operations
// over 64 independent vector lanes.
//
// Every vector starts from power-on state (rails driven, definite vector
// symbols driven at Ω, X symbols released, everything else X charge) and
// settles by the same synchronous sweep discipline as Sim.Settle: freeze
// conduction from the lane's current values, solve the channel fixed
// point, commit, repeat — with identical sweep limits and identical
// oscillation-to-X forcing. The scalar engine is the reference: per lane,
// the batch engine is bit-identical to a fresh Sim run of that vector
// (FuzzBatchSim and TestBatchMatchesScalar pin this). The scalar engine
// stages each group fixed point as driven-then-charged; the join is
// monotone and the least fixed point unique, so the batch engine solves
// the same fixed point unstaged.

import (
	"fmt"

	"repro/internal/netlist"
)

// Lanes is the vector batch width: one bit lane per vector in a slab.
const Lanes = 64

// transistor conduction classes, predecoded at compile time.
const (
	condClassOn1    = iota // conducts while gate is high (n-enhancement)
	condClassOn0           // conducts while gate is low (p-enhancement)
	condClassAlways        // depletion loads, wire resistors
)

// Batch is a compiled vectorized simulator bound to one network. Compile
// once with NewBatch, then stream any number of vector batches through
// Run; slab state is reused across calls.
type Batch struct {
	nw     *netlist.Network
	c      *netlist.Compact
	size   []Strength
	inputs []*netlist.Node

	// Per-transistor columns (from the Compact, plus predecoded class
	// and strength cap).
	tGate  []int32
	tClass []uint8
	tCap   []Strength

	// Slab state, one word (64 lanes) per node unless noted.
	p0, p1 []uint64 // stored value planes
	driven []uint64 // lanes where the node is an Ω source
	dval   []uint64 // driven value plane (bit set = driven high)
	oscm   []uint64 // lanes forced to X by oscillation recovery
	chm    []uint64 // lanes changed in the previous sweep

	// Resolution plane stacks, 5 words per node (levels K1..Ω).
	dh, dl, ph, pl []uint64

	// Per-transistor per-sweep conduction lane masks.
	onm, mbm []uint64

	// Inner-relaxation worklist scratch.
	wq  []int32
	inq []bool
}

// BatchResult is the outcome of one Run.
type BatchResult struct {
	// Vectors is the number of vectors simulated.
	Vectors int
	// Sweeps is the total settle sweep count across all slabs.
	Sweeps int
	// Out holds, per vector, the settled values of the watched nodes.
	Out [][]Value
	// Osc flags vectors where some node failed to stabilize and was
	// forced to X.
	Osc []bool
}

// NewBatch compiles nw for vectorized simulation. The compiled form reuses
// the netlist.Compact CSR adjacency (gate refs for conduction, channel
// term refs for strength propagation) in identity layout.
func NewBatch(nw *netlist.Network) *Batch {
	n := len(nw.Nodes)
	b := &Batch{
		nw:     nw,
		c:      netlist.Compile(nw),
		size:   NodeSizes(nw),
		inputs: nw.Inputs(),
		tGate:  make([]int32, len(nw.Trans)),
		tClass: make([]uint8, len(nw.Trans)),
		tCap:   make([]Strength, len(nw.Trans)),
		p0:     make([]uint64, n),
		p1:     make([]uint64, n),
		driven: make([]uint64, n),
		dval:   make([]uint64, n),
		oscm:   make([]uint64, n),
		chm:    make([]uint64, n),
		dh:     make([]uint64, 5*n),
		dl:     make([]uint64, 5*n),
		ph:     make([]uint64, 5*n),
		pl:     make([]uint64, 5*n),
		onm:    make([]uint64, len(nw.Trans)),
		mbm:    make([]uint64, len(nw.Trans)),
		wq:     make([]int32, 0, n),
		inq:    make([]bool, n),
	}
	for i, t := range nw.Trans {
		b.tGate[i] = b.c.TransGate[i]
		b.tCap[i] = DeviceStrength(t)
		switch {
		case t.AlwaysOn():
			b.tClass[i] = condClassAlways
		case t.ConductsOn() == 1:
			b.tClass[i] = condClassOn1
		default:
			b.tClass[i] = condClassOn0
		}
	}
	return b
}

// Inputs returns the input nodes the vector columns map to, in node index
// order.
func (b *Batch) Inputs() []*netlist.Node { return b.inputs }

// InputNames returns the vector column names in column order.
func (b *Batch) InputNames() []string {
	names := make([]string, len(b.inputs))
	for i, n := range b.inputs {
		names[i] = n.Name
	}
	return names
}

// ParseVector parses one row of 0/1/X symbols into ni values; blanks and
// tabs between symbols are ignored.
func ParseVector(row string, ni int) ([]Value, error) {
	vals := make([]Value, 0, ni)
	for _, r := range row {
		switch r {
		case '0':
			vals = append(vals, V0)
		case '1':
			vals = append(vals, V1)
		case 'x', 'X':
			vals = append(vals, VX)
		case ' ', '\t':
		default:
			return nil, fmt.Errorf("switchsim: bad vector symbol %q in %q", r, row)
		}
	}
	if len(vals) != ni {
		return nil, fmt.Errorf("switchsim: vector %q has %d symbols, want %d inputs", row, len(vals), ni)
	}
	return vals, nil
}

// Run streams vectors through the network. vecs holds one Value per input
// column per vector, row-major (vector k occupies vecs[k*ni : (k+1)*ni]
// in Inputs() order); a VX symbol leaves that input released. watch lists
// the nodes whose settled values are reported per vector; nil reports
// every node, indexed like Network.Nodes.
//
// Each vector settles from power-on state, independently of every other
// vector — batch runs are stateless functional regressions, not
// sequential simulations.
func (b *Batch) Run(vecs []Value, watch []*netlist.Node) (*BatchResult, error) {
	ni := len(b.inputs)
	if ni == 0 {
		return nil, fmt.Errorf("switchsim: network has no input nodes to vector")
	}
	if len(vecs)%ni != 0 {
		return nil, fmt.Errorf("switchsim: %d vector values is not a multiple of %d inputs", len(vecs), ni)
	}
	k := len(vecs) / ni
	res := &BatchResult{
		Vectors: k,
		Out:     make([][]Value, k),
		Osc:     make([]bool, k),
	}
	for base := 0; base < k; base += Lanes {
		lanes := min(Lanes, k-base)
		b.loadSlab(vecs[base*ni:], lanes)
		res.Sweeps += b.settleSlab()
		b.extract(res, base, lanes, watch)
	}
	return res, nil
}

// loadSlab resets slab state to power-on and drives the definite symbols
// of the next `lanes` vectors. Unused lanes of the last slab run as
// all-released vectors; they can prolong a slab's sweep loop but cannot
// affect other lanes, and they are never extracted.
func (b *Batch) loadSlab(vecs []Value, lanes int) {
	ni := len(b.inputs)
	for i := range b.p0 {
		b.p0[i] = ^uint64(0) // everything starts as X charge
		b.p1[i] = ^uint64(0)
		b.driven[i] = 0
		b.dval[i] = 0
		b.oscm[i] = 0
		b.chm[i] = 0
	}
	vdd, gnd := b.nw.Vdd().Index, b.nw.GND().Index
	b.driven[vdd] = ^uint64(0)
	b.dval[vdd] = ^uint64(0)
	b.p0[vdd], b.p1[vdd] = 0, ^uint64(0)
	b.driven[gnd] = ^uint64(0)
	b.p0[gnd], b.p1[gnd] = ^uint64(0), 0
	for lane := 0; lane < lanes; lane++ {
		bit := uint64(1) << lane
		row := vecs[lane*ni : (lane+1)*ni]
		for i, v := range row {
			if v == VX {
				continue // released: stays Ω-size X charge
			}
			idx := b.inputs[i].Index
			b.driven[idx] |= bit
			if v == V1 {
				b.dval[idx] |= bit
				b.p0[idx] &^= bit
			} else {
				b.p1[idx] &^= bit
			}
		}
	}
}

// settleSlab runs synchronous sweeps until every lane is stable, mirroring
// Sim.Settle sweep for sweep: identical iteration bounds, identical
// oscillation recovery, with the per-lane trajectory of every node equal
// to the scalar engine's.
func (b *Batch) settleSlab() int {
	numNodes := len(b.nw.Nodes)
	limit := 20 + 2*numNodes
	hard := 2*limit + 2*numNodes
	sweeps := 0
	for {
		sweeps++
		xmode := sweeps > limit
		if sweeps > hard {
			// Safety net: abandon whatever still ping-pongs.
			for n := 0; n < numNodes; n++ {
				force := b.chm[n] &^ b.driven[n] &^ (b.p0[n] & b.p1[n])
				b.oscm[n] |= force
				b.p0[n] |= force
				b.p1[n] |= force
			}
			break
		}
		b.conductionMasks()
		b.relaxPlanes()
		changed := uint64(0)
		for n := 0; n < numNodes; n++ {
			n1, n0 := b.finalize(n)
			n1 = (n1 &^ b.driven[n]) | (b.driven[n] & b.dval[n])
			n0 = (n0 &^ b.driven[n]) | (b.driven[n] &^ b.dval[n])
			ch := (n1 ^ b.p1[n]) | (n0 ^ b.p0[n])
			if xmode {
				// Oscillation recovery: lanes still changing after the
				// sweep limit have no stable value — they become X, and
				// X then spreads monotonically until the loop quiesces.
				force := ch &^ b.driven[n]
				b.oscm[n] |= force &^ (n1 & n0)
				n1 |= force
				n0 |= force
				ch = (n1 ^ b.p1[n]) | (n0 ^ b.p0[n])
			}
			b.chm[n] = ch
			b.p1[n] = n1
			b.p0[n] = n0
			changed |= ch
		}
		if changed == 0 {
			break
		}
	}
	return sweeps
}

// conductionMasks decodes per-lane channel conduction for every device
// from its gate's value planes.
func (b *Batch) conductionMasks() {
	for t := range b.tGate {
		g := b.tGate[t]
		gx := b.p0[g] & b.p1[g]
		switch b.tClass[t] {
		case condClassAlways:
			b.onm[t] = ^uint64(0)
			b.mbm[t] = 0
		case condClassOn1:
			b.onm[t] = b.p1[g] &^ b.p0[g]
			b.mbm[t] = gx
		default:
			b.onm[t] = b.p0[g] &^ b.p1[g]
			b.mbm[t] = gx
		}
	}
}

// relaxPlanes initializes every node's resolution planes from its base
// contribution, then runs the monotone worklist relaxation over the
// channel CSR to the least fixed point. Bits only ever turn on, so the
// iteration terminates, and the fixed point is order-independent — the
// property that pins this engine to the scalar reference.
func (b *Batch) relaxPlanes() {
	numNodes := len(b.nw.Nodes)
	for n := 0; n < numNodes; n++ {
		drivenHi := b.driven[n] & b.dval[n]
		drivenLo := b.driven[n] &^ b.dval[n]
		chargeHi := b.p1[n] &^ b.driven[n]
		chargeLo := b.p0[n] &^ b.driven[n]
		sz := b.size[n]
		for s := Strength(1); s <= SOmega; s++ {
			dh, dl := drivenHi, drivenLo
			if s <= sz {
				dh |= chargeHi
				dl |= chargeLo
			}
			i := 5*n + int(s) - 1
			b.dh[i] = dh
			b.dl[i] = dl
			b.ph[i] = dh
			b.pl[i] = dl
		}
	}
	// Seed the worklist with every node: each propagates its base out,
	// and nodes re-enter when a neighbor's contribution grows them.
	b.wq = b.wq[:0]
	for n := 0; n < numNodes; n++ {
		b.wq = append(b.wq, int32(n))
		b.inq[n] = true
	}
	for head := 0; head < len(b.wq); head++ {
		n := int(b.wq[head])
		b.inq[n] = false
		for _, ref := range b.c.Terms(n) {
			t, _ := netlist.UnpackTermRef(ref)
			on, mb := b.onm[t], b.mbm[t]
			act := on | mb
			if act == 0 {
				continue
			}
			o := int(b.c.TransA[t])
			if o == n {
				o = int(b.c.TransB[t])
			}
			if o == n {
				continue // self-loop channel: no effect
			}
			notSrc := ^b.driven[o]
			grow := uint64(0)
			for s := Strength(1); s <= b.tCap[t]; s++ {
				i := 5*o + int(s) - 1
				j := 5*n + int(s) - 1
				add := b.dh[j] & on & notSrc &^ b.dh[i]
				b.dh[i] |= add
				grow |= add
				add = b.dl[j] & on & notSrc &^ b.dl[i]
				b.dl[i] |= add
				grow |= add
				add = b.ph[j] & act & notSrc &^ b.ph[i]
				b.ph[i] |= add
				grow |= add
				add = b.pl[j] & act & notSrc &^ b.pl[i]
				b.pl[i] |= add
				grow |= add
			}
			if grow != 0 && !b.inq[o] {
				b.inq[o] = true
				b.wq = append(b.wq, int32(o))
			}
		}
	}
}

// finalize reduces node n's resolved planes to new value planes: at each
// lane's strongest occupied level, a lone high is 1 and a lone low is 0,
// a conflict is X, and an opposing potential at or above the winning
// strength overturns a definite value to X — the bit-parallel form of
// nodeSig.value.
func (b *Batch) finalize(n int) (n1, n0 uint64) {
	var one, zero, x, occAbove uint64
	for s := SOmega; s >= SK1; s-- {
		i := 5*n + int(s) - 1
		dh, dl := b.dh[i], b.dl[i]
		top := (dh | dl) &^ occAbove
		d1 := top & dh &^ dl
		d0 := top & dl &^ dh
		x |= (top & dh & dl) | (d1 & b.pl[i]) | (d0 & b.ph[i])
		one |= d1 &^ b.pl[i]
		zero |= d0 &^ b.ph[i]
		occAbove |= dh | dl
	}
	return one | x, zero | x
}

// extract decodes the settled lanes into per-vector results.
func (b *Batch) extract(res *BatchResult, base, lanes int, watch []*netlist.Node) {
	oscAny := uint64(0)
	for n := range b.oscm {
		oscAny |= b.oscm[n]
	}
	for lane := 0; lane < lanes; lane++ {
		bit := uint64(1) << lane
		var out []Value
		if watch == nil {
			out = make([]Value, len(b.nw.Nodes))
			for n := range out {
				out[n] = b.laneValue(n, bit)
			}
		} else {
			out = make([]Value, len(watch))
			for i, w := range watch {
				out[i] = b.laneValue(w.Index, bit)
			}
		}
		res.Out[base+lane] = out
		res.Osc[base+lane] = oscAny&bit != 0
	}
}

// laneValue decodes one node's value in one lane.
func (b *Batch) laneValue(n int, bit uint64) Value {
	lo := b.p0[n]&bit != 0
	hi := b.p1[n]&bit != 0
	switch {
	case lo && hi:
		return VX
	case hi:
		return V1
	default:
		return V0
	}
}

// Stats reports compiled-size numbers for logs and metrics.
func (b *Batch) Stats() (nodes, devices, inputs int) {
	return len(b.nw.Nodes), len(b.tGate), len(b.inputs)
}
