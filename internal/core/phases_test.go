package core

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// shiftRegPhases builds the canonical two-phase schedule for a shift
// register: phi1 high / phi2 low, then the reverse.
func shiftRegPhases(nw *netlist.Network, dur float64) []Phase {
	phi1 := nw.Lookup("phi1")
	phi2 := nw.Lookup("phi2")
	return []Phase{
		{Name: "phi1", High: []*netlist.Node{phi1}, Low: []*netlist.Node{phi2}, Duration: dur},
		{Name: "phi2", High: []*netlist.Node{phi2}, Low: []*netlist.Node{phi1}, Duration: dur},
	}
}

func TestShiftRegisterFunctionalTwoPhase(t *testing.T) {
	// Sanity-check the generator with the switch-level simulator before
	// timing it: one full two-phase cycle moves a bit through one stage
	// (two inversions = non-inverted).
	p := tech.NMOS4()
	nw, err := gen.ShiftRegister(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := switchsim.New(nw)
	s.SetInputName("in", switchsim.V1)
	// phi1 high: stage 0 samples.
	s.SetInputName("phi1", switchsim.V1)
	s.SetInputName("phi2", switchsim.V0)
	s.Settle()
	// phi2 high: stage 0 transfers.
	s.SetInputName("phi1", switchsim.V0)
	s.SetInputName("phi2", switchsim.V1)
	s.Settle()
	// The bit is now at the stage-0 output; another full cycle brings it
	// to "out".
	s.SetInputName("phi1", switchsim.V1)
	s.SetInputName("phi2", switchsim.V0)
	s.Settle()
	s.SetInputName("phi1", switchsim.V0)
	s.SetInputName("phi2", switchsim.V1)
	s.Settle()
	if got := s.ValueName("out"); got != switchsim.V1 {
		t.Fatalf("bit did not reach out: %v", got)
	}
}

func TestClockedAnalysisShiftRegister(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.ShiftRegister(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	ca := &ClockedAnalysis{
		Net:    nw,
		Model:  analyticModel(p, "slope"),
		Phases: shiftRegPhases(nw, 200e-9),
		Fixed:  map[string]switchsim.Value{"in": switchsim.V1},
	}
	results, err := ca.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d phase results", len(results))
	}
	for _, r := range results {
		if !r.Worst.Valid {
			t.Errorf("phase %s: no arrivals", r.Phase.Name)
		}
		if r.Violations != 0 {
			t.Errorf("phase %s: %d violations against a generous duration", r.Phase.Name, r.Violations)
		}
		if r.Worst.T <= 0 || r.Worst.T > 200e-9 {
			t.Errorf("phase %s: worst arrival %g out of range", r.Phase.Name, r.Worst.T)
		}
	}
	var sb strings.Builder
	WritePhaseReport(&sb, results)
	if !strings.Contains(sb.String(), "phi1") || !strings.Contains(sb.String(), "ok") {
		t.Errorf("phase report:\n%s", sb.String())
	}
}

func TestClockedAnalysisDetectsViolations(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.ShiftRegister(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	ca := &ClockedAnalysis{
		Net:    nw,
		Model:  analyticModel(p, "slope"),
		Phases: shiftRegPhases(nw, 1e-12), // absurdly short phase
		Fixed:  map[string]switchsim.Value{"in": switchsim.V0},
	}
	results, err := ca.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range results {
		total += r.Violations
	}
	if total == 0 {
		t.Error("1 ps phases should violate")
	}
}

func TestClockedAnalysisErrors(t *testing.T) {
	p := tech.NMOS4()
	nw, _ := gen.ShiftRegister(p, 1)
	ca := &ClockedAnalysis{Net: nw, Model: analyticModel(p, "rc")}
	if _, err := ca.Run(); err == nil {
		t.Error("no phases should fail")
	}
	ca.Phases = shiftRegPhases(nw, 0)
	if _, err := ca.Run(); err == nil {
		t.Error("zero duration should fail")
	}
	// Clock not marked as input.
	nw2, _ := gen.ShiftRegister(p, 1)
	hidden := nw2.Node("hidden_clk")
	ca2 := &ClockedAnalysis{
		Net:   nw2,
		Model: analyticModel(p, "rc"),
		Phases: []Phase{
			{Name: "a", High: []*netlist.Node{hidden}, Duration: 1e-9},
			{Name: "b", Low: []*netlist.Node{hidden}, Duration: 1e-9},
		},
	}
	if _, err := ca2.Run(); err == nil {
		t.Error("unmarked clock should fail")
	}
}

func TestAnalyzerInitialValuesRespected(t *testing.T) {
	// A node seeded with an initial 1 that nothing drives should prune a
	// rise event (it is already high) but allow a fall.
	p := tech.NMOS4()
	nw := netlist.New("init", p)
	in := nw.Node("in")
	nw.MarkInput(in)
	dyn := nw.Node("dyn")
	out := nw.Node("out")
	nw.AddTrans(tech.NEnh, in, dyn, nw.GND(), 0, 0) // pulldown gated by in
	nw.AddTrans(tech.NEnh, dyn, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 0, 4*p.MinL)

	a := New(nw, analyticModel(p, "rc"), Options{})
	init := make([]switchsim.Value, len(nw.Nodes))
	for i := range init {
		init[i] = switchsim.VX
	}
	init[dyn.Index] = switchsim.V1
	a.initial = init
	a.SetInputEvent(in, tech.Rise, 0, 0)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if !a.Arrival(dyn, tech.Fall).Valid {
		t.Error("dyn should fall when in rises")
	}
	if a.Arrival(dyn, tech.Rise).Valid {
		t.Error("dyn rise should be pruned: it starts high and nothing pulls it up")
	}
}
