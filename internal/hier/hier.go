// Package hier detects repeated structural instances in a switch-level
// network so the analyzer can run the event-driven engine on one
// representative and stamp the resulting timing at every other copy.
//
// The starting point is the instance table carried by .sim/.simx files
// (`@ inst <path> <lo> <hi>` directives, recorded by netlist.Import): each
// entry names a contiguous transistor range one hierarchical stamp
// produced. Detection selects the outermost non-overlapping ranges,
// splits each candidate's node references into an interior (nodes whose
// every connection lies inside the range — invisible from the rest of the
// chip) and a boundary (shared nodes), checks that the boundary cannot
// leak events into the interior through the channel graph, and groups
// structurally identical candidates with identical boundary context into
// classes by canonical fingerprint plus an exact pairwise verify.
//
// Two members of one class are guaranteed to receive bit-identical
// worst-case arrivals from a flat analysis whenever the analysis-level
// context (static sensitization, seeds, loop breaks) also matches — that
// final check lives in package core, which sees the analyzer state.
package hier

import (
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/netlist"
)

// Instance is one candidate occurrence selected for hierarchical
// treatment: an outermost instance annotation with its computed interior
// and boundary.
type Instance struct {
	// Path is the hierarchical prefix from the instance annotation.
	Path string
	// TransLo/TransHi bound the instance's transistors, half-open.
	TransLo, TransHi int
	// Interior lists the node indexes whose every gate and channel
	// reference lies inside the transistor range, ascending. The slice
	// position of a node is its *rank*: structurally corresponding nodes
	// of two class members share a rank, which is how timing is remapped
	// between them.
	Interior []int32
	// Boundary lists the non-rail nodes referenced by the instance's
	// transistors but visible outside it, ascending. Class members must
	// share their boundary nodes exactly (same global nodes).
	Boundary []int32
	// Class is the equivalence class this instance belongs to, or -1 when
	// the instance can only be analyzed flat; Reason says why.
	Class  int
	Reason string
}

// Plan is the detection result for one network.
type Plan struct {
	// Instances holds the selected outermost candidates in ascending
	// TransLo order (ranges never overlap).
	Instances []Instance
	// Classes maps class id to the indexes (into Instances) of its
	// members, ascending — the first member is the representative. Only
	// classes with at least two members offer any stamping; singletons
	// are kept for provenance.
	Classes [][]int
	// MemberOf maps node index to owning instance index + 1 (0 = the node
	// is global). Only interior nodes are owned.
	MemberOf []int32
}

// Rank returns the interior rank of node idx within instance inst, or -1
// when the node is not interior to it.
func (p *Plan) Rank(inst int, idx int32) int32 {
	in := p.Instances[inst].Interior
	k := sort.Search(len(in), func(i int) bool { return in[i] >= idx })
	if k < len(in) && in[k] == idx {
		return int32(k)
	}
	return -1
}

// Detect computes the hierarchical plan for the network. Networks without
// instance annotations yield an empty plan (never nil).
func Detect(nw *netlist.Network) *Plan {
	p := &Plan{MemberOf: make([]int32, len(nw.Nodes))}
	p.selectOutermost(nw)
	if len(p.Instances) == 0 {
		return p
	}
	p.assignInteriors(nw)
	p.classify(nw)
	return p
}

// selectOutermost picks the maximal non-overlapping instance ranges:
// candidates sorted by (TransLo asc, TransHi desc) and taken greedily, so
// an enclosing stamp always wins over its children. Malformed ranges are
// dropped (Check rejects them, but detection must not trust its input).
func (p *Plan) selectOutermost(nw *netlist.Network) {
	cands := make([]Instance, 0, len(nw.Instances))
	for _, inst := range nw.Instances {
		if inst.TransLo < 0 || inst.TransHi <= inst.TransLo || inst.TransHi > len(nw.Trans) {
			continue
		}
		cands = append(cands, Instance{Path: inst.Path, TransLo: inst.TransLo, TransHi: inst.TransHi})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].TransLo != cands[j].TransLo {
			return cands[i].TransLo < cands[j].TransLo
		}
		return cands[i].TransHi > cands[j].TransHi
	})
	hi := 0
	for _, c := range cands {
		if c.TransLo < hi {
			continue // nested in (or overlapping) the previous selection
		}
		p.Instances = append(p.Instances, c)
		hi = c.TransHi
	}
}

// assignInteriors computes, in one pass over the devices plus one over the
// nodes, which nodes are confined to which instance: a node is interior to
// the instance whose range covers every transistor referencing it. Rails
// are never interior (their events never move); nodes without references
// are global by definition.
func (p *Plan) assignInteriors(nw *netlist.Network) {
	minRef := make([]int32, len(nw.Nodes))
	maxRef := make([]int32, len(nw.Nodes))
	for i := range minRef {
		minRef[i] = math.MaxInt32
		maxRef[i] = -1
	}
	touch := func(n *netlist.Node, ti int32) {
		if ti < minRef[n.Index] {
			minRef[n.Index] = ti
		}
		if ti > maxRef[n.Index] {
			maxRef[n.Index] = ti
		}
	}
	for i, t := range nw.Trans {
		touch(t.Gate, int32(i))
		touch(t.A, int32(i))
		touch(t.B, int32(i))
	}
	for i, n := range nw.Nodes {
		if maxRef[i] < 0 || n.IsRail() {
			continue
		}
		k := p.covering(int(minRef[i]))
		if k < 0 {
			continue
		}
		inst := &p.Instances[k]
		if int(maxRef[i]) < inst.TransHi {
			inst.Interior = append(inst.Interior, int32(i)) // ascending: i is the loop variable
			p.MemberOf[i] = int32(k) + 1
		}
	}
}

// Covering returns the index of the selected instance whose range contains
// transistor index ti, or -1. Ranges are disjoint and sorted; the analyzer
// uses this to remap instance ranges through an edit batch's index map.
func (p *Plan) Covering(ti int) int { return p.covering(ti) }

// covering returns the index of the selected instance whose range contains
// transistor index ti, or -1. Ranges are disjoint and sorted.
func (p *Plan) covering(ti int) int {
	k := sort.Search(len(p.Instances), func(i int) bool { return p.Instances[i].TransHi > ti })
	if k < len(p.Instances) && p.Instances[k].TransLo <= ti {
		return k
	}
	return -1
}

// terminal tags for fingerprinting and verification. An interior terminal
// is identified by rank (structural position), a boundary terminal by its
// global node index — so two instances fingerprint equal only when their
// shared context is literally the same nodes.
const (
	tagInterior = iota
	tagVdd
	tagGnd
	tagBoundary
)

func (p *Plan) tag(inst int, n *netlist.Node) (int, int32) {
	switch n.Kind {
	case netlist.KindVdd:
		return tagVdd, 0
	case netlist.KindGnd:
		return tagGnd, 0
	}
	if int(p.MemberOf[n.Index])-1 == inst {
		return tagInterior, p.Rank(inst, int32(n.Index))
	}
	return tagBoundary, int32(n.Index)
}

// classify checks stamp eligibility, collects boundaries, fingerprints
// each eligible instance and groups equal ones — verified pairwise against
// the class representative, never by hash alone.
func (p *Plan) classify(nw *netlist.Network) {
	byFP := map[uint64]int{}
	for i := range p.Instances {
		inst := &p.Instances[i]
		inst.Class = -1
		if reason := p.eligible(nw, i); reason != "" {
			inst.Reason = reason
			continue
		}
		p.collectBoundary(nw, i)
		fp := p.fingerprint(nw, i)
		c, ok := byFP[fp]
		if !ok {
			inst.Class = len(p.Classes)
			byFP[fp] = inst.Class
			p.Classes = append(p.Classes, []int{i})
			continue
		}
		if !p.verify(nw, p.Classes[c][0], i) {
			inst.Reason = "fingerprint collision: structure differs from class representative"
			continue
		}
		inst.Class = c
		p.Classes[c] = append(p.Classes[c], i)
	}
}

// eligible reports why an instance cannot be stamped, or "" when it can.
// The one structural requirement is event confinement: every channel
// terminal of every member device must be a rail, an interior node, or a
// strong source — a non-source boundary node on a channel would let
// events flow across the cut in both directions, and the interior would
// no longer evolve independently. (Boundary nodes on gates are fine: a
// gate edge is one-directional, and identical across class members by the
// fingerprint's global-index tags.)
func (p *Plan) eligible(nw *netlist.Network, i int) string {
	inst := &p.Instances[i]
	if len(inst.Interior) == 0 {
		return "no interior nodes: nothing to stamp"
	}
	for ti := inst.TransLo; ti < inst.TransHi; ti++ {
		t := nw.Trans[ti]
		for _, n := range [2]*netlist.Node{t.A, t.B} {
			if n.IsRail() || int(p.MemberOf[n.Index])-1 == i || n.IsSource() {
				continue
			}
			return "channel crosses the boundary at non-source node " + n.Name
		}
	}
	return ""
}

// collectBoundary fills inst.Boundary: non-rail, non-interior nodes the
// instance's devices reference, ascending and deduplicated.
func (p *Plan) collectBoundary(nw *netlist.Network, i int) {
	inst := &p.Instances[i]
	seen := map[int32]bool{}
	for ti := inst.TransLo; ti < inst.TransHi; ti++ {
		t := nw.Trans[ti]
		for _, n := range [3]*netlist.Node{t.Gate, t.A, t.B} {
			if n.IsRail() || int(p.MemberOf[n.Index])-1 == i {
				continue
			}
			seen[int32(n.Index)] = true
		}
	}
	inst.Boundary = make([]int32, 0, len(seen))
	for idx := range seen {
		inst.Boundary = append(inst.Boundary, idx)
	}
	sort.Slice(inst.Boundary, func(a, b int) bool { return inst.Boundary[a] < inst.Boundary[b] })
}

// rankpos returns how many interior nodes of instance i have a smaller
// node index than idx. The event queue's total order and the analyzer's
// tie-break both compare original node indexes, so for two class members
// to replay identically, each shared boundary node must order the same
// way against both interiors — captured by this count (interiors are
// index-sorted, so equal counts mean equal per-pair comparisons).
func (p *Plan) rankpos(i int, idx int32) int32 {
	in := p.Instances[i].Interior
	return int32(sort.Search(len(in), func(k int) bool { return in[k] >= idx }))
}

// fingerprint hashes everything stamp equivalence depends on: per-device
// type, geometry, flow and resistance override with rank/global terminal
// tags, per-interior-rank node kind, capacitance and precharge, and the
// boundary's identity plus its index ordering against the interior.
func (p *Plan) fingerprint(nw *netlist.Network, i int) uint64 {
	inst := &p.Instances[i]
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for k := 0; k < 8; k++ {
			buf[k] = byte(v >> (8 * k))
		}
		h.Write(buf[:])
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }
	w64(uint64(inst.TransHi - inst.TransLo))
	w64(uint64(len(inst.Interior)))
	for ti := inst.TransLo; ti < inst.TransHi; ti++ {
		t := nw.Trans[ti]
		w64(uint64(t.Type))
		wf(t.W)
		wf(t.L)
		w64(uint64(t.Flow))
		wf(t.ROverride)
		for _, n := range [3]*netlist.Node{t.Gate, t.A, t.B} {
			tag, v := p.tag(i, n)
			w64(uint64(tag)<<32 | uint64(uint32(v)))
		}
	}
	for _, idx := range inst.Interior {
		n := nw.Nodes[idx]
		w64(uint64(n.Kind))
		wf(n.Cap)
		if n.Precharged {
			w64(1)
		} else {
			w64(0)
		}
	}
	for _, b := range inst.Boundary {
		w64(uint64(b))
		w64(uint64(p.rankpos(i, b)))
	}
	return h.Sum64()
}

// verify checks structural equality of instances a and b exactly — the
// same walk the fingerprint hashes, compared field by field.
func (p *Plan) verify(nw *netlist.Network, a, b int) bool {
	ia, ib := &p.Instances[a], &p.Instances[b]
	if ia.TransHi-ia.TransLo != ib.TransHi-ib.TransLo ||
		len(ia.Interior) != len(ib.Interior) || len(ia.Boundary) != len(ib.Boundary) {
		return false
	}
	for k := 0; k < ia.TransHi-ia.TransLo; k++ {
		ta, tb := nw.Trans[ia.TransLo+k], nw.Trans[ib.TransLo+k]
		if ta.Type != tb.Type || ta.W != tb.W || ta.L != tb.L ||
			ta.Flow != tb.Flow || ta.ROverride != tb.ROverride {
			return false
		}
		for ti := 0; ti < 3; ti++ {
			na := [3]*netlist.Node{ta.Gate, ta.A, ta.B}[ti]
			nb := [3]*netlist.Node{tb.Gate, tb.A, tb.B}[ti]
			tagA, vA := p.tag(a, na)
			tagB, vB := p.tag(b, nb)
			if tagA != tagB || vA != vB {
				return false
			}
		}
	}
	for r := range ia.Interior {
		na, nb := nw.Nodes[ia.Interior[r]], nw.Nodes[ib.Interior[r]]
		if na.Kind != nb.Kind || na.Cap != nb.Cap || na.Precharged != nb.Precharged {
			return false
		}
	}
	for k := range ia.Boundary {
		if ia.Boundary[k] != ib.Boundary[k] ||
			p.rankpos(a, ia.Boundary[k]) != p.rankpos(b, ib.Boundary[k]) {
			return false
		}
	}
	return true
}

// Stats summarizes a plan for provenance reporting: total selected
// instances and how many sit in a class of two or more (stampable).
func (p *Plan) Stats() (instances, stampable int) {
	instances = len(p.Instances)
	for _, c := range p.Classes {
		if len(c) >= 2 {
			stampable += len(c)
		}
	}
	return
}
