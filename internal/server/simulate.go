// POST /v1/sessions/{id}/simulate: functional regression over the resident
// netlist through the vectorized strength-lattice engine. Every request
// vector settles independently from power-on state, 64 vectors per
// bit-plane slab, so a resident session doubles as a truth-table service:
// load once, stream vectors, re-verify after every edit (the compiled
// engine is rebuilt automatically when edits advance the network
// generation).
package server

import (
	"net/http"
	"time"

	"repro/internal/netlist"
	"repro/internal/switchsim"
)

// simulateRequest is the POST .../simulate body. Vectors is required; each
// entry is one symbol per input column ('0', '1', 'X'/'x' = released;
// spaces and tabs between symbols are ignored).
type simulateRequest struct {
	// Inputs maps vector columns to these input nodes, in order. Default:
	// every input in netlist order. Unmapped inputs stay released (X).
	Inputs []string `json:"inputs,omitempty"`
	// Watch selects the nodes reported per vector. Default: the netlist's
	// marked outputs.
	Watch   []string `json:"watch,omitempty"`
	Vectors []string `json:"vectors"`
}

// simulateResult is one settled vector: the canonical echo of its input
// symbols, the watched node values in Watch order, and whether the settle
// hit the oscillation cutoff (oscillating nodes report X).
type simulateResult struct {
	Vector     string   `json:"vector"`
	Values     []string `json:"values"`
	Oscillated bool     `json:"oscillated,omitempty"`
}

// simulateResponse is the simulate reply.
type simulateResponse struct {
	Session string `json:"session"`
	// Compiled reports whether this request built the batch engine (first
	// simulate on the session, or the first after an edit barrier).
	Compiled   bool             `json:"compiled"`
	Inputs     []string         `json:"inputs"`
	Watch      []string         `json:"watch"`
	Vectors    int              `json:"vectors"`
	Sweeps     int              `json:"sweeps"`
	Results    []simulateResult `json:"results"`
	DurationNs int64            `json:"duration_ns"`
}

func (sv *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s := sv.lookup(r.PathValue("id"))
	if s == nil {
		writeErr(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	var req simulateRequest
	if err := decodeOptional(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Vectors) == 0 {
		writeErr(w, http.StatusBadRequest, "missing vectors")
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	b, compiled := s.batchEngine()
	inputs := b.Inputs()
	if len(inputs) == 0 {
		writeErr(w, http.StatusUnprocessableEntity, "netlist has no input nodes")
		return
	}

	// Resolve the vector columns (request order) onto engine input columns.
	colOf := make(map[string]int, len(inputs))
	for i, n := range inputs {
		colOf[n.Name] = i
	}
	cols := make([]int, 0, len(inputs))
	colNames := req.Inputs
	if len(req.Inputs) == 0 {
		colNames = b.InputNames()
		for i := range inputs {
			cols = append(cols, i)
		}
	} else {
		for _, name := range req.Inputs {
			c, ok := colOf[name]
			if !ok {
				writeErr(w, http.StatusBadRequest, "%q is not an input node", name)
				return
			}
			cols = append(cols, c)
		}
	}

	watch := s.nw.Outputs()
	if len(req.Watch) > 0 {
		watch = watch[:0:0]
		for _, name := range req.Watch {
			n := s.nw.Lookup(name)
			if n == nil {
				writeErr(w, http.StatusBadRequest, "no node named %q", name)
				return
			}
			watch = append(watch, n)
		}
	}
	if len(watch) == 0 {
		writeErr(w, http.StatusBadRequest,
			"no nodes to watch: netlist marks no outputs, set \"watch\"")
		return
	}

	// Parse the vectors into full-width rows; unmapped inputs stay released.
	vecs := make([]switchsim.Value, 0, len(req.Vectors)*len(inputs))
	echo := make([]string, len(req.Vectors))
	for vi, row := range req.Vectors {
		vals, err := switchsim.ParseVector(row, len(cols))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "vector %d: %v", vi, err)
			return
		}
		full := make([]switchsim.Value, len(inputs))
		for i := range full {
			full[i] = switchsim.VX
		}
		sym := make([]byte, 0, len(vals))
		for i, v := range vals {
			full[cols[i]] = v
			sym = append(sym, v.String()[0])
		}
		vecs = append(vecs, full...)
		echo[vi] = string(sym)
	}

	res, err := b.Run(vecs, watch)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	dur := time.Since(start)

	sv.m.simRequests.Add(1)
	sv.m.simVectors.Add(int64(res.Vectors))
	sv.m.simSweeps.Add(int64(res.Sweeps))
	if compiled {
		sv.m.simCompiles.Add(1)
	}
	sv.m.simulateLatency.observe(dur)

	resp := simulateResponse{
		Session: s.id, Compiled: compiled,
		Inputs: colNames, Watch: nodeNames(watch),
		Vectors: res.Vectors, Sweeps: res.Sweeps,
		Results:    make([]simulateResult, res.Vectors),
		DurationNs: dur.Nanoseconds(),
	}
	for v := 0; v < res.Vectors; v++ {
		vals := make([]string, len(watch))
		for i := range watch {
			vals[i] = res.Out[v][i].String()
		}
		if res.Osc[v] {
			sv.m.simOscillations.Add(1)
		}
		resp.Results[v] = simulateResult{
			Vector: echo[v], Values: vals, Oscillated: res.Osc[v],
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func nodeNames(nodes []*netlist.Node) []string {
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.Name
	}
	return names
}
