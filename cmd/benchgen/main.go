// Command benchgen emits generated benchmark circuits as Berkeley .sim
// files, the interchange format the timing verifier (cmd/crystal) reads —
// the stand-in for layout extraction in the paper's toolchain.
//
// Usage:
//
//	benchgen -list
//	benchgen -circuit alu:8 [-tech nmos-4u] [-o alu8.sim] [-snapshot alu8.simx]
//
// -snapshot additionally writes a binary .simx snapshot keyed by the
// hash of the emitted .sim text, so a following
// `crystal -sim alu8.sim -snapshot alu8.simx` starts warm without ever
// parsing (see docs/PERFORMANCE.md, "Ingest").
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// config carries the parsed command line; run is pure over it.
type config struct {
	circuit  string
	techName string
	snapshot string
	list     bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.circuit, "circuit", "", "circuit spec, e.g. alu:8 or passchain:6")
	flag.StringVar(&cfg.techName, "tech", "nmos-4u", "technology: nmos-4u or cmos-3u")
	out := flag.String("o", "", "output file (default stdout)")
	flag.StringVar(&cfg.snapshot, "snapshot", "", "also write a binary .simx snapshot of the circuit to this file")
	flag.BoolVar(&cfg.list, "list", false, "list available circuits")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := run(cfg, w, os.Stderr); err != nil {
		fatal(err)
	}
}

// run emits the listing or the generated netlist to w and the summary
// line to diag; split out from main for testing.
func run(cfg config, w, diag io.Writer) error {
	if cfg.list {
		fmt.Fprintln(w, "available circuits:")
		for _, s := range gen.List() {
			fmt.Fprintf(w, "  %-12s %-16s %s\n", s.Name, s.Args, s.Doc)
		}
		return nil
	}
	if cfg.circuit == "" {
		return fmt.Errorf("missing -circuit (or use -list)")
	}
	var p *tech.Params
	switch cfg.techName {
	case "nmos-4u", "nmos":
		p = tech.NMOS4()
	case "cmos-3u", "cmos":
		p = tech.CMOS3()
	default:
		return fmt.Errorf("unknown technology %q", cfg.techName)
	}
	nw, err := gen.Build(cfg.circuit, p)
	if err != nil {
		return err
	}
	if err := nw.Check(); err != nil {
		return err
	}
	// Emit through a buffer: the snapshot's freshness hash must cover the
	// exact .sim bytes so a later `crystal -sim f.sim -snapshot f.simx`
	// validates it against the file on disk.
	var buf bytes.Buffer
	if err := netlist.WriteSim(&buf, nw); err != nil {
		return err
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	if cfg.snapshot != "" {
		// Snapshot the network as a reader of the emitted text would see
		// it — node indexes follow textual first-appearance order, not the
		// generator's construction order — so a warm load is byte-identical
		// to a cold parse of the .sim file.
		reparsed, err := netlist.ReadSimParallel(nw.Name, p, bytes.NewReader(buf.Bytes()), 0)
		if err != nil {
			return fmt.Errorf("reparsing emitted circuit: %w", err)
		}
		if err := netlist.WriteSnapshotFile(cfg.snapshot, reparsed, sha256.Sum256(buf.Bytes())); err != nil {
			return err
		}
	}
	st := nw.Stats()
	fmt.Fprintf(diag, "benchgen: %s — %d transistors, %d nodes, %d inputs, %d outputs\n",
		nw.Name, st.Trans, st.Nodes, st.Inputs, st.Outputs)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
