package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// update rewrites the golden files instead of diffing against them:
//
//	go test ./cmd/characterize -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden output files")

// TestGoldenTables pins the characterization output in every format —
// the table humans read, the CSV plots consume and the Go source the
// build embeds. The analog-reference sweep is deterministic, so every
// Reff and Rmult value is pinned exactly.
func TestGoldenTables(t *testing.T) {
	cases := []struct {
		name string
		cfg  config
	}{
		{"nmos-table", config{techName: "nmos-4u", format: "table", ratioList: "0,1,4", load: 100e-15}},
		{"nmos-csv", config{techName: "nmos-4u", format: "csv", ratioList: "0,1,4", load: 100e-15}},
		{"cmos-go", config{techName: "cmos-3u", format: "go", ratioList: "0,2", load: 100e-15}},
		{"nmos-compare", config{techName: "nmos-4u", format: "table", ratioList: "0,4", load: 100e-15, compare: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(tc.cfg, &out); err != nil {
				t.Fatal(err)
			}
			got := out.String()
			golden := "testdata/golden/" + tc.name + ".txt"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s:\n--- want ---\n%s\n--- got ---\n%s",
					golden, want, got)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	for _, cfg := range []config{
		{techName: "ge-5", format: "table"},
		{techName: "nmos-4u", format: "sketch"},
		{techName: "nmos-4u", format: "table", ratioList: "0,zebra"},
	} {
		if err := run(cfg, &strings.Builder{}); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}
