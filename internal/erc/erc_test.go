package erc

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
)

func findRule(fs []Finding, rule string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func TestCleanCircuitsAreClean(t *testing.T) {
	p := tech.NMOS4()
	for _, spec := range []string{"invchain:4", "ripple:2", "decoder:2"} {
		nw, err := gen.Build(spec, p)
		if err != nil {
			t.Fatal(err)
		}
		fs := Check(nw, Options{})
		for _, f := range fs {
			if f.Severity == Error {
				t.Errorf("%s: unexpected error finding: %s", spec, f)
			}
		}
	}
}

func TestStaticShortDetected(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("short", p)
	mid := nw.Node("mid")
	// Two always-on depletion devices in series from Vdd to GND.
	nw.AddTrans(tech.NDep, mid, nw.Vdd(), mid, 0, 0)
	nw.AddTrans(tech.NDep, mid, mid, nw.GND(), 0, 0)
	fs := Check(nw, Options{})
	if len(findRule(fs, "static-short")) == 0 {
		t.Errorf("static short not detected: %v", fs)
	}
}

func TestStaticShortThroughWire(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("wshort", p)
	mid := nw.Node("mid")
	nw.AddResistor(nw.Vdd(), mid, 1e3)
	nw.AddResistor(mid, nw.GND(), 1e3)
	fs := Check(nw, Options{})
	if len(findRule(fs, "static-short")) == 0 {
		t.Errorf("resistive supply short not detected: %v", fs)
	}
}

func TestFloatingGateDetected(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("float", p)
	ghost := nw.Node("ghost") // gates a device, driven by nothing
	out := nw.Node("out")
	nw.AddTrans(tech.NEnh, ghost, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 0, 4*p.MinL)
	fs := Check(nw, Options{})
	got := findRule(fs, "floating")
	if len(got) != 1 || got[0].Node.Name != "ghost" {
		t.Errorf("floating gate not pinned to ghost: %v", fs)
	}
}

func TestRatioViolationDetected(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("ratio", p)
	in, out := nw.Node("in"), nw.Node("out")
	nw.MarkInput(in)
	// Inverter whose pullup is drawn four squares wide: its resistance
	// matches the pulldown's and the output low level is ruined.
	nw.AddTrans(tech.NEnh, in, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 4*p.MinW, p.MinL)
	fs := Check(nw, Options{})
	if len(findRule(fs, "ratio")) == 0 {
		t.Errorf("ratio violation not detected: %v", fs)
	}

	// A proper 4:1 inverter is clean.
	nw2 := netlist.New("ok", p)
	in2, out2 := nw2.Node("in"), nw2.Node("out")
	nw2.MarkInput(in2)
	nw2.AddTrans(tech.NEnh, in2, out2, nw2.GND(), 0, 0)
	nw2.AddTrans(tech.NDep, out2, nw2.Vdd(), out2, 0, 4*p.MinL)
	if got := findRule(Check(nw2, Options{}), "ratio"); len(got) != 0 {
		t.Errorf("4:1 inverter flagged: %v", got)
	}
}

func TestRatioSkippedForCMOS(t *testing.T) {
	p := tech.CMOS3()
	nw, err := gen.Build("invchain:3", p)
	if err != nil {
		t.Fatal(err)
	}
	if got := findRule(Check(nw, Options{}), "ratio"); len(got) != 0 {
		t.Errorf("CMOS should not be ratio-checked: %v", got)
	}
}

func TestThresholdDropDetected(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("drop", p)
	in, ctl := nw.Node("in"), nw.Node("ctl")
	nw.MarkInput(in)
	nw.MarkInput(ctl)
	// in → pass → mid: mid is degraded high.
	mid := nw.Node("mid")
	nw.AddTrans(tech.NEnh, ctl, in, mid, 0, 0)
	// mid gates a second pass device between two signal nodes.
	x, y := nw.Node("x"), nw.Node("y")
	nw.MarkInput(x)
	nw.AddTrans(tech.NEnh, mid, x, y, 0, 0)
	fs := Check(nw, Options{})
	got := findRule(fs, "threshold-drop")
	if len(got) != 1 || got[0].Node.Name != "mid" {
		t.Errorf("threshold drop not pinned to mid: %v", fs)
	}
}

func TestThresholdDropNotFlaggedForRestored(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("restored", p)
	in, ctl := nw.Node("in"), nw.Node("ctl")
	nw.MarkInput(in)
	nw.MarkInput(ctl)
	mid := nw.Node("mid")
	nw.AddTrans(tech.NEnh, ctl, in, mid, 0, 0)
	// Restore mid with a depletion pullup: no longer degraded.
	nw.AddTrans(tech.NDep, mid, nw.Vdd(), mid, 0, 4*p.MinL)
	x, y := nw.Node("x"), nw.Node("y")
	nw.MarkInput(x)
	nw.AddTrans(tech.NEnh, mid, x, y, 0, 0)
	if got := findRule(Check(nw, Options{}), "threshold-drop"); len(got) != 0 {
		t.Errorf("restored node flagged: %v", got)
	}
}

func TestChargeSharingDetected(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("share", p)
	g := nw.Node("g")
	nw.MarkInput(g)
	dyn := nw.Node("dyn")
	dyn.Precharged = true
	// Small dynamic node connected through a pass device to a big
	// parasitic node.
	big := nw.Node("big")
	nw.AddCap(big, 1e-12)
	nw.AddTrans(tech.NEnh, g, dyn, big, 0, 0)
	fs := Check(nw, Options{})
	got := findRule(fs, "charge-sharing")
	if len(got) != 1 || got[0].Node.Name != "dyn" {
		t.Errorf("charge sharing not pinned to dyn: %v", fs)
	}

	// A heavily loaded bus sharing with one small node is fine.
	nw2 := netlist.New("ok", p)
	g2 := nw2.Node("g")
	nw2.MarkInput(g2)
	bus := nw2.Node("bus")
	bus.Precharged = true
	nw2.AddCap(bus, 1e-12)
	small := nw2.Node("small")
	nw2.AddTrans(tech.NEnh, g2, bus, small, 0, 0)
	if got := findRule(Check(nw2, Options{}), "charge-sharing"); len(got) != 0 {
		t.Errorf("robust bus flagged: %v", got)
	}
}

func TestFormatAndOrdering(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("multi", p)
	// One error (floating) + one warning (ratio).
	ghost, out, in := nw.Node("ghost"), nw.Node("out"), nw.Node("in")
	nw.MarkInput(in)
	nw.AddTrans(tech.NEnh, ghost, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NEnh, in, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 4*p.MinW, p.MinL)
	fs := Check(nw, Options{})
	if len(fs) < 2 {
		t.Fatalf("want ≥2 findings, got %v", fs)
	}
	if fs[0].Severity != Error {
		t.Error("errors should sort first")
	}
	rep := Format(fs)
	if !strings.Contains(rep, "finding(s)") || !strings.Contains(rep, "floating") {
		t.Errorf("format:\n%s", rep)
	}
	if Format(nil) != "electrical rules: clean\n" {
		t.Error("clean format wrong")
	}
}

func TestBusGeneratorChargeSharing(t *testing.T) {
	// The generated precharged bus should be clean (its bus cap is big)
	// while a deliberately starved variant trips the rule.
	p := tech.NMOS4()
	nw, err := gen.PrechargedBus(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := findRule(Check(nw, Options{}), "charge-sharing"); len(got) != 0 {
		t.Errorf("generated bus flagged: %v", got)
	}
}
