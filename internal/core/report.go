// Human-readable reporting of analysis results, in the spirit of
// Crystal's critical-path listings.
package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// timeUnit renders seconds as nanoseconds with sensible precision.
func timeUnit(t float64) string {
	return fmt.Sprintf("%.3fns", t*1e9)
}

// WriteReport prints the k worst critical paths, each as an indented
// chain from seeding input to endpoint with per-hop stage detail.
func (a *Analyzer) WriteReport(w io.Writer, k int) error {
	paths := a.CriticalPaths(k)
	fmt.Fprintf(w, "timing report: %s, model %s, %d stage evaluations\n",
		a.Net.Name, a.Model.Name(), a.StagesEvaluated())
	if a.Truncated {
		fmt.Fprintf(w, "warning: stage enumeration truncated; times are lower bounds\n")
	}
	if len(a.Unbounded) > 0 {
		fmt.Fprintf(w, "warning: %d node(s) hit the feedback guard:", len(a.Unbounded))
		for i, n := range a.Unbounded {
			if i == 4 {
				fmt.Fprintf(w, " …")
				break
			}
			fmt.Fprintf(w, " %s", n.Name)
		}
		fmt.Fprintln(w)
	}
	if len(paths) == 0 {
		fmt.Fprintln(w, "no arrivals (did any seeded input reach logic?)")
		return nil
	}
	for i, p := range paths {
		end := p.End()
		fmt.Fprintf(w, "\npath %d: %s %s at %s (slope %s), %d hops\n",
			i+1, end.Node.Name, end.Tr, timeUnit(end.Event.T), timeUnit(end.Event.Slope), len(p.Hops))
		for _, h := range p.Hops {
			if h.Event.Via == nil {
				fmt.Fprintf(w, "  %-20s %-4s %-10s (input)\n", h.Node.Name, h.Tr, timeUnit(h.Event.T))
				continue
			}
			fmt.Fprintf(w, "  %-20s %-4s %-10s via %s\n",
				h.Node.Name, h.Tr, timeUnit(h.Event.T), h.Event.Via)
		}
	}
	return nil
}

// FormatReanalyzeStatus renders one Reanalyze outcome as the status line
// the designer loop prints at each `run` barrier — honest about full
// fallbacks (and why) versus incremental updates. prog prefixes the line
// ("crystal" for the CLI, "crystald" for the service) so the two surfaces
// stay byte-comparable apart from their name.
func FormatReanalyzeStatus(prog string, stats *ReanalyzeStats) string {
	if stats.Full {
		return fmt.Sprintf("%s: re-analysis (full: %s; epoch %d, %d stages evaluated)",
			prog, stats.Reason, stats.Epoch, stats.StagesEvaluated)
	}
	return fmt.Sprintf("%s: re-analysis (incremental: %d/%d nodes dirty, %.0f%%; epoch %d, %d stages evaluated)",
		prog, stats.DirtyNodes, stats.TotalNodes, 100*stats.DirtyFrac,
		stats.Epoch, stats.StagesEvaluated)
}

// MaxArrival returns the latest valid event over the whole network — the
// single number usually quoted as "the critical path delay".
func (a *Analyzer) MaxArrival() (Event, *Path) {
	paths := a.CriticalPaths(1)
	if len(paths) == 0 {
		return Event{}, nil
	}
	return paths[0].End().Event, paths[0]
}

// WorstArrival returns the latest valid event over every non-rail,
// non-input node — not just the watched outputs — with its traced path.
// Clocked analyses use it because a phase's activity may be entirely
// internal (latch inputs waiting for the next phase).
func (a *Analyzer) WorstArrival() (Event, *Path) {
	var worst Event
	var node *netlist.Node
	var wtr tech.Transition
	for _, n := range a.Net.Nodes {
		if n.IsRail() || n.Kind == netlist.KindInput {
			continue
		}
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			if ev := a.Arrival(n, tr); ev.Valid && (!worst.Valid || ev.T > worst.T) {
				worst, node, wtr = ev, n, tr
			}
		}
	}
	if node == nil {
		return Event{}, nil
	}
	return worst, a.Trace(node, wtr)
}

// Slack is one endpoint's margin against a deadline (a clock period or
// phase boundary): positive means the signal settles in time.
type Slack struct {
	Node  *netlist.Node
	Tr    tech.Transition
	Event Event
	Slack float64
}

// Slacks returns the margin of every watched output (every non-rail,
// non-input node if none are marked) against the deadline, most negative
// first. This is how a Crystal user checked a design against its clock.
func (a *Analyzer) Slacks(deadline float64) []Slack {
	var ends []*netlist.Node
	if outs := a.Net.Outputs(); len(outs) > 0 {
		ends = outs
	} else {
		for _, n := range a.Net.Nodes {
			if !n.IsRail() && n.Kind != netlist.KindInput {
				ends = append(ends, n)
			}
		}
	}
	var out []Slack
	for _, n := range ends {
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			ev := a.Arrival(n, tr)
			if !ev.Valid {
				continue
			}
			out = append(out, Slack{Node: n, Tr: tr, Event: ev, Slack: deadline - ev.T})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slack != out[j].Slack {
			return out[i].Slack < out[j].Slack
		}
		if out[i].Node.Name != out[j].Node.Name {
			return out[i].Node.Name < out[j].Node.Name
		}
		return out[i].Tr < out[j].Tr
	})
	return out
}

// WriteSlackReport prints the k worst slacks against the deadline and
// returns the number of violations (negative slacks).
func (a *Analyzer) WriteSlackReport(w io.Writer, deadline float64, k int) int {
	slacks := a.Slacks(deadline)
	violations := 0
	for _, s := range slacks {
		if s.Slack < 0 {
			violations++
		}
	}
	fmt.Fprintf(w, "slack report: deadline %s, %d endpoint(s), %d violation(s)\n",
		timeUnit(deadline), len(slacks), violations)
	if k > 0 && len(slacks) > k {
		slacks = slacks[:k]
	}
	for _, s := range slacks {
		mark := " "
		if s.Slack < 0 {
			mark = "*"
		}
		fmt.Fprintf(w, "  %s %-20s %-4s arrives %-10s slack %s\n",
			mark, s.Node.Name, s.Tr, timeUnit(s.Event.T), timeUnit(s.Slack))
	}
	return violations
}
