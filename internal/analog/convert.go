// Conversion from switch-level netlists to analog circuits, so that any
// benchmark circuit the generators produce can be cross-checked against
// the circuit-level reference — the heart of the model-accuracy
// experiments (E2–E5).
package analog

import (
	"fmt"

	"repro/internal/netlist"
)

// InputDrive describes the analog waveform applied to one chip input.
type InputDrive struct {
	Node *netlist.Node
	W    Waveform
}

// FromNetlist builds an analog circuit from a switch-level network:
//
//   - Vdd becomes a DC source at the technology supply voltage; GND is
//     the analog ground.
//   - Every transistor becomes a level-1 MOSFET with its netlist geometry.
//   - Every node's total switch-level capacitance (explicit + gate +
//     diffusion, exactly the value the delay models see) becomes a
//     grounded capacitor, initialized from init (volts per node index;
//     nil initializes everything to 0 except Vdd).
//   - Each drive connects a waveform source to an input node.
//
// It returns the circuit and a mapping from netlist node index to analog
// node index.
func FromNetlist(nw *netlist.Network, drives []InputDrive, init map[int]float64) (*Circuit, []int, error) {
	c := NewCircuit()
	nmap := make([]int, len(nw.Nodes))
	for _, n := range nw.Nodes {
		if n.Kind == netlist.KindGnd {
			nmap[n.Index] = 0
			continue
		}
		nmap[n.Index] = c.Node(n.Name)
	}
	vdd := nmap[nw.Vdd().Index]
	c.AddVSource(vdd, 0, DC(nw.Tech.Vdd))

	driven := map[int]bool{nw.Vdd().Index: true, nw.GND().Index: true}
	for _, d := range drives {
		if d.Node == nil {
			return nil, nil, fmt.Errorf("analog: nil drive node")
		}
		if driven[d.Node.Index] {
			return nil, nil, fmt.Errorf("analog: node %s driven twice", d.Node.Name)
		}
		driven[d.Node.Index] = true
		c.AddVSource(nmap[d.Node.Index], 0, d.W)
	}

	for _, n := range nw.Nodes {
		if n.IsRail() || driven[n.Index] {
			continue
		}
		v0 := 0.0
		if init != nil {
			v0 = init[n.Index]
		}
		if n.Precharged && init == nil {
			v0 = nw.Tech.Vdd
		}
		cap := nw.NodeCap(n)
		if cap > 0 {
			c.AddCapacitor(nmap[n.Index], 0, cap, v0)
		}
	}

	for _, t := range nw.Trans {
		if t.IsWire() {
			c.AddResistor(nmap[t.A.Index], nmap[t.B.Index], t.ROverride)
			continue
		}
		c.AddMOS(t.Type, nmap[t.A.Index], nmap[t.Gate.Index], nmap[t.B.Index], t.W, t.L, nw.Tech)
	}
	return c, nmap, nil
}
