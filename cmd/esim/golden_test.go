package main

import (
	"flag"
	"os"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// update rewrites the golden files instead of diffing against them:
//
//	go test ./cmd/esim -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden output files")

const testdataPath = "../../testdata/"

// TestGoldenScripts pins the exact simulator transcript — settle sweep
// counts, watch-list ordering, dump format and oscillation annotations —
// for scripted sessions over the repository netlists.
func TestGoldenScripts(t *testing.T) {
	cases := []struct {
		name   string
		sim    string
		script string
	}{
		{"dlatch-session", "dlatch.sim",
			// Write a 1, latch it, overwrite with 0, read back.
			"h wr d\ns\ncheck q=1 out=1\nl wr\ns\nl d\ns\ncheck q=1 out=1\nh wr\ns\ncheck q=0 out=0\nd\n"},
		{"dlatch-undriven", "dlatch.sim",
			// Release the write line: the latch keeps its value; an
			// undriven data input leaves the output unknown on write.
			"h wr d\ns\nx d\ns\nw q qb\ns\nd\n"},
		{"mux2-cmos", "mux2-cmos.sim",
			"h a\nl b sel\ns\nh sel\ns\nd\n"},
	}
	p := tech.NMOS4()
	cmos := tech.CMOS3()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			params := p
			if strings.Contains(tc.sim, "cmos") {
				params = cmos
			}
			f, err := os.Open(testdataPath + tc.sim)
			if err != nil {
				t.Fatal(err)
			}
			nw, err := netlist.ReadSim(tc.sim, params, f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			if err := run(nw, strings.NewReader(tc.script), &out); err != nil {
				t.Fatalf("%v\noutput:\n%s", err, out.String())
			}
			got := out.String()
			golden := "testdata/golden/" + tc.name + ".txt"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s:\n--- want ---\n%s\n--- got ---\n%s",
					golden, want, got)
			}
		})
	}
}
