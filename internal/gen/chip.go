// A chip-scale composition: the reproduction stand-in for the real
// processor chips (RISC-class datapaths) the Crystal work was evaluated
// on. Tens of thousands of transistors assembled from the block
// generators with netlist.Import.
package gen

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// Chip builds a processor-datapath-scale design:
//
//   - a w-bit datapath (decoder + 8×w register file + ALU + barrel shifter)
//   - a (w/2)×(w/2) array multiplier fed from the datapath operand bus
//   - a w-bit carry-select adder as an address unit
//   - a control PLA driving the function selects
//
// Widths of 16–32 give 15k–50k transistors. Ports follow the component
// conventions with prefixes: datapath ports are top-level ("b0", "sh0",
// "addr0", …); the PLA inputs are "op0".."op7".
func Chip(p *tech.Params, w int) (*netlist.Network, error) {
	if w < 4 || w%2 != 0 || w > 64 {
		return nil, fmt.Errorf("gen: chip width must be even, in 4..64, got %d", w)
	}
	top := netlist.New(fmt.Sprintf("chip-%d", w), p)

	dp, err := Datapath(p, w)
	if err != nil {
		return nil, err
	}
	// Datapath ports become top-level ports directly (connect to same
	// names).
	conn := map[string]string{}
	for _, n := range dp.Nodes {
		if n.Kind == netlist.KindInput || n.Kind == netlist.KindOutput {
			conn[n.Name] = n.Name
		}
	}
	// Remember the datapath port directions before the merge.
	kinds := map[string]netlist.NodeKind{}
	for _, n := range dp.Nodes {
		if n.Kind == netlist.KindInput || n.Kind == netlist.KindOutput {
			kinds[n.Name] = n.Kind
		}
	}
	if err := top.Import(dp, "dp_", conn); err != nil {
		return nil, err
	}
	for name, k := range kinds {
		top.Node(name).Kind = k
	}

	// Multiplier: operands tap the datapath's b-bus (low half) and the
	// shifter outputs (low half).
	mw := w / 2
	mul, err := ArrayMultiplier(p, mw)
	if err != nil {
		return nil, err
	}
	conn = map[string]string{}
	for i := 0; i < mw; i++ {
		conn[fmt.Sprintf("a%d", i)] = fmt.Sprintf("b%d", i)
		conn[fmt.Sprintf("b%d", i)] = fmt.Sprintf("out%d", i)
	}
	for i := 0; i < 2*mw; i++ {
		conn[fmt.Sprintf("p%d", i)] = fmt.Sprintf("prod%d", i)
	}
	if err := top.Import(mul, "mul_", conn); err != nil {
		return nil, err
	}
	for i := 0; i < 2*mw; i++ {
		top.Node(fmt.Sprintf("prod%d", i)).Kind = netlist.KindOutput
	}

	// Address unit: carry-select adder over the shifter output and the
	// operand bus.
	au, err := CarrySelectAdder(p, w, 4)
	if err != nil {
		return nil, err
	}
	conn = map[string]string{"cin": "au_cin", "cout": "au_cout"}
	for i := 0; i < w; i++ {
		conn[fmt.Sprintf("a%d", i)] = fmt.Sprintf("out%d", i)
		conn[fmt.Sprintf("b%d", i)] = fmt.Sprintf("b%d", i)
		conn[fmt.Sprintf("s%d", i)] = fmt.Sprintf("ea%d", i)
	}
	if err := top.Import(au, "au_", conn); err != nil {
		return nil, err
	}
	top.Node("au_cin").Kind = netlist.KindInput
	for i := 0; i < w; i++ {
		top.Node(fmt.Sprintf("ea%d", i)).Kind = netlist.KindOutput
	}
	top.Node("au_cout").Kind = netlist.KindOutput

	// Control PLA: opcode inputs drive the four function selects (and a
	// few spare control terms).
	pla, err := PLA(p, 8, 16, 8, 0xC0FFEE)
	if err != nil {
		return nil, err
	}
	conn = map[string]string{}
	for i := 0; i < 8; i++ {
		conn[fmt.Sprintf("in%d", i)] = fmt.Sprintf("op%d", i)
	}
	// The first four PLA outputs drive the ALU function selects through
	// the datapath's control inputs.
	for i, f := range []string{"fand", "for", "fxor", "fadd"} {
		conn[fmt.Sprintf("o%d", i)] = f
	}
	for i := 4; i < 8; i++ {
		conn[fmt.Sprintf("o%d", i)] = fmt.Sprintf("ctl%d", i)
	}
	if err := top.Import(pla, "pla_", conn); err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		top.Node(fmt.Sprintf("op%d", i)).Kind = netlist.KindInput
	}
	// The selects are now PLA-driven internal nets, not chip inputs.
	for _, f := range []string{"fand", "for", "fxor", "fadd"} {
		top.Node(f).Kind = netlist.KindNormal
	}
	for i := 4; i < 8; i++ {
		top.Node(fmt.Sprintf("ctl%d", i)).Kind = netlist.KindOutput
	}
	return top, nil
}

// ChipGrid tiles the chip composition: tiles copies of Chip(w) sharing
// one opcode bus, each tile's data ports prefixed "t<i>_". One tile is
// exactly Chip(w); at w=32 each tile adds ~18k transistors and ~11k
// nodes, so chip:32,10 clears 100k nodes (~182k transistors) — the
// E6-XL scale point BENCH_7 ingests. The grid is deliberately a replication, not a new
// microarchitecture: it scales node and transistor counts (what ingest
// and drain costs track) while every tile keeps the analyzed chip's
// timing structure.
func ChipGrid(p *tech.Params, w, tiles int) (*netlist.Network, error) {
	if tiles < 1 || tiles > 64 {
		return nil, fmt.Errorf("gen: chip tiles must be in 1..64, got %d", tiles)
	}
	if tiles == 1 {
		return Chip(p, w)
	}
	tile, err := Chip(p, w)
	if err != nil {
		return nil, err
	}
	top := netlist.New(fmt.Sprintf("chip-%dx%d", w, tiles), p)
	conn := map[string]string{}
	for i := 0; i < 8; i++ {
		conn[fmt.Sprintf("op%d", i)] = fmt.Sprintf("op%d", i)
	}
	for t := 0; t < tiles; t++ {
		if err := top.Import(tile, fmt.Sprintf("t%d_", t), conn); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 8; i++ {
		top.Node(fmt.Sprintf("op%d", i)).Kind = netlist.KindInput
	}
	return top, nil
}

// ChipGridDirectives is ChipDirectives for a grid: the per-tile fixed
// nodes and loop-breaks under their tile prefixes.
func ChipGridDirectives(w, tiles int) (fixed map[string]string, loopBreak []string) {
	if tiles == 1 {
		return ChipDirectives(w)
	}
	f, lb := ChipDirectives(w)
	fixed = make(map[string]string, tiles*len(f))
	for t := 0; t < tiles; t++ {
		prefix := fmt.Sprintf("t%d_", t)
		for name, v := range f {
			fixed[prefix+name] = v
		}
		for _, n := range lb {
			loopBreak = append(loopBreak, prefix+n)
		}
	}
	return fixed, loopBreak
}

// ChipDirectives returns the analysis directives a chip needs (the same
// role as a Crystal command file): fixed upper address bits and
// loop-breaks on the register cells.
func ChipDirectives(w int) (fixed map[string]string, loopBreak []string) {
	fixed = map[string]string{"addr1": "0", "addr2": "0"}
	for wl := 0; wl < 8; wl++ {
		for b := 0; b < w; b++ {
			loopBreak = append(loopBreak, fmt.Sprintf("dp_rf_qb_%d_%d", wl, b))
		}
	}
	return fixed, loopBreak
}
