package netlist

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tech"
)

// randomNetwork builds a pseudo-random but structurally valid network.
func randomNetwork(seed uint64, p *tech.Params) *Network {
	s := (seed+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9 | 1
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	nw := New(fmt.Sprintf("rand-%d", seed), p)
	nNodes := 3 + int(next()%10)
	nodes := []*Node{nw.Vdd(), nw.GND()}
	for i := 0; i < nNodes; i++ {
		n := nw.Node(fmt.Sprintf("n%d", i))
		nodes = append(nodes, n)
		switch next() % 5 {
		case 0:
			nw.MarkInput(n)
		case 1:
			nw.MarkOutput(n)
		case 2:
			n.Precharged = true
		}
		if next()%2 == 0 {
			nw.AddCap(n, float64(next()%500)*1e-15)
		}
	}
	nTrans := 1 + int(next()%15)
	for i := 0; i < nTrans; i++ {
		g := nodes[2+int(next()%uint64(nNodes))] // gates on signal nodes
		a := nodes[int(next()%uint64(len(nodes)))]
		b := nodes[int(next()%uint64(len(nodes)))]
		// Avoid rail-to-rail shorts, which Check rejects.
		if (a.Kind == KindVdd && b.Kind == KindGnd) || (a.Kind == KindGnd && b.Kind == KindVdd) {
			b = nodes[2]
		}
		d := tech.NEnh
		switch next() % 3 {
		case 1:
			d = tech.NDep
		case 2:
			if p.HasPChannel() {
				d = tech.PEnh
			}
		}
		// Geometry in whole centimicrons so the .sim round trip (which
		// prints integers) is exact.
		w := float64(2+next()%20) * 1e-6
		l := float64(2+next()%8) * 1e-6
		tr := nw.AddTrans(d, g, a, b, w, l)
		tr.Flow = Flow(next() % 4)
	}
	return nw
}

func TestSimRoundTripProperty(t *testing.T) {
	p := tech.CMOS3()
	err := quick.Check(func(seed uint64) bool {
		nw := randomNetwork(seed, p)
		if err := nw.Check(); err != nil {
			t.Logf("seed %d: generator produced invalid network: %v", seed, err)
			return false
		}
		var sb strings.Builder
		if err := WriteSim(&sb, nw); err != nil {
			return false
		}
		back, err := ReadSim("back", p, strings.NewReader(sb.String()))
		if err != nil {
			t.Logf("seed %d: reparse failed: %v\n%s", seed, err, sb.String())
			return false
		}
		if err := back.Check(); err != nil {
			return false
		}
		if len(back.Trans) != len(nw.Trans) {
			return false
		}
		for i, tr := range nw.Trans {
			bt := back.Trans[i]
			if bt.Type != tr.Type || bt.Flow != tr.Flow ||
				bt.Gate.Name != tr.Gate.Name || bt.A.Name != tr.A.Name || bt.B.Name != tr.B.Name {
				return false
			}
			if math.Abs(bt.W-tr.W) > 1e-9 || math.Abs(bt.L-tr.L) > 1e-9 {
				return false
			}
		}
		for _, n := range nw.Nodes {
			bn := back.Lookup(n.Name)
			if bn == nil {
				// A completely disconnected, unmarked node with only
				// the default capacitance produces no .sim record:
				// that information loss is inherent to the format.
				invisible := n.Degree() == 0 && n.Kind == KindNormal &&
					!n.Precharged && n.Cap <= p.CWire+1e-21
				if invisible {
					continue
				}
				return false
			}
			if bn.Kind != n.Kind || bn.Precharged != n.Precharged {
				return false
			}
			if math.Abs(bn.Cap-n.Cap) > 1e-18+1e-6*n.Cap {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestWriteSimStable(t *testing.T) {
	// Writing twice produces identical bytes (determinism for diffs).
	nw := randomNetwork(42, tech.NMOS4())
	var a, b strings.Builder
	if err := WriteSim(&a, nw); err != nil {
		t.Fatal(err)
	}
	if err := WriteSim(&b, nw); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteSim is not deterministic")
	}
}
