#!/bin/sh
# Runs the two headline benchmarks (E2 accuracy suite, E6 chip-scale
# analysis) three times each and writes BENCH_1.json: the fresh runs plus
# the pinned pre-optimization baseline, so the speedup is always visible
# in one file. Then runs the incremental re-analysis benchmark and writes
# BENCH_2.json with the incremental-vs-full speedup, the worker-scaling
# sweep into BENCH_3.json, the ingest (parse/snapshot) throughput record
# into BENCH_4.json, and the locality/fence record (interleaved reorder
# A/B, re-recorded drain scaling medians, fence counters) into
# BENCH_5.json, the batch-sim throughput record into BENCH_6.json, the
# chip-scale mmap ingest + shared-view RSS record into BENCH_7.json, and
# the crystald service saturation curves (cmd/loadgen concurrency ramp
# with response validation) into BENCH_8.json, and the hierarchical-
# macromodel record (interleaved hier A/B on E6-XL plus the chip:64,40
# scale point) into BENCH_9.json. Every file is stamped
# with the machine (nproc, CPU
# model, GOMAXPROCS) so numbers are never compared across incomparable
# hardware. The scaling sweeps refuse to run on a single-CPU box unless
# BENCH_ALLOW_SINGLE_CPU=1, and are then stamped degenerate — see the
# guard below.
#
# Usage: scripts/bench.sh (from the repo root, or via `make bench`).
#   BENCH_ONLY=scaling     skip BENCH_1/BENCH_2 (the `make bench-scaling`
#                          target: sweeps + locality record only).
#   BENCH_ONLY=hier        run only BENCH_9 (the `make bench-hier`
#                          target: hierarchical-macromodel record).
#   BENCH_MAIN_BIN=path    a bench test binary built from the comparison
#                          commit (`go test -c -o bench_main .` there);
#                          when set, BENCH_5 gains an interleaved
#                          same-runner A/B of this tree vs that binary.
set -e
cd "$(dirname "$0")/.."

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# Machine stamp, shared by every emitted JSON. The sweeps run under
# GOMAXPROCS=nproc explicitly; the headline benchmarks inherit the same
# effective value.
procs=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)
sweep_procs=${GOMAXPROCS:-$procs}
cpu_model=$(sed -n 's/^model name[ 	]*: *//p' /proc/cpuinfo 2>/dev/null | head -1)
[ -n "$cpu_model" ] || cpu_model=unknown
MACHINE=$(printf '{"nproc": %s, "gomaxprocs": %s, "cpu_model": "%s"}' \
    "$procs" "$sweep_procs" "$cpu_model")

if [ "${BENCH_ONLY:-all}" = all ]; then

OUT=BENCH_1.json
go test -run '^$' -bench 'BenchmarkE2ModelAccuracy$|BenchmarkE6ChipScale$' \
    -benchtime 1x -count 3 . | tee "$RAW"

# Baseline ns/op: median of three runs measured at the seed commit (pre
# stage-database / allocation work) on this repository's 1-CPU reference
# runner. Update only when re-measuring the seed on comparable hardware.
awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    runs[name] = runs[name] $3 ","
}
END {
    base["BenchmarkE2ModelAccuracy"] = 97119436
    base["BenchmarkE6ChipScale"]     = 3390569021
    printf "{\n  \"machine\": %s,\n  \"benchmarks\": {\n", machine
    first = 1
    for (name in runs) {
        sub(/,$/, "", runs[name])
        n = split(runs[name], r, ",")
        # median of the runs (sorted)
        for (i = 1; i < n; i++)
            for (j = i + 1; j <= n; j++)
                if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
        med = r[int((n + 1) / 2)]
        if (!first) printf ",\n"
        first = 0
        printf "    \"%s\": {\n", name
        printf "      \"baseline_ns_op\": %.0f,\n", base[name]
        printf "      \"runs_ns_op\": [%s],\n", runs[name]
        printf "      \"median_ns_op\": %s,\n", med
        printf "      \"speedup_vs_baseline\": %.2f\n", base[name] / med
        printf "    }"
    }
    printf "\n  }\n}\n"
}' machine="$MACHINE" "$RAW" > "$OUT"

echo "wrote $OUT"
cat "$OUT"

# BENCH_2.json: incremental re-analysis vs from-scratch at chip scale.
# BenchmarkE6Incremental edits ~1% of the E6 chip (datapath + multiplier +
# adder + PLA) per iteration and reports the measured full-run baseline,
# the dirty fraction, and the incremental speedup.
OUT2=BENCH_2.json
go test -run '^$' -bench 'BenchmarkE6Incremental$' \
    -benchtime 3x -count 3 . | tee "$RAW"

awk '
/^BenchmarkE6Incremental/ {
    ns = ns $3 ","
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "%dirty")          dirty = dirty $i ","
        if ($(i + 1) == "speedup-vs-full") spd = spd $i ","
    }
}
function median(csv,   r, n, i, j, t) {
    sub(/,$/, "", csv)
    n = split(csv, r, ",")
    for (i = 1; i < n; i++)
        for (j = i + 1; j <= n; j++)
            if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
    return r[int((n + 1) / 2)]
}
END {
    sub(/,$/, "", ns); sub(/,$/, "", dirty); sub(/,$/, "", spd)
    printf "{\n  \"machine\": %s,\n  \"benchmarks\": {\n", machine
    printf "    \"BenchmarkE6Incremental\": {\n"
    printf "      \"runs_ns_op\": [%s],\n", ns
    printf "      \"median_ns_op\": %s,\n", median(ns)
    printf "      \"dirty_pct\": %s,\n", median(dirty)
    printf "      \"speedup_incremental_vs_full\": %s\n", median(spd)
    printf "    }\n  }\n}\n"
}' machine="$MACHINE" "$RAW" > "$OUT2"

echo "wrote $OUT2"
cat "$OUT2"

# BENCH_6.json: vectorized functional regression. BenchmarkBatchSim
# streams the same 1024-vector truth-table sweep over the composed E6
# chip through the 64-lane bit-plane batch engine and (a 64-vector
# subsample, identical rows) through the scalar engine; the headline
# number is the per-vector speedup of the vectorized settle. Not a
# scaling sweep — both arms are single-threaded, so the record is valid
# on any runner.
OUT6=BENCH_6.json
go test -run '^$' -bench 'BenchmarkBatchSim' \
    -benchtime 1x -count 3 . | tee "$RAW"

awk '
/^BenchmarkBatchSim\/batch/ {
    bns = bns $3 ","
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "vec/s")       bvec = bvec $i ","
        if ($(i + 1) == "MB/s")        bmbs = bmbs $i ","
        if ($(i + 1) == "sweeps")      bsw = bsw $i ","
        if ($(i + 1) == "transistors") btr = $i
    }
}
/^BenchmarkBatchSim\/scalar/ {
    sns = sns $3 ","
    for (i = 5; i < NF; i += 2)
        if ($(i + 1) == "vec/s") svec = svec $i ","
}
function median(csv,   r, n, i, j, t) {
    sub(/,$/, "", csv)
    n = split(csv, r, ",")
    for (i = 1; i < n; i++)
        for (j = i + 1; j <= n; j++)
            if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
    return r[int((n + 1) / 2)]
}
END {
    bc = bns; sub(/,$/, "", bc)
    sc = sns; sub(/,$/, "", sc)
    printf "{\n  \"benchmark\": \"BenchmarkBatchSim\",\n"
    printf "  \"machine\": %s,\n", machine
    printf "  \"vectors\": 1024,\n"
    printf "  \"transistors\": %s,\n", btr
    printf "  \"batch\": {\n"
    printf "    \"runs_ns_op\": [%s],\n", bc
    printf "    \"median_ns_op\": %s,\n", median(bns)
    printf "    \"vectors_per_s\": %s,\n", median(bvec)
    printf "    \"mb_per_s\": %s,\n", median(bmbs)
    printf "    \"sweeps\": %s\n", median(bsw)
    printf "  },\n"
    printf "  \"scalar\": {\n"
    printf "    \"runs_ns_op\": [%s],\n", sc
    printf "    \"median_ns_op\": %s,\n", median(sns)
    printf "    \"vectors_per_s\": %s\n", median(svec)
    printf "  },\n"
    printf "  \"speedup_batch_vs_scalar\": %.1f\n", median(bvec) / median(svec)
    printf "}\n"
}' machine="$MACHINE" "$RAW" > "$OUT6"

echo "wrote $OUT6"
cat "$OUT6"

# BENCH_7.json: zero-copy mmap ingest at chip scale. BenchmarkIngestXL
# cold-loads the E6-XL snapshot (chip:32,10 — 100k+ nodes, ~182k
# transistors) through three loaders — the mmap + slice-cast v2 path,
# the v1 heap decoder, and the v2 heap decoder — with the collector
# quiesced identically in every arm; the headline is the mmap-vs-v1
# speedup. BenchmarkSessionRSS then records the memory half: per-session
# cost for 1/2/4/8 concurrent crystald sessions of the same chip, shared
# arena vs per-session heap copies. Both are single-threaded
# measurements, valid on any runner.
OUT7=BENCH_7.json
go test -run '^$' -bench 'BenchmarkIngestXL' \
    -benchtime 20x -count 5 . | tee "$RAW"
go test -run '^$' -bench 'BenchmarkSessionRSS' \
    -benchtime 1x -count 1 ./internal/server/ | tee -a "$RAW"

awk '
/^BenchmarkIngestXL\// {
    name = $1
    sub(/^BenchmarkIngestXL\//, "", name)
    sub(/-[0-9]+$/, "", name)
    runs[name] = runs[name] $3 ","
    if (!(name in seen)) { order[++nl] = name; seen[name] = 1 }
    for (i = 5; i < NF; i += 2)
        if ($(i + 1) == "ns/node") npn[name] = npn[name] $i ","
}
/^BenchmarkSessionRSS\// {
    name = $1
    sub(/^BenchmarkSessionRSS\//, "", name)
    sub(/-[0-9]+$/, "", name)
    split(name, parts, "/")
    arm = parts[1]; fleet = parts[2]
    if (!(name in rseen)) { rorder[++nr] = name; rseen[name] = 1 }
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "heapMB/session") heap[name] = $i
        if ($(i + 1) == "mappedMB")       mapped[name] = $i
        if ($(i + 1) == "totalMB")        total[name] = $i
    }
}
function median(csv,   r, n, i, j, t) {
    sub(/,$/, "", csv)
    n = split(csv, r, ",")
    for (i = 1; i < n; i++)
        for (j = i + 1; j <= n; j++)
            if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
    return r[int((n + 1) / 2)]
}
END {
    printf "{\n  \"benchmark\": \"mmap_ingest\",\n"
    printf "  \"machine\": %s,\n", machine
    printf "  \"chip\": {\"spec\": \"chip:32,10\", \"nodes\": 109670, \"transistors\": 181730},\n"
    printf "  \"load\": {\n"
    for (i = 1; i <= nl; i++) {
        name = order[i]
        csv = runs[name]
        sub(/,$/, "", csv)
        printf "    \"%s\": {\n", name
        printf "      \"runs_ns_op\": [%s],\n", csv
        printf "      \"median_ns_op\": %s,\n", median(runs[name])
        printf "      \"ns_per_node\": %s\n", median(npn[name])
        printf "    }%s\n", i < nl ? "," : ""
    }
    printf "  },\n"
    printf "  \"speedup_mmap_vs_v1decode\": %.2f,\n", median(runs["v1decode"]) / median(runs["mmap"])
    printf "  \"speedup_mmap_vs_v2decode\": %.2f,\n", median(runs["v2decode"]) / median(runs["mmap"])
    printf "  \"rss_sessions\": {\n"
    for (i = 1; i <= nr; i++) {
        name = rorder[i]
        printf "    \"%s\": {\"heap_mb_per_session\": %s, \"mapped_mb\": %s, \"total_mb\": %s}%s\n", \
            name, heap[name], mapped[name], total[name], i < nr ? "," : ""
    }
    printf "  },\n"
    printf "  \"rss_copy_vs_shared_total_at_8\": %.1f\n", total["copy/8"] / total["shared/8"]
    printf "}\n"
}' machine="$MACHINE" "$RAW" > "$OUT7"

echo "wrote $OUT7"
cat "$OUT7"

# BENCH_8.json: service saturation curves. cmd/loadgen drives a real
# crystald process (spawned for the run, snapshot warm starts enabled)
# through an offered-concurrency ramp of mixed scripted-session traffic —
# sync and async analyzes, edit barriers, simulate batches, critical
# queries — with response validation on (async results hard-asserted
# byte-identical to sync). The record is throughput, analyze p50/p99 and
# the 429 rejection rate per step, plus the detected saturation knee.
# Tunables: LOADGEN_RAMP (steps), LOADGEN_STEP (per-step duration),
# LOADGEN_SESSIONS (slot count), LOADGEN_JOB_WORKERS / LOADGEN_JOB_QUEUE
# (daemon async plane).
OUT8=BENCH_8.json
go build -o "${TMPDIR:-/tmp}/bench-crystald" ./cmd/crystald
go build -o "${TMPDIR:-/tmp}/bench-loadgen" ./cmd/loadgen
"${TMPDIR:-/tmp}/bench-loadgen" \
    -daemon "${TMPDIR:-/tmp}/bench-crystald" \
    -port "${LOADGEN_PORT:-8943}" \
    -ramp "${LOADGEN_RAMP:-2,4,8,16,32}" \
    -step-duration "${LOADGEN_STEP:-4s}" \
    -sessions "${LOADGEN_SESSIONS:-32}" \
    -max-sessions "${LOADGEN_MAX_SESSIONS:-24}" \
    -job-workers "${LOADGEN_JOB_WORKERS:-2}" \
    -job-queue "${LOADGEN_JOB_QUEUE:-32}" \
    -validate \
    -out "$RAW.loadgen"
jq --argjson machine "$MACHINE" \
    '{benchmark: "loadgen_saturation", machine: $machine} + .' \
    "$RAW.loadgen" > "$OUT8"
rm -f "$RAW.loadgen"

echo "wrote $OUT8"
cat "$OUT8"

fi # BENCH_ONLY = all

if [ "${BENCH_ONLY:-all}" != hier ]; then

# Scaling sweeps (BENCH_3, BENCH_4, BENCH_5) are meaningless on one CPU:
# every workers>1 row then measures pure coordination overhead, and a
# reader comparing rows would conclude parallelism is a regression. Run
# the sweeps under GOMAXPROCS=nproc explicitly, and when that is still 1,
# refuse unless BENCH_ALLOW_SINGLE_CPU=1 — in which case every emitted
# JSON is stamped "degenerate_single_cpu": true so the numbers cannot be
# mistaken for a scaling record.
degenerate=false
if [ "$sweep_procs" = 1 ]; then
    degenerate=true
    if [ "${BENCH_ALLOW_SINGLE_CPU:-0}" != 1 ]; then
        echo "bench.sh: REFUSING the worker-scaling sweeps: GOMAXPROCS=$sweep_procs." >&2
        echo "bench.sh: workers>1 rows on one CPU measure overhead, not scaling." >&2
        echo "bench.sh: set BENCH_ALLOW_SINGLE_CPU=1 to record anyway (annotated as degenerate)." >&2
        exit 1
    fi
    echo "bench.sh: WARNING: GOMAXPROCS=1 — scaling sweeps are degenerate;" >&2
    echo "bench.sh: WARNING: annotating BENCH_3/BENCH_4/BENCH_5 with degenerate_single_cpu=true." >&2
fi

# BENCH_3.json: single-run scaling of the parallel intra-run drain.
# BenchmarkE6ChipScaleWorkers analyzes the same chip at 1, 2, 4 and
# GOMAXPROCS workers (deduplicated); results are bit-identical at every
# count, so the sweep isolates wall-clock scaling of the speculate/commit
# drain. On a single-core runner the >1 rows measure pure speculation
# overhead — see docs/PERFORMANCE.md, "Single-run scaling".
OUT3=BENCH_3.json
GOMAXPROCS=$sweep_procs go test -run '^$' -bench 'BenchmarkE6ChipScaleWorkers' \
    -benchtime 1x -count 3 . | tee "$RAW"

awk '
/^BenchmarkE6ChipScaleWorkers\// {
    name = $1
    sub(/^BenchmarkE6ChipScaleWorkers\//, "", name)
    sub(/-[0-9]+$/, "", name)
    sub(/^workers=/, "", name)
    runs[name] = runs[name] $3 ","
    if (!(name in seen)) { order[++nw] = name; seen[name] = 1 }
}
function median(csv,   r, n, i, j, t) {
    sub(/,$/, "", csv)
    n = split(csv, r, ",")
    for (i = 1; i < n; i++)
        for (j = i + 1; j <= n; j++)
            if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
    return r[int((n + 1) / 2)]
}
END {
    base = median(runs[order[1]])
    printf "{\n  \"benchmark\": \"BenchmarkE6ChipScaleWorkers\",\n"
    printf "  \"superseded_by\": \"BENCH_5.json\",\n"
    printf "  \"machine\": %s,\n", machine
    printf "  \"degenerate_single_cpu\": %s,\n", degenerate
    printf "  \"workers\": {\n"
    for (i = 1; i <= nw; i++) {
        w = order[i]
        csv = runs[w]
        sub(/,$/, "", csv)
        med = median(runs[w])
        printf "    \"%s\": {\n", w
        printf "      \"runs_ns_op\": [%s],\n", csv
        printf "      \"median_ns_op\": %s,\n", med
        printf "      \"scaling_vs_1_worker\": %.2f\n", base / med
        printf "    }%s\n", i < nw ? "," : ""
    }
    printf "  }\n}\n"
}' machine="$MACHINE" degenerate="$degenerate" "$RAW" > "$OUT3"

echo "wrote $OUT3"
cat "$OUT3"

# BENCH_4.json: ingest throughput. BenchmarkIngestParse measures the cold
# half of the pipeline (parse + structural check, the work LoadSimFile
# does on a cache miss) serially and at increasing parallel-parser worker
# counts; BenchmarkIngestSnapshotLoad measures the warm half (decoding
# the binary .simx snapshot that replaces the parse). The headline
# ratios: parallel parse speedup at the widest worker count, and
# snapshot-load speedup over the serial parse.
OUT4=BENCH_4.json
GOMAXPROCS=$sweep_procs go test -run '^$' \
    -bench 'BenchmarkIngestParse|BenchmarkIngestSnapshotLoad' \
    -benchtime 10x -count 3 . | tee "$RAW"

awk '
/^BenchmarkIngestParse\// {
    name = $1
    sub(/^BenchmarkIngestParse\/workers=/, "", name)
    sub(/-[0-9]+$/, "", name)
    runs[name] = runs[name] $3 ","
    if (!(name in seen)) { order[++nw] = name; seen[name] = 1 }
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "MB/s")          mbs[name] = mbs[name] $i ","
        if ($(i + 1) == "ns/transistor") nst[name] = nst[name] $i ","
    }
}
/^BenchmarkIngestSnapshotLoad/ {
    sruns = sruns $3 ","
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "MB/s")          smbs = smbs $i ","
        if ($(i + 1) == "ns/transistor") snst = snst $i ","
    }
}
function median(csv,   r, n, i, j, t) {
    sub(/,$/, "", csv)
    n = split(csv, r, ",")
    for (i = 1; i < n; i++)
        for (j = i + 1; j <= n; j++)
            if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
    return r[int((n + 1) / 2)]
}
END {
    serial = median(runs["1"])
    widest = order[nw]
    printf "{\n  \"benchmark\": \"ingest\",\n"
    printf "  \"machine\": %s,\n", machine
    printf "  \"degenerate_single_cpu\": %s,\n", degenerate
    printf "  \"parse_workers\": {\n"
    for (i = 1; i <= nw; i++) {
        w = order[i]
        csv = runs[w]
        sub(/,$/, "", csv)
        printf "    \"%s\": {\n", w
        printf "      \"runs_ns_op\": [%s],\n", csv
        printf "      \"median_ns_op\": %s,\n", median(runs[w])
        printf "      \"mb_per_s\": %s,\n", median(mbs[w])
        printf "      \"ns_per_transistor\": %s,\n", median(nst[w])
        printf "      \"speedup_vs_serial\": %.2f\n", serial / median(runs[w])
        printf "    }%s\n", i < nw ? "," : ""
    }
    printf "  },\n"
    printf "  \"snapshot_load\": {\n"
    scsv = sruns
    sub(/,$/, "", scsv)
    printf "    \"runs_ns_op\": [%s],\n", scsv
    printf "    \"median_ns_op\": %s,\n", median(sruns)
    printf "    \"mb_per_s\": %s,\n", median(smbs)
    printf "    \"ns_per_transistor\": %s\n", median(snst)
    printf "  },\n"
    printf "  \"parallel_parse_speedup_at_%s_workers\": %.2f,\n", widest, serial / median(runs[widest])
    printf "  \"snapshot_speedup_vs_serial_parse\": %.2f\n", serial / median(sruns)
    printf "}\n"
}' machine="$MACHINE" degenerate="$degenerate" "$RAW" > "$OUT4"

echo "wrote $OUT4"
cat "$OUT4"

# BENCH_5.json: the locality/fence record. Three sections, all from the
# same run so the denominators are honest:
#   reorder_ab     — BenchmarkE6ReorderAB, the interleaved single-worker
#                    A/B of the RCM row layout vs the identity layout;
#   drain_scaling  — BenchmarkE6ChipScaleWorkers medians re-recorded
#                    alongside (superseding BENCH_3's committed medians),
#                    with the fence counters each parallel row publishes
#                    (batch-size, fence-stalls, commit-depth, occupancy,
#                    regions);
#   ab_vs_main     — only when BENCH_MAIN_BIN names a bench binary built
#                    at the comparison commit: strict alternation of that
#                    binary and this tree on the same runner, the honest
#                    form of a cross-commit speedup claim.
OUT5=BENCH_5.json
# The A/B benchmark interleaves its on/off pairs internally (3 pairs per
# line at -benchtime 3x); the workers sweep re-runs the BENCH_3 medians.
GOMAXPROCS=$sweep_procs go test -run '^$' -bench 'BenchmarkE6ReorderAB$' \
    -benchtime 3x -count 1 . | tee "$RAW"
GOMAXPROCS=$sweep_procs go test -run '^$' -bench 'BenchmarkE6ChipScaleWorkers' \
    -benchtime 1x -count 3 . | tee -a "$RAW"

AB_MAIN=""
if [ -n "${BENCH_MAIN_BIN:-}" ]; then
    ABRAW=$(mktemp)
    NEWBIN=$(mktemp)
    go test -c -o "$NEWBIN" .
    # Strict alternation: new, main, new, main, ... so drift (thermal,
    # noisy neighbours) hits both sides equally.
    for i in 1 2 3; do
        GOMAXPROCS=$sweep_procs "$NEWBIN" -test.run '^$' \
            -test.bench 'BenchmarkE6ChipScale$' -test.benchtime 1x \
            | sed 's/^/new /' | tee -a "$ABRAW"
        GOMAXPROCS=$sweep_procs "$BENCH_MAIN_BIN" -test.run '^$' \
            -test.bench 'BenchmarkE6ChipScale$' -test.benchtime 1x \
            | sed 's/^/main /' | tee -a "$ABRAW"
    done
    AB_MAIN=$(awk '
    $2 ~ /^BenchmarkE6ChipScale/ { runs[$1] = runs[$1] $4 "," }
    function median(csv,   r, n, i, j, t) {
        sub(/,$/, "", csv)
        n = split(csv, r, ",")
        for (i = 1; i < n; i++)
            for (j = i + 1; j <= n; j++)
                if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
        return r[int((n + 1) / 2)]
    }
    END {
        mn = median(runs["new"]); mm = median(runs["main"])
        nc = runs["new"];  sub(/,$/, "", nc)
        mc = runs["main"]; sub(/,$/, "", mc)
        printf "  \"ab_vs_main\": {\n"
        printf "    \"interleaved\": true,\n"
        printf "    \"runs_ns_op_this_tree\": [%s],\n", nc
        printf "    \"runs_ns_op_main\": [%s],\n", mc
        printf "    \"median_ns_op_this_tree\": %s,\n", mn
        printf "    \"median_ns_op_main\": %s,\n", mm
        printf "    \"improvement_pct_vs_main\": %.1f\n", (mm - mn) / mm * 100
        printf "  },\n"
    }' "$ABRAW")
    rm -f "$ABRAW" "$NEWBIN"
fi

awk '
/^BenchmarkE6ReorderAB/ {
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "ns-reorder-on")   abon = abon $i ","
        if ($(i + 1) == "ns-reorder-off")  aboff = aboff $i ","
        if ($(i + 1) == "improvement-pct") abimp = abimp $i ","
    }
}
/^BenchmarkE6ChipScaleWorkers\// {
    name = $1
    sub(/^BenchmarkE6ChipScaleWorkers\//, "", name)
    sub(/-[0-9]+$/, "", name)
    sub(/^workers=/, "", name)
    runs[name] = runs[name] $3 ","
    if (!(name in seen)) { order[++nw] = name; seen[name] = 1 }
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "batch-size")   bs[name] = bs[name] $i ","
        if ($(i + 1) == "fence-stalls") fs[name] = fs[name] $i ","
        if ($(i + 1) == "commit-depth") cd[name] = cd[name] $i ","
        if ($(i + 1) == "occupancy")    oc[name] = oc[name] $i ","
        if ($(i + 1) == "regions")      rg[name] = rg[name] $i ","
    }
}
function median(csv,   r, n, i, j, t) {
    sub(/,$/, "", csv)
    n = split(csv, r, ",")
    for (i = 1; i < n; i++)
        for (j = i + 1; j <= n; j++)
            if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
    return r[int((n + 1) / 2)]
}
END {
    printf "{\n  \"benchmark\": \"locality_fence\",\n"
    printf "  \"machine\": %s,\n", machine
    printf "  \"degenerate_single_cpu\": %s,\n", degenerate
    if (abmain != "") printf "%s\n", abmain
    printf "  \"reorder_ab\": {\n"
    printf "    \"interleaved\": true,\n"
    printf "    \"median_ns_reorder_on\": %s,\n", median(abon)
    printf "    \"median_ns_reorder_off\": %s,\n", median(aboff)
    printf "    \"improvement_pct\": %.1f\n", median(abimp)
    printf "  },\n"
    base = median(runs[order[1]])
    printf "  \"drain_scaling\": {\n"
    for (i = 1; i <= nw; i++) {
        w = order[i]
        csv = runs[w]
        sub(/,$/, "", csv)
        med = median(runs[w])
        printf "    \"%s\": {\n", w
        printf "      \"runs_ns_op\": [%s],\n", csv
        printf "      \"median_ns_op\": %s,\n", med
        printf "      \"scaling_vs_1_worker\": %.2f", base / med
        if (bs[w] != "") {
            printf ",\n      \"batch_size\": %s,\n", median(bs[w])
            printf "      \"fence_stalls\": %s,\n", median(fs[w])
            printf "      \"commit_depth\": %s,\n", median(cd[w])
            printf "      \"occupancy\": %s,\n", median(oc[w])
            printf "      \"regions\": %s\n", median(rg[w])
        } else printf "\n"
        printf "    }%s\n", i < nw ? "," : ""
    }
    printf "  }\n}\n"
}' machine="$MACHINE" degenerate="$degenerate" abmain="$AB_MAIN" "$RAW" > "$OUT5"

echo "wrote $OUT5"
cat "$OUT5"

fi # BENCH_ONLY != hier

# BENCH_9.json: the hierarchical-macromodel record (`make bench-hier` runs
# only this section via BENCH_ONLY=hier). Two sections from the same tree:
#   hier_ab — BenchmarkE6HierAB, the interleaved single-worker A/B of
#             hierarchical stamping vs flat analysis on the E6-XL
#             replicated-tile chip (chip:32,10): per-side median wall,
#             wall speedup, and the deterministic stage-evaluation
#             reduction (stamped tile interiors evaluate zero stages —
#             the hardware-independent form of the macromodel win);
#   xl      — BenchmarkHierXL, the chip:64,40 (~2.4M transistor) scale
#             point analyzed hier-on at full parallelism: wall time and
#             live heap after the run, the RSS-sublinearity evidence.
# The stamped-speedup floor (stage_reduction >= 5 on E6-XL) is
# informational: a shortfall warns in the log but does not fail the run.
if [ "${BENCH_ONLY:-all}" != scaling ]; then

OUT9=BENCH_9.json
GOMAXPROCS=$sweep_procs go test -run '^$' -bench 'BenchmarkE6HierAB$' \
    -benchtime 3x -count 1 -timeout 60m . | tee "$RAW"
GOMAXPROCS=$sweep_procs go test -run '^$' -bench 'BenchmarkHierXL$' \
    -benchtime 1x -count 1 -timeout 60m . | tee -a "$RAW"

awk '
/^BenchmarkE6HierAB/ {
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "ns-hier-on")      abon = abon $i ","
        if ($(i + 1) == "ns-hier-off")     aboff = aboff $i ","
        if ($(i + 1) == "speedup")         absp = absp $i ","
        if ($(i + 1) == "stage-reduction") abst = abst $i ","
        if ($(i + 1) == "instances")       abinst = $i
        if ($(i + 1) == "stamped")         abstamp = $i
        if ($(i + 1) == "transistors")     abtrans = $i
    }
}
/^BenchmarkHierXL/ {
    xlns = $3
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "transistors") xltrans = $i
        if ($(i + 1) == "instances")   xlinst = $i
        if ($(i + 1) == "stamped")     xlstamp = $i
        if ($(i + 1) == "heapMB")      xlheap = $i
    }
}
function median(csv,   r, n, i, j, t) {
    sub(/,$/, "", csv)
    n = split(csv, r, ",")
    for (i = 1; i < n; i++)
        for (j = i + 1; j <= n; j++)
            if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
    return r[int((n + 1) / 2)]
}
END {
    sr = median(abst) + 0
    printf "{\n  \"benchmark\": \"hier_macromodel\",\n"
    printf "  \"machine\": %s,\n", machine
    printf "  \"hier_ab\": {\n"
    printf "    \"interleaved\": true,\n"
    printf "    \"workload\": \"chip:32,10\",\n"
    printf "    \"transistors\": %s,\n", abtrans
    printf "    \"instances\": %s,\n", abinst
    printf "    \"stamped\": %s,\n", abstamp
    printf "    \"median_ns_hier_on\": %s,\n", median(abon)
    printf "    \"median_ns_hier_off\": %s,\n", median(aboff)
    printf "    \"wall_speedup\": %.2f,\n", median(absp) + 0
    printf "    \"stage_reduction\": %.2f,\n", sr
    printf "    \"stamped_speedup_floor\": 5.0,\n"
    printf "    \"floor_met\": %s\n", (sr >= 5.0 ? "true" : "false")
    printf "  },\n"
    printf "  \"xl\": {\n"
    printf "    \"workload\": \"chip:64,40\",\n"
    printf "    \"transistors\": %s,\n", xltrans
    printf "    \"instances\": %s,\n", xlinst
    printf "    \"stamped\": %s,\n", xlstamp
    printf "    \"wall_ns\": %s,\n", xlns
    printf "    \"live_heap_mb\": %s\n", xlheap
    printf "  }\n}\n"
    if (sr < 5.0)
        printf "bench.sh: WARNING: stage_reduction %.2f is below the informational 5.0 floor\n", sr > "/dev/stderr"
}' machine="$MACHINE" "$RAW" > "$OUT9"

echo "wrote $OUT9"
cat "$OUT9"

fi # BENCH_ONLY != scaling
