// Experiment E8: the Rubinstein–Penfield–Horowitz bounds versus the Elmore
// point estimate versus the analog reference, on randomized RC trees. This
// is the ablation for the distributed model's mathematical core.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/analog"
	"repro/internal/rctree"
)

// RCBoundsRow is one random tree's outcome.
type RCBoundsRow struct {
	Nodes     int
	Leaf      string
	Analog    float64 // measured 50% crossing (s)
	Elmore    float64 // TDe
	Elmore50  float64 // ln2·TDe estimate of the 50% time
	Lower     float64 // RPH lower bound at v=0.5
	Upper     float64 // RPH upper bound at v=0.5
	Contained bool    // lower ≤ analog ≤ upper
}

// xorshift is the deterministic PRNG used for tree generation.
type xorshift uint64

func newXorshift(seed uint64) *xorshift {
	s := (seed + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
	s ^= s >> 31
	if s == 0 {
		s = 0x2545f4914f6cdd1d
	}
	x := xorshift(s)
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// float returns a uniform value in [0,1).
func (x *xorshift) float() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}

// RandomTree builds a random RC tree with n nodes (n ≥ 2): resistances in
// [1,10] kΩ, capacitances in [10,100] fF, random topology, deterministic
// in seed.
func RandomTree(n int, seed uint64) *rctree.Tree {
	if n < 2 {
		n = 2
	}
	rng := newXorshift(seed)
	t := rctree.New(10e-15+90e-15*rng.float(), "root")
	for i := 1; i < n; i++ {
		parent := int(rng.next() % uint64(i))
		r := 1e3 + 9e3*rng.float()
		c := 10e-15 + 90e-15*rng.float()
		t.Add(parent, r, c, fmt.Sprintf("n%d", i))
	}
	return t
}

// deepestLeaf returns the leaf with the largest Elmore delay.
func deepestLeaf(t *rctree.Tree) int {
	td := t.ElmoreAll()
	best, bestV := 0, -1.0
	for _, leaf := range t.Leaves() {
		if td[leaf] > bestV {
			best, bestV = leaf, td[leaf]
		}
	}
	return best
}

// AnalogTreeDelay simulates the tree with the analog engine (it is a pure
// linear network, so this is the engine's exactly-solvable regime) and
// returns the 50% crossing time at the given node under a unit step.
func AnalogTreeDelay(t *rctree.Tree, node int) (float64, error) {
	c := analog.NewCircuit()
	src := c.Node("src")
	c.AddVSource(src, 0, analog.Step(0, 1, 0))
	// Map tree nodes to analog nodes; the root hangs off the source
	// directly (the root's own resistance is zero by construction).
	ids := make([]int, t.Len())
	for i := 0; i < t.Len(); i++ {
		if i == 0 {
			ids[i] = src
		} else {
			ids[i] = c.Node(fmt.Sprintf("t%d", i))
		}
	}
	for i := 1; i < t.Len(); i++ {
		c.AddResistor(ids[t.Parent(i)], ids[i], t.R(i))
	}
	for i := 1; i < t.Len(); i++ {
		if t.C(i) > 0 {
			c.AddCapacitor(ids[i], 0, t.C(i), 0)
		}
	}
	// Simulation window from the global time constant.
	k := t.ConstantsAt(node)
	stop := 12 * math.Max(k.TP, 1e-12)
	res, err := c.Tran(analog.TranOpts{Stop: stop, Step: stop / 8000, Record: []int{ids[node]}})
	if err != nil {
		return 0, err
	}
	return res.Crossing(ids[node], 0.5, true, 0)
}

// E8RCBounds runs `trials` random trees of the given size and checks bound
// containment at the deepest leaf.
func E8RCBounds(nodes, trials int, seed uint64) ([]RCBoundsRow, error) {
	var rows []RCBoundsRow
	for i := 0; i < trials; i++ {
		t := RandomTree(nodes, seed+uint64(i)*1297)
		leaf := deepestLeaf(t)
		ref, err := AnalogTreeDelay(t, leaf)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", i, err)
		}
		lo, hi := t.DelayBounds(leaf, 0.5)
		row := RCBoundsRow{
			Nodes:     t.Len(),
			Leaf:      t.Name(leaf),
			Analog:    ref,
			Elmore:    t.Elmore(leaf),
			Elmore50:  t.Delay50(leaf),
			Lower:     lo,
			Upper:     hi,
			Contained: lo <= ref*1.001 && ref <= hi*1.001,
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatRCBounds renders E8 rows plus a containment summary.
func FormatRCBounds(title string, rows []RCBoundsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-6s %-8s %10s %10s %10s %10s %10s %6s\n",
		title, "nodes", "leaf", "analog", "elmore", "ln2·TDe", "lower", "upper", "in?")
	contained := 0
	for _, r := range rows {
		mark := "no"
		if r.Contained {
			mark = "yes"
			contained++
		}
		fmt.Fprintf(&b, "%-6d %-8s %9.2fns %9.2fns %9.2fns %9.2fns %9.2fns %6s\n",
			r.Nodes, r.Leaf, r.Analog*1e9, r.Elmore*1e9, r.Elmore50*1e9,
			r.Lower*1e9, r.Upper*1e9, mark)
	}
	fmt.Fprintf(&b, "containment: %d/%d\n", contained, len(rows))
	return b.String()
}
