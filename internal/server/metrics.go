// Service metrics: cheap atomic counters for the cache and the analysis
// engine, plus bounded latency recorders with on-demand percentiles. The
// /metrics endpoint serves a JSON snapshot; cmd/crystald additionally
// publishes the same snapshot through the stock expvar protocol at
// /debug/vars so fleet tooling needs no custom scraper.
//
// Concurrency contract, audited for torn reads under concurrent scrape +
// update (TestMetricsScrapeUnderLoad runs the audit under -race): every
// counter in the metrics struct is an atomic.Int64 (including max-tracking
// ones like drainCommitDepth, which uses a CAS loop, and drainRegions,
// which is a Store — both single 8-byte words, never read-modify-write
// without atomicity); the latency rings are mutex-guarded because an
// observation writes three fields; and gauges owned by other subsystems
// (session-cache size, arena refcounts, job-queue depth) are read under
// their owners' locks at snapshot time and passed in by value. A snapshot
// is therefore internally torn only *across* fields (counters advance
// between two Loads), never within one — each field is a consistent value
// some moment saw.
package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// latencyRing bounds each recorder: percentiles are computed over the most
// recent latencyRing observations, so a long-lived daemon reports current
// behaviour, not its lifetime average.
const latencyRing = 512

// latencyRecorder keeps the last latencyRing durations of one request
// class.
type latencyRecorder struct {
	mu    sync.Mutex
	ring  [latencyRing]int64 // nanoseconds
	n     int                // filled slots, capped at latencyRing
	next  int                // ring cursor
	total int64              // lifetime observation count
}

func (l *latencyRecorder) observe(d time.Duration) {
	l.mu.Lock()
	l.ring[l.next] = d.Nanoseconds()
	l.next = (l.next + 1) % latencyRing
	if l.n < latencyRing {
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

// LatencyStats is one recorder's snapshot: lifetime count and percentiles
// over the recent window.
type LatencyStats struct {
	Count int64 `json:"count"`
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
}

func (l *latencyRecorder) stats() LatencyStats {
	l.mu.Lock()
	buf := make([]int64, l.n)
	copy(buf, l.ring[:l.n])
	st := LatencyStats{Count: l.total}
	l.mu.Unlock()
	if len(buf) == 0 {
		return st
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	st.P50Ns = buf[len(buf)/2]
	st.P99Ns = buf[(len(buf)*99)/100]
	return st
}

// metrics is the server's counter set. All fields are updated with atomics
// so handlers never serialize on a stats lock.
type metrics struct {
	sessionsCreated atomic.Int64
	sessionsDeduped atomic.Int64 // content-hash cache hits on POST /v1/sessions
	sessionsEvicted atomic.Int64 // LRU evictions

	snapshotHits   atomic.Int64 // sessions loaded from the .simx cache (parse skipped)
	snapshotMisses atomic.Int64 // sessions parsed because no fresh snapshot existed
	snapshotWrites atomic.Int64 // snapshots persisted after a parse

	analyzesFull   atomic.Int64 // full drains (initial runs and worker-count rebuilds)
	analyzesCached atomic.Int64 // served straight from the session snapshot

	hierAnalyzes  atomic.Int64 // full drains run with hierarchical analysis on
	hierInstances atomic.Int64 // cumulative annotated instances those drains detected
	hierStamped   atomic.Int64 // cumulative instances whose interiors were stamped
	hierFlat      atomic.Int64 // cumulative instances analyzed flat (with per-instance reasons)

	editBatches      atomic.Int64 // run barriers applied
	editsIncremental atomic.Int64 // barriers served by the incremental engine
	editsFull        atomic.Int64 // barriers that fell back to a full drain
	drainEpochs      atomic.Int64 // cumulative stage-DB generations advanced

	jobsSubmitted atomic.Int64 // async jobs admitted to the queue
	jobsDone      atomic.Int64 // jobs completed successfully
	jobsFailed    atomic.Int64 // jobs that completed with an error status
	jobsRejected  atomic.Int64 // submissions rejected (queue full 429, draining 503)

	simRequests     atomic.Int64 // POST .../simulate calls served
	simVectors      atomic.Int64 // input vectors settled by the batch engine
	simSweeps       atomic.Int64 // cumulative settle sweeps across all batches
	simOscillations atomic.Int64 // vectors that tripped the oscillation cutoff
	simCompiles     atomic.Int64 // batch-engine (re)compiles (first use or post-edit)

	analyzeLatency  latencyRecorder // one full analyze
	editLatency     latencyRecorder // one edit barrier (Reanalyze + report)
	simulateLatency latencyRecorder // one simulate batch (compile + settle)
	jobQueueLatency latencyRecorder // async job queue wait (submit → dispatch)

	// Speculative-drain counters, aggregated across every parallel drain
	// any session ran (serial drains contribute zeros). See
	// core.DrainStats for semantics.
	drainBatches     atomic.Int64
	drainBatchItems  atomic.Int64
	drainFenceStalls atomic.Int64
	drainPreempts    atomic.Int64
	drainSpecLive    atomic.Int64
	drainSpecUsed    atomic.Int64
	drainCommitDepth atomic.Int64 // max observed across drains
	drainRegions     atomic.Int64 // last compiled fence-partition size
}

// observeDrain folds one drain's counter delta into the aggregate.
func (m *metrics) observeDrain(d core.DrainStats) {
	m.drainBatches.Add(d.Batches)
	m.drainBatchItems.Add(d.BatchItems)
	m.drainFenceStalls.Add(d.FenceStalls)
	m.drainPreempts.Add(d.Preempts)
	m.drainSpecLive.Add(d.SpecLive)
	m.drainSpecUsed.Add(d.SpecUsed)
	for {
		cur := m.drainCommitDepth.Load()
		if d.CommitDepth <= cur || m.drainCommitDepth.CompareAndSwap(cur, d.CommitDepth) {
			break
		}
	}
	if d.Regions > 0 {
		m.drainRegions.Store(int64(d.Regions))
	}
}

// MetricsSnapshot is the externally visible metrics document.
type MetricsSnapshot struct {
	Sessions struct {
		Live    int   `json:"live"`
		Created int64 `json:"created"`
		Deduped int64 `json:"deduped"`
		Evicted int64 `json:"evicted"`
	} `json:"sessions"`
	Snapshots struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
		Writes int64 `json:"writes"`
	} `json:"snapshots"`
	Analyze struct {
		Full   int64 `json:"full"`
		Cached int64 `json:"cached"`
	} `json:"analyze"`
	// Hier aggregates hierarchical-analysis provenance across every full
	// analyze the daemon ran with -hier on (all zero with -hier off):
	// instances detected, instances stamped from a class representative,
	// instances analyzed flat.
	Hier struct {
		Analyzes  int64 `json:"analyzes"`
		Instances int64 `json:"instances"`
		Stamped   int64 `json:"stamped"`
		Flat      int64 `json:"flat"`
	} `json:"hier"`
	Edits struct {
		Batches     int64 `json:"batches"`
		Incremental int64 `json:"incremental"`
		Full        int64 `json:"full"`
		DrainEpochs int64 `json:"drain_epochs"`
	} `json:"edits"`
	// Jobs is the async job plane: instantaneous queue state (gauges)
	// plus lifetime outcome counters. Queued is the admission-control
	// signal — at Capacity, new submissions get 429.
	Jobs struct {
		Queued    int   `json:"queued"`   // gauge: admitted, not yet dispatched
		Running   int   `json:"running"`  // gauge: executing on the worker pool
		Capacity  int   `json:"capacity"` // queue bound (Options.JobQueueDepth)
		Draining  bool  `json:"draining"` // drain mode: new submissions rejected
		Submitted int64 `json:"submitted"`
		Done      int64 `json:"done"`
		Failed    int64 `json:"failed"`
		Rejected  int64 `json:"rejected"`
	} `json:"jobs"`
	Sim struct {
		Requests     int64 `json:"requests"`
		Vectors      int64 `json:"vectors"`
		Sweeps       int64 `json:"sweeps"`
		Oscillations int64 `json:"oscillations"`
		Compiles     int64 `json:"compiles"`
	} `json:"sim"`
	// NetArena is the shared-view gauge set: current mapping/reference
	// state plus the lifetime copy-on-edit detach count. All zero when
	// the arena is disabled.
	NetArena ArenaStats `json:"netarena"`
	Drain    struct {
		Batches     int64   `json:"batches"`
		BatchSize   float64 `json:"batch_size"` // mean frontier batch size
		FenceStalls int64   `json:"fence_stalls"`
		Preempts    int64   `json:"preempts"`
		SpecLive    int64   `json:"spec_live"`
		SpecUsed    int64   `json:"spec_used"`
		Occupancy   float64 `json:"occupancy"`    // SpecUsed / SpecLive
		CommitDepth int64   `json:"commit_depth"` // max commit-queue depth observed
		Regions     int64   `json:"regions"`
	} `json:"drain"`
	LatencyNs struct {
		Analyze     LatencyStats `json:"analyze"`
		EditBarrier LatencyStats `json:"edit_barrier"`
		Simulate    LatencyStats `json:"simulate"`
		JobQueue    LatencyStats `json:"job_queue"`
	} `json:"latency_ns"`
}

// jobGauges is the job plane's instantaneous state, read under the
// plane's own lock at snapshot time (the plane owns queue/busy state;
// the cumulative counters live in metrics as atomics).
type jobGauges struct {
	Queued   int
	Running  int
	Capacity int
	Draining bool
}

// snapshot assembles the document; live is the current cache size (owned
// by the server, which holds its own lock) and arena the shared-view
// gauges (zero when the arena is disabled).
func (m *metrics) snapshot(live int, arena ArenaStats, jobs jobGauges) MetricsSnapshot {
	var s MetricsSnapshot
	s.Sessions.Live = live
	s.NetArena = arena
	s.Jobs.Queued = jobs.Queued
	s.Jobs.Running = jobs.Running
	s.Jobs.Capacity = jobs.Capacity
	s.Jobs.Draining = jobs.Draining
	s.Jobs.Submitted = m.jobsSubmitted.Load()
	s.Jobs.Done = m.jobsDone.Load()
	s.Jobs.Failed = m.jobsFailed.Load()
	s.Jobs.Rejected = m.jobsRejected.Load()
	s.Sessions.Created = m.sessionsCreated.Load()
	s.Sessions.Deduped = m.sessionsDeduped.Load()
	s.Sessions.Evicted = m.sessionsEvicted.Load()
	s.Snapshots.Hits = m.snapshotHits.Load()
	s.Snapshots.Misses = m.snapshotMisses.Load()
	s.Snapshots.Writes = m.snapshotWrites.Load()
	s.Analyze.Full = m.analyzesFull.Load()
	s.Analyze.Cached = m.analyzesCached.Load()
	s.Hier.Analyzes = m.hierAnalyzes.Load()
	s.Hier.Instances = m.hierInstances.Load()
	s.Hier.Stamped = m.hierStamped.Load()
	s.Hier.Flat = m.hierFlat.Load()
	s.Edits.Batches = m.editBatches.Load()
	s.Edits.Incremental = m.editsIncremental.Load()
	s.Edits.Full = m.editsFull.Load()
	s.Edits.DrainEpochs = m.drainEpochs.Load()
	s.Sim.Requests = m.simRequests.Load()
	s.Sim.Vectors = m.simVectors.Load()
	s.Sim.Sweeps = m.simSweeps.Load()
	s.Sim.Oscillations = m.simOscillations.Load()
	s.Sim.Compiles = m.simCompiles.Load()
	s.Drain.Batches = m.drainBatches.Load()
	if items := m.drainBatchItems.Load(); s.Drain.Batches > 0 {
		s.Drain.BatchSize = float64(items) / float64(s.Drain.Batches)
	}
	s.Drain.FenceStalls = m.drainFenceStalls.Load()
	s.Drain.Preempts = m.drainPreempts.Load()
	s.Drain.SpecLive = m.drainSpecLive.Load()
	s.Drain.SpecUsed = m.drainSpecUsed.Load()
	if s.Drain.SpecLive > 0 {
		s.Drain.Occupancy = float64(s.Drain.SpecUsed) / float64(s.Drain.SpecLive)
	}
	s.Drain.CommitDepth = m.drainCommitDepth.Load()
	s.Drain.Regions = m.drainRegions.Load()
	s.LatencyNs.Analyze = m.analyzeLatency.stats()
	s.LatencyNs.EditBarrier = m.editLatency.stats()
	s.LatencyNs.Simulate = m.simulateLatency.stats()
	s.LatencyNs.JobQueue = m.jobQueueLatency.stats()
	return s
}
