// Cache-conscious node reordering and region partitioning for the
// compiled network.
//
// The drain loop's per-event working set is a handful of dense per-node
// arrays (the CSR gate adjacency, the flag vectors, the analyzer's arrival
// state). Construction order scatters electrically adjacent nodes across
// those arrays — a generated chip interleaves datapath bits with control,
// an extracted netlist follows layout-extraction order — so consecutive
// events touch cache lines almost at random. Reverse Cuthill–McKee over
// the gate/source-drain adjacency fixes that: nodes that fire together
// (members of one channel-connected group and their gating nodes) receive
// neighbouring rows, so one event's loads prefetch its consequences'.
//
// The same connectivity walk yields the drain's region partition: the
// weakly-connected components of the gate graph with rails and
// input-driven gate edges removed. Every consequence of an event at an
// internal node lands in the node's own component (a stage's target is
// channel-connected to the triggering device, and the trigger's gate node
// is joined to that group), so components are the natural fence domains
// for the speculative drain: activity in one region cannot invalidate
// speculation in another. Input-gated edges are cut because chip inputs
// (clocks above all) fan out across the whole die and would collapse the
// partition into one region; their events are the batch head at t≈0 and
// are bounded by commit-time validation like everything else.
package netlist

// compactOrder is the result of one reordering/partitioning walk.
type compactOrder struct {
	perm    []int32 // orig node index -> compact row
	inv     []int32 // compact row -> orig node index
	region  []int32 // orig node index -> region id
	regions int
}

// buildOrder computes the RCM permutation (identity when reorder is
// false) and the region partition of nw. Both are deterministic functions
// of the network: BFS sources and neighbour visits are ordered by
// (degree, index), so renaming-invariance suites see the same layout on
// every run.
func buildOrder(nw *Network, reorder bool) compactOrder {
	n := len(nw.Nodes)
	o := compactOrder{
		perm:   make([]int32, n),
		inv:    make([]int32, n),
		region: make([]int32, n),
	}

	// Locality adjacency in CSR form: for every device, gate-A, gate-B
	// and A-B edges, rails excluded (they touch everything and carry no
	// locality signal). Built once, shared by the RCM walk; the region
	// walk reuses it minus input-gated edges.
	deg := make([]int32, n)
	addDeg := func(a, b *Node) {
		if a.IsRail() || b.IsRail() || a == b {
			return
		}
		deg[a.Index]++
		deg[b.Index]++
	}
	for _, t := range nw.Trans {
		addDeg(t.Gate, t.A)
		addDeg(t.Gate, t.B)
		addDeg(t.A, t.B)
	}
	start := make([]int32, n+1)
	for i := 0; i < n; i++ {
		start[i+1] = start[i] + deg[i]
	}
	adj := make([]int32, start[n])
	fill := make([]int32, n)
	copy(fill, start[:n])
	addEdge := func(a, b *Node) {
		if a.IsRail() || b.IsRail() || a == b {
			return
		}
		adj[fill[a.Index]] = int32(b.Index)
		fill[a.Index]++
		adj[fill[b.Index]] = int32(a.Index)
		fill[b.Index]++
	}
	for _, t := range nw.Trans {
		addEdge(t.Gate, t.A)
		addEdge(t.Gate, t.B)
		addEdge(t.A, t.B)
	}

	o.assignRegions(nw, start, adj)
	if !reorder {
		for i := range o.perm {
			o.perm[i] = int32(i)
			o.inv[i] = int32(i)
		}
		return o
	}
	o.rcm(nw, start, adj, deg)
	return o
}

// rcm fills perm/inv with the reverse Cuthill–McKee ordering: per
// component, breadth-first from a minimum-degree source with neighbours
// visited in (degree, index) order, the whole sequence reversed; rails
// are pinned to the last rows (their entries are dead in the hot loop).
func (o *compactOrder) rcm(nw *Network, start, adj []int32, deg []int32) {
	n := len(nw.Nodes)
	// Sources in (degree, index) order; a simple index sort over a
	// degree-bucketed permutation keeps this O(n log n) worst case.
	bySize := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if !nw.Nodes[i].IsRail() {
			bySize = append(bySize, int32(i))
		}
	}
	sortByDegreeIndex(bySize, deg)

	order := make([]int32, 0, n)
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	scratch := make([]int32, 0, 16)
	for _, src := range bySize {
		if visited[src] {
			continue
		}
		visited[src] = true
		queue = append(queue[:0], src)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			order = append(order, u)
			scratch = scratch[:0]
			for _, v := range adj[start[u]:start[u+1]] {
				if !visited[v] {
					visited[v] = true
					scratch = append(scratch, v)
				}
			}
			sortByDegreeIndex(scratch, deg)
			queue = append(queue, scratch...)
		}
	}
	// Reverse (the RCM step): low rows become the periphery-to-core walk
	// that minimizes bandwidth of the permuted adjacency.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	// Rails last, in index order.
	for i := 0; i < n; i++ {
		if nw.Nodes[i].IsRail() {
			order = append(order, int32(i))
		}
	}
	for row, orig := range order {
		o.perm[orig] = int32(row)
		o.inv[row] = int32(orig)
	}
}

// assignRegions labels each node with its fence region: connected
// components of the adjacency minus gate edges driven by chip inputs.
// Rails and isolated nodes get singleton regions.
func (o *compactOrder) assignRegions(nw *Network, start, adj []int32) {
	n := len(nw.Nodes)
	for i := range o.region {
		o.region[i] = -1
	}
	// The region walk cannot reuse adj directly (it must skip edges whose
	// gate end is an input), so collect the joinable pairs: channel edges
	// always join; gate edges join unless the gate is an input. An edge
	// that exists both ways (a gate node also channel-connected to the
	// same pair) joins.
	key := func(a, b int32) int64 {
		if a > b {
			a, b = b, a
		}
		return int64(a)<<32 | int64(b)
	}
	joined := make(map[int64]bool)
	for _, t := range nw.Trans {
		g, a, b := t.Gate, t.A, t.B
		if !a.IsRail() && !b.IsRail() && a != b {
			joined[key(int32(a.Index), int32(b.Index))] = true
		}
		if g.Kind != KindInput {
			for _, ch := range [2]*Node{a, b} {
				if g.IsRail() || ch.IsRail() || g == ch {
					continue
				}
				joined[key(int32(g.Index), int32(ch.Index))] = true
			}
		}
	}
	next := int32(0)
	stack := make([]int32, 0, 64)
	for i := 0; i < n; i++ {
		if o.region[i] != -1 {
			continue
		}
		if nw.Nodes[i].IsRail() {
			o.region[i] = next
			next++
			continue
		}
		o.region[i] = next
		stack = append(stack[:0], int32(i))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[start[u]:start[u+1]] {
				if o.region[v] != -1 {
					continue
				}
				if !joined[key(u, v)] {
					continue
				}
				o.region[v] = next
				stack = append(stack, v)
			}
		}
		next++
	}
	o.regions = int(next)
}

// sortByDegreeIndex sorts node ids by (degree, id) — insertion sort for
// the short neighbour lists, shell gaps for the full source sweep.
func sortByDegreeIndex(ids []int32, deg []int32) {
	less := func(a, b int32) bool {
		if deg[a] != deg[b] {
			return deg[a] < deg[b]
		}
		return a < b
	}
	for gap := len(ids) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(ids); i++ {
			v := ids[i]
			j := i
			for ; j >= gap && less(v, ids[j-gap]); j -= gap {
				ids[j] = ids[j-gap]
			}
			ids[j] = v
		}
	}
}
