// The edit-script grammar: the line-oriented batch language the designer
// loop speaks, shared by the crystal CLI (-edits / -watch) and the
// crystald analysis service (POST /v1/sessions/{id}/edits). `run` lines
// are the barriers at which the accumulated batch is applied and the
// timing brought up to date (incrementally when the invalidation plan
// allows).
//
// Grammar (fields are whitespace-separated; # starts a comment):
//
//	add <dev> <gate> <a> <b> [<w> <l>]   insert a transistor (nenh|ndep|penh)
//	wire <a> <b> <ohms>                  insert an interconnect resistor
//	del <index>                          remove the transistor at index
//	resize <index> <w> <l>               change geometry (0 keeps a value)
//	cap <node> <farads>                  add capacitance (negative subtracts)
//	retype <node> input|output|normal    change a node's kind
//	run                                  apply the batch and re-analyze
//
// Lengths are in meters, capacitance in farads, resistance in ohms. A
// trailing batch without a closing `run` is applied at end of input.
package incremental

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// ParseEditLine decodes one non-barrier script line (already split into
// fields) into a journal entry.
func ParseEditLine(fields []string) (Edit, error) {
	var e Edit
	argc := func(n int) error {
		if len(fields) != n+1 {
			return fmt.Errorf("%s takes %d arguments, got %d", fields[0], n, len(fields)-1)
		}
		return nil
	}
	num := func(s string) (float64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", s)
		}
		return v, nil
	}
	var err error
	switch fields[0] {
	case "add":
		if len(fields) != 5 && len(fields) != 7 {
			return e, fmt.Errorf("add takes 4 or 6 arguments, got %d", len(fields)-1)
		}
		e.Kind = AddTrans
		switch fields[1] {
		case "nenh":
			e.Dev = tech.NEnh
		case "ndep":
			e.Dev = tech.NDep
		case "penh":
			e.Dev = tech.PEnh
		default:
			return e, fmt.Errorf("unknown device %q (want nenh, ndep or penh)", fields[1])
		}
		e.Gate, e.A, e.B = fields[2], fields[3], fields[4]
		if len(fields) == 7 {
			if e.W, err = num(fields[5]); err != nil {
				return e, err
			}
			if e.L, err = num(fields[6]); err != nil {
				return e, err
			}
		}
	case "wire":
		if err := argc(3); err != nil {
			return e, err
		}
		e.Kind = AddTrans
		e.Dev = tech.RWire
		e.A, e.B = fields[1], fields[2]
		if e.R, err = num(fields[3]); err != nil {
			return e, err
		}
	case "del":
		if err := argc(1); err != nil {
			return e, err
		}
		e.Kind = RemoveTrans
		if e.Index, err = strconv.Atoi(fields[1]); err != nil {
			return e, fmt.Errorf("bad index %q", fields[1])
		}
	case "resize":
		if err := argc(3); err != nil {
			return e, err
		}
		e.Kind = Resize
		if e.Index, err = strconv.Atoi(fields[1]); err != nil {
			return e, fmt.Errorf("bad index %q", fields[1])
		}
		if e.W, err = num(fields[2]); err != nil {
			return e, err
		}
		if e.L, err = num(fields[3]); err != nil {
			return e, err
		}
	case "cap":
		if err := argc(2); err != nil {
			return e, err
		}
		e.Kind = AddCap
		e.Node = fields[1]
		if e.Cap, err = num(fields[2]); err != nil {
			return e, err
		}
	case "retype":
		if err := argc(2); err != nil {
			return e, err
		}
		e.Kind = Retype
		e.Node = fields[1]
		switch fields[2] {
		case "input":
			e.NodeKind = netlist.KindInput
		case "output":
			e.NodeKind = netlist.KindOutput
		case "normal":
			e.NodeKind = netlist.KindNormal
		default:
			return e, fmt.Errorf("unknown node kind %q (want input, output or normal)", fields[2])
		}
	default:
		return e, fmt.Errorf("unknown edit %q", fields[0])
	}
	return e, nil
}

// ReplayScript reads an edit script from r and calls apply with each
// accumulated batch at its `run` barrier (and once more for a trailing
// batch without a closing `run`). src names the script in error messages.
// Empty batches at a barrier are skipped. apply receives the 1-based line
// number of the barrier (or the last line for a trailing batch).
func ReplayScript(r io.Reader, src string, apply func(line int, batch []Edit) error) error {
	var batch []Edit
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "run" {
			if len(batch) > 0 {
				if err := apply(lineNo, batch); err != nil {
					return fmt.Errorf("%s:%d: %w", src, lineNo, err)
				}
				batch = batch[:0]
			}
			continue
		}
		e, err := ParseEditLine(fields)
		if err != nil {
			return fmt.Errorf("%s:%d: %w", src, lineNo, err)
		}
		batch = append(batch, e)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(batch) > 0 {
		if err := apply(lineNo, batch); err != nil {
			return fmt.Errorf("%s: %w", src, err)
		}
	}
	return nil
}
