// Package experiments implements the paper's evaluation: every
// reconstructed table and figure (E1–E8 in DESIGN.md) has a driver here,
// shared by cmd/delaycmp (human-readable tables) and the benchmark
// harness in the repository root.
//
// The central abstraction is the Scenario: one circuit, one input event,
// one observed output, with the surrounding pins held at fixed values. A
// scenario can be evaluated by the analog reference (transistor-level
// transient simulation) and by the timing verifier under any delay model;
// the comparison is the accuracy experiment.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stage"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// Workers bounds the fan-out of experiment drivers: independent rows
// (scenarios, blocks, sweep points) are spread over this many goroutines
// via core.RunMany. Zero selects GOMAXPROCS; one forces the strict serial
// order. Row results are identical at every setting — only wall time
// changes. cmd/delaycmp exposes this as -workers.
var Workers int

// NoReorder disables the compiled network's RCM locality layout in every
// analyzer the experiments build (core.Options.NoReorder). Results are
// bit-identical either way; cmd/delaycmp exposes this as -reorder=on|off.
var NoReorder bool

// Scenario is one timed measurement on one circuit.
type Scenario struct {
	// Name labels the row in reports.
	Name string
	// Net is the circuit.
	Net *netlist.Network
	// Fixed pins nodes at constant values during the measurement.
	Fixed map[string]switchsim.Value
	// Input names the node receiving the transition; InTr its direction;
	// InSlope the transition (ramp) time in seconds (0 = near-step).
	Input   string
	InTr    tech.Transition
	InSlope float64
	// Output names the observed node; OutTr the expected transition.
	Output string
	OutTr  tech.Transition
	// Settle overrides the pre-event relaxation time of the analog run
	// (0 selects the 80 ns default); slow RC structures need more.
	Settle float64
	// X is the sweep coordinate the scenario samples (chain length,
	// fanout, slope…), copied into the resulting AccuracyRow; 0 for
	// non-sweep scenarios.
	X float64
}

// minRamp is the "near-step" input ramp used when InSlope is zero: the
// analog simulator needs a finite edge.
const minRamp = 50e-12

// settleTime is how long the analog circuit relaxes before the input event
// fires; generous relative to every fixture time constant.
const settleTime = 80e-9

// AnalogDelay measures the scenario on the analog reference: the 50%→50%
// delay from input to output and the output's 10–90% transition time.
func (s *Scenario) AnalogDelay() (delay50, outSlope float64, err error) {
	p := s.Net.Tech
	ramp := s.InSlope
	if ramp <= 0 {
		ramp = minRamp
	}
	v0, v1 := 0.0, p.Vdd
	if s.InTr == tech.Fall {
		v0, v1 = p.Vdd, 0
	}
	settle := s.Settle
	if settle <= 0 {
		settle = settleTime
	}
	inNode := s.Net.Lookup(s.Input)
	if inNode == nil {
		return 0, 0, fmt.Errorf("experiments %s: no input node %q", s.Name, s.Input)
	}
	outNode := s.Net.Lookup(s.Output)
	if outNode == nil {
		return 0, 0, fmt.Errorf("experiments %s: no output node %q", s.Name, s.Output)
	}
	drives := []analog.InputDrive{{Node: inNode, W: analog.Ramp(v0, v1, settle, ramp)}}
	for name, v := range s.Fixed {
		n := s.Net.Lookup(name)
		if n == nil {
			return 0, 0, fmt.Errorf("experiments %s: no fixed node %q", s.Name, name)
		}
		var level float64
		switch v {
		case switchsim.V1:
			level = p.Vdd
		case switchsim.V0:
			level = 0
		default:
			return 0, 0, fmt.Errorf("experiments %s: fixed node %s must be 0 or 1", s.Name, name)
		}
		drives = append(drives, analog.InputDrive{Node: n, W: analog.DC(level)})
	}
	c, nmap, err := analog.FromNetlist(s.Net, drives, nil)
	if err != nil {
		return 0, 0, err
	}
	stop := settle + ramp + 60*stageScale(s.Net)
	res, err := c.Tran(analog.TranOpts{
		Stop:   stop,
		Step:   stop / 9000,
		Record: []int{nmap[inNode.Index], nmap[outNode.Index]},
	})
	if err != nil {
		return 0, 0, fmt.Errorf("experiments %s: %w", s.Name, err)
	}
	d, err := res.Delay50(nmap[inNode.Index], nmap[outNode.Index],
		s.InTr == tech.Rise, s.OutTr == tech.Rise, 0, p.Vdd, settle/2)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments %s: %w", s.Name, err)
	}
	// Output slope between its actual levels around the event.
	vstart, _ := res.At(nmap[outNode.Index], settle)
	vend, _ := res.Final(nmap[outNode.Index])
	sl, err := res.TransitionTime(nmap[outNode.Index], vstart, vend, settle)
	if err != nil {
		sl = math.NaN() // delay is still valid; slope measurement failed
	}
	return d, sl, nil
}

// stageScale is a crude time constant for sizing simulation windows.
func stageScale(nw *netlist.Network) float64 {
	// Largest rule-of-thumb resistance times mean node capacitance.
	st := nw.Stats()
	meanC := st.TotalCap / float64(st.Nodes)
	return 50000 * meanC * 4
}

// ModelDelay runs the timing verifier over the scenario with the given
// model and returns the arrival time at the output (relative to the input
// event) and the propagated output slope.
func (s *Scenario) ModelDelay(m delay.Model) (delay50, outSlope float64, err error) {
	delay50, outSlope, _, err = s.modelDelay(m, nil)
	return delay50, outSlope, err
}

// modelDelay is ModelDelay with stage-database chaining: db (from a prior
// model's run over this same scenario) seeds the analyzer's stage cache,
// and the analyzer's database is returned for the next model. Stage
// enumeration depends only on the sensitization — not the delay model —
// so all models of one scenario share one database. Workers is pinned to
// 1: scenario evaluation is already fanned out at the row level.
func (s *Scenario) modelDelay(m delay.Model, db *stage.DB) (delay50, outSlope float64, dbOut *stage.DB, err error) {
	a := core.New(s.Net, m, core.Options{DB: db, Workers: 1, NoReorder: NoReorder})
	for name, v := range s.Fixed {
		n := s.Net.Lookup(name)
		if n == nil {
			return 0, 0, nil, fmt.Errorf("experiments %s: no fixed node %q", s.Name, name)
		}
		a.SetFixed(n, v)
	}
	slope := s.InSlope
	if slope <= 0 {
		slope = minRamp
	}
	if err := a.SetInputEventName(s.Input, s.InTr, 0, slope); err != nil {
		return 0, 0, nil, fmt.Errorf("experiments %s: %w", s.Name, err)
	}
	if err := a.Run(); err != nil {
		return 0, 0, nil, fmt.Errorf("experiments %s: %w", s.Name, err)
	}
	out := s.Net.Lookup(s.Output)
	ev := a.Arrival(out, s.OutTr)
	if !ev.Valid {
		return 0, 0, nil, fmt.Errorf("experiments %s: no %s arrival at %s under model %s",
			s.Name, s.OutTr, s.Output, m.Name())
	}
	return ev.T, ev.Slope, a.StageDB(), nil
}
