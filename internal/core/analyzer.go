// Package core is the timing verifier: the Crystal-style worst-case
// analyzer that propagates latest rise/fall times (with slopes) through a
// switch-level network using a pluggable delay model, and traces the
// critical paths.
//
// The analysis is vectorless. Each node carries two worst-case events —
// the latest time it can finish rising and the latest time it can finish
// falling. Chip inputs are seeded by the user; events then propagate:
//
//   - a gate event that turns a transistor ON evaluates every stage whose
//     path runs through that transistor (package stage enumerates them);
//   - a gate event that turns a transistor OFF releases its channel nodes,
//     which may now move toward whatever still drives them (the classic
//     nMOS case: output rises through the depletion load after the
//     pulldown shuts off);
//   - an input's own transition propagates through already-conducting
//     pass transistors.
//
// Static sensitization from the switch-level simulator prunes stages
// through definitely-off transistors and transitions to values a node
// already holds. Everything else is worst case, as in the paper.
package core

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stage"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// Event is a worst-case arrival: node n finishes transition tr at time T
// (50% crossing) with 10–90% transition time Slope.
type Event struct {
	T     float64
	Slope float64
	Valid bool

	// Provenance for path tracing.
	FromNode int             // predecessor node index, -1 for seeded inputs
	FromTr   tech.Transition // predecessor transition
	Via      *stage.Stage    // stage that produced this event (nil if seeded)
}

// Options tunes the analysis.
type Options struct {
	// Stage bounds path enumeration (see stage.Options).
	Stage stage.Options
	// MaxEventsPerNode guards against combinational feedback: after this
	// many propagation rounds from one node's arrival the analyzer stops
	// propagating it and records the node in Unbounded (default 150 —
	// deep ripple structures legitimately re-propagate tens of times
	// during longest-path relaxation).
	MaxEventsPerNode int
	// DefaultSlope is the transition time assumed for seeded inputs that
	// do not specify one (default 1 ns).
	DefaultSlope float64
	// NoStaticPruning disables the switch-level sensitization pruning,
	// yielding the fully pessimistic analysis (ablation knob).
	NoStaticPruning bool
	// LoopBreak lists nodes whose events are recorded but not propagated
	// further — the user directive Crystal required to cut combinational
	// feedback (latch internals) out of the worst-case iteration.
	LoopBreak []*netlist.Node
}

func (o Options) fill() Options {
	if o.MaxEventsPerNode <= 0 {
		o.MaxEventsPerNode = 150
	}
	if o.DefaultSlope <= 0 {
		o.DefaultSlope = 1e-9
	}
	return o
}

// Analyzer performs worst-case timing analysis of one network with one
// delay model. Build with New, seed inputs, then Run.
type Analyzer struct {
	Net   *netlist.Network
	Model delay.Model
	Opts  Options

	sim    *switchsim.Sim
	static []switchsim.Value // settled values under fixed inputs

	events [][2]Event // per node: [Rise, Fall]
	count  [][2]int   // improvement counters

	// Unbounded lists nodes whose arrival kept improving past the guard
	// (combinational feedback); their times are lower bounds only.
	Unbounded []*netlist.Node
	// Truncated reports that stage enumeration hit a cap somewhere.
	Truncated bool

	seeded       []seedEvent
	fixed        map[int]switchsim.Value
	initial      []switchsim.Value // pre-settle stored values (clocked analyses)
	loopBreak    map[int]bool
	cachedOracle stage.Oracle
	queue        eventHeap
	queued       map[qkey]bool
	stageEv      int // stages evaluated (cost metric)

	// Stage enumeration caches: sensitization is static during Run, so a
	// trigger's stages never change. Keys combine element index and
	// transition; release stages also key on the released node.
	throughCache map[[2]int][]*stage.Stage
	releaseCache map[[2]int][]*stage.Stage
	fromCache    map[[2]int][]*stage.Stage
	groupCache   map[int][]*netlist.Node
}

type seedEvent struct {
	node  *netlist.Node
	tr    tech.Transition
	t     float64
	slope float64
}

type qkey struct {
	node int
	tr   tech.Transition
}

// qitem is a pending propagation in the event heap, stamped with the
// arrival time it was queued at (stale entries are skipped at pop).
type qitem struct {
	qkey
	t float64
}

// eventHeap is a min-heap of pending propagations ordered by arrival time.
type eventHeap []qitem

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(qitem)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// New creates an analyzer for the network using the given delay model.
func New(nw *netlist.Network, m delay.Model, opts Options) *Analyzer {
	return &Analyzer{
		Net:   nw,
		Model: m,
		Opts:  opts.fill(),
		fixed: make(map[int]switchsim.Value),
	}
}

// SetFixed pins a node to a constant logic value for sensitization (e.g. a
// mode or enable input that does not toggle in the analyzed scenario).
func (a *Analyzer) SetFixed(n *netlist.Node, v switchsim.Value) {
	a.fixed[n.Index] = v
}

// SetInputEvent seeds a worst-case transition on a chip input: node n
// finishes transition tr at time t with the given 10–90% slope (0 selects
// Options.DefaultSlope).
func (a *Analyzer) SetInputEvent(n *netlist.Node, tr tech.Transition, t, slope float64) error {
	if n.Kind != netlist.KindInput {
		return fmt.Errorf("core: %s is not marked as an input", n.Name)
	}
	if slope <= 0 {
		slope = a.Opts.DefaultSlope
	}
	a.seeded = append(a.seeded, seedEvent{n, tr, t, slope})
	return nil
}

// SetInputEventName is SetInputEvent by node name.
func (a *Analyzer) SetInputEventName(name string, tr tech.Transition, t, slope float64) error {
	n := a.Net.Lookup(name)
	if n == nil {
		return fmt.Errorf("core: no node named %q", name)
	}
	return a.SetInputEvent(n, tr, t, slope)
}

// Arrival returns the worst-case event for node n and transition tr.
func (a *Analyzer) Arrival(n *netlist.Node, tr tech.Transition) Event {
	if a.events == nil {
		return Event{}
	}
	return a.events[n.Index][tr]
}

// StagesEvaluated reports how many stage/model evaluations Run performed —
// the throughput metric of experiment E6.
func (a *Analyzer) StagesEvaluated() int { return a.stageEv }

// oracle returns the sensitization oracle, building it from settled
// static values on first use (one closure per Run, not per event).
func (a *Analyzer) oracle() stage.Oracle {
	if a.Opts.NoStaticPruning || a.static == nil {
		return nil // worst case
	}
	if a.cachedOracle != nil {
		return a.cachedOracle
	}
	a.cachedOracle = func(t *netlist.Trans) stage.Conduction {
		if t.AlwaysOn() {
			return stage.On
		}
		g := a.static[t.Gate.Index]
		if g == switchsim.VX {
			return stage.Maybe
		}
		on := switchsim.FromBool(t.ConductsOn() == 1)
		if g == on {
			return stage.On
		}
		return stage.Off
	}
	return a.cachedOracle
}

// Run executes the analysis. It may be called once per analyzer.
func (a *Analyzer) Run() error {
	if a.events != nil {
		return fmt.Errorf("core: Run already called")
	}
	if len(a.seeded) == 0 {
		return fmt.Errorf("core: no input events seeded")
	}
	nw := a.Net
	a.events = make([][2]Event, len(nw.Nodes))
	a.count = make([][2]int, len(nw.Nodes))
	a.queued = make(map[qkey]bool)
	a.loopBreak = make(map[int]bool, len(a.Opts.LoopBreak))
	for _, n := range a.Opts.LoopBreak {
		a.loopBreak[n.Index] = true
	}
	a.throughCache = make(map[[2]int][]*stage.Stage)
	a.releaseCache = make(map[[2]int][]*stage.Stage)
	a.fromCache = make(map[[2]int][]*stage.Stage)
	a.groupCache = make(map[int][]*netlist.Node)

	// Static sensitization: settle the network with fixed values; nodes
	// that receive events are left at X (they change during analysis).
	a.sim = switchsim.New(nw)
	for idx, v := range a.fixed {
		if err := a.sim.SetInput(nw.Nodes[idx], v); err != nil {
			return err
		}
	}
	// Carried state (clocked analyses): seed stored values before the
	// settle so latched nodes keep their phase-boundary levels.
	if a.initial != nil {
		for idx, v := range a.initial {
			n := nw.Nodes[idx]
			if n.IsRail() {
				continue
			}
			if _, isFixed := a.fixed[idx]; isFixed {
				continue
			}
			if err := a.sim.SetValue(n, v); err != nil {
				return err
			}
		}
	}
	a.sim.Settle()
	a.static = a.sim.Snapshot()
	// Nodes downstream of event inputs cannot be trusted as static: the
	// seeded inputs toggle. Re-settle with those inputs at X.
	for _, s := range a.seeded {
		if _, isFixed := a.fixed[s.node.Index]; isFixed {
			return fmt.Errorf("core: node %s both fixed and seeded", s.node.Name)
		}
		if err := a.sim.SetInput(s.node, switchsim.VX); err != nil {
			return err
		}
	}
	a.sim.Settle()
	a.static = a.sim.Snapshot()

	for _, s := range a.seeded {
		a.improve(s.node.Index, s.tr, Event{
			T: s.t, Slope: s.slope, Valid: true, FromNode: -1,
		})
	}

	for a.queue.Len() > 0 {
		// Pop the earliest pending event: processing in time order makes
		// most improvements final on first visit — longest-path over a
		// DAG degenerates to one visit per node; reconvergence and
		// cycles re-queue. The heap holds stale entries (an improvement
		// re-pushes with the new time); only an entry matching the
		// node's current arrival is live.
		it := heap.Pop(&a.queue).(qitem)
		if !a.queued[it.qkey] || it.t != a.events[it.node][it.tr].T {
			continue // stale: a fresher entry is in the heap
		}
		a.queued[it.qkey] = false
		// Feedback guard: counts propagation rounds, not improvements,
		// so deep longest-path relaxation is unaffected while true
		// cycles (which re-queue forever) are cut off.
		a.count[it.node][it.tr]++
		if a.count[it.node][it.tr] > a.Opts.MaxEventsPerNode {
			if a.count[it.node][it.tr] == a.Opts.MaxEventsPerNode+1 {
				a.Unbounded = append(a.Unbounded, a.Net.Nodes[it.node])
			}
			continue
		}
		a.propagate(it.node, it.tr)
	}
	return nil
}

// improve records a candidate event if it is later than the current one,
// and queues the node for propagation. Returns whether it improved.
func (a *Analyzer) improve(node int, tr tech.Transition, ev Event) bool {
	cur := &a.events[node][tr]
	if cur.Valid && ev.T <= cur.T {
		return false
	}
	n := a.Net.Nodes[node]
	if n.IsRail() {
		return false
	}
	// Static pruning: a node pinned at a definite value cannot complete
	// a transition to the opposite value... unless that value came from
	// a precharge assumption (it is exactly what evaluation discharges).
	if !a.Opts.NoStaticPruning {
		sv := a.static[node]
		want := switchsim.V1
		if tr == tech.Fall {
			want = switchsim.V0
		}
		if sv != switchsim.VX && sv != want && !n.Precharged {
			return false
		}
	}
	*cur = ev
	k := qkey{node, tr}
	// Always push: the heap tolerates stale entries (skipped at pop),
	// and the new arrival time needs its own priority.
	a.queued[k] = true
	heap.Push(&a.queue, qitem{k, ev.T})
	return true
}

// propagate fans an event out to its consequences.
func (a *Analyzer) propagate(node int, tr tech.Transition) {
	nw := a.Net
	n := nw.Nodes[node]
	if a.loopBreak[node] {
		return // user directive: record the arrival, cut the fanout
	}
	ev := a.events[node][tr]
	if !ev.Valid {
		return
	}
	opt := a.Opts.Stage
	opt.Oracle = a.oracle()

	// 1. Gate consequences.
	for _, t := range n.Gates {
		if t.AlwaysOn() {
			continue // depletion devices do not respond to their gate
		}
		turnsOn := (tr == tech.Rise) == (t.ConductsOn() == 1)
		if turnsOn {
			for _, targetTr := range []tech.Transition{tech.Rise, tech.Fall} {
				key := [2]int{t.Index, int(targetTr)}
				stages, ok := a.throughCache[key]
				if !ok {
					res := stage.Through(nw, t, targetTr, opt)
					a.Truncated = a.Truncated || res.Truncated
					stages = res.Stages
					a.throughCache[key] = stages
				}
				for _, st := range stages {
					a.applyStage(st, node, tr, ev)
				}
			}
		} else {
			// Release: every node channel-connected to the switched-off
			// device may drift toward its remaining drivers (the NAND
			// output released by a mid-stack input sits several hops
			// from the device itself).
			group, ok := a.groupCache[t.Index]
			if !ok {
				group = a.channelGroup(t)
				a.groupCache[t.Index] = group
			}
			for _, m := range group {
				for _, targetTr := range []tech.Transition{tech.Rise, tech.Fall} {
					// Cache drive paths per (node, transition) — NOT per
					// switched-off device: the same path set serves every
					// release of the group, with paths through the off
					// device filtered at apply time. (Enumerating per
					// device multiplied the dominant stage-construction
					// cost by the channel-group size.)
					key := [2]int{m.Index, int(targetTr)}
					stages, ok := a.releaseCache[key]
					if !ok {
						res := stage.ToNode(nw, m, targetTr, opt)
						a.Truncated = a.Truncated || res.Truncated
						stages = res.Stages
						a.releaseCache[key] = stages
					}
					for _, st := range stages {
						if stageUses(st, t) {
							continue // that path died with the device
						}
						a.applyStage(st, node, tr, ev)
					}
				}
			}
		}
	}

	// 2. Channel consequences: an externally seeded input's own level
	// change rides through already-conducting pass devices. Internal
	// nodes do NOT re-propagate through the channel graph here — the
	// stages that produced their events already targeted every node of
	// the driven group, and re-propagating would bounce arrivals back
	// and forth across channel-connected pairs forever.
	if n.Kind == netlist.KindInput && len(n.Terms) > 0 {
		key := [2]int{node, int(tr)}
		stages, ok := a.fromCache[key]
		if !ok {
			res := stage.FromNode(nw, n, tr, opt)
			a.Truncated = a.Truncated || res.Truncated
			stages = res.Stages
			a.fromCache[key] = stages
		}
		for _, st := range stages {
			a.applyStage(st, node, tr, ev)
		}
	}
}

// channelGroup returns the non-source nodes channel-connected to either
// terminal of t through possibly-conducting transistors (t itself
// excluded), without expanding through strong sources.
func (a *Analyzer) channelGroup(t *netlist.Trans) []*netlist.Node {
	oracle := a.oracle()
	seen := make(map[*netlist.Node]bool)
	var out []*netlist.Node
	var q []*netlist.Node
	for _, m := range []*netlist.Node{t.A, t.B} {
		if !m.IsSource() && !seen[m] {
			seen[m] = true
			out = append(out, m)
			q = append(q, m)
		}
	}
	for len(q) > 0 {
		n := q[0]
		q = q[1:]
		for _, tr := range n.Terms {
			if tr == t {
				continue
			}
			if oracle != nil && oracle(tr) == stage.Off {
				continue
			}
			o := tr.Other(n)
			if o == nil || seen[o] || o.IsSource() {
				continue
			}
			seen[o] = true
			out = append(out, o)
			q = append(q, o)
		}
	}
	return out
}

// stageUses reports whether the stage's path runs through transistor t.
func stageUses(st *stage.Stage, t *netlist.Trans) bool {
	for _, e := range st.Path {
		if e.Trans == t {
			return true
		}
	}
	return false
}

// applyStage evaluates one stage against the triggering event and records
// the resulting arrival at the stage target.
func (a *Analyzer) applyStage(st *stage.Stage, fromNode int, fromTr tech.Transition, ev Event) {
	// Source validity: an input-fed stage needs the source to plausibly
	// hold the driving value; rails were filtered by the enumerator.
	if st.Source.Kind == netlist.KindInput && !a.Opts.NoStaticPruning {
		sv := a.static[st.Source.Index]
		want := switchsim.V1
		if st.Transition == tech.Fall {
			want = switchsim.V0
		}
		if sv != switchsim.VX && sv != want {
			return
		}
	}
	a.stageEv++
	r := a.Model.Evaluate(a.Net, st, ev.Slope)
	if math.IsNaN(r.Delay) || r.Delay < 0 {
		return
	}
	a.improve(st.Target.Index, st.Transition, Event{
		T:        ev.T + r.Delay,
		Slope:    r.Slope,
		Valid:    true,
		FromNode: fromNode,
		FromTr:   fromTr,
		Via:      st,
	})
}

// Hop is one step of a traced critical path.
type Hop struct {
	Node  *netlist.Node
	Tr    tech.Transition
	Event Event
}

// Path is a traced critical path, listed from the seeding input to the
// endpoint.
type Path struct {
	Hops []Hop
}

// End returns the endpoint hop.
func (p *Path) End() Hop { return p.Hops[len(p.Hops)-1] }

// Trace reconstructs the worst-case path ending at (n, tr), or nil if the
// node has no arrival.
func (a *Analyzer) Trace(n *netlist.Node, tr tech.Transition) *Path {
	ev := a.Arrival(n, tr)
	if !ev.Valid {
		return nil
	}
	var rev []Hop
	node, t := n.Index, tr
	seen := make(map[qkey]bool)
	for {
		k := qkey{node, t}
		if seen[k] {
			// Provenance cycle (possible when the feedback guard fired
			// mid-analysis): truncate the trace here.
			break
		}
		seen[k] = true
		e := a.events[node][t]
		rev = append(rev, Hop{a.Net.Nodes[node], t, e})
		if e.FromNode < 0 {
			break
		}
		node, t = e.FromNode, e.FromTr
	}
	p := &Path{Hops: make([]Hop, len(rev))}
	for i, h := range rev {
		p.Hops[len(rev)-1-i] = h
	}
	return p
}

// CriticalPathsThrough returns the critical paths (as CriticalPaths) that
// pass through the given node — Crystal's "why is this net late" query.
func (a *Analyzer) CriticalPathsThrough(n *netlist.Node, k int) []*Path {
	all := a.CriticalPaths(0)
	var out []*Path
	for _, p := range all {
		for _, h := range p.Hops {
			if h.Node == n {
				out = append(out, p)
				break
			}
		}
		if k > 0 && len(out) >= k {
			break
		}
	}
	return out
}

// CriticalPaths returns the k latest-arriving endpoint events, traced.
// Endpoints are the watched outputs if any are marked, otherwise every
// non-rail node.
func (a *Analyzer) CriticalPaths(k int) []*Path {
	var ends []*netlist.Node
	if outs := a.Net.Outputs(); len(outs) > 0 {
		ends = outs
	} else {
		for _, n := range a.Net.Nodes {
			if !n.IsRail() && n.Kind != netlist.KindInput {
				ends = append(ends, n)
			}
		}
	}
	type cand struct {
		n  *netlist.Node
		tr tech.Transition
		t  float64
	}
	var cs []cand
	for _, n := range ends {
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			if ev := a.Arrival(n, tr); ev.Valid {
				cs = append(cs, cand{n, tr, ev.T})
			}
		}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].t != cs[j].t {
			return cs[i].t > cs[j].t
		}
		if cs[i].n.Name != cs[j].n.Name {
			return cs[i].n.Name < cs[j].n.Name
		}
		return cs[i].tr < cs[j].tr
	})
	if k > 0 && len(cs) > k {
		cs = cs[:k]
	}
	var out []*Path
	for _, c := range cs {
		if p := a.Trace(c.n, c.tr); p != nil {
			out = append(out, p)
		}
	}
	return out
}
