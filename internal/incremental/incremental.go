// Package incremental implements the edit-journal side of Crystal's
// designer loop: change the netlist, re-verify timing, repeat — without
// throwing away the stage database or the arrival cones the edit did not
// touch.
//
// The engine is generational. Apply never mutates the network it is
// given: it clones it (O(n), far below one analysis), applies the edits
// to the clone, and reports which nodes and transistors the batch
// perturbed. Plan then widens those seeds to whole channel-connected
// groups — the unit of stage enumeration — and splits dirtiness in two:
//
//   - db-dirty groups, whose stage enumerations (and therefore stage.DB
//     entries) are stale: groups with a structural or geometric edit, and
//     groups containing a transistor whose gate's settled static value
//     changed (sensitization feeds enumeration);
//   - time-dirty groups, the downstream closure of the db-dirty set over
//     gate-fanout edges: their enumerations are intact but their arrival
//     times may have moved in either direction, so the analyzer must
//     reset and re-propagate them.
//
// Everything outside the time-dirty closure keeps both its stage.DB
// entries and its arrival times; the differential fuzz test pins the
// combined result bit-identical to a from-scratch analysis.
package incremental

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// Kind enumerates journal operations.
type Kind int

const (
	// AddTrans inserts a transistor (creating named nodes as needed).
	AddTrans Kind = iota
	// RemoveTrans deletes the transistor at Index (current indexing).
	RemoveTrans
	// Resize changes the W/L of the transistor at Index.
	Resize
	// AddCap adds capacitance to the named node (creating it if absent).
	AddCap
	// Retype changes the named node's kind (input/output/normal). A
	// retype changes which nodes count as strong sources, which reshapes
	// every channel group it borders — Plan forces a full re-analysis.
	Retype
)

// String names the edit kind.
func (k Kind) String() string {
	switch k {
	case AddTrans:
		return "add"
	case RemoveTrans:
		return "del"
	case Resize:
		return "resize"
	case AddCap:
		return "cap"
	case Retype:
		return "retype"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Edit is one journal entry. Node references are by name (stable across
// generations); transistor references are by index under the journal's
// current indexing — i.e. indexes observed after the preceding edits in
// the same batch, matching what RemoveTrans compaction leaves behind.
type Edit struct {
	Kind Kind

	// AddTrans fields.
	Dev        tech.Device
	Gate, A, B string
	// W, L: geometry in meters for AddTrans and Resize; non-positive
	// values select the technology minima (AddTrans) or keep the current
	// value (Resize).
	W, L float64
	// R is the wire resistance in ohms when Dev == tech.RWire.
	R float64

	// Index targets RemoveTrans and Resize.
	Index int

	// Node names the target of AddCap and Retype.
	Node string
	// Cap is the capacitance to add in farads (AddCap). Negative values
	// subtract, clamped at zero total explicit capacitance.
	Cap float64
	// NodeKind is the new kind for Retype (input, output or normal).
	NodeKind netlist.NodeKind
}

// Result is one applied edit batch: the next network generation plus the
// bookkeeping Plan needs to compute invalidation.
type Result struct {
	// Net is the edited clone. The network passed to Apply is untouched.
	Net *netlist.Network
	// OldTrans maps new transistor indexes to the previous generation's
	// indexes (-1 for transistors added by this batch). Node indexes are
	// stable across every edit kind, so nodes need no map.
	OldTrans []int

	seedNodes map[int]bool // new-generation node indexes the batch touched
	seedTrans map[int]bool // new-generation transistor indexes to force-dirty
	forceFull bool         // a Retype was applied
	oldNodes  int          // node count of the previous generation
}

// Apply clones nw, applies the edits in order, and returns the new
// generation. On error the clone is discarded and nw is (as always)
// unmodified.
func Apply(nw *netlist.Network, edits []Edit) (*Result, error) {
	res := &Result{
		Net:       nw.Clone(),
		OldTrans:  make([]int, len(nw.Trans)),
		seedNodes: make(map[int]bool),
		seedTrans: make(map[int]bool),
		oldNodes:  len(nw.Nodes),
	}
	for i := range res.OldTrans {
		res.OldTrans[i] = i
	}
	for i, e := range edits {
		if err := res.apply(e); err != nil {
			return nil, fmt.Errorf("incremental: edit %d (%s): %w", i, e.Kind, err)
		}
	}
	return res, nil
}

// seedTransistor marks a device and its terminals perturbed.
func (r *Result) seedTransistor(t *netlist.Trans) {
	r.seedTrans[t.Index] = true
	r.seedNodes[t.Gate.Index] = true
	r.seedNodes[t.A.Index] = true
	r.seedNodes[t.B.Index] = true
}

func (r *Result) apply(e Edit) error {
	nw := r.Net
	switch e.Kind {
	case AddTrans:
		if e.A == "" || e.B == "" {
			return fmt.Errorf("missing terminal name")
		}
		if e.Gate == "" && e.Dev != tech.RWire {
			return fmt.Errorf("missing gate name")
		}
		if e.Dev == tech.PEnh && !nw.Tech.HasPChannel() {
			return fmt.Errorf("p-channel device in technology %s", nw.Tech.Name)
		}
		a, b := nw.Node(e.A), nw.Node(e.B)
		var gate *netlist.Node
		if e.Dev != tech.RWire {
			gate = nw.Node(e.Gate)
		}
		if (a.Kind == netlist.KindVdd && b.Kind == netlist.KindGnd) ||
			(a.Kind == netlist.KindGnd && b.Kind == netlist.KindVdd) {
			return fmt.Errorf("device would short the supplies")
		}
		var t *netlist.Trans
		if e.Dev == tech.RWire {
			if e.R <= 0 {
				return fmt.Errorf("wire resistor needs positive resistance")
			}
			t = nw.AddResistor(a, b, e.R)
		} else {
			t = nw.AddTrans(e.Dev, gate, a, b, e.W, e.L)
		}
		r.OldTrans = append(r.OldTrans, -1)
		r.seedTransistor(t)
	case RemoveTrans:
		if e.Index < 0 || e.Index >= len(nw.Trans) {
			return fmt.Errorf("transistor index %d out of range [0,%d)", e.Index, len(nw.Trans))
		}
		t := nw.Trans[e.Index]
		r.seedTrans[e.Index] = true // the index now names whatever moves in
		r.seedNodes[t.Gate.Index] = true
		r.seedNodes[t.A.Index] = true
		r.seedNodes[t.B.Index] = true
		moved := nw.RemoveTrans(t)
		last := len(nw.Trans) // index the moved device vacated
		if moved != nil {
			// The swapped-in device changes index: its memoized stages
			// carry the old index, so it and its groups must re-enumerate.
			r.OldTrans[e.Index] = r.OldTrans[last]
			r.seedTransistor(moved)
		}
		r.OldTrans = r.OldTrans[:last]
	case Resize:
		if e.Index < 0 || e.Index >= len(nw.Trans) {
			return fmt.Errorf("transistor index %d out of range [0,%d)", e.Index, len(nw.Trans))
		}
		t := nw.Trans[e.Index]
		if t.IsWire() {
			return fmt.Errorf("cannot resize wire resistor %d", e.Index)
		}
		if e.W > 0 {
			t.W = e.W
		}
		if e.L > 0 {
			t.L = e.L
		}
		r.seedTransistor(t)
	case AddCap:
		if e.Node == "" {
			return fmt.Errorf("missing node name")
		}
		n := nw.Node(e.Node)
		n.Cap += e.Cap
		if n.Cap < 0 {
			n.Cap = 0
		}
		r.seedNodes[n.Index] = true
	case Retype:
		if e.Node == "" {
			return fmt.Errorf("missing node name")
		}
		n := nw.Lookup(e.Node)
		if n == nil {
			return fmt.Errorf("no node named %q", e.Node)
		}
		if n.IsRail() {
			return fmt.Errorf("cannot retype rail %s", n.Name)
		}
		switch e.NodeKind {
		case netlist.KindInput, netlist.KindOutput, netlist.KindNormal:
			n.Kind = e.NodeKind
		default:
			return fmt.Errorf("bad node kind %v", e.NodeKind)
		}
		r.seedNodes[n.Index] = true
		r.forceFull = true
	default:
		return fmt.Errorf("unknown edit kind %v", e.Kind)
	}
	return nil
}
