// Benchmark circuit generators: the small accuracy-suite circuits of
// experiment E2 plus the datapath blocks of E6/E7.
package gen

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// InverterChain builds n inverters in series, each loaded with `fanout`
// extra gate loads. Ports: input "in", output "out".
func InverterChain(p *tech.Params, n, fanout int) (*netlist.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: inverter chain needs n >= 1, got %d", n)
	}
	l := NewLib(fmt.Sprintf("invchain-%d", n), p)
	in := l.NW.Node("in")
	l.NW.MarkInput(in)
	prev := in
	for i := 0; i < n; i++ {
		var next *netlist.Node
		if i == n-1 {
			next = l.NW.Node("out")
		} else {
			next = l.NW.Node(fmt.Sprintf("s%d", i+1))
		}
		l.Inverter(prev, next, 1)
		// Extra fan-out loads: dummy inverters whose outputs dangle.
		for f := 0; f < fanout; f++ {
			l.Inverter(next, l.Fresh("load"), 1)
		}
		prev = next
	}
	l.NW.MarkOutput(l.NW.Node("out"))
	return l.NW, nil
}

// FanoutInverter builds one inverter driving n parallel inverter loads.
// Ports: "in", loads "f0".."f(n-1)" (outputs of the loads are dangling);
// the driven node is "out".
func FanoutInverter(p *tech.Params, n int) (*netlist.Network, error) {
	if n < 0 {
		return nil, fmt.Errorf("gen: negative fanout %d", n)
	}
	l := NewLib(fmt.Sprintf("fanout-%d", n), p)
	in, out := l.NW.Node("in"), l.NW.Node("out")
	l.NW.MarkInput(in)
	l.NW.MarkOutput(out)
	l.Inverter(in, out, 1)
	for i := 0; i < n; i++ {
		l.Inverter(out, l.NW.Node(fmt.Sprintf("f%d", i)), 1)
	}
	return l.NW, nil
}

// PassChain builds a chain of n pass transistors from input "in" to output
// "out", all gated by input "ctl", each intermediate node carrying a gate
// load. The canonical distributed-RC structure of experiment E3.
func PassChain(p *tech.Params, n int) (*netlist.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: pass chain needs n >= 1, got %d", n)
	}
	l := NewLib(fmt.Sprintf("passchain-%d", n), p)
	in, ctl := l.NW.Node("in"), l.NW.Node("ctl")
	l.NW.MarkInput(in)
	l.NW.MarkInput(ctl)
	prev := in
	for i := 0; i < n; i++ {
		var next *netlist.Node
		if i == n-1 {
			next = l.NW.Node("out")
		} else {
			next = l.NW.Node(fmt.Sprintf("p%d", i+1))
		}
		t := l.NW.AddTrans(tech.NEnh, ctl, prev, next, p.MinW, p.MinL)
		t.Flow = netlist.FlowAB // signal flows in→out
		prev = next
	}
	out := l.NW.Node("out")
	l.NW.MarkOutput(out)
	// Terminate in an inverter so the output is restored, as a designer
	// would.
	l.Inverter(out, l.Fresh("restored"), 1)
	return l.NW, nil
}

// Superbuffer builds the classic two-stage driver: "in" through a
// superbuffer into a large capacitive load "out" (ten gate loads).
func Superbuffer(p *tech.Params) (*netlist.Network, error) {
	l := NewLib("superbuffer", p)
	in, out := l.NW.Node("in"), l.NW.Node("out")
	l.NW.MarkInput(in)
	l.NW.MarkOutput(out)
	l.Buffer(in, out, 4)
	for i := 0; i < 10; i++ {
		l.Inverter(out, l.Fresh("load"), 1)
	}
	return l.NW, nil
}

// PrechargedBus builds a bus node "bus" with heavy wiring capacitance,
// precharged high, discharged by n driver pulldowns gated by inputs
// "en0".."en(n-1)". The bus feeds an output inverter "out".
func PrechargedBus(p *tech.Params, n int) (*netlist.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: bus needs at least one driver, got %d", n)
	}
	l := NewLib(fmt.Sprintf("bus-%d", n), p)
	bus := l.NW.Node("bus")
	bus.Precharged = true
	l.NW.AddCap(bus, 0.5e-12) // long wire
	for i := 0; i < n; i++ {
		en := l.NW.Node(fmt.Sprintf("en%d", i))
		l.NW.MarkInput(en)
		// Two-high stack: enable AND data (data tied to another input).
		d := l.NW.Node(fmt.Sprintf("d%d", i))
		l.NW.MarkInput(d)
		mid := l.Fresh("stk")
		l.NW.AddTrans(tech.NEnh, en, bus, mid, 2*p.MinW, p.MinL)
		l.NW.AddTrans(tech.NEnh, d, mid, l.NW.GND(), 2*p.MinW, p.MinL)
	}
	out := l.NW.Node("out")
	l.NW.MarkOutput(out)
	l.Inverter(bus, out, 2)
	return l.NW, nil
}

// RippleAdder builds a w-bit ripple-carry adder from gate-level full
// adders. Ports: "a0".."a(w-1)", "b0".."b(w-1)", "cin"; outputs
// "s0".."s(w-1)", "cout".
func RippleAdder(p *tech.Params, w int) (*netlist.Network, error) {
	if w < 1 {
		return nil, fmt.Errorf("gen: adder width must be >= 1, got %d", w)
	}
	l := NewLib(fmt.Sprintf("ripple-%d", w), p)
	carry := l.NW.Node("cin")
	l.NW.MarkInput(carry)
	for i := 0; i < w; i++ {
		a := l.NW.Node(fmt.Sprintf("a%d", i))
		b := l.NW.Node(fmt.Sprintf("b%d", i))
		l.NW.MarkInput(a)
		l.NW.MarkInput(b)
		s := l.NW.Node(fmt.Sprintf("s%d", i))
		l.NW.MarkOutput(s)
		var cout *netlist.Node
		if i == w-1 {
			cout = l.NW.Node("cout")
			l.NW.MarkOutput(cout)
		} else {
			cout = l.NW.Node(fmt.Sprintf("c%d", i+1))
		}
		l.FullAdder(s, cout, a, b, carry)
		carry = cout
	}
	return l.NW, nil
}

// ManchesterAdder builds a w-bit Manchester carry-chain adder: per-bit
// propagate/generate logic drives a precharged pass-transistor carry
// chain — the pass-transistor-heavy structure that motivated the
// distributed model. Ports as RippleAdder, plus "phi" (precharge clock).
func ManchesterAdder(p *tech.Params, w int) (*netlist.Network, error) {
	if w < 1 {
		return nil, fmt.Errorf("gen: adder width must be >= 1, got %d", w)
	}
	l := NewLib(fmt.Sprintf("manchester-%d", w), p)
	phi := l.NW.Node("phi")
	l.NW.MarkInput(phi)
	cin := l.NW.Node("cin")
	l.NW.MarkInput(cin)
	// Carry-bar chain: cb[i] is low when a carry enters bit i.
	carry := cin
	for i := 0; i < w; i++ {
		a := l.NW.Node(fmt.Sprintf("a%d", i))
		b := l.NW.Node(fmt.Sprintf("b%d", i))
		l.NW.MarkInput(a)
		l.NW.MarkInput(b)
		prop := l.Fresh("p")
		gen := l.Fresh("g")
		l.Xor(prop, a, b)
		l.And(gen, a, b)
		var next *netlist.Node
		if i == w-1 {
			next = l.NW.Node("cout")
			l.NW.MarkOutput(next)
		} else {
			next = l.NW.Node(fmt.Sprintf("c%d", i+1))
		}
		next.Precharged = true
		// Precharge device (clocked pullup).
		if p.HasPChannel() {
			l.NW.AddTrans(tech.PEnh, phi, next, l.NW.Vdd(), 2*p.MinW, p.MinL)
		} else {
			l.NW.AddTrans(tech.NEnh, phi, next, l.NW.Vdd(), 2*p.MinW, p.MinL)
		}
		// Generate: pull the next carry node active.
		l.NW.AddTrans(tech.NEnh, gen, next, l.NW.GND(), 2*p.MinW, p.MinL)
		// Propagate: pass the incoming carry along the chain.
		t := l.NW.AddTrans(tech.NEnh, prop, carry, next, 2*p.MinW, p.MinL)
		t.Flow = netlist.FlowAB
		// Sum output.
		s := l.NW.Node(fmt.Sprintf("s%d", i))
		l.NW.MarkOutput(s)
		l.Xor(s, prop, carry)
		carry = next
	}
	return l.NW, nil
}

// BarrelShifter builds a w-bit pass-transistor barrel shifter: output j
// connects to input (j+k) mod w through a pass device gated by the
// one-hot shift-select "sh0".."sh(w-1)". Ports: "in0".."in(w-1)" and the
// selects as inputs; "out0".."out(w-1)" as outputs.
func BarrelShifter(p *tech.Params, w int) (*netlist.Network, error) {
	if w < 2 {
		return nil, fmt.Errorf("gen: shifter width must be >= 2, got %d", w)
	}
	l := NewLib(fmt.Sprintf("barrel-%d", w), p)
	ins := make([]*netlist.Node, w)
	outs := make([]*netlist.Node, w)
	for i := 0; i < w; i++ {
		ins[i] = l.NW.Node(fmt.Sprintf("in%d", i))
		l.NW.MarkInput(ins[i])
		outs[i] = l.NW.Node(fmt.Sprintf("out%d", i))
		l.NW.MarkOutput(outs[i])
	}
	for k := 0; k < w; k++ {
		sh := l.NW.Node(fmt.Sprintf("sh%d", k))
		l.NW.MarkInput(sh)
		for j := 0; j < w; j++ {
			t := l.NW.AddTrans(tech.NEnh, sh, ins[(j+k)%w], outs[j], p.MinW, p.MinL)
			t.Flow = netlist.FlowAB // data flows input → output
		}
	}
	return l.NW, nil
}

// Decoder builds an n-to-2^n decoder: inverters for complements plus one
// n-input NOR per output. Ports: "a0".."a(n-1)"; outputs "y0".."y(2^n-1)".
func Decoder(p *tech.Params, n int) (*netlist.Network, error) {
	if n < 1 || n > 8 {
		return nil, fmt.Errorf("gen: decoder supports 1..8 address bits, got %d", n)
	}
	l := NewLib(fmt.Sprintf("decoder-%d", n), p)
	addr := make([]*netlist.Node, n)
	addrB := make([]*netlist.Node, n)
	for i := 0; i < n; i++ {
		addr[i] = l.NW.Node(fmt.Sprintf("a%d", i))
		l.NW.MarkInput(addr[i])
		addrB[i] = l.NW.Node(fmt.Sprintf("ab%d", i))
		l.Inverter(addr[i], addrB[i], 1)
	}
	for v := 0; v < 1<<n; v++ {
		y := l.NW.Node(fmt.Sprintf("y%d", v))
		l.NW.MarkOutput(y)
		ins := make([]*netlist.Node, n)
		for i := 0; i < n; i++ {
			// NOR output is high when every selected line is low, so
			// feed the line that is low when bit i of v matches.
			if v&(1<<i) != 0 {
				ins[i] = addrB[i]
			} else {
				ins[i] = addr[i]
			}
		}
		l.Nor(y, ins...)
	}
	return l.NW, nil
}

// ALU builds a w-bit function unit: per-bit AND, OR, XOR and a ripple ADD,
// selected by one-hot controls "fand", "for", "fxor", "fadd" through pass
// muxes, with a buffered output. Ports: "a0".., "b0".., "cin"; outputs
// "r0".."r(w-1)", "cout".
func ALU(p *tech.Params, w int) (*netlist.Network, error) {
	if w < 1 {
		return nil, fmt.Errorf("gen: ALU width must be >= 1, got %d", w)
	}
	l := NewLib(fmt.Sprintf("alu-%d", w), p)
	sel := map[string]*netlist.Node{}
	selB := map[string]*netlist.Node{}
	for _, f := range []string{"fand", "for", "fxor", "fadd"} {
		sel[f] = l.NW.Node(f)
		l.NW.MarkInput(sel[f])
		selB[f] = l.Fresh(f + "b")
		l.Inverter(sel[f], selB[f], 1)
	}
	carry := l.NW.Node("cin")
	l.NW.MarkInput(carry)
	for i := 0; i < w; i++ {
		a := l.NW.Node(fmt.Sprintf("a%d", i))
		b := l.NW.Node(fmt.Sprintf("b%d", i))
		l.NW.MarkInput(a)
		l.NW.MarkInput(b)
		andN := l.Fresh("and")
		orN := l.Fresh("or")
		xorN := l.Fresh("xor")
		sumN := l.Fresh("sum")
		l.And(andN, a, b)
		l.Or(orN, a, b)
		l.Xor(xorN, a, b)
		var cout *netlist.Node
		if i == w-1 {
			cout = l.NW.Node("cout")
			l.NW.MarkOutput(cout)
		} else {
			cout = l.Fresh("c")
		}
		l.FullAdder(sumN, cout, a, b, carry)
		carry = cout
		// Pass-mux the four results onto the output bus bit. The flow
		// hints (data flows into the bus) break the sneak paths that
		// bidirectional muxes otherwise present to worst-case timing.
		bus := l.Fresh("bus")
		l.PassGateDir(sel["fand"], selB["fand"], andN, bus)
		l.PassGateDir(sel["for"], selB["for"], orN, bus)
		l.PassGateDir(sel["fxor"], selB["fxor"], xorN, bus)
		l.PassGateDir(sel["fadd"], selB["fadd"], sumN, bus)
		r := l.NW.Node(fmt.Sprintf("r%d", i))
		l.NW.MarkOutput(r)
		// Restore through two inverters so r follows bus.
		mid := l.Fresh("restore")
		l.Inverter(bus, mid, 1)
		l.Inverter(mid, r, 2)
	}
	return l.NW, nil
}

// RegisterFile builds a words×bits array of static cells (cross-coupled
// inverters) with pass-transistor access: word lines "w0".. select a row,
// bit lines "bit0".. carry data. Bit lines are precharged. Ports: word
// lines and "wr" as inputs, bit lines marked output.
func RegisterFile(p *tech.Params, words, bits int) (*netlist.Network, error) {
	if words < 1 || bits < 1 {
		return nil, fmt.Errorf("gen: register file needs positive dimensions, got %d×%d", words, bits)
	}
	l := NewLib(fmt.Sprintf("regfile-%dx%d", words, bits), p)
	bit := make([]*netlist.Node, bits)
	for b := 0; b < bits; b++ {
		bit[b] = l.NW.Node(fmt.Sprintf("bit%d", b))
		bit[b].Precharged = true
		l.NW.AddCap(bit[b], 0.2e-12) // column wire
		l.NW.MarkOutput(bit[b])
	}
	for wl := 0; wl < words; wl++ {
		word := l.NW.Node(fmt.Sprintf("w%d", wl))
		l.NW.MarkInput(word)
		for b := 0; b < bits; b++ {
			// Deterministic cell names so analyses can reference them
			// (e.g. loop-break directives on the storage feedback).
			q := l.NW.Node(fmt.Sprintf("q_%d_%d", wl, b))
			qb := l.NW.Node(fmt.Sprintf("qb_%d_%d", wl, b))
			l.Inverter(q, qb, 1)
			l.Inverter(qb, q, 1)
			l.NW.AddTrans(tech.NEnh, word, bit[b], q, p.MinW, p.MinL)
		}
	}
	return l.NW, nil
}

// PolyWire builds an inverter driving a resistive interconnect wire
// modeled as n RC sections (total resistance totalR ohms, total
// capacitance totalC farads), terminated in a receiving inverter — the
// structure whose analysis motivated the distributed RC model. Ports:
// "in"; the wire's far end is "wend", the restored output "out".
func PolyWire(p *tech.Params, n int, totalR, totalC float64) (*netlist.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: wire needs at least one section, got %d", n)
	}
	if totalR <= 0 || totalC <= 0 {
		return nil, fmt.Errorf("gen: wire needs positive R (%g) and C (%g)", totalR, totalC)
	}
	l := NewLib(fmt.Sprintf("polywire-%d", n), p)
	in := l.NW.Node("in")
	l.NW.MarkInput(in)
	drv := l.NW.Node("wstart")
	l.Inverter(in, drv, 2)
	prev := drv
	secR := totalR / float64(n)
	secC := totalC / float64(n)
	// Half a section's capacitance lands on each end of a section.
	l.NW.AddCap(prev, secC/2)
	for i := 0; i < n; i++ {
		var next *netlist.Node
		if i == n-1 {
			next = l.NW.Node("wend")
		} else {
			next = l.NW.Node(fmt.Sprintf("w%d", i+1))
		}
		l.NW.AddResistor(prev, next, secR)
		c := secC
		if i == n-1 {
			c = secC / 2
		}
		l.NW.AddCap(next, c)
		prev = next
	}
	out := l.NW.Node("out")
	l.NW.MarkOutput(out)
	l.Inverter(prev, out, 1)
	return l.NW, nil
}

// ShiftRegister builds an n-stage two-phase dynamic shift register: each
// stage is pass(phi1) → inverter → pass(phi2) → inverter, the canonical
// clocked-nMOS pipeline. Ports: "in", "phi1", "phi2"; output "out".
// Intermediate dynamic nodes are "d<i>a"/"d<i>b".
func ShiftRegister(p *tech.Params, n int) (*netlist.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: shift register needs n >= 1, got %d", n)
	}
	l := NewLib(fmt.Sprintf("shiftreg-%d", n), p)
	phi1 := l.NW.Node("phi1")
	phi2 := l.NW.Node("phi2")
	l.NW.MarkInput(phi1)
	l.NW.MarkInput(phi2)
	cur := l.NW.Node("in")
	l.NW.MarkInput(cur)
	for i := 0; i < n; i++ {
		da := l.NW.Node(fmt.Sprintf("d%da", i))
		t1 := l.NW.AddTrans(tech.NEnh, phi1, cur, da, 0, 0)
		t1.Flow = netlist.FlowAB
		ia := l.Fresh("sr_inv")
		l.Inverter(da, ia, 1)
		db := l.NW.Node(fmt.Sprintf("d%db", i))
		t2 := l.NW.AddTrans(tech.NEnh, phi2, ia, db, 0, 0)
		t2.Flow = netlist.FlowAB
		var next *netlist.Node
		if i == n-1 {
			next = l.NW.Node("out")
			l.NW.MarkOutput(next)
		} else {
			next = l.Fresh("sr_stage")
		}
		l.Inverter(db, next, 1)
		cur = next
	}
	return l.NW, nil
}

// PLA builds an inputs×products×outputs programmable logic array in
// NOR-NOR form, programmed by a deterministic pattern derived from seed.
// Ports: "in0".. as inputs, "o0".. as outputs.
func PLA(p *tech.Params, inputs, products, outputs int, seed uint64) (*netlist.Network, error) {
	if inputs < 1 || products < 1 || outputs < 1 {
		return nil, fmt.Errorf("gen: PLA needs positive dimensions")
	}
	l := NewLib(fmt.Sprintf("pla-%dx%dx%d", inputs, products, outputs), p)
	// splitmix64 scramble so that nearby seeds give unrelated streams,
	// then xorshift64 for the draw sequence. Deterministic and stateless.
	rng := (seed + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
	rng ^= rng >> 31
	if rng == 0 {
		rng = 0x2545f4914f6cdd1d
	}
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	in := make([]*netlist.Node, inputs)
	inB := make([]*netlist.Node, inputs)
	for i := range in {
		in[i] = l.NW.Node(fmt.Sprintf("in%d", i))
		l.NW.MarkInput(in[i])
		inB[i] = l.Fresh("inb")
		l.Inverter(in[i], inB[i], 1)
	}
	prod := make([]*netlist.Node, products)
	for t := range prod {
		prod[t] = l.Fresh("prod")
		var terms []*netlist.Node
		for i := range in {
			switch next() % 4 {
			case 0:
				terms = append(terms, in[i])
			case 1:
				terms = append(terms, inB[i])
			}
		}
		if len(terms) == 0 {
			terms = append(terms, in[int(next())%inputs])
		}
		l.Nor(prod[t], terms...)
	}
	for o := 0; o < outputs; o++ {
		out := l.NW.Node(fmt.Sprintf("o%d", o))
		l.NW.MarkOutput(out)
		var terms []*netlist.Node
		for t := range prod {
			if next()%3 == 0 {
				terms = append(terms, prod[t])
			}
		}
		if len(terms) == 0 {
			terms = append(terms, prod[int(next())%products])
		}
		norOut := l.Fresh("onor")
		l.Nor(norOut, terms...)
		l.Inverter(norOut, out, 2)
	}
	return l.NW, nil
}
