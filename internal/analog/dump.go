// Waveform export: CSV for external plotting and a terminal sparkline for
// quick inspection of characterization fixtures.
package analog

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteCSV writes the recorded waveforms of the given nodes (all recorded
// nodes if none specified) as CSV with a time column in seconds.
func (r *Result) WriteCSV(w io.Writer, nodes ...int) error {
	if len(nodes) == 0 {
		for n := range r.V {
			nodes = append(nodes, n)
		}
		// Deterministic column order.
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if nodes[j] < nodes[i] {
					nodes[i], nodes[j] = nodes[j], nodes[i]
				}
			}
		}
	}
	header := []string{"t"}
	for _, n := range nodes {
		if _, ok := r.V[n]; !ok {
			return fmt.Errorf("analog: node %d was not recorded", n)
		}
		header = append(header, r.circ.names[n])
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i, t := range r.Times {
		row := make([]string, 0, len(nodes)+1)
		row = append(row, fmt.Sprintf("%.6g", t))
		for _, n := range nodes {
			row = append(row, fmt.Sprintf("%.6g", r.V[n][i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// sparkRunes are the eight-level block characters used by Plot.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Plot renders one node's waveform as a fixed-width terminal sparkline
// between vmin and vmax, for quick looks at fixture behaviour.
func (r *Result) Plot(node, width int, vmin, vmax float64) (string, error) {
	v, ok := r.V[node]
	if !ok {
		return "", fmt.Errorf("analog: node %d was not recorded", node)
	}
	if width <= 0 {
		width = 60
	}
	if vmax <= vmin {
		return "", fmt.Errorf("analog: bad plot range [%g, %g]", vmin, vmax)
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		// Sample the waveform uniformly in time.
		f := float64(i) / float64(width-1)
		idx := int(f * float64(len(v)-1))
		x := (v[idx] - vmin) / (vmax - vmin)
		x = math.Max(0, math.Min(1, x))
		level := int(x * float64(len(sparkRunes)-1))
		b.WriteRune(sparkRunes[level])
	}
	return b.String(), nil
}
