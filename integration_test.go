// Integration tests: the full pipeline — .sim parsing, electrical rules,
// functional simulation, worst-case timing, slack reporting — over the
// hand-written netlists in testdata/.
package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/erc"
	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

func load(t *testing.T, name string, p *tech.Params) *netlist.Network {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nw, err := netlist.ReadSim(name, p, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestDLatchEndToEnd(t *testing.T) {
	p := tech.NMOS4()
	nw := load(t, "dlatch.sim", p)

	// Functional: write 1, hold, write 0, hold.
	s := switchsim.New(nw)
	s.SetInputName("d", switchsim.V1)
	s.SetInputName("wr", switchsim.V1)
	s.Settle()
	if got := s.ValueName("out"); got != switchsim.V1 {
		t.Fatalf("latch(write 1): out=%v", got)
	}
	s.SetInputName("wr", switchsim.V0)
	s.SetInputName("d", switchsim.V0)
	s.Settle()
	if got := s.ValueName("out"); got != switchsim.V1 {
		t.Fatalf("latch(hold 1): out=%v", got)
	}
	s.SetInputName("wr", switchsim.V1)
	s.Settle()
	if got := s.ValueName("out"); got != switchsim.V0 {
		t.Fatalf("latch(write 0): out=%v", got)
	}

	// Timing: d transitions with wr held high. The cross-coupled store
	// is feedback, so the analyzer may flag Unbounded; arrivals must
	// still exist and trace to the input.
	a := core.New(nw, delay.NewSlope(delay.AnalyticTables(p)), core.Options{})
	a.SetFixed(nw.Lookup("wr"), switchsim.V1)
	a.SetInputEventName("d", tech.Rise, 0, 1e-9)
	a.SetInputEventName("d", tech.Fall, 0, 1e-9)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	out := nw.Lookup("out")
	if !a.Arrival(out, tech.Rise).Valid || !a.Arrival(out, tech.Fall).Valid {
		t.Fatal("latch output has no arrivals")
	}
	path := a.Trace(out, tech.Rise)
	if path == nil || path.Hops[0].Node.Name != "d" {
		t.Error("critical path should start at d")
	}
}

func TestMux2CMOSEndToEnd(t *testing.T) {
	p := tech.CMOS3()
	nw := load(t, "mux2-cmos.sim", p)

	s := switchsim.New(nw)
	cases := []struct {
		a, b, sel, want switchsim.Value
	}{
		{switchsim.V1, switchsim.V0, switchsim.V1, switchsim.V1},
		{switchsim.V1, switchsim.V0, switchsim.V0, switchsim.V0},
		{switchsim.V0, switchsim.V1, switchsim.V1, switchsim.V0},
		{switchsim.V0, switchsim.V1, switchsim.V0, switchsim.V1},
	}
	for _, tc := range cases {
		s.SetInputName("a", tc.a)
		s.SetInputName("b", tc.b)
		s.SetInputName("sel", tc.sel)
		s.Settle()
		if got := s.ValueName("y"); got != tc.want {
			t.Errorf("mux(a=%v b=%v sel=%v) = %v, want %v", tc.a, tc.b, tc.sel, got, tc.want)
		}
	}

	// ERC: transmission-gate mux with restored output should be clean of
	// errors (warnings are acceptable).
	for _, f := range erc.Check(nw, erc.Options{}) {
		if f.Severity == erc.Error {
			t.Errorf("unexpected ERC error: %s", f)
		}
	}

	// Timing with slack: data path a→y with sel fixed high.
	a := core.New(nw, delay.NewSlope(delay.AnalyticTables(p)), core.Options{})
	a.SetFixed(nw.Lookup("sel"), switchsim.V1)
	a.SetFixed(nw.Lookup("b"), switchsim.V0)
	a.SetInputEventName("a", tech.Rise, 0, 1e-9)
	a.SetInputEventName("a", tech.Fall, 0, 1e-9)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	ev, _ := a.MaxArrival()
	if !ev.Valid {
		t.Fatal("no arrival")
	}
	slacks := a.Slacks(ev.T + 1e-9)
	if len(slacks) == 0 || slacks[0].Slack < 0 {
		t.Errorf("slack against deadline beyond the critical path should be positive: %+v", slacks)
	}
	var sb strings.Builder
	if v := a.WriteSlackReport(&sb, ev.T/2, 10); v == 0 {
		t.Error("halving the deadline should produce violations")
	}
	if !strings.Contains(sb.String(), "violation") {
		t.Error("slack report missing violations line")
	}
}

func TestDynamicStageEndToEnd(t *testing.T) {
	p := tech.NMOS4()
	nw := load(t, "dynamic-stage.sim", p)

	// Functional: precharge then evaluate.
	s := switchsim.New(nw)
	s.SetInputName("phi", switchsim.V1)
	s.SetInputName("a", switchsim.V0)
	s.SetInputName("b", switchsim.V0)
	s.Settle()
	if got := s.ValueName("dyn"); got != switchsim.V1 {
		t.Fatalf("precharge: dyn=%v", got)
	}
	s.SetInputName("phi", switchsim.V0)
	s.SetInputName("a", switchsim.V1)
	s.SetInputName("b", switchsim.V1)
	s.Settle()
	if got := s.ValueName("dyn"); got != switchsim.V0 {
		t.Fatalf("evaluate: dyn=%v", got)
	}
	if got := s.ValueName("out"); got != switchsim.V1 {
		t.Fatalf("evaluate: out=%v", got)
	}

	// Timing of the evaluate edge: a rises with phi low and b high.
	a := core.New(nw, delay.NewSlope(delay.AnalyticTables(p)), core.Options{})
	a.SetFixed(nw.Lookup("phi"), switchsim.V0)
	a.SetFixed(nw.Lookup("b"), switchsim.V1)
	a.SetInputEventName("a", tech.Rise, 0, 1e-9)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	dyn := nw.Lookup("dyn")
	fall := a.Arrival(dyn, tech.Fall)
	if !fall.Valid {
		t.Fatal("dynamic node never discharges (precharge seeding broken)")
	}
	rise := a.Arrival(nw.Lookup("out"), tech.Rise)
	if !rise.Valid || rise.T <= fall.T {
		t.Errorf("output rise %+v should follow dynamic fall at %g", rise, fall.T)
	}

	// ERC knows this node is dynamic: with the big explicit cap the
	// stage should be clean of charge-sharing warnings.
	for _, f := range erc.Check(nw, erc.Options{}) {
		if f.Rule == "charge-sharing" {
			t.Errorf("unexpected charge-sharing finding: %s", f)
		}
	}
}

func TestAllTestdataParses(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".sim") {
			continue
		}
		n++
		p := tech.NMOS4()
		if strings.Contains(e.Name(), "cmos") {
			p = tech.CMOS3()
		}
		load(t, e.Name(), p)
	}
	if n < 3 {
		t.Errorf("expected at least 3 testdata netlists, found %d", n)
	}
}
