package main

import (
	"flag"
	"os"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// update rewrites the golden files instead of diffing against them:
//
//	go test ./cmd/esim -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden output files")

const testdataPath = "../../testdata/"

// TestGoldenScripts pins the exact simulator transcript — settle sweep
// counts, watch-list ordering, dump format and oscillation annotations —
// for scripted sessions over the repository netlists.
// loadTestdataSim parses one of the repository netlists for a golden run.
func loadTestdataSim(t *testing.T, sim string) *netlist.Network {
	t.Helper()
	params := tech.NMOS4()
	if strings.Contains(sim, "cmos") {
		params = tech.CMOS3()
	}
	f, err := os.Open(testdataPath + sim)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nw, err := netlist.ReadSim(sim, params, f)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// diffGolden applies the -update flow: rewrite the golden when asked,
// diff against it otherwise.
func diffGolden(t *testing.T, golden, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch for %s:\n--- want ---\n%s\n--- got ---\n%s",
			golden, want, got)
	}
}

func TestGoldenScripts(t *testing.T) {
	cases := []struct {
		name   string
		sim    string
		script string
	}{
		{"dlatch-session", "dlatch.sim",
			// Write a 1, latch it, overwrite with 0, read back.
			"h wr d\ns\ncheck q=1 out=1\nl wr\ns\nl d\ns\ncheck q=1 out=1\nh wr\ns\ncheck q=0 out=0\nd\n"},
		{"dlatch-undriven", "dlatch.sim",
			// Release the write line: the latch keeps its value; an
			// undriven data input leaves the output unknown on write.
			"h wr d\ns\nx d\ns\nw q qb\ns\nd\n"},
		{"mux2-cmos", "mux2-cmos.sim",
			"h a\nl b sel\ns\nh sel\ns\nd\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw := loadTestdataSim(t, tc.sim)
			var out strings.Builder
			if err := run(nw, strings.NewReader(tc.script), &out); err != nil {
				t.Fatalf("%v\noutput:\n%s", err, out.String())
			}
			diffGolden(t, "testdata/golden/"+tc.name+".txt", out.String())
		})
	}
}

// TestGoldenVectors pins the -vectors batch-mode transcript — column
// headers, per-vector watch values, oscillation annotations and the sweep
// summary — over the lattice showcase netlists: a clocked latch, a
// precharged bus, and a ratioed-inverter/pass-transistor tap.
func TestGoldenVectors(t *testing.T) {
	cases := []struct {
		name    string
		sim     string
		vectors string
	}{
		{"dlatch-vectors", "dlatch.sim",
			// Columns wr d: write both values, then leave the latch
			// unwritten or the data unknown — from power-on state both
			// leave the output unknown.
			"inputs wr d\nwatch q out\n11\n10\n01\nX1\n1X\n"},
		{"precharged-bus-vectors", "precharged-bus.sim",
			// Columns prech en0 d0 en1 d1: precharge high, discharge
			// through either stack, fight precharge against a stack,
			// float the bus, and a maybe-on precharge against a
			// definite pulldown.
			"inputs prech en0 d0 en1 d1\nwatch bus out\n" +
				"10X0X\n01100\n00011\n11100\n00X0X\nX1100\n"},
		{"ratioed-inv-vectors", "ratioed-inv.sim",
			// Columns a pass: the ratioed fight resolves through the
			// depletion pullup (G2) vs enhancement pulldown (G1); the
			// pass tap floats to X when its gate is low or unknown.
			"01\n11\nX1\n10\n1X\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw := loadTestdataSim(t, tc.sim)
			var out strings.Builder
			if err := runVectors(nw, strings.NewReader(tc.vectors), &out); err != nil {
				t.Fatalf("%v\noutput:\n%s", err, out.String())
			}
			diffGolden(t, "testdata/golden/"+tc.name+".txt", out.String())
		})
	}
}
