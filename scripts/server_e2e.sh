#!/usr/bin/env bash
# End-to-end exercise of the crystald analysis daemon: build the binary,
# start it, drive a scripted load → analyze → edit → re-verify session
# over HTTP with curl, and diff the normalized transcript against the
# committed golden. Wall-clock fields (duration_ns, latency percentiles)
# are zeroed; everything else — session ids, reports, critical paths,
# epoch counters, cache and incremental-engine counters — is pinned
# exactly, because analysis results are deterministic.
#
# The daemon runs with a snapshot directory, and the script restarts it
# mid-transcript: the post-restart create must load from the .simx cache
# through the shared network arena (source == "mmap" — asserted hard,
# beyond the golden diff), with the subsequent analyze report
# byte-identical to the cold one.
#
#   scripts/server_e2e.sh            verify against the golden
#   scripts/server_e2e.sh --update   regenerate the golden
set -euo pipefail

cd "$(dirname "$0")/.."
addr="${SERVER_E2E_ADDR:-127.0.0.1:18653}"
base="http://$addr"
golden="scripts/testdata/server_e2e.golden"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
go build -o "$workdir/crystald" ./cmd/crystald

snapdir="$workdir/snapshots"
daemon=""
start_daemon() {
  "$workdir/crystald" -addr "$addr" -workers 2 -snapshot-dir "$snapdir" &
  daemon=$!
  for i in $(seq 100); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then return; fi
    if [ "$i" = 100 ]; then echo "crystald did not come up on $addr" >&2; exit 1; fi
    sleep 0.1
  done
}
stop_daemon() {
  kill "$daemon" 2>/dev/null || true
  wait "$daemon" 2>/dev/null || true
}
trap 'stop_daemon; rm -rf "$workdir"' EXIT

start_daemon

# Zero the wall-clock fields so the transcript is byte-stable.
norm='walk(if type == "object" then
        (if has("duration_ns") then .duration_ns = 0 else . end
       | if has("p50_ns") then .p50_ns = 0 | .p99_ns = 0 else . end)
      else . end)'

cfg=$(jq -Rs '{name:"dlatch", sim:., fix:{wr:"1"}, top:3}' testdata/dlatch.sim)

transcript() {
  echo "== create =="
  created=$(curl -s -X POST "$base/v1/sessions" -d "$cfg")
  echo "$created" | jq -S "$norm"
  sid=$(echo "$created" | jq -r .session)

  echo "== dedup =="
  curl -s -X POST "$base/v1/sessions" -d "$cfg" | jq -S "$norm"

  echo "== analyze =="
  curl -s -X POST "$base/v1/sessions/$sid/analyze" -d '{"workers":2}' | jq -S "$norm"

  echo "== simulate =="
  curl -s -X POST "$base/v1/sessions/$sid/simulate" \
    -d '{"inputs":["wr","d"],"watch":["q","out"],"vectors":["11","10","01","X1"]}' |
    jq -S "$norm"

  echo "== edits =="
  curl -s -X POST "$base/v1/sessions/$sid/edits" \
    -d '{"script":"cap q 20e-15\nrun\ncap qb 10e-15\ncap q -20e-15\nrun\n"}' |
    jq -S "$norm"

  # Post-edit simulate: the edit advanced the network generation, so the
  # batch engine recompiles (compiled == true again) and the settled
  # values still match the pre-edit truth table.
  echo "== simulate after edits =="
  curl -s -X POST "$base/v1/sessions/$sid/simulate" \
    -d '{"inputs":["wr","d"],"watch":["q","out"],"vectors":["11","10"]}' |
    jq -S "$norm"

  echo "== critical =="
  curl -s "$base/v1/sessions/$sid/critical?n=2" | jq -S "$norm"

  echo "== sessions =="
  curl -s "$base/v1/sessions" | jq -S "$norm"

  echo "== metrics =="
  curl -s "$base/metrics" | jq -S "$norm"

  echo "== restart =="
  stop_daemon
  start_daemon

  echo "== warm create =="
  warm=$(curl -s -X POST "$base/v1/sessions" -d "$cfg")
  echo "$warm" | jq -S "$norm"
  # The acceptance assertion: a restarted daemon must open this session
  # from the snapshot cache — as a shared mmap view on platforms that
  # have one — skipping ReadSim entirely.
  src=$(echo "$warm" | jq -r .source)
  if [ "$src" != "mmap" ]; then
    echo "server_e2e: warm create source=$src, want mmap" >&2
    exit 1
  fi
  wsid=$(echo "$warm" | jq -r .session)

  echo "== warm analyze =="
  curl -s -X POST "$base/v1/sessions/$wsid/analyze" -d '{"workers":2}' | jq -S "$norm"

  echo "== warm metrics =="
  curl -s "$base/metrics" | jq -S "$norm"
}

out="$workdir/transcript"
transcript > "$out"

if [ "${1:-}" = "--update" ]; then
  mkdir -p "$(dirname "$golden")"
  cp "$out" "$golden"
  echo "server_e2e: updated $golden"
  exit 0
fi

diff -u "$golden" "$out"
echo "server_e2e: OK"
