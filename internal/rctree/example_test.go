package rctree_test

import (
	"fmt"

	"repro/internal/rctree"
)

// Example computes the Elmore delay and RPH bounds of a two-section RC
// ladder (1 kΩ / 1 pF per section).
func Example() {
	t := rctree.New(0, "driver")
	mid := t.Add(0, 1e3, 1e-12, "mid")
	end := t.Add(mid, 1e3, 1e-12, "end")
	fmt.Printf("Elmore(end) = %.1f ns\n", t.Elmore(end)*1e9)
	lo, hi := t.DelayBounds(end, 0.5)
	fmt.Printf("50%% crossing bounded by [%.2f, %.2f] ns\n", lo*1e9, hi*1e9)
	// Output:
	// Elmore(end) = 3.0 ns
	// 50% crossing bounded by [2.08, 2.23] ns
}
