package charlib

import (
	"math"
	"testing"

	"repro/internal/tech"
)

func TestCharacterizeNMOS(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is a long-running analog sweep")
	}
	p := tech.NMOS4()
	tb, err := Characterize(p, Options{Ratios: []float64{0, 1, 4, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Source != "characterized" || tb.Tech != p.Name {
		t.Errorf("provenance: source=%q tech=%q", tb.Source, tb.Tech)
	}
	// Effective resistances should land in the same decade as the
	// rule-of-thumb numbers the technology declares.
	checks := []struct {
		d  tech.Device
		tr tech.Transition
	}{
		{tech.NEnh, tech.Fall},
		{tech.NEnh, tech.Rise},
		{tech.NDep, tech.Rise},
		{tech.NDep, tech.Fall},
	}
	for _, c := range checks {
		got := tb.RSquare[c.d][c.tr]
		want := p.RSquare(c.d, c.tr)
		if got <= 0 {
			t.Errorf("RSquare[%s][%s] = %g, want positive", c.d, c.tr, got)
			continue
		}
		if got < want/6 || got > want*6 {
			t.Errorf("RSquare[%s][%s] = %g Ω/sq, implausibly far from rule-of-thumb %g",
				c.d, c.tr, got, want)
		}
	}
	// No p-channel tables in an nMOS process.
	if tb.RSquare[tech.PEnh][tech.Rise] != 0 {
		t.Error("nMOS process should have no p-channel table")
	}
	// Slow inputs must not make the gate-driven discharge *faster* by
	// more than the threshold-crossing artifact allows; the curve should
	// grow for large ratios on the pulldown.
	c := tb.Curve(tech.NEnh, tech.Fall)
	last := c.RMult[len(c.RMult)-1]
	if last < c.RMult[0] {
		t.Errorf("NEnh fall RMult at max ratio = %g, want >= step value %g", last, c.RMult[0])
	}
	if c.RMult[0] != 1 {
		t.Errorf("step RMult = %g, want 1", c.RMult[0])
	}
}

func TestCharacterizeCMOS(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is a long-running analog sweep")
	}
	p := tech.CMOS3()
	tb, err := Characterize(p, Options{Ratios: []float64{0, 2, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if tb.RSquare[tech.PEnh][tech.Rise] <= 0 {
		t.Error("CMOS process must characterize p-channel rise")
	}
	if tb.RSquare[tech.PEnh][tech.Fall] <= 0 {
		t.Error("CMOS process must characterize p-channel fall")
	}
	// The p pullup should be slower per square than the n pulldown
	// (mobility ratio), same ordering as the rule-of-thumb numbers.
	if tb.RSquare[tech.PEnh][tech.Rise] <= tb.RSquare[tech.NEnh][tech.Fall] {
		t.Errorf("p rise (%g) should exceed n fall (%g) per square",
			tb.RSquare[tech.PEnh][tech.Rise], tb.RSquare[tech.NEnh][tech.Fall])
	}
}

func TestDefaultCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is a long-running analog sweep")
	}
	p := tech.NMOS4()
	a, err := Default(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Default(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Default should return the cached pointer on second call")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-10) > 1e-9 {
		t.Errorf("RelErr(110,100) = %g, want 10", got)
	}
	if got := RelErr(90, 100); math.Abs(got+10) > 1e-9 {
		t.Errorf("RelErr(90,100) = %g, want -10", got)
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr with zero reference should be +Inf")
	}
}
