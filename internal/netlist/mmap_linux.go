//go:build linux

package netlist

import "syscall"

// mmapExtraFlags asks the kernel to prefault the whole mapping at mmap
// time. The v2 loader reads every payload byte immediately (payload
// checksum), so the pages are all needed anyway; populating them in one
// syscall avoids a soft fault per 4 KiB page on the first pass.
const mmapExtraFlags = syscall.MAP_POPULATE
