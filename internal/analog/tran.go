// Transient analysis: fixed-timestep backward Euler with damped
// Newton–Raphson at every step.
package analog

import (
	"fmt"
	"math"
)

// TranOpts controls a transient run.
type TranOpts struct {
	// Stop is the end time in seconds (mandatory, > 0).
	Stop float64
	// Step is the timestep in seconds. Zero selects Stop/2000.
	Step float64
	// MaxNewton bounds Newton iterations per timestep (default 100).
	MaxNewton int
	// VTol is the Newton convergence tolerance on node voltages in
	// volts (default 1 µV).
	VTol float64
	// Record selects which nodes to record; nil records every node.
	Record []int
	// DampLimit caps the per-iteration Newton voltage update in volts
	// (default 1.0). Damping is what lets the level-1 model converge
	// through region changes without timestep control.
	DampLimit float64
	// Trapezoidal selects trapezoidal integration for capacitors instead
	// of the default backward Euler: second-order accurate, so coarse
	// timesteps keep their fidelity, at the cost of possible ringing on
	// hard switching events.
	Trapezoidal bool
}

func (o *TranOpts) fill() error {
	if o.Stop <= 0 {
		return fmt.Errorf("analog: Tran stop time %g must be positive", o.Stop)
	}
	if o.Step <= 0 {
		o.Step = o.Stop / 2000
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 100
	}
	if o.VTol <= 0 {
		o.VTol = 1e-6
	}
	if o.DampLimit <= 0 {
		o.DampLimit = 1.0
	}
	return nil
}

// Result holds the sampled waveforms of a transient run.
type Result struct {
	// Times are the sample instants, starting at 0.
	Times []float64
	// V maps node index to its sampled voltage trace (same length as
	// Times). Only recorded nodes are present.
	V map[int][]float64
	// Steps counts accepted timesteps; NewtonTotal counts Newton
	// iterations summed over all steps (a cost/conditioning indicator).
	Steps, NewtonTotal int
	circ               *Circuit
}

// Tran runs a transient analysis and returns sampled waveforms. The
// initial state is the DC solution at t=0 obtained by Newton on the t=0
// equations with capacitors open-circuited to their initial voltages
// (capacitors here carry explicit initial voltages, so a separate DC
// operating-point pass is unnecessary: the first timestep from consistent
// initial conditions serves).
func (c *Circuit) Tran(o TranOpts) (*Result, error) {
	if err := o.fill(); err != nil {
		return nil, err
	}
	nNodes := len(c.names)
	nv := nNodes - 1
	dim := nv + c.nvsrc
	if dim == 0 {
		return nil, fmt.Errorf("analog: empty circuit")
	}
	m := newMatrix(dim)
	b := make([]float64, dim)
	x := make([]float64, nNodes)    // node voltages incl. ground at [0]
	xNew := make([]float64, nNodes) // candidate
	sol := make([]float64, dim)     // raw solution vector
	record := o.Record
	if record == nil {
		record = make([]int, 0, nNodes)
		for i := 1; i < nNodes; i++ {
			record = append(record, i)
		}
	}
	res := &Result{V: make(map[int][]float64, len(record)), circ: c}
	for _, n := range record {
		res.V[n] = make([]float64, 0, int(o.Stop/o.Step)+2)
	}
	sample := func(t float64) {
		res.Times = append(res.Times, t)
		for _, n := range record {
			res.V[n] = append(res.V[n], x[n])
		}
	}

	// Initialize node voltages from capacitor initial conditions where
	// available (caps to ground dominate in our netlists); other nodes
	// start at 0 and the first Newton solve settles them. Select the
	// integration method while we are at it.
	for _, d := range c.devs {
		if cp, ok := d.(*capacitor); ok {
			cp.trap = o.Trapezoidal
			cp.iprev = 0
			cp.started = false
			if cp.b == 0 {
				x[cp.a] = cp.vprev
			}
		}
	}

	// A circuit with no nonlinear devices solves exactly in one pass; the
	// Newton loop and its convergence checks are pure overhead.
	linear := true
	for _, d := range c.devs {
		if d.nonlinear() {
			linear = false
			break
		}
	}

	solveStep := func(t, dt float64) error {
		copy(xNew, x)
		for it := 0; it < o.MaxNewton; it++ {
			m.zero()
			for i := range b {
				b[i] = 0
			}
			st := &stamper{m: m, b: b, nv: nv}
			for _, d := range c.devs {
				d.stamp(st, t, dt, xNew)
			}
			// gmin to ground on every node row.
			for i := 0; i < nv; i++ {
				m.add(i, i, gmin)
			}
			copy(sol, b)
			if err := m.solveInPlace(sol); err != nil {
				return fmt.Errorf("t=%.4g: %w", t, err)
			}
			if hasNaN(sol) {
				return fmt.Errorf("analog: non-finite solution at t=%.4g", t)
			}
			res.NewtonTotal++
			if linear {
				// The solution of a linear system is exact: accept it
				// without damping or a convergence pass.
				for n := 1; n < nNodes; n++ {
					x[n] = sol[n-1]
				}
				return nil
			}
			// Damped update; measure convergence on node voltages.
			maxDelta := 0.0
			for n := 1; n < nNodes; n++ {
				want := sol[n-1]
				delta := want - xNew[n]
				if d := math.Abs(delta); d > maxDelta {
					maxDelta = d
				}
				if delta > o.DampLimit {
					delta = o.DampLimit
				} else if delta < -o.DampLimit {
					delta = -o.DampLimit
				}
				xNew[n] += delta
			}
			if maxDelta < o.VTol {
				copy(x, xNew)
				return nil
			}
		}
		return fmt.Errorf("analog: Newton failed to converge at t=%.4g", t)
	}

	// Settle the initial point by solving at t=0 with a tiny dt so the
	// capacitor companions pin initialized nodes near their ICs.
	if err := solveStep(0, o.Step*1e-3); err != nil {
		return nil, err
	}
	sample(0)

	nsteps := int(math.Ceil(o.Stop / o.Step))
	for s := 1; s <= nsteps; s++ {
		t := float64(s) * o.Step
		if t > o.Stop {
			t = o.Stop
		}
		if err := solveStep(t, o.Step); err != nil {
			return nil, err
		}
		for _, d := range c.devs {
			d.commit(t, o.Step, x)
		}
		res.Steps++
		sample(t)
	}
	return res, nil
}
