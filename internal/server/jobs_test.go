// Async job plane coverage: the 202/poll lifecycle, the byte-identity
// contract between async results and synchronous responses, bounded-queue
// admission control (429 + Retry-After), per-session FIFO ordering,
// graceful drain (503 + WaitJobs), chaos fault injection, the LRU
// eviction vs running-job race, and the /metrics scrape-under-load audit.
// The concurrency suites here run under -race in CI.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netlist"
)

// doRaw issues a request and returns the status plus raw body bytes.
func (c *testClient) doRaw(method, path string, body any) (int, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// submitAsync posts an async request and decodes the 202 acceptance.
func (c *testClient) submitAsync(path string, body any) jobAccepted {
	c.t.Helper()
	var acc jobAccepted
	if st := c.do("POST", path, body, &acc); st != http.StatusAccepted {
		c.t.Fatalf("async submit %s: status %d, want 202", path, st)
	}
	if acc.Job == "" || acc.State != jobQueued || acc.Poll != "/v1/jobs/"+acc.Job {
		c.t.Fatalf("async accept = %+v", acc)
	}
	return acc
}

// pollJob polls one job until it completes, failing the test on timeout.
func (c *testClient) pollJob(id string, timeout time.Duration) jobResponse {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var j jobResponse
		if st := c.do("GET", "/v1/jobs/"+id, nil, &j); st != http.StatusOK {
			c.t.Fatalf("poll %s: status %d", id, st)
		}
		if j.State == jobDone || j.State == jobFailed {
			return j
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("job %s still %s after %s", id, j.State, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// normalizeJSON canonicalizes a response body for the async-vs-sync
// identity comparison: wall-clock fields are zeroed (duration_ns varies
// run to run; cached differs when one path serves a current snapshot) and
// the result re-marshals with sorted keys, so equal strings mean
// byte-identical results.
func normalizeJSON(t *testing.T, raw []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("normalize: bad JSON %q: %v", raw, err)
	}
	var scrub func(any)
	scrub = func(x any) {
		switch m := x.(type) {
		case map[string]any:
			for k, val := range m {
				switch k {
				case "duration_ns":
					m[k] = 0
				case "cached":
					m[k] = false
				default:
					scrub(val)
				}
			}
		case []any:
			for _, e := range m {
				scrub(e)
			}
		}
	}
	scrub(v)
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestAsyncAnalyzeIdentity pins the acceptance contract: the body an
// async analyze job stores is the body the synchronous handler writes,
// byte-identical after normalizing wall-clock fields.
func TestAsyncAnalyzeIdentity(t *testing.T) {
	c := newTestClient(t, Options{})
	id := c.create(dlatchConfig(t)).Session

	syncSt, syncRaw := c.doRaw("POST", "/v1/sessions/"+id+"/analyze", analyzeRequest{Workers: 2, Force: true})
	if syncSt != http.StatusOK {
		t.Fatalf("sync analyze: status %d", syncSt)
	}

	acc := c.submitAsync("/v1/sessions/"+id+"/analyze", analyzeRequest{Workers: 2, Force: true, Async: true})
	j := c.pollJob(acc.Job, 10*time.Second)
	if j.State != jobDone || j.Status != http.StatusOK {
		t.Fatalf("async job = state %s status %d result %s", j.State, j.Status, j.Result)
	}
	if j.Kind != "analyze" || j.Session != id {
		t.Fatalf("job metadata = %+v", j)
	}

	if got, want := normalizeJSON(t, j.Result), normalizeJSON(t, syncRaw); got != want {
		t.Fatalf("async result differs from sync response:\n--- sync\n%s\n--- async\n%s", want, got)
	}

	// The structured fields agree too — same snapshot, same report.
	var syncResp, asyncResp analyzeResponse
	if err := json.Unmarshal(syncRaw, &syncResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(j.Result, &asyncResp); err != nil {
		t.Fatal(err)
	}
	if asyncResp.Report != syncResp.Report || asyncResp.CriticalNs != syncResp.CriticalNs {
		t.Fatal("async snapshot fields differ from sync")
	}
	if j.RunNs <= 0 || j.QueuedNs < 0 {
		t.Fatalf("job timings: queued=%d run=%d", j.QueuedNs, j.RunNs)
	}
}

// TestAsyncEditsIdentity runs the same edit script synchronously and
// asynchronously (on two sessions over the same network with distinct
// directives) and pins identical barrier results.
func TestAsyncEditsIdentity(t *testing.T) {
	c := newTestClient(t, Options{})
	script := "cap out 2e-14\nrun\ncap out -1e-14\nrun\n"

	syncID := c.create(withTop(t, 3)).Session
	c.analyze(syncID, 1)
	syncSt, syncRaw := c.doRaw("POST", "/v1/sessions/"+syncID+"/edits", editsRequest{Script: script})
	if syncSt != http.StatusOK {
		t.Fatalf("sync edits: status %d", syncSt)
	}

	asyncID := c.create(withTop(t, 3)).Session
	if asyncID != syncID {
		// Edited sessions stop answering dedup, so the re-POST built a
		// fresh pristine session — analyze it before editing.
		c.analyze(asyncID, 1)
	}
	acc := c.submitAsync("/v1/sessions/"+asyncID+"/edits", editsRequest{Script: script, Async: true})
	j := c.pollJob(acc.Job, 10*time.Second)
	if j.State != jobDone {
		t.Fatalf("async edits job = %s: %s", j.State, j.Result)
	}

	var syncResp, asyncResp editsResponse
	if err := json.Unmarshal(syncRaw, &syncResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(j.Result, &asyncResp); err != nil {
		t.Fatal(err)
	}
	if len(asyncResp.Barriers) != len(syncResp.Barriers) {
		t.Fatalf("barrier counts: async %d, sync %d", len(asyncResp.Barriers), len(syncResp.Barriers))
	}
	for i := range syncResp.Barriers {
		if asyncResp.Barriers[i].Report != syncResp.Barriers[i].Report {
			t.Fatalf("barrier %d report differs", i)
		}
		if asyncResp.Barriers[i].Incremental != syncResp.Barriers[i].Incremental {
			t.Fatalf("barrier %d incremental flag differs", i)
		}
	}
	if asyncResp.Snapshot.Report != syncResp.Snapshot.Report {
		t.Fatal("final snapshots differ")
	}
}

// TestJobPerSessionSerialization proves jobs of one session run one at a
// time, in submission order, even with free worker slots.
func TestJobPerSessionSerialization(t *testing.T) {
	c := newTestClient(t, Options{JobWorkers: 4, JobDelay: 30 * time.Millisecond})
	created := c.create(dlatchConfig(t))
	id := created.Session
	c.analyze(id, 1)

	// FIFO: the first script deletes transistor 0, compacting indexes;
	// the second deletes the *original* last index, which only exists
	// before the first script ran. In submission order the second job
	// must fail with an out-of-range index; reversed, both would succeed.
	trans := created.Transistors
	j1 := c.submitAsync("/v1/sessions/"+id+"/edits",
		editsRequest{Script: "del 0\nrun\n", Async: true})
	j2 := c.submitAsync("/v1/sessions/"+id+"/edits",
		editsRequest{Script: fmt.Sprintf("del %d\nrun\n", trans-1), Async: true})

	// While j1 has not finished, j2 must never be dispatched — the free
	// workers may not bypass the per-session queue.
	for {
		a := c.pollJobState(j1.Job)
		b := c.pollJobState(j2.Job)
		if b == jobRunning || b == jobDone || b == jobFailed {
			if a != jobDone && a != jobFailed {
				t.Fatalf("job2 %s while job1 still %s", b, a)
			}
		}
		if b == jobDone || b == jobFailed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	r1 := c.pollJob(j1.Job, 5*time.Second)
	r2 := c.pollJob(j2.Job, 5*time.Second)
	if r1.State != jobDone {
		t.Fatalf("job1 = %s: %s", r1.State, r1.Result)
	}
	if r2.State != jobFailed || r2.Status != http.StatusUnprocessableEntity {
		t.Fatalf("job2 = %s status %d (want failed 422 — FIFO violated?): %s",
			r2.State, r2.Status, r2.Result)
	}
}

// pollJobState fetches a job's current state without waiting.
func (c *testClient) pollJobState(id string) string {
	c.t.Helper()
	var j jobResponse
	if st := c.do("GET", "/v1/jobs/"+id, nil, &j); st != http.StatusOK {
		c.t.Fatalf("poll %s: status %d", id, st)
	}
	return j.State
}

// TestJobQueueFull429 pins admission control: a full queue answers 429
// with a Retry-After header and counts the rejection.
func TestJobQueueFull429(t *testing.T) {
	c := newTestClient(t, Options{JobWorkers: 1, JobQueueDepth: 1, JobDelay: 80 * time.Millisecond})
	a := c.create(withTop(t, 3)).Session
	b := c.create(withTop(t, 4)).Session

	// First job dispatches (queue empty), second queues (worker busy),
	// third finds the queue at capacity.
	j1 := c.submitAsync("/v1/sessions/"+a+"/analyze", analyzeRequest{Async: true, Force: true})
	j2 := c.submitAsync("/v1/sessions/"+b+"/analyze", analyzeRequest{Async: true, Force: true})

	req, err := http.NewRequest("POST", c.srv.URL+"/v1/sessions/"+a+"/analyze",
		strings.NewReader(`{"async":true,"force":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	if r := c.pollJob(j1.Job, 10*time.Second); r.State != jobDone {
		t.Fatalf("job1 = %s", r.State)
	}
	if r := c.pollJob(j2.Job, 10*time.Second); r.State != jobDone {
		t.Fatalf("job2 = %s", r.State)
	}
	m := c.metrics()
	if m.Jobs.Rejected != 1 || m.Jobs.Done != 2 || m.Jobs.Submitted != 2 {
		t.Fatalf("job counters = %+v", m.Jobs)
	}
	if m.Jobs.Capacity != 1 || m.Jobs.Queued != 0 || m.Jobs.Running != 0 {
		t.Fatalf("job gauges = %+v", m.Jobs)
	}
	if m.LatencyNs.JobQueue.Count != 2 {
		t.Fatalf("job queue latency count = %d, want 2", m.LatencyNs.JobQueue.Count)
	}
}

// TestJobDrain pins graceful-drain semantics: admitted jobs finish, new
// submissions get 503, WaitJobs reports an idle plane.
func TestJobDrain(t *testing.T) {
	c := newTestClient(t, Options{JobWorkers: 1, JobDelay: 50 * time.Millisecond})
	id := c.create(dlatchConfig(t)).Session
	acc := c.submitAsync("/v1/sessions/"+id+"/analyze", analyzeRequest{Async: true, Force: true})

	sv := serverOf(c)
	sv.BeginDrain()

	var errBody httpError
	if st := c.do("POST", "/v1/sessions/"+id+"/analyze",
		analyzeRequest{Async: true, Force: true}, &errBody); st != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", st)
	}
	if !strings.Contains(errBody.Error, "draining") {
		t.Fatalf("drain error = %q", errBody.Error)
	}
	if !sv.WaitJobs(10 * time.Second) {
		t.Fatal("WaitJobs: plane did not drain")
	}
	if r := c.pollJob(acc.Job, time.Second); r.State != jobDone {
		t.Fatalf("admitted job after drain = %s, want done", r.State)
	}
	// Synchronous requests are unaffected by the job-plane drain.
	if got := c.analyze(id, 1); got.Report == "" {
		t.Fatal("sync analyze failed during drain")
	}
	if m := c.metrics(); !m.Jobs.Draining || m.Jobs.Rejected != 1 {
		t.Fatalf("drain metrics = %+v", m.Jobs)
	}
}

// serverOf digs the *Server out of a test client's httptest server.
func serverOf(c *testClient) *Server {
	return c.srv.Config.Handler.(*Server)
}

// TestJobChaosFailEvery pins the fault-injection contract the load
// harness relies on: injected failures complete as clean "failed" jobs
// with an error body, and leave the session fully serviceable.
func TestJobChaosFailEvery(t *testing.T) {
	c := newTestClient(t, Options{JobFailEvery: 1})
	id := c.create(dlatchConfig(t)).Session

	acc := c.submitAsync("/v1/sessions/"+id+"/analyze", analyzeRequest{Async: true, Force: true})
	j := c.pollJob(acc.Job, 10*time.Second)
	if j.State != jobFailed || j.Status != http.StatusInternalServerError {
		t.Fatalf("chaos job = %s status %d", j.State, j.Status)
	}
	var e httpError
	if err := json.Unmarshal(j.Result, &e); err != nil || !strings.Contains(e.Error, "chaos") {
		t.Fatalf("chaos job result = %s", j.Result)
	}
	if m := c.metrics(); m.Jobs.Failed != 1 || m.Jobs.Done != 0 {
		t.Fatalf("chaos metrics = %+v", m.Jobs)
	}
	// The injected failure never touched the session.
	if got := c.analyze(id, 1); got.CriticalNs <= 0 {
		t.Fatal("session unusable after injected job failure")
	}
}

// TestEvictionRacesRunningJob is the satellite acceptance: an LRU-evicted
// session with an async job in flight must finish cleanly — no panic, a
// valid result, and no leaked arena references.
func TestEvictionRacesRunningJob(t *testing.T) {
	if !netlist.MmapSupported {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	c := newTestClient(t, Options{
		MaxSessions: 1, SnapshotDir: dir, JobDelay: 100 * time.Millisecond,
	})

	// Seed the snapshot cache (this create parses and is immediately the
	// LRU's only resident), then open a shared mapped session.
	c.create(withTop(t, 3))
	shared := c.create(withTop(t, 4))
	if shared.Source != "mmap" {
		t.Fatalf("shared source = %q, want mmap", shared.Source)
	}

	// The job holds the session pointer while MaxSessions=1 forces the
	// next create to evict it mid-run.
	acc := c.submitAsync("/v1/sessions/"+shared.Session+"/analyze",
		analyzeRequest{Async: true, Force: true})
	next := c.create(withTop(t, 5))
	if next.Source != "mmap" {
		t.Fatalf("next source = %q, want mmap", next.Source)
	}
	if st := c.do("GET", "/v1/sessions/"+shared.Session, nil, nil); st != http.StatusNotFound {
		t.Fatalf("evicted session still resident: status %d", st)
	}

	j := c.pollJob(acc.Job, 10*time.Second)
	if j.State != jobDone {
		t.Fatalf("job on evicted session = %s: %s", j.State, j.Result)
	}
	var resp analyzeResponse
	if err := json.Unmarshal(j.Result, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CriticalNs <= 0 || resp.Report == "" {
		t.Fatalf("evicted-session job produced an empty result: %+v", resp)
	}

	// Arena accounting: the eviction released the shared reference even
	// though the job was mid-run; only the live session holds one, the
	// single mapping stays resident, and nothing detached.
	m := c.metrics()
	if m.NetArena.Mappings != 1 || m.NetArena.SharedSessions != 1 || m.NetArena.Detaches != 0 {
		t.Fatalf("arena after eviction race: %+v", m.NetArena)
	}
	if m.Sessions.Evicted < 2 {
		t.Fatalf("evictions = %d, want >= 2", m.Sessions.Evicted)
	}
}

// TestMetricsScrapeUnderLoad is the torn-read audit in executable form:
// concurrent /metrics scrapes race analyzes, edit barriers, simulates and
// async submissions under -race. Every counter is atomic and every gauge
// is read under its owner's lock, so the detector must stay silent and
// every scraped snapshot must be internally sane.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	c := newTestClient(t, Options{JobWorkers: 2, JobQueueDepth: 64})
	id := c.create(dlatchConfig(t)).Session
	c.analyze(id, 2)
	sv := serverOf(c)

	var wg sync.WaitGroup
	start := make(chan struct{})
	// Scrapers: the HTTP surface and the direct snapshot used by expvar.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 150; i++ {
				m := c.metrics()
				if m.Jobs.Queued < 0 || m.Jobs.Running < 0 || m.Jobs.Running > 2 {
					t.Errorf("torn job gauges: %+v", m.Jobs)
					return
				}
				if m.Drain.SpecUsed > m.Drain.SpecLive {
					t.Errorf("spec_used %d > spec_live %d", m.Drain.SpecUsed, m.Drain.SpecLive)
					return
				}
				_ = sv.MetricsSnapshot()
			}
		}()
	}
	// Edit barriers (alternating cap add/remove keeps the net unchanged).
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 25; i++ {
			c.edits(id, "cap out 1e-15\nrun\ncap out -1e-15\nrun\n")
		}
	}()
	// Async analyze jobs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 25; i++ {
			acc := c.submitAsync("/v1/sessions/"+id+"/analyze", analyzeRequest{Async: true, Force: true})
			c.pollJob(acc.Job, 10*time.Second)
		}
	}()
	// Simulate batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 25; i++ {
			var resp simulateResponse
			c.do("POST", "/v1/sessions/"+id+"/simulate", map[string]any{
				"inputs": []string{"wr", "d"}, "watch": []string{"q"},
				"vectors": []string{"11", "10"},
			}, &resp)
		}
	}()
	close(start)
	wg.Wait()

	m := c.metrics()
	if m.Jobs.Done != 25 || m.Edits.Batches != 50 || m.Sim.Requests != 25 {
		t.Fatalf("final counters: jobs=%+v edits=%+v sim=%+v", m.Jobs, m.Edits, m.Sim)
	}
	if m.LatencyNs.JobQueue.Count != 25 {
		t.Fatalf("job queue latency count = %d", m.LatencyNs.JobQueue.Count)
	}
}
