// Dense linear algebra for the modified-nodal-analysis equations. The
// circuits this simulator handles (characterization fixtures and benchmark
// cells, tens of nodes) are far below the size where sparse techniques pay
// off, so a dense LU with partial pivoting keeps the code small and the
// behaviour predictable.
package analog

import (
	"errors"
	"fmt"
	"math"
)

// matrix is a dense square matrix stored row-major.
type matrix struct {
	n int
	a []float64
}

func newMatrix(n int) *matrix {
	return &matrix{n: n, a: make([]float64, n*n)}
}

func (m *matrix) at(i, j int) float64     { return m.a[i*m.n+j] }
func (m *matrix) add(i, j int, v float64) { m.a[i*m.n+j] += v }
func (m *matrix) zero() {
	for i := range m.a {
		m.a[i] = 0
	}
}

// errSingular reports a matrix the solver could not factor; it usually
// means a floating node with no path to ground (gmin should prevent this).
var errSingular = errors.New("analog: singular MNA matrix")

// solveInPlace solves A·x = b by Gaussian elimination with partial
// pivoting, overwriting both the matrix and b; the solution is left in b.
func (m *matrix) solveInPlace(b []float64) error {
	n := m.n
	if len(b) != n {
		return fmt.Errorf("analog: rhs length %d does not match matrix size %d", len(b), n)
	}
	for col := 0; col < n; col++ {
		// Pivot selection.
		piv, pmax := col, math.Abs(m.at(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.at(r, col)); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax < 1e-30 {
			return fmt.Errorf("%w (pivot %d)", errSingular, col)
		}
		if piv != col {
			ri, rj := piv*n, col*n
			for k := 0; k < n; k++ {
				m.a[ri+k], m.a[rj+k] = m.a[rj+k], m.a[ri+k]
			}
			b[piv], b[col] = b[col], b[piv]
		}
		// Eliminate below.
		inv := 1 / m.at(col, col)
		for r := col + 1; r < n; r++ {
			f := m.at(r, col) * inv
			if f == 0 {
				continue
			}
			ri, ci := r*n, col*n
			for k := col; k < n; k++ {
				m.a[ri+k] -= f * m.a[ci+k]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		ri := r * n
		for k := r + 1; k < n; k++ {
			s -= m.a[ri+k] * b[k]
		}
		b[r] = s / m.a[ri+r]
	}
	return nil
}
