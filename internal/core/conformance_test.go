package core

import (
	"strings"
	"testing"

	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// conformanceSpecs sweeps every registered generator family at a small
// size. The sizes keep the full sweep (five engines per family) fast
// while still exercising each family's characteristic structure.
var conformanceSpecs = []string{
	"invchain:8", "fanout:6", "passchain:6", "superbuffer", "bus:4",
	"ripple:4", "manchester:4", "barrel:4", "decoder:3", "alu:4",
	"regfile:4,4", "polywire:6", "chip:4", "datapath:4", "shiftreg:4",
	"arraymul:4", "carrysel:8", "pla:4,6,4",
}

// conformanceDirectives returns the analysis directives a family needs;
// only the chip composition requires any (fixed address bits and
// register-cell loop breaks).
func conformanceDirectives(spec string) (map[string]string, []string) {
	if strings.HasPrefix(spec, "chip") {
		return gen.ChipDirectives(4)
	}
	return nil, nil
}

// TestConformance is the cross-engine agreement sweep: every circuit
// family in the generator registry is pushed through each analysis
// engine, and the engines must agree.
//
//   - Parallel drain: workers=8 is bit-identical to workers=1 (arrivals,
//     slopes, provenance, feedback-guard verdicts, evaluation counts).
//   - Incremental engine: Reanalyze after a no-op edit reproduces the
//     full run's arrivals exactly.
//   - Delay-model pessimism: per endpoint, lumped ≥ rc and slope ≥ rc —
//     both bounding models dominate the distributed-RC baseline — on
//     every node the feedback guard resolved exactly. (Guard-limited
//     nodes are exempt: event-list truncation is per-model, so dominance
//     is not meaningful there.) All three models agree on *which*
//     node/transition pairs are reachable.
//   - switchsim: every transition the switch-level simulator observes
//     under the all-inputs 0→1 vector is covered by a valid worst-case
//     arrival — the timing analysis never misses a real transition, the
//     sense in which it is pessimistic relative to simulation.
func TestConformance(t *testing.T) {
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	for _, spec := range conformanceSpecs {
		spec := spec
		t.Run(strings.ReplaceAll(spec, ":", "-"), func(t *testing.T) {
			t.Parallel()
			nw, err := gen.Build(spec, p)
			if err != nil {
				t.Fatal(err)
			}
			fix, lb := conformanceDirectives(spec)

			slope := buildAnalyzer(t, nw, delay.NewSlope(tb), fix, lb, Options{Workers: 1})
			if err := slope.Run(); err != nil {
				t.Fatal(err)
			}

			t.Run("workers", func(t *testing.T) {
				par := buildAnalyzer(t, nw, delay.NewSlope(tb), fix, lb, Options{Workers: 8})
				if err := par.Run(); err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, "workers=8", slope, par, false)
			})
			t.Run("reanalyze-noop", func(t *testing.T) {
				conformanceNoopReanalyze(t, nw, tb, fix, lb, slope)
			})
			t.Run("pessimism", func(t *testing.T) {
				conformancePessimism(t, nw, tb, fix, lb, slope)
			})
			t.Run("switchsim", func(t *testing.T) {
				conformanceVector(t, nw, fix, slope)
			})
		})
	}
}

// conformanceNoopReanalyze runs the incremental engine over an edit that
// does not change the network (a zero capacitance increment) and requires
// the re-analysis to land exactly on the full run's arrivals — whether it
// took the incremental path or honestly fell back to a full drain (it
// must on circuits whose dirty cone touches guard-limited nodes).
func conformanceNoopReanalyze(t *testing.T, nw *netlist.Network, tb *delay.Tables,
	fix map[string]string, lb []string, want *Analyzer) {
	var target string
	for _, n := range nw.Nodes {
		if !n.IsRail() && n.Kind == netlist.KindNormal {
			target = n.Name
			break
		}
	}
	if target == "" {
		t.Skip("no editable node")
	}
	a := buildAnalyzer(t, nw, delay.NewSlope(tb), fix, lb, Options{Workers: 1})
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	stats, err := a.Reanalyze([]incremental.Edit{
		{Kind: incremental.AddCap, Node: target, Cap: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node indexes are stable across the edit clone, so arrivals compare
	// positionally against the untouched analyzer.
	for i, n := range want.Net.Nodes {
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			w, g := want.Arrival(n, tr), a.Arrival(a.Net.Nodes[i], tr)
			if !sameEvent(w, g) {
				t.Fatalf("no-op reanalyze (full=%v) moved %s/%s: %+v, want %+v",
					stats.Full, n.Name, tr, g, w)
			}
		}
	}
}

// conformancePessimism checks the delay-model ordering per endpoint.
func conformancePessimism(t *testing.T, nw *netlist.Network, tb *delay.Tables,
	fix map[string]string, lb []string, slope *Analyzer) {
	lum := buildAnalyzer(t, nw, delay.NewLumped(tb), fix, lb, Options{Workers: 1})
	rc := buildAnalyzer(t, nw, delay.NewRC(tb), fix, lb, Options{Workers: 1})
	for _, a := range []*Analyzer{lum, rc} {
		if err := a.Run(); err != nil {
			t.Fatal(err)
		}
	}
	guarded := make(map[int]bool)
	for _, a := range []*Analyzer{lum, rc, slope} {
		for _, n := range a.Unbounded {
			guarded[n.Index] = true
		}
	}
	const eps = 1e-15
	checked := 0
	for _, n := range nw.Nodes {
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			le, re, se := lum.Arrival(n, tr), rc.Arrival(n, tr), slope.Arrival(n, tr)
			if le.Valid != re.Valid || se.Valid != re.Valid {
				t.Errorf("models disagree on reachability of %s/%s: lumped=%v rc=%v slope=%v",
					n.Name, tr, le.Valid, re.Valid, se.Valid)
				continue
			}
			if !re.Valid || guarded[n.Index] {
				continue
			}
			checked++
			if le.T < re.T-eps {
				t.Errorf("lumped %s/%s = %g < rc %g", n.Name, tr, le.T, re.T)
			}
			if se.T < re.T-eps {
				t.Errorf("slope %s/%s = %g < rc %g", n.Name, tr, se.T, re.T)
			}
		}
	}
	if checked == 0 {
		t.Error("pessimism sweep checked no endpoints")
	}
}

// conformanceTransitions diffs two settled simulator states and requires
// the analyzer to hold a valid arrival for every definite transition
// between them. Indefinite (X) endpoints are excluded: an untimed ternary
// settle cannot claim them. Returns the number of definite transitions.
func conformanceTransitions(t *testing.T, nw *netlist.Network, a *Analyzer,
	dir string, before, after []switchsim.Value) int {
	t.Helper()
	observed := 0
	for _, n := range nw.Nodes {
		if n.IsRail() {
			continue
		}
		was, now := before[n.Index], after[n.Index]
		if was == now || was == switchsim.VX || now == switchsim.VX {
			continue
		}
		observed++
		tr := tech.Rise
		if now == switchsim.V0 {
			tr = tech.Fall
		}
		if !a.Arrival(n, tr).Valid {
			t.Errorf("%s sweep: switchsim observed %s %s→%s but the analyzer has no %s arrival",
				dir, n.Name, was, now, tr)
		}
	}
	return observed
}

// conformanceVector settles the switch-level simulator on the all-inputs-
// low vector, flips every free input high, then back low, and requires
// the analyzer to cover the definite transitions of both sweeps — the
// timing analysis never misses a real rise or a real fall. The same two
// corner vectors then go through the vectorized batch engine from
// power-on state: its transition set must be covered bidirectionally too
// (the 0-corner → 1-corner diff in the rise direction and its reverse in
// the fall direction), tying the batch engine to the analyzer without a
// scalar intermediary.
func conformanceVector(t *testing.T, nw *netlist.Network, fix map[string]string, a *Analyzer) {
	sim := switchsim.New(nw)
	for name, v := range fix {
		if err := sim.SetInputName(name, switchsim.FromBool(v == "1")); err != nil {
			t.Fatal(err)
		}
	}
	setFree := func(v switchsim.Value) {
		for _, in := range nw.Inputs() {
			if _, fixed := fix[in.Name]; fixed {
				continue
			}
			if err := sim.SetInput(in, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	setFree(switchsim.V0)
	sim.Settle()
	low := sim.Snapshot()
	setFree(switchsim.V1)
	sim.Settle()
	high := sim.Snapshot()
	setFree(switchsim.V0)
	sim.Settle()
	back := sim.Snapshot()

	observed := conformanceTransitions(t, nw, a, "up", low, high)
	observed += conformanceTransitions(t, nw, a, "down", high, back)
	if observed == 0 {
		t.Error("vector sweeps produced no definite transitions; sweep is vacuous")
	}

	// Batch cross-check: the two corner vectors settled independently from
	// power-on through the 64-lane engine.
	b := switchsim.NewBatch(nw)
	inputs := b.Inputs()
	vecs := make([]switchsim.Value, 0, 2*len(inputs))
	for _, corner := range []switchsim.Value{switchsim.V0, switchsim.V1} {
		for _, in := range inputs {
			if v, fixed := fix[in.Name]; fixed {
				vecs = append(vecs, switchsim.FromBool(v == "1"))
			} else {
				vecs = append(vecs, corner)
			}
		}
	}
	res, err := b.Run(vecs, nil)
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	batchObserved := conformanceTransitions(t, nw, a, "batch-up", res.Out[0], res.Out[1])
	batchObserved += conformanceTransitions(t, nw, a, "batch-down", res.Out[1], res.Out[0])
	if batchObserved == 0 {
		t.Error("batch corner vectors produced no definite transitions; sweep is vacuous")
	}
}
