//go:build darwin

package netlist

// mmapExtraFlags: darwin has no MAP_POPULATE; first-touch faults serve
// instead.
const mmapExtraFlags = 0
