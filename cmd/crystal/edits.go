// Edit-script support: the designer loop the incremental engine exists
// for. The grammar itself (parser and `run`-barrier batching) lives in
// internal/incremental so the crystald service speaks the identical
// language over the wire; this file binds it to the CLI's re-analysis and
// reporting loop.
package main

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/incremental"
)

// replayEdits reads an edit script from r, applying each batch at its
// `run` barrier via Reanalyze and reprinting the timing report. It
// returns the violation count of the final report (violations carries the
// initial report's count in case the script applies no batch). report
// re-runs the configured reporting (paths + optional slack) against the
// up-to-date analysis.
func replayEdits(a *core.Analyzer, r io.Reader, src string, w io.Writer,
	report func() (int, error), violations int) (int, error) {
	err := incremental.ReplayScript(r, src, func(_ int, batch []incremental.Edit) error {
		stats, err := a.Reanalyze(batch)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s\n", core.FormatReanalyzeStatus("crystal", stats))
		violations, err = report()
		return err
	})
	return violations, err
}
