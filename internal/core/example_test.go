package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/tech"
)

// Example runs a complete worst-case analysis of a small adder and prints
// its critical arrival.
func Example() {
	p := tech.NMOS4()
	nw, err := gen.RippleAdder(p, 4)
	if err != nil {
		log.Fatal(err)
	}
	a := core.New(nw, delay.NewSlope(delay.AnalyticTables(p)), core.Options{})
	for _, in := range nw.Inputs() {
		a.SetInputEvent(in, tech.Rise, 0, 1e-9)
		a.SetInputEvent(in, tech.Fall, 0, 1e-9)
	}
	if err := a.Run(); err != nil {
		log.Fatal(err)
	}
	ev, path := a.MaxArrival()
	fmt.Printf("critical endpoint %s after %d hops, arrival %.1f ns\n",
		path.End().Node.Name, len(path.Hops), ev.T*1e9)
	// Output:
	// critical endpoint s3 after 10 hops, arrival 375.4 ns
}

// ExampleAnalyzer_Slacks checks a design against a timing budget.
func ExampleAnalyzer_Slacks() {
	p := tech.NMOS4()
	nw, _ := gen.InverterChain(p, 3, 0)
	a := core.New(nw, delay.NewRC(delay.AnalyticTables(p)), core.Options{})
	a.SetInputEventName("in", tech.Rise, 0, 1e-9)
	a.SetInputEventName("in", tech.Fall, 0, 1e-9)
	if err := a.Run(); err != nil {
		log.Fatal(err)
	}
	for _, s := range a.Slacks(50e-9) {
		status := "meets"
		if s.Slack < 0 {
			status = "VIOLATES"
		}
		fmt.Printf("%s %s: arrival %.1f ns, %s the 50 ns budget\n",
			s.Node.Name, s.Tr, s.Event.T*1e9, status)
	}
	// Output:
	// out rise: arrival 29.1 ns, meets the 50 ns budget
	// out fall: arrival 16.7 ns, meets the 50 ns budget
}
