// The three delay models. Each maps (stage, input slope) to a delay and an
// output slope; the verifier propagates both.
package delay

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/netlist"
	"repro/internal/rctree"
	"repro/internal/stage"
	"repro/internal/tech"
)

// Result is a stage evaluation: the 50%-to-50% delay from the triggering
// event to the target's crossing, and the estimated 10–90% transition time
// of the target, which feeds the slope model of successor stages.
type Result struct {
	Delay float64
	Slope float64
}

// Model is a switch-level delay model. Implementations must be safe for
// concurrent use (they are stateless over their tables).
type Model interface {
	// Name identifies the model in reports ("lumped", "rc", "slope").
	Name() string
	// Evaluate computes the stage's delay given the 10–90% transition
	// time of the triggering input. Models that ignore input slope
	// (lumped, rc) accept and discard it.
	Evaluate(nw *netlist.Network, st *stage.Stage, inSlope float64) Result
}

// elemR returns the effective resistance of a path element under the
// model's tables, honoring per-element overrides (wire resistors).
func elemR(tb *Tables, t *netlist.Trans, tr tech.Transition) float64 {
	if t.ROverride > 0 {
		return t.ROverride
	}
	return tb.R(t.Type, tr, t.W, t.L)
}

// Lumped is the paper's first model: total series resistance times total
// capacitance. Fast, simple, and pessimistic on distributed structures —
// it charges all capacitance through all resistance.
type Lumped struct {
	T *Tables
}

// NewLumped returns the lumped-RC model over the given tables.
func NewLumped(t *Tables) *Lumped { return &Lumped{T: t} }

// Name implements Model.
func (m *Lumped) Name() string { return "lumped" }

// Evaluate implements Model: delay = ΣR × ΣC.
func (m *Lumped) Evaluate(nw *netlist.Network, st *stage.Stage, _ float64) Result {
	if memo := memoFor(m.T, nw, st); memo != nil {
		return memo.lumpedResult()
	}
	r := 0.0
	for _, e := range st.Path {
		r += elemR(m.T, e.Trans, st.Transition)
	}
	c := st.TotalC(nw)
	d := r * c
	// Output transition estimate: single-pole shape over the lumped τ.
	tf := math.Log(9)
	if drv := driverElement(st); drv >= 0 {
		tf = m.T.Curve(st.Path[drv].Trans.Type, st.Transition).TFactorAt(0)
	}
	return Result{Delay: d, Slope: tf * d}
}

// RC is the paper's second model: the stage as a distributed RC tree, with
// the Elmore delay at the target as the estimate. Asymptotically correct
// for pass-transistor chains (≈ n²/2 growth instead of the lumped n²) but
// still blind to input slope.
type RC struct {
	T *Tables
}

// NewRC returns the distributed-RC model over the given tables.
func NewRC(t *Tables) *RC { return &RC{T: t} }

// Name implements Model.
func (m *RC) Name() string { return "rc" }

// Evaluate implements Model.
func (m *RC) Evaluate(nw *netlist.Network, st *stage.Stage, _ float64) Result {
	if memo := memoFor(m.T, nw, st); memo != nil {
		return memo.rcResult()
	}
	d := m.elmoreAt(nw, st, -1, 1)
	tf := math.Log(9)
	if drv := driverElement(st); drv >= 0 {
		tf = m.T.Curve(st.Path[drv].Trans.Type, st.Transition).TFactorAt(0)
	}
	return Result{Delay: d, Slope: tf * d}
}

// elmore computes the Elmore delay of the stage target with this model's
// effective resistances, path-element resistances optionally scaled by
// rscale. Because the target lies on the main path, side-branch
// resistances never enter its Elmore sum — each path element contributes
// R·(all capacitance at or beyond it, side loads included) — so a single
// backwards pass suffices and no tree is built. stageTree remains the
// reference implementation (the equivalence is pinned by a test).
func (m *RC) elmore(nw *netlist.Network, st *stage.Stage, rscale []float64) float64 {
	n := len(st.Path)
	if n == 0 {
		return 0
	}
	// Capacitance hanging at each path position i (1-based element i
	// ends at node i): the node's own cap plus side loads attached there.
	capAt := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		if st.PathCap != nil {
			capAt[i] = st.PathCap[i-1]
		} else {
			capAt[i] = nw.NodeCap(st.Path[i-1].To)
		}
	}
	for _, sl := range st.Side {
		if sl.Attach >= 1 {
			capAt[sl.Attach] += sl.C
		}
		// Attach 0 hangs at the ideal source: invisible to the target.
	}
	sum := 0.0
	acc := 0.0
	for i := n; i >= 1; i-- {
		acc += capAt[i]
		e := st.Path[i-1]
		r := elemR(m.T, e.Trans, st.Transition)
		if rscale != nil && rscale[i-1] > 0 {
			r *= rscale[i-1]
		}
		sum += r * acc
	}
	return sum
}

// elmoreAt is the allocation-free form of elmore used on the analysis hot
// path: at most one path element (index at; -1 for none) has its
// resistance scaled by mult, and the side loads — sorted by attach
// position at stage construction — are merged into the single backwards
// walk instead of being scattered into a scratch array. Falls back to
// elmore for hand-assembled stages whose side loads are unsorted.
func (m *RC) elmoreAt(nw *netlist.Network, st *stage.Stage, at int, mult float64) float64 {
	n := len(st.Path)
	if n == 0 {
		return 0
	}
	if !st.SideSorted() && len(st.Side) > 0 {
		var rscale []float64
		if at >= 0 {
			rscale = make([]float64, n)
			for i := range rscale {
				rscale[i] = 1
			}
			rscale[at] = mult
		}
		return m.elmore(nw, st, rscale)
	}
	sum, acc := 0.0, 0.0
	si := len(st.Side) - 1
	for i := n; i >= 1; i-- {
		if st.PathCap != nil {
			acc += st.PathCap[i-1]
		} else {
			acc += nw.NodeCap(st.Path[i-1].To)
		}
		// Side loads attached at or beyond this position are downstream
		// of element i and charge through it. Attach 0 hangs at the
		// ideal source and never enters (the loop stops at i=1).
		for si >= 0 && st.Side[si].Attach >= i {
			acc += st.Side[si].C
			si--
		}
		e := st.Path[i-1]
		r := elemR(m.T, e.Trans, st.Transition)
		if i-1 == at {
			r *= mult
		}
		sum += r * acc
	}
	return sum
}

// elmoreSplit is elmoreAt(at=-1) with instrumentation for the slope
// model's two-pass evaluation. The backwards walk visits path positions
// n-1 … 0; relative to position at it returns the running sum of the
// terms visited before it (high), the unscaled resistance and downstream
// capacitance at it, and records the terms visited after it in
// low[0:at]. Folding high + (rAt·mult)·accAt + low[at-1 …0] repeats the
// adds of elmoreAt(at, mult) in the identical order, so the replayed
// result is bit-exact without a second walk. Requires sorted side loads
// (st.SideSorted() or no side loads).
func (m *RC) elmoreSplit(nw *netlist.Network, st *stage.Stage, at int, low []float64) (tau, high, rAt, accAt float64) {
	n := len(st.Path)
	acc := 0.0
	si := len(st.Side) - 1
	for i := n; i >= 1; i-- {
		if st.PathCap != nil {
			acc += st.PathCap[i-1]
		} else {
			acc += nw.NodeCap(st.Path[i-1].To)
		}
		for si >= 0 && st.Side[si].Attach >= i {
			acc += st.Side[si].C
			si--
		}
		e := st.Path[i-1]
		r := elemR(m.T, e.Trans, st.Transition)
		p := r * acc
		switch {
		case i-1 > at:
			high += p
		case i-1 == at:
			rAt, accAt = r, acc
		default:
			low[i-1] = p
		}
		tau += p
	}
	return tau, high, rAt, accAt
}

// treePool recycles RC-tree scratch buffers across Bounds evaluations so
// a bounds sweep does not allocate a fresh tree per stage.
var treePool = sync.Pool{New: func() any { return rctree.New(0, "") }}

// stageTree builds the stage's RC tree using table resistances (not the
// raw technology numbers), so characterized tables flow through every
// model identically.
func stageTree(tb *Tables, nw *netlist.Network, st *stage.Stage, rscale []float64) (*rctree.Tree, []int) {
	return stageTreeInto(rctree.New(0, st.Source.Name), tb, nw, st, rscale)
}

// stageTreeInto is stageTree over a caller-supplied (possibly recycled)
// tree, which must already be reset to a bare root.
func stageTreeInto(t *rctree.Tree, tb *Tables, nw *netlist.Network, st *stage.Stage, rscale []float64) (*rctree.Tree, []int) {
	idx := make([]int, len(st.Path)+1)
	for i, e := range st.Path {
		r := elemR(tb, e.Trans, st.Transition)
		if rscale != nil && rscale[i] > 0 {
			r *= rscale[i]
		}
		idx[i+1] = t.Add(idx[i], r, nw.NodeCap(e.To), e.To.Name)
	}
	for _, sl := range st.Side {
		if sl.R <= 0 {
			t.AddCap(idx[sl.Attach], sl.C)
			continue
		}
		t.Add(idx[sl.Attach], sl.R, sl.C, sl.Node.Name)
	}
	return t, idx
}

// driverElement picks the path element whose slope curve governs the
// stage: the trigger if it lies on the path, otherwise the element
// adjacent to the source (the driver — e.g. the depletion pullup of a
// release stage).
func driverElement(st *stage.Stage) int {
	if i, ok := st.Driver(); ok {
		return i
	}
	if st.Trigger != nil {
		for i, e := range st.Path {
			if e.Trans == st.Trigger {
				return i
			}
		}
	}
	if len(st.Path) > 0 {
		return 0
	}
	return -1
}

// Slope is the paper's headline model. The effective resistance of the
// stage's driving transistor is not constant: it is the step-input value
// multiplied by an empirical function of the slope ratio
//
//	r = Tin / τstep
//
// where Tin is the input's 10–90% transition time and τstep the stage's
// intrinsic (step-input) Elmore delay. The multiplier curves are
// characterized per device type and transition from the circuit-level
// reference, exactly as the paper characterized them from SPICE. The
// output transition time comes from the companion TFactor curve, so slope
// information propagates stage to stage.
type Slope struct {
	T *Tables
}

// NewSlope returns the slope model over the given tables.
func NewSlope(t *Tables) *Slope { return &Slope{T: t} }

// Name implements Model.
func (m *Slope) Name() string { return "slope" }

// Evaluate implements Model. The hot path walks the stage once: the
// intrinsic Elmore pass records its per-element terms, and the scaled
// delay (driver resistance × slope multiplier) is replayed from them.
func (m *Slope) Evaluate(nw *netlist.Network, st *stage.Stage, inSlope float64) Result {
	if memo := memoFor(m.T, nw, st); memo != nil {
		if res, ok := memo.slopeResult(inSlope); ok {
			return res
		}
	}
	rcModel := RC{T: m.T}
	drv := driverElement(st)
	// The driver is usually at or near the source, so only a handful of
	// terms below it ever need buffering for the bit-exact replay.
	var buf [16]float64
	fused := drv >= 0 && drv <= len(buf) && (st.SideSorted() || len(st.Side) == 0)
	var tauStep, high, rDrv, accDrv float64
	if fused {
		tauStep, high, rDrv, accDrv = rcModel.elmoreSplit(nw, st, drv, buf[:])
	} else {
		tauStep = rcModel.elmoreAt(nw, st, -1, 1)
	}
	if drv < 0 || tauStep <= 0 {
		return Result{Delay: tauStep, Slope: math.Log(9) * tauStep}
	}
	dev := st.Path[drv].Trans.Type
	curve := m.T.Curve(dev, st.Transition)
	ratio := 0.0
	if inSlope > 0 {
		ratio = inSlope / tauStep
	}
	mult := curve.MultAt(ratio)
	var d float64
	if fused {
		d = high + (rDrv*mult)*accDrv
		for j := drv - 1; j >= 0; j-- {
			d += buf[j]
		}
	} else {
		d = rcModel.elmoreAt(nw, st, drv, mult)
	}
	out := curve.TFactorAt(ratio) * tauStep
	return Result{Delay: d, Slope: out}
}

// Bounded wraps the RC model's tree with the Rubinstein–Penfield–Horowitz
// bounds: Evaluate returns the Elmore point estimate while Bounds exposes
// the certificate interval. It exists for the E8 ablation.
type Bounded struct {
	T *Tables
	// V is the crossing fraction for the bounds (default 0.5).
	V float64
}

// Name implements Model.
func (m *Bounded) Name() string { return "rc-bounded" }

// Evaluate implements Model (identical to RC's point estimate).
func (m *Bounded) Evaluate(nw *netlist.Network, st *stage.Stage, in float64) Result {
	return (&RC{T: m.T}).Evaluate(nw, st, in)
}

// Bounds returns the RPH lower/upper bounds on the target's crossing time.
func (m *Bounded) Bounds(nw *netlist.Network, st *stage.Stage) (lo, hi float64, err error) {
	v := m.V
	if v <= 0 || v >= 1 {
		v = 0.5
	}
	t := treePool.Get().(*rctree.Tree)
	defer treePool.Put(t)
	t.Reset(0, st.Source.Name)
	t, idx := stageTreeInto(t, m.T, nw, st, nil)
	if err := t.Validate(); err != nil {
		return 0, 0, fmt.Errorf("stage tree: %w", err)
	}
	lo, hi = t.DelayBounds(idx[len(idx)-1], v)
	return lo, hi, nil
}

// ByName returns the standard model with the given name over tables t.
func ByName(name string, t *Tables) (Model, error) {
	switch name {
	case "lumped":
		return NewLumped(t), nil
	case "rc", "distributed":
		return NewRC(t), nil
	case "slope":
		return NewSlope(t), nil
	case "rc-bounded":
		return &Bounded{T: t}, nil
	}
	return nil, fmt.Errorf("delay: unknown model %q (want lumped, rc, slope)", name)
}

// All returns one instance of each primary model, in fidelity order.
func All(t *Tables) []Model {
	return []Model{NewLumped(t), NewRC(t), NewSlope(t)}
}
