// String interning for the ingest pipeline. A chip-scale .sim file
// mentions each net name many times (every transistor terminal, every
// capacitor plate, every directive), and the naive parse materializes a
// fresh substring for each mention — pinning whole scanner lines in the
// heap through the node-name references that survive parsing. The
// interner collapses every mention to one canonical allocation, shared by
// the parser, the alias table and the @-directive handlers, so resident
// symbol storage is proportional to the number of distinct nets, not the
// number of tokens.
package netlist

import "strings"

// Interner deduplicates strings. The zero value is not ready; use
// NewInterner. Not safe for concurrent use — the parallel parser gives
// each tokenizer worker its own local symbol table and reserves the
// shared interner for the serial merge phase.
type Interner struct {
	m map[string]string
}

// NewInterner creates an interner with room for n distinct symbols.
func NewInterner(n int) *Interner {
	return &Interner{m: make(map[string]string, n)}
}

// Intern returns the canonical copy of s, allocating it on first sight.
// The lookup itself never allocates; the canonical copy is cloned so it
// does not pin whatever larger buffer s was sliced from (a scanner line,
// a parser chunk).
func (in *Interner) Intern(s string) string {
	if c, ok := in.m[s]; ok {
		return c
	}
	c := strings.Clone(s)
	in.m[c] = c
	return c
}

// Len returns the number of distinct symbols interned.
func (in *Interner) Len() int { return len(in.m) }
