// Differential verification of the incremental engine: after any edit
// batch, Reanalyze must leave the analyzer bit-identical — every arrival's
// time, slope and provenance — to a from-scratch analysis of the edited
// network. The table test pins one scenario per edit kind; the fuzz target
// throws random edit sequences at randomly chosen circuits.
package incremental_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// inputNames lists the network's inputs — the seed set is fixed when the
// analysis is first configured and must not drift when an edit retypes a
// node to input later.
func inputNames(nw *netlist.Network) []string {
	var out []string
	for _, in := range nw.Inputs() {
		out = append(out, in.Name)
	}
	return out
}

// newAnalyzer builds the reference analysis configuration: slope model on
// analytic tables, the named inputs seeded in both directions at t=0.
func newAnalyzer(t testing.TB, nw *netlist.Network, seeds []string) *core.Analyzer {
	p := nw.Tech
	m, err := delay.ByName("slope", delay.AnalyticTables(p))
	if err != nil {
		t.Fatalf("delay model: %v", err)
	}
	a := core.New(nw, m, core.Options{Workers: 1})
	for _, name := range seeds {
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			if err := a.SetInputEventName(name, tr, 0, 1e-9); err != nil {
				t.Fatalf("seed %s: %v", name, err)
			}
		}
	}
	return a
}

func sameEvent(x, y core.Event) bool {
	if x.Valid != y.Valid {
		return false
	}
	if !x.Valid {
		return true
	}
	return x.T == y.T && x.Slope == y.Slope &&
		x.FromNode == y.FromNode && x.FromTr == y.FromTr
}

// checkAgainstFull runs a fresh full analysis of a.Net and fails the test
// on the first arrival that differs from a's state.
func checkAgainstFull(t *testing.T, a *core.Analyzer, seeds []string, label string) {
	t.Helper()
	ref := newAnalyzer(t, a.Net, seeds)
	if err := ref.Run(); err != nil {
		t.Fatalf("%s: reference run: %v", label, err)
	}
	for _, n := range a.Net.Nodes {
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			got, want := a.Arrival(n, tr), ref.Arrival(n, tr)
			if !sameEvent(got, want) {
				t.Fatalf("%s: node %s %v: incremental %+v != full %+v",
					label, n.Name, tr, got, want)
			}
		}
	}
	if len(a.Unbounded) != len(ref.Unbounded) {
		t.Fatalf("%s: unbounded count %d != %d", label, len(a.Unbounded), len(ref.Unbounded))
	}
}

func TestReanalyzeMatchesFull(t *testing.T) {
	p := tech.NMOS4()
	um := 1e-6
	cases := []struct {
		name  string
		build func() (*netlist.Network, error)
		edits [][]incremental.Edit // sequential batches
	}{
		{
			name:  "resize-one-inverter",
			build: func() (*netlist.Network, error) { return gen.InverterChain(p, 8, 2) },
			edits: [][]incremental.Edit{{
				{Kind: incremental.Resize, Index: 3, W: 16 * um, L: 2 * um},
			}},
		},
		{
			name:  "add-cap-and-resize",
			build: func() (*netlist.Network, error) { return gen.RippleAdder(p, 2) },
			edits: [][]incremental.Edit{{
				{Kind: incremental.AddCap, Node: "s0", Cap: 150e-15},
				{Kind: incremental.Resize, Index: 0, W: 12 * um},
			}},
		},
		{
			name:  "remove-transistor",
			build: func() (*netlist.Network, error) { return gen.Decoder(p, 2) },
			edits: [][]incremental.Edit{{
				{Kind: incremental.RemoveTrans, Index: 5},
			}},
		},
		{
			name:  "add-pulldown",
			build: func() (*netlist.Network, error) { return gen.InverterChain(p, 6, 1) },
			edits: [][]incremental.Edit{{
				{Kind: incremental.AddTrans, Dev: tech.NEnh, Gate: "s2", A: "s4", B: "gnd",
					W: 8 * um, L: 2 * um},
			}},
		},
		{
			name:  "add-wire-and-new-node",
			build: func() (*netlist.Network, error) { return gen.PassChain(p, 6) },
			edits: [][]incremental.Edit{{
				{Kind: incremental.AddCap, Node: "tap_new", Cap: 40e-15},
				{Kind: incremental.AddTrans, Dev: tech.RWire, A: "p3", B: "tap_new", R: 900},
			}},
		},
		{
			name:  "retype-forces-full",
			build: func() (*netlist.Network, error) { return gen.RippleAdder(p, 2) },
			edits: [][]incremental.Edit{{
				{Kind: incremental.Retype, Node: "c1", NodeKind: netlist.KindOutput},
			}},
		},
		{
			name:  "sequential-batches",
			build: func() (*netlist.Network, error) { return gen.ALU(p, 2) },
			edits: [][]incremental.Edit{
				{{Kind: incremental.Resize, Index: 2, W: 10 * um}},
				{{Kind: incremental.AddCap, Node: "r0", Cap: 80e-15}},
				{{Kind: incremental.RemoveTrans, Index: 0}},
			},
		},
		{
			name:  "precharged-bus",
			build: func() (*netlist.Network, error) { return gen.PrechargedBus(p, 4) },
			edits: [][]incremental.Edit{{
				{Kind: incremental.Resize, Index: 1, W: 6 * um},
				{Kind: incremental.AddCap, Node: "bus", Cap: 60e-15},
			}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw, err := tc.build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			seeds := inputNames(nw)
			a := newAnalyzer(t, nw, seeds)
			if err := a.Run(); err != nil {
				t.Fatalf("initial run: %v", err)
			}
			for i, batch := range tc.edits {
				stats, err := a.Reanalyze(batch)
				if err != nil {
					t.Fatalf("batch %d: %v", i, err)
				}
				if stats.Epoch != uint64(i+1) {
					t.Errorf("batch %d: epoch %d, want %d", i, stats.Epoch, i+1)
				}
				checkAgainstFull(t, a, seeds, fmt.Sprintf("batch %d (%+v)", i, stats))
			}
		})
	}
}

// TestReanalyzeFallbacks pins the full-analysis triggers.
func TestReanalyzeFallbacks(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.InverterChain(p, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := inputNames(nw)
	a := newAnalyzer(t, nw, seeds)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	// Retype ⇒ full.
	stats, err := a.Reanalyze([]incremental.Edit{
		{Kind: incremental.Retype, Node: "s1", NodeKind: netlist.KindOutput},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Full {
		t.Errorf("retype batch: Full=false, want fallback (%+v)", stats)
	}
	// A chain edit dirties most of the chip ⇒ threshold fallback.
	a2 := newAnalyzer(t, nw, seeds)
	a2.Opts.ReanalyzeMaxDirty = 0.01
	if err := a2.Run(); err != nil {
		t.Fatal(err)
	}
	stats, err = a2.Reanalyze([]incremental.Edit{
		{Kind: incremental.Resize, Index: 0, W: 9e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Full {
		t.Errorf("tiny threshold: Full=false, want fallback (%+v)", stats)
	}
	checkAgainstFull(t, a2, seeds, "threshold fallback")
}

// circuits available to the fuzzer, all combinational nMOS structures
// with distinct stage shapes (static gates, pass chains, precharged bus,
// wide fan-in decode).
func fuzzCircuit(sel byte) (*netlist.Network, error) {
	p := tech.NMOS4()
	switch sel % 6 {
	case 0:
		return gen.InverterChain(p, 6, 2)
	case 1:
		return gen.PassChain(p, 5)
	case 2:
		return gen.RippleAdder(p, 2)
	case 3:
		return gen.Decoder(p, 2)
	case 4:
		return gen.PrechargedBus(p, 3)
	default:
		return gen.ALU(p, 2)
	}
}

// decodeEdits turns fuzz bytes into a valid-by-construction edit batch
// against a network that currently has nt transistors. It returns the
// edits and the transistor count after them, so sequential batches stay
// in range. Invalid combinations the fuzzer finds anyway (supply shorts,
// p-channel devices) are exercised through Apply's error path by the
// caller.
func decodeEdits(nw *netlist.Network, data []byte, pos *int, nt int) ([]incremental.Edit, int) {
	next := func() byte {
		if *pos >= len(data) {
			return 0
		}
		b := data[*pos]
		*pos++
		return b
	}
	var names []string
	for _, n := range nw.Nodes {
		names = append(names, n.Name)
	}
	pick := func() string { return names[int(next())%len(names)] }
	um := 1e-6
	count := int(next())%5 + 1
	var edits []incremental.Edit
	for e := 0; e < count; e++ {
		switch next() % 12 {
		case 0, 1, 2: // resize is the common designer move
			if nt == 0 {
				continue
			}
			edits = append(edits, incremental.Edit{
				Kind:  incremental.Resize,
				Index: int(next()) % nt,
				W:     float64(next()%24+2) * um,
				L:     float64(next()%3+2) * um,
			})
		case 3, 4, 5:
			edits = append(edits, incremental.Edit{
				Kind: incremental.AddCap,
				Node: pick(),
				Cap:  (float64(next()) - 64) * 1e-15,
			})
		case 6, 7:
			dev := tech.NEnh
			if next()%4 == 0 {
				dev = tech.NDep
			}
			edits = append(edits, incremental.Edit{
				Kind: incremental.AddTrans, Dev: dev,
				Gate: pick(), A: pick(), B: pick(),
				W: float64(next()%16+2) * um, L: 2 * um,
			})
			nt++
		case 8:
			edits = append(edits, incremental.Edit{
				Kind: incremental.AddTrans, Dev: tech.RWire,
				A: pick(), B: pick(),
				R: float64(next()%200+1) * 50,
			})
			nt++
		case 9, 10:
			if nt == 0 {
				continue
			}
			edits = append(edits, incremental.Edit{
				Kind:  incremental.RemoveTrans,
				Index: int(next()) % nt,
			})
			nt--
		default:
			// Retype a non-rail, non-input node (inputs stay inputs so the
			// seeded events remain applicable).
			name := pick()
			n := nw.Lookup(name)
			if n == nil || n.IsRail() || n.Kind == netlist.KindInput {
				continue
			}
			kinds := []netlist.NodeKind{netlist.KindNormal, netlist.KindOutput, netlist.KindInput}
			edits = append(edits, incremental.Edit{
				Kind: incremental.Retype, Node: name,
				NodeKind: kinds[int(next())%len(kinds)],
			})
		}
	}
	return edits, nt
}

// FuzzIncremental is the differential fuzzer: random edit batches applied
// through Reanalyze must leave arrivals bit-identical to a from-scratch
// analysis of the edited network, or fail identically when the batch is
// invalid.
func FuzzIncremental(f *testing.F) {
	f.Add([]byte{0, 2, 0, 3, 10, 2, 1, 7, 4})
	f.Add([]byte{1, 3, 3, 5, 90, 9, 1, 0, 2, 8, 2})
	f.Add([]byte{2, 2, 6, 1, 4, 7, 6, 11, 8, 1})
	f.Add([]byte{3, 1, 11, 6, 2, 5, 2, 200, 1})
	f.Add([]byte{4, 4, 0, 0, 20, 2, 9, 3, 3, 2, 120, 6, 1, 2, 3, 9})
	f.Add([]byte{5, 3, 8, 4, 5, 77, 0, 1, 14, 2, 10, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		nw, err := fuzzCircuit(data[0])
		if err != nil {
			t.Fatalf("circuit: %v", err)
		}
		seeds := inputNames(nw)
		a := newAnalyzer(t, nw, seeds)
		if err := a.Run(); err != nil {
			t.Fatalf("initial run: %v", err)
		}
		pos := 1
		nt := len(nw.Trans)
		for batch := 0; batch < 2 && pos < len(data); batch++ {
			var edits []incremental.Edit
			edits, nt = decodeEdits(a.Net, data, &pos, nt)
			if len(edits) == 0 {
				continue
			}
			_, err := a.Reanalyze(edits)
			if err != nil {
				// The batch must be invalid for a from-scratch Apply too,
				// and a failed Reanalyze must not have moved the analyzer.
				if _, err2 := incremental.Apply(a.Net, edits); err2 == nil {
					t.Fatalf("Reanalyze rejected a batch Apply accepts: %v", err)
				}
				return
			}
			checkAgainstFull(t, a, seeds, fmt.Sprintf("batch %d", batch))
		}
	})
}
