// Quickstart: build a small circuit with the public generator API, run the
// switch-level timing verifier under all three delay models, and print the
// critical path.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/tech"
)

func main() {
	// A 4 µm nMOS process, the technology Crystal was born on.
	p := tech.NMOS4()

	// A five-stage inverter chain, every stage fanning out to two extra
	// gate loads.
	nw, err := gen.InverterChain(p, 5, 2)
	if err != nil {
		log.Fatal(err)
	}
	st := nw.Stats()
	fmt.Printf("circuit %s: %d transistors, %d nodes\n\n", nw.Name, st.Trans, st.Nodes)

	// Time it under each model. Analytic tables keep the example instant;
	// swap in charlib.Default(p) for characterized tables.
	tables := delay.AnalyticTables(p)
	for _, m := range delay.All(tables) {
		a := core.New(nw, m, core.Options{})
		// The input rises and falls at t=0 with a 1 ns transition.
		if err := a.SetInputEventName("in", tech.Rise, 0, 1e-9); err != nil {
			log.Fatal(err)
		}
		if err := a.SetInputEventName("in", tech.Fall, 0, 1e-9); err != nil {
			log.Fatal(err)
		}
		if err := a.Run(); err != nil {
			log.Fatal(err)
		}
		ev, _ := a.MaxArrival()
		fmt.Printf("%-8s model: critical arrival %.2f ns\n", m.Name(), ev.T*1e9)
	}

	// Full report under the slope model.
	fmt.Println()
	a := core.New(nw, delay.NewSlope(tables), core.Options{})
	a.SetInputEventName("in", tech.Rise, 0, 1e-9)
	a.SetInputEventName("in", tech.Fall, 0, 1e-9)
	if err := a.Run(); err != nil {
		log.Fatal(err)
	}
	if err := a.WriteReport(os.Stdout, 1); err != nil {
		log.Fatal(err)
	}
}
