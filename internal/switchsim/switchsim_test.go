package switchsim

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// nmosInv wires a depletion-load inverter: out = NOT in.
func nmosInv(nw *netlist.Network, in, out *netlist.Node) {
	nw.AddTrans(tech.NEnh, in, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 0, 4*nw.Tech.MinL)
}

// cmosInv wires a complementary inverter.
func cmosInv(nw *netlist.Network, in, out *netlist.Node) {
	nw.AddTrans(tech.NEnh, in, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.PEnh, in, out, nw.Vdd(), 2*nw.Tech.MinW, 0)
}

func TestNMOSInverterLogic(t *testing.T) {
	nw := netlist.New("inv", tech.NMOS4())
	in, out := nw.Node("in"), nw.Node("out")
	nw.MarkInput(in)
	nmosInv(nw, in, out)
	s := New(nw)
	for _, tc := range []struct{ in, want Value }{
		{V0, V1}, {V1, V0}, {VX, VX},
	} {
		if err := s.SetInput(in, tc.in); err != nil {
			t.Fatal(err)
		}
		s.Settle()
		if got := s.Value(out); got != tc.want {
			t.Errorf("inv(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestCMOSInverterLogic(t *testing.T) {
	nw := netlist.New("cinv", tech.CMOS3())
	in, out := nw.Node("in"), nw.Node("out")
	nw.MarkInput(in)
	cmosInv(nw, in, out)
	s := New(nw)
	for _, tc := range []struct{ in, want Value }{
		{V0, V1}, {V1, V0}, {VX, VX},
	} {
		s.SetInput(in, tc.in)
		s.Settle()
		if got := s.Value(out); got != tc.want {
			t.Errorf("inv(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNMOSNand2(t *testing.T) {
	nw := netlist.New("nand", tech.NMOS4())
	a, b, out := nw.Node("a"), nw.Node("b"), nw.Node("out")
	mid := nw.Node("mid")
	nw.MarkInput(a)
	nw.MarkInput(b)
	nw.AddTrans(tech.NEnh, a, out, mid, 0, 0)
	nw.AddTrans(tech.NEnh, b, mid, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 0, 4*nw.Tech.MinL)
	s := New(nw)
	cases := []struct{ a, b, want Value }{
		{V0, V0, V1}, {V0, V1, V1}, {V1, V0, V1}, {V1, V1, V0},
		{VX, V1, VX}, {V0, VX, V1}, // 0 on a gate kills the path regardless of b
	}
	for _, tc := range cases {
		s.SetInput(a, tc.a)
		s.SetInput(b, tc.b)
		s.Settle()
		if got := s.Value(out); got != tc.want {
			t.Errorf("nand(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCMOSNor2(t *testing.T) {
	p := tech.CMOS3()
	nw := netlist.New("nor", p)
	a, b, out, mid := nw.Node("a"), nw.Node("b"), nw.Node("out"), nw.Node("mid")
	nw.MarkInput(a)
	nw.MarkInput(b)
	// Parallel n pulldowns, series p pullups.
	nw.AddTrans(tech.NEnh, a, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NEnh, b, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.PEnh, a, nw.Vdd(), mid, 2*p.MinW, 0)
	nw.AddTrans(tech.PEnh, b, mid, out, 2*p.MinW, 0)
	s := New(nw)
	cases := []struct{ a, b, want Value }{
		{V0, V0, V1}, {V0, V1, V0}, {V1, V0, V0}, {V1, V1, V0},
		{V1, VX, V0},
	}
	for _, tc := range cases {
		s.SetInput(a, tc.a)
		s.SetInput(b, tc.b)
		s.Settle()
		if got := s.Value(out); got != tc.want {
			t.Errorf("nor(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPassTransistorChain(t *testing.T) {
	nw := netlist.New("pass", tech.NMOS4())
	src := nw.Node("src")
	gate := nw.Node("gate")
	nw.MarkInput(src)
	nw.MarkInput(gate)
	prev := src
	for i := 0; i < 4; i++ {
		next := nw.Node(nodeName("n", i))
		nw.AddTrans(tech.NEnh, gate, prev, next, 0, 0)
		prev = next
	}
	s := New(nw)
	s.SetInput(src, V1)
	s.SetInput(gate, V1)
	s.Settle()
	if got := s.Value(prev); got != V1 {
		t.Errorf("chain end with gate on = %v, want 1", got)
	}
	// Gate off: the chain should retain its old value (stored charge).
	s.SetInput(gate, V0)
	s.SetInput(src, V0)
	s.Settle()
	if got := s.Value(prev); got != V1 {
		t.Errorf("chain end with gate off = %v, want held 1", got)
	}
	// Gate unknown: held 1 vs potential 0 through the chain → X.
	s.SetInput(gate, VX)
	s.Settle()
	if got := s.Value(prev); got != VX {
		t.Errorf("chain end with gate X = %v, want X", got)
	}
}

func nodeName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func TestChargeSharingConflict(t *testing.T) {
	nw := netlist.New("share", tech.NMOS4())
	a, b, g := nw.Node("a"), nw.Node("b"), nw.Node("g")
	nw.MarkInput(g)
	set := nw.Node("set")
	nw.MarkInput(set)
	// Drive a high and b low via pass transistors from inputs, then
	// disconnect and connect a-b: conflicting charge → X on both.
	inA, inB := nw.Node("inA"), nw.Node("inB")
	nw.MarkInput(inA)
	nw.MarkInput(inB)
	nw.AddTrans(tech.NEnh, set, inA, a, 0, 0)
	nw.AddTrans(tech.NEnh, set, inB, b, 0, 0)
	nw.AddTrans(tech.NEnh, g, a, b, 0, 0)

	s := New(nw)
	s.SetInput(inA, V1)
	s.SetInput(inB, V0)
	s.SetInput(set, V1)
	s.SetInput(g, V0)
	s.Settle()
	if s.Value(a) != V1 || s.Value(b) != V0 {
		t.Fatalf("setup failed: a=%v b=%v", s.Value(a), s.Value(b))
	}
	s.SetInput(set, V0)
	s.SetInput(g, V1)
	s.Settle()
	if s.Value(a) != VX || s.Value(b) != VX {
		t.Errorf("charge sharing: a=%v b=%v, want X X", s.Value(a), s.Value(b))
	}
}

func TestDrivenBeatsCharge(t *testing.T) {
	nw := netlist.New("str", tech.NMOS4())
	g, out := nw.Node("g"), nw.Node("out")
	nw.MarkInput(g)
	// Pulldown on out; out also shares charge with a floating cap node.
	float := nw.Node("float")
	always := nw.Node("always")
	nw.MarkInput(always)
	nw.AddTrans(tech.NEnh, g, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NEnh, always, out, float, 0, 0)
	s := New(nw)
	s.SetInput(always, V1)
	s.SetInput(g, V1)
	s.Settle()
	if s.Value(out) != V0 || s.Value(float) != V0 {
		t.Errorf("driven low: out=%v float=%v, want 0 0", s.Value(out), s.Value(float))
	}
}

func TestRingOscillatorGoesX(t *testing.T) {
	nw := netlist.New("ring", tech.NMOS4())
	n := []*netlist.Node{nw.Node("r0"), nw.Node("r1"), nw.Node("r2")}
	for i := range n {
		nmosInv(nw, n[i], n[(i+1)%3])
	}
	s := New(nw)
	s.Settle()
	for i, nd := range n {
		if got := s.Value(nd); got != VX {
			t.Errorf("ring node %d = %v, want X", i, got)
		}
	}
}

func TestLatchHoldsState(t *testing.T) {
	// Cross-coupled nMOS inverters with a pass-transistor write port.
	nw := netlist.New("latch", tech.NMOS4())
	q, qb := nw.Node("q"), nw.Node("qb")
	d, wr := nw.Node("d"), nw.Node("wr")
	nw.MarkInput(d)
	nw.MarkInput(wr)
	nmosInv(nw, q, qb)
	nmosInv(nw, qb, q)
	nw.AddTrans(tech.NEnh, wr, d, q, 2*nw.Tech.MinW, 0) // strong write port
	s := New(nw)
	s.SetInput(d, V0)
	s.SetInput(wr, V1)
	s.Settle()
	if s.Value(q) != V0 || s.Value(qb) != V1 {
		t.Fatalf("write 0: q=%v qb=%v", s.Value(q), s.Value(qb))
	}
	s.SetInput(wr, V0)
	s.Settle()
	if s.Value(q) != V0 || s.Value(qb) != V1 {
		t.Errorf("hold: q=%v qb=%v, want 0 1", s.Value(q), s.Value(qb))
	}
}

func TestSetInputErrors(t *testing.T) {
	nw := netlist.New("err", tech.NMOS4())
	s := New(nw)
	if err := s.SetInput(nw.Vdd(), V0); err == nil {
		t.Error("driving Vdd should fail")
	}
	if err := s.SetInputName("nope", V1); err == nil {
		t.Error("driving a missing node should fail")
	}
}

func TestXAbstractionSoundness(t *testing.T) {
	// The defining soundness property of ternary switch-level simulation:
	// weakening any subset of inputs from definite values to X must never
	// change a node that stays definite — X-ing inputs can only lose
	// information, not invent it. Checked on combinational networks
	// (NAND trees) over random vectors and random X masks.
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	p := tech.NMOS4()
	for trial := 0; trial < 30; trial++ {
		// Random 3-level NAND network over 6 inputs.
		nw := netlist.New("rand", p)
		var ins []*netlist.Node
		for i := 0; i < 6; i++ {
			n := nw.Node(nodeName("i", i))
			nw.MarkInput(n)
			ins = append(ins, n)
		}
		pool := append([]*netlist.Node{}, ins...)
		for g := 0; g < 8; g++ {
			a := pool[int(next()%uint64(len(pool)))]
			b := pool[int(next()%uint64(len(pool)))]
			out := nw.Node(nodeName("g", g))
			mid := nw.Node(nodeName("m", g))
			nw.AddTrans(tech.NEnh, a, out, mid, 0, 0)
			nw.AddTrans(tech.NEnh, b, mid, nw.GND(), 0, 0)
			nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 0, 4*p.MinL)
			pool = append(pool, out)
		}

		// Full vector.
		full := New(nw)
		vec := next()
		for i, in := range ins {
			full.SetInput(in, FromBool(vec&(1<<i) != 0))
		}
		full.Settle()
		ref := full.Snapshot()

		// Same vector with a random X mask.
		weak := New(nw)
		mask := next()
		for i, in := range ins {
			if mask&(1<<i) != 0 {
				weak.SetInput(in, VX)
			} else {
				weak.SetInput(in, FromBool(vec&(1<<i) != 0))
			}
		}
		weak.Settle()
		got := weak.Snapshot()
		for idx, v := range got {
			if v != VX && v != ref[idx] {
				t.Fatalf("trial %d: node %s definite %v under X mask but %v under full vector",
					trial, nw.Nodes[idx].Name, v, ref[idx])
			}
		}
	}
}

func TestOscillationFlagged(t *testing.T) {
	// A NAND-gated ring oscillator with a definite enable: once enabled,
	// node values flip every sweep and Settle must cut it off, forcing
	// the ring to X and reporting oscillation.
	nw := netlist.New("osc", tech.NMOS4())
	en := nw.Node("en")
	nw.MarkInput(en)
	n0, n1, n2 := nw.Node("r0"), nw.Node("r1"), nw.Node("r2")
	// NAND(en, r2) -> r0
	mid := nw.Node("mid")
	nw.AddTrans(tech.NEnh, en, n0, mid, 0, 0)
	nw.AddTrans(tech.NEnh, n2, mid, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, n0, nw.Vdd(), n0, 0, 4*nw.Tech.MinL)
	nmosInv(nw, n0, n1)
	nmosInv(nw, n1, n2)
	s := New(nw)
	// Disabled: stable, r0 high.
	s.SetInput(en, V0)
	s.Settle()
	if s.Oscillated() {
		t.Error("disabled ring should not oscillate")
	}
	if got := s.Value(n0); got != V1 {
		t.Fatalf("disabled ring r0 = %v, want 1", got)
	}
	// Enabled: the ring has no stable assignment; Settle must terminate
	// and mark oscillation.
	s.SetInput(en, V1)
	s.Settle()
	if !s.Oscillated() {
		t.Error("enabled ring should be flagged as oscillating")
	}
	for i, n := range []*netlist.Node{n0, n1, n2} {
		if got := s.Value(n); got != VX {
			t.Errorf("enabled ring node %d = %v, want X", i, got)
		}
	}
}

func TestSetValue(t *testing.T) {
	nw := netlist.New("sv", tech.NMOS4())
	g := nw.Node("g")
	nw.MarkInput(g)
	a, b := nw.Node("a"), nw.Node("b")
	nw.AddTrans(tech.NEnh, g, a, b, 0, 0)
	s := New(nw)
	// Stored values persist and share: agreeing charge stays definite,
	// conflicting charge collapses to X.
	if err := s.SetValue(a, V1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetValue(b, V1); err != nil {
		t.Fatal(err)
	}
	s.SetInput(g, V1)
	s.Settle()
	if got := s.Value(b); got != V1 {
		t.Errorf("b = %v, want held 1", got)
	}
	s.SetInput(g, V0)
	s.Settle()
	if err := s.SetValue(a, V0); err != nil {
		t.Fatal(err)
	}
	s.SetInput(g, V1)
	s.Settle()
	if s.Value(a) != VX || s.Value(b) != VX {
		t.Errorf("conflicting stored charge: a=%v b=%v, want X X", s.Value(a), s.Value(b))
	}
	// Error paths.
	if err := s.SetValue(nw.Vdd(), V0); err == nil {
		t.Error("SetValue on a rail should fail")
	}
	s.SetInput(g, V0)
	if err := s.SetValue(g, V1); err == nil {
		t.Error("SetValue on a driven node should fail")
	}
}

func TestWireTransparency(t *testing.T) {
	// A driven value crosses a wire resistor at full strength: the far
	// side of a wire must still overpower stored charge and depletion
	// pullups, unlike a pass-transistor hop.
	p := tech.NMOS4()
	nw := netlist.New("wire", p)
	in, g := nw.Node("in"), nw.Node("g")
	nw.MarkInput(in)
	nw.MarkInput(g)
	far := nw.Node("far")
	nw.AddResistor(in, far, 50e3)
	// A depletion pullup fights the far node; a wire-carried 0 must win
	// (it is still drive strength), where a pass-carried 0 also wins but
	// a *charge*-carried 0 would not.
	nw.AddTrans(tech.NDep, far, nw.Vdd(), far, 0, 4*p.MinL)
	s := New(nw)
	s.SetInput(in, V0)
	s.Settle()
	if got := s.Value(far); got != V0 {
		t.Errorf("wire-driven 0 vs depletion pullup = %v, want 0", got)
	}
	s.SetInput(in, V1)
	s.Settle()
	if got := s.Value(far); got != V1 {
		t.Errorf("wire-driven 1 = %v, want 1", got)
	}
}

func TestValueHelpers(t *testing.T) {
	if b, ok := V1.Bool(); !b || !ok {
		t.Error("V1.Bool")
	}
	if b, ok := V0.Bool(); b || !ok {
		t.Error("V0.Bool")
	}
	if _, ok := VX.Bool(); ok {
		t.Error("VX.Bool should not be ok")
	}
	if FromBool(true) != V1 || FromBool(false) != V0 {
		t.Error("FromBool")
	}
	if V0.String() != "0" || V1.String() != "1" || VX.String() != "X" {
		t.Error("String")
	}
}
