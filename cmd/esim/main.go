// Command esim is a batch switch-level logic simulator over .sim netlists,
// in the spirit of the Berkeley esim tool the paper's ecosystem grew from.
// It reads a command script (file or stdin) and prints node values after
// each settle.
//
// Usage:
//
//	esim -sim counter.sim [-tech nmos-4u] [-script cmds.txt]
//	     [-workers 1] [-snapshot counter.simx] [-vectors vecs.txt]
//
// -workers parallelizes the .sim parse (0 = all cores); -snapshot names
// a binary .simx cache loaded in place of parsing when fresh and
// rewritten otherwise (see docs/PERFORMANCE.md, "Ingest").
//
// Script commands (one per line, '#' comments):
//
//	h <node>...        drive nodes high
//	l <node>...        drive nodes low
//	x <node>...        release nodes (undriven unknown)
//	s                  settle and report watched nodes
//	w <node>...        add nodes to the watch list
//	d                  dump all node values
//	check <node>=<v>   assert a node's value (0, 1, or X); exit 1 on failure
//
// -vectors FILE switches to batch mode: instead of a command script, the
// file holds one input vector per line (0/1/X symbols, X = released), and
// every vector is settled independently from power-on state through the
// vectorized lattice engine. Two optional directives pick the columns:
//
//	inputs <node>...   map vector columns to these input nodes
//	                   (default: all inputs in netlist order; unmapped
//	                   inputs stay released)
//	watch <node>...    report these nodes per vector (default: outputs)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

func main() {
	simFile := flag.String("sim", "", "input .sim netlist (required)")
	techName := flag.String("tech", "nmos-4u", "technology: nmos-4u or cmos-3u")
	script := flag.String("script", "", "command script (default stdin)")
	workers := flag.Int("workers", 1, "parser worker count (0 = all cores)")
	snapshot := flag.String("snapshot", "", "binary .simx netlist cache: load it when fresh, rewrite it after a parse")
	vectors := flag.String("vectors", "", "vector file: stream input vectors through the batch engine instead of a script")
	flag.Parse()

	if *simFile == "" {
		fatal(fmt.Errorf("missing -sim file"))
	}
	var p *tech.Params
	switch *techName {
	case "nmos-4u", "nmos":
		p = tech.NMOS4()
	case "cmos-3u", "cmos":
		p = tech.CMOS3()
	default:
		fatal(fmt.Errorf("unknown technology %q", *techName))
	}
	nw, res, err := netlist.LoadSimFile(*simFile, *simFile, p,
		netlist.LoadOptions{Workers: *workers, Snapshot: *snapshot})
	if err != nil {
		fatal(err)
	}
	if *snapshot != "" {
		// A mapped view stays mapped for the life of the process.
		fmt.Fprintf(os.Stderr, "esim: netlist source: %s\n", res.Source)
	}

	if *vectors != "" {
		vf, err := os.Open(*vectors)
		if err != nil {
			fatal(err)
		}
		defer vf.Close()
		if err := runVectors(nw, vf, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	var in io.Reader = os.Stdin
	if *script != "" {
		sf, err := os.Open(*script)
		if err != nil {
			fatal(err)
		}
		defer sf.Close()
		in = sf
	}
	if err := run(nw, in, os.Stdout); err != nil {
		fatal(err)
	}
}

// runVectors executes a vector file through the batch engine; split out
// for testing. Every vector settles independently from power-on state.
func runVectors(nw *netlist.Network, in io.Reader, out io.Writer) error {
	b := switchsim.NewBatch(nw)
	inputs := b.Inputs()
	colOf := make(map[string]int, len(inputs))
	for i, n := range inputs {
		colOf[n.Name] = i
	}
	cols := make([]int, len(inputs)) // file column -> Inputs() column
	for i := range cols {
		cols[i] = i
	}
	colNames := b.InputNames()
	watch := nw.Outputs()
	var rows [][]switchsim.Value // full-width rows in Inputs() order
	var echo []string            // canonical per-row symbol echo
	sc := bufio.NewScanner(in)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "inputs":
			if len(rows) > 0 {
				return fmt.Errorf("line %d: inputs directive must precede vectors", lineno)
			}
			cols = cols[:0]
			colNames = colNames[:0]
			for _, name := range fields[1:] {
				c, ok := colOf[name]
				if !ok {
					return fmt.Errorf("line %d: %q is not an input node", lineno, name)
				}
				cols = append(cols, c)
				colNames = append(colNames, name)
			}
		case "watch":
			watch = watch[:0]
			for _, name := range fields[1:] {
				n := nw.Lookup(name)
				if n == nil {
					return fmt.Errorf("line %d: no node named %q", lineno, name)
				}
				watch = append(watch, n)
			}
		default:
			vals, err := switchsim.ParseVector(line, len(cols))
			if err != nil {
				return fmt.Errorf("line %d: %w", lineno, err)
			}
			row := make([]switchsim.Value, len(inputs))
			for i := range row {
				row[i] = switchsim.VX // unmapped inputs stay released
			}
			var sb strings.Builder
			for i, v := range vals {
				row[cols[i]] = v
				sb.WriteString(v.String())
			}
			rows = append(rows, row)
			echo = append(echo, sb.String())
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(watch) == 0 {
		return fmt.Errorf("no nodes to watch: mark outputs in the netlist or add a watch directive")
	}
	fmt.Fprintf(out, "inputs: %s\n", strings.Join(colNames, " "))
	names := make([]string, len(watch))
	for i, n := range watch {
		names[i] = n.Name
	}
	fmt.Fprintf(out, "watch: %s\n", strings.Join(names, " "))
	vecs := make([]switchsim.Value, 0, len(rows)*len(inputs))
	for _, row := range rows {
		vecs = append(vecs, row...)
	}
	res, err := b.Run(vecs, watch)
	if err != nil {
		return err
	}
	for v := 0; v < res.Vectors; v++ {
		fmt.Fprintf(out, "%s ->", echo[v])
		for i, n := range watch {
			fmt.Fprintf(out, " %s=%s", n.Name, res.Out[v][i])
		}
		if res.Osc[v] {
			fmt.Fprintf(out, " [oscillation → X]")
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "vectors: %d, sweeps: %d\n", res.Vectors, res.Sweeps)
	return nil
}

// run executes the command stream; split out for testing.
func run(nw *netlist.Network, in io.Reader, out io.Writer) error {
	s := switchsim.New(nw)
	var watch []string
	// Default watch list: marked outputs.
	for _, n := range nw.Outputs() {
		watch = append(watch, n.Name)
	}
	sc := bufio.NewScanner(in)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd := fields[0]
		args := fields[1:]
		drive := func(v switchsim.Value) error {
			for _, name := range args {
				if err := s.SetInputName(name, v); err != nil {
					return fmt.Errorf("line %d: %w", lineno, err)
				}
			}
			return nil
		}
		switch cmd {
		case "h":
			if err := drive(switchsim.V1); err != nil {
				return err
			}
		case "l":
			if err := drive(switchsim.V0); err != nil {
				return err
			}
		case "x":
			if err := drive(switchsim.VX); err != nil {
				return err
			}
		case "w":
			watch = append(watch, args...)
		case "s":
			sweeps := s.Settle()
			fmt.Fprintf(out, "settled (%d sweeps)", sweeps)
			if s.Oscillated() {
				fmt.Fprintf(out, " [oscillation → X]")
			}
			for _, name := range watch {
				fmt.Fprintf(out, " %s=%s", name, s.ValueName(name))
			}
			fmt.Fprintln(out)
		case "d":
			for _, name := range nw.SortedNodeNames() {
				fmt.Fprintf(out, "%s=%s ", name, s.ValueName(name))
			}
			fmt.Fprintln(out)
		case "check":
			for _, a := range args {
				name, val, ok := strings.Cut(a, "=")
				if !ok {
					return fmt.Errorf("line %d: bad check %q", lineno, a)
				}
				var want switchsim.Value
				switch val {
				case "0":
					want = switchsim.V0
				case "1":
					want = switchsim.V1
				case "X", "x":
					want = switchsim.VX
				default:
					return fmt.Errorf("line %d: bad value %q", lineno, val)
				}
				if got := s.ValueName(name); got != want {
					return fmt.Errorf("line %d: check failed: %s=%s, want %s", lineno, name, got, want)
				}
			}
		default:
			return fmt.Errorf("line %d: unknown command %q", lineno, cmd)
		}
	}
	return sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "esim:", err)
	os.Exit(1)
}
