// The worker pool: fan-out for independent analyses. One timing run is
// inherently sequential (a priority event loop), but a verification
// session rarely performs just one — accuracy sweeps run every circuit
// under every model, critical-path comparisons run every block per model,
// clocked analyses run one verifier per phase. RunMany spreads such
// independent units over the machine's cores; each unit remains the
// serial, deterministic analysis, so results are bit-identical to a
// single-worker run.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: n itself when positive,
// otherwise GOMAXPROCS (the "use the hardware" default). Capped at limit
// when limit is positive (no point spinning up more workers than jobs).
func Workers(n, limit int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if limit > 0 && n > limit {
		n = limit
	}
	if n < 1 {
		n = 1
	}
	return n
}

// RunMany executes fn(0..n-1) over min(workers, n) goroutines (workers <= 0
// selects GOMAXPROCS) and returns the error from the lowest-indexed job
// that failed, if any. Jobs are handed out in index order. With workers == 1
// (or n <= 1) everything runs inline on the calling goroutine — the strict
// serial mode. Jobs must be independent; fn writing only to its own index
// of a pre-sized results slice needs no locking.
func RunMany(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil || i < firstIdx {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
