// Differential coverage for the parallel ingest pipeline: the parallel
// parser must reproduce the serial parser's network — node order,
// indexes, capacitances, geometry, flags, adjacency — at every worker
// count, on every testdata netlist and every generator family. External
// test package so it can import gen (which itself imports netlist).
package netlist_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// parallelWorkerCounts are the sweep points: 1 is the strict-serial
// pipeline path (no goroutines), 2 and 8 force multi-chunk merges.
var parallelWorkerCounts = []int{1, 2, 8}

// genFamilySpecs sweeps every registered generator family at a small
// size (the same sizes as the core conformance sweep).
var genFamilySpecs = []string{
	"invchain:8", "fanout:6", "passchain:6", "superbuffer", "bus:4",
	"ripple:4", "manchester:4", "barrel:4", "decoder:3", "alu:4",
	"regfile:4,4", "polywire:6", "chip:4", "datapath:4", "shiftreg:4",
	"arraymul:4", "carrysel:8", "pla:4,6,4",
}

// checkParallelIdentity parses src with the serial parser and with the
// parallel parser at each worker count, and requires the results to be
// structurally identical and to re-serialize to identical bytes.
func checkParallelIdentity(t *testing.T, name string, p *tech.Params, src string) {
	t.Helper()
	want, err := netlist.ReadSim(name, p, strings.NewReader(src))
	if err != nil {
		t.Fatalf("serial parse: %v", err)
	}
	var wantText strings.Builder
	if err := netlist.WriteSim(&wantText, want); err != nil {
		t.Fatalf("WriteSim (serial): %v", err)
	}
	for _, workers := range parallelWorkerCounts {
		got, err := netlist.ReadSimParallel(name, p, strings.NewReader(src), workers)
		if err != nil {
			t.Fatalf("workers=%d: parallel parse: %v", workers, err)
		}
		if derr := netlist.DiffNetworks(want, got); derr != nil {
			t.Fatalf("workers=%d: network differs from serial: %v", workers, derr)
		}
		var gotText strings.Builder
		if err := netlist.WriteSim(&gotText, got); err != nil {
			t.Fatalf("workers=%d: WriteSim: %v", workers, err)
		}
		if gotText.String() != wantText.String() {
			t.Fatalf("workers=%d: WriteSim output differs from serial parse", workers)
		}
	}
}

// TestParallelParseIdentityTestdata runs the identity check over every
// .sim file in testdata/.
func TestParallelParseIdentityTestdata(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.sim"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata sim files: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			p := tech.NMOS4()
			if strings.Contains(filepath.Base(file), "cmos") {
				p = tech.CMOS3()
			}
			checkParallelIdentity(t, filepath.Base(file), p, string(data))
		})
	}
}

// TestParallelParseIdentityGen runs the identity check over every
// generator family, in both technologies, via a WriteSim round trip:
// build the circuit, serialize it, and require serial and parallel
// parses of that text to agree exactly.
func TestParallelParseIdentityGen(t *testing.T) {
	for _, p := range []*tech.Params{tech.NMOS4(), tech.CMOS3()} {
		for _, spec := range genFamilySpecs {
			spec := spec
			t.Run(p.Name+"/"+strings.ReplaceAll(spec, ":", "-"), func(t *testing.T) {
				t.Parallel()
				nw, err := gen.Build(spec, p)
				if err != nil {
					t.Fatal(err)
				}
				var src strings.Builder
				if err := netlist.WriteSim(&src, nw); err != nil {
					t.Fatal(err)
				}
				checkParallelIdentity(t, nw.Name, p, src.String())
			})
		}
	}
}
