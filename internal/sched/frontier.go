package sched

// PopFrontier pops a frontier batch: up to max items in strict queue
// order, stopping early when the next item's time is more than span past
// the first item's (span <= 0 disables the time fence). The batch is
// appended to dst (reset to length zero first) and returned.
//
// The frontier is the unit of speculation for a parallel drain: its items
// are evaluated concurrently against a snapshot of the arrival state, then
// committed one by one in this exact order, re-validating each item's
// inputs at commit time. Epoch fencing by span does not affect the result
// — validation catches any cross-item dependence — it only bounds how much
// speculative work a dependence can discard: events bunched at one time
// epoch rarely feed each other (a consequence lands strictly later than
// its cause unless the stage delay is zero), while a batch spanning a long
// stretch of the timeline speculates far ahead of anything it may dirty.
func (q *Queue) PopFrontier(dst []Item, max int, span float64) []Item {
	dst = dst[:0]
	if max <= 0 || q.Len() == 0 {
		return dst
	}
	first := q.Pop()
	dst = append(dst, first)
	fence := first.T + span
	for len(dst) < max && q.Len() > 0 {
		if span > 0 && q.Peek().T > fence {
			break
		}
		dst = append(dst, q.Pop())
	}
	return dst
}
