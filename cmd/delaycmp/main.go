// Command delaycmp reproduces the paper's evaluation tables and figures:
// model accuracy against the circuit-level reference (E2), pass-chain
// scaling (E3), fan-out scaling (E4), input-slope response (E5), verifier
// throughput (E6), per-model critical paths of datapath blocks (E7), and
// the RC-tree bound ablation (E8).
//
// Usage:
//
//	delaycmp [-tech nmos-4u|cmos-3u] [-exp e2,e3,...|all] [-tables char|analytic]
//	         [-workers N] [-snapshot DIR] [-cpuprofile f] [-memprofile f]
//
// -snapshot names a directory of .simx caches for the generated E6/E7
// blocks: on first use each block's network is written there, and later
// runs load the snapshots instead of regenerating the circuits. The
// cache is keyed by block name and technology only — clear the
// directory after changing the circuit generators.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/charlib"
	"repro/internal/delay"
	"repro/internal/experiments"
	"repro/internal/tech"
)

// config carries the parsed command line; run is pure over it.
type config struct {
	techName string
	expList  string
	tables   string
	format   string
	workers  int
	reorder  string
	snapshot string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.techName, "tech", "nmos-4u", "technology: nmos-4u or cmos-3u")
	flag.StringVar(&cfg.expList, "exp", "all", "experiments to run: comma list of e2..e8, or all")
	flag.StringVar(&cfg.tables, "tables", "char", "delay tables: char (characterized) or analytic")
	flag.StringVar(&cfg.format, "format", "table", "output for accuracy experiments: table or csv")
	flag.IntVar(&cfg.workers, "workers", 0, "worker goroutines for independent rows (0 = all cores, 1 = serial)")
	flag.StringVar(&cfg.reorder, "reorder", "on", "cache-conscious node reordering of compiled networks: on or off (results are bit-identical either way)")
	flag.StringVar(&cfg.snapshot, "snapshot", "", "directory of .simx caches for generated blocks (cleared manually when generators change)")
	cpuprof := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprof := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	if err := run(cfg, os.Stdout); err != nil {
		fatal(err)
	}
}

// run executes the selected experiments and writes the report to w; split
// out from main for testing.
func run(cfg config, w io.Writer) error {
	experiments.Workers = cfg.workers
	experiments.SnapshotDir = cfg.snapshot
	switch cfg.reorder {
	case "on", "":
		experiments.NoReorder = false
	case "off":
		experiments.NoReorder = true
	default:
		return fmt.Errorf("-reorder: want on or off, got %q", cfg.reorder)
	}

	var p *tech.Params
	switch cfg.techName {
	case "nmos-4u", "nmos":
		p = tech.NMOS4()
	case "cmos-3u", "cmos":
		p = tech.CMOS3()
	default:
		return fmt.Errorf("unknown technology %q", cfg.techName)
	}

	var tb *delay.Tables
	switch cfg.tables {
	case "char":
		var err error
		tb, err = charlib.Default(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "delaycmp: characterization failed (%v); using analytic tables\n", err)
		}
	case "analytic":
		tb = delay.AnalyticTables(p)
	default:
		return fmt.Errorf("unknown tables %q (want char or analytic)", cfg.tables)
	}
	fmt.Fprintf(w, "technology %s, %s tables\n\n", p.Name, tb.Source)

	want := map[string]bool{}
	if cfg.expList == "all" {
		for _, e := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"} {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(cfg.expList, ",") {
			want[strings.TrimSpace(strings.ToLower(e))] = true
		}
	}

	if want["e1"] {
		fmt.Fprintln(w, "E1: slope-model characterization curves (Rmult vs slope ratio)")
		analytic := delay.AnalyticTables(p)
		for _, d := range tech.Devices() {
			for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
				if tb.RSquare[d][tr] == 0 {
					continue
				}
				c := tb.Curve(d, tr)
				fmt.Fprintf(w, "  %s/%s Reff=%.0fΩ/sq (rule of thumb %.0f):",
					d, tr, tb.RSquare[d][tr], p.RSquare(d, tr))
				for i, r := range c.Ratio {
					fmt.Fprintf(w, " %g→%.2f", r, c.RMult[i])
				}
				if tb.Source == "characterized" {
					ac := analytic.Curve(d, tr)
					last := c.Ratio[len(c.Ratio)-1]
					fmt.Fprintf(w, "  [analytic@%g: %.2f]", last, ac.MultAt(last))
				}
				fmt.Fprintln(w)
			}
		}
		fmt.Fprintln(w)
	}

	if want["e2"] {
		rows, err := experiments.E2ModelAccuracy(p, tb)
		if err != nil {
			return err
		}
		renderAccuracy(w, cfg.format, "E2: model accuracy vs analog reference", rows)
	}
	if want["e3"] {
		rows, err := experiments.E3PassChains(p, tb, nil)
		if err != nil {
			return err
		}
		renderAccuracy(w, cfg.format, "E3: pass-transistor chain scaling", rows)
	}
	if want["e4"] {
		rows, err := experiments.E4Fanout(p, tb, nil)
		if err != nil {
			return err
		}
		renderAccuracy(w, cfg.format, "E4: delay vs fan-out", rows)
	}
	if want["e5"] {
		rows, err := experiments.E5InputSlope(p, tb, nil)
		if err != nil {
			return err
		}
		renderAccuracy(w, cfg.format, "E5: delay vs input transition time", rows)
	}
	if want["e6"] {
		rows, err := experiments.E6Throughput(p, tb, "slope")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatThroughput("E6: verifier throughput (slope model)", rows))
	}
	if want["e7"] {
		rows, err := experiments.E7CriticalPaths(p, tb)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatCritical("E7: critical paths per model", rows))
	}
	if want["e9"] {
		rows, err := experiments.E9PolyWire(p, tb, nil)
		if err != nil {
			return err
		}
		renderAccuracy(w, cfg.format, "E9: resistive interconnect wire scaling", rows)
	}
	if want["e8"] {
		rows, err := experiments.E8RCBounds(12, 10, 2024)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatRCBounds("E8: RPH bounds on random RC trees (v=0.5)", rows))
	}
	return nil
}

// renderAccuracy prints rows in the selected format.
func renderAccuracy(w io.Writer, format, title string, rows []experiments.AccuracyRow) {
	if format == "csv" {
		fmt.Fprintf(w, "# %s\n%s\n", title, experiments.CSVAccuracy(rows))
		return
	}
	fmt.Fprintln(w, experiments.FormatAccuracy(title, rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "delaycmp:", err)
	os.Exit(1)
}
