// Multi-phase clocked analysis: the way Crystal was actually used on
// two-phase nMOS chips. Each phase transition toggles the clock nets;
// the verifier times the logic that evaluates during the phase; latched
// state (settled node values) carries into the next phase.
package core

import (
	"fmt"
	"io"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// Phase describes one clock phase of a multi-phase schedule.
type Phase struct {
	// Name labels the phase in reports ("phi1", "phi2").
	Name string
	// High and Low list the clock nodes at each level during the phase.
	// At the phase boundary, a clock that changes level receives a
	// worst-case transition event; unchanged clocks are held fixed.
	High, Low []*netlist.Node
	// Duration is the phase length in seconds; arrivals beyond it are
	// violations.
	Duration float64
	// Slope is the clock edge transition time (0 = analyzer default).
	Slope float64
}

// PhaseResult is the outcome of one phase's analysis.
type PhaseResult struct {
	Phase      Phase
	Analyzer   *Analyzer
	Worst      Event
	WorstPath  *Path
	Violations int
}

// ClockedAnalysis runs a sequence of phases over one network.
type ClockedAnalysis struct {
	Net    *netlist.Network
	Model  delay.Model
	Opts   Options
	Phases []Phase
	// Fixed pins non-clock control inputs for the whole schedule.
	Fixed map[string]switchsim.Value
}

// clockLevel returns the level of node n in phase p, or -1 if n is not a
// clock of that phase.
func clockLevel(p Phase, n *netlist.Node) int {
	for _, h := range p.High {
		if h == n {
			return 1
		}
	}
	for _, l := range p.Low {
		if l == n {
			return 0
		}
	}
	return -1
}

// Run executes the schedule: for each phase, clocks that change level
// from the previous phase get transition events at t=0, unchanged clocks
// are fixed, and the settled node values of the previous phase seed the
// network state. The previous phase's *last* state is established by a
// functional settle, not by the timing analysis (timing is worst-case;
// state is the user-visible vector behaviour).
func (ca *ClockedAnalysis) Run() ([]PhaseResult, error) {
	if len(ca.Phases) == 0 {
		return nil, fmt.Errorf("core: no phases given")
	}
	nw := ca.Net
	// Functional tracker: maintains the latched state across phases.
	tracker := switchsim.New(nw)
	for name, v := range ca.Fixed {
		n := nw.Lookup(name)
		if n == nil {
			return nil, fmt.Errorf("core: no fixed node %q", name)
		}
		if err := tracker.SetInput(n, v); err != nil {
			return nil, err
		}
	}
	// Establish the state before the first phase: clocks at their
	// pre-phase-0 levels, i.e. the levels of the LAST phase (a cyclic
	// schedule), so the first boundary sees real transitions.
	last := ca.Phases[len(ca.Phases)-1]
	for _, n := range last.High {
		if err := tracker.SetInput(n, switchsim.V1); err != nil {
			return nil, err
		}
	}
	for _, n := range last.Low {
		if err := tracker.SetInput(n, switchsim.V0); err != nil {
			return nil, err
		}
	}
	tracker.Settle()

	// Pass 1 (serial): walk the schedule with the functional tracker. The
	// latched state is inherently sequential — each phase's snapshot
	// depends on the previous settle — but capturing it is cheap. What
	// falls out per phase is a self-contained setup: the state snapshot,
	// the clocks held fixed, and the clocks that fire.
	type clockFix struct {
		n *netlist.Node
		v switchsim.Value
	}
	type phaseSetup struct {
		ph       Phase
		snapshot []switchsim.Value
		fixes    []clockFix
		rising   []*netlist.Node
	}
	setups := make([]phaseSetup, 0, len(ca.Phases))
	prev := last
	for _, ph := range ca.Phases {
		if ph.Duration <= 0 {
			return nil, fmt.Errorf("core: phase %s needs a positive duration", ph.Name)
		}
		su := phaseSetup{ph: ph, snapshot: tracker.Snapshot()}
		// Clock handling: a clock rising at the boundary is the phase's
		// evaluation trigger and gets a Rise event; every other clock —
		// unchanged or falling — is held at its phase level, so pass
		// gates controlled by the low clock are definitely off during
		// the phase (non-overlapping two-phase discipline; the same
		// directive a Crystal user gave).
		clocks := append(append([]*netlist.Node{}, ph.High...), ph.Low...)
		for _, n := range clocks {
			now := clockLevel(ph, n)
			before := clockLevel(prev, n)
			if before == -1 {
				before = now // not scheduled last phase: assume held
			}
			if now == before || now == 0 {
				su.fixes = append(su.fixes, clockFix{n, switchsim.FromBool(now == 1)})
				continue
			}
			if n.Kind != netlist.KindInput {
				return nil, fmt.Errorf("core: clock %s must be marked as an input", n.Name)
			}
			su.rising = append(su.rising, n)
		}
		setups = append(setups, su)

		// Advance the functional state: apply the new clock levels and
		// settle for the next boundary.
		for _, n := range ph.High {
			if err := tracker.SetInput(n, switchsim.V1); err != nil {
				return nil, err
			}
		}
		for _, n := range ph.Low {
			if err := tracker.SetInput(n, switchsim.V0); err != nil {
				return nil, err
			}
		}
		tracker.Settle()
		prev = ph
	}

	// Pass 2 (parallel): with the setups captured, the per-phase timing
	// analyses are independent and fan out over the pool. Each phase has
	// its own sensitization (different clock levels), so no stage database
	// is shared between them; the inner analyzers run strictly serial.
	inner := ca.Opts
	if Workers(ca.Opts.Workers, len(setups)) > 1 {
		inner.Workers = 1
	}
	out := make([]PhaseResult, len(setups))
	err := RunMany(len(setups), ca.Opts.Workers, func(i int) error {
		su := setups[i]
		a := New(nw, ca.Model, inner)
		for name, v := range ca.Fixed {
			a.SetFixed(nw.Lookup(name), v)
		}
		// Carry the settled state into the analyzer's sensitization.
		a.initial = su.snapshot
		for _, f := range su.fixes {
			a.SetFixed(f.n, f.v)
		}
		for _, n := range su.rising {
			if err := a.SetInputEvent(n, tech.Rise, 0, su.ph.Slope); err != nil {
				return err
			}
		}
		if err := a.Run(); err != nil {
			return fmt.Errorf("phase %s: %w", su.ph.Name, err)
		}
		worst, path := a.WorstArrival()
		res := PhaseResult{Phase: su.ph, Analyzer: a, Worst: worst, WorstPath: path}
		// Violations count every node that fails to settle within the
		// phase: internal latch inputs matter as much as chip outputs.
		for _, n := range nw.Nodes {
			if n.IsRail() || n.Kind == netlist.KindInput {
				continue
			}
			for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
				if ev := a.Arrival(n, tr); ev.Valid && ev.T > su.ph.Duration {
					res.Violations++
				}
			}
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WritePhaseReport renders the schedule outcome.
func WritePhaseReport(w io.Writer, results []PhaseResult) {
	for _, r := range results {
		status := "ok"
		if r.Violations > 0 {
			status = fmt.Sprintf("%d violation(s)", r.Violations)
		}
		worst := "no arrivals"
		if r.Worst.Valid {
			worst = fmt.Sprintf("worst %s at %s", r.WorstPath.End().Node.Name, timeUnit(r.Worst.T))
		}
		fmt.Fprintf(w, "phase %-8s duration %-10s %s — %s\n",
			r.Phase.Name, timeUnit(r.Phase.Duration), worst, status)
	}
}
