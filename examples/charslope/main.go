// Slope-table characterization walkthrough: measures one device's
// effective-resistance curve against the analog reference and prints it
// next to the analytic fallback — the data behind figure E1.
//
//	go run ./examples/charslope
package main

import (
	"fmt"
	"log"

	"repro/internal/charlib"
	"repro/internal/delay"
	"repro/internal/tech"
)

func main() {
	p := tech.NMOS4()
	fmt.Printf("characterizing %s against the analog reference…\n\n", p.Name)
	tb, err := charlib.Characterize(p, charlib.Options{
		Ratios: []float64{0, 0.5, 1, 2, 4, 8, 16, 32},
	})
	if err != nil {
		log.Fatal(err)
	}
	analytic := delay.AnalyticTables(p)

	dev, tr := tech.NEnh, tech.Fall
	fmt.Printf("device %s, output %s\n", dev, tr)
	fmt.Printf("  effective resistance: %.0f Ω/sq characterized, %.0f Ω/sq rule of thumb\n\n",
		tb.RSquare[dev][tr], p.RSquare(dev, tr))
	c := tb.Curve(dev, tr)
	ac := analytic.Curve(dev, tr)
	fmt.Printf("  %-8s %-14s %-14s %-10s\n", "ratio", "Rmult (meas)", "Rmult (anl)", "Tfactor")
	for i, r := range c.Ratio {
		fmt.Printf("  %-8.3g %-14.3f %-14.3f %-10.3f\n",
			r, c.RMult[i], ac.MultAt(r), c.TFactor[i])
	}
	fmt.Println("\nthe measured curve is what the slope model interpolates at analysis")
	fmt.Println("time: effective resistance grows as the input slows relative to the")
	fmt.Println("stage's intrinsic RC delay.")
}
