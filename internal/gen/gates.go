// Package gen generates benchmark circuits as switch-level networks: the
// stand-in for the extracted chip layouts the paper's evaluation ran on.
// Gates adapt to the target technology — depletion-load nMOS or
// complementary CMOS — so every higher-level generator works in both.
//
// Conventions: generators mark their ports with MarkInput/MarkOutput and
// use predictable names ("in", "out", "a0".."aN", "cin", ...), documented
// per generator. All geometry derives from the technology minima.
package gen

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// Lib wraps a network under construction with gate-level builders.
type Lib struct {
	NW   *netlist.Network
	cmos bool
	uniq int
}

// NewLib starts a network in technology p. Gates are CMOS when the
// technology has p-channel devices, depletion-load nMOS otherwise.
func NewLib(name string, p *tech.Params) *Lib {
	return &Lib{NW: netlist.New(name, p), cmos: p.HasPChannel()}
}

// Fresh returns a new uniquely named internal node with the given prefix.
func (l *Lib) Fresh(prefix string) *netlist.Node {
	l.uniq++
	return l.NW.Node(fmt.Sprintf("%s_%d", prefix, l.uniq))
}

// Inverter wires out = NOT in. size scales driver width (1 = minimum).
func (l *Lib) Inverter(in, out *netlist.Node, size float64) {
	p := l.NW.Tech
	w := size * p.MinW
	if l.cmos {
		l.NW.AddTrans(tech.NEnh, in, out, l.NW.GND(), w, p.MinL)
		l.NW.AddTrans(tech.PEnh, in, out, l.NW.Vdd(), 2*w, p.MinL)
		return
	}
	l.NW.AddTrans(tech.NEnh, in, out, l.NW.GND(), w, p.MinL)
	// The load scales with the driver so a sized-up inverter is faster in
	// both directions while preserving the 4:1 pullup ratio.
	l.NW.AddTrans(tech.NDep, out, l.NW.Vdd(), out, w, 4*p.MinL)
}

// Nand wires out = NAND(ins...). Series pulldowns are widened by the
// fan-in to preserve drive (and, in nMOS, the pullup ratio).
func (l *Lib) Nand(out *netlist.Node, ins ...*netlist.Node) {
	if len(ins) == 0 {
		panic("gen: NAND with no inputs")
	}
	p := l.NW.Tech
	k := float64(len(ins))
	// Series n-channel pulldown chain from out to GND.
	prev := out
	for i, in := range ins {
		var next *netlist.Node
		if i == len(ins)-1 {
			next = l.NW.GND()
		} else {
			next = l.Fresh(out.Name + "_nd")
		}
		l.NW.AddTrans(tech.NEnh, in, prev, next, k*p.MinW, p.MinL)
		prev = next
	}
	if l.cmos {
		for _, in := range ins {
			l.NW.AddTrans(tech.PEnh, in, out, l.NW.Vdd(), 2*p.MinW, p.MinL)
		}
		return
	}
	l.NW.AddTrans(tech.NDep, out, l.NW.Vdd(), out, p.MinW, 4*p.MinL)
}

// Nor wires out = NOR(ins...).
func (l *Lib) Nor(out *netlist.Node, ins ...*netlist.Node) {
	if len(ins) == 0 {
		panic("gen: NOR with no inputs")
	}
	p := l.NW.Tech
	for _, in := range ins {
		l.NW.AddTrans(tech.NEnh, in, out, l.NW.GND(), p.MinW, p.MinL)
	}
	if l.cmos {
		k := float64(len(ins))
		prev := l.NW.Vdd()
		for i, in := range ins {
			var next *netlist.Node
			if i == len(ins)-1 {
				next = out
			} else {
				next = l.Fresh(out.Name + "_pu")
			}
			l.NW.AddTrans(tech.PEnh, in, prev, next, k*2*p.MinW, p.MinL)
			prev = next
		}
		return
	}
	l.NW.AddTrans(tech.NDep, out, l.NW.Vdd(), out, p.MinW, 4*p.MinL)
}

// And wires out = AND(ins...) as NAND + inverter.
func (l *Lib) And(out *netlist.Node, ins ...*netlist.Node) {
	mid := l.Fresh(out.Name + "_nand")
	l.Nand(mid, ins...)
	l.Inverter(mid, out, 1)
}

// Or wires out = OR(ins...) as NOR + inverter.
func (l *Lib) Or(out *netlist.Node, ins ...*netlist.Node) {
	mid := l.Fresh(out.Name + "_nor")
	l.Nor(mid, ins...)
	l.Inverter(mid, out, 1)
}

// Xor wires out = a XOR b with the classic four-NAND structure.
func (l *Lib) Xor(out, a, b *netlist.Node) {
	x := l.Fresh(out.Name + "_x")
	l.Nand(x, a, b)
	u := l.Fresh(out.Name + "_u")
	v := l.Fresh(out.Name + "_v")
	l.Nand(u, a, x)
	l.Nand(v, b, x)
	l.Nand(out, u, v)
}

// Xnor wires out = NOT(a XOR b).
func (l *Lib) Xnor(out, a, b *netlist.Node) {
	x := l.Fresh(out.Name + "_xor")
	l.Xor(x, a, b)
	l.Inverter(x, out, 1)
}

// PassGate wires a pass element between x and y gated by g: a single
// n-channel device in nMOS, a full transmission gate (with gb the
// complement control) in CMOS when gb is non-nil.
func (l *Lib) PassGate(g, gb, x, y *netlist.Node) {
	p := l.NW.Tech
	l.NW.AddTrans(tech.NEnh, g, x, y, p.MinW, p.MinL)
	if l.cmos && gb != nil {
		l.NW.AddTrans(tech.PEnh, gb, x, y, 2*p.MinW, p.MinL)
	}
}

// PassGateDir is PassGate with a flow hint: signal propagates only from →
// to. Flow hints are how Crystal's users broke the sneak paths that
// bidirectional pass structures otherwise present to worst-case analysis.
func (l *Lib) PassGateDir(g, gb, from, to *netlist.Node) {
	p := l.NW.Tech
	t := l.NW.AddTrans(tech.NEnh, g, from, to, p.MinW, p.MinL)
	t.Flow = netlist.FlowAB
	if l.cmos && gb != nil {
		t2 := l.NW.AddTrans(tech.PEnh, gb, from, to, 2*p.MinW, p.MinL)
		t2.Flow = netlist.FlowAB
	}
}

// Buffer wires out = in through two inverters, the second scaled up —
// the "superbuffer" used to drive heavy loads.
func (l *Lib) Buffer(in, out *netlist.Node, drive float64) {
	mid := l.Fresh(out.Name + "_sb")
	l.Inverter(in, mid, 1)
	l.Inverter(mid, out, drive)
}

// FullAdder wires sum = a⊕b⊕cin and cout = majority(a,b,cin) from NAND
// logic (nine gates).
func (l *Lib) FullAdder(sum, cout, a, b, cin *netlist.Node) {
	ab := l.Fresh(sum.Name + "_ab")
	l.Xor(ab, a, b)
	l.Xor(sum, ab, cin)
	n1 := l.Fresh(cout.Name + "_n1")
	n2 := l.Fresh(cout.Name + "_n2")
	n3 := l.Fresh(cout.Name + "_n3")
	l.Nand(n1, a, b)
	l.Nand(n2, a, cin)
	l.Nand(n3, b, cin)
	l.Nand(cout, n1, n2, n3)
}

// Mux2 wires out = sel ? a : b with pass gates; selb must be the
// complement of sel (generated internally if nil).
func (l *Lib) Mux2(out, sel, selb, a, b *netlist.Node) {
	if selb == nil {
		selb = l.Fresh(out.Name + "_selb")
		l.Inverter(sel, selb, 1)
	}
	l.PassGate(sel, selb, a, out)
	l.PassGate(selb, sel, b, out)
}
