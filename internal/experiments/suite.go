// The accuracy suite: the small test circuits of experiment E2, built
// from the generators, each with a defined stimulus.
package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// Suite returns the E2 accuracy scenarios for technology p. Every circuit
// the paper's accuracy table sampled has an analogue here: inverters at
// several loads, series gates, a superbuffer, pass chains, a precharged
// bus, and a slow-input case that isolates the slope effect.
func Suite(p *tech.Params) ([]*Scenario, error) {
	var out []*Scenario
	add := func(s *Scenario, err error) error {
		if err != nil {
			return err
		}
		out = append(out, s)
		return nil
	}
	steps := []func() (*Scenario, error){
		func() (*Scenario, error) { return invScenario(p, 0, 0, "inv-1x") },
		func() (*Scenario, error) { return invScenario(p, 4, 0, "inv-fan4") },
		func() (*Scenario, error) { return chainScenario(p, 5) },
		func() (*Scenario, error) { return nandScenario(p, 2) },
		func() (*Scenario, error) { return nandScenario(p, 3) },
		func() (*Scenario, error) { return norScenario(p) },
		func() (*Scenario, error) { return superbufferScenario(p) },
		func() (*Scenario, error) { return passScenario(p, 3) },
		func() (*Scenario, error) { return passScenario(p, 6) },
		func() (*Scenario, error) { return busScenario(p) },
		func() (*Scenario, error) { return invScenario(p, 2, 25e-9, "inv-slow-in") },
	}
	for _, f := range steps {
		if err := add(f()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func invScenario(p *tech.Params, fanout int, slope float64, name string) (*Scenario, error) {
	nw, err := gen.FanoutInverter(p, fanout)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:  name,
		Net:   nw,
		Input: "in", InTr: tech.Rise, InSlope: slope,
		Output: "out", OutTr: tech.Fall,
	}, nil
}

func chainScenario(p *tech.Params, n int) (*Scenario, error) {
	nw, err := gen.InverterChain(p, n, 0)
	if err != nil {
		return nil, err
	}
	outTr := tech.Fall
	if n%2 == 0 {
		outTr = tech.Rise
	}
	return &Scenario{
		Name:  fmt.Sprintf("inv-chain%d", n),
		Net:   nw,
		Input: "in", InTr: tech.Rise,
		Output: "out", OutTr: outTr,
	}, nil
}

func nandScenario(p *tech.Params, k int) (*Scenario, error) {
	l := gen.NewLib(fmt.Sprintf("nand%d", k), p)
	out := l.NW.Node("out")
	l.NW.MarkOutput(out)
	ins := make([]*netlist.Node, k)
	fixed := map[string]switchsim.Value{}
	for i := range ins {
		ins[i] = l.NW.Node(fmt.Sprintf("i%d", i))
		l.NW.MarkInput(ins[i])
		// The switching input gates the transistor nearest GND (the
		// last in the stack): with the others already on, the whole
		// internal stack is charged high before the event, so the
		// models' charge-everything assumption matches the reference
		// (and it is the genuinely worst arrival).
		if i < k-1 {
			fixed[ins[i].Name] = switchsim.V1
		}
	}
	l.Nand(out, ins...)
	// Give the gate a realistic load.
	l.Inverter(out, l.Fresh("load"), 1)
	return &Scenario{
		Name:  fmt.Sprintf("nand%d", k),
		Net:   l.NW,
		Fixed: fixed,
		Input: fmt.Sprintf("i%d", k-1), InTr: tech.Rise,
		Output: "out", OutTr: tech.Fall,
	}, nil
}

func norScenario(p *tech.Params) (*Scenario, error) {
	l := gen.NewLib("nor2", p)
	out := l.NW.Node("out")
	l.NW.MarkOutput(out)
	a := l.NW.Node("a")
	b := l.NW.Node("b")
	l.NW.MarkInput(a)
	l.NW.MarkInput(b)
	l.Nor(out, a, b)
	l.Inverter(out, l.Fresh("load"), 1)
	return &Scenario{
		Name:  "nor2",
		Net:   l.NW,
		Fixed: map[string]switchsim.Value{"b": switchsim.V0},
		Input: "a", InTr: tech.Rise,
		Output: "out", OutTr: tech.Fall,
	}, nil
}

func superbufferScenario(p *tech.Params) (*Scenario, error) {
	nw, err := gen.Superbuffer(p)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:  "superbuffer",
		Net:   nw,
		Input: "in", InTr: tech.Fall,
		Output: "out", OutTr: tech.Fall,
	}, nil
}

func passScenario(p *tech.Params, n int) (*Scenario, error) {
	nw, err := gen.PassChain(p, n)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:  fmt.Sprintf("pass%d", n),
		Net:   nw,
		Fixed: map[string]switchsim.Value{"ctl": switchsim.V1},
		Input: "in", InTr: tech.Fall,
		Output: "out", OutTr: tech.Fall,
	}, nil
}

func busScenario(p *tech.Params) (*Scenario, error) {
	nw, err := gen.PrechargedBus(p, 4)
	if err != nil {
		return nil, err
	}
	fixed := map[string]switchsim.Value{}
	for i := 0; i < 4; i++ {
		fixed[fmt.Sprintf("d%d", i)] = switchsim.V1
		if i > 0 {
			fixed[fmt.Sprintf("en%d", i)] = switchsim.V0
		}
	}
	return &Scenario{
		Name:  "bus4",
		Net:   nw,
		Fixed: fixed,
		Input: "en0", InTr: tech.Rise,
		Output: "bus", OutTr: tech.Fall,
	}, nil
}
