package gen

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// both runs the subtest under both technologies.
func both(t *testing.T, f func(t *testing.T, p *tech.Params)) {
	t.Helper()
	for _, p := range []*tech.Params{tech.NMOS4(), tech.CMOS3()} {
		p := p
		t.Run(p.Name, func(t *testing.T) { f(t, p) })
	}
}

func checkNet(t *testing.T, nw *netlist.Network) {
	t.Helper()
	if err := nw.Check(); err != nil {
		t.Fatalf("network check: %v", err)
	}
}

func setBits(t *testing.T, s *switchsim.Sim, prefix string, width, value int) {
	t.Helper()
	for i := 0; i < width; i++ {
		v := switchsim.FromBool(value&(1<<i) != 0)
		if err := s.SetInputName(fmt.Sprintf("%s%d", prefix, i), v); err != nil {
			t.Fatal(err)
		}
	}
}

func readBits(t *testing.T, s *switchsim.Sim, prefix string, width int) (int, bool) {
	t.Helper()
	val := 0
	for i := 0; i < width; i++ {
		b, ok := s.ValueName(fmt.Sprintf("%s%d", prefix, i)).Bool()
		if !ok {
			return 0, false
		}
		if b {
			val |= 1 << i
		}
	}
	return val, true
}

func TestInverterChainFunctional(t *testing.T) {
	both(t, func(t *testing.T, p *tech.Params) {
		nw, err := InverterChain(p, 5, 2)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, nw)
		s := switchsim.New(nw)
		for _, in := range []switchsim.Value{switchsim.V0, switchsim.V1} {
			s.SetInputName("in", in)
			s.Settle()
			want := switchsim.FromBool(in == switchsim.V0) // odd chain inverts
			if got := s.ValueName("out"); got != want {
				t.Errorf("chain(%v) = %v, want %v", in, got, want)
			}
		}
	})
}

func TestRippleAdderExhaustive(t *testing.T) {
	both(t, func(t *testing.T, p *tech.Params) {
		const w = 3
		nw, err := RippleAdder(p, w)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, nw)
		s := switchsim.New(nw)
		for a := 0; a < 1<<w; a++ {
			for b := 0; b < 1<<w; b++ {
				for c := 0; c < 2; c++ {
					setBits(t, s, "a", w, a)
					setBits(t, s, "b", w, b)
					s.SetInputName("cin", switchsim.FromBool(c == 1))
					s.Settle()
					sum, ok := readBits(t, s, "s", w)
					if !ok {
						t.Fatalf("add(%d,%d,%d): X in sum", a, b, c)
					}
					co, ok := s.ValueName("cout").Bool()
					if !ok {
						t.Fatalf("add(%d,%d,%d): X carry", a, b, c)
					}
					got := sum
					if co {
						got |= 1 << w
					}
					if want := a + b + c; got != want {
						t.Errorf("add(%d,%d,%d) = %d, want %d", a, b, c, got, want)
					}
				}
			}
		}
	})
}

func TestDecoderExhaustive(t *testing.T) {
	both(t, func(t *testing.T, p *tech.Params) {
		const n = 3
		nw, err := Decoder(p, n)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, nw)
		s := switchsim.New(nw)
		for v := 0; v < 1<<n; v++ {
			setBits(t, s, "a", n, v)
			s.Settle()
			for y := 0; y < 1<<n; y++ {
				want := switchsim.FromBool(y == v)
				if got := s.ValueName(fmt.Sprintf("y%d", y)); got != want {
					t.Errorf("decode(%d): y%d = %v, want %v", v, y, got, want)
				}
			}
		}
	})
}

func TestBarrelShifterFunctional(t *testing.T) {
	both(t, func(t *testing.T, p *tech.Params) {
		const w = 4
		nw, err := BarrelShifter(p, w)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, nw)
		s := switchsim.New(nw)
		pattern := 0b0110
		for k := 0; k < w; k++ {
			setBits(t, s, "in", w, pattern)
			for j := 0; j < w; j++ {
				s.SetInputName(fmt.Sprintf("sh%d", j), switchsim.FromBool(j == k))
			}
			s.Settle()
			got, ok := readBits(t, s, "out", w)
			if !ok {
				t.Fatalf("shift %d: X output", k)
			}
			want := 0
			for j := 0; j < w; j++ {
				if pattern&(1<<((j+k)%w)) != 0 {
					want |= 1 << j
				}
			}
			if got != want {
				t.Errorf("rotate-by-%d(%04b) = %04b, want %04b", k, pattern, got, want)
			}
		}
	})
}

func TestALUFunctional(t *testing.T) {
	both(t, func(t *testing.T, p *tech.Params) {
		const w = 4
		nw, err := ALU(p, w)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, nw)
		s := switchsim.New(nw)
		ops := []struct {
			ctl  string
			eval func(a, b int) int
		}{
			{"fand", func(a, b int) int { return a & b }},
			{"for", func(a, b int) int { return a | b }},
			{"fxor", func(a, b int) int { return a ^ b }},
			{"fadd", func(a, b int) int { return (a + b) & (1<<w - 1) }},
		}
		vectors := [][2]int{{0b0011, 0b0101}, {0b1111, 0b0001}, {0b1010, 0b1010}, {0, 0}}
		for _, op := range ops {
			for _, vec := range vectors {
				a, b := vec[0], vec[1]
				setBits(t, s, "a", w, a)
				setBits(t, s, "b", w, b)
				s.SetInputName("cin", switchsim.V0)
				for _, f := range []string{"fand", "for", "fxor", "fadd"} {
					s.SetInputName(f, switchsim.FromBool(f == op.ctl))
				}
				s.Settle()
				got, ok := readBits(t, s, "r", w)
				if !ok {
					t.Fatalf("%s(%04b,%04b): X result", op.ctl, a, b)
				}
				if want := op.eval(a, b); got != want {
					t.Errorf("%s(%04b,%04b) = %04b, want %04b", op.ctl, a, b, got, want)
				}
			}
		}
	})
}

func TestManchesterAdderFunctional(t *testing.T) {
	// The Manchester chain relies on precharge: set phi low (precharge
	// on in nMOS: pullup active when phi high — here we emulate the
	// evaluate phase with carries precharged), so test the evaluate
	// logic: with phi driving the precharge device off and carry nodes
	// starting X, generate/propagate must still force definite carries
	// for vectors that generate at bit 0.
	both(t, func(t *testing.T, p *tech.Params) {
		const w = 3
		nw, err := ManchesterAdder(p, w)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, nw)
		s := switchsim.New(nw)
		// Disable the precharge pullup during evaluation.
		phiOff := switchsim.V0
		if !p.HasPChannel() {
			phiOff = switchsim.V0 // nMOS precharge device off at 0 too
		} else {
			phiOff = switchsim.V1 // pMOS precharge device off at 1
		}
		s.SetInputName("phi", phiOff)
		// a=b=1 at every bit: generate everywhere → all carries driven.
		setBits(t, s, "a", w, 0b111)
		setBits(t, s, "b", w, 0b111)
		s.SetInputName("cin", switchsim.V0)
		s.Settle()
		if got := s.ValueName("cout"); got != switchsim.V0 {
			// The chain is active-low (generate pulls down).
			t.Errorf("generate-all cout = %v, want 0 (active-low carry)", got)
		}
	})
}

func TestRegisterFileStructure(t *testing.T) {
	both(t, func(t *testing.T, p *tech.Params) {
		nw, err := RegisterFile(p, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, nw)
		st := nw.Stats()
		// 4 words × 4 bits × (2 inverters + access) plus wiring.
		if st.Trans < 4*4*3 {
			t.Errorf("register file has %d transistors, want >= %d", st.Trans, 4*4*3)
		}
	})
}

func TestPLADeterminism(t *testing.T) {
	both(t, func(t *testing.T, p *tech.Params) {
		a, err := PLA(p, 6, 10, 4, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := PLA(p, 6, 10, 4, 42)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, a)
		dump := func(nw *netlist.Network) string {
			var sb strings.Builder
			if err := netlist.WriteSim(&sb, nw); err != nil {
				t.Fatal(err)
			}
			return sb.String()
		}
		da, db := dump(a), dump(b)
		if da != db {
			t.Error("same seed produced different PLAs")
		}
		c, err := PLA(p, 6, 10, 4, 43)
		if err != nil {
			t.Fatal(err)
		}
		if dump(c) == da {
			t.Error("different seeds produced identical PLAs (suspicious)")
		}
	})
}

func TestGeneratorErrors(t *testing.T) {
	p := tech.NMOS4()
	if _, err := InverterChain(p, 0, 0); err == nil {
		t.Error("InverterChain(0) should fail")
	}
	if _, err := PassChain(p, 0); err == nil {
		t.Error("PassChain(0) should fail")
	}
	if _, err := RippleAdder(p, 0); err == nil {
		t.Error("RippleAdder(0) should fail")
	}
	if _, err := BarrelShifter(p, 1); err == nil {
		t.Error("BarrelShifter(1) should fail")
	}
	if _, err := Decoder(p, 9); err == nil {
		t.Error("Decoder(9) should fail")
	}
	if _, err := ALU(p, 0); err == nil {
		t.Error("ALU(0) should fail")
	}
	if _, err := RegisterFile(p, 0, 1); err == nil {
		t.Error("RegisterFile(0,1) should fail")
	}
	if _, err := PLA(p, 0, 1, 1, 1); err == nil {
		t.Error("PLA(0,...) should fail")
	}
	if _, err := PrechargedBus(p, 0); err == nil {
		t.Error("PrechargedBus(0) should fail")
	}
}

func TestPolyWireFunctional(t *testing.T) {
	both(t, func(t *testing.T, p *tech.Params) {
		nw, err := PolyWire(p, 8, 40e3, 400e-15)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, nw)
		if nw.Stats().Wires != 8 {
			t.Errorf("wire sections = %d, want 8", nw.Stats().Wires)
		}
		s := switchsim.New(nw)
		// in high → driver pulls wstart low → wire carries 0 → out high.
		s.SetInputName("in", switchsim.V1)
		s.Settle()
		if got := s.ValueName("wend"); got != switchsim.V0 {
			t.Errorf("wend = %v, want 0", got)
		}
		if got := s.ValueName("out"); got != switchsim.V1 {
			t.Errorf("out = %v, want 1", got)
		}
		s.SetInputName("in", switchsim.V0)
		s.Settle()
		if got := s.ValueName("out"); got != switchsim.V0 {
			t.Errorf("out = %v, want 0", got)
		}
	})
}

func TestPolyWireErrors(t *testing.T) {
	p := tech.NMOS4()
	if _, err := PolyWire(p, 0, 1e3, 1e-13); err == nil {
		t.Error("zero sections should fail")
	}
	if _, err := PolyWire(p, 2, 0, 1e-13); err == nil {
		t.Error("zero resistance should fail")
	}
	if _, err := PolyWire(p, 2, 1e3, 0); err == nil {
		t.Error("zero capacitance should fail")
	}
}

func TestPassChainHoldsAndPasses(t *testing.T) {
	both(t, func(t *testing.T, p *tech.Params) {
		nw, err := PassChain(p, 6)
		if err != nil {
			t.Fatal(err)
		}
		checkNet(t, nw)
		s := switchsim.New(nw)
		s.SetInputName("ctl", switchsim.V1)
		s.SetInputName("in", switchsim.V1)
		s.Settle()
		if got := s.ValueName("out"); got != switchsim.V1 {
			t.Errorf("pass(1) = %v, want 1", got)
		}
		s.SetInputName("in", switchsim.V0)
		s.Settle()
		if got := s.ValueName("out"); got != switchsim.V0 {
			t.Errorf("pass(0) = %v, want 0", got)
		}
	})
}
