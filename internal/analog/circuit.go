// Package analog is the circuit-level reference simulator of this
// repository — the stand-in for the SPICE runs the paper used both to
// characterize its slope-model tables and to measure the accuracy of the
// switch-level delay models. It implements modified nodal analysis with
// Norton companion models, backward-Euler integration at a fixed timestep,
// and damped Newton–Raphson for the nonlinear MOS devices (Shichman–Hodges
// level-1 model).
//
// The simulator is deliberately small: dense matrices, fixed steps, three
// device archetypes (R, C, V-source) plus the MOSFET. That is all the
// evaluation needs, and it keeps the reference auditable.
package analog

import (
	"fmt"
	"math"

	"repro/internal/tech"
)

// gmin is a tiny conductance from every node to ground, preventing
// singular matrices for momentarily floating nodes (e.g. a pass-transistor
// output while the device is cut off).
const gmin = 1e-9

// Circuit is a flat analog circuit: named nodes plus devices. Node 0 is
// ground. Build one with NewCircuit, add devices, then call Tran.
type Circuit struct {
	names  []string
	byName map[string]int
	devs   []device
	nvsrc  int // number of independent voltage sources (extra MNA rows)
}

// NewCircuit returns an empty circuit with only the ground node ("0").
func NewCircuit() *Circuit {
	c := &Circuit{byName: make(map[string]int)}
	c.names = append(c.names, "0")
	c.byName["0"] = 0
	c.byName["GND"] = 0
	return c
}

// Node returns the index for the named node, creating it on first use.
// "0" and "GND" are ground.
func (c *Circuit) Node(name string) int {
	if i, ok := c.byName[name]; ok {
		return i
	}
	i := len(c.names)
	c.names = append(c.names, name)
	c.byName[name] = i
	return i
}

// NodeName returns the name of node i.
func (c *Circuit) NodeName(i int) string { return c.names[i] }

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.names) }

// device is the element interface. stamp adds the device's linearized
// companion contribution for the current Newton iterate x (node voltages
// indexed by node number, ground entry 0 always 0; source currents appended
// after). commit is called once per accepted timestep with the solved
// voltages so devices with state (capacitors) can advance.
type device interface {
	stamp(st *stamper, t, dt float64, x []float64)
	commit(t, dt float64, x []float64)
	nonlinear() bool
}

// stamper adapts node-numbered stamps onto the reduced MNA system (ground
// eliminated).
type stamper struct {
	m     *matrix
	b     []float64
	nv    int // number of non-ground nodes
	srcAt int // next source row to hand out is nv+srcAt
}

// row maps a node index to its matrix row, or -1 for ground.
func (s *stamper) row(node int) int { return node - 1 }

// addG stamps a conductance g between nodes a and b.
func (s *stamper) addG(a, b int, g float64) {
	ra, rb := s.row(a), s.row(b)
	if ra >= 0 {
		s.m.add(ra, ra, g)
	}
	if rb >= 0 {
		s.m.add(rb, rb, g)
	}
	if ra >= 0 && rb >= 0 {
		s.m.add(ra, rb, -g)
		s.m.add(rb, ra, -g)
	}
}

// addGat stamps an asymmetric conductance term: current into node `into`
// proportional to voltage at node `from` with coefficient g (used for the
// transconductance of MOSFETs).
func (s *stamper) addGat(into, fromPlus, fromMinus int, g float64) {
	ri := s.row(into)
	if ri < 0 {
		return
	}
	if rp := s.row(fromPlus); rp >= 0 {
		s.m.add(ri, rp, g)
	}
	if rm := s.row(fromMinus); rm >= 0 {
		s.m.add(ri, rm, -g)
	}
}

// addI stamps an independent current i flowing from node a into node b
// (i.e. out of a, into b).
func (s *stamper) addI(a, b int, i float64) {
	if ra := s.row(a); ra >= 0 {
		s.b[ra] -= i
	}
	if rb := s.row(b); rb >= 0 {
		s.b[rb] += i
	}
}

// vsourceRow allocates the next MNA branch row (one per voltage source per
// assembly pass) and stamps the source v between plus and minus.
func (s *stamper) vsourceRow(plus, minus int, v float64) {
	r := s.nv + s.srcAt
	s.srcAt++
	if rp := s.row(plus); rp >= 0 {
		s.m.add(rp, r, 1)
		s.m.add(r, rp, 1)
	}
	if rm := s.row(minus); rm >= 0 {
		s.m.add(rm, r, -1)
		s.m.add(r, rm, -1)
	}
	s.b[r] += v
}

// --- Devices ---------------------------------------------------------------

type resistor struct {
	a, b int
	g    float64
}

// AddResistor connects r ohms between nodes a and b.
func (c *Circuit) AddResistor(a, b int, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("analog: resistor %g Ω must be positive", r))
	}
	c.devs = append(c.devs, &resistor{a: a, b: b, g: 1 / r})
}

func (r *resistor) stamp(st *stamper, _, _ float64, _ []float64) { st.addG(r.a, r.b, r.g) }
func (r *resistor) commit(_, _ float64, _ []float64)             {}
func (r *resistor) nonlinear() bool                              { return false }

type capacitor struct {
	a, b    int
	c       float64
	vprev   float64
	iprev   float64 // branch current at the previous step (trapezoidal)
	trap    bool
	started bool // first trapezoidal step bootstraps with backward Euler
}

// AddCapacitor connects cf farads between nodes a and b, with initial
// voltage v0 across it (a positive relative to b).
func (c *Circuit) AddCapacitor(a, b int, cf, v0 float64) {
	if cf < 0 {
		panic(fmt.Sprintf("analog: capacitance %g F must be non-negative", cf))
	}
	c.devs = append(c.devs, &capacitor{a: a, b: b, c: cf, vprev: v0})
}

func (cp *capacitor) stamp(st *stamper, _, dt float64, _ []float64) {
	if cp.trap && cp.started {
		// Trapezoidal companion: i = (2C/dt)·(v − vprev) − iprev.
		geq := 2 * cp.c / dt
		st.addG(cp.a, cp.b, geq)
		st.addI(cp.b, cp.a, geq*cp.vprev+cp.iprev)
		return
	}
	// Backward-Euler companion: i = (C/dt)·v − (C/dt)·vprev. Also used
	// to bootstrap the first trapezoidal step, which has no consistent
	// previous branch current yet.
	geq := cp.c / dt
	st.addG(cp.a, cp.b, geq)
	st.addI(cp.b, cp.a, geq*cp.vprev) // current source geq·vprev from b to a
}

func (cp *capacitor) commit(_, dt float64, x []float64) {
	v := x[cp.a] - x[cp.b]
	if cp.trap {
		if cp.started {
			cp.iprev = 2*cp.c/dt*(v-cp.vprev) - cp.iprev
		} else {
			cp.iprev = cp.c / dt * (v - cp.vprev) // BE estimate of i
			cp.started = true
		}
	}
	cp.vprev = v
}
func (cp *capacitor) nonlinear() bool { return false }

// Waveform is a voltage source value as a function of time (seconds).
type Waveform func(t float64) float64

// DC returns a constant waveform.
func DC(v float64) Waveform { return func(float64) float64 { return v } }

// Step returns a waveform that switches from v0 to v1 at time t0.
func Step(v0, v1, t0 float64) Waveform {
	return func(t float64) float64 {
		if t < t0 {
			return v0
		}
		return v1
	}
}

// Ramp returns a waveform that transitions linearly from v0 to v1 over
// [t0, t0+tr]; a zero or negative tr degenerates to a step.
func Ramp(v0, v1, t0, tr float64) Waveform {
	return func(t float64) float64 {
		switch {
		case t <= t0 || tr <= 0:
			if t <= t0 {
				return v0
			}
			return v1
		case t >= t0+tr:
			return v1
		default:
			return v0 + (v1-v0)*(t-t0)/tr
		}
	}
}

// PWL returns a piecewise-linear waveform through the given (time, value)
// points, constant before the first and after the last. Times must be
// non-decreasing.
func PWL(times, values []float64) Waveform {
	if len(times) != len(values) || len(times) == 0 {
		panic("analog: PWL needs equal-length, non-empty point lists")
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			panic("analog: PWL times must be non-decreasing")
		}
	}
	ts := append([]float64(nil), times...)
	vs := append([]float64(nil), values...)
	return func(t float64) float64 {
		if t <= ts[0] {
			return vs[0]
		}
		for i := 1; i < len(ts); i++ {
			if t <= ts[i] {
				span := ts[i] - ts[i-1]
				if span <= 0 {
					return vs[i]
				}
				f := (t - ts[i-1]) / span
				return vs[i-1] + f*(vs[i]-vs[i-1])
			}
		}
		return vs[len(vs)-1]
	}
}

type vsource struct {
	plus, minus int
	w           Waveform
}

// AddVSource connects an ideal voltage source between plus and minus whose
// value follows the waveform.
func (c *Circuit) AddVSource(plus, minus int, w Waveform) {
	c.devs = append(c.devs, &vsource{plus: plus, minus: minus, w: w})
	c.nvsrc++
}

func (v *vsource) stamp(st *stamper, t, _ float64, _ []float64) {
	st.vsourceRow(v.plus, v.minus, v.w(t))
}
func (v *vsource) commit(_, _ float64, _ []float64) {}
func (v *vsource) nonlinear() bool                  { return false }

// mosfet is a Shichman–Hodges (SPICE level-1) MOS transistor. The channel
// is treated symmetrically: drain and source roles are assigned each
// evaluation from the terminal voltages, which is what lets the same
// element serve pass-transistor duty.
type mosfet struct {
	d, g, s int
	ttype   tech.Device
	vt      float64
	beta    float64 // KP·W/L
	lam     float64 // channel length modulation
}

// AddMOS adds a MOSFET with terminals (drain, gate, source), device type
// ttype, and geometry w×l meters, taking model parameters from p.
func (c *Circuit) AddMOS(ttype tech.Device, d, g, s int, w, l float64, p *tech.Params) {
	kp := p.KP(ttype)
	if kp <= 0 {
		panic(fmt.Sprintf("analog: technology %s has no %s devices", p.Name, ttype))
	}
	c.devs = append(c.devs, &mosfet{
		d: d, g: g, s: s,
		ttype: ttype,
		vt:    p.Vt(ttype),
		beta:  kp * w / l,
		lam:   p.ChannelLambda,
	})
}

// ids evaluates the level-1 drain current and its partial derivatives for
// an n-type sign convention: vgs, vds are pre-normalized so the device
// conducts for vgs > vt and vds ≥ 0.
func level1(beta, vt, lam, vgs, vds float64) (id, gm, gds float64) {
	vov := vgs - vt
	if vov <= 0 {
		return 0, 0, 0
	}
	if vds < vov {
		// Linear (triode) region.
		id = beta * (vov*vds - vds*vds/2) * (1 + lam*vds)
		gm = beta * vds * (1 + lam*vds)
		gds = beta*(vov-vds)*(1+lam*vds) + beta*(vov*vds-vds*vds/2)*lam
	} else {
		// Saturation.
		id = beta / 2 * vov * vov * (1 + lam*vds)
		gm = beta * vov * (1 + lam*vds)
		gds = beta / 2 * vov * vov * lam
	}
	return id, gm, gds
}

func (m *mosfet) stamp(st *stamper, _, _ float64, x []float64) {
	vd, vg, vs := x[m.d], x[m.g], x[m.s]
	// Normalize polarity: p-channel devices are the mirror image.
	sign := 1.0
	if m.ttype == tech.PEnh {
		sign = -1
	}
	nvd, nvg, nvs := sign*vd, sign*vg, sign*vs
	// Assign drain/source from channel polarity (symmetric device).
	dNode, sNode := m.d, m.s
	if nvd < nvs {
		nvd, nvs = nvs, nvd
		dNode, sNode = m.s, m.d
	}
	vgs := nvg - nvs
	vds := nvd - nvs
	vt := m.vt
	if m.ttype == tech.PEnh {
		vt = -m.vt // mirrored threshold is positive in normalized frame
	}
	id, gm, gds := level1(m.beta, vt, m.lam, vgs, vds)
	// In the normalized frame current id flows from drain to source. The
	// frame flip for p-channel reverses both node roles and sign, which
	// cancels: stamping in terms of dNode/sNode with the normalized
	// linearization is correct for both polarities because dNode/sNode
	// were chosen in the normalized frame and currents map back with the
	// same sign convention (i·sign flows dNode→sNode in real voltages,
	// and the conductances are invariant under the double sign flip).
	ieq := id - gm*vgs - gds*vds
	// Conductance gds between dNode and sNode.
	st.addG(dNode, sNode, gds)
	// Transconductance: current into dNode from (g − sNode) voltage.
	st.addGat(dNode, m.g, sNode, gm)
	st.addGat(sNode, m.g, sNode, -gm)
	// Residual current source dNode→sNode of value ieq, expressed in the
	// normalized frame; map back with sign.
	if sign > 0 {
		st.addI(dNode, sNode, ieq)
	} else {
		st.addI(sNode, dNode, ieq)
	}
}

func (m *mosfet) commit(_, _ float64, _ []float64) {}
func (m *mosfet) nonlinear() bool                  { return true }

// hasNaN reports whether the vector contains NaN or Inf.
func hasNaN(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
