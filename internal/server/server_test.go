// End-to-end coverage of the analysis service over httptest: session
// lifecycle, content-hash dedup, LRU eviction, the workers-identity
// contract at the HTTP surface, and concurrent analyze/edits/read races
// (exercised under -race in CI).
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
)

// dlatchSim loads the repository-level D-latch netlist used across the
// CLI golden tests.
func dlatchSim(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("../../testdata/dlatch.sim")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// dlatchConfig mirrors the CLI golden-test configuration.
func dlatchConfig(t *testing.T) SessionConfig {
	return SessionConfig{
		Name: "dlatch", Sim: dlatchSim(t),
		Tech: "nmos-4u", Model: "slope", Tables: "analytic",
		Rise: []string{"d"}, Fall: []string{"d"},
		Fix:   map[string]string{"wr": "1"},
		Slope: 1e-9, Top: 3,
	}
}

// testClient wraps one httptest server with JSON helpers.
type testClient struct {
	t   *testing.T
	srv *httptest.Server
}

func newTestClient(t *testing.T, opts Options) *testClient {
	t.Helper()
	srv := httptest.NewServer(New(opts))
	t.Cleanup(srv.Close)
	return &testClient{t: t, srv: srv}
}

// do issues a request and decodes the JSON reply into out (skipped when
// out is nil), returning the HTTP status.
func (c *testClient) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: decoding %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode
}

// create loads a session and returns its id.
func (c *testClient) create(cfg SessionConfig) createResponse {
	c.t.Helper()
	var resp createResponse
	if st := c.do("POST", "/v1/sessions", cfg, &resp); st != http.StatusCreated && st != http.StatusOK {
		c.t.Fatalf("create: status %d", st)
	}
	return resp
}

func (c *testClient) analyze(id string, workers int) analyzeResponse {
	c.t.Helper()
	var resp analyzeResponse
	if st := c.do("POST", "/v1/sessions/"+id+"/analyze", analyzeRequest{Workers: workers}, &resp); st != http.StatusOK {
		c.t.Fatalf("analyze: status %d", st)
	}
	return resp
}

func (c *testClient) edits(id, script string) editsResponse {
	c.t.Helper()
	var resp editsResponse
	if st := c.do("POST", "/v1/sessions/"+id+"/edits", editsRequest{Script: script}, &resp); st != http.StatusOK {
		c.t.Fatalf("edits: status %d", st)
	}
	return resp
}

func (c *testClient) metrics() MetricsSnapshot {
	c.t.Helper()
	var m MetricsSnapshot
	if st := c.do("GET", "/metrics", nil, &m); st != http.StatusOK {
		c.t.Fatalf("metrics: status %d", st)
	}
	return m
}

func TestSessionLifecycle(t *testing.T) {
	c := newTestClient(t, Options{})

	if st := c.do("GET", "/healthz", nil, nil); st != http.StatusOK {
		t.Fatalf("healthz: %d", st)
	}

	created := c.create(dlatchConfig(t))
	if created.Cached || created.Transistors == 0 {
		t.Fatalf("create = %+v", created)
	}
	id := created.Session

	// Reads before the first analyze are refused, not empty.
	if st := c.do("GET", "/v1/sessions/"+id+"/critical", nil, nil); st != http.StatusConflict {
		t.Errorf("critical before analyze: status %d, want 409", st)
	}
	var errBody httpError
	if st := c.do("POST", "/v1/sessions/"+id+"/edits", editsRequest{Script: "cap out 1e-15\nrun\n"}, &errBody); st != http.StatusConflict {
		t.Errorf("edits before analyze: status %d, want 409", st)
	}

	an := c.analyze(id, 1)
	if an.Cached || !strings.Contains(an.Report, "timing report") || an.CriticalNs <= 0 {
		t.Fatalf("analyze = cached=%v critical=%v report:\n%s", an.Cached, an.CriticalNs, an.Report)
	}

	var crit struct {
		Paths []PathJSON `json:"paths"`
	}
	if st := c.do("GET", "/v1/sessions/"+id+"/critical?n=2", nil, &crit); st != http.StatusOK {
		t.Fatalf("critical: %d", st)
	}
	if len(crit.Paths) == 0 || len(crit.Paths) > 2 || crit.Paths[0].Endpoint == "" {
		t.Fatalf("critical paths = %+v", crit.Paths)
	}

	ed := c.edits(id, "cap out 2e-14\nrun\n")
	if len(ed.Barriers) != 1 {
		t.Fatalf("edits barriers = %+v", ed.Barriers)
	}
	b := ed.Barriers[0]
	if !b.Incremental {
		t.Errorf("output-cap tweak should be incremental, got full: %s", b.Reason)
	}
	if !strings.Contains(b.Status, "re-analysis (incremental") {
		t.Errorf("status line = %q", b.Status)
	}
	if b.Epoch != 1 || ed.Snapshot.Epoch != 1 {
		t.Errorf("epoch = %d / %d, want 1", b.Epoch, ed.Snapshot.Epoch)
	}

	var info sessionInfo
	if st := c.do("GET", "/v1/sessions/"+id, nil, &info); st != http.StatusOK {
		t.Fatalf("info: %d", st)
	}
	if !info.Analyzed || !info.Edited || info.Barriers != 1 {
		t.Errorf("info = %+v", info)
	}

	m := c.metrics()
	if m.Sessions.Created != 1 || m.Analyze.Full != 1 || m.Edits.Incremental != 1 || m.Edits.DrainEpochs != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.LatencyNs.Analyze.Count != 1 || m.LatencyNs.Analyze.P50Ns <= 0 {
		t.Errorf("analyze latency = %+v", m.LatencyNs.Analyze)
	}

	if st := c.do("DELETE", "/v1/sessions/"+id, nil, nil); st != http.StatusOK {
		t.Fatalf("delete: %d", st)
	}
	if st := c.do("GET", "/v1/sessions/"+id, nil, nil); st != http.StatusNotFound {
		t.Errorf("after delete: status %d, want 404", st)
	}
}

// TestContentHashDedup pins the cache contract: identical loads share one
// session; a session that has diverged through edits stops answering
// dedup so a re-load gets pristine state.
func TestContentHashDedup(t *testing.T) {
	c := newTestClient(t, Options{})
	cfg := dlatchConfig(t)

	first := c.create(cfg)
	again := c.create(cfg)
	if !again.Cached || again.Session != first.Session {
		t.Fatalf("identical load should dedup: %+v vs %+v", first, again)
	}
	// A different configuration over the same source is a different key.
	other := cfg
	other.Model = "lumped"
	if got := c.create(other); got.Cached || got.Session == first.Session {
		t.Fatalf("different model should not dedup: %+v", got)
	}

	c.analyze(first.Session, 1)
	c.edits(first.Session, "cap out 2e-14\nrun\n")
	fresh := c.create(cfg)
	if fresh.Cached || fresh.Session == first.Session {
		t.Fatalf("edited session must not answer dedup: %+v", fresh)
	}

	m := c.metrics()
	if m.Sessions.Deduped != 1 || m.Sessions.Created != 3 {
		t.Errorf("metrics = %+v", m.Sessions)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newTestClient(t, Options{MaxSessions: 2})
	cfg := dlatchConfig(t)

	ids := make([]string, 3)
	for i := range ids {
		cc := cfg
		cc.Name = fmt.Sprintf("dlatch-%d", i) // distinct content hash
		ids[i] = c.create(cc).Session
	}
	// 0 is the least recently used: evicted by the third insert.
	if st := c.do("GET", "/v1/sessions/"+ids[0], nil, nil); st != http.StatusNotFound {
		t.Errorf("evicted session answered: %d", st)
	}
	for _, id := range ids[1:] {
		if st := c.do("GET", "/v1/sessions/"+id, nil, nil); st != http.StatusOK {
			t.Errorf("resident session %s: %d", id, st)
		}
	}
	// Recency: touch 1 (making 2 the LRU), insert a fourth → 2 evicted.
	c.do("GET", "/v1/sessions/"+ids[1], nil, nil)
	cc := cfg
	cc.Name = "dlatch-3"
	c.create(cc)
	if st := c.do("GET", "/v1/sessions/"+ids[1], nil, nil); st != http.StatusOK {
		t.Errorf("recently used session evicted: %d", st)
	}
	if st := c.do("GET", "/v1/sessions/"+ids[2], nil, nil); st != http.StatusNotFound {
		t.Errorf("LRU session not evicted: %d", st)
	}
	if m := c.metrics(); m.Sessions.Evicted != 2 || m.Sessions.Live != 2 {
		t.Errorf("metrics = %+v", m.Sessions)
	}
}

// TestAnalyzeSnapshotCache: repeated analyzes serve the snapshot; a
// worker-count change rebuilds and the result is byte-identical.
func TestAnalyzeSnapshotCache(t *testing.T) {
	c := newTestClient(t, Options{})
	id := c.create(dlatchConfig(t)).Session

	first := c.analyze(id, 1)
	second := c.analyze(id, 1)
	if !second.Cached {
		t.Error("repeat analyze should serve the snapshot")
	}
	if second.Report != first.Report {
		t.Error("cached report differs")
	}
	rebuilt := c.analyze(id, 8)
	if rebuilt.Cached {
		t.Error("worker change must rebuild")
	}
	if rebuilt.Report != first.Report {
		t.Errorf("workers=8 report differs from workers=1:\n--- w1 ---\n%s\n--- w8 ---\n%s",
			first.Report, rebuilt.Report)
	}
	if m := c.metrics(); m.Analyze.Full != 2 || m.Analyze.Cached != 1 {
		t.Errorf("metrics = %+v", m.Analyze)
	}
}

// TestWorkersIdentityOverHTTP pins the parallel-drain contract at the
// service surface: an entire session — analyze plus an edit replay — is
// byte-identical between workers=1 and workers=8, structured paths
// included.
func TestWorkersIdentityOverHTTP(t *testing.T) {
	script := "cap out 2e-14\nrun\nresize 2 6e-6 2e-6\nrun\n"
	run := func(workers int) (string, string) {
		c := newTestClient(t, Options{})
		id := c.create(dlatchConfig(t)).Session
		an := c.analyze(id, workers)
		ed := c.edits(id, script)
		var reports strings.Builder
		for _, b := range ed.Barriers {
			reports.WriteString(b.Status + "\n" + b.Report)
		}
		paths, err := json.Marshal(ed.Snapshot.Paths)
		if err != nil {
			t.Fatal(err)
		}
		return an.Report + reports.String(), string(paths)
	}
	rep1, paths1 := run(1)
	rep8, paths8 := run(8)
	if rep1 != rep8 {
		t.Errorf("session transcript differs between workers 1 and 8:\n--- w1 ---\n%s\n--- w8 ---\n%s", rep1, rep8)
	}
	if paths1 != paths8 {
		t.Errorf("structured paths differ:\n%s\nvs\n%s", paths1, paths8)
	}
}

// TestReorderIdentityOverHTTP pins the reordering contract at the
// service surface: a whole session transcript — analyze plus edit
// barriers, structured paths included — is byte-identical whether the
// daemon compiles networks with the RCM locality layout or the identity
// layout, serial and parallel.
func TestReorderIdentityOverHTTP(t *testing.T) {
	script := "cap out 2e-14\nrun\nresize 2 6e-6 2e-6\nrun\n"
	run := func(noReorder bool, workers int) string {
		c := newTestClient(t, Options{NoReorder: noReorder})
		id := c.create(dlatchConfig(t)).Session
		an := c.analyze(id, workers)
		ed := c.edits(id, script)
		var out strings.Builder
		out.WriteString(an.Report)
		for _, b := range ed.Barriers {
			out.WriteString(b.Status + "\n" + b.Report)
		}
		paths, err := json.Marshal(ed.Snapshot.Paths)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(paths)
		return out.String()
	}
	for _, workers := range []int{1, 8} {
		if on, off := run(false, workers), run(true, workers); on != off {
			t.Errorf("workers=%d: transcript differs between reorder on and off:\n--- on ---\n%s\n--- off ---\n%s",
				workers, on, off)
		}
	}
}

// TestDrainMetricsExposed is the drain-counter sanity check: after a
// parallel analyze, /metrics must expose the speculative-drain counters
// (drain.batch_size, drain.fence_stalls, drain.commit_depth among them)
// with a consistent, non-degenerate story — batches happened, the fence
// partition is non-trivial, and occupancy is a valid ratio.
func TestDrainMetricsExposed(t *testing.T) {
	c := newTestClient(t, Options{})
	id := c.create(dlatchConfig(t)).Session
	c.analyze(id, 8)

	// The wire format is part of the contract: fleet dashboards key on
	// these literal field names.
	req, err := http.NewRequest("GET", c.srv.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"drain"`, `"batch_size"`, `"fence_stalls"`, `"commit_depth"`,
		`"preempts"`, `"spec_live"`, `"spec_used"`, `"occupancy"`, `"regions"`,
	} {
		if !bytes.Contains(raw, []byte(field)) {
			t.Errorf("/metrics missing %s:\n%s", field, raw)
		}
	}

	m := c.metrics()
	if m.Drain.Batches <= 0 {
		t.Errorf("drain.batches = %d after a parallel analyze", m.Drain.Batches)
	}
	if m.Drain.BatchSize <= 0 {
		t.Errorf("drain.batch_size = %g, want > 0", m.Drain.BatchSize)
	}
	if m.Drain.Regions <= 0 {
		t.Errorf("drain.regions = %d, want > 0", m.Drain.Regions)
	}
	if m.Drain.SpecLive < m.Drain.SpecUsed {
		t.Errorf("drain.spec_used %d exceeds spec_live %d", m.Drain.SpecUsed, m.Drain.SpecLive)
	}
	if m.Drain.Occupancy < 0 || m.Drain.Occupancy > 1 {
		t.Errorf("drain.occupancy = %g, want in [0,1]", m.Drain.Occupancy)
	}
	if m.Drain.FenceStalls < 0 || m.Drain.CommitDepth < 0 {
		t.Errorf("negative drain counters: %+v", m.Drain)
	}
}

// TestConcurrentAnalyzeEdits hammers one session with concurrent
// mutators and readers. Run under -race in CI: the per-session writer
// lock must serialize analyze/edits while snapshot reads stay lock-free.
func TestConcurrentAnalyzeEdits(t *testing.T) {
	c := newTestClient(t, Options{})
	id := c.create(dlatchConfig(t)).Session
	c.analyze(id, 1)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	post := func(path string, body any) {
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(body)
		resp, err := c.srv.Client().Post(c.srv.URL+path, "application/json", &buf)
		if err != nil {
			errs <- err.Error()
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			errs <- fmt.Sprintf("%s: %d", path, resp.StatusCode)
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(3)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				sign := "2e-15"
				if (i+j)%2 == 1 {
					sign = "-2e-15"
				}
				post("/v1/sessions/"+id+"/edits", editsRequest{
					Script: fmt.Sprintf("cap out %s\nrun\n", sign),
				})
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				post("/v1/sessions/"+id+"/analyze", analyzeRequest{Workers: 1 + i%2*7, Force: true})
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				resp, err := c.srv.Client().Get(c.srv.URL + "/v1/sessions/" + id + "/critical")
				if err != nil {
					errs <- err.Error()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// The session survived and still answers coherently.
	an := c.analyze(id, 1)
	if !strings.Contains(an.Report, "timing report") {
		t.Errorf("post-race report:\n%s", an.Report)
	}
}

func TestRequestErrors(t *testing.T) {
	c := newTestClient(t, Options{})

	// Malformed / invalid creates.
	if st := c.do("POST", "/v1/sessions", map[string]string{}, nil); st != http.StatusBadRequest {
		t.Errorf("empty create: %d", st)
	}
	bad := dlatchConfig(t)
	bad.Tech = "ge-5"
	if st := c.do("POST", "/v1/sessions", bad, nil); st != http.StatusBadRequest {
		t.Errorf("bad tech: %d", st)
	}
	bad = dlatchConfig(t)
	bad.Model = "psychic"
	if st := c.do("POST", "/v1/sessions", bad, nil); st != http.StatusBadRequest {
		t.Errorf("bad model: %d", st)
	}
	bad = dlatchConfig(t)
	bad.Sim = "e broken line"
	if st := c.do("POST", "/v1/sessions", bad, nil); st != http.StatusBadRequest {
		t.Errorf("bad sim: %d", st)
	}
	bad = dlatchConfig(t)
	bad.Fix = map[string]string{"wr": "7"}
	id := c.create(bad).Session
	if st := c.do("POST", "/v1/sessions/"+id+"/analyze", nil, nil); st != http.StatusBadRequest {
		t.Errorf("bad fix value surfaces at analyze: %d", st)
	}

	// Unknown session ids.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/sessions/nope"},
		{"DELETE", "/v1/sessions/nope"},
		{"POST", "/v1/sessions/nope/analyze"},
		{"POST", "/v1/sessions/nope/edits"},
		{"GET", "/v1/sessions/nope/critical"},
	} {
		if st := c.do(probe.method, probe.path, editsRequest{Script: "run"}, nil); st != http.StatusNotFound {
			t.Errorf("%s %s: %d, want 404", probe.method, probe.path, st)
		}
	}

	// Script errors carry line positions; applied barriers are reported.
	id = c.create(dlatchConfig(t)).Session
	c.analyze(id, 1)
	var body struct {
		Error    string          `json:"error"`
		Barriers []barrierResult `json:"barriers"`
	}
	st := c.do("POST", "/v1/sessions/"+id+"/edits",
		editsRequest{Script: "cap out 1e-15\nrun\nfrobnicate q\n"}, &body)
	if st != http.StatusUnprocessableEntity {
		t.Fatalf("bad script: %d", st)
	}
	if !strings.Contains(body.Error, "script:3") {
		t.Errorf("error lacks position: %q", body.Error)
	}
	if len(body.Barriers) != 1 {
		t.Errorf("applied barriers not reported: %+v", body.Barriers)
	}
	if st := c.do("POST", "/v1/sessions/"+id+"/edits", editsRequest{}, nil); st != http.StatusBadRequest {
		t.Errorf("missing script: %d", st)
	}
	if st := c.do("GET", "/v1/sessions/"+id+"/critical?n=zebra", nil, nil); st != http.StatusBadRequest {
		t.Errorf("bad n: %d", st)
	}
}
