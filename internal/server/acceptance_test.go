// Acceptance: a scripted designer session at chip scale (the E6
// benchmark circuit) over HTTP — load, full analysis, ten small edit
// barriers — must report byte-identical results to an offline replay of
// the same session against the core API, with at least 9/10 barriers
// served incrementally and a p50 edit latency below the full-analyze
// median.
package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

func TestAcceptanceChipSession(t *testing.T) {
	if testing.Short() {
		t.Skip("chip-scale session in -short mode")
	}
	p := tech.NMOS4()
	nw, err := gen.Chip(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	var sim strings.Builder
	if err := netlist.WriteSim(&sim, nw); err != nil {
		t.Fatal(err)
	}
	fixed, loopBreak := gen.ChipDirectives(32)
	cfg := SessionConfig{
		Name: "chip32", Sim: sim.String(),
		Fix: fixed, LoopBreak: loopBreak, Top: 5,
	}

	// The designer loop: ten barriers, each reloading one multiplier
	// product and one address line — the scale of a placement tweak. The
	// signs alternate so the netlist really changes every barrier.
	var script strings.Builder
	for i := 0; i < 10; i++ {
		sign := ""
		if i%2 == 1 {
			sign = "-"
		}
		fmt.Fprintf(&script, "cap prod%d %s20e-15\ncap ea%d %s20e-15\nrun\n",
			i, sign, i, sign)
	}

	// Online: the scripted session over HTTP.
	const workers = 8
	c := newTestClient(t, Options{})
	created := c.create(cfg)
	an := c.analyze(created.Session, workers)
	ed := c.edits(created.Session, script.String())
	if len(ed.Barriers) != 10 {
		t.Fatalf("got %d barriers, want 10", len(ed.Barriers))
	}

	// Offline: the same session replayed directly against the core API,
	// the way `crystal -edits` drives it.
	tb := delay.AnalyticTables(p)
	offNw, err := netlist.ReadSim("chip32", p, strings.NewReader(sim.String()))
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Workers: workers}
	for _, name := range loopBreak {
		if n := offNw.Lookup(name); n != nil {
			opts.LoopBreak = append(opts.LoopBreak, n)
		}
	}
	a := core.New(offNw, delay.NewSlope(tb), opts)
	for name, v := range fixed {
		a.SetFixed(offNw.Lookup(name), switchsim.FromBool(v == "1"))
	}
	for _, in := range offNw.Inputs() {
		if _, isFixed := fixed[in.Name]; isFixed {
			continue
		}
		if err := a.SetInputEvent(in, tech.Rise, 0, 1e-9); err != nil {
			t.Fatal(err)
		}
		if err := a.SetInputEvent(in, tech.Fall, 0, 1e-9); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	report := func() string {
		var b strings.Builder
		st := a.Net.Stats()
		fmt.Fprintf(&b, "crystald: %s — %d transistors, %d nodes (%s tables)\n",
			a.Net.Name, st.Trans, st.Nodes, tb.Source)
		a.WriteReport(&b, cfg.Top)
		return b.String()
	}
	if off := report(); off != an.Report {
		t.Errorf("full-analysis report diverges from offline replay:\n--- http ---\n%s\n--- offline ---\n%s", an.Report, off)
	}

	barrier := 0
	err = incremental.ReplayScript(strings.NewReader(script.String()), "script",
		func(line int, batch []incremental.Edit) error {
			stats, err := a.Reanalyze(batch)
			if err != nil {
				return err
			}
			got := ed.Barriers[barrier]
			if want := core.FormatReanalyzeStatus("crystald", stats); got.Status != want {
				t.Errorf("barrier %d status: got %q, want %q", barrier, got.Status, want)
			}
			if off := report(); got.Report != off {
				t.Errorf("barrier %d report diverges from offline replay:\n--- http ---\n%s\n--- offline ---\n%s",
					barrier, got.Report, off)
			}
			if got.Epoch != stats.Epoch || got.Incremental == stats.Full {
				t.Errorf("barrier %d stats: got epoch %d incremental %v, want epoch %d incremental %v",
					barrier, got.Epoch, got.Incremental, stats.Epoch, !stats.Full)
			}
			barrier++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if barrier != 10 {
		t.Fatalf("offline replay applied %d barriers, want 10", barrier)
	}

	// Service-level acceptance: ≥9/10 barriers incremental, and the p50
	// edit barrier beats the full-analyze median.
	m := c.metrics()
	if m.Edits.Incremental < 9 {
		t.Errorf("only %d/10 edit barriers were incremental (full: %d)",
			m.Edits.Incremental, m.Edits.Full)
	}
	if m.LatencyNs.EditBarrier.P50Ns >= m.LatencyNs.Analyze.P50Ns {
		t.Errorf("p50 edit barrier %v not under full-analyze median %v",
			time.Duration(m.LatencyNs.EditBarrier.P50Ns), time.Duration(m.LatencyNs.Analyze.P50Ns))
	}
	t.Logf("chip session: analyze p50 %v, edit p50 %v, %d/%d incremental",
		time.Duration(m.LatencyNs.Analyze.P50Ns), time.Duration(m.LatencyNs.EditBarrier.P50Ns),
		m.Edits.Incremental, m.Edits.Batches)
}
