// String interning for the ingest pipeline. A chip-scale .sim file
// mentions each net name many times (every transistor terminal, every
// capacitor plate, every directive), and the naive parse materializes a
// fresh substring for each mention — pinning whole scanner lines in the
// heap through the node-name references that survive parsing. The
// interner collapses every mention to one canonical allocation, shared by
// the parser, the alias table and the @-directive handlers, so resident
// symbol storage is proportional to the number of distinct nets, not the
// number of tokens.
package netlist

import (
	"strings"
	"sync"
)

// Interner deduplicates strings. The zero value is not ready; use
// NewInterner. Not safe for concurrent use — the parallel parser gives
// each tokenizer worker its own local symbol table and reserves the
// shared interner for the serial merge phase.
type Interner struct {
	m map[string]string
}

// NewInterner creates an interner with room for n distinct symbols.
func NewInterner(n int) *Interner {
	return &Interner{m: make(map[string]string, n)}
}

// Intern returns the canonical copy of s, allocating it on first sight.
// The lookup itself never allocates; the canonical copy is cloned so it
// does not pin whatever larger buffer s was sliced from (a scanner line,
// a parser chunk).
func (in *Interner) Intern(s string) string {
	if c, ok := in.m[s]; ok {
		return c
	}
	c := strings.Clone(s)
	in.m[c] = c
	return c
}

// Len returns the number of distinct symbols interned.
func (in *Interner) Len() int { return len(in.m) }

// internShards is the lock granularity of ShardedInterner: enough shards
// that a parser worker per core rarely collides on one lock, few enough
// that the fixed footprint stays trivial.
const internShards = 32

// ShardedInterner is a concurrency-safe interner for the parallel
// parser's reconciliation phase: tokenizer workers canonicalize their
// local symbol tables against it in parallel, so the serial merge sees
// pre-canonicalized names and does no interning at all. Which worker
// interns a name first is scheduling-dependent, but the canonical copy is
// byte-equal either way — the merge's output never depends on the race.
type ShardedInterner struct {
	shards [internShards]struct {
		mu sync.Mutex
		m  map[string]string
		_  [24]byte // keep neighbouring locks off one cache line
	}
}

// NewShardedInterner creates a sharded interner with room for about n
// distinct symbols across all shards.
func NewShardedInterner(n int) *ShardedInterner {
	si := &ShardedInterner{}
	per := n/internShards + 1
	for i := range si.shards {
		si.shards[i].m = make(map[string]string, per)
	}
	return si
}

// Intern returns the canonical copy of s, cloning it on first sight.
// Safe for concurrent use.
func (si *ShardedInterner) Intern(s string) string {
	// FNV-1a; only shard selection depends on it.
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	sh := &si.shards[h%internShards]
	sh.mu.Lock()
	c, ok := sh.m[s]
	if !ok {
		c = strings.Clone(s)
		sh.m[c] = c
	}
	sh.mu.Unlock()
	return c
}

// Len returns the number of distinct symbols interned.
func (si *ShardedInterner) Len() int {
	total := 0
	for i := range si.shards {
		sh := &si.shards[i]
		sh.mu.Lock()
		total += len(sh.m)
		sh.mu.Unlock()
	}
	return total
}
