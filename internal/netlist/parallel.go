// Parallel .sim ingest: the chip-scale front door of the verifier.
//
// The serial ReadSim is a single-threaded line scanner, and on a
// multi-megabyte extracted netlist it is the cold-start bottleneck — the
// engine's parallel drain cannot begin until the last line has parsed.
// Ingest, however, is embarrassingly parallel *except* for the
// order-dependent parts, so the pipeline splits in two:
//
//  1. Tokenize (parallel): the input is cut on line boundaries into one
//     contiguous chunk per worker. Each worker scans its chunk alone —
//     line splitting, field splitting, float parsing, local symbol
//     interning — and emits a flat record stream plus a local symbol
//     table. Workers never touch the network, the alias table, or each
//     other.
//  2. Reconcile (parallel): each worker canonicalizes its local symbol
//     table against a shared sharded interner as soon as its chunk is
//     tokenized. Interning used to ride inside the serial merge — one
//     global map operation per name reference — and was most of the
//     merge's tail; reconciliation moves it onto the workers, where it
//     overlaps tokenization of later chunks.
//  3. Merge (serial, in file order): the record streams are replayed
//     chunk by chunk into a fresh Network over the pre-canonicalized
//     symbols. Only what is genuinely order-dependent replays here,
//     exactly as the serial parser would have done it: alias resolution
//     (aliases apply only to later references), node creation order
//     (first-reference order defines Node.Index), the units: scale in
//     effect at each transistor line, flow-index range checks against
//     the transistors added so far, and first-error selection.
//
// The contract, pinned by TestParallelParseIdentity and FuzzReadSim: at
// any worker count ReadSimParallel produces a Network byte-identical to
// ReadSim's — same node indexes, same transistor order, same adjacency
// order, same error on rejected input. Workers follow the core
// convention: 0 = GOMAXPROCS, 1 = strict serial on the calling
// goroutine (no goroutines at all), N = at most N.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"repro/internal/tech"
)

// minChunkBytes is the smallest chunk worth a worker: below this the
// per-chunk setup dominates the scan.
const minChunkBytes = 32 * 1024

// simRecKind enumerates the tokenized record types.
type simRecKind uint8

const (
	recTrans simRecKind = iota
	recResistor
	recCap2  // C a b v — split between two plates at merge
	recCapN  // N node v
	recAlias // = canon alias
	recMark  // @ in|out|precharged name...
	recFlow  // @ flow dir index
	recScale // | units: N
	recInst  // @ inst path lo hi
)

// mark subkinds for recMark.
const (
	markIn uint8 = iota
	markOut
	markPrecharged
)

// flowUnknown flags a recFlow whose direction token did not parse; the
// error is deferred to merge because the serial parser reports a bad
// transistor index ahead of an unknown direction on the same line.
const flowUnknown = Flow(-1)

// simRec is one tokenized .sim record. Symbol references are indexes
// into the owning chunk's symbol table; nothing here depends on global
// parse state.
type simRec struct {
	kind    simRecKind
	dev     tech.Device // recTrans
	flow    Flow        // recFlow (flowUnknown when the token was bad)
	mark    uint8       // recMark subkind
	hasGeom bool        // recTrans: explicit l/w fields present
	line    int32       // 1-based line within the chunk
	sym     [3]int32    // symbol refs (gate/a/b, a/b, node)
	idx     int32       // recFlow transistor index; recMark list offset
	n       int32       // recMark list length
	v1, v2  float64     // raw geometry l/w, value, or scale
	tok     string      // raw token for deferred error messages
	tok2    string      // raw direction token (recFlow)
}

// simChunk is one worker's output: records, local symbols, and the
// chunk-local position of the first tokenize error (if any).
type simChunk struct {
	recs  []simRec
	lists []int32  // pooled name lists for recMark
	syms  []string // local symbol id → token (substrings of the chunk)
	canon []string // local symbol id → canonical name (reconcile phase)
	lines int      // lines scanned (partial when errLine != 0)

	errLine    int32 // 1-based line of the first local error, 0 = none
	errMsg     string
	errTooLong bool
}

// ReadSimParallel parses a .sim netlist like ReadSim, tokenizing the
// input with the given number of workers. The resulting network — and
// the error on rejected input — is identical to ReadSim's at every
// worker count.
func ReadSimParallel(name string, p *tech.Params, r io.Reader, workers int) (*Network, error) {
	return readSimChunked(name, p, r, workers, minChunkBytes)
}

// readSimChunked is ReadSimParallel with the chunk-size floor exposed,
// so tests (and the differential fuzzer) can force multi-chunk merges on
// inputs far smaller than the production floor.
func readSimChunked(name string, p *tech.Params, r io.Reader, workers, minChunk int) (*Network, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sim %s: %w", name, err)
	}
	// One conversion for the whole input; chunks and tokens are
	// substrings of it and allocate nothing further.
	src := string(data)
	parts := splitSimChunks(src, workers, minChunk)
	chunks := make([]*simChunk, len(parts))
	itn := NewShardedInterner(1024)
	if workers == 1 || len(parts) <= 1 {
		for i, s := range parts {
			chunks[i] = tokenizeSimChunk(p, s)
			chunks[i].reconcile(itn)
		}
	} else {
		var wg sync.WaitGroup
		for i, s := range parts {
			wg.Add(1)
			go func(i int, s string) {
				defer wg.Done()
				chunks[i] = tokenizeSimChunk(p, s)
				chunks[i].reconcile(itn)
			}(i, s)
		}
		wg.Wait()
	}
	return mergeSimChunks(name, p, chunks)
}

// reconcile canonicalizes the chunk's local symbol table against the
// shared interner — phase 2 of the pipeline, run on the tokenizer's
// worker. The canonical COPIES are scheduling-independent (byte-equal
// clones whoever interns first), so the merge's output is too.
func (ch *simChunk) reconcile(itn *ShardedInterner) {
	ch.canon = make([]string, len(ch.syms))
	for i, s := range ch.syms {
		ch.canon[i] = itn.Intern(s)
	}
}

// splitSimChunks cuts src into at most `workers` contiguous pieces on
// line boundaries. Small inputs get fewer pieces so no chunk is
// degenerate.
func splitSimChunks(src string, workers, minChunk int) []string {
	if len(src) == 0 {
		return nil
	}
	if minChunk < 1 {
		minChunk = 1
	}
	if max := len(src)/minChunk + 1; workers > max {
		workers = max
	}
	target := len(src) / workers
	if target < 1 {
		target = 1
	}
	chunks := make([]string, 0, workers)
	start := 0
	for i := 1; i < workers && start < len(src); i++ {
		cut := start + target
		if cut >= len(src) {
			break
		}
		j := strings.IndexByte(src[cut:], '\n')
		if j < 0 {
			break
		}
		cut += j + 1
		chunks = append(chunks, src[start:cut])
		start = cut
	}
	if start < len(src) {
		chunks = append(chunks, src[start:])
	}
	return chunks
}

// tokenizeSimChunk scans one chunk into records. It mirrors the serial
// parser's per-line validation exactly, deferring every check that
// depends on global parse state (alias resolution, scale, transistor
// count) to the merge.
func tokenizeSimChunk(p *tech.Params, src string) *simChunk {
	ch := &simChunk{}
	symOf := make(map[string]int32, 64)
	intern := func(tok string) int32 {
		if id, ok := symOf[tok]; ok {
			return id
		}
		id := int32(len(ch.syms))
		ch.syms = append(ch.syms, tok)
		symOf[tok] = id
		return id
	}
	line := 0
	fail := func(format string, args ...any) {
		ch.errLine = int32(line)
		ch.errMsg = fmt.Sprintf(format, args...)
	}
	rest := src
	for len(rest) > 0 {
		var ln string
		if i := strings.IndexByte(rest, '\n'); i >= 0 {
			ln, rest = rest[:i], rest[i+1:]
		} else {
			ln, rest = rest, ""
		}
		line++
		if len(ln) > maxSimLine {
			ch.errLine = int32(line)
			ch.errTooLong = true
			break
		}
		fields := strings.Fields(ln)
		if len(fields) == 0 {
			continue
		}
		key := fields[0]
		switch key {
		case "|":
			for i := 1; i < len(fields)-1; i++ {
				if fields[i] == "units:" {
					u, err := strconv.ParseFloat(fields[i+1], 64)
					if err != nil || u <= 0 {
						fail("bad units value %q", fields[i+1])
						break
					}
					ch.recs = append(ch.recs, simRec{kind: recScale, line: int32(line), v1: u})
				}
			}
		case "e", "n", "d", "p":
			if len(fields) < 4 {
				fail("transistor line needs at least 3 node names")
				break
			}
			var d tech.Device
			switch key {
			case "e", "n":
				d = tech.NEnh
			case "d":
				d = tech.NDep
			case "p":
				if !p.HasPChannel() {
					fail("p-channel transistor in technology %s", p.Name)
				}
				d = tech.PEnh
			}
			if ch.errLine != 0 {
				break
			}
			rec := simRec{kind: recTrans, dev: d, line: int32(line),
				sym: [3]int32{intern(fields[1]), intern(fields[2]), intern(fields[3])}}
			if len(fields) >= 6 {
				lv, err1 := strconv.ParseFloat(fields[4], 64)
				wv, err2 := strconv.ParseFloat(fields[5], 64)
				if err1 != nil || err2 != nil {
					fail("bad geometry %q %q", fields[4], fields[5])
					break
				}
				if lv <= 0 || wv <= 0 {
					fail("non-positive geometry %g x %g", lv, wv)
					break
				}
				rec.hasGeom, rec.v1, rec.v2 = true, lv, wv
			}
			ch.recs = append(ch.recs, rec)
		case "r":
			if len(fields) < 4 {
				fail("resistor line needs two nodes and a value")
				break
			}
			rv, err := strconv.ParseFloat(fields[3], 64)
			if err != nil || rv <= 0 {
				fail("bad resistance %q", fields[3])
				break
			}
			ch.recs = append(ch.recs, simRec{kind: recResistor, line: int32(line),
				sym: [3]int32{intern(fields[1]), intern(fields[2])}, v1: rv})
		case "C", "c":
			if len(fields) < 4 {
				fail("capacitor line needs two nodes and a value")
				break
			}
			cv, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				fail("bad capacitance %q", fields[3])
				break
			}
			if cv < 0 {
				fail("negative capacitance %g", cv)
				break
			}
			ch.recs = append(ch.recs, simRec{kind: recCap2, line: int32(line),
				sym: [3]int32{intern(fields[1]), intern(fields[2])}, v1: cv})
		case "N":
			if len(fields) < 3 {
				fail("node capacitance line needs a node and a value")
				break
			}
			cv, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				fail("bad capacitance %q", fields[len(fields)-1])
				break
			}
			ch.recs = append(ch.recs, simRec{kind: recCapN, line: int32(line),
				sym: [3]int32{intern(fields[1])}, v1: cv})
		case "=":
			if len(fields) < 3 {
				fail("alias line needs two names")
				break
			}
			canon, alias := fields[1], fields[2]
			if alias == canon {
				break
			}
			ch.recs = append(ch.recs, simRec{kind: recAlias, line: int32(line),
				sym: [3]int32{intern(canon), intern(alias)}})
		case "@":
			if len(fields) < 2 {
				fail("directive line needs a keyword")
				break
			}
			switch fields[1] {
			case "in", "out", "precharged":
				var mk uint8
				switch fields[1] {
				case "in":
					mk = markIn
				case "out":
					mk = markOut
				case "precharged":
					mk = markPrecharged
				}
				start := int32(len(ch.lists))
				for _, nm := range fields[2:] {
					ch.lists = append(ch.lists, intern(nm))
				}
				ch.recs = append(ch.recs, simRec{kind: recMark, mark: mk, line: int32(line),
					idx: start, n: int32(len(fields) - 2)})
			case "flow":
				if len(fields) < 4 {
					fail("flow directive needs a direction and a transistor index")
					break
				}
				idx, err := strconv.Atoi(fields[3])
				if err != nil || idx < 0 {
					fail("bad transistor index %q", fields[3])
					break
				}
				// The upper-bound check needs the merged transistor
				// count; an unknown direction is reported after it, so
				// both are deferred with their raw tokens.
				fl := flowUnknown
				switch fields[2] {
				case "a>b":
					fl = FlowAB
				case "b>a":
					fl = FlowBA
				case "off":
					fl = FlowOff
				case "both":
					fl = FlowBoth
				}
				ch.recs = append(ch.recs, simRec{kind: recFlow, line: int32(line),
					flow: fl, idx: int32(idx), tok: fields[3], tok2: fields[2]})
			case "inst":
				if len(fields) < 5 {
					fail("inst directive needs a path and a transistor range")
					break
				}
				lo, err1 := strconv.Atoi(fields[3])
				hi, err2 := strconv.Atoi(fields[4])
				if err1 != nil || err2 != nil || lo < 0 || hi < lo {
					fail("bad instance range %q %q", fields[3], fields[4])
					break
				}
				// The hi <= len(nw.Trans) bound needs the merged transistor
				// count, so it is deferred with the raw tokens.
				ch.recs = append(ch.recs, simRec{kind: recInst, line: int32(line),
					sym: [3]int32{intern(fields[2])}, idx: int32(lo), n: int32(hi),
					tok: fields[3], tok2: fields[4]})
			default:
				fail("unknown directive %q", fields[1])
			}
		default:
			fail("unknown record type %q", key)
		}
		if ch.errLine != 0 {
			break
		}
	}
	ch.lines = line
	return ch
}

// mergeSimChunks replays the tokenized, reconciled chunks, in file
// order, into a fresh network. This is the serial tail of the pipeline:
// alias state, node creation, scale, and error selection all advance here
// exactly as in ReadSim. Names arrive pre-canonicalized (chunk canon
// tables), so the merge itself never interns — the alias table's keys and
// values are canonical strings already.
func mergeSimChunks(name string, p *tech.Params, chunks []*simChunk) (*Network, error) {
	nw := New(name, p)
	aliases := make(map[string]string)
	aliasVer := 0
	scale := 1.0
	startLine := 0
	for _, ch := range chunks {
		// Per-chunk resolution cache: local symbol → node, valid for one
		// alias-table version. Alias lines are rare, so nearly every
		// reference is a single slice load instead of an alias walk plus
		// two map lookups.
		cache := make([]*Node, len(ch.syms))
		cacheVer := aliasVer
		resolve := func(sym int32, line int32) (*Node, error) {
			if cacheVer != aliasVer {
				clear(cache)
				cacheVer = aliasVer
			}
			if n := cache[sym]; n != nil {
				return n, nil
			}
			nm := ch.canon[sym]
			final, ok := followAliases(aliases, nm)
			if !ok {
				return nil, fmt.Errorf("sim %s:%d: alias cycle resolving %q", name, startLine+int(line), nm)
			}
			n := nw.Node(final)
			cache[sym] = n
			return n, nil
		}
		for i := range ch.recs {
			rec := &ch.recs[i]
			switch rec.kind {
			case recScale:
				scale = rec.v1
			case recTrans:
				g, err := resolve(rec.sym[0], rec.line)
				if err != nil {
					return nil, err
				}
				a, err := resolve(rec.sym[1], rec.line)
				if err != nil {
					return nil, err
				}
				b, err := resolve(rec.sym[2], rec.line)
				if err != nil {
					return nil, err
				}
				l, w := p.MinL, p.MinW
				if rec.hasGeom {
					l = rec.v1 * scale * centimicron
					w = rec.v2 * scale * centimicron
				}
				nw.AddTrans(rec.dev, g, a, b, w, l)
			case recResistor:
				a, err := resolve(rec.sym[0], rec.line)
				if err != nil {
					return nil, err
				}
				b, err := resolve(rec.sym[1], rec.line)
				if err != nil {
					return nil, err
				}
				nw.AddResistor(a, b, rec.v1)
			case recCap2:
				a, err := resolve(rec.sym[0], rec.line)
				if err != nil {
					return nil, err
				}
				b, err := resolve(rec.sym[1], rec.line)
				if err != nil {
					return nil, err
				}
				c := rec.v1 * femto
				switch {
				case a.IsRail() && b.IsRail():
					// Rail-to-rail decoupling: irrelevant to timing.
				case a.IsRail():
					nw.AddCap(b, c)
				case b.IsRail():
					nw.AddCap(a, c)
				default:
					nw.AddCap(a, c/2)
					nw.AddCap(b, c/2)
				}
			case recCapN:
				n, err := resolve(rec.sym[0], rec.line)
				if err != nil {
					return nil, err
				}
				nw.AddCap(n, rec.v1*femto)
			case recAlias:
				aliases[ch.canon[rec.sym[1]]] = ch.canon[rec.sym[0]]
				aliasVer++
			case recMark:
				for _, sym := range ch.lists[rec.idx : rec.idx+rec.n] {
					n, err := resolve(sym, rec.line)
					if err != nil {
						return nil, err
					}
					switch rec.mark {
					case markIn:
						nw.MarkInput(n)
					case markOut:
						nw.MarkOutput(n)
					case markPrecharged:
						n.Precharged = true
					}
				}
			case recFlow:
				if int(rec.idx) >= len(nw.Trans) {
					return nil, fmt.Errorf("sim %s:%d: bad transistor index %q", name, startLine+int(rec.line), rec.tok)
				}
				if rec.flow == flowUnknown {
					return nil, fmt.Errorf("sim %s:%d: unknown flow direction %q", name, startLine+int(rec.line), rec.tok2)
				}
				nw.Trans[rec.idx].Flow = rec.flow
			case recInst:
				if int(rec.n) > len(nw.Trans) {
					return nil, fmt.Errorf("sim %s:%d: bad instance range %q %q", name, startLine+int(rec.line), rec.tok, rec.tok2)
				}
				nw.Instances = append(nw.Instances, Instance{
					Path: ch.canon[rec.sym[0]], TransLo: int(rec.idx), TransHi: int(rec.n),
				})
			}
		}
		if ch.errLine != 0 {
			if ch.errTooLong {
				return nil, fmt.Errorf("sim %s: %w", name, bufio.ErrTooLong)
			}
			return nil, fmt.Errorf("sim %s:%d: %s", name, startLine+int(ch.errLine), ch.errMsg)
		}
		startLine += ch.lines
	}
	return nw, nil
}
