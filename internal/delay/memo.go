// Per-stage evaluation memo: everything the three models derive from a
// stage other than the input slope is a constant of the (stage, tables)
// pair — effective resistances, capacitance sums, the intrinsic Elmore
// delay and its split-walk replay terms, the driver's slope curve. An
// enumerated stage is immutable after construction, so these constants are
// computed once (on first evaluation) and stashed on the stage itself,
// turning the models' per-evaluation path walk into a handful of
// multiply-adds. This is the single hottest savings of the chip-scale
// analysis: the same stage is re-evaluated every time longest-path
// relaxation revisits its trigger.
//
// Bit-exactness: the memo stores the exact intermediate values the uncached
// walks produce (computed by the same code, in the same order), and the
// replay performs the exact arithmetic the uncached evaluators perform on
// them, so cached and uncached evaluation agree bit for bit. Hand-assembled
// stages (no PathCap, unsorted sides, no precomputed driver) skip the memo
// entirely and always take the uncached path.
package delay

import (
	"math"

	"repro/internal/netlist"
	"repro/internal/stage"
)

// memoLowMax bounds the split-replay buffer: the driver sits at or near
// the source, so positions below it are few (matches the stack buffer the
// uncached fused path uses).
const memoLowMax = 16

// stageMemo is the cached per-(stage, tables) constants for all three
// models. One struct serves every model so a stage shared across models
// (the common E2/E7 pattern: one database, three models, one table set)
// caches once.
type stageMemo struct {
	tables *Tables // validity key: memo holds iff the evaluator's tables match

	// Lumped: delay = rSum × cSum.
	rSum, cSum float64
	// Output-transition factor at ratio 0 (lumped and rc models), and the
	// single-pole fallback when the stage has no driver.
	tf0 float64

	// Intrinsic (step-input) Elmore delay — rc's point estimate, slope's
	// τstep.
	tauStep float64

	// Slope split-walk replay terms (valid when fused): the delay at
	// driver multiplier m replays as high + (rDrv·m)·accDrv + Σ low[j]
	// for j = drv-1 … 0, exactly the uncached fused fold.
	fused              bool
	drv                int
	high, rDrv, accDrv float64
	low                [memoLowMax]float64
	curve              *Curve // driver slope curve; nil when drv < 0
}

// memoFor returns the stage's memo for tb, computing and installing it on
// first use. Returns nil for stages the memo cannot describe (hand-built:
// mutable loading, unsorted sides, or no precomputed driver).
func memoFor(tb *Tables, nw *netlist.Network, st *stage.Stage) *stageMemo {
	// Fast path first: an installed memo implies the stage already passed
	// the eligibility checks, so a hit needs only the load and the key
	// compare. This is the entry point of every hot-loop evaluation.
	if m, ok := st.Memo().(*stageMemo); ok && m.tables == tb {
		return m
	}
	if _, ok := st.Driver(); !ok || st.PathCap == nil || !st.SideSorted() {
		return nil // hand-assembled stage: loading may still change
	}
	m := buildMemo(tb, nw, st)
	st.SetMemo(m)
	return m
}

// buildMemo computes the constants with the exact uncached arithmetic.
func buildMemo(tb *Tables, nw *netlist.Network, st *stage.Stage) *stageMemo {
	m := &stageMemo{tables: tb}
	rc := RC{T: tb}

	for _, e := range st.Path {
		m.rSum += elemR(tb, e.Trans, st.Transition)
	}
	m.cSum = st.TotalC(nw)

	m.drv = driverElement(st)
	m.tf0 = math.Log(9)
	if m.drv >= 0 {
		m.curve = tb.Curve(st.Path[m.drv].Trans.Type, st.Transition)
		m.tf0 = m.curve.TFactorAt(0)
	}

	m.fused = m.drv >= 0 && m.drv <= memoLowMax && (st.SideSorted() || len(st.Side) == 0)
	if m.fused {
		m.tauStep, m.high, m.rDrv, m.accDrv = rc.elmoreSplit(nw, st, m.drv, m.low[:])
	} else {
		m.tauStep = rc.elmoreAt(nw, st, -1, 1)
	}
	return m
}

// lumpedResult replays the lumped model from the memo.
func (m *stageMemo) lumpedResult() Result {
	d := m.rSum * m.cSum
	return Result{Delay: d, Slope: m.tf0 * d}
}

// rcResult replays the distributed-RC model from the memo.
func (m *stageMemo) rcResult() Result {
	return Result{Delay: m.tauStep, Slope: m.tf0 * m.tauStep}
}

// slopeResult replays the slope model from the memo, or reports ok=false
// when the stage needs the uncached two-walk path (deep driver position).
func (m *stageMemo) slopeResult(inSlope float64) (Result, bool) {
	if m.drv < 0 || m.tauStep <= 0 {
		return Result{Delay: m.tauStep, Slope: math.Log(9) * m.tauStep}, true
	}
	if !m.fused {
		return Result{}, false
	}
	ratio := 0.0
	if inSlope > 0 {
		ratio = inSlope / m.tauStep
	}
	mult, tfactor := m.curve.At(ratio)
	d := m.high + (m.rDrv*mult)*m.accDrv
	for j := m.drv - 1; j >= 0; j-- {
		d += m.low[j]
	}
	return Result{Delay: d, Slope: tfactor * m.tauStep}, true
}
