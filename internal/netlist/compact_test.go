package netlist

import (
	"testing"

	"repro/internal/tech"
)

func TestPackGateRefRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		idx int
		on1 bool
	}{{0, false}, {0, true}, {1, false}, {12345, true}, {1 << 29, false}} {
		ti, on1 := UnpackGateRef(PackGateRef(tc.idx, tc.on1))
		if ti != tc.idx || on1 != tc.on1 {
			t.Errorf("round trip (%d,%v) = (%d,%v)", tc.idx, tc.on1, ti, on1)
		}
	}
}

// TestCompileMatchesPointerGraph checks the compiled CSR adjacency and
// flag arrays against the pointer graph they flatten: per node, the gated
// non-always-on devices in Gates order with correct polarity, and the
// rail/input/precharge/terminal flags.
func TestCompileMatchesPointerGraph(t *testing.T) {
	p := tech.NMOS4()
	nw := New("compact", p)
	in, mid, out, bus := nw.Node("in"), nw.Node("mid"), nw.Node("out"), nw.Node("bus")
	nw.MarkInput(in)
	bus.Precharged = true
	nw.AddTrans(tech.NEnh, in, mid, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, mid, nw.Vdd(), mid, 0, 4*p.MinL) // always-on load
	nw.AddTrans(tech.NEnh, mid, out, bus, 0, 0)
	nw.AddTrans(tech.NEnh, out, bus, nw.GND(), 0, 0)

	c := Compile(nw)
	if got, want := len(c.GateStart), len(nw.Nodes)+1; got != want {
		t.Fatalf("GateStart length %d, want %d", got, want)
	}
	for i, n := range nw.Nodes {
		var want []int32
		for _, tx := range n.Gates {
			if !tx.AlwaysOn() {
				want = append(want, PackGateRef(tx.Index, tx.ConductsOn() == 1))
			}
		}
		got := c.Gates(i)
		if len(got) != len(want) {
			t.Fatalf("node %s: %d gate refs, want %d", n.Name, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("node %s: gate ref %d = %d, want %d", n.Name, j, got[j], want[j])
			}
		}
		if c.IsRail[i] != n.IsRail() || c.IsInput[i] != (n.Kind == KindInput) ||
			c.Precharged[i] != n.Precharged || c.HasTerms[i] != (len(n.Terms) > 0) {
			t.Errorf("node %s: flag mismatch", n.Name)
		}
	}
	// The always-on depletion load must not appear anywhere in the CSR.
	for _, r := range c.GateRef {
		ti, _ := UnpackGateRef(r)
		if nw.Trans[ti].AlwaysOn() {
			t.Errorf("always-on device %d compiled into gate adjacency", ti)
		}
	}
}
