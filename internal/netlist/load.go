// File-level ingest with snapshot caching: the one entry point the
// command-line tools use to turn a .sim path into a Network. The cache
// protocol is deliberately simple — one .simx file per .sim file, keyed
// by content hash, validated on every load:
//
//	hash := SHA-256(sim bytes)
//	snapshot exists && snapshot.hash == hash && snapshot.tech == tech
//	    → load snapshot (no parsing)
//	otherwise
//	    → parse (parallel), then rewrite the snapshot atomically
//
// Editing the .sim file, switching technologies, corrupting the
// snapshot, or bumping the format version all change or fail one of the
// checks and fall back to a parse; a stale snapshot can never be served.
package netlist

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/tech"
)

// LoadOptions configures LoadSimFile.
type LoadOptions struct {
	// Workers is the parser worker count: 0 = GOMAXPROCS, 1 = serial,
	// N = at most N.
	Workers int
	// Snapshot, when non-empty, is the path of the .simx cache file to
	// load from when fresh and rewrite after a parse. Empty disables
	// caching.
	Snapshot string
}

// LoadSimFile reads the .sim netlist at path into a checked Network
// named name, via the snapshot cache when one is configured and fresh.
// fromSnapshot reports whether the parse was skipped. The parse path
// runs Network.Check before the snapshot is written, so a snapshot hit
// skips both the parse and the structural check — a .simx file never
// holds a network that did not pass. A snapshot that fails to load for
// any reason is treated as a miss, and a snapshot write failure is
// returned as an error only after the network itself loaded — callers
// that only care about the network may ignore it, but silently losing
// the cache forever is worse than saying so.
func LoadSimFile(name, path string, p *tech.Params, opt LoadOptions) (nw *Network, fromSnapshot bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	hash := sha256.Sum256(data)
	if opt.Snapshot != "" {
		if snap, ok := loadFreshSnapshot(opt.Snapshot, name, p, hash); ok {
			return snap, true, nil
		}
	}
	nw, err = ReadSimParallel(name, p, bytes.NewReader(data), opt.Workers)
	if err != nil {
		return nil, false, err
	}
	if err := nw.Check(); err != nil {
		return nil, false, err
	}
	if opt.Snapshot != "" {
		if werr := WriteSnapshotFile(opt.Snapshot, nw, hash); werr != nil {
			return nw, false, fmt.Errorf("writing snapshot: %w", werr)
		}
	}
	return nw, false, nil
}

// loadFreshSnapshot loads path and reports whether it matches the
// wanted source hash and technology. Any failure — missing file,
// version skew, checksum, staleness — is a cache miss. The network name
// is a caller-chosen label, not part of the structure the hash pins, so
// a hit is relabeled to the requested name; this lets a snapshot
// emitted by `benchgen -snapshot` serve `crystal -sim f.sim`, whose
// name (the file path) benchgen cannot know.
func loadFreshSnapshot(path, name string, p *tech.Params, hash [32]byte) (*Network, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	nw, gotHash, err := ReadSnapshot(f, p)
	if err != nil || gotHash != hash {
		return nil, false
	}
	nw.Name = name
	return nw, true
}

// WriteSnapshotFile writes nw as a .simx snapshot at path, atomically:
// the bytes land in a temp file in the same directory and are renamed
// into place, so concurrent readers see either the old snapshot or the
// new one, never a torn write.
func WriteSnapshotFile(path string, nw *Network, sourceHash [32]byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".simx-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteSnapshot(tmp, nw, sourceHash); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
