// Cloning and structural editing. The incremental re-analysis engine
// (internal/incremental) never mutates a network an analysis has seen:
// each edit epoch applies to a fresh Clone, so stage databases and
// analyzers still reading the previous generation observe a fully
// immutable snapshot. Clone therefore preserves everything enumeration
// order depends on — node and transistor indexes, and the insertion
// order of every adjacency list — so a clone analyzes bit-identically to
// its original.
package netlist

// Clone returns a deep copy of the network: same node and transistor
// indexes, same adjacency-list order, independent storage. The technology
// parameters are shared (they are immutable by convention).
func (nw *Network) Clone() *Network {
	c := &Network{
		Name:   nw.Name,
		Tech:   nw.Tech,
		Nodes:  make([]*Node, len(nw.Nodes)),
		Trans:  make([]*Trans, len(nw.Trans)),
		byName: make(map[string]*Node, len(nw.Nodes)),
	}
	for i, n := range nw.Nodes {
		cn := &Node{
			Index:      n.Index,
			Name:       n.Name,
			Kind:       n.Kind,
			Cap:        n.Cap,
			Precharged: n.Precharged,
		}
		c.Nodes[i] = cn
		c.byName[cn.Name] = cn
	}
	c.vdd = c.Nodes[nw.vdd.Index]
	c.gnd = c.Nodes[nw.gnd.Index]
	if len(nw.Instances) > 0 {
		c.Instances = make([]Instance, len(nw.Instances))
		copy(c.Instances, nw.Instances)
	}
	for i, t := range nw.Trans {
		ct := &Trans{
			Index:     t.Index,
			Type:      t.Type,
			Gate:      c.Nodes[t.Gate.Index],
			A:         c.Nodes[t.A.Index],
			B:         c.Nodes[t.B.Index],
			W:         t.W,
			L:         t.L,
			Flow:      t.Flow,
			ROverride: t.ROverride,
		}
		c.Trans[i] = ct
	}
	// Adjacency lists are rebuilt element-for-element from the originals,
	// not re-derived, so any insertion order (including the post-removal
	// order left by RemoveTrans) survives the copy exactly.
	for i, n := range nw.Nodes {
		cn := c.Nodes[i]
		if len(n.Gates) > 0 {
			cn.Gates = make([]*Trans, len(n.Gates))
			for j, t := range n.Gates {
				cn.Gates[j] = c.Trans[t.Index]
			}
		}
		if len(n.Terms) > 0 {
			cn.Terms = make([]*Trans, len(n.Terms))
			for j, t := range n.Terms {
				cn.Terms[j] = c.Trans[t.Index]
			}
		}
	}
	return c
}

// RemoveTrans deletes transistor t from the network. The last transistor
// is swapped into the hole to keep indexes dense, so exactly one surviving
// transistor (the returned one, nil if t was last) changes index. Nodes
// are never removed — a node left floating keeps loading nothing.
// Adjacency lists keep their relative order.
func (nw *Network) RemoveTrans(t *Trans) *Trans {
	if nw.Trans[t.Index] != t {
		panic("netlist: RemoveTrans of foreign transistor")
	}
	removeFrom(&t.Gate.Gates, t)
	removeFrom(&t.A.Terms, t)
	if t.B != t.A {
		removeFrom(&t.B.Terms, t)
	}
	last := len(nw.Trans) - 1
	var moved *Trans
	if t.Index != last {
		moved = nw.Trans[last]
		moved.Index = t.Index
		nw.Trans[t.Index] = moved
	}
	nw.Trans[last] = nil
	nw.Trans = nw.Trans[:last]
	t.Index = -1
	return moved
}

// removeFrom deletes the first occurrence of t, preserving order.
func removeFrom(list *[]*Trans, t *Trans) {
	s := *list
	for i, x := range s {
		if x == t {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = nil
			*list = s[:len(s)-1]
			return
		}
	}
}
