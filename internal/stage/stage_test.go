package stage

import (
	"math"
	"testing"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// invNet builds an nMOS inverter and returns (net, in, out).
func invNet() (*netlist.Network, *netlist.Node, *netlist.Node) {
	p := tech.NMOS4()
	nw := netlist.New("inv", p)
	in, out := nw.Node("in"), nw.Node("out")
	nw.MarkInput(in)
	nw.AddTrans(tech.NEnh, in, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 0, 4*p.MinL)
	return nw, in, out
}

func TestToNodeInverter(t *testing.T) {
	nw, _, out := invNet()
	fall := ToNode(nw, out, tech.Fall, Options{})
	if len(fall.Stages) != 1 {
		t.Fatalf("fall stages = %d, want 1", len(fall.Stages))
	}
	st := fall.Stages[0]
	if st.Source != nw.GND() || st.Target != out || len(st.Path) != 1 {
		t.Errorf("bad fall stage: %v", st)
	}
	if err := st.Validate(); err != nil {
		t.Error(err)
	}
	rise := ToNode(nw, out, tech.Rise, Options{})
	if len(rise.Stages) != 1 {
		t.Fatalf("rise stages = %d, want 1", len(rise.Stages))
	}
	if rise.Stages[0].Source != nw.Vdd() {
		t.Errorf("rise source = %v, want Vdd", rise.Stages[0].Source)
	}
	if rise.Stages[0].Path[0].Trans.Type != tech.NDep {
		t.Error("rise should go through the depletion load")
	}
}

func TestToNodeRespectsOracle(t *testing.T) {
	nw, _, out := invNet()
	off := func(*netlist.Trans) Conduction { return Off }
	if res := ToNode(nw, out, tech.Fall, Options{Oracle: off}); len(res.Stages) != 0 {
		t.Error("all-off oracle should yield no stages")
	}
}

func TestToNodeRespectsFlow(t *testing.T) {
	nw, _, out := invNet()
	nw.Trans[0].Flow = netlist.FlowOff
	if res := ToNode(nw, out, tech.Fall, Options{}); len(res.Stages) != 0 {
		t.Error("FlowOff should block the pulldown path")
	}
}

// stackNet builds a 2-high nMOS NAND pulldown: GND -(g=b)- mid -(g=a)- out,
// with a depletion pullup on out.
func stackNet() (*netlist.Network, *netlist.Trans, *netlist.Node) {
	p := tech.NMOS4()
	nw := netlist.New("nand", p)
	a, b := nw.Node("a"), nw.Node("b")
	nw.MarkInput(a)
	nw.MarkInput(b)
	out, mid := nw.Node("out"), nw.Node("mid")
	ta := nw.AddTrans(tech.NEnh, a, out, mid, 0, 0)
	nw.AddTrans(tech.NEnh, b, mid, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 0, 4*p.MinL)
	return nw, ta, out
}

func TestThroughStack(t *testing.T) {
	nw, ta, out := stackNet()
	res := Through(nw, ta, tech.Fall, Options{})
	// Expect at least a stage targeting out (GND→mid→out) with trigger ta.
	var found *Stage
	for _, st := range res.Stages {
		if st.Target == out && st.Source == nw.GND() {
			found = st
		}
		if st.Trigger != ta {
			t.Errorf("stage %v has wrong trigger", st)
		}
		if err := st.Validate(); err != nil {
			t.Errorf("stage %v: %v", st, err)
		}
	}
	if found == nil {
		t.Fatalf("no GND→out stage among %d stages", len(res.Stages))
	}
	if len(found.Path) != 2 {
		t.Errorf("GND→out path length = %d, want 2", len(found.Path))
	}
}

func TestThroughRespectsDepthCap(t *testing.T) {
	nw, ta, _ := stackNet()
	res := Through(nw, ta, tech.Fall, Options{MaxDepth: 1})
	for _, st := range res.Stages {
		if len(st.Path) > 1 {
			t.Errorf("stage exceeds depth cap: %v", st)
		}
	}
}

func TestFromNodePassChain(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("pass", p)
	in, ctl := nw.Node("in"), nw.Node("ctl")
	nw.MarkInput(in)
	nw.MarkInput(ctl)
	n1, n2 := nw.Node("n1"), nw.Node("n2")
	nw.AddTrans(tech.NEnh, ctl, in, n1, 0, 0)
	nw.AddTrans(tech.NEnh, ctl, n1, n2, 0, 0)
	res := FromNode(nw, in, tech.Rise, Options{})
	if len(res.Stages) != 2 {
		t.Fatalf("stages = %d, want 2 (n1 and n2)", len(res.Stages))
	}
	for _, st := range res.Stages {
		if st.Source != in || st.Trigger != nil {
			t.Errorf("bad channel stage: %v", st)
		}
		if err := st.Validate(); err != nil {
			t.Error(err)
		}
	}
	// Farthest stage has two elements.
	last := res.Stages[len(res.Stages)-1]
	if last.Target != n2 || len(last.Path) != 2 {
		t.Errorf("last stage should reach n2 in 2 hops: %v", last)
	}
}

func TestSideLoadsCollectFanout(t *testing.T) {
	// A pass transistor hangs a side branch off the inverter output; the
	// fall stage for the output should count the branch capacitance.
	nw, _, out := invNet()
	p := nw.Tech
	side := nw.Node("side")
	always := nw.Node("always")
	nw.MarkInput(always)
	nw.AddTrans(tech.NEnh, always, out, side, 0, 0)
	res := ToNode(nw, out, tech.Fall, Options{})
	if len(res.Stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(res.Stages))
	}
	st := res.Stages[0]
	if len(st.Side) != 1 || st.Side[0].Node != side {
		t.Fatalf("side loads = %v, want [side]", st.Side)
	}
	if st.Side[0].Attach != 1 {
		t.Errorf("side load attaches at %d, want 1 (the output)", st.Side[0].Attach)
	}
	wantC := nw.NodeCap(side)
	if math.Abs(st.Side[0].C-wantC) > 1e-21 {
		t.Errorf("side load C = %g, want %g", st.Side[0].C, wantC)
	}
	if st.Side[0].R != p.R(tech.NEnh, tech.Fall, p.MinW, p.MinL) {
		t.Errorf("side load R = %g", st.Side[0].R)
	}
	// TotalC = out + side.
	want := nw.NodeCap(out) + wantC
	if got := st.TotalC(nw); math.Abs(got-want) > 1e-21 {
		t.Errorf("TotalC = %g, want %g", got, want)
	}
}

func TestSideLoadsStopAtSources(t *testing.T) {
	// Capacitance behind a rail or input must not load the stage.
	nw, _, out := invNet()
	other := nw.Node("other")
	g2 := nw.Node("g2")
	// A second pulldown from GND to another node: reachable only through
	// the GND rail, which is an ideal source.
	nw.AddTrans(tech.NEnh, g2, other, nw.GND(), 0, 0)
	res := ToNode(nw, out, tech.Fall, Options{})
	st := res.Stages[0]
	for _, sl := range st.Side {
		if sl.Node == other {
			t.Error("side loading leaked through the GND rail")
		}
	}
}

func TestTreeConstruction(t *testing.T) {
	nw, ta, out := stackNet()
	res := Through(nw, ta, tech.Fall, Options{})
	var st *Stage
	for _, s := range res.Stages {
		if s.Target == out {
			st = s
		}
	}
	if st == nil {
		t.Fatal("no stage to out")
	}
	tree, idx := st.Tree(nw, nil)
	if tree.Len() < 3 {
		t.Fatalf("tree too small: %d nodes", tree.Len())
	}
	if idx[0] != 0 {
		t.Error("source should map to tree root")
	}
	if err := tree.Validate(); err != nil {
		t.Error(err)
	}
	// Scaling the trigger element doubles its resistance in the tree.
	var trigIdx int
	for i, e := range st.Path {
		if e.Trans == ta {
			trigIdx = i
		}
	}
	scale := make([]float64, len(st.Path))
	for i := range scale {
		scale[i] = 1
	}
	scale[trigIdx] = 2
	t2, idx2 := st.Tree(nw, scale)
	if got, want := t2.R(idx2[trigIdx+1]), 2*tree.R(idx[trigIdx+1]); math.Abs(got-want) > 1e-9 {
		t.Errorf("scaled R = %g, want %g", got, want)
	}
}

func TestSeriesRAndWorstRC(t *testing.T) {
	nw, ta, out := stackNet()
	res := Through(nw, ta, tech.Fall, Options{})
	for _, st := range res.Stages {
		if st.Target != out {
			continue
		}
		r := st.SeriesR(nw.Tech)
		want := 2 * nw.Tech.RSquare(tech.NEnh, tech.Fall)
		if math.Abs(r-want) > 1e-9 {
			t.Errorf("SeriesR = %g, want %g", r, want)
		}
		if st.WorstRC(nw) <= 0 {
			t.Error("WorstRC should be positive")
		}
	}
}

func TestMaxPathsTruncation(t *testing.T) {
	// A ladder of parallel pulldowns gives exponentially many paths;
	// MaxPaths must cap the enumeration and set Truncated.
	p := tech.NMOS4()
	nw := netlist.New("ladder", p)
	g := nw.Node("g")
	nw.MarkInput(g)
	prev := nw.GND()
	for i := 0; i < 6; i++ {
		next := nw.Node(string(rune('a' + i)))
		// Two parallel devices per rung.
		nw.AddTrans(tech.NEnh, g, prev, next, 0, 0)
		nw.AddTrans(tech.NEnh, g, prev, next, 0, 0)
		prev = next
	}
	res := ToNode(nw, prev, tech.Fall, Options{MaxPaths: 10})
	if len(res.Stages) > 10 {
		t.Errorf("MaxPaths exceeded: %d", len(res.Stages))
	}
	if !res.Truncated {
		t.Error("Truncated should be set")
	}
}

func TestValidateCatchesBrokenStages(t *testing.T) {
	nw, _, out := invNet()
	res := ToNode(nw, out, tech.Fall, Options{})
	st := res.Stages[0]
	bad := &Stage{Source: st.Source, Target: st.Target, Transition: st.Transition}
	if bad.Validate() == nil {
		t.Error("empty path should fail validation")
	}
	bad2 := &Stage{Source: st.Source, Target: st.Target, Transition: st.Transition,
		Path: st.Path, Side: []SideLoad{{Node: out, Attach: 99, C: 1}}}
	if bad2.Validate() == nil {
		t.Error("bad attach should fail validation")
	}
}

func TestStageString(t *testing.T) {
	nw, _, out := invNet()
	res := ToNode(nw, out, tech.Fall, Options{})
	s := res.Stages[0].String()
	if s == "" || len(s) < 10 {
		t.Errorf("String too short: %q", s)
	}
}
