// Shared network arena coverage: gauge accounting, copy-on-edit
// detach, per-session-copy fallback, and the bit-identity contract —
// analysis over the shared mapped view must match analysis over a
// private heap copy at any worker count, before and after an
// edit-triggered detach.
package server

import (
	"net/http"
	"sync"
	"testing"

	"repro/internal/netlist"
)

// withTop returns the dlatch config with a distinct Top directive —
// a different LRU key (no dedup) over the same network identity.
func withTop(t *testing.T, top int) SessionConfig {
	cfg := dlatchConfig(t)
	cfg.Top = top
	return cfg
}

// lastBarrierReport extracts the final refreshed report of an edit
// script.
func lastBarrierReport(t *testing.T, resp editsResponse) string {
	t.Helper()
	if len(resp.Barriers) == 0 {
		t.Fatal("edit script produced no barriers")
	}
	return resp.Barriers[len(resp.Barriers)-1].Report
}

func TestArenaSharedViews(t *testing.T) {
	if !netlist.MmapSupported {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()

	// Reference arm: per-session heap copies over the same snapshot
	// directory, exercised first so its cold create seeds the cache.
	heap := newTestClient(t, Options{SnapshotDir: dir, NoSharedViews: true})
	if resp := heap.create(withTop(t, 3)); resp.Source != "parse" {
		t.Fatalf("heap cold source = %q, want parse", resp.Source)
	}
	heapSess := heap.create(withTop(t, 4))
	if heapSess.Source != "snapshot" {
		t.Fatalf("heap warm source = %q, want snapshot (NoSharedViews)", heapSess.Source)
	}
	if st := heap.metrics().NetArena; st != (ArenaStats{}) {
		t.Fatalf("netarena gauges moved with shared views disabled: %+v", st)
	}
	heapW1 := heap.analyze(heapSess.Session, 1).Report
	heapW8 := heap.analyze(heapSess.Session, 8).Report
	if heapW1 != heapW8 {
		t.Fatal("heap arm: workers-identity violated")
	}

	// Shared arm: three sessions with distinct analysis directives all
	// alias one mapping.
	c := newTestClient(t, Options{SnapshotDir: dir})
	sessions := make([]createResponse, 0, 3)
	for top := 4; top <= 6; top++ {
		resp := c.create(withTop(t, top))
		if resp.Source != "mmap" {
			t.Fatalf("top=%d source = %q, want mmap", top, resp.Source)
		}
		sessions = append(sessions, resp)
	}
	st := c.metrics().NetArena
	if st.Mappings != 1 || st.SharedSessions != 3 || st.Detaches != 0 {
		t.Fatalf("after 3 shared creates: %+v", st)
	}
	if st.ResidentBytes <= 0 {
		t.Fatalf("resident_bytes = %d, want > 0", st.ResidentBytes)
	}

	// Bit-identity mapped-vs-heap at workers 1 and 8 (same Top=4 config
	// as the heap arm).
	if got := c.analyze(sessions[0].Session, 1).Report; got != heapW1 {
		t.Fatalf("mapped w1 report differs from heap:\n--- heap\n%s\n--- mapped\n%s", heapW1, got)
	}
	if got := c.analyze(sessions[0].Session, 8).Report; got != heapW8 {
		t.Fatal("mapped w8 report differs from heap")
	}

	// Copy-on-edit: the first edit barrier detaches the session onto a
	// private clone; the result must match the same edit applied to a
	// heap-loaded session.
	script := "cap out 2e-14\nrun\n"
	heapEdited := lastBarrierReport(t, heap.edits(heapSess.Session, script))
	mappedEdited := lastBarrierReport(t, c.edits(sessions[0].Session, script))
	if mappedEdited != heapEdited {
		t.Fatalf("post-detach report differs from heap:\n--- heap\n%s\n--- mapped\n%s", heapEdited, mappedEdited)
	}
	st = c.metrics().NetArena
	if st.Mappings != 1 || st.SharedSessions != 2 || st.Detaches != 1 {
		t.Fatalf("after detach: %+v", st)
	}

	// The still-attached sessions are unaffected by the detached
	// session's private edit.
	if got := c.analyze(sessions[1].Session, 1).Report; got != heapW1 {
		t.Fatal("shared view mutated by a detached session's edit")
	}

	// Deleting a shared session releases its reference; the mapping
	// stays resident for the next session of the same chip.
	if st := c.do("DELETE", "/v1/sessions/"+sessions[1].Session, nil, nil); st != http.StatusOK {
		t.Fatalf("delete: status %d", st)
	}
	st = c.metrics().NetArena
	if st.Mappings != 1 || st.SharedSessions != 1 || st.Detaches != 1 {
		t.Fatalf("after delete: %+v", st)
	}

	// A new session re-acquires the resident mapping.
	if resp := c.create(withTop(t, 7)); resp.Source != "mmap" {
		t.Fatalf("re-acquire source = %q, want mmap", resp.Source)
	}
	if st = c.metrics().NetArena; st.Mappings != 1 || st.SharedSessions != 2 {
		t.Fatalf("after re-acquire: %+v", st)
	}
}

// TestArenaConcurrentDetach races copy-on-edit detaches from two
// sessions aliasing one mapping: both edit barriers fire concurrently
// (under -race in CI), each must detach exactly once onto its own
// private clone, and both results must be bit-identical to the same
// script applied to a heap-loaded session.
func TestArenaConcurrentDetach(t *testing.T) {
	if !netlist.MmapSupported {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	script := "cap out 2e-14\nrun\nresize 2 6e-6 2e-6\nrun\n"

	// Heap control: the expected post-edit report with no arena involved.
	heap := newTestClient(t, Options{SnapshotDir: dir, NoSharedViews: true})
	heapSess := heap.create(withTop(t, 3))
	heap.analyze(heapSess.Session, 1)
	heapEdited := lastBarrierReport(t, heap.edits(heapSess.Session, script))

	// Shared arm: two sessions over one mapping, analyzed, then edited
	// from two goroutines at once.
	c := newTestClient(t, Options{SnapshotDir: dir})
	a := c.create(withTop(t, 3))
	b := c.create(withTop(t, 4))
	if a.Source != "mmap" || b.Source != "mmap" {
		t.Fatalf("sources = %q, %q, want mmap", a.Source, b.Source)
	}
	c.analyze(a.Session, 1)
	c.analyze(b.Session, 1)
	if st := c.metrics().NetArena; st.Mappings != 1 || st.SharedSessions != 2 || st.Detaches != 0 {
		t.Fatalf("before edits: %+v", st)
	}

	var wg sync.WaitGroup
	reports := make([]string, 2)
	for i, id := range []string{a.Session, b.Session} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i] = lastBarrierReport(t, c.edits(id, script))
		}()
	}
	wg.Wait()

	for i, got := range reports {
		if got != heapEdited {
			t.Fatalf("session %d post-detach report differs from heap:\n--- heap\n%s\n--- mapped\n%s",
				i, heapEdited, got)
		}
	}
	st := c.metrics().NetArena
	if st.Mappings != 1 || st.SharedSessions != 0 || st.Detaches != 2 {
		t.Fatalf("after concurrent detaches: %+v", st)
	}
}
