package netlist

import (
	"math"
	"strings"
	"testing"

	"repro/internal/tech"
)

func TestRailsAndAliases(t *testing.T) {
	nw := New("t", tech.NMOS4())
	if nw.Vdd().Kind != KindVdd || nw.GND().Kind != KindGnd {
		t.Fatal("rails not created")
	}
	for _, alias := range []string{"VDD", "vdd", "Vdd"} {
		if nw.Node(alias) != nw.Vdd() {
			t.Errorf("%q should alias Vdd", alias)
		}
	}
	for _, alias := range []string{"GND", "gnd", "Gnd", "VSS", "vss", "Vss"} {
		if nw.Node(alias) != nw.GND() {
			t.Errorf("%q should alias GND", alias)
		}
	}
	if nw.Lookup("nothere") != nil {
		t.Error("Lookup should not create nodes")
	}
	n := nw.Node("x")
	if nw.Lookup("x") != n {
		t.Error("Lookup should find created node")
	}
}

func TestAddTransAdjacency(t *testing.T) {
	p := tech.NMOS4()
	nw := New("t", p)
	g, a, b := nw.Node("g"), nw.Node("a"), nw.Node("b")
	tr := nw.AddTrans(tech.NEnh, g, a, b, 0, 0)
	if tr.W != p.MinW || tr.L != p.MinL {
		t.Errorf("zero geometry should default to minima, got %g×%g", tr.W, tr.L)
	}
	if len(g.Gates) != 1 || len(a.Terms) != 1 || len(b.Terms) != 1 {
		t.Error("adjacency lists not updated")
	}
	if tr.Other(a) != b || tr.Other(b) != a || tr.Other(g) != nil {
		t.Error("Other terminal lookup wrong")
	}
	if err := nw.Check(); err != nil {
		t.Errorf("valid network rejected: %v", err)
	}
}

func TestCheckCatchesSupplyShort(t *testing.T) {
	nw := New("t", tech.NMOS4())
	g := nw.Node("g")
	nw.AddTrans(tech.NEnh, g, nw.Vdd(), nw.GND(), 0, 0)
	if err := nw.Check(); err == nil {
		t.Error("Vdd-GND channel short should be caught")
	}
}

func TestCheckCatchesPChannelInNMOS(t *testing.T) {
	nw := New("t", tech.NMOS4())
	g, a, b := nw.Node("g"), nw.Node("a"), nw.Node("b")
	nw.AddTrans(tech.PEnh, g, a, b, 0, 0)
	if err := nw.Check(); err == nil {
		t.Error("p-channel in nMOS technology should be caught")
	}
}

func TestNodeCapComposition(t *testing.T) {
	p := tech.NMOS4()
	nw := New("t", p)
	g, a, b := nw.Node("g"), nw.Node("a"), nw.Node("b")
	tr := nw.AddTrans(tech.NEnh, g, a, b, 0, 0)
	// Gate node: wire default + one gate cap.
	wantG := p.CWire + p.GateCap(tr.W, tr.L)
	if got := nw.NodeCap(g); math.Abs(got-wantG) > 1e-21 {
		t.Errorf("gate cap = %g, want %g", got, wantG)
	}
	// Channel node: wire default + one diffusion terminal.
	wantA := p.CWire + p.DiffCap(tr.W)
	if got := nw.NodeCap(a); math.Abs(got-wantA) > 1e-21 {
		t.Errorf("terminal cap = %g, want %g", got, wantA)
	}
	nw.AddCap(a, 10e-15)
	if got := nw.NodeCap(a); math.Abs(got-wantA-10e-15) > 1e-21 {
		t.Errorf("explicit cap not added: %g", got)
	}
}

func TestStats(t *testing.T) {
	p := tech.CMOS3()
	nw := New("t", p)
	in, out := nw.Node("in"), nw.Node("out")
	nw.MarkInput(in)
	nw.MarkOutput(out)
	nw.AddTrans(tech.NEnh, in, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.PEnh, in, out, nw.Vdd(), 0, 0)
	st := nw.Stats()
	if st.Trans != 2 || st.NEnh != 1 || st.PEnh != 1 || st.Inputs != 1 || st.Outputs != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.MaxFanout != 2 {
		t.Errorf("MaxFanout = %d, want 2 (input gates two devices)", st.MaxFanout)
	}
}

const sampleSim = `| units: 100 tech: nmos sample
e in out GND 2 2
d out Vdd out 8 2
C out GND 50
N out 25
= out outalias
@ in in
@ out out
@ flow a>b 0
`

func TestReadSimBasics(t *testing.T) {
	p := tech.NMOS4()
	nw, err := ReadSim("sample", p, strings.NewReader(sampleSim))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	if len(nw.Trans) != 2 {
		t.Fatalf("got %d transistors, want 2", len(nw.Trans))
	}
	e := nw.Trans[0]
	if e.Type != tech.NEnh || e.Gate.Name != "in" {
		t.Errorf("first transistor wrong: %v", e)
	}
	// Geometry: 2 units × 100 × 1e-8 m = 2 µm.
	if math.Abs(e.L-2e-6) > 1e-12 || math.Abs(e.W-2e-6) > 1e-12 {
		t.Errorf("geometry = %g×%g, want 2µm×2µm", e.W, e.L)
	}
	if e.Flow != FlowAB {
		t.Errorf("flow directive not applied: %v", e.Flow)
	}
	out := nw.Lookup("out")
	// Cap: default wire + 50 fF (to rail, full) + 25 fF N record.
	want := p.CWire + 75e-15
	if math.Abs(out.Cap-want) > 1e-20 {
		t.Errorf("out cap = %g, want %g", out.Cap, want)
	}
	if out.Kind != KindOutput {
		t.Errorf("out kind = %v", out.Kind)
	}
	if nw.Lookup("in").Kind != KindInput {
		t.Error("in not marked input")
	}
	// Alias: "outalias" resolves to out (only after the = line; here the
	// alias maps later references).
	if got := nw.Lookup("outalias"); got != nil {
		t.Errorf("alias should not create a separate node, got %v", got)
	}
}

func TestReadSimCapBetweenSignals(t *testing.T) {
	p := tech.NMOS4()
	nw, err := ReadSim("c", p, strings.NewReader("C a b 100\n"))
	if err != nil {
		t.Fatal(err)
	}
	a, b := nw.Lookup("a"), nw.Lookup("b")
	if math.Abs(a.Cap-p.CWire-50e-15) > 1e-20 || math.Abs(b.Cap-p.CWire-50e-15) > 1e-20 {
		t.Errorf("signal-signal cap should split: a=%g b=%g", a.Cap, b.Cap)
	}
}

func TestReadSimErrors(t *testing.T) {
	p := tech.NMOS4()
	cases := []struct{ name, text string }{
		{"short transistor line", "e in out\n"},
		{"bad geometry", "e g a b x y\n"},
		{"negative geometry", "e g a b -2 2\n"},
		{"bad cap", "C a b xyz\n"},
		{"negative cap", "C a b -5\n"},
		{"unknown record", "z foo\n"},
		{"bad units", "| units: bogus tech: x\n"},
		{"bad flow index", "e g a b\n@ flow a>b 7\n"},
		{"bad flow dir", "e g a b\n@ flow sideways 0\n"},
		{"unknown directive", "@ banana x\n"},
		{"short alias", "= a\n"},
		{"short N record", "N x\n"},
	}
	for _, tc := range cases {
		if _, err := ReadSim(tc.name, p, strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSimRoundTrip(t *testing.T) {
	p := tech.NMOS4()
	nw := New("rt", p)
	in, out, mid := nw.Node("in"), nw.Node("out"), nw.Node("mid")
	nw.MarkInput(in)
	nw.MarkOutput(out)
	mid.Precharged = true
	tr := nw.AddTrans(tech.NEnh, in, mid, out, 4e-6, 2e-6)
	tr.Flow = FlowBA
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 2e-6, 8e-6)
	nw.AddCap(mid, 123e-15)

	var sb strings.Builder
	if err := WriteSim(&sb, nw); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSim("rt2", p, strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, sb.String())
	}
	if err := back.Check(); err != nil {
		t.Fatal(err)
	}
	if len(back.Trans) != 2 {
		t.Fatalf("round trip lost transistors: %d", len(back.Trans))
	}
	bt := back.Trans[0]
	if math.Abs(bt.W-4e-6) > 1e-11 || math.Abs(bt.L-2e-6) > 1e-11 {
		t.Errorf("geometry survived badly: %g×%g", bt.W, bt.L)
	}
	if bt.Flow != FlowBA {
		t.Errorf("flow hint lost: %v", bt.Flow)
	}
	bmid := back.Lookup("mid")
	if bmid == nil || !bmid.Precharged {
		t.Error("precharge mark lost")
	}
	if math.Abs(back.Lookup("mid").Cap-nw.Lookup("mid").Cap) > 1e-18 {
		t.Errorf("cap survived badly: %g vs %g", back.Lookup("mid").Cap, nw.Lookup("mid").Cap)
	}
	if back.Lookup("in").Kind != KindInput || back.Lookup("out").Kind != KindOutput {
		t.Error("port marks lost")
	}
}

func TestFlowSemantics(t *testing.T) {
	nw := New("f", tech.NMOS4())
	g, a, b := nw.Node("g"), nw.Node("a"), nw.Node("b")
	tr := nw.AddTrans(tech.NEnh, g, a, b, 0, 0)
	if !tr.CanFlow(a) || !tr.CanFlow(b) {
		t.Error("default flow should be bidirectional")
	}
	tr.Flow = FlowAB
	if !tr.CanFlow(a) || tr.CanFlow(b) {
		t.Error("FlowAB should allow a→b only")
	}
	tr.Flow = FlowOff
	if tr.CanFlow(a) || tr.CanFlow(b) {
		t.Error("FlowOff should block both")
	}
}

func TestConductsOn(t *testing.T) {
	nw := New("c", tech.CMOS3())
	g, a, b := nw.Node("g"), nw.Node("a"), nw.Node("b")
	n := nw.AddTrans(tech.NEnh, g, a, b, 0, 0)
	p := nw.AddTrans(tech.PEnh, g, a, b, 0, 0)
	d := nw.AddTrans(tech.NDep, g, a, b, 0, 0)
	if n.ConductsOn() != 1 || p.ConductsOn() != 0 {
		t.Error("conduction polarity wrong")
	}
	if n.AlwaysOn() || p.AlwaysOn() || !d.AlwaysOn() {
		t.Error("AlwaysOn wrong")
	}
}

func TestWireResistors(t *testing.T) {
	p := tech.NMOS4()
	nw := New("wires", p)
	a, b := nw.Node("a"), nw.Node("b")
	nw.MarkInput(a)
	w := nw.AddResistor(a, b, 12345)
	if !w.AlwaysOn() || !w.IsWire() {
		t.Error("wire should be always-on")
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	if nw.Stats().Wires != 1 {
		t.Error("wire not counted")
	}
	// Wires contribute no device capacitance.
	if got, want := nw.NodeCap(b), p.CWire; math.Abs(got-want) > 1e-21 {
		t.Errorf("wire terminal cap = %g, want bare %g", got, want)
	}
	// Round trip through .sim.
	var sb strings.Builder
	if err := WriteSim(&sb, nw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "r a b 12345") {
		t.Errorf("wire record missing:\n%s", sb.String())
	}
	back, err := ReadSim("back", p, strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats().Wires != 1 || back.Trans[0].ROverride != 12345 {
		t.Errorf("wire did not survive round trip: %+v", back.Trans[0])
	}
	// Invalid wires are rejected.
	if _, err := ReadSim("bad", p, strings.NewReader("r a b 0\n")); err == nil {
		t.Error("zero-ohm wire should fail to parse")
	}
	if _, err := ReadSim("bad", p, strings.NewReader("r a b\n")); err == nil {
		t.Error("short wire record should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("AddResistor(≤0) should panic")
		}
	}()
	nw.AddResistor(a, b, -1)
}

func TestSortedNodeNames(t *testing.T) {
	nw := New("s", tech.NMOS4())
	nw.Node("zeta")
	nw.Node("alpha")
	names := nw.SortedNodeNames()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
