// ALU critical-path analysis: the verifier applied to a realistic datapath
// block, with user directives (fixed function-select controls) the way a
// Crystal user would constrain an analysis run.
//
//	go run ./examples/alu
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

func main() {
	p := tech.NMOS4()
	nw, err := gen.ALU(p, 8)
	if err != nil {
		log.Fatal(err)
	}
	st := nw.Stats()
	fmt.Printf("8-bit ALU: %d transistors, %d nodes\n\n", st.Trans, st.Nodes)

	tables := delay.AnalyticTables(p)

	// Scenario 1: ADD selected, operands toggle — the carry chain should
	// dominate.
	a := core.New(nw, delay.NewSlope(tables), core.Options{})
	a.SetFixed(nw.Lookup("fadd"), switchsim.V1)
	for _, f := range []string{"fand", "for", "fxor"} {
		a.SetFixed(nw.Lookup(f), switchsim.V0)
	}
	for _, in := range nw.Inputs() {
		switch in.Name {
		case "fadd", "fand", "for", "fxor":
			continue
		}
		a.SetInputEvent(in, tech.Rise, 0, 1e-9)
		a.SetInputEvent(in, tech.Fall, 0, 1e-9)
	}
	if err := a.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("scenario 1: ADD selected, operands toggle")
	if err := a.WriteReport(os.Stdout, 2); err != nil {
		log.Fatal(err)
	}

	// Scenario 2: operands stable, the function select switches from AND
	// to ADD mid-cycle — how long until the result bus settles?
	fmt.Println("\nscenario 2: function select switches (fand falls, fadd rises)")
	b := core.New(nw, delay.NewSlope(tables), core.Options{})
	b.SetFixed(nw.Lookup("for"), switchsim.V0)
	b.SetFixed(nw.Lookup("fxor"), switchsim.V0)
	b.SetInputEventName("fand", tech.Fall, 0, 1e-9)
	b.SetInputEventName("fadd", tech.Rise, 0, 1e-9)
	if err := b.Run(); err != nil {
		log.Fatal(err)
	}
	if err := b.WriteReport(os.Stdout, 2); err != nil {
		log.Fatal(err)
	}
}
