package sched

// RegionFence supplies per-region admission clocks to PopFrontierFenced.
// The caller partitions nodes into regions (for the analyzer: the
// weakly-connected components of the compiled gate graph, see
// netlist.Compact.Region) and maintains a span per region — half the
// smallest stage delay committed INTO that region. A frontier item opens
// its region's clock at its own time; later items of the same region are
// admitted while they stay within the region's span of that clock. Items
// of other regions never consult it, so one region's tight fence (a
// just-committed short delay) no longer caps how far the batch reads
// ahead in regions that are electrically independent of it.
//
// Like the global span in PopFrontier, this is a throughput heuristic
// only: batches remain strict queue-order prefixes, and the drain's
// commit-time validation is what guarantees the commit sequence equals
// the serial pop sequence.
type RegionFence struct {
	// Region maps a node id to its region; Span holds each region's
	// admission span (<= 0: unfenced). Both are caller-owned.
	Region []int32
	Span   []float64

	head  []float64 // region -> batch head clock
	stamp []uint32  // region -> batch the clock belongs to
	cur   uint32
}

// Reset sizes the fence for the given region count and clears every clock.
func (f *RegionFence) Reset(regions int) {
	if cap(f.head) < regions {
		f.head = make([]float64, regions)
		f.stamp = make([]uint32, regions)
	}
	f.head = f.head[:regions]
	f.stamp = f.stamp[:regions]
	for i := range f.stamp {
		f.stamp[i] = 0
	}
	f.cur = 0
}

// Begin opens a new batch: every region's clock resets lazily (stamped
// generations, no per-batch sweep).
func (f *RegionFence) Begin() { f.cur++ }

// Admit reports whether it fits the current batch under its region's
// clock, opening the clock at it.T when the region is new to the batch.
func (f *RegionFence) Admit(it Item) bool {
	r := f.Region[it.Node]
	if f.stamp[r] != f.cur {
		f.stamp[r] = f.cur
		f.head[r] = it.T
		return true
	}
	span := f.Span[r]
	return span <= 0 || it.T <= f.head[r]+span
}

// PopFrontierFenced pops a frontier batch like PopFrontier, but fenced
// per region: up to max items in strict queue order, stopping when the
// next item falls outside its own region's admission window. Returns the
// batch (appended to dst, reset to length zero first) and whether the
// batch was cut short by a fence rather than by max or queue exhaustion.
func (q *Queue) PopFrontierFenced(dst []Item, max int, f *RegionFence) ([]Item, bool) {
	dst = dst[:0]
	if max <= 0 || q.Len() == 0 {
		return dst, false
	}
	f.Begin()
	first := q.Pop()
	f.Admit(first) // opens the first region's clock
	dst = append(dst, first)
	for len(dst) < max && q.Len() > 0 {
		if !f.Admit(q.Peek()) {
			return dst, true
		}
		dst = append(dst, q.Pop())
	}
	return dst, false
}
