package gen

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/tech"
)

func TestChipBuilds(t *testing.T) {
	for _, p := range []*tech.Params{tech.NMOS4(), tech.CMOS3()} {
		nw, err := Chip(p, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.Check(); err != nil {
			t.Fatal(err)
		}
		st := nw.Stats()
		t.Logf("%s chip-16: %d transistors, %d nodes", p.Name, st.Trans, st.Nodes)
		if st.Trans < 5000 {
			t.Errorf("chip-16 has only %d transistors", st.Trans)
		}
		// Key ports exist with the right directions.
		for _, name := range []string{"op0", "b0", "sh0", "addr0", "au_cin"} {
			n := nw.Lookup(name)
			if n == nil || n.Kind != netlist.KindInput {
				t.Errorf("input %s missing or misdirected", name)
			}
		}
		for _, name := range []string{"out0", "prod0", "ea0"} {
			n := nw.Lookup(name)
			if n == nil || n.Kind != netlist.KindOutput {
				t.Errorf("output %s missing or misdirected", name)
			}
		}
		// Function selects are internal (PLA-driven).
		if nw.Lookup("fadd").Kind != netlist.KindNormal {
			t.Error("fadd should be internal")
		}
	}
}

func TestChipErrors(t *testing.T) {
	p := tech.NMOS4()
	for _, w := range []int{3, 5, 34} {
		if _, err := Chip(p, w); err == nil {
			t.Errorf("Chip(%d) should fail", w)
		}
	}
}
