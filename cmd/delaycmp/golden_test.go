package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// update rewrites the golden files instead of diffing against them:
//
//	go test ./cmd/delaycmp -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden report files")

// TestGoldenExperiments pins the exact experiment output — table layout
// and every reported number — for the deterministic experiments over
// analytic tables. E6 is excluded (it reports wall-clock throughput);
// E8's random trees are seeded, so it is deterministic too. Numeric
// regressions in the models, the analog reference or the RC-tree bounds
// all show up as diffs here.
func TestGoldenExperiments(t *testing.T) {
	cases := []struct {
		name string
		cfg  config
	}{
		{"e1-e3-e8", config{techName: "nmos-4u", tables: "analytic", format: "table", workers: 1, expList: "e1,e3,e8"}},
		{"e4-e5", config{techName: "nmos-4u", tables: "analytic", format: "table", workers: 1, expList: "e4,e5"}},
		{"e9-csv", config{techName: "nmos-4u", tables: "analytic", format: "csv", workers: 1, expList: "e9"}},
		{"e2-cmos", config{techName: "cmos-3u", tables: "analytic", format: "table", workers: 1, expList: "e2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(tc.cfg, &out); err != nil {
				t.Fatalf("%v\n%s", err, out.String())
			}
			got := out.String()
			golden := "testdata/golden/" + tc.name + ".txt"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s:\n--- want ---\n%s\n--- got ---\n%s",
					golden, want, got)
			}
		})
	}
}

// TestGoldenWorkersIdentity: experiment tables are byte-identical whether
// rows are computed serially or fanned out across workers.
func TestGoldenWorkersIdentity(t *testing.T) {
	render := func(workers int) string {
		var out strings.Builder
		cfg := config{techName: "nmos-4u", tables: "analytic", format: "table",
			workers: workers, expList: "e3,e4"}
		if err := run(cfg, &out); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out.String()
	}
	if serial, parallel := render(1), render(8); serial != parallel {
		t.Errorf("output differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestGoldenReorderIdentity: experiment tables are byte-identical with
// the compiled-network row reordering on and off — the permutation is an
// addressing choice, never a numeric one.
func TestGoldenReorderIdentity(t *testing.T) {
	render := func(reorder string) string {
		var out strings.Builder
		cfg := config{techName: "nmos-4u", tables: "analytic", format: "table",
			workers: 1, reorder: reorder, expList: "e3,e4"}
		if err := run(cfg, &out); err != nil {
			t.Fatalf("reorder=%s: %v", reorder, err)
		}
		return out.String()
	}
	if on, off := render("on"), render("off"); on != off {
		t.Errorf("output differs between -reorder on and off:\n--- on ---\n%s\n--- off ---\n%s",
			on, off)
	}
}

func TestRunErrors(t *testing.T) {
	for _, cfg := range []config{
		{techName: "ge-5", tables: "analytic", expList: "e1"},
		{techName: "nmos-4u", tables: "psychic", expList: "e1"},
	} {
		if err := run(cfg, &strings.Builder{}); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}
