// Hierarchical analysis at the HTTP surface: with Options.Hier every
// analyze carries a "hier" provenance block, /metrics a hier.* section,
// and edit barriers that detach stamped instances are reflected in the
// refreshed snapshot. Timing identity of hier-on vs hier-off is proved in
// internal/core (TestHierIdentity); here we only check the service
// surfaces the provenance honestly.
package server

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// gridConfig builds a replicated-tile chip (3 tiles of the datapath tile,
// sharing the opcode bus) as .sim text with its @ inst annotations, plus
// the fixed-address and register-feedback directives every tile needs.
func gridConfig(t *testing.T) (SessionConfig, *netlist.Network) {
	t.Helper()
	p := tech.NMOS4()
	nw, err := gen.ChipGrid(p, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sim bytes.Buffer
	if err := netlist.WriteSim(&sim, nw); err != nil {
		t.Fatal(err)
	}
	fixed, loopBreak := gen.ChipGridDirectives(8, 3)
	return SessionConfig{
		Name: "grid", Sim: sim.String(),
		Tech: "nmos-4u", Model: "slope", Tables: "analytic",
		Fix: fixed, LoopBreak: loopBreak, Top: 3,
	}, nw
}

func TestAnalyzeHier(t *testing.T) {
	c := newTestClient(t, Options{Hier: true})
	cfg, nw := gridConfig(t)

	var created createResponse
	if st := c.do("POST", "/v1/sessions", cfg, &created); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	var ar analyzeResponse
	if st := c.do("POST", "/v1/sessions/"+created.Session+"/analyze", nil, &ar); st != http.StatusOK {
		t.Fatalf("analyze: status %d", st)
	}
	// 3 tiles: tile 0 fingerprints alone (the shared bus nodes order
	// differently against its interior), tiles 1/2 class together — one
	// representative analyzed flat, one member stamped.
	if ar.Hier == nil {
		t.Fatal("analyze response missing hier block with Options.Hier set")
	}
	if ar.Hier.Instances != 3 || ar.Hier.Stamped != 1 || ar.Hier.Flat != 2 {
		t.Fatalf("hier = %+v, want {3 1 2}", *ar.Hier)
	}

	// Cached re-analyze serves the same snapshot, provenance included.
	var cached analyzeResponse
	if st := c.do("POST", "/v1/sessions/"+created.Session+"/analyze", nil, &cached); st != http.StatusOK {
		t.Fatalf("cached analyze: status %d", st)
	}
	if !cached.Cached || cached.Hier == nil || *cached.Hier != *ar.Hier {
		t.Fatalf("cached analyze lost the hier block: %+v", cached.Hier)
	}

	var ms MetricsSnapshot
	if st := c.do("GET", "/metrics", nil, &ms); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if ms.Hier.Analyzes != 1 || ms.Hier.Instances != 3 || ms.Hier.Stamped != 1 || ms.Hier.Flat != 2 {
		t.Fatalf("hier metrics = %+v, want analyzes 1, instances 3, stamped 1, flat 2", ms.Hier)
	}

	// An edit inside the stamped tile detaches it: the barrier's refreshed
	// snapshot reports zero stamped instances (the class dissolved).
	target := -1
	for _, inst := range nw.Instances {
		if inst.Path == "t2_" {
			target = inst.TransLo
		}
	}
	if target < 0 {
		t.Fatal("no t2_ instance annotation in the generated network")
	}
	var er editsResponse
	script := fmt.Sprintf("resize %d 5e-6 2e-6\nrun\n", target)
	if st := c.do("POST", "/v1/sessions/"+created.Session+"/edits",
		editsRequest{Script: script}, &er); st != http.StatusOK {
		t.Fatalf("edits: status %d", st)
	}
	if er.Snapshot == nil || er.Snapshot.Hier == nil {
		t.Fatal("post-edit snapshot missing hier block")
	}
	if er.Snapshot.Hier.Stamped != 0 {
		t.Fatalf("stamped = %d after editing the stamped tile, want 0", er.Snapshot.Hier.Stamped)
	}
	if er.Snapshot.Hier.Instances != 3 {
		t.Fatalf("instances = %d after the edit, want 3 (detach, not disappearance)", er.Snapshot.Hier.Instances)
	}
}

// TestAnalyzeHierOff: without Options.Hier the response must not grow a
// hier block and the counters stay zero.
func TestAnalyzeHierOff(t *testing.T) {
	c := newTestClient(t, Options{})
	cfg, _ := gridConfig(t)
	var created createResponse
	if st := c.do("POST", "/v1/sessions", cfg, &created); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	var ar analyzeResponse
	if st := c.do("POST", "/v1/sessions/"+created.Session+"/analyze", nil, &ar); st != http.StatusOK {
		t.Fatalf("analyze: status %d", st)
	}
	if ar.Hier != nil {
		t.Fatalf("hier block present with hierarchical analysis off: %+v", *ar.Hier)
	}
	var ms MetricsSnapshot
	if st := c.do("GET", "/metrics", nil, &ms); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if ms.Hier.Analyzes != 0 || ms.Hier.Instances != 0 {
		t.Fatalf("hier metrics nonzero with hierarchical analysis off: %+v", ms.Hier)
	}
}
