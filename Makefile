# Build/verify/benchmark driver. `make all` is the pre-merge gate: static
# checks, the race-mode short suite, and a full build.
GO ?= go

.PHONY: all build vet test race bench bench-scaling bench-hier loadgen-smoke

all: vet race build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The short suite under the race detector: exercises the shared stage
# database and worker-pool fan-out concurrently (see docs/PERFORMANCE.md).
race:
	$(GO) test -race -short ./...

# Headline perf benchmarks (E2 accuracy suite, E6 chip-scale analysis),
# three runs each, recorded in BENCH_1.json next to the seed baseline.
bench:
	./scripts/bench.sh

# Scaling + locality records only (BENCH_3/4/5): the worker sweeps, the
# ingest throughput sweep, and the interleaved reorder A/B with fence
# counters. Refuses single-CPU runners unless BENCH_ALLOW_SINGLE_CPU=1.
bench-scaling:
	BENCH_ONLY=scaling ./scripts/bench.sh

# Hierarchical-macromodel record only (BENCH_9): the interleaved hier
# on/off A/B on E6-XL (chip:32,10) and the chip:64,40 hier-on scale
# point. The stamped-speedup floor (stage_reduction >= 5) is
# informational — a shortfall warns, it does not fail.
bench-hier:
	BENCH_ONLY=hier ./scripts/bench.sh

# Load/chaos smoke: ~100 scripted sessions against a spawned crystald
# with response validation, a mid-run SIGTERM+restart, and injected
# slow/failing async jobs. Zero validation failures is the gate (~30s).
loadgen-smoke:
	./scripts/loadgen_smoke.sh
