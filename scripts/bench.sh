#!/bin/sh
# Runs the two headline benchmarks (E2 accuracy suite, E6 chip-scale
# analysis) three times each and writes BENCH_1.json: the fresh runs plus
# the pinned pre-optimization baseline, so the speedup is always visible
# in one file. Usage: scripts/bench.sh (from the repo root, or via
# `make bench`).
set -e
cd "$(dirname "$0")/.."

OUT=BENCH_1.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkE2ModelAccuracy$|BenchmarkE6ChipScale$' \
    -benchtime 1x -count 3 . | tee "$RAW"

# Baseline ns/op: median of three runs measured at the seed commit (pre
# stage-database / allocation work) on this repository's 1-CPU reference
# runner. Update only when re-measuring the seed on comparable hardware.
awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    runs[name] = runs[name] $3 ","
}
END {
    base["BenchmarkE2ModelAccuracy"] = 97119436
    base["BenchmarkE6ChipScale"]     = 3390569021
    printf "{\n  \"benchmarks\": {\n"
    first = 1
    for (name in runs) {
        sub(/,$/, "", runs[name])
        n = split(runs[name], r, ",")
        # median of the runs (sorted)
        for (i = 1; i < n; i++)
            for (j = i + 1; j <= n; j++)
                if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
        med = r[int((n + 1) / 2)]
        if (!first) printf ",\n"
        first = 0
        printf "    \"%s\": {\n", name
        printf "      \"baseline_ns_op\": %.0f,\n", base[name]
        printf "      \"runs_ns_op\": [%s],\n", runs[name]
        printf "      \"median_ns_op\": %s,\n", med
        printf "      \"speedup_vs_baseline\": %.2f\n", base[name] / med
        printf "    }"
    }
    printf "\n  }\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
cat "$OUT"
