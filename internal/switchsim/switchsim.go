// Package switchsim is a three-valued switch-level logic simulator in the
// tradition of Bryant's MOSSIM and esim/IRSIM: node values are {0, 1, X},
// signals carry strengths drawn from a totally ordered lattice
// (Ω > G1 > G2 > K2 > K1), and networks settle by fixed-point iteration
// over channel-connected groups.
//
// Node sizes are assigned at build time: rails and chip inputs are Ω
// (their state is externally imposed), precharged or high-capacitance
// storage nodes are K2, and every other storage node is K1. Transistor
// strengths come from the device type: depletion pullups conduct at G2,
// everything else at G1, and wire resistors are transparent. Charge
// sharing, ratioed logic, and X-propagation all fall out of joining
// (strength, value) pairs over this lattice — there are no ad-hoc rules.
//
// The timing verifier uses the simulator to establish steady-state node
// values (which transistors definitely conduct, which definitely do not),
// and the test suite uses it to verify the functional correctness of every
// generated circuit — an ALU that doesn't add is not worth timing. The
// vectorized Batch engine (batch.go) streams thousands of vectors through
// the same lattice in bit-plane form and is pinned bit-identical to this
// scalar engine, which is the reference implementation.
package switchsim

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// Value is a ternary logic value.
type Value uint8

const (
	// V0 is logic low.
	V0 Value = iota
	// V1 is logic high.
	V1
	// VX is unknown/conflict.
	VX
)

// String renders the value as "0", "1" or "X".
func (v Value) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	default:
		return "X"
	}
}

// Bool converts a definite value to a bool; ok is false for VX.
func (v Value) Bool() (b, ok bool) {
	switch v {
	case V0:
		return false, true
	case V1:
		return true, true
	}
	return false, false
}

// FromBool converts a bool to V0/V1.
func FromBool(b bool) Value {
	if b {
		return V1
	}
	return V0
}

// Strength is a signal strength in Bryant's totally ordered lattice,
// weakest to strongest. K1/K2 are node sizes (stored charge), G2/G1 are
// transistor drive strengths, and Ω is an externally imposed input.
type Strength uint8

const (
	// SNone is the absence of a contribution.
	SNone Strength = iota
	// SK1 is stored charge on an ordinary storage node.
	SK1
	// SK2 is stored charge on a large node: precharged buses and other
	// deliberately loaded capacitors that dominate ordinary charge in a
	// sharing event.
	SK2
	// SG2 is drive through a depletion-mode pullup — the weak side of
	// every ratioed-nMOS fight.
	SG2
	// SG1 is drive through an on enhancement transistor.
	SG1
	// SOmega is the strength of rails and driven inputs: unoverridable.
	SOmega
)

// String renders the strength in the paper's notation.
func (s Strength) String() string {
	switch s {
	case SK1:
		return "K1"
	case SK2:
		return "K2"
	case SG2:
		return "G2"
	case SG1:
		return "G1"
	case SOmega:
		return "Ω"
	}
	return "-"
}

// K2CapFloor is the total node capacitance (farads) at or above which a
// storage node is assigned size K2 rather than K1. 100 fF is an order of
// magnitude above a routine gate load in the built-in technology, so only
// deliberately loaded nodes (buses, long wires, big fanout nets) cross it.
const K2CapFloor = 100e-15

// NodeSizes assigns every node its build-time size: Ω for rails and chip
// inputs, K2 for precharged or high-capacitance storage, K1 otherwise.
// Both the scalar and the batch engine derive their sizes from this one
// function, so the two can never disagree on the lattice.
func NodeSizes(nw *netlist.Network) []Strength {
	sizes := make([]Strength, len(nw.Nodes))
	for _, n := range nw.Nodes {
		switch {
		case n.IsRail() || n.Kind == netlist.KindInput:
			sizes[n.Index] = SOmega
		case n.Precharged || nw.NodeCap(n) >= K2CapFloor:
			sizes[n.Index] = SK2
		default:
			sizes[n.Index] = SK1
		}
	}
	return sizes
}

// DeviceStrength returns the maximum strength a signal retains after
// passing through a transistor's channel: G2 through depletion loads, G1
// through enhancement devices. Wire resistors are transparent — a driven
// signal stays driven across interconnect.
func DeviceStrength(t *netlist.Trans) Strength {
	switch t.Type {
	case tech.NDep:
		return SG2
	case tech.RWire:
		return SOmega
	}
	return SG1
}

// sig is a strength/value pair, the element of the resolution lattice.
type sig struct {
	s Strength
	v Value
}

// combine joins two contributions: higher strength wins, equal strengths
// with disagreeing values yield X.
func combine(a, b sig) sig {
	switch {
	case a.s > b.s:
		return a
	case b.s > a.s:
		return b
	case a.v == b.v:
		return a
	default:
		return sig{a.s, VX}
	}
}

// conduction describes whether a transistor's channel conducts under the
// current gate value.
type conduction uint8

const (
	condOff conduction = iota
	condOn
	condMaybe
)

// Sim is a simulator instance bound to one network. Create with New, set
// inputs, call Settle, read values.
type Sim struct {
	nw     *netlist.Network
	size   []Strength // build-time node size per index
	val    []Value    // current value per node index
	fixed  []bool     // rails and driven inputs
	osc    []bool     // nodes forced to X by oscillation detection
	settle int        // settle calls, for diagnostics

	// scratch reused across Settle calls
	dirty      []bool
	queue      []int
	groupID    []int // epoch stamp per node; == groupEpoch means visited this sweep
	groupEpoch int
}

// New creates a simulator with rails at their fixed values and every other
// node at X.
func New(nw *netlist.Network) *Sim {
	s := &Sim{
		nw:      nw,
		size:    NodeSizes(nw),
		val:     make([]Value, len(nw.Nodes)),
		fixed:   make([]bool, len(nw.Nodes)),
		osc:     make([]bool, len(nw.Nodes)),
		dirty:   make([]bool, len(nw.Nodes)),
		groupID: make([]int, len(nw.Nodes)),
	}
	s.Reset()
	return s
}

// Reset restores the power-on state: rails at their values, every other
// node released to X, no oscillation flags. The next Settle evaluates the
// whole network, exactly like a freshly constructed Sim.
func (s *Sim) Reset() {
	for i := range s.val {
		s.val[i] = VX
		s.fixed[i] = false
		s.osc[i] = false
		s.dirty[i] = false
	}
	s.queue = s.queue[:0]
	s.settle = 0
	s.val[s.nw.Vdd().Index] = V1
	s.fixed[s.nw.Vdd().Index] = true
	s.val[s.nw.GND().Index] = V0
	s.fixed[s.nw.GND().Index] = true
}

// NodeSize returns the build-time size of node n.
func (s *Sim) NodeSize(n *netlist.Node) Strength { return s.size[n.Index] }

// SetInput drives node n to value v as an Ω source. Rails cannot be
// overridden. Passing VX releases the node back to undriven unknown.
func (s *Sim) SetInput(n *netlist.Node, v Value) error {
	if n.IsRail() {
		return fmt.Errorf("switchsim: cannot drive rail %s", n.Name)
	}
	if v == VX {
		s.fixed[n.Index] = false
		s.val[n.Index] = VX
	} else {
		s.fixed[n.Index] = true
		s.val[n.Index] = v
	}
	s.markDirty(n.Index)
	return nil
}

// SetValue overwrites node n's *stored* value without driving it: the
// node keeps charge-strength state (its size, K1 or K2), as if it had been
// driven earlier and then released. Clocked analyses use this to carry
// latched state across phases. Rails cannot be overwritten.
func (s *Sim) SetValue(n *netlist.Node, v Value) error {
	if n.IsRail() {
		return fmt.Errorf("switchsim: cannot overwrite rail %s", n.Name)
	}
	if s.fixed[n.Index] {
		return fmt.Errorf("switchsim: %s is driven; release it before SetValue", n.Name)
	}
	s.val[n.Index] = v
	s.markDirty(n.Index)
	return nil
}

// SetInputName is SetInput by node name.
func (s *Sim) SetInputName(name string, v Value) error {
	n := s.nw.Lookup(name)
	if n == nil {
		return fmt.Errorf("switchsim: no node named %q", name)
	}
	return s.SetInput(n, v)
}

// Value returns the current value of node n.
func (s *Sim) Value(n *netlist.Node) Value { return s.val[n.Index] }

// ValueName returns the value of the named node, or VX if absent.
func (s *Sim) ValueName(name string) Value {
	n := s.nw.Lookup(name)
	if n == nil {
		return VX
	}
	return s.val[n.Index]
}

// Oscillated reports whether the last Settle forced any node to X because
// it failed to stabilize (combinational feedback).
func (s *Sim) Oscillated() bool {
	for _, o := range s.osc {
		if o {
			return true
		}
	}
	return false
}

func (s *Sim) markDirty(idx int) {
	if !s.dirty[idx] {
		s.dirty[idx] = true
		s.queue = append(s.queue, idx)
	}
}

// conducts classifies transistor t's channel under current node values.
func (s *Sim) conducts(t *netlist.Trans) conduction {
	if t.AlwaysOn() {
		return condOn
	}
	g := s.val[t.Gate.Index]
	on := FromBool(t.ConductsOn() == 1)
	switch g {
	case on:
		return condOn
	case VX:
		return condMaybe
	default:
		return condOff
	}
}

// change is a value update proposed by a sweep, committed only after every
// group in the sweep has resolved.
type change struct {
	idx int
	v   Value
}

// Settle iterates until all node values are stable, or until the
// iteration bound is reached, in which case still-changing nodes are
// forced to X and marked as oscillating. It returns the number of sweeps
// performed. The first call evaluates everything; later calls are
// incremental from dirty nodes.
//
// Each sweep is synchronous (Jacobi): conduction states and stored values
// are frozen at the start of the sweep, every affected channel group is
// resolved to its lattice fixed point against that frozen state, and all
// new values commit together at the end of the sweep. The batch engine
// performs exactly the same global synchronous sweep per vector lane,
// which is what makes the two engines bit-identical sweep by sweep.
func (s *Sim) Settle() int {
	s.settle++
	if s.settle == 1 {
		// First settle: evaluate everything, including subnetworks not
		// reachable from any input (tied pullups, constant stages).
		for i := range s.nw.Nodes {
			s.markDirty(i)
		}
	}
	for i := range s.osc {
		s.osc[i] = false
	}
	limit := 20 + 2*len(s.nw.Nodes)
	hard := 2*limit + 2*len(s.nw.Nodes)
	sweeps := 0
	for len(s.queue) > 0 {
		sweeps++
		xmode := sweeps > limit
		if sweeps > hard {
			// Safety net: abandon whatever still ping-pongs.
			for _, idx := range s.queue {
				s.dirty[idx] = false
				if !s.fixed[idx] && s.val[idx] != VX {
					s.val[idx] = VX
					s.osc[idx] = true
				}
			}
			s.queue = s.queue[:0]
			break
		}
		// A dirty node re-resolves (a) channel groups containing or
		// adjacent to it and (b) the channels of every transistor it
		// gates, whose conduction may have changed. A gated channel
		// endpoint that is itself a strong source (a pullup's rail side)
		// contributes no group of its own — the affected group is reached
		// through the device's other terminal, so only that side seeds.
		// Seeding the rail instead would re-scan the rail's entire
		// terminal list, which is nearly the whole chip, every sweep.
		work := s.queue
		s.queue = nil
		seeds := make([]int, 0, 2*len(work))
		for _, idx := range work {
			s.dirty[idx] = false
			seeds = append(seeds, idx)
			for _, t := range s.nw.Nodes[idx].Gates {
				a, b := t.A.Index, t.B.Index
				if !s.nw.Nodes[a].IsRail() && !s.fixed[a] {
					seeds = append(seeds, a)
				}
				if !s.nw.Nodes[b].IsRail() && !s.fixed[b] {
					seeds = append(seeds, b)
				}
			}
		}
		for _, ch := range s.resolveGroups(seeds) {
			nv := ch.v
			if xmode && !s.fixed[ch.idx] {
				// Oscillation recovery: a node still changing after the
				// sweep limit has no stable value — it becomes X, and X
				// then spreads monotonically until the loop quiesces.
				if nv != VX {
					s.osc[ch.idx] = true
				}
				nv = VX
			}
			if nv != s.val[ch.idx] {
				s.val[ch.idx] = nv
				s.markDirty(ch.idx)
			}
		}
	}
	return sweeps
}

// resolveGroups collects the channel-connected groups containing the seed
// nodes (through non-off transistors), resolves each against the frozen
// sweep state, and returns the proposed value changes. Nothing is written
// back here — the caller commits after the whole sweep resolves.
func (s *Sim) resolveGroups(seeds []int) []change {
	// Visited marks are epoch-stamped: bumping the epoch invalidates every
	// mark from the previous sweep in O(1), where clearing the array would
	// cost a full-network scan per sweep.
	s.groupEpoch++
	var changed []change
	for _, seed := range seeds {
		n := s.nw.Nodes[seed]
		if n.IsRail() || s.fixed[seed] {
			// Strong sources are group boundaries, so a changed source
			// seeds the groups of its channel neighbors instead of its
			// own (which would be just itself).
			for _, t := range n.Terms {
				o := t.Other(n)
				if o == nil || s.groupID[o.Index] == s.groupEpoch ||
					o.IsRail() || s.fixed[o.Index] {
					continue
				}
				group := s.collectGroup(o.Index)
				changed = append(changed, s.resolveGroup(group)...)
			}
			continue
		}
		if s.groupID[seed] == s.groupEpoch {
			continue
		}
		group := s.collectGroup(seed)
		changed = append(changed, s.resolveGroup(group)...)
	}
	return changed
}

// collectGroup gathers the channel-connected component of seed through
// transistors that are not definitely off, stamping members with the
// current epoch so overlapping seeds resolve each group once per sweep.
func (s *Sim) collectGroup(seed int) []int {
	stack := []int{seed}
	s.groupID[seed] = s.groupEpoch
	var group []int
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		group = append(group, idx)
		n := s.nw.Nodes[idx]
		if n.IsRail() || s.fixed[idx] {
			// Strong sources terminate the group: values do not need
			// to propagate *through* them, only from them.
			continue
		}
		for _, t := range n.Terms {
			if s.conducts(t) == condOff {
				continue
			}
			o := t.Other(n)
			if o == nil || s.groupID[o.Index] == s.groupEpoch {
				continue
			}
			s.groupID[o.Index] = s.groupEpoch
			stack = append(stack, o.Index)
		}
	}
	return group
}

// nodeSig is the full resolution state of one node: what definitely
// drives it, plus the strongest *possible* high and low contributions
// reaching it through maybe-conducting paths. Tracking the potential
// strengths separately — and propagating them through the channel graph —
// is what makes NAND(X, X) = X while keeping NOR(1, X) = 0: a possible
// path only forces X when it is strong enough to overturn the definite
// result with the opposite value.
type nodeSig struct {
	def    sig
	potHi  Strength // strongest possible contribution of value 1 or X
	potLo  Strength // strongest possible contribution of value 0 or X
	source bool     // rails and fixed inputs: immutable during resolution
}

// value reduces the resolved state to a ternary node value.
func (ns nodeSig) value() Value {
	v := ns.def.v
	if v == V1 && ns.potLo >= ns.def.s {
		return VX
	}
	if v == V0 && ns.potHi >= ns.def.s {
		return VX
	}
	return v
}

// baseSig returns the node's intrinsic contribution: its input value at Ω
// for sources, its stored charge at the node's size otherwise.
func (s *Sim) baseSig(idx int) nodeSig {
	n := s.nw.Nodes[idx]
	st := s.size[idx]
	src := false
	if n.IsRail() || s.fixed[idx] {
		st = SOmega
		src = true
	}
	v := s.val[idx]
	ns := nodeSig{def: sig{st, v}, source: src}
	if v != V0 {
		ns.potHi = st
	}
	if v != V1 {
		ns.potLo = st
	}
	return ns
}

func minStrength(a, b Strength) Strength {
	if a < b {
		return a
	}
	return b
}

func maxStrength(a, b Strength) Strength {
	if a > b {
		return a
	}
	return b
}

// resolveGroup computes the least fixed point of the strength/value
// lattice on one channel group against the frozen sweep state, in the
// standard two passes: first driven signals (sources spreading through the
// channel graph at G-or-better strength), then stored charge joined in and
// relaxed again. Because the join is monotone the staging never changes
// the result — the least fixed point is unique — but it mirrors the
// standard presentation and lets charge sharing be read directly off the
// second pass. Returns proposed changes; the caller commits them.
func (s *Sim) resolveGroup(group []int) []change {
	sigs := make(map[int]nodeSig, len(group))
	// Pass 1 — driven: only sources contribute their base signals; every
	// storage node starts empty and receives drive through the graph.
	for _, idx := range group {
		base := s.baseSig(idx)
		if !base.source {
			base = nodeSig{def: sig{SNone, VX}}
		}
		sigs[idx] = base
	}
	s.relaxGroup(group, sigs)
	// Pass 2 — charged: join each storage node's stored charge (at its
	// size) into the driven solution and relax to the full fixed point.
	for _, idx := range group {
		cur := sigs[idx]
		if cur.source {
			continue
		}
		base := s.baseSig(idx)
		cur.def = combine(cur.def, base.def)
		cur.potHi = maxStrength(cur.potHi, base.potHi)
		cur.potLo = maxStrength(cur.potLo, base.potLo)
		sigs[idx] = cur
	}
	s.relaxGroup(group, sigs)
	var changed []change
	for _, idx := range group {
		ns := sigs[idx]
		if ns.source {
			continue
		}
		if nv := ns.value(); nv != s.val[idx] {
			changed = append(changed, change{idx, nv})
		}
	}
	return changed
}

// relaxGroup runs the monotone relaxation to its fixed point: each pass
// joins every node's current state with its neighbors' contributions,
// attenuated by the connecting device's strength. Each pass propagates at
// least one transistor hop, so the group size bounds the iteration count.
func (s *Sim) relaxGroup(group []int, sigs map[int]nodeSig) {
	for pass := 0; pass <= len(group)+1; pass++ {
		anyChange := false
		for _, idx := range group {
			cur := sigs[idx]
			if cur.source {
				continue
			}
			acc := cur
			n := s.nw.Nodes[idx]
			for _, t := range n.Terms {
				cond := s.conducts(t)
				if cond == condOff {
					continue
				}
				o := t.Other(n)
				if o == nil {
					continue
				}
				src, ok := sigs[o.Index]
				if !ok {
					// Neighbor outside the group (beyond a source
					// boundary, or another component).
					src = s.baseSig(o.Index)
				}
				cap := DeviceStrength(t)
				if cond == condOn {
					acc.def = combine(acc.def, sig{minStrength(src.def.s, cap), src.def.v})
				}
				// Potential strengths flow through both on and
				// maybe-on channels.
				acc.potHi = maxStrength(acc.potHi, minStrength(src.potHi, cap))
				acc.potLo = maxStrength(acc.potLo, minStrength(src.potLo, cap))
			}
			if acc != cur {
				sigs[idx] = acc
				anyChange = true
			}
		}
		if !anyChange {
			break
		}
	}
}

// ApplyVector sets several inputs by name and settles; a convenience for
// tests and the verifier.
func (s *Sim) ApplyVector(vec map[string]Value) error {
	for name, v := range vec {
		if err := s.SetInputName(name, v); err != nil {
			return err
		}
	}
	s.Settle()
	return nil
}

// Snapshot returns a copy of all node values indexed like Network.Nodes.
func (s *Sim) Snapshot() []Value {
	out := make([]Value, len(s.val))
	copy(out, s.val)
	return out
}
