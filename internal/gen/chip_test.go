package gen

import (
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/tech"
)

func TestChipBuilds(t *testing.T) {
	for _, p := range []*tech.Params{tech.NMOS4(), tech.CMOS3()} {
		nw, err := Chip(p, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.Check(); err != nil {
			t.Fatal(err)
		}
		st := nw.Stats()
		t.Logf("%s chip-16: %d transistors, %d nodes", p.Name, st.Trans, st.Nodes)
		if st.Trans < 5000 {
			t.Errorf("chip-16 has only %d transistors", st.Trans)
		}
		// Key ports exist with the right directions.
		for _, name := range []string{"op0", "b0", "sh0", "addr0", "au_cin"} {
			n := nw.Lookup(name)
			if n == nil || n.Kind != netlist.KindInput {
				t.Errorf("input %s missing or misdirected", name)
			}
		}
		for _, name := range []string{"out0", "prod0", "ea0"} {
			n := nw.Lookup(name)
			if n == nil || n.Kind != netlist.KindOutput {
				t.Errorf("output %s missing or misdirected", name)
			}
		}
		// Function selects are internal (PLA-driven).
		if nw.Lookup("fadd").Kind != netlist.KindNormal {
			t.Error("fadd should be internal")
		}
	}
}

func TestChipErrors(t *testing.T) {
	p := tech.NMOS4()
	for _, w := range []int{3, 5, 66} {
		if _, err := Chip(p, w); err == nil {
			t.Errorf("Chip(%d) should fail", w)
		}
	}
}

// TestChipInstances: the composed chip records one instance per imported
// block, nested tile instances under grid prefixes, all Check-valid.
func TestChipInstances(t *testing.T) {
	p := tech.NMOS4()
	nw, err := ChipGrid(p, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	perTile := map[string]bool{}
	for _, inst := range nw.Instances {
		perTile[inst.Path] = true
	}
	// Each tile carries its four block instances plus its own stamp.
	for _, tp := range []string{"t0_", "t1_", "t2_"} {
		for _, sub := range []string{"dp_", "mul_", "au_", "pla_", ""} {
			if !perTile[tp+sub] {
				t.Errorf("missing instance %q", tp+sub)
			}
		}
	}
	// Children precede their enclosing tile stamp.
	pos := map[string]int{}
	for i, inst := range nw.Instances {
		pos[inst.Path] = i
	}
	for _, tp := range []string{"t0_", "t1_", "t2_"} {
		for _, sub := range []string{"dp_", "mul_", "au_", "pla_"} {
			if pos[tp+sub] > pos[tp] {
				t.Errorf("child %q recorded after parent %q", tp+sub, tp)
			}
		}
	}
}

// TestChipGridXXLStats is the golden stats test for the ~1M-transistor
// scale point (chip:64,40) introduced for hierarchical analysis. The
// exact counts are pinned so a generator change that silently moves the
// benchmark's workload is caught.
func TestChipGridXXLStats(t *testing.T) {
	if testing.Short() {
		t.Skip("chip:64,40 build is seconds of work; skipped under -short")
	}
	p := tech.NMOS4()
	nw, err := ChipGrid(p, 64, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	t.Logf("chip-64x40: %d transistors, %d nodes, %d instances", st.Trans, st.Nodes, len(nw.Instances))
	if st.Trans < 900_000 {
		t.Errorf("chip:64,40 has %d transistors, want ~1M", st.Trans)
	}
	// 40 tiles × (4 datapath children + 4 chip blocks + tile stamp) = 360.
	if len(nw.Instances) != 360 {
		t.Errorf("chip:64,40 has %d instances, want 360", len(nw.Instances))
	}
	if st.Trans < 2_000_000 || st.Trans > 3_000_000 {
		t.Errorf("chip:64,40 has %d transistors, outside the pinned 2.0M-3.0M band", st.Trans)
	}
	// Tiles 1..39 are byte-for-byte replicas of tile 0 structurally: same
	// per-tile transistor span.
	var spans []int
	for _, inst := range nw.Instances {
		if len(inst.Path) > 0 && inst.Path[0] == 't' && strings.Count(inst.Path, "_") == 1 {
			spans = append(spans, inst.TransHi-inst.TransLo)
		}
	}
	if len(spans) != 40 {
		t.Fatalf("found %d tile instances, want 40", len(spans))
	}
	for i, s := range spans {
		if s != spans[0] {
			t.Errorf("tile %d spans %d transistors, tile 0 spans %d", i, s, spans[0])
		}
	}
}
