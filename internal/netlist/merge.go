// Hierarchical composition: importing one network into another with port
// connections, so chip-scale benchmarks can be stitched from generator
// blocks the way real layouts were composed from cells.
package netlist

import (
	"fmt"
)

// Import copies every node and transistor of sub into nw.
//
//   - Rails map to rails.
//   - A sub node named in connect is merged onto the named nw node
//     (created if absent): its extra capacitance (beyond the technology
//     default) is added, and the nw node's kind wins.
//   - Every other sub node becomes a new node named prefix+name,
//     preserving capacitance, precharge marks, and input/output kinds.
//
// Both networks must be in the same technology. Transistor flow hints and
// geometry are preserved. Import returns an error (leaving nw possibly
// extended but structurally valid) if a name collision would merge two
// unrelated nodes.
//
// Import also records the stamp in nw.Instances: one entry per instance
// sub itself carried (rebased into nw's index space and path-prefixed),
// followed by one entry covering everything this call created, with Path =
// prefix. Children therefore always precede their enclosing parent.
func (nw *Network) Import(sub *Network, prefix string, connect map[string]string) error {
	if sub == nil {
		return fmt.Errorf("netlist: nil subnetwork")
	}
	if nw.Tech.Name != sub.Tech.Name {
		return fmt.Errorf("netlist: technology mismatch %s vs %s", nw.Tech.Name, sub.Tech.Name)
	}
	for from := range connect {
		if sub.Lookup(from) == nil {
			return fmt.Errorf("netlist: connect source %q not in %s", from, sub.Name)
		}
	}
	nodeMap := make(map[*Node]*Node, len(sub.Nodes))
	for _, sn := range sub.Nodes {
		switch {
		case sn.Kind == KindVdd:
			nodeMap[sn] = nw.Vdd()
			continue
		case sn.Kind == KindGnd:
			nodeMap[sn] = nw.GND()
			continue
		}
		if target, ok := connect[sn.Name]; ok {
			tn := nw.Node(target)
			// Merge extra (beyond-default) capacitance onto the port.
			if extra := sn.Cap - sub.Tech.CWire; extra > 0 {
				nw.AddCap(tn, extra)
			}
			if sn.Precharged {
				tn.Precharged = true
			}
			nodeMap[sn] = tn
			continue
		}
		name := prefix + sn.Name
		if nw.Lookup(name) != nil {
			return fmt.Errorf("netlist: import collision on %q (prefix %q)", name, prefix)
		}
		tn := nw.Node(name)
		tn.Cap = sn.Cap
		tn.Kind = sn.Kind
		tn.Precharged = sn.Precharged
		nodeMap[sn] = tn
	}
	base := len(nw.Trans)
	for _, st := range sub.Trans {
		t := nw.AddTrans(st.Type, nodeMap[st.Gate], nodeMap[st.A], nodeMap[st.B], st.W, st.L)
		t.Flow = st.Flow
		t.ROverride = st.ROverride
	}
	for _, inst := range sub.Instances {
		nw.Instances = append(nw.Instances, Instance{
			Path:    prefix + inst.Path,
			TransLo: base + inst.TransLo,
			TransHi: base + inst.TransHi,
		})
	}
	nw.Instances = append(nw.Instances, Instance{Path: prefix, TransLo: base, TransHi: len(nw.Trans)})
	return nil
}
