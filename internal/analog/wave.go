// Waveform measurement: threshold crossings, transition times, and delay
// between waveforms — the quantities the paper's evaluation compares
// between SPICE and the switch-level models.
package analog

import (
	"fmt"
	"math"
)

// ErrNoCrossing is wrapped by measurement errors when a waveform never
// crosses the requested level in the requested direction.
var ErrNoCrossing = fmt.Errorf("analog: waveform does not cross level")

// Crossing returns the first time at or after tmin at which the recorded
// waveform of node crosses `level` in the given direction (rising:
// from below to at-or-above; falling: from above to at-or-below), using
// linear interpolation between samples.
func (r *Result) Crossing(node int, level float64, rising bool, tmin float64) (float64, error) {
	v, ok := r.V[node]
	if !ok {
		return 0, fmt.Errorf("analog: node %d (%s) was not recorded", node, r.circ.names[node])
	}
	for i := 1; i < len(v); i++ {
		if r.Times[i] < tmin {
			continue
		}
		a, b := v[i-1], v[i]
		var hit bool
		if rising {
			hit = a < level && b >= level
		} else {
			hit = a > level && b <= level
		}
		if hit {
			// Linear interpolation inside the interval.
			f := 0.0
			if b != a {
				f = (level - a) / (b - a)
			}
			return r.Times[i-1] + f*(r.Times[i]-r.Times[i-1]), nil
		}
	}
	dir := "rising"
	if !rising {
		dir = "falling"
	}
	return 0, fmt.Errorf("%w %g %s on node %s after t=%g",
		ErrNoCrossing, level, dir, r.circ.names[node], tmin)
}

// TransitionTime returns the 10%–90% transition time of node's first
// transition after tmin between levels v0 and v1 (v0 may exceed v1 for a
// falling transition).
func (r *Result) TransitionTime(node int, v0, v1, tmin float64) (float64, error) {
	rising := v1 > v0
	lo := v0 + 0.1*(v1-v0)
	hi := v0 + 0.9*(v1-v0)
	t10, err := r.Crossing(node, lo, rising, tmin)
	if err != nil {
		return 0, err
	}
	t90, err := r.Crossing(node, hi, rising, t10)
	if err != nil {
		return 0, err
	}
	return t90 - t10, nil
}

// Delay50 returns the delay from the 50% crossing of `from` (direction
// fromRising) to the subsequent 50% crossing of `to` (direction toRising),
// with both 50% levels computed against swing v0→v1 of the supply.
func (r *Result) Delay50(from, to int, fromRising, toRising bool, v0, v1, tmin float64) (float64, error) {
	mid := (v0 + v1) / 2
	t0, err := r.Crossing(from, mid, fromRising, tmin)
	if err != nil {
		return 0, fmt.Errorf("measuring input: %w", err)
	}
	t1, err := r.Crossing(to, mid, toRising, t0)
	if err != nil {
		return 0, fmt.Errorf("measuring output: %w", err)
	}
	return t1 - t0, nil
}

// Final returns the last recorded voltage of node.
func (r *Result) Final(node int) (float64, error) {
	v, ok := r.V[node]
	if !ok || len(v) == 0 {
		return 0, fmt.Errorf("analog: node %d has no samples", node)
	}
	return v[len(v)-1], nil
}

// At returns the voltage of node at time t by linear interpolation.
func (r *Result) At(node int, t float64) (float64, error) {
	v, ok := r.V[node]
	if !ok {
		return 0, fmt.Errorf("analog: node %d was not recorded", node)
	}
	if len(v) == 0 {
		return 0, fmt.Errorf("analog: node %d has no samples", node)
	}
	if t <= r.Times[0] {
		return v[0], nil
	}
	for i := 1; i < len(v); i++ {
		if r.Times[i] >= t {
			span := r.Times[i] - r.Times[i-1]
			if span <= 0 {
				return v[i], nil
			}
			f := (t - r.Times[i-1]) / span
			return v[i-1] + f*(v[i]-v[i-1]), nil
		}
	}
	return v[len(v)-1], nil
}

// MinMax returns the extrema of node's recorded waveform.
func (r *Result) MinMax(node int) (lo, hi float64, err error) {
	v, ok := r.V[node]
	if !ok || len(v) == 0 {
		return 0, 0, fmt.Errorf("analog: node %d has no samples", node)
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi, nil
}
