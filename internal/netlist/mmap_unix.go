//go:build linux || darwin

package netlist

import (
	"os"
	"syscall"
)

// mmapSupported gates the memory-mapped snapshot fast path; platforms
// without it fall back to the heap decoder transparently.
const mmapSupported = true

// mmapFile maps the file read-only and shared: pages are backed by the
// page cache, so N processes (or N sessions in one process) mapping the
// same snapshot share one physical copy. Platforms that have it add a
// populate flag (see mmapExtraFlags): the loader is about to checksum
// every byte anyway, and one batched prefault is far cheaper than a few
// thousand individual soft faults taken from inside the CRC loop.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED|mmapExtraFlags)
}

func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
