// The shared network arena: one read-only memory-mapped netlist view
// serving every session of the same chip. Session state (analyzer,
// stage DB, arrivals) is per-session, but the network itself — nodes,
// transistors, adjacency, the mapped name payload — is identical for
// every session over the same (source, technology, name) triple, so the
// arena hands all of them one immutable *netlist.Network built over one
// mapping. N sessions of a chip then cost one network plus N analyzers
// instead of N of both, and the mapped pages themselves are page-cache
// backed (shared machine-wide).
//
// Copy-on-edit: sessions never write through the shared view. The first
// edit barrier runs the incremental engine, whose Apply clones the
// network before touching it; the session then detaches — swaps its
// pointer to the private clone and drops its arena reference. The
// arena's job is bookkeeping, not enforcement; the clone discipline is
// the incremental engine's existing contract.
//
// Lifetime: mappings are never unmapped, even at zero references — node
// name strings alias the mapped pages and escape into reports, clones
// and analysis results whose lifetime the server cannot bound. A
// zero-ref entry stays resident to serve the next session of the same
// chip; the cost is address space and page-cache pages the OS reclaims
// under pressure, not wired heap (docs/SERVER.md covers the RSS
// accounting consequences).
package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// arenaKey identifies one shareable network: the SHA-256 of its .sim
// source plus the technology and report name (both also baked into the
// snapshot file and validated on load).
type arenaKey struct {
	simHash [32]byte
	tech    string
	name    string
}

type arenaEntry struct {
	m    *netlist.Mapped
	refs int // sessions currently aliasing the view
}

// netArena is the session-shared mapping table. All methods are safe
// for concurrent use.
type netArena struct {
	mu       sync.Mutex
	entries  map[arenaKey]*arenaEntry
	detaches atomic.Int64 // sessions that copy-on-edit detached
}

func newNetArena() *netArena {
	return &netArena{entries: make(map[arenaKey]*arenaEntry)}
}

// acquire returns the shared view for key, mapping the snapshot at path
// on first use. A false return means no usable mapping (missing/stale/
// corrupt file, v1 format, platform without mmap) and the caller falls
// back to its own heap load. The mapping stage holds the arena lock:
// concurrent creates of the same chip serialize here rather than racing
// to build duplicate mappings.
func (a *netArena) acquire(path string, key arenaKey, p *tech.Params) (*netlist.Network, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e, ok := a.entries[key]; ok {
		e.refs++
		return e.m.Net, true
	}
	m, err := netlist.OpenMapped(path, p)
	if err != nil {
		return nil, false
	}
	if m.SourceHash != key.simHash || m.Net.Name != key.name {
		m.Close() // wrong content: the view never escaped, unmapping is safe
		return nil, false
	}
	a.entries[key] = &arenaEntry{m: m, refs: 1}
	return m.Net, true
}

// release drops one session's reference. The entry (and mapping) stays
// resident at zero refs — see the package comment on lifetime.
func (a *netArena) release(key arenaKey) {
	a.mu.Lock()
	if e, ok := a.entries[key]; ok && e.refs > 0 {
		e.refs--
	}
	a.mu.Unlock()
}

// detach is release plus the copy-on-edit counter: the session has
// swapped to a private clone after its first edit barrier.
func (a *netArena) detach(key arenaKey) {
	a.detaches.Add(1)
	a.release(key)
}

// ArenaStats is the netarena.* gauge set served at /metrics.
type ArenaStats struct {
	// Mappings counts resident mapped files (including zero-ref ones
	// kept alive for reuse and string safety).
	Mappings int64 `json:"mappings"`
	// SharedSessions counts live sessions currently aliasing a view.
	SharedSessions int64 `json:"shared_sessions"`
	// ResidentBytes totals the mapped file bytes — address space, not
	// wired RSS; the pages are file-backed and OS-reclaimable.
	ResidentBytes int64 `json:"resident_bytes"`
	// Detaches counts copy-on-edit detaches over the daemon lifetime.
	Detaches int64 `json:"detaches"`
}

func (a *netArena) stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := ArenaStats{Detaches: a.detaches.Load()}
	for _, e := range a.entries {
		st.Mappings++
		st.SharedSessions += int64(e.refs)
		st.ResidentBytes += int64(e.m.Size())
	}
	return st
}
