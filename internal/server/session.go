// Sessions: one loaded netlist plus its resident analysis state. A
// session is the unit the LRU cache holds — parsed network, compiled
// netlist.Compact view, stage.DB generations and arrival cones all live
// inside the analyzer, so a cache hit skips straight to the incremental
// engine.
//
// Concurrency model: per-session single-writer. Every mutating request
// (analyze, edits) takes the session's writer lock, so edit generations
// advance serially; read requests never touch the analyzer at all — they
// load an immutable snapshot installed with an atomic pointer after each
// (re)analysis, so a slow drain never blocks a /critical probe and a
// half-applied batch is never observable.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/charlib"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// SessionConfig is the POST /v1/sessions request body: the .sim source
// plus the same analysis directives the crystal CLI takes.
type SessionConfig struct {
	// Name labels the network in reports (default "netlist").
	Name string `json:"name,omitempty"`
	// Sim is the .sim netlist source (required).
	Sim string `json:"sim"`
	// Tech selects the technology: nmos-4u (default) or cmos-3u.
	Tech string `json:"tech,omitempty"`
	// Model selects the delay model: lumped, rc or slope (default slope).
	Model string `json:"model,omitempty"`
	// Tables selects the delay tables: analytic (default) or char.
	Tables string `json:"tables,omitempty"`
	// Rise / Fall seed worst-case transitions at t=0 on the named inputs.
	// With both empty every input toggles in both directions — the fully
	// vectorless worst case.
	Rise []string `json:"rise,omitempty"`
	Fall []string `json:"fall,omitempty"`
	// Fix pins nodes to constant values ("0" or "1") for sensitization.
	Fix map[string]string `json:"fix,omitempty"`
	// Slope is the input transition time in seconds (default 1e-9).
	Slope float64 `json:"slope,omitempty"`
	// LoopBreak cuts the fanout of the named nodes (feedback directive).
	LoopBreak []string `json:"loopbreak,omitempty"`
	// Top is how many critical paths snapshots retain (default 5, cap 64).
	Top int `json:"top,omitempty"`
}

// fill applies defaults and validates the enumerated fields.
func (c *SessionConfig) fill() error {
	if strings.TrimSpace(c.Sim) == "" {
		return fmt.Errorf("missing sim source")
	}
	if c.Name == "" {
		c.Name = "netlist"
	}
	if c.Tech == "" {
		c.Tech = "nmos-4u"
	}
	if c.Model == "" {
		c.Model = "slope"
	}
	if c.Tables == "" {
		c.Tables = "analytic"
	}
	if c.Slope <= 0 {
		c.Slope = 1e-9
	}
	if c.Top <= 0 {
		c.Top = 5
	}
	if c.Top > 64 {
		c.Top = 64
	}
	return nil
}

// hash is the content hash the session cache is keyed by: every field
// that affects analysis results, canonically serialized. Two loads with
// equal hashes produce byte-identical reports, so the cache may serve one
// session for both.
func (c *SessionConfig) hash() string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// Maps need a canonical order; everything else is already ordered.
	fixKeys := make([]string, 0, len(c.Fix))
	for k := range c.Fix {
		fixKeys = append(fixKeys, k)
	}
	sort.Strings(fixKeys)
	var fix []string
	for _, k := range fixKeys {
		fix = append(fix, k+"="+c.Fix[k])
	}
	enc.Encode([]any{c.Name, c.Sim, c.Tech, c.Model, c.Tables,
		c.Rise, c.Fall, fix, c.Slope, c.LoopBreak, c.Top})
	return hex.EncodeToString(h.Sum(nil))
}

// PathHop is one step of a traced critical path, times in seconds.
type PathHop struct {
	Node  string  `json:"node"`
	Tr    string  `json:"tr"`
	T     float64 `json:"t"`
	Slope float64 `json:"slope"`
	Via   string  `json:"via,omitempty"` // stage description; empty for seeded inputs
}

// PathJSON is one traced critical path, input first.
type PathJSON struct {
	Endpoint string    `json:"endpoint"`
	Tr       string    `json:"tr"`
	T        float64   `json:"t"`
	Slope    float64   `json:"slope"`
	Hops     []PathHop `json:"hops"`
}

// Snapshot is the immutable read view installed after every (re)analysis.
type Snapshot struct {
	// Report is the textual report: a header line plus the same critical-
	// path listing the crystal CLI prints (byte-comparable to an offline
	// replay of the same session).
	Report string `json:"report"`
	// Paths is the structured top-N listing (N = SessionConfig.Top).
	Paths []PathJSON `json:"paths"`
	// CriticalNs is the latest arrival in nanoseconds (0 if none).
	CriticalNs float64 `json:"critical_ns"`
	// Epoch is the stage-database generation.
	Epoch uint64 `json:"epoch"`
	// StagesEvaluated counts model evaluations over the session lifetime.
	StagesEvaluated int `json:"stages_evaluated"`
	// Truncated / Unbounded mirror the analyzer's honesty flags.
	Truncated bool     `json:"truncated,omitempty"`
	Unbounded []string `json:"unbounded,omitempty"`
	// Hier is the hierarchical-analysis provenance when the server runs
	// with -hier on: how many annotated instances were detected and how
	// many had their interiors stamped from a class representative versus
	// analyzed flat. Absent when hierarchical analysis is off. Counts can
	// drop to zero after edits — detached instances re-analyze flat.
	Hier *HierJSON `json:"hier,omitempty"`
}

// HierJSON is the Snapshot's hierarchical-analysis provenance block
// (core.HierStats over the wire).
type HierJSON struct {
	Instances int `json:"instances"`
	Stamped   int `json:"stamped"`
	Flat      int `json:"flat"`
}

// session is one resident analysis. All mutation happens under mu; snap
// is the lock-free read surface.
type session struct {
	id   string
	hash string
	cfg  SessionConfig

	// source records how the network was obtained: "parse" (the .sim
	// text went through ReadSimParallel), "snapshot" (a fresh .simx
	// cache entry was heap-decoded), or "mmap" (the session aliases a
	// shared read-only mapped view from the network arena).
	source string
	// snapWrote reports that this load persisted a new snapshot.
	snapWrote bool
	// shared marks a session currently aliasing an arena view under
	// akey; cleared (with an arena release) on copy-on-edit detach and
	// on removal from the cache.
	shared bool
	akey   arenaKey

	params *tech.Params
	tables *delay.Tables
	model  delay.Model

	mu        sync.Mutex // single writer: analyze / edits serialization
	nw        *netlist.Network
	a         *core.Analyzer // nil until the first analyze
	workers   int            // worker count of the current analyzer
	noReorder bool           // server-wide Options.NoReorder, applied per analyzer
	hier      bool           // server-wide Options.Hier, applied per analyzer
	edited    bool           // diverged from the loaded source (edits applied)
	barriers  int            // run barriers applied over the session lifetime
	lastEpoch uint64         // stage-DB generation at the last metrics update

	// batch is the compiled vectorized switch-level engine, built lazily on
	// the first /simulate and rebuilt whenever edits advance the network
	// generation (batchNW tracks which generation it was compiled from).
	batch   *switchsim.Batch
	batchNW *netlist.Network

	snap atomic.Pointer[Snapshot]
}

// batchEngine returns the session's compiled vectorized simulator,
// compiling (or recompiling after an edit generation) on demand; compiled
// reports whether this call built a fresh engine. Callers hold s.mu — the
// engine's slab state is single-writer like the analyzer.
func (s *session) batchEngine() (b *switchsim.Batch, compiled bool) {
	if s.batch == nil || s.batchNW != s.nw {
		s.batch = switchsim.NewBatch(s.nw)
		s.batchNW = s.nw
		compiled = true
	}
	return s.batch, compiled
}

// newSession loads the network — preferably as a shared mapped view
// from the arena, else from the .simx snapshot cache when snapDir holds
// a fresh entry, otherwise by parsing the source with `workers`
// tokenizer workers — and prepares (but does not run) the analysis.
//
// Snapshot entries are keyed by the network identity (SHA-256 of the
// .sim text, plus technology and name — the fields that determine the
// network's structure), NOT the full session content hash: two configs
// that differ only in analysis directives (model, seeds, top-N) load
// the same network, so they share one snapshot file and, through the
// arena, one mapped view. The embedded source hash, technology and name
// are re-validated on every load, and any mismatch or decode failure
// falls back to a parse. A snapshot is only ever written after the
// parsed network passed Check, so a snapshot hit skips both the parse
// and the structural check.
func newSession(id string, cfg SessionConfig, snapDir string, workers int, noReorder, hier bool, arena *netArena) (*session, error) {
	s := &session{id: id, hash: cfg.hash(), cfg: cfg, source: "parse", noReorder: noReorder, hier: hier}
	// The retained config drops the .sim source text: it is only needed
	// below (identity hash + cold parse), and for a chip-scale netlist
	// the text is tens of megabytes — cached per session, it would
	// dwarf the memory the shared arena saves. The local cfg still
	// holds it for this load.
	s.cfg.Sim = ""
	switch cfg.Tech {
	case "nmos-4u", "nmos":
		s.params = tech.NMOS4()
	case "cmos-3u", "cmos":
		s.params = tech.CMOS3()
	default:
		return nil, fmt.Errorf("unknown technology %q", cfg.Tech)
	}
	switch cfg.Tables {
	case "char":
		tb, err := charlib.Default(s.params)
		if err != nil {
			return nil, fmt.Errorf("characterization failed: %v", err)
		}
		s.tables = tb
	case "analytic":
		s.tables = delay.AnalyticTables(s.params)
	default:
		return nil, fmt.Errorf("unknown tables %q (want char or analytic)", cfg.Tables)
	}
	m, err := delay.ByName(cfg.Model, s.tables)
	if err != nil {
		return nil, err
	}
	s.model = m
	var snapPath string
	simHash := sha256.Sum256([]byte(cfg.Sim))
	key := arenaKey{simHash: simHash, tech: s.params.Name, name: cfg.Name}
	if snapDir != "" {
		snapPath = filepath.Join(snapDir, networkFileKey(key)+".simx")
		if arena != nil {
			if nw, ok := arena.acquire(snapPath, key, s.params); ok {
				s.nw, s.source = nw, "mmap"
				s.shared, s.akey = true, key
				return s, nil
			}
		}
		if nw, ok := loadSessionSnapshot(snapPath, cfg.Name, s.params, simHash); ok {
			s.nw, s.source = nw, "snapshot"
			return s, nil
		}
	}
	nw, err := netlist.ReadSimParallel(cfg.Name, s.params, strings.NewReader(cfg.Sim), workers)
	if err != nil {
		return nil, err
	}
	if err := nw.Check(); err != nil {
		return nil, err
	}
	s.nw = nw
	if snapPath != "" {
		// Cache write is best effort: a full snapshot directory or
		// permission problem must not fail the load.
		if err := netlist.WriteSnapshotFile(snapPath, nw, simHash); err == nil {
			s.snapWrote = true
		}
	}
	return s, nil
}

// networkFileKey names the snapshot file for one network identity.
func networkFileKey(key arenaKey) string {
	h := sha256.New()
	h.Write([]byte("simx-net:" + key.tech + ":" + key.name + ":"))
	h.Write(key.simHash[:])
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// loadSessionSnapshot loads a .simx file and validates it against the
// wanted network name, technology and source hash. Any failure is a
// cache miss.
func loadSessionSnapshot(path, name string, p *tech.Params, simHash [32]byte) (*netlist.Network, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	nw, gotHash, err := netlist.ReadSnapshot(f, p)
	if err != nil || gotHash != simHash || nw.Name != name {
		return nil, false
	}
	return nw, true
}

// buildAnalyzer constructs a fresh analyzer over the session's current
// network generation with the session's directives, optionally adopting a
// stage database from a previous analyzer over the same generation.
// Callers hold s.mu.
func (s *session) buildAnalyzer(workers int, db *core.Analyzer) (*core.Analyzer, error) {
	opts := core.Options{Workers: workers, NoReorder: s.noReorder, Hier: s.hier}
	if db != nil {
		opts.DB = db.StageDB()
	}
	for _, name := range s.cfg.LoopBreak {
		n := s.nw.Lookup(name)
		if n == nil {
			return nil, fmt.Errorf("loopbreak: no node named %q", name)
		}
		opts.LoopBreak = append(opts.LoopBreak, n)
	}
	a := core.New(s.nw, s.model, opts)
	fixed := map[string]bool{}
	for name, val := range s.cfg.Fix {
		n := s.nw.Lookup(name)
		if n == nil {
			return nil, fmt.Errorf("fix: no node named %q", name)
		}
		switch val {
		case "0":
			a.SetFixed(n, switchsim.V0)
		case "1":
			a.SetFixed(n, switchsim.V1)
		default:
			return nil, fmt.Errorf("fix: bad value %q for %s (want 0 or 1)", val, name)
		}
		fixed[name] = true
	}
	seeded := false
	for _, name := range s.cfg.Rise {
		if err := a.SetInputEventName(name, tech.Rise, 0, s.cfg.Slope); err != nil {
			return nil, err
		}
		seeded = true
	}
	for _, name := range s.cfg.Fall {
		if err := a.SetInputEventName(name, tech.Fall, 0, s.cfg.Slope); err != nil {
			return nil, err
		}
		seeded = true
	}
	if !seeded {
		for _, in := range s.nw.Inputs() {
			if fixed[in.Name] {
				continue
			}
			if err := a.SetInputEvent(in, tech.Rise, 0, s.cfg.Slope); err != nil {
				return nil, err
			}
			if err := a.SetInputEvent(in, tech.Fall, 0, s.cfg.Slope); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// buildSnapshot assembles the read view from the current analysis state.
// Callers hold s.mu and have completed a run.
func (s *session) buildSnapshot() *Snapshot {
	a := s.a
	snap := &Snapshot{
		Epoch:           a.StageDB().Epoch,
		StagesEvaluated: a.StagesEvaluated(),
		Truncated:       a.Truncated,
	}
	for _, n := range a.Unbounded {
		snap.Unbounded = append(snap.Unbounded, n.Name)
	}
	if a.Opts.Hier {
		hs := a.HierStats()
		snap.Hier = &HierJSON{Instances: hs.Instances, Stamped: hs.Stamped, Flat: hs.Flat}
	}
	var b strings.Builder
	st := a.Net.Stats()
	fmt.Fprintf(&b, "crystald: %s — %d transistors, %d nodes (%s tables)\n",
		a.Net.Name, st.Trans, st.Nodes, s.tables.Source)
	a.WriteReport(&b, s.cfg.Top)
	snap.Report = b.String()
	for _, p := range a.CriticalPaths(s.cfg.Top) {
		end := p.End()
		pj := PathJSON{
			Endpoint: end.Node.Name,
			Tr:       end.Tr.String(),
			T:        end.Event.T,
			Slope:    end.Event.Slope,
		}
		for _, h := range p.Hops {
			hop := PathHop{Node: h.Node.Name, Tr: h.Tr.String(), T: h.Event.T, Slope: h.Event.Slope}
			if h.Event.Via != nil {
				hop.Via = h.Event.Via.String()
			}
			pj.Hops = append(pj.Hops, hop)
		}
		snap.Paths = append(snap.Paths, pj)
	}
	if len(snap.Paths) > 0 {
		snap.CriticalNs = snap.Paths[0].T * 1e9
	}
	s.snap.Store(snap)
	return snap
}
