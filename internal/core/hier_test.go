package core

import (
	"fmt"
	"testing"

	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// hierFamilies are the circuit families the hierarchical identity suite
// sweeps: every registered generator at a small scale, plus the tiled
// grid (the only family carrying instance annotations and hence the only
// one where stamping engages — everywhere else the hierarchical path must
// degenerate to exactly the flat analysis), plus the grid without its
// loop-break directives, where the feedback guard fires inside the tiles
// and the stamped classes must fall back to flat wholesale.
func hierFamilies(t *testing.T, p *tech.Params) []struct {
	name    string
	spec    string
	nw      *netlist.Network
	fix     map[string]string
	lb      []string
	stamped bool // expect at least one stamped instance
} {
	t.Helper()
	specs := []string{
		"invchain:6", "fanout:4", "passchain:6", "superbuffer", "bus:6",
		"ripple:6", "manchester:6", "barrel:4", "decoder:3", "alu:4",
		"regfile:4,4", "polywire:8", "datapath:8", "shiftreg:6",
		"arraymul:4", "carrysel:8", "pla:4,8,4", "chip:8",
	}
	var out []struct {
		name    string
		spec    string
		nw      *netlist.Network
		fix     map[string]string
		lb      []string
		stamped bool
	}
	for _, spec := range specs {
		nw, err := gen.Build(spec, p)
		if err != nil {
			t.Fatal(err)
		}
		var fix map[string]string
		var lb []string
		if spec == "chip:8" {
			fix, lb = gen.ChipDirectives(8)
		}
		out = append(out, struct {
			name    string
			spec    string
			nw      *netlist.Network
			fix     map[string]string
			lb      []string
			stamped bool
		}{spec, spec, nw, fix, lb, false})
	}
	grid, err := gen.ChipGrid(p, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	gfix, glb := gen.ChipGridDirectives(8, 3)
	out = append(out, struct {
		name    string
		spec    string
		nw      *netlist.Network
		fix     map[string]string
		lb      []string
		stamped bool
	}{"chip-grid", "chip:8,3", grid, gfix, glb, true})
	grid2, err := gen.ChipGrid(p, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, struct {
		name    string
		spec    string
		nw      *netlist.Network
		fix     map[string]string
		lb      []string
		stamped bool
	}{"chip-grid-feedback", "chip:8,3", grid2, gfix, nil, false})
	return out
}

// requireHierIdentical compares a hierarchical analysis against a flat
// baseline: every arrival bit-identical (time, slope, validity,
// predecessor), the same feedback-guard verdicts in order, and the same
// critical paths with provenance stages printing identically — the
// stamped copies must name the member's own nets, not the
// representative's. Stage-evaluation counts are NOT compared: skipping
// the members' evaluations is the entire point.
func requireHierIdentical(t *testing.T, label string, want, got *Analyzer) {
	t.Helper()
	for _, n := range want.Net.Nodes {
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			w, g := want.Arrival(n, tr), got.Arrival(n, tr)
			if !sameEvent(w, g) {
				t.Fatalf("%s: arrival %s/%s = %+v, want %+v", label, n.Name, tr, g, w)
			}
		}
	}
	if len(want.Unbounded) != len(got.Unbounded) {
		t.Fatalf("%s: %d unbounded nodes, want %d", label, len(got.Unbounded), len(want.Unbounded))
	}
	for i := range want.Unbounded {
		if want.Unbounded[i].Index != got.Unbounded[i].Index {
			t.Fatalf("%s: unbounded[%d] = %s, want %s", label,
				i, got.Unbounded[i].Name, want.Unbounded[i].Name)
		}
	}
	wp, gp := want.CriticalPaths(10), got.CriticalPaths(10)
	if len(wp) != len(gp) {
		t.Fatalf("%s: %d critical paths, want %d", label, len(gp), len(wp))
	}
	for i := range wp {
		if len(wp[i].Hops) != len(gp[i].Hops) {
			t.Fatalf("%s: path %d has %d hops, want %d", label, i, len(gp[i].Hops), len(wp[i].Hops))
		}
		for h := range wp[i].Hops {
			wh, gh := wp[i].Hops[h], gp[i].Hops[h]
			if wh.Node.Index != gh.Node.Index || wh.Tr != gh.Tr || wh.Event.T != gh.Event.T {
				t.Fatalf("%s: path %d hop %d = %s/%s@%g, want %s/%s@%g", label, i, h,
					gh.Node.Name, gh.Tr, gh.Event.T, wh.Node.Name, wh.Tr, wh.Event.T)
			}
			ws, gs := "", ""
			if wh.Event.Via != nil {
				ws = wh.Event.Via.String()
			}
			if gh.Event.Via != nil {
				gs = gh.Event.Via.String()
			}
			if ws != gs {
				t.Fatalf("%s: path %d hop %d provenance %q, want %q", label, i, h, gs, ws)
			}
		}
	}
}

// TestHierIdentity pins the tentpole guarantee: hierarchical analysis is
// bit-identical to flat analysis for every circuit family, at one worker
// and at eight, whether or not anything is stampable.
func TestHierIdentity(t *testing.T) {
	p := tech.NMOS4()
	m := delay.NewSlope(delay.AnalyticTables(p))
	for _, fam := range hierFamilies(t, p) {
		t.Run(fam.name, func(t *testing.T) {
			base := buildAnalyzer(t, fam.nw, m, fam.fix, fam.lb, Options{Workers: 1})
			if err := base.Run(); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 8} {
				a := buildAnalyzer(t, fam.nw, m, fam.fix, fam.lb, Options{Workers: workers})
				if err := a.AnalyzeHierarchical(); err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("workers=%d", workers)
				requireHierIdentical(t, label, base, a)
				st := a.HierStats()
				if fam.stamped && st.Stamped == 0 {
					t.Errorf("%s: nothing stamped on the tiled grid: %+v", label, st)
				}
				if !fam.stamped && st.Stamped != 0 {
					t.Errorf("%s: %d instances stamped, expected none", label, st.Stamped)
				}
				if st.Instances != st.Stamped+st.Flat {
					t.Errorf("%s: inconsistent stats %+v", label, st)
				}
			}
		})
	}
}

// TestHierProvenance: the per-instance report says exactly which copies
// carried stamped timing and why the rest ran flat.
func TestHierProvenance(t *testing.T) {
	p := tech.NMOS4()
	m := delay.NewSlope(delay.AnalyticTables(p))
	nw, err := gen.ChipGrid(p, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	fix, lb := gen.ChipGridDirectives(8, 4)
	a := buildAnalyzer(t, nw, m, fix, lb, Options{Workers: 1, Hier: true})
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	st := a.HierStats()
	// Tile 0 orders differently against the op bus (created mid-import),
	// so tiles 1..3 form the class: representative flat, two stamped.
	if st.Instances != 4 || st.Stamped != 2 {
		t.Fatalf("HierStats = %+v, want 4 instances / 2 stamped", st)
	}
	insts := a.HierInstances()
	if len(insts) != 4 {
		t.Fatalf("%d instance reports, want 4", len(insts))
	}
	for _, hi := range insts {
		if hi.Stamped && hi.Reason != "" {
			t.Errorf("stamped %s carries a flat reason %q", hi.Path, hi.Reason)
		}
		if !hi.Stamped && hi.Reason == "" {
			t.Errorf("flat %s has no reason", hi.Path)
		}
		if hi.TransHi <= hi.TransLo {
			t.Errorf("%s has empty range [%d,%d)", hi.Path, hi.TransLo, hi.TransHi)
		}
	}
	// A flat re-run must not report hierarchical state.
	flat := buildAnalyzer(t, nw, m, fix, lb, Options{Workers: 1})
	if err := flat.Run(); err != nil {
		t.Fatal(err)
	}
	if s := flat.HierStats(); s.Instances != 0 {
		t.Errorf("flat analysis reports hier stats %+v", s)
	}
	if flat.HierInstances() != nil {
		t.Error("flat analysis reports hier instances")
	}
}

// hierEditIdentity applies one edit batch to a hierarchical analyzer via
// Reanalyze and checks the result against a from-scratch flat analysis of
// the edited network.
func hierEditIdentity(t *testing.T, label string, a *Analyzer, m delay.Model,
	fix map[string]string, lb []string, edits []incremental.Edit) {
	t.Helper()
	if _, err := a.Reanalyze(edits); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	fresh := buildAnalyzer(t, a.Net, m, fix, lb, Options{Workers: 1})
	if err := fresh.Run(); err != nil {
		t.Fatal(err)
	}
	requireHierIdentical(t, label, fresh, a)
}

// TestHierReanalyze: edits inside a stamped instance detach exactly that
// instance (and stay bit-identical with flat); edits elsewhere leave the
// stamps in place.
func TestHierReanalyze(t *testing.T) {
	p := tech.NMOS4()
	m := delay.NewSlope(delay.AnalyticTables(p))
	fix, lb := gen.ChipGridDirectives(8, 3)

	build := func(t *testing.T, workers int) *Analyzer {
		nw, err := gen.ChipGrid(p, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		a := buildAnalyzer(t, nw, m, fix, lb, Options{Workers: workers, Hier: true})
		if err := a.Run(); err != nil {
			t.Fatal(err)
		}
		return a
	}
	// pick returns a resizable device index inside (stamped=true) or
	// outside (stamped=false) a stamped instance.
	pick := func(t *testing.T, a *Analyzer, stamped bool) int {
		for _, hi := range a.HierInstances() {
			if hi.Stamped != stamped {
				continue
			}
			for ti := hi.TransLo; ti < hi.TransHi; ti++ {
				if !a.Net.Trans[ti].IsWire() {
					return ti
				}
			}
		}
		t.Fatalf("no editable device with stamped=%v", stamped)
		return -1
	}

	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("inside-stamped-w%d", workers), func(t *testing.T) {
			a := build(t, workers)
			before := a.HierStats()
			if before.Stamped == 0 {
				t.Fatal("nothing stamped")
			}
			idx := pick(t, a, true)
			hierEditIdentity(t, "resize-in-member", a, m, fix, lb,
				[]incremental.Edit{{Kind: incremental.Resize, Index: idx, W: 7e-6}})
			after := a.HierStats()
			if after.Stamped >= before.Stamped {
				t.Errorf("edit inside a stamped member left %d stamped (was %d)",
					after.Stamped, before.Stamped)
			}
		})
		t.Run(fmt.Sprintf("outside-stamped-w%d", workers), func(t *testing.T) {
			a := build(t, workers)
			before := a.HierStats()
			idx := pick(t, a, false)
			hierEditIdentity(t, "resize-outside", a, m, fix, lb,
				[]incremental.Edit{{Kind: incremental.Resize, Index: idx, W: 7e-6}})
			after := a.HierStats()
			if after.Stamped != before.Stamped {
				t.Errorf("edit outside the stamps changed the stamped count %d -> %d",
					before.Stamped, after.Stamped)
			}
		})
	}

	// A capacitance edit on a boundary net (the shared opcode bus) dirties
	// every tile it feeds: all members detach, results stay identical.
	t.Run("boundary-cap", func(t *testing.T) {
		a := build(t, 1)
		hierEditIdentity(t, "cap-on-bus", a, m, fix, lb,
			[]incremental.Edit{{Kind: incremental.AddCap, Node: "op0", Cap: 40e-15}})
	})

	// A retype forces a full fallback; hierarchical state is dropped, the
	// full flat run stays identical.
	t.Run("retype-full-fallback", func(t *testing.T) {
		a := build(t, 1)
		hierEditIdentity(t, "retype", a, m, fix, lb,
			[]incremental.Edit{{Kind: incremental.Retype, Node: "t1_au_cout", NodeKind: netlist.KindNormal}})
		if st := a.HierStats(); st.Instances != 0 {
			t.Errorf("hier state survived a full fallback: %+v", st)
		}
	})
}

// FuzzHierStamp drives random edit batches at a hierarchical analyzer and
// requires bit-identity with a from-scratch flat analysis after every
// batch — edits landing inside stamped instances, outside them, and on
// the shared boundary.
func FuzzHierStamp(f *testing.F) {
	f.Add(uint16(3), 4.0, 10.0)
	f.Add(uint16(9000), 1.5, 80.0)
	f.Add(uint16(77), 9.0, 0.5)
	p := tech.NMOS4()
	m := delay.NewSlope(delay.AnalyticTables(p))
	seed, err := gen.ChipGrid(p, 4, 3)
	if err != nil {
		f.Fatal(err)
	}
	fix, lb := gen.ChipGridDirectives(4, 3)
	f.Fuzz(func(t *testing.T, raw uint16, wScale, capScale float64) {
		if wScale != wScale || wScale <= 0 || wScale > 50 ||
			capScale != capScale || capScale < 0 || capScale > 1000 {
			t.Skip()
		}
		nw := seed.Clone()
		a := buildAnalyzer(t, nw, m, fix, lb, Options{Workers: 1, Hier: true})
		if err := a.Run(); err != nil {
			t.Fatal(err)
		}
		var edits []incremental.Edit
		switch raw % 3 {
		case 0:
			idx := int(raw) % len(nw.Trans)
			for nw.Trans[idx].IsWire() {
				idx = (idx + 1) % len(nw.Trans)
			}
			edits = append(edits, incremental.Edit{
				Kind: incremental.Resize, Index: idx, W: wScale * 1e-6})
		case 1:
			node := nw.Nodes[int(raw)%len(nw.Nodes)]
			if node.IsRail() {
				node = nw.Nodes[(int(raw)+1)%len(nw.Nodes)]
			}
			if node.IsRail() {
				t.Skip()
			}
			edits = append(edits, incremental.Edit{
				Kind: incremental.AddCap, Node: node.Name, Cap: capScale * 1e-15})
		default:
			// Two edits in one batch: a resize plus bus load.
			idx := int(raw) % len(nw.Trans)
			for nw.Trans[idx].IsWire() {
				idx = (idx + 1) % len(nw.Trans)
			}
			edits = append(edits,
				incremental.Edit{Kind: incremental.Resize, Index: idx, W: wScale * 1e-6},
				incremental.Edit{Kind: incremental.AddCap, Node: "op1", Cap: capScale * 1e-15})
		}
		if _, err := a.Reanalyze(edits); err != nil {
			t.Fatal(err)
		}
		fresh := buildAnalyzer(t, a.Net, m, fix, lb, Options{Workers: 1})
		if err := fresh.Run(); err != nil {
			t.Fatal(err)
		}
		for _, n := range fresh.Net.Nodes {
			for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
				w, g := fresh.Arrival(n, tr), a.Arrival(n, tr)
				if !sameEvent(w, g) {
					t.Fatalf("arrival %s/%s = %+v, want %+v (edits %v)", n.Name, tr, g, w, edits)
				}
			}
		}
	})
}
