package main

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/tech"
)

func TestRunScript(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.RippleAdder(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	script := `
# 2 + 1 + carry 1 = 4 → s=00, cout=1
h a1 b0 cin
l a0 b1
s
check s0=0 s1=0 cout=1
l cin
s
check s0=1 s1=1 cout=0
`
	var out strings.Builder
	if err := run(nw, strings.NewReader(script), &out); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "settled") {
		t.Errorf("missing settle output:\n%s", out.String())
	}
}

func TestRunScriptFailures(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.InverterChain(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"h nope\n",
		"check out\n",
		"h in\ns\ncheck out=1\n", // inverter: out should be 0
		"check out=q\n",
		"frobnicate\n",
	}
	for _, script := range cases {
		var out strings.Builder
		if err := run(nw, strings.NewReader(script), &out); err == nil {
			t.Errorf("script %q should fail", script)
		}
	}
}

func TestRunWatchAndDump(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.InverterChain(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	script := "w s1\nh in\ns\nd\n"
	var out strings.Builder
	if err := run(nw, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "s1=0") {
		t.Errorf("watch output missing s1:\n%s", got)
	}
	if !strings.Contains(got, "Vdd=1") {
		t.Errorf("dump missing rails:\n%s", got)
	}
}
