// Coverage for POST /v1/sessions/{id}/simulate: vector settling over the
// resident netlist, scalar-engine identity, engine-recompile-on-edit, the
// sim.* metrics, and request validation.
package server

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

func (c *testClient) simulate(id string, req simulateRequest) simulateResponse {
	c.t.Helper()
	var resp simulateResponse
	if st := c.do("POST", "/v1/sessions/"+id+"/simulate", req, &resp); st != http.StatusOK {
		c.t.Fatalf("simulate: status %d", st)
	}
	return resp
}

func TestSimulateEndpoint(t *testing.T) {
	c := newTestClient(t, Options{})
	id := c.create(dlatchConfig(t)).Session

	resp := c.simulate(id, simulateRequest{
		Inputs:  []string{"wr", "d"},
		Watch:   []string{"q", "out"},
		Vectors: []string{"11", "10", "01", "X1"},
	})
	if !resp.Compiled {
		t.Errorf("first simulate: Compiled = false, want true")
	}
	if got, want := strings.Join(resp.Inputs, " "), "wr d"; got != want {
		t.Errorf("inputs = %q, want %q", got, want)
	}
	if got, want := strings.Join(resp.Watch, " "), "q out"; got != want {
		t.Errorf("watch = %q, want %q", got, want)
	}
	want := [][]string{
		{"1", "1"}, // write 1: latched and buffered out
		{"0", "0"}, // write 0
		{"X", "X"}, // not written from power-on: unknown
		{"X", "X"}, // maybe-written: unknown
	}
	if len(resp.Results) != len(want) {
		t.Fatalf("results = %d, want %d", len(resp.Results), len(want))
	}
	for i, res := range resp.Results {
		if got := strings.Join(res.Values, " "); got != strings.Join(want[i], " ") {
			t.Errorf("vector %s: values %q, want %q", res.Vector, got, strings.Join(want[i], " "))
		}
		if res.Oscillated {
			t.Errorf("vector %s: unexpected oscillation", res.Vector)
		}
	}
	if resp.Sweeps <= 0 || resp.DurationNs < 0 {
		t.Errorf("bad run metadata: sweeps=%d duration=%d", resp.Sweeps, resp.DurationNs)
	}

	// Second call reuses the compiled engine and accumulates metrics.
	resp2 := c.simulate(id, simulateRequest{Vectors: []string{"11", "10"}})
	if resp2.Compiled {
		t.Errorf("second simulate: Compiled = true, want cached engine")
	}
	if got, want := strings.Join(resp2.Inputs, " "), "wr d"; got != want {
		t.Errorf("default inputs = %q, want %q (netlist order)", got, want)
	}
	m := c.metrics()
	if m.Sim.Requests != 2 || m.Sim.Compiles != 1 {
		t.Errorf("sim metrics: requests=%d compiles=%d, want 2/1", m.Sim.Requests, m.Sim.Compiles)
	}
	if m.Sim.Vectors != 6 {
		t.Errorf("sim vectors = %d, want 6", m.Sim.Vectors)
	}
	if m.Sim.Sweeps <= 0 {
		t.Errorf("sim sweeps = %d, want > 0", m.Sim.Sweeps)
	}
	if m.LatencyNs.Simulate.Count != 2 {
		t.Errorf("simulate latency count = %d, want 2", m.LatencyNs.Simulate.Count)
	}
}

// TestSimulateMatchesScalar cross-checks the endpoint against a scalar Sim
// built from the same source — the HTTP path must add nothing to (or lose
// nothing from) the engine identity pinned in internal/switchsim.
func TestSimulateMatchesScalar(t *testing.T) {
	c := newTestClient(t, Options{})
	id := c.create(dlatchConfig(t)).Session
	vectors := []string{"11", "10", "01", "X1", "1X", "00", "0X", "XX"}
	resp := c.simulate(id, simulateRequest{Vectors: vectors})

	nw, err := netlist.ReadSim("dlatch", tech.NMOS4(), strings.NewReader(dlatchSim(t)))
	if err != nil {
		t.Fatal(err)
	}
	inputs := nw.Inputs()
	if len(inputs) != 2 {
		t.Fatalf("dlatch inputs = %d, want 2", len(inputs))
	}
	for vi, row := range vectors {
		s := switchsim.New(nw)
		for i, n := range inputs {
			v, err := switchsim.ParseVector(string(row[i]), 1)
			if err != nil {
				t.Fatal(err)
			}
			if v[0] != switchsim.VX {
				s.SetInput(n, v[0])
			}
		}
		s.Settle()
		for wi, name := range resp.Watch {
			want := s.ValueName(name).String()
			if got := resp.Results[vi].Values[wi]; got != want {
				t.Errorf("vector %s node %s: server %s, scalar %s", row, name, got, want)
			}
		}
		if resp.Results[vi].Oscillated != s.Oscillated() {
			t.Errorf("vector %s: oscillated mismatch", row)
		}
	}
}

// TestSimulateRecompileAfterEdit pins the cache-invalidation contract: an
// edit barrier advances the network generation, so the next simulate must
// rebuild the batch engine rather than answer from the stale compile.
func TestSimulateRecompileAfterEdit(t *testing.T) {
	c := newTestClient(t, Options{})
	id := c.create(dlatchConfig(t)).Session
	if got := c.simulate(id, simulateRequest{Vectors: []string{"11"}}); !got.Compiled {
		t.Fatalf("first simulate did not compile")
	}

	c.analyze(id, 1)
	c.edits(id, "cap out 2e-14\nrun\n")

	resp := c.simulate(id, simulateRequest{Vectors: []string{"11"}})
	if !resp.Compiled {
		t.Errorf("post-edit simulate: Compiled = false, want recompile")
	}
	if got := strings.Join(resp.Results[0].Values, " "); got != "1" {
		t.Errorf("post-edit values = %q, want %q (out follows written d)", got, "1")
	}
	if m := c.metrics(); m.Sim.Compiles != 2 {
		t.Errorf("sim compiles = %d, want 2", m.Sim.Compiles)
	}
}

func TestSimulateErrors(t *testing.T) {
	c := newTestClient(t, Options{})
	id := c.create(dlatchConfig(t)).Session

	if st := c.do("POST", "/v1/sessions/nope/simulate",
		simulateRequest{Vectors: []string{"11"}}, nil); st != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", st)
	}
	cases := []struct {
		name string
		req  simulateRequest
	}{
		{"no vectors", simulateRequest{}},
		{"bad input", simulateRequest{Inputs: []string{"q"}, Vectors: []string{"1"}}},
		{"unknown input", simulateRequest{Inputs: []string{"zz"}, Vectors: []string{"1"}}},
		{"unknown watch", simulateRequest{Watch: []string{"zz"}, Vectors: []string{"11"}}},
		{"bad symbol", simulateRequest{Vectors: []string{"2 1"}}},
		{"ragged vector", simulateRequest{Vectors: []string{"1"}}},
	}
	for _, tc := range cases {
		if st := c.do("POST", "/v1/sessions/"+id+"/simulate", tc.req, nil); st != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, st)
		}
	}
}
