// Stage remapping: rebuild an enumerated stage over structurally
// corresponding nodes and devices of another instance. The hierarchical
// analyzer stamps a representative's timing onto its class members and
// keeps provenance pointers into the representative's stages; when a
// member's path is traced, the stage is translated through the instance
// correspondence so the reported path names the member's own nets.
package stage

import "repro/internal/netlist"

// Remap returns a copy of the stage with every node reference passed
// through nodeFn and every transistor reference through transFn. Both
// functions must return their argument unchanged for references outside
// the remapped region (rails, shared boundary nodes). Derived loading
// (PathCap, side R/C, driver, ordering flags) is copied, not recomputed:
// the caller guarantees the image is structurally identical, which is
// exactly the condition under which the derived values are equal. The
// path bloom and cached source-input index are recomputed because they
// encode indexes, and the evaluation memo starts empty (models key their
// memos by stage identity).
func (s *Stage) Remap(nodeFn func(*netlist.Node) *netlist.Node, transFn func(*netlist.Trans) *netlist.Trans) *Stage {
	out := &Stage{
		Source:     nodeFn(s.Source),
		Target:     nodeFn(s.Target),
		Transition: s.Transition,
		sideSorted: s.sideSorted,
		driver:     s.driver,
		driverSet:  s.driverSet,
		PathCap:    s.PathCap, // immutable, index-aligned with Path either way
	}
	if s.Trigger != nil {
		out.Trigger = transFn(s.Trigger)
	}
	out.Path = make([]Element, len(s.Path))
	for i, e := range s.Path {
		t := transFn(e.Trans)
		out.Path[i] = Element{Trans: t, From: nodeFn(e.From), To: nodeFn(e.To)}
		out.pathBloom |= 1 << (uint(t.Index) & 63)
	}
	if len(s.Side) > 0 {
		out.Side = make([]SideLoad, len(s.Side))
		for i, sl := range s.Side {
			out.Side[i] = SideLoad{Node: nodeFn(sl.Node), Attach: sl.Attach, R: sl.R, C: sl.C}
		}
	}
	if out.Source.Kind == netlist.KindInput {
		out.srcInput = int32(out.Source.Index) + 1
	}
	return out
}
