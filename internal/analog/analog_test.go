package analog

import (
	"math"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// almost asserts |got-want| <= tol.
func almost(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g ± %g", what, got, want, tol)
	}
}

func TestRCStepResponse(t *testing.T) {
	// 1 kΩ into 1 pF: tau = 1 ns. Check 50% and 90% crossing times
	// against the exact single-pole answers.
	c := NewCircuit()
	in, out := c.Node("in"), c.Node("out")
	c.AddVSource(in, 0, Step(0, 1, 0))
	c.AddResistor(in, out, 1e3)
	c.AddCapacitor(out, 0, 1e-12, 0)
	res, err := c.Tran(TranOpts{Stop: 10e-9, Step: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	tau := 1e-9
	t50, err := res.Crossing(out, 0.5, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "t50", t50, tau*math.Ln2, tau*0.02)
	t90, err := res.Crossing(out, 0.9, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "t90", t90, tau*math.Log(10), tau*0.02)
	final, err := res.Final(out)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "final", final, 1.0, 1e-3)
}

func TestVoltageDividerDC(t *testing.T) {
	c := NewCircuit()
	top, mid := c.Node("top"), c.Node("mid")
	c.AddVSource(top, 0, DC(5))
	c.AddResistor(top, mid, 2e3)
	c.AddResistor(mid, 0, 3e3)
	res, err := c.Tran(TranOpts{Stop: 1e-9, Step: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Final(mid)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "divider", v, 3.0, 1e-3)
}

func TestLevel1Regions(t *testing.T) {
	// Saturation: vds > vgs - vt.
	id, gm, gds := level1(1e-3, 1, 0, 3, 5)
	almost(t, "sat id", id, 0.5e-3*4, 1e-9)
	almost(t, "sat gm", gm, 1e-3*2, 1e-9)
	almost(t, "sat gds", gds, 0, 1e-12)
	// Triode: vds < vgs - vt.
	id, gm, gds = level1(1e-3, 1, 0, 3, 1)
	almost(t, "triode id", id, 1e-3*(2*1-0.5), 1e-9)
	almost(t, "triode gm", gm, 1e-3*1, 1e-9)
	almost(t, "triode gds", gds, 1e-3*(2-1), 1e-9)
	// Cutoff.
	id, gm, gds = level1(1e-3, 1, 0, 0.5, 5)
	if id != 0 || gm != 0 || gds != 0 {
		t.Errorf("cutoff: got id=%g gm=%g gds=%g, want zeros", id, gm, gds)
	}
}

// nmosInverter builds a depletion-load nMOS inverter driving a load cap.
func nmosInverter(p *tech.Params, load float64, in Waveform) (*Circuit, int, int) {
	c := NewCircuit()
	vdd, nin, nout := c.Node("vdd"), c.Node("in"), c.Node("out")
	c.AddVSource(vdd, 0, DC(p.Vdd))
	c.AddVSource(nin, 0, in)
	// Pulldown: minimum-size enhancement. Pullup: 4:1 depletion load
	// (L = 4×W) with gate tied to source (the output).
	c.AddMOS(tech.NEnh, nout, nin, 0, p.MinW, p.MinL, p)
	c.AddMOS(tech.NDep, vdd, nout, nout, p.MinW, 4*p.MinL, p)
	c.AddCapacitor(nout, 0, load, p.Vdd)
	return c, nin, nout
}

func TestNMOSInverterDC(t *testing.T) {
	p := tech.NMOS4()
	// Input low: output should sit at Vdd (depletion pullup, no
	// threshold loss). Input high: output low, but not zero — ratio
	// logic leaves a residual determined by the beta ratio.
	c, _, out := nmosInverter(p, 50e-15, DC(0))
	res, err := c.Tran(TranOpts{Stop: 200e-9})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Final(out)
	almost(t, "output high", v, p.Vdd, 0.05)

	c, _, out = nmosInverter(p, 50e-15, DC(p.Vdd))
	res, err = c.Tran(TranOpts{Stop: 200e-9})
	if err != nil {
		t.Fatal(err)
	}
	v, _ = res.Final(out)
	if v > 1.0 {
		t.Errorf("output low = %gV, want < 1V (ratioed logic)", v)
	}
	if v < 0 {
		t.Errorf("output low = %gV, want >= 0", v)
	}
}

func TestNMOSInverterTransient(t *testing.T) {
	p := tech.NMOS4()
	load := 100e-15
	c, in, out := nmosInverter(p, load, Step(0, p.Vdd, 5e-9))
	res, err := c.Tran(TranOpts{Stop: 100e-9, Step: 20e-12})
	if err != nil {
		t.Fatal(err)
	}
	d, err := res.Delay50(in, out, true, false, 0, p.Vdd, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity band: a minimum pulldown (~10 kΩ) into 100 fF plus the
	// fight against the load should fall at a few ns.
	if d < 0.2e-9 || d > 20e-9 {
		t.Errorf("fall delay = %g s, want within (0.2ns, 20ns)", d)
	}
}

func TestCMOSInverterTransient(t *testing.T) {
	p := tech.CMOS3()
	c := NewCircuit()
	vdd, in, out := c.Node("vdd"), c.Node("in"), c.Node("out")
	c.AddVSource(vdd, 0, DC(p.Vdd))
	c.AddVSource(in, 0, Step(p.Vdd, 0, 5e-9)) // falling input → rising output
	c.AddMOS(tech.NEnh, out, in, 0, p.MinW, p.MinL, p)
	c.AddMOS(tech.PEnh, out, in, vdd, 2*p.MinW, p.MinL, p)
	c.AddCapacitor(out, 0, 100e-15, 0)
	res, err := c.Tran(TranOpts{Stop: 60e-9, Step: 10e-12})
	if err != nil {
		t.Fatal(err)
	}
	d, err := res.Delay50(in, out, false, true, 0, p.Vdd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.1e-9 || d > 10e-9 {
		t.Errorf("rise delay = %g s, want within (0.1ns, 10ns)", d)
	}
	// Full-rail output.
	v, _ := res.Final(out)
	almost(t, "CMOS high", v, p.Vdd, 0.05)
}

func TestPassTransistorThresholdDrop(t *testing.T) {
	// An n-channel pass transistor passing a high level loses a
	// threshold: output settles near Vdd - VtN, a physical effect the
	// level-1 model must reproduce (the switch-level simulator models
	// the same effect as a weak-high value).
	p := tech.NMOS4()
	c := NewCircuit()
	src, gate, out := c.Node("src"), c.Node("gate"), c.Node("out")
	c.AddVSource(src, 0, DC(p.Vdd))
	c.AddVSource(gate, 0, DC(p.Vdd))
	c.AddMOS(tech.NEnh, src, gate, out, p.MinW, p.MinL, p)
	c.AddCapacitor(out, 0, 100e-15, 0)
	res, err := c.Tran(TranOpts{Stop: 400e-9})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Final(out)
	if v > p.Vdd-p.VtN+0.2 {
		t.Errorf("pass-high output = %gV, want ≤ Vdd-Vt+0.2 = %gV", v, p.Vdd-p.VtN+0.2)
	}
	if v < p.Vdd-p.VtN-0.5 {
		t.Errorf("pass-high output = %gV, want ≥ %gV", v, p.Vdd-p.VtN-0.5)
	}
}

func TestRampWaveform(t *testing.T) {
	w := Ramp(0, 5, 10e-9, 20e-9)
	almost(t, "before", w(0), 0, 0)
	almost(t, "start", w(10e-9), 0, 1e-12)
	almost(t, "mid", w(20e-9), 2.5, 1e-9)
	almost(t, "end", w(30e-9), 5, 1e-9)
	almost(t, "after", w(50e-9), 5, 0)
}

func TestPWLWaveform(t *testing.T) {
	w := PWL([]float64{0, 1, 3}, []float64{0, 10, 0})
	almost(t, "t=0.5", w(0.5), 5, 1e-12)
	almost(t, "t=2", w(2), 5, 1e-12)
	almost(t, "t=9", w(9), 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("PWL with decreasing times should panic")
		}
	}()
	PWL([]float64{1, 0}, []float64{0, 0})
}

func TestWriteCSVAndPlot(t *testing.T) {
	c := NewCircuit()
	in, out := c.Node("in"), c.Node("out")
	c.AddVSource(in, 0, Step(0, 1, 1e-9))
	c.AddResistor(in, out, 1e3)
	c.AddCapacitor(out, 0, 1e-12, 0)
	res, err := c.Tran(TranOpts{Stop: 5e-9, Step: 50e-12})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb, out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "t,out" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != len(res.Times)+1 {
		t.Errorf("rows = %d, want %d", len(lines)-1, len(res.Times))
	}
	// All recorded nodes variant.
	sb.Reset()
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "t,in,out") {
		t.Errorf("all-node header = %q", strings.SplitN(sb.String(), "\n", 2)[0])
	}
	if err := res.WriteCSV(&sb, 99); err == nil {
		t.Error("unrecorded node should fail")
	}

	plot, err := res.Plot(out, 40, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	runes := []rune(plot)
	if len(runes) != 40 {
		t.Errorf("plot width = %d", len(runes))
	}
	if runes[0] == runes[len(runes)-1] {
		t.Error("a rising waveform should start and end at different levels")
	}
	if _, err := res.Plot(out, 10, 1, 1); err == nil {
		t.Error("bad range should fail")
	}
	if _, err := res.Plot(99, 10, 0, 1); err == nil {
		t.Error("unrecorded node should fail")
	}
}

func TestTranOptionErrors(t *testing.T) {
	c := NewCircuit()
	n := c.Node("a")
	c.AddResistor(n, 0, 1e3)
	if _, err := c.Tran(TranOpts{Stop: 0}); err == nil {
		t.Error("Tran with zero stop time should fail")
	}
}

func TestTrapezoidalBeatsBackwardEulerAtCoarseSteps(t *testing.T) {
	// Same RC step response at a deliberately coarse timestep (tau/10):
	// trapezoidal's second-order accuracy should land markedly closer to
	// the exact 50% crossing than backward Euler.
	build := func() (*Circuit, int) {
		c := NewCircuit()
		in, out := c.Node("in"), c.Node("out")
		c.AddVSource(in, 0, Step(0, 1, 0))
		c.AddResistor(in, out, 1e3)
		c.AddCapacitor(out, 0, 1e-12, 0)
		return c, out
	}
	tau := 1e-9
	exact := tau * math.Ln2
	measure := func(trap bool) float64 {
		c, out := build()
		res, err := c.Tran(TranOpts{Stop: 6e-9, Step: tau / 10, Trapezoidal: trap})
		if err != nil {
			t.Fatal(err)
		}
		t50, err := res.Crossing(out, 0.5, true, 0)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(t50 - exact)
	}
	errBE := measure(false)
	errTrap := measure(true)
	if errTrap >= errBE {
		t.Errorf("trapezoidal error %g should beat backward Euler %g at coarse steps", errTrap, errBE)
	}
	if errTrap > 0.02*tau {
		t.Errorf("trapezoidal error %g too large at tau/10 steps", errTrap)
	}
}

func TestTrapezoidalMOSInverterAgreesWithBE(t *testing.T) {
	// The two integrators must agree on a MOS delay at fine timesteps.
	p := tech.NMOS4()
	measure := func(trap bool) float64 {
		c, in, out := nmosInverter(p, 100e-15, Step(0, p.Vdd, 5e-9))
		res, err := c.Tran(TranOpts{Stop: 100e-9, Step: 20e-12, Trapezoidal: trap})
		if err != nil {
			t.Fatal(err)
		}
		d, err := res.Delay50(in, out, true, false, 0, p.Vdd, 0)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	be, tr := measure(false), measure(true)
	if math.Abs(be-tr) > 0.03*be {
		t.Errorf("BE %g and trapezoidal %g disagree by more than 3%%", be, tr)
	}
}

func TestFromNetlistInverter(t *testing.T) {
	// Build an inverter as a switch-level netlist, convert, and check
	// that the analog behaviour matches the directly-constructed one.
	p := tech.NMOS4()
	nw := netlist.New("inv", p)
	in, out := nw.Node("in"), nw.Node("out")
	nw.MarkInput(in)
	nw.AddTrans(tech.NEnh, in, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 0, 4*p.MinL)
	nw.AddCap(out, 80e-15)
	// Give the depletion pullup several time constants to establish the
	// high level before the input event.
	c, nmap, err := FromNetlist(nw, []InputDrive{{Node: in, W: Step(0, p.Vdd, 60e-9)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Tran(TranOpts{Stop: 200e-9, Step: 50e-12})
	if err != nil {
		t.Fatal(err)
	}
	d, err := res.Delay50(nmap[in.Index], nmap[out.Index], true, false, 0, p.Vdd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.2e-9 || d > 20e-9 {
		t.Errorf("converted inverter delay %g implausible", d)
	}
	// Measurement helpers on the same result.
	tt, err := res.TransitionTime(nmap[out.Index], p.Vdd, 0.3, 60e-9)
	if err != nil {
		t.Fatal(err)
	}
	if tt <= 0 {
		t.Errorf("transition time %g", tt)
	}
	v, err := res.At(nmap[out.Index], 59e-9) // settled high just before the event
	if err != nil || v < p.Vdd-1.2 {
		t.Errorf("At(pre-event) = %g, %v", v, err)
	}
	lo, hi, err := res.MinMax(nmap[out.Index])
	if err != nil || lo >= hi || hi < p.Vdd-1 {
		t.Errorf("MinMax = %g %g, %v", lo, hi, err)
	}
	if c.NodeName(nmap[out.Index]) != "out" || c.NumNodes() < 3 {
		t.Error("node bookkeeping wrong")
	}
}

func TestFromNetlistErrors(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("e", p)
	in := nw.Node("in")
	nw.MarkInput(in)
	if _, _, err := FromNetlist(nw, []InputDrive{{Node: nil}}, nil); err == nil {
		t.Error("nil drive node should fail")
	}
	if _, _, err := FromNetlist(nw, []InputDrive{
		{Node: in, W: DC(0)}, {Node: in, W: DC(1)},
	}, nil); err == nil {
		t.Error("double drive should fail")
	}
}

func TestLinearFastPath(t *testing.T) {
	// A pure RC circuit should take exactly one Newton pass per step.
	c := NewCircuit()
	in, out := c.Node("in"), c.Node("out")
	c.AddVSource(in, 0, Step(0, 1, 0))
	c.AddResistor(in, out, 1e3)
	c.AddCapacitor(out, 0, 1e-12, 0)
	res, err := c.Tran(TranOpts{Stop: 5e-9, Step: 50e-12})
	if err != nil {
		t.Fatal(err)
	}
	// One solve for the initial settle plus one per step.
	if res.NewtonTotal != res.Steps+1 {
		t.Errorf("linear circuit used %d solves for %d steps", res.NewtonTotal, res.Steps)
	}
}

func TestConflictingSourcesSingular(t *testing.T) {
	// Two ideal sources forcing different voltages on the same node make
	// the MNA system inconsistent; the solver must report it rather than
	// return garbage.
	c := NewCircuit()
	n := c.Node("n")
	c.AddVSource(n, 0, DC(1))
	c.AddVSource(n, 0, DC(2))
	if _, err := c.Tran(TranOpts{Stop: 1e-9}); err == nil {
		t.Error("conflicting ideal sources should fail")
	}
}

func TestEmptyCircuitFails(t *testing.T) {
	c := NewCircuit()
	if _, err := c.Tran(TranOpts{Stop: 1e-9}); err == nil {
		t.Error("empty circuit should fail")
	}
}

func TestDevicePanicsOnBadValues(t *testing.T) {
	c := NewCircuit()
	a := c.Node("a")
	for name, f := range map[string]func(){
		"zero resistor":     func() { c.AddResistor(a, 0, 0) },
		"negative cap":      func() { c.AddCapacitor(a, 0, -1e-12, 0) },
		"p-channel in nmos": func() { c.AddMOS(tech.PEnh, a, a, 0, 1e-6, 1e-6, tech.NMOS4()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNewtonBudgetRespected(t *testing.T) {
	// A hard-switching MOS circuit with an absurdly small Newton budget
	// must fail loudly instead of silently mis-converging.
	p := tech.NMOS4()
	c, _, _ := nmosInverter(p, 100e-15, Step(0, p.Vdd, 1e-9))
	if _, err := c.Tran(TranOpts{Stop: 20e-9, MaxNewton: 1}); err == nil {
		t.Error("MaxNewton=1 should fail to converge")
	}
}

func TestFloatingNodeGmin(t *testing.T) {
	// A node connected only through a cut-off transistor must not make
	// the matrix singular thanks to gmin.
	p := tech.NMOS4()
	c := NewCircuit()
	src, gate, out := c.Node("src"), c.Node("gate"), c.Node("out")
	c.AddVSource(src, 0, DC(5))
	c.AddVSource(gate, 0, DC(0)) // transistor off
	c.AddMOS(tech.NEnh, src, gate, out, p.MinW, p.MinL, p)
	c.AddCapacitor(out, 0, 10e-15, 3.0)
	res, err := c.Tran(TranOpts{Stop: 10e-9})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Final(out)
	// The stored charge should persist (gmin leak is negligible at 10ns).
	almost(t, "held charge", v, 3.0, 0.05)
}
