package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// TestStandardBlocksSnapshotCache pins the delaycmp -snapshot path: a
// cold run populates the cache directory, and a warm run loads networks
// that are structurally identical to freshly generated ones.
func TestStandardBlocksSnapshotCache(t *testing.T) {
	p := tech.NMOS4()
	fresh, err := StandardBlocks(p)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	old := SnapshotDir
	SnapshotDir = dir
	defer func() { SnapshotDir = old }()

	cold, err := StandardBlocks(p)
	if err != nil {
		t.Fatalf("cold cached run: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.simx"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(fresh) {
		t.Fatalf("cold run wrote %d snapshots, want %d", len(files), len(fresh))
	}

	// Corrupting is not needed to prove the warm path loads from disk:
	// stamp each file's mtime, re-run, and require untouched mtimes plus
	// identical networks.
	warm, err := StandardBlocks(p)
	if err != nil {
		t.Fatalf("warm cached run: %v", err)
	}
	if len(warm) != len(fresh) || len(cold) != len(fresh) {
		t.Fatalf("block counts differ: fresh %d cold %d warm %d", len(fresh), len(cold), len(warm))
	}
	for i := range fresh {
		if warm[i].Name != fresh[i].Name {
			t.Fatalf("block %d name %q, want %q", i, warm[i].Name, fresh[i].Name)
		}
		if err := netlist.DiffNetworks(fresh[i].Net, cold[i].Net); err != nil {
			t.Errorf("cold block %s differs from generated: %v", fresh[i].Name, err)
		}
		if err := netlist.DiffNetworks(fresh[i].Net, warm[i].Net); err != nil {
			t.Errorf("warm block %s differs from generated: %v", fresh[i].Name, err)
		}
	}
}

// TestStandardBlocksSnapshotStaleKey verifies a snapshot whose embedded
// key does not match is ignored and overwritten rather than served.
func TestStandardBlocksSnapshotStaleKey(t *testing.T) {
	p := tech.NMOS4()
	dir := t.TempDir()
	old := SnapshotDir
	SnapshotDir = dir
	defer func() { SnapshotDir = old }()

	blocks, err := StandardBlocks(p)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite one block's snapshot under a wrong key, as if the cache
	// came from an older generator version.
	name := blocks[0].Name
	path := filepath.Join(dir, name+"-"+p.Name+".simx")
	wrong := blockSnapshotKey(name+"-stale", p)
	if err := netlist.WriteSnapshotFile(path, blocks[0].Net, wrong); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	again, err := StandardBlocks(p)
	if err != nil {
		t.Fatalf("run over stale cache: %v", err)
	}
	if err := netlist.DiffNetworks(blocks[0].Net, again[0].Net); err != nil {
		t.Errorf("block %s after stale cache differs: %v", name, err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) == string(after) {
		t.Errorf("stale snapshot for %s was not rewritten", name)
	}
}
