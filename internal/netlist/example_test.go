package netlist_test

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// ExampleNetwork builds an nMOS inverter by hand and prints its .sim form.
func ExampleNetwork() {
	p := tech.NMOS4()
	nw := netlist.New("inv", p)
	in, out := nw.Node("in"), nw.Node("out")
	nw.MarkInput(in)
	nw.MarkOutput(out)
	nw.AddTrans(tech.NEnh, in, out, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, out, nw.Vdd(), out, 0, 4*p.MinL)
	if err := netlist.WriteSim(os.Stdout, nw); err != nil {
		fmt.Println(err)
	}
	// Output:
	// | units: 1 tech: nmos-4u name: inv
	// e in out GND 400 400
	// d out Vdd out 1600 400
	// @ in in
	// @ out out
}

// ExampleReadSim parses a small netlist and reports its statistics.
func ExampleReadSim() {
	src := `| units: 100 tech: nmos
e in out GND 2 2
d out Vdd out 8 2
r out far 25000
C far GND 120
@ in in
@ out far
`
	nw, err := netlist.ReadSim("example", tech.NMOS4(), strings.NewReader(src))
	if err != nil {
		fmt.Println(err)
		return
	}
	st := nw.Stats()
	fmt.Printf("%d transistors (%d wires), %d nodes, %d input(s), %d output(s)\n",
		st.Trans, st.Wires, st.Nodes, st.Inputs, st.Outputs)
	// Output:
	// 3 transistors (1 wires), 5 nodes, 1 input(s), 1 output(s)
}
