package netlist

// Compact is the compiled structure-of-arrays form of a network: the
// fields the analyzer's event loop reads per event, flattened into dense
// index-keyed arrays. The pointer graph (Node/Trans structs) is the
// construction and reporting representation; the drain loop touches
// millions of events on a chip-scale run, and chasing Node→Gates→Trans
// pointers per event costs more cache misses than the arithmetic it feeds.
// A Compact is a snapshot: compile it after the network is fully built,
// and recompile after edits (generations never mutate a compiled network).
type Compact struct {
	// GateStart/GateRef are the CSR adjacency of gate connections:
	// GateRef[GateStart[r]:GateStart[r+1]] lists the gated devices of the
	// node in ROW r, each packed as trans index << 1 | conductsOn1.
	// Always-on devices (depletion loads, wires) are omitted — they do not
	// respond to their gate, which is exactly the filter the event loop
	// wants predecoded.
	//
	// Rows are the compiled layout order: Perm maps a node index to its
	// row, InvPerm a row back to the node index. With Reorder off the
	// mapping is the identity; with it on, rows follow the reverse
	// Cuthill–McKee walk of the gate/source-drain adjacency (reorder.go),
	// so electrically adjacent nodes share cache lines in every
	// row-indexed array. Results never depend on the layout: callers keep
	// all semantic state (queue order, provenance, reported indexes) in
	// node-index space and translate through Perm only to address rows.
	GateStart []int32
	GateRef   []int32

	// TermStart/TermRef are the CSR adjacency of channel (source/drain)
	// connections: TermRef[TermStart[r]:TermStart[r+1]] lists the devices
	// whose channel touches the node in ROW r, each packed as
	// trans index << 1 | otherIsB, where otherIsB says the far terminal is
	// the device's B node. The switch-level batch simulator walks this CSR
	// to propagate strengths; like GateRef it is row-indexed, and the
	// TransGate/TransA/TransB/TransType columns it refers to are in node-
	// index space (translate through Perm to address rows).
	TermStart []int32
	TermRef   []int32

	// Per-transistor columns: gate and channel terminal node INDEXES and
	// the device type (a tech.Device value), flattened so simulators never
	// chase Trans pointers in an inner loop.
	TransGate []int32
	TransA    []int32
	TransB    []int32
	TransType []uint8

	// Per-row flags the drain's improve/propagate steps test.
	IsRail     []bool
	IsInput    []bool
	Precharged []bool
	// HasTerms marks nodes with at least one channel terminal (an input
	// transition rides through conducting pass devices only if some device
	// touches it).
	HasTerms []bool

	// Perm maps node index -> row; InvPerm maps row -> node index.
	Perm    []int32
	InvPerm []int32
	// Reordered reports whether Perm is a non-identity RCM layout.
	Reordered bool

	// Region maps a NODE INDEX (not a row) to its fence region: the
	// weakly-connected component of the gate graph with rails and
	// input-driven gate edges removed (see reorder.go). Consequences of an
	// event at an internal node stay inside the node's region, which makes
	// regions the independence domains of the speculative drain's span
	// fences. NumRegions counts them (rails are singletons).
	Region     []int32
	NumRegions int
}

// CompileOptions configures compilation.
type CompileOptions struct {
	// Reorder applies the RCM locality permutation to the row layout.
	Reorder bool
}

// PackGateRef packs a gate adjacency entry.
func PackGateRef(transIndex int, conductsOn1 bool) int32 {
	r := int32(transIndex) << 1
	if conductsOn1 {
		r |= 1
	}
	return r
}

// UnpackGateRef unpacks a gate adjacency entry into the transistor index
// and its conduction polarity (true when the device conducts while its
// gate is high).
func UnpackGateRef(r int32) (transIndex int, conductsOn1 bool) {
	return int(r >> 1), r&1 == 1
}

// PackTermRef packs a channel adjacency entry.
func PackTermRef(transIndex int, otherIsB bool) int32 {
	r := int32(transIndex) << 1
	if otherIsB {
		r |= 1
	}
	return r
}

// UnpackTermRef unpacks a channel adjacency entry into the transistor
// index and whether the far terminal is the device's B node.
func UnpackTermRef(r int32) (transIndex int, otherIsB bool) {
	return int(r >> 1), r&1 == 1
}

// Compile builds the compact form of nw in construction order (identity
// layout). Use CompileWith to apply the locality reordering.
func Compile(nw *Network) *Compact {
	return CompileWith(nw, CompileOptions{})
}

// CompileWith builds the compact form of nw under the given options.
func CompileWith(nw *Network, opt CompileOptions) *Compact {
	ord := buildOrder(nw, opt.Reorder)
	c := &Compact{
		GateStart:  make([]int32, len(nw.Nodes)+1),
		IsRail:     make([]bool, len(nw.Nodes)),
		IsInput:    make([]bool, len(nw.Nodes)),
		Precharged: make([]bool, len(nw.Nodes)),
		HasTerms:   make([]bool, len(nw.Nodes)),
		Perm:       ord.perm,
		InvPerm:    ord.inv,
		Reordered:  opt.Reorder,
		Region:     ord.region,
		NumRegions: ord.regions,
	}
	total := 0
	terms := 0
	for _, n := range nw.Nodes {
		for _, t := range n.Gates {
			if !t.AlwaysOn() {
				total++
			}
		}
		terms += len(n.Terms)
	}
	c.GateRef = make([]int32, 0, total)
	c.TermStart = make([]int32, len(nw.Nodes)+1)
	c.TermRef = make([]int32, 0, terms)
	for row := range nw.Nodes {
		n := nw.Nodes[ord.inv[row]]
		c.GateStart[row] = int32(len(c.GateRef))
		for _, t := range n.Gates {
			if t.AlwaysOn() {
				continue
			}
			c.GateRef = append(c.GateRef, PackGateRef(t.Index, t.ConductsOn() == 1))
		}
		c.TermStart[row] = int32(len(c.TermRef))
		for _, t := range n.Terms {
			c.TermRef = append(c.TermRef, PackTermRef(t.Index, t.A == n))
		}
		c.IsRail[row] = n.IsRail()
		c.IsInput[row] = n.Kind == KindInput
		c.Precharged[row] = n.Precharged
		c.HasTerms[row] = len(n.Terms) > 0
	}
	c.GateStart[len(nw.Nodes)] = int32(len(c.GateRef))
	c.TermStart[len(nw.Nodes)] = int32(len(c.TermRef))
	c.TransGate = make([]int32, len(nw.Trans))
	c.TransA = make([]int32, len(nw.Trans))
	c.TransB = make([]int32, len(nw.Trans))
	c.TransType = make([]uint8, len(nw.Trans))
	for i, t := range nw.Trans {
		c.TransGate[i] = int32(t.Gate.Index)
		c.TransA[i] = int32(t.A.Index)
		c.TransB[i] = int32(t.B.Index)
		c.TransType[i] = uint8(t.Type)
	}
	return c
}

// Gates returns the packed gate refs of node index n (translating through
// the row permutation).
func (c *Compact) Gates(n int) []int32 {
	r := c.Perm[n]
	return c.GateRef[c.GateStart[r]:c.GateStart[r+1]]
}

// Terms returns the packed channel refs of node index n (translating
// through the row permutation).
func (c *Compact) Terms(n int) []int32 {
	r := c.Perm[n]
	return c.TermRef[c.TermStart[r]:c.TermStart[r+1]]
}

// Row returns the compiled row of node index n.
func (c *Compact) Row(n int) int { return int(c.Perm[n]) }
