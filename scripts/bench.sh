#!/bin/sh
# Runs the two headline benchmarks (E2 accuracy suite, E6 chip-scale
# analysis) three times each and writes BENCH_1.json: the fresh runs plus
# the pinned pre-optimization baseline, so the speedup is always visible
# in one file. Then runs the incremental re-analysis benchmark and writes
# BENCH_2.json with the incremental-vs-full speedup, the worker-scaling
# sweep into BENCH_3.json, and the ingest (parse/snapshot) throughput
# record into BENCH_4.json. The scaling sweeps refuse to run on a
# single-CPU box unless BENCH_ALLOW_SINGLE_CPU=1, and are then stamped
# degenerate — see the guard below. Usage: scripts/bench.sh (from the
# repo root, or via `make bench`).
set -e
cd "$(dirname "$0")/.."

OUT=BENCH_1.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkE2ModelAccuracy$|BenchmarkE6ChipScale$' \
    -benchtime 1x -count 3 . | tee "$RAW"

# Baseline ns/op: median of three runs measured at the seed commit (pre
# stage-database / allocation work) on this repository's 1-CPU reference
# runner. Update only when re-measuring the seed on comparable hardware.
awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    runs[name] = runs[name] $3 ","
}
END {
    base["BenchmarkE2ModelAccuracy"] = 97119436
    base["BenchmarkE6ChipScale"]     = 3390569021
    printf "{\n  \"benchmarks\": {\n"
    first = 1
    for (name in runs) {
        sub(/,$/, "", runs[name])
        n = split(runs[name], r, ",")
        # median of the runs (sorted)
        for (i = 1; i < n; i++)
            for (j = i + 1; j <= n; j++)
                if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
        med = r[int((n + 1) / 2)]
        if (!first) printf ",\n"
        first = 0
        printf "    \"%s\": {\n", name
        printf "      \"baseline_ns_op\": %.0f,\n", base[name]
        printf "      \"runs_ns_op\": [%s],\n", runs[name]
        printf "      \"median_ns_op\": %s,\n", med
        printf "      \"speedup_vs_baseline\": %.2f\n", base[name] / med
        printf "    }"
    }
    printf "\n  }\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
cat "$OUT"

# BENCH_2.json: incremental re-analysis vs from-scratch at chip scale.
# BenchmarkE6Incremental edits ~1% of the E6 chip (datapath + multiplier +
# adder + PLA) per iteration and reports the measured full-run baseline,
# the dirty fraction, and the incremental speedup.
OUT2=BENCH_2.json
go test -run '^$' -bench 'BenchmarkE6Incremental$' \
    -benchtime 3x -count 3 . | tee "$RAW"

awk '
/^BenchmarkE6Incremental/ {
    ns = ns $3 ","
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "%dirty")          dirty = dirty $i ","
        if ($(i + 1) == "speedup-vs-full") spd = spd $i ","
    }
}
function median(csv,   r, n, i, j, t) {
    sub(/,$/, "", csv)
    n = split(csv, r, ",")
    for (i = 1; i < n; i++)
        for (j = i + 1; j <= n; j++)
            if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
    return r[int((n + 1) / 2)]
}
END {
    sub(/,$/, "", ns); sub(/,$/, "", dirty); sub(/,$/, "", spd)
    printf "{\n  \"benchmarks\": {\n"
    printf "    \"BenchmarkE6Incremental\": {\n"
    printf "      \"runs_ns_op\": [%s],\n", ns
    printf "      \"median_ns_op\": %s,\n", median(ns)
    printf "      \"dirty_pct\": %s,\n", median(dirty)
    printf "      \"speedup_incremental_vs_full\": %s\n", median(spd)
    printf "    }\n  }\n}\n"
}' "$RAW" > "$OUT2"

echo "wrote $OUT2"
cat "$OUT2"

# Scaling sweeps (BENCH_3, BENCH_4) are meaningless on one CPU: every
# workers>1 row then measures pure coordination overhead, and a reader
# comparing rows would conclude parallelism is a regression. Run the
# sweeps under GOMAXPROCS=nproc explicitly, and when that is still 1,
# refuse unless BENCH_ALLOW_SINGLE_CPU=1 — in which case every emitted
# JSON is stamped "degenerate_single_cpu": true so the numbers cannot be
# mistaken for a scaling record.
procs=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)
sweep_procs=${GOMAXPROCS:-$procs}
degenerate=false
if [ "$sweep_procs" = 1 ]; then
    degenerate=true
    if [ "${BENCH_ALLOW_SINGLE_CPU:-0}" != 1 ]; then
        echo "bench.sh: REFUSING the worker-scaling sweeps: GOMAXPROCS=$sweep_procs." >&2
        echo "bench.sh: workers>1 rows on one CPU measure overhead, not scaling." >&2
        echo "bench.sh: set BENCH_ALLOW_SINGLE_CPU=1 to record anyway (annotated as degenerate)." >&2
        exit 1
    fi
    echo "bench.sh: WARNING: GOMAXPROCS=1 — scaling sweeps are degenerate;" >&2
    echo "bench.sh: WARNING: annotating BENCH_3/BENCH_4 with degenerate_single_cpu=true." >&2
fi

# BENCH_3.json: single-run scaling of the parallel intra-run drain.
# BenchmarkE6ChipScaleWorkers analyzes the same chip at 1, 2, 4 and
# GOMAXPROCS workers (deduplicated); results are bit-identical at every
# count, so the sweep isolates wall-clock scaling of the speculate/commit
# drain. On a single-core runner the >1 rows measure pure speculation
# overhead — see docs/PERFORMANCE.md, "Single-run scaling".
OUT3=BENCH_3.json
GOMAXPROCS=$sweep_procs go test -run '^$' -bench 'BenchmarkE6ChipScaleWorkers' \
    -benchtime 1x -count 3 . | tee "$RAW"

awk '
/^BenchmarkE6ChipScaleWorkers\// {
    name = $1
    sub(/^BenchmarkE6ChipScaleWorkers\//, "", name)
    sub(/-[0-9]+$/, "", name)
    sub(/^workers=/, "", name)
    runs[name] = runs[name] $3 ","
    if (!(name in seen)) { order[++nw] = name; seen[name] = 1 }
}
function median(csv,   r, n, i, j, t) {
    sub(/,$/, "", csv)
    n = split(csv, r, ",")
    for (i = 1; i < n; i++)
        for (j = i + 1; j <= n; j++)
            if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
    return r[int((n + 1) / 2)]
}
END {
    base = median(runs[order[1]])
    printf "{\n  \"benchmark\": \"BenchmarkE6ChipScaleWorkers\",\n"
    printf "  \"gomaxprocs\": %s,\n", procs
    printf "  \"degenerate_single_cpu\": %s,\n", degenerate
    printf "  \"workers\": {\n"
    for (i = 1; i <= nw; i++) {
        w = order[i]
        csv = runs[w]
        sub(/,$/, "", csv)
        med = median(runs[w])
        printf "    \"%s\": {\n", w
        printf "      \"runs_ns_op\": [%s],\n", csv
        printf "      \"median_ns_op\": %s,\n", med
        printf "      \"scaling_vs_1_worker\": %.2f\n", base / med
        printf "    }%s\n", i < nw ? "," : ""
    }
    printf "  }\n}\n"
}' procs="$sweep_procs" degenerate="$degenerate" "$RAW" > "$OUT3"

echo "wrote $OUT3"
cat "$OUT3"

# BENCH_4.json: ingest throughput. BenchmarkIngestParse measures the cold
# half of the pipeline (parse + structural check, the work LoadSimFile
# does on a cache miss) serially and at increasing parallel-parser worker
# counts; BenchmarkIngestSnapshotLoad measures the warm half (decoding
# the binary .simx snapshot that replaces the parse). The headline
# ratios: parallel parse speedup at the widest worker count, and
# snapshot-load speedup over the serial parse.
OUT4=BENCH_4.json
GOMAXPROCS=$sweep_procs go test -run '^$' \
    -bench 'BenchmarkIngestParse|BenchmarkIngestSnapshotLoad' \
    -benchtime 10x -count 3 . | tee "$RAW"

awk '
/^BenchmarkIngestParse\// {
    name = $1
    sub(/^BenchmarkIngestParse\/workers=/, "", name)
    sub(/-[0-9]+$/, "", name)
    runs[name] = runs[name] $3 ","
    if (!(name in seen)) { order[++nw] = name; seen[name] = 1 }
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "MB/s")          mbs[name] = mbs[name] $i ","
        if ($(i + 1) == "ns/transistor") nst[name] = nst[name] $i ","
    }
}
/^BenchmarkIngestSnapshotLoad/ {
    sruns = sruns $3 ","
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "MB/s")          smbs = smbs $i ","
        if ($(i + 1) == "ns/transistor") snst = snst $i ","
    }
}
function median(csv,   r, n, i, j, t) {
    sub(/,$/, "", csv)
    n = split(csv, r, ",")
    for (i = 1; i < n; i++)
        for (j = i + 1; j <= n; j++)
            if (r[j] + 0 < r[i] + 0) { t = r[i]; r[i] = r[j]; r[j] = t }
    return r[int((n + 1) / 2)]
}
END {
    serial = median(runs["1"])
    widest = order[nw]
    printf "{\n  \"benchmark\": \"ingest\",\n"
    printf "  \"gomaxprocs\": %s,\n", procs
    printf "  \"degenerate_single_cpu\": %s,\n", degenerate
    printf "  \"parse_workers\": {\n"
    for (i = 1; i <= nw; i++) {
        w = order[i]
        csv = runs[w]
        sub(/,$/, "", csv)
        printf "    \"%s\": {\n", w
        printf "      \"runs_ns_op\": [%s],\n", csv
        printf "      \"median_ns_op\": %s,\n", median(runs[w])
        printf "      \"mb_per_s\": %s,\n", median(mbs[w])
        printf "      \"ns_per_transistor\": %s,\n", median(nst[w])
        printf "      \"speedup_vs_serial\": %.2f\n", serial / median(runs[w])
        printf "    }%s\n", i < nw ? "," : ""
    }
    printf "  },\n"
    printf "  \"snapshot_load\": {\n"
    scsv = sruns
    sub(/,$/, "", scsv)
    printf "    \"runs_ns_op\": [%s],\n", scsv
    printf "    \"median_ns_op\": %s,\n", median(sruns)
    printf "    \"mb_per_s\": %s,\n", median(smbs)
    printf "    \"ns_per_transistor\": %s\n", median(snst)
    printf "  },\n"
    printf "  \"parallel_parse_speedup_at_%s_workers\": %.2f,\n", widest, serial / median(runs[widest])
    printf "  \"snapshot_speedup_vs_serial_parse\": %.2f\n", serial / median(sruns)
    printf "}\n"
}' procs="$sweep_procs" degenerate="$degenerate" "$RAW" > "$OUT4"

echo "wrote $OUT4"
cat "$OUT4"
