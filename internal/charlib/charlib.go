// Package charlib characterizes switch-level delay tables against the
// analog reference simulator, reproducing the paper's workflow: for each
// device type and output transition, a small fixture circuit is driven
// with input ramps of increasing duration; the measured 50% delays define
// the step-input effective resistance and the slope-ratio multiplier
// curves the Slope model interpolates at analysis time.
//
// Fixtures (all capacitively loaded with a known C, so R = t50/C):
//
//	NEnh fall — discharge: cap at Vdd, n-device to GND, gate ramps up.
//	NEnh rise — pass-high: cap at 0, n-device to Vdd, gate ramps up
//	            (output saturates a threshold below Vdd, as in silicon).
//	NDep rise — nMOS inverter: 4:1 depletion pullup vs minimum pulldown,
//	            input ramps down, output rises. The pulldown fight is
//	            part of the curve, as it is in every real nMOS gate.
//	NDep fall — depletion pass device discharging the load (step only:
//	            no gate event exists for an always-on device).
//	PEnh rise — CMOS inverter: input ramps down, p-device charges load.
//	PEnh fall — pass-low: cap at Vdd, p-device to GND, gate ramps down
//	            (output saturates a threshold above GND).
package charlib

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/analog"
	"repro/internal/delay"
	"repro/internal/tech"
)

// Options tunes a characterization run.
type Options struct {
	// Ratios are the slope-ratio sample points; the default is
	// {0, 0.5, 1, 2, 4, 8, 16, 32}. A leading 0 is added if missing.
	Ratios []float64
	// Load is the fixture load capacitance in farads (default 100 fF).
	Load float64
}

func (o Options) fill() Options {
	if len(o.Ratios) == 0 {
		o.Ratios = []float64{0, 0.5, 1, 2, 4, 8, 16, 32}
	}
	if o.Ratios[0] != 0 {
		o.Ratios = append([]float64{0}, o.Ratios...)
	}
	if o.Load <= 0 {
		o.Load = 100e-15
	}
	return o
}

// fixture describes one measurable configuration.
type fixture struct {
	dev tech.Device
	tr  tech.Transition
	// build wires the circuit for an input ramp of duration tin starting
	// at t0, and returns (input node, output node, sign of output move).
	build func(c *analog.Circuit, p *tech.Params, load, t0, tin float64) (in, out int, rising bool)
	// wOverL of the characterized device, to convert measured R to Ω/sq.
	wOverL float64
}

func fixtures(p *tech.Params) []fixture {
	fs := []fixture{
		{
			dev: tech.NEnh, tr: tech.Fall, wOverL: 1,
			build: func(c *analog.Circuit, p *tech.Params, load, t0, tin float64) (int, int, bool) {
				// Full inverter, not a bare pulldown: every real gate's
				// pulldown fights its load device during the input
				// transition, and that fight is what makes the slope
				// curve monotone at large ratios.
				in, out, vdd := c.Node("in"), c.Node("out"), c.Node("vdd")
				c.AddVSource(vdd, 0, analog.DC(p.Vdd))
				c.AddVSource(in, 0, analog.Ramp(0, p.Vdd, t0, tin))
				c.AddMOS(tech.NEnh, out, in, 0, p.MinW, p.MinL, p)
				if p.HasPChannel() {
					c.AddMOS(tech.PEnh, out, in, vdd, 2*p.MinW, p.MinL, p)
				} else {
					c.AddMOS(tech.NDep, vdd, out, out, p.MinW, 4*p.MinL, p)
				}
				c.AddCapacitor(out, 0, load, p.Vdd)
				return in, out, false
			},
		},
		{
			dev: tech.NEnh, tr: tech.Rise, wOverL: 1,
			build: func(c *analog.Circuit, p *tech.Params, load, t0, tin float64) (int, int, bool) {
				in, out, vdd := c.Node("in"), c.Node("out"), c.Node("vdd")
				c.AddVSource(vdd, 0, analog.DC(p.Vdd))
				c.AddVSource(in, 0, analog.Ramp(0, p.Vdd, t0, tin))
				c.AddMOS(tech.NEnh, vdd, in, out, p.MinW, p.MinL, p)
				c.AddCapacitor(out, 0, load, 0)
				return in, out, true
			},
		},
		{
			dev: tech.NDep, tr: tech.Rise, wOverL: 0.25,
			build: func(c *analog.Circuit, p *tech.Params, load, t0, tin float64) (int, int, bool) {
				in, out, vdd := c.Node("in"), c.Node("out"), c.Node("vdd")
				c.AddVSource(vdd, 0, analog.DC(p.Vdd))
				c.AddVSource(in, 0, analog.Ramp(p.Vdd, 0, t0, tin))
				c.AddMOS(tech.NEnh, out, in, 0, p.MinW, p.MinL, p)
				c.AddMOS(tech.NDep, vdd, out, out, p.MinW, 4*p.MinL, p)
				// Start at the inverter's logic-low level; the settle
				// phase before t0 pins it there anyway.
				c.AddCapacitor(out, 0, load, 0.3)
				return in, out, true
			},
		},
		{
			dev: tech.NDep, tr: tech.Fall, wOverL: 1,
			build: func(c *analog.Circuit, p *tech.Params, load, t0, tin float64) (int, int, bool) {
				in, out := c.Node("in"), c.Node("out")
				// Depletion pass device: gate grounded, always on.
				// Input steps low; the device drags the load down.
				c.AddVSource(in, 0, analog.Ramp(p.Vdd, 0, t0, tin))
				c.AddMOS(tech.NDep, in, 0, out, p.MinW, p.MinL, p)
				c.AddCapacitor(out, 0, load, p.Vdd)
				return in, out, false
			},
		},
	}
	if p.HasPChannel() {
		fs = append(fs,
			fixture{
				dev: tech.PEnh, tr: tech.Rise, wOverL: 2,
				build: func(c *analog.Circuit, p *tech.Params, load, t0, tin float64) (int, int, bool) {
					in, out, vdd := c.Node("in"), c.Node("out"), c.Node("vdd")
					c.AddVSource(vdd, 0, analog.DC(p.Vdd))
					c.AddVSource(in, 0, analog.Ramp(p.Vdd, 0, t0, tin))
					c.AddMOS(tech.NEnh, out, in, 0, p.MinW, p.MinL, p)
					c.AddMOS(tech.PEnh, out, in, vdd, 2*p.MinW, p.MinL, p)
					c.AddCapacitor(out, 0, load, 0)
					return in, out, true
				},
			},
			fixture{
				dev: tech.PEnh, tr: tech.Fall, wOverL: 2,
				build: func(c *analog.Circuit, p *tech.Params, load, t0, tin float64) (int, int, bool) {
					in, out := c.Node("in"), c.Node("out")
					c.AddVSource(in, 0, analog.Ramp(p.Vdd, 0, t0, tin))
					c.AddMOS(tech.PEnh, out, in, 0, 2*p.MinW, p.MinL, p)
					c.AddCapacitor(out, 0, load, p.Vdd)
					return in, out, false
				},
			},
		)
	}
	return fs
}

// measure runs one fixture at one input ramp duration and returns the 50%
// delay from the input's mid-crossing (or ramp start for a step) to the
// output's mid-crossing, plus the output's 10–90% transition time.
func measure(fx fixture, p *tech.Params, load, tin, guessTau float64) (t50, t1090 float64, err error) {
	c := analog.NewCircuit()
	// Start the event after a settle period so initial conditions relax.
	t0 := 4 * guessTau
	in, out, rising := fx.build(c, p, load, t0, tin)
	stop := t0 + tin + 40*guessTau
	res, err := c.Tran(analog.TranOpts{
		Stop:   stop,
		Step:   stop / 6000,
		Record: []int{in, out},
	})
	if err != nil {
		return 0, 0, fmt.Errorf("charlib %s/%s tin=%g: %w", fx.dev, fx.tr, tin, err)
	}
	mid := p.Vdd / 2
	tref := t0
	if tin > 0 {
		inRising := true
		v0, _ := res.At(in, 0)
		if v0 > mid {
			inRising = false
		}
		tref, err = res.Crossing(in, mid, inRising, 0)
		if err != nil {
			return 0, 0, fmt.Errorf("charlib %s/%s: input crossing: %w", fx.dev, fx.tr, err)
		}
	}
	tcross, err := res.Crossing(out, mid, rising, t0)
	if err != nil {
		return 0, 0, fmt.Errorf("charlib %s/%s tin=%g: output crossing: %w", fx.dev, fx.tr, tin, err)
	}
	t50 = tcross - tref

	// Output transition time between its actual initial and final levels
	// (pass configurations do not reach the full rail).
	vstart, _ := res.At(out, t0)
	vend, _ := res.Final(out)
	t1090, err = res.TransitionTime(out, vstart, vend, t0)
	if err != nil {
		return t50, 0, fmt.Errorf("charlib %s/%s tin=%g: transition: %w", fx.dev, fx.tr, tin, err)
	}
	return t50, t1090, nil
}

// Characterize measures delay tables for technology p against the analog
// reference. The returned tables have Source == "characterized".
func Characterize(p *tech.Params, opt Options) (*delay.Tables, error) {
	opt = opt.fill()
	tb := &delay.Tables{Source: "characterized", Tech: p.Name}
	for _, fx := range fixtures(p) {
		// Rough scale for simulation windows from the rule-of-thumb R.
		guessTau := p.RSquare(fx.dev, fx.tr) / fx.wOverL * opt.Load
		if guessTau <= 0 {
			guessTau = 10e-9
		}
		// Step-input baseline.
		t50step, t1090step, err := measure(fx, p, opt.Load, 0, guessTau)
		if err != nil {
			return nil, err
		}
		if t50step <= 0 {
			return nil, fmt.Errorf("charlib %s/%s: non-positive step delay %g", fx.dev, fx.tr, t50step)
		}
		// Effective resistance of the fixture device: R = t50/C, and
		// Ω/sq = R·(W/L).
		tb.RSquare[fx.dev][fx.tr] = t50step / opt.Load * fx.wOverL

		curve := delay.Curve{}
		for _, ratio := range opt.Ratios {
			tin := ratio * t50step
			t50, t1090, err := measure(fx, p, opt.Load, tin, guessTau)
			if err != nil {
				return nil, err
			}
			curve.Ratio = append(curve.Ratio, ratio)
			curve.RMult = append(curve.RMult, t50/t50step)
			curve.TFactor = append(curve.TFactor, t1090/t50step)
		}
		// Normalize the step point exactly to 1 (it is by construction,
		// modulo measurement noise).
		curve.RMult[0] = 1
		if t1090step > 0 {
			curve.TFactor[0] = t1090step / t50step
		}
		tb.Curves[fx.dev][fx.tr] = curve
	}
	// Devices with no fixture (e.g. p-channel in an nMOS process) keep
	// zero resistance entries, matching the technology's capabilities.
	if err := tb.Validate(); err != nil {
		return nil, fmt.Errorf("charlib: produced invalid tables: %w", err)
	}
	return tb, nil
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*delay.Tables{}
)

// Default returns characterization tables for p, running the measurement
// once per technology per process and caching the result. It falls back
// to analytic tables (with an error returned alongside) if
// characterization fails, so callers can degrade gracefully.
func Default(p *tech.Params) (*delay.Tables, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if tb, ok := cache[p.Name]; ok {
		return tb, nil
	}
	tb, err := Characterize(p, Options{})
	if err != nil {
		return delay.AnalyticTables(p), err
	}
	cache[p.Name] = tb
	return tb, nil
}

// RelErr is a small helper for experiment reports: (got-ref)/ref as a
// percentage, guarded against zero references.
func RelErr(got, ref float64) float64 {
	if ref == 0 {
		return math.Inf(1)
	}
	return (got - ref) / ref * 100
}
