package core

import (
	"fmt"
	"testing"

	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/netlist"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// parallelFamilies are the circuit families the drain-identity tests sweep:
// gate-load dominated (ALU), deep carry relaxation (RippleAdder), pass-
// transistor channels (PassChain), precharged dynamic logic (PrechargedBus),
// the chip-scale mix with loop-break directives, and the same chip without
// them — combinational feedback that trips the guard, pinning Unbounded
// bookkeeping order.
func parallelFamilies(t *testing.T, p *tech.Params) []struct {
	name string
	nw   *netlist.Network
	fix  map[string]string
	lb   []string
} {
	t.Helper()
	mk := func(nw *netlist.Network, err error) *netlist.Network {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}
	chipFix, chipLB := gen.ChipDirectives(4)
	return []struct {
		name string
		nw   *netlist.Network
		fix  map[string]string
		lb   []string
	}{
		{"alu", mk(gen.ALU(p, 4)), nil, nil},
		{"ripple", mk(gen.RippleAdder(p, 8)), nil, nil},
		{"passchain", mk(gen.PassChain(p, 8)), nil, nil},
		{"precharged", mk(gen.PrechargedBus(p, 8)), nil, nil},
		{"chip", mk(gen.Chip(p, 4)), chipFix, chipLB},
		{"chip-feedback", mk(gen.Chip(p, 4)), chipFix, nil},
	}
}

func buildAnalyzer(t *testing.T, nw *netlist.Network, m delay.Model,
	fix map[string]string, lb []string, opts Options) *Analyzer {
	t.Helper()
	for _, name := range lb {
		n := nw.Lookup(name)
		if n == nil {
			t.Fatalf("directive node %s missing", name)
		}
		opts.LoopBreak = append(opts.LoopBreak, n)
	}
	a := New(nw, m, opts)
	for name, v := range fix {
		a.SetFixed(nw.Lookup(name), switchsim.FromBool(v == "1"))
	}
	for _, in := range nw.Inputs() {
		if _, ok := fix[in.Name]; ok {
			continue
		}
		a.SetInputEvent(in, tech.Rise, 0, 0)
		a.SetInputEvent(in, tech.Fall, 0, 0)
	}
	return a
}

// requireIdentical asserts every observable of two finished analyses
// matches bit for bit: arrivals (time, slope, provenance — including the
// Via stage pointer when both share one database), feedback-guard verdicts
// in order, truncation, and the evaluation count.
func requireIdentical(t *testing.T, label string, want, got *Analyzer, sameDB bool) {
	t.Helper()
	for _, n := range want.Net.Nodes {
		for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
			w, g := want.Arrival(n, tr), got.Arrival(n, tr)
			if !sameEvent(w, g) {
				t.Fatalf("%s: arrival %s/%s = %+v, want %+v", label, n.Name, tr, g, w)
			}
			if sameDB && w.Via != g.Via {
				t.Fatalf("%s: provenance %s/%s via %p, want %p", label, n.Name, tr, g.Via, w.Via)
			}
		}
	}
	if len(want.Unbounded) != len(got.Unbounded) {
		t.Fatalf("%s: %d unbounded nodes, want %d", label, len(got.Unbounded), len(want.Unbounded))
	}
	for i := range want.Unbounded {
		if want.Unbounded[i].Index != got.Unbounded[i].Index {
			t.Fatalf("%s: unbounded[%d] = %s, want %s", label,
				i, got.Unbounded[i].Name, want.Unbounded[i].Name)
		}
	}
	if want.Truncated != got.Truncated {
		t.Fatalf("%s: truncated = %v, want %v", label, got.Truncated, want.Truncated)
	}
	if want.StagesEvaluated() != got.StagesEvaluated() {
		t.Fatalf("%s: %d stages evaluated, want %d",
			label, got.StagesEvaluated(), want.StagesEvaluated())
	}
}

// TestParallelDrainIdentity pins the tentpole guarantee: the speculative
// parallel drain produces bit-identical results to the strict serial loop
// at every worker count, across every circuit family. The shared-database
// variant also requires identical Via provenance pointers — the parallel
// commit must apply the exact stage objects the serial run applies.
func TestParallelDrainIdentity(t *testing.T) {
	p := tech.NMOS4()
	m := delay.NewSlope(delay.AnalyticTables(p))
	for _, fam := range parallelFamilies(t, p) {
		t.Run(fam.name, func(t *testing.T) {
			base := buildAnalyzer(t, fam.nw, m, fam.fix, fam.lb, Options{Workers: 1})
			if err := base.Run(); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				// Shared database: Via pointers must match exactly.
				a := buildAnalyzer(t, fam.nw, m, fam.fix, fam.lb,
					Options{Workers: workers, DB: base.StageDB()})
				if err := a.Run(); err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, fmt.Sprintf("workers=%d shared", workers), base, a, true)

				// Private database: same arrivals from a cold enumeration.
				a = buildAnalyzer(t, fam.nw, m, fam.fix, fam.lb, Options{Workers: workers})
				if err := a.Run(); err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, fmt.Sprintf("workers=%d private", workers), base, a, false)
			}
		})
	}
}

// TestParallelDrainIdentityAllModels sweeps the three delay models at one
// worker count — the speculation path evaluates the model concurrently, so
// each model's memoization must be race-free and value-identical.
func TestParallelDrainIdentityAllModels(t *testing.T) {
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	nw, err := gen.ALU(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		m    delay.Model
	}{
		{"lumped", delay.NewLumped(tb)},
		{"rc", delay.NewRC(tb)},
		{"slope", delay.NewSlope(tb)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := buildAnalyzer(t, nw, tc.m, nil, nil, Options{Workers: 1})
			if err := base.Run(); err != nil {
				t.Fatal(err)
			}
			a := buildAnalyzer(t, nw, tc.m, nil, nil, Options{Workers: 4})
			if err := a.Run(); err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, "workers=4", base, a, false)
		})
	}
}

// TestParallelDrainIdentityChipScale runs the full E6 experiment circuit
// (Chip at width 32, the benchmark workload) through the parallel drain —
// the scale where frontier batches actually fill up and preemption and
// staleness churn occur in volume.
func TestParallelDrainIdentityChipScale(t *testing.T) {
	if testing.Short() {
		t.Skip("chip-scale identity sweep skipped in -short")
	}
	p := tech.NMOS4()
	m := delay.NewSlope(delay.AnalyticTables(p))
	nw, err := gen.Chip(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	fix, lb := gen.ChipDirectives(32)
	base := buildAnalyzer(t, nw, m, fix, lb, Options{Workers: 1})
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	a := buildAnalyzer(t, nw, m, fix, lb, Options{Workers: 8, DB: base.StageDB()})
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "workers=8 shared", base, a, true)
}

// TestParallelReanalyzeIdentity drains incremental re-analysis through the
// parallel scheduler: boundary replay items are merged into the frontier,
// so their candidate generation must follow the same global order as the
// serial merge. Each edit epoch is checked against a serial analyzer
// applying the same batch.
func TestParallelReanalyzeIdentity(t *testing.T) {
	p := tech.NMOS4()
	m := delay.NewSlope(delay.AnalyticTables(p))
	fix, lb := gen.ChipDirectives(4)

	mkNet := func() *netlist.Network {
		nw, err := gen.Chip(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}
	serial := buildAnalyzer(t, mkNet(), m, fix, lb, Options{Workers: 1})
	parallel := buildAnalyzer(t, mkNet(), m, fix, lb, Options{Workers: 4})
	if err := serial.Run(); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Run(); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "initial run", serial, parallel, false)

	for epoch := 0; epoch < 4; epoch++ {
		idx := (11 * epoch) % len(serial.Net.Trans)
		for serial.Net.Trans[idx].IsWire() {
			idx = (idx + 1) % len(serial.Net.Trans)
		}
		edits := []incremental.Edit{
			{Kind: incremental.Resize, Index: idx, W: float64(3+epoch) * 1e-6},
		}
		ss, err := serial.Reanalyze(edits)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := parallel.Reanalyze(edits)
		if err != nil {
			t.Fatal(err)
		}
		if ss.Full != ps.Full || ss.DirtyNodes != ps.DirtyNodes ||
			ss.StagesEvaluated != ps.StagesEvaluated {
			t.Fatalf("epoch %d: stats diverge: serial %+v, parallel %+v", epoch, ss, ps)
		}
		requireIdentical(t, fmt.Sprintf("epoch %d", epoch), serial, parallel, false)
	}
}
