package rctree

import (
	"math"
	"testing"
	"testing/quick"
)

// chain builds a uniform n-section RC ladder.
func chain(n int, r, c float64) *Tree {
	t := New(0, "root")
	parent := 0
	for i := 0; i < n; i++ {
		parent = t.Add(parent, r, c, "")
	}
	return t
}

func TestSingleLumpExact(t *testing.T) {
	tr := New(0, "root")
	leaf := tr.Add(0, 1e3, 1e-12, "leaf")
	k := tr.ConstantsAt(leaf)
	tau := 1e-9
	for name, got := range map[string]float64{"TP": k.TP, "TDe": k.TDe, "TRe": k.TRe} {
		if math.Abs(got-tau) > 1e-18 {
			t.Errorf("%s = %g, want %g", name, got, tau)
		}
	}
	lo, hi := tr.DelayBounds(leaf, 0.5)
	want := tau * math.Ln2
	if math.Abs(lo-want) > 1e-15 || math.Abs(hi-want) > 1e-15 {
		t.Errorf("bounds [%g, %g], want both %g (single pole is exact)", lo, hi, want)
	}
}

func TestTwoSectionLadderConstants(t *testing.T) {
	// R=R, C=C per section: TDe = 3RC, TP = 3RC, TRe = 2.5RC at the end.
	tr := chain(2, 1e3, 1e-12)
	k := tr.ConstantsAt(2)
	rc := 1e-9
	if math.Abs(k.TDe-3*rc) > 1e-15 {
		t.Errorf("TDe = %g, want %g", k.TDe, 3*rc)
	}
	if math.Abs(k.TP-3*rc) > 1e-15 {
		t.Errorf("TP = %g, want %g", k.TP, 3*rc)
	}
	if math.Abs(k.TRe-2.5*rc) > 1e-15 {
		t.Errorf("TRe = %g, want %g", k.TRe, 2.5*rc)
	}
}

func TestBranchingTreeElmore(t *testing.T) {
	// root -R1- a(C1); a -R2- b(C2); a -R3- c(C3). Elmore at b must see
	// C3 only through the shared R1.
	tr := New(0, "root")
	a := tr.Add(0, 1e3, 1e-12, "a")
	b := tr.Add(a, 2e3, 2e-12, "b")
	tr.Add(a, 3e3, 3e-12, "c")
	want := 1e3*(1e-12+2e-12+3e-12) + 2e3*2e-12
	if got := tr.Elmore(b); math.Abs(got-want) > 1e-18 {
		t.Errorf("Elmore(b) = %g, want %g", got, want)
	}
}

func TestElmoreAllMatchesElmore(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		tr := randomTree(seed, 20)
		all := tr.ElmoreAll()
		for i := 0; i < tr.Len(); i++ {
			if math.Abs(all[i]-tr.Elmore(i)) > 1e-9*math.Abs(all[i])+1e-18 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

// randomTree builds a deterministic pseudo-random tree from a seed.
func randomTree(seed int64, n int) *Tree {
	s := uint64(seed)*2654435761 + 12345
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	f := func() float64 { return float64(next()>>11) / float64(1<<53) }
	tr := New(10e-15+f()*90e-15, "root")
	for i := 1; i < n; i++ {
		parent := int(next() % uint64(i))
		tr.Add(parent, 1e3+9e3*f(), 10e-15+90e-15*f(), "")
	}
	return tr
}

func TestConstantsOrderingProperty(t *testing.T) {
	// RPH: TRe ≤ TDe ≤ TP for every node of every tree.
	err := quick.Check(func(seed int64) bool {
		tr := randomTree(seed, 25)
		for e := 1; e < tr.Len(); e++ {
			k := tr.ConstantsAt(e)
			tol := 1e-12 * k.TP
			if k.TRe > k.TDe+tol || k.TDe > k.TP+tol {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestBoundsOrderingProperty(t *testing.T) {
	// lower ≤ Elmore-based estimate ≤ upper at v = 1-1/e, where the
	// single-pole estimate is exactly TDe.
	v := 1 - 1/math.E
	err := quick.Check(func(seed int64) bool {
		tr := randomTree(seed, 15)
		for _, leaf := range tr.Leaves() {
			if leaf == 0 {
				continue
			}
			lo, hi := tr.DelayBounds(leaf, v)
			if lo > hi {
				return false
			}
			if lo < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestElmoreMonotoneInCap(t *testing.T) {
	// Adding capacitance anywhere never decreases any Elmore delay.
	err := quick.Check(func(seed int64, at uint8) bool {
		tr := randomTree(seed, 12)
		before := tr.ElmoreAll()
		tr.AddCap(int(at)%tr.Len(), 50e-15)
		after := tr.ElmoreAll()
		for i := range before {
			if after[i] < before[i]-1e-18 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	tr := New(1e-12, "root")
	if err := tr.Validate(); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	empty := New(0, "root")
	if err := empty.Validate(); err == nil {
		t.Error("capacitance-free tree should be invalid")
	}
	neg := New(1e-12, "root")
	neg.Add(0, 1e3, 1e-12, "a")
	neg.c[1] = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative capacitance should be invalid")
	}
}

func TestAddPanicsOnBadParent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with out-of-range parent should panic")
		}
	}()
	New(0, "root").Add(5, 1, 1, "x")
}

func TestDelayBoundsPanicsOnBadThreshold(t *testing.T) {
	tr := chain(2, 1e3, 1e-12)
	defer func() {
		if recover() == nil {
			t.Error("DelayBounds(v=1) should panic")
		}
	}()
	tr.DelayBounds(1, 1)
}

func TestLeavesAndPaths(t *testing.T) {
	tr := New(0, "root")
	a := tr.Add(0, 1e3, 1e-12, "a")
	b := tr.Add(a, 1e3, 1e-12, "b")
	c := tr.Add(a, 1e3, 1e-12, "c")
	leaves := tr.Leaves()
	if len(leaves) != 2 || leaves[0] != b || leaves[1] != c {
		t.Errorf("leaves = %v, want [%d %d]", leaves, b, c)
	}
	if got := tr.PathR(b); math.Abs(got-2e3) > 1e-9 {
		t.Errorf("PathR(b) = %g, want 2000", got)
	}
	if got := tr.CommonR(b, c); math.Abs(got-1e3) > 1e-9 {
		t.Errorf("CommonR(b,c) = %g, want 1000", got)
	}
	if got := tr.CommonR(b, b); math.Abs(got-2e3) > 1e-9 {
		t.Errorf("CommonR(b,b) = %g, want 2000", got)
	}
	if tr.TotalCap() <= 0 || tr.TotalR() != 3e3 {
		t.Errorf("totals wrong: C=%g R=%g", tr.TotalCap(), tr.TotalR())
	}
}

func TestStringRendering(t *testing.T) {
	tr := chain(2, 1e3, 1e-12)
	if s := tr.String(); len(s) == 0 {
		t.Error("String should render something")
	}
}
