package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// testdataPath points at the repository-level testdata directory.
const testdataPath = "../../testdata/"

func TestRunDLatch(t *testing.T) {
	var out strings.Builder
	cfg := config{
		simFile: testdataPath + "dlatch.sim",
		// Analytic tables keep the test fast and hermetic.
		techName: "nmos-4u", model: "slope", tables: "analytic",
		rise: "d", fall: "d", fix: "wr=1",
		inSlope: 1e-9, top: 3,
	}
	v, err := run(cfg, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if v != 0 {
		t.Errorf("violations without a deadline should be 0, got %d", v)
	}
	rep := out.String()
	for _, want := range []string{"crystal: ", "timing report", "path 1:", "out"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestRunHier: -hier on over a replicated-tile chip prints the provenance
// summary (tile 0 fingerprints alone, tiles 1/2 share a class: one
// representative flat, one member stamped), and the path report matches a
// flat run byte for byte — the CLI face of the bit-identity contract.
func TestRunHier(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.ChipGrid(p, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	simPath := filepath.Join(t.TempDir(), "grid.sim")
	f, err := os.Create(simPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := netlist.WriteSim(f, nw); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fixed, loopBreak := gen.ChipGridDirectives(8, 3)
	var fix []string
	for name, v := range fixed {
		fix = append(fix, name+"="+v)
	}
	cfg := config{
		simFile:  simPath,
		techName: "nmos-4u", model: "slope", tables: "analytic",
		fix:       strings.Join(fix, ","),
		loopbreak: strings.Join(loopBreak, ","),
		inSlope:   1e-9, top: 3, hier: "on",
	}
	var out strings.Builder
	if _, err := run(cfg, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "crystal: hier: 3 instances, 1 stamped, 2 flat") {
		t.Errorf("missing hier summary line:\n%s", out.String())
	}

	cfg.hier = "off"
	var flat strings.Builder
	if _, err := run(cfg, &flat); err != nil {
		t.Fatal(err)
	}
	// Identical paths and arrivals; only the hier summary and the stage-
	// evaluation count in the header may differ (stamping evaluates fewer
	// stages — that is the speedup).
	norm := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "crystal: hier:") ||
				strings.HasPrefix(line, "timing report:") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if norm(out.String()) != norm(flat.String()) {
		t.Errorf("hier and flat reports differ beyond the evaluation count:\n--- hier ---\n%s\n--- flat ---\n%s",
			out.String(), flat.String())
	}
}

func TestRunWithDeadline(t *testing.T) {
	var out strings.Builder
	cfg := config{
		simFile:  testdataPath + "mux2-cmos.sim",
		techName: "cmos-3u", model: "rc", tables: "analytic",
		inSlope: 1e-9, top: 3, deadline: 1e-12, // everything violates
	}
	v, err := run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0 {
		t.Errorf("1 ps deadline should violate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "slack report") {
		t.Error("missing slack report")
	}
}

func TestRunERCFlag(t *testing.T) {
	var out strings.Builder
	cfg := config{
		simFile:  testdataPath + "dynamic-stage.sim",
		techName: "nmos-4u", model: "lumped", tables: "analytic",
		inSlope: 1e-9, top: 1, runERC: true,
		fix: "phi=0,b=1", rise: "a",
	}
	if _, err := run(cfg, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "electrical rules") {
		t.Error("missing ERC section")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []config{
		{},                    // no sim file
		{simFile: "nope.sim"}, // missing file
		{simFile: testdataPath + "dlatch.sim", techName: "ge-5"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "mystery"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "analytic", model: "psychic"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "analytic", model: "rc", fix: "wr"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "analytic", model: "rc", fix: "wr=7"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "analytic", model: "rc", fix: "ghost=1"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "analytic", model: "rc", rise: "ghost"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "analytic", model: "rc", hier: "maybe"},
	}
	for i, cfg := range cases {
		var out strings.Builder
		if _, err := run(cfg, &out); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestGoldenDLatchReport(t *testing.T) {
	// Exact-output regression guard for the report format and the
	// analytic-table timing numbers. Regenerate with:
	//   go run ./cmd/crystal -sim testdata/dlatch.sim -tables analytic \
	//     -model slope -rise d -fall d -fix wr=1 -top 2 \
	//     > testdata/golden/dlatch-report.txt
	want, err := os.ReadFile(testdataPath + "golden/dlatch-report.txt")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	cfg := config{
		simFile:  testdataPath + "dlatch.sim",
		techName: "nmos-4u", model: "slope", tables: "analytic",
		rise: "d", fall: "d", fix: "wr=1",
		inSlope: 1e-9, top: 2,
	}
	if _, err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// The sim file path appears in the report; normalize it.
	got = strings.ReplaceAll(got, testdataPath, "testdata/")
	if got != string(want) {
		t.Errorf("golden mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Errorf("empty = %v", got)
	}
	if got := splitList(" a, b ,,c "); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("got %v", got)
	}
}
