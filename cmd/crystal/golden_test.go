package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// update rewrites the golden files instead of diffing against them:
//
//	go test ./cmd/crystal -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden report files")

// TestGoldenReports pins the exact CLI output — report format and timing
// numbers — for every delay model, for characterized tables, and for the
// -edits re-analysis mode. Timing regressions and incidental format drift
// both show up as a diff here.
func TestGoldenReports(t *testing.T) {
	dlatch := func(model, tables string) config {
		return config{
			simFile:  testdataPath + "dlatch.sim",
			techName: "nmos-4u", model: model, tables: tables,
			rise: "d", fall: "d", fix: "wr=1",
			inSlope: 1e-9, top: 2,
		}
	}
	cases := []struct {
		name string
		cfg  config
	}{
		{"dlatch-lumped", dlatch("lumped", "analytic")},
		{"dlatch-rc", dlatch("rc", "analytic")},
		{"dlatch-slope-char", dlatch("slope", "char")},
		{"mux2-cmos-lumped", config{
			simFile:  testdataPath + "mux2-cmos.sim",
			techName: "cmos-3u", model: "lumped", tables: "analytic",
			inSlope: 1e-9, top: 3, deadline: 100e-9,
		}},
		{"dlatch-edits", func() config {
			c := dlatch("slope", "analytic")
			c.edits = testdataPath + "dlatch-edits.script"
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			if _, err := run(tc.cfg, &out); err != nil {
				t.Fatalf("%v\n%s", err, out.String())
			}
			// The sim file path appears in the report; normalize it so the
			// golden file is independent of the test's working directory.
			got := strings.ReplaceAll(out.String(), testdataPath, "testdata/")
			golden := testdataPath + "golden/" + tc.name + ".txt"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s:\n--- want ---\n%s\n--- got ---\n%s",
					golden, want, got)
			}
		})
	}
}

// TestGoldenWorkersIdentity pins the -workers contract at the CLI surface:
// the report (paths, arrival times, slopes, slack, incremental status
// lines) is byte-identical whether the drain runs serially or on eight
// workers. The -edits variant routes the incremental re-analysis through
// the parallel scheduler too.
func TestGoldenWorkersIdentity(t *testing.T) {
	base := config{
		simFile:  testdataPath + "dlatch.sim",
		techName: "nmos-4u", model: "slope", tables: "analytic",
		rise: "d", fall: "d", fix: "wr=1",
		inSlope: 1e-9, top: 3, deadline: 100e-9,
	}
	withEdits := base
	withEdits.edits = testdataPath + "dlatch-edits.script"
	cases := []struct {
		name string
		cfg  config
	}{
		{"single-run", base},
		{"with-edits", withEdits},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			outs := map[int]string{}
			for _, workers := range []int{1, 8} {
				cfg := tc.cfg
				cfg.workers = workers
				var out strings.Builder
				if _, err := run(cfg, &out); err != nil {
					t.Fatalf("workers=%d: %v\n%s", workers, err, out.String())
				}
				outs[workers] = out.String()
			}
			if outs[1] != outs[8] {
				t.Errorf("report differs between -workers 1 and -workers 8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
					outs[1], outs[8])
			}
		})
	}
}

// TestGoldenReorderIdentity pins the -reorder contract at the CLI
// surface: the report is byte-identical with the cache-conscious row
// reordering on and off, at serial and parallel worker counts, including
// through the incremental -edits path (which re-permutes analyzer state
// across generations).
func TestGoldenReorderIdentity(t *testing.T) {
	base := config{
		simFile:  testdataPath + "dlatch.sim",
		techName: "nmos-4u", model: "slope", tables: "analytic",
		rise: "d", fall: "d", fix: "wr=1",
		inSlope: 1e-9, top: 3, deadline: 100e-9,
	}
	withEdits := base
	withEdits.edits = testdataPath + "dlatch-edits.script"
	cases := []struct {
		name string
		cfg  config
	}{
		{"single-run", base},
		{"with-edits", withEdits},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				outs := map[string]string{}
				for _, reorder := range []string{"on", "off"} {
					cfg := tc.cfg
					cfg.workers = workers
					cfg.reorder = reorder
					var out strings.Builder
					if _, err := run(cfg, &out); err != nil {
						t.Fatalf("workers=%d reorder=%s: %v\n%s", workers, reorder, err, out.String())
					}
					outs[reorder] = out.String()
				}
				if outs["on"] != outs["off"] {
					t.Errorf("workers=%d: report differs between -reorder on and off:\n--- on ---\n%s\n--- off ---\n%s",
						workers, outs["on"], outs["off"])
				}
			}
		})
	}
}

// TestEditScriptErrors pins the script parser's error reporting: bad
// lines fail with the source name and line number.
func TestEditScriptErrors(t *testing.T) {
	cases := []string{
		"frobnicate q",           // unknown edit
		"add zmos g a b",         // unknown device
		"add nenh g a",           // wrong arity
		"add nenh g a b 4e-6",    // wrong arity (w without l)
		"wire a b ohms",          // bad number
		"del seven",              // bad index
		"resize 0 wide 2e-6",     // bad number
		"cap",                    // wrong arity
		"retype q tristate",      // unknown kind
		"resize 999 4e-6 0\nrun", // valid parse, Reanalyze rejects the index
	}
	for _, script := range cases {
		t.Run(strings.Fields(script)[0], func(t *testing.T) {
			var out strings.Builder
			cfg := config{
				simFile:  testdataPath + "dlatch.sim",
				techName: "nmos-4u", model: "slope", tables: "analytic",
				rise: "d", fall: "d", fix: "wr=1",
				inSlope: 1e-9, top: 1,
				watch: true, watchIn: strings.NewReader(script),
			}
			if _, err := run(cfg, &out); err == nil {
				t.Errorf("script %q should fail", script)
			} else if !strings.Contains(err.Error(), "stdin") {
				t.Errorf("error %q should name the script source", err)
			}
		})
	}
}

// TestWatchMode drives the stdin re-analysis loop and checks that each
// `run` barrier produces a fresh report and that incremental status lines
// appear.
func TestWatchMode(t *testing.T) {
	script := `
# first batch: small geometry tweak
resize 2 4e-6 2e-6
run
cap out 2e-14
run
`
	var out strings.Builder
	cfg := config{
		simFile:  testdataPath + "dlatch.sim",
		techName: "nmos-4u", model: "slope", tables: "analytic",
		rise: "d", fall: "d", fix: "wr=1",
		inSlope: 1e-9, top: 1,
		watch: true, watchIn: strings.NewReader(script),
	}
	if _, err := run(cfg, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	rep := out.String()
	if got := strings.Count(rep, "timing report"); got != 3 {
		t.Errorf("want 3 reports (initial + 2 barriers), got %d:\n%s", got, rep)
	}
	// The geometry tweak dirties the whole storage loop (the latch is
	// tiny), falling back to full; the output-cap batch stays incremental.
	if got := strings.Count(rep, "re-analysis ("); got != 2 {
		t.Errorf("want 2 re-analysis status lines, got %d:\n%s", got, rep)
	}
	if got := strings.Count(rep, "re-analysis (incremental"); got != 1 {
		t.Errorf("want 1 incremental status line, got %d:\n%s", got, rep)
	}
}
