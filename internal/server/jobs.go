// The async job plane: long-running requests (a chip-scale analyze holds
// a connection for seconds; a big edit script for longer) can opt out of
// request/response coupling with {"async": true} — the handler enqueues
// the work on a bounded worker pool and answers 202 with a job id, and
// the client polls GET /v1/jobs/{id} until the job is done or failed.
// The completed job carries the exact body the synchronous handler would
// have written (same structs, same encoder), so an async result is
// byte-identical to the synchronous response modulo the wall-clock
// duration fields — pinned by TestAsyncAnalyzeIdentity and cmd/loadgen's
// validation mode.
//
// Admission and ordering:
//
//   - The queue is bounded (Options.JobQueueDepth). A full queue rejects
//     with 429 + Retry-After instead of buffering unboundedly — the
//     backpressure signal a gateway needs for load shedding.
//   - Jobs of one session execute in submission order, one at a time
//     (per-session FIFO via the busy set below). Jobs of different
//     sessions run concurrently up to Options.JobWorkers. The session
//     mutex would serialize execution anyway; the plane additionally
//     guarantees *order*, so a poll sequence never observes barrier N+1
//     applied before barrier N.
//   - Graceful drain (Server.BeginDrain): admitted jobs — queued and
//     running — finish, new submissions are rejected with 503, and
//     Server.WaitJobs blocks until the plane is idle. cmd/crystald runs
//     this between SIGTERM and listener shutdown.
//
// Fault injection: Options.JobDelay stretches every execution and
// Options.JobFailEvery fails every Nth one with a synthetic 500. Both
// exist for the load/chaos harness (cmd/loadgen) and the eviction-race
// tests — a production daemon leaves them zero.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Job states, in lifecycle order.
const (
	jobQueued  = "queued"
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// jobRetention bounds the completed-job history: polls for a job finished
// more than jobRetention completions ago return 404. Clients poll
// promptly (loadgen's poll loop is milliseconds behind), so the bound is
// generous; it exists so a long-lived daemon cannot leak one result per
// job ever submitted.
const jobRetention = 4096

// job is one admitted unit of async work. Mutable fields are guarded by
// the owning plane's mutex; run is called exactly once, outside the lock.
type job struct {
	id      string
	session string
	kind    string // "analyze" or "edits"
	run     func() (int, any)

	state    string
	status   int             // HTTP status of the completed execution
	result   json.RawMessage // body the sync handler would have written (done/failed)
	created  time.Time
	started  time.Time
	finished time.Time
}

// jobPlane is the bounded worker-pool queue. All methods are safe for
// concurrent use.
type jobPlane struct {
	workers   int
	depth     int
	delay     time.Duration // fault injection: stretch every execution
	failEvery int64         // fault injection: fail every Nth execution

	m *metrics

	mu       sync.Mutex
	cond     *sync.Cond // signalled when the plane may have gone idle
	byID     map[string]*job
	queue    []*job          // admitted, undispatched, submission order
	busy     map[string]bool // session ids with a job executing
	running  int
	seq      int64
	execs    int64 // lifetime executions started (fault-injection counter)
	draining bool
	history  []string // completed job ids, oldest first, for retention
}

func newJobPlane(workers, depth int, delay time.Duration, failEvery int, m *metrics) *jobPlane {
	p := &jobPlane{
		workers:   workers,
		depth:     depth,
		delay:     delay,
		failEvery: int64(failEvery),
		m:         m,
		byID:      make(map[string]*job),
		busy:      make(map[string]bool),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Submission errors, distinguished so the handler can map them to 429
// (full) vs 503 (draining).
var (
	errJobQueueFull = fmt.Errorf("job queue full")
	errJobsDraining = fmt.Errorf("draining: not accepting new jobs")
)

// submit admits one job, or reports why it cannot. The returned job is
// already dispatched if a worker slot and its session are free.
func (p *jobPlane) submit(session, kind string, run func() (int, any)) (*job, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		p.m.jobsRejected.Add(1)
		return nil, errJobsDraining
	}
	if len(p.queue) >= p.depth {
		p.m.jobsRejected.Add(1)
		return nil, errJobQueueFull
	}
	p.seq++
	j := &job{
		id:      fmt.Sprintf("j%d", p.seq),
		session: session,
		kind:    kind,
		run:     run,
		state:   jobQueued,
		created: time.Now(),
	}
	p.byID[j.id] = j
	p.queue = append(p.queue, j)
	p.m.jobsSubmitted.Add(1)
	p.kickLocked()
	return j, nil
}

// kickLocked dispatches queued jobs onto free worker slots, skipping
// sessions that already have a job executing (per-session FIFO: a skipped
// session's next job is dispatched by the completion of its predecessor).
// Callers hold p.mu.
func (p *jobPlane) kickLocked() {
	for p.running < p.workers {
		picked := -1
		for i, j := range p.queue {
			if !p.busy[j.session] {
				picked = i
				break
			}
		}
		if picked < 0 {
			return
		}
		j := p.queue[picked]
		p.queue = append(p.queue[:picked], p.queue[picked+1:]...)
		p.busy[j.session] = true
		p.running++
		j.state = jobRunning
		j.started = time.Now()
		p.m.jobQueueLatency.observe(j.started.Sub(j.created))
		go p.exec(j)
	}
}

// exec runs one dispatched job to completion and releases its session
// and worker slot.
func (p *jobPlane) exec(j *job) {
	p.mu.Lock()
	p.execs++
	injectFail := p.failEvery > 0 && p.execs%p.failEvery == 0
	p.mu.Unlock()

	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	var (
		status int
		body   json.RawMessage
		err    error
	)
	if injectFail {
		status = http.StatusInternalServerError
		body, err = marshalBody(httpError{Error: "chaos: injected job failure"})
	} else {
		var v any
		status, v = j.run()
		body, err = marshalBody(v)
	}
	if err != nil { // cannot happen for the response structs; stay honest anyway
		status = http.StatusInternalServerError
		body = json.RawMessage(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}

	p.mu.Lock()
	j.status = status
	j.result = body
	j.finished = time.Now()
	if status >= 400 {
		j.state = jobFailed
		p.m.jobsFailed.Add(1)
	} else {
		j.state = jobDone
		p.m.jobsDone.Add(1)
	}
	p.history = append(p.history, j.id)
	for len(p.history) > jobRetention {
		delete(p.byID, p.history[0])
		p.history = p.history[1:]
	}
	delete(p.busy, j.session)
	p.running--
	p.kickLocked()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// beginDrain stops admission; already-admitted jobs keep running.
func (p *jobPlane) beginDrain() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
}

// wait blocks until no job is queued or running, or the deadline passes;
// it reports whether the plane went idle.
func (p *jobPlane) wait(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	// Wake the waiter at the deadline even if no job completes.
	timer := time.AfterFunc(timeout, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for (len(p.queue) > 0 || p.running > 0) && time.Now().Before(deadline) {
		p.cond.Wait()
	}
	return len(p.queue) == 0 && p.running == 0
}

// gauges reports the instantaneous queue state for /metrics.
func (p *jobPlane) gauges() (queued, running int, draining bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue), p.running, p.draining
}

// get returns a point-in-time copy of one job (nil if unknown or aged
// out of retention).
func (p *jobPlane) get(id string) *job {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.byID[id]
	if !ok {
		return nil
	}
	cp := *j
	return &cp
}

// marshalBody encodes a response value exactly as writeJSON would (same
// encoder, HTML escaping off), minus the trailing newline.
func marshalBody(v any) (json.RawMessage, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return json.RawMessage(bytes.TrimRight(buf.Bytes(), "\n")), nil
}

// jobAccepted is the 202 body for an async submission.
type jobAccepted struct {
	Job     string `json:"job"`
	Session string `json:"session"`
	Kind    string `json:"kind"`
	State   string `json:"state"`
	Poll    string `json:"poll"`
}

// jobResponse is the GET /v1/jobs/{id} body. Result is present only on
// done/failed and is the exact body the synchronous handler would have
// written for the same request (modulo wall-clock duration fields).
type jobResponse struct {
	Job      string          `json:"job"`
	Session  string          `json:"session"`
	Kind     string          `json:"kind"`
	State    string          `json:"state"`
	QueuedNs int64           `json:"queued_ns,omitempty"` // submit → dispatch
	RunNs    int64           `json:"run_ns,omitempty"`    // dispatch → completion
	Status   int             `json:"status,omitempty"`    // HTTP status of the execution
	Result   json.RawMessage `json:"result,omitempty"`
}

// submitJob admits async work for a session and writes the 202/429/503
// response. run executes on a worker and must return what the sync
// handler would have written.
func (sv *Server) submitJob(w http.ResponseWriter, s *session, kind string, run func() (int, any)) {
	j, err := sv.jobs.submit(s.id, kind, run)
	switch err {
	case nil:
	case errJobQueueFull:
		w.Header().Set("Retry-After", strconv.Itoa(sv.retryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests,
			"job queue full (%d queued); retry later", sv.opts.JobQueueDepth)
		return
	case errJobsDraining:
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, jobAccepted{
		Job: j.id, Session: s.id, Kind: kind, State: jobQueued,
		Poll: "/v1/jobs/" + j.id,
	})
}

// retryAfterSeconds estimates when a queue slot frees up: the recent
// analyze p50 times the queue depth ahead of the caller, spread over the
// worker pool — clamped to [1s, 60s] so the header is always actionable.
func (sv *Server) retryAfterSeconds() int {
	queued, _, _ := sv.jobs.gauges()
	p50 := sv.m.analyzeLatency.stats().P50Ns
	est := time.Duration(p50) * time.Duration(queued+1) / time.Duration(sv.jobs.workers)
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

func (sv *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := sv.jobs.get(id)
	if j == nil {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	resp := jobResponse{
		Job: j.id, Session: j.session, Kind: j.kind, State: j.state,
	}
	if !j.started.IsZero() {
		resp.QueuedNs = j.started.Sub(j.created).Nanoseconds()
	}
	if !j.finished.IsZero() {
		resp.RunNs = j.finished.Sub(j.started).Nanoseconds()
		resp.Status = j.status
		resp.Result = j.result
	}
	writeJSON(w, http.StatusOK, resp)
}

// BeginDrain puts the job plane into drain mode: running and queued jobs
// finish, new async submissions are rejected with 503. Synchronous
// requests are unaffected — the HTTP listener's own shutdown handles
// those. Safe to call more than once.
func (sv *Server) BeginDrain() { sv.jobs.beginDrain() }

// WaitJobs blocks until every admitted job has completed, or the timeout
// passes; it reports whether the plane drained fully.
func (sv *Server) WaitJobs(timeout time.Duration) bool { return sv.jobs.wait(timeout) }
