// Hierarchical macromodel analysis: analyze one representative of each
// repeated instance class flat, then stamp its timing onto every other
// member whose boundary context matches exactly.
//
// Why stamping is bit-identical to flat analysis. A stampable instance's
// interior is invisible to the rest of the chip: every node reference of
// its devices is either interior, a rail, or a strong source (package
// hier rejects anything else), stage paths and side walks never extend
// through sources, and interior nodes gate only interior devices. So in a
// flat run each member's interior evolves independently, driven by its
// seeds and by boundary events that are literally shared (same global
// nodes) across the class. The event queue's strict total order and the
// improve tie-break compare original node indexes; interior ranks are
// index-sorted and each boundary node orders identically against every
// member's interior (the rankpos check), so the per-member pop sequences,
// guard counts and surviving events are isomorphic under the rank map.
// Stamping copies the representative's interior events — times, slopes,
// validity, counts — with predecessor indexes rank-remapped, which is
// exactly what the flat drain would have computed.
//
// During the hierarchical drain the members are masked out: their devices'
// consequence lists are never evaluated, boundary fan-out stages targeting
// their interiors are skipped, and their interior nodes propagate nothing
// (their seeds still pop, mirroring the representative's accounting). The
// masks also gate the stage-database prewarm, which is where the memory
// saving comes from: a member's enumerations are simply never built.
package core

import (
	"sync"

	"repro/internal/hier"
	"repro/internal/incremental"
	"repro/internal/netlist"
	"repro/internal/stage"
	"repro/internal/tech"
)

// HierStats is the provenance summary of a hierarchical analysis:
// how many instances were detected, how many received stamped timing,
// and how many were analyzed flat (representatives, singletons, context
// mismatches, detached members).
type HierStats struct {
	Instances int
	Stamped   int
	Flat      int
}

// HierInstance is per-instance provenance.
type HierInstance struct {
	Path             string
	TransLo, TransHi int
	Stamped          bool
	// Reason says why a flat instance is flat; empty for stamped members.
	Reason string
}

// hierState is the analyzer's hierarchical bookkeeping.
type hierState struct {
	plan *hier.Plan
	// classes lists the active stamp classes: member instance indexes,
	// representative first, all surviving the analysis-context checks.
	classes [][]int
	// repOf maps an instance index to its class representative's instance
	// index (-1 when the instance is not in an active class).
	repOf   []int
	stamped []bool
	reason  []string

	// skipNode / skipTrans are the drain masks (node- and transistor-index
	// spaces); nil when nothing is stamped. Rebuilt per generation.
	skipNode  []bool
	skipTrans []bool

	// Via provenance of stamped events points into the representative's
	// stages from the generation the stamp was taken in. stampTrans pins
	// that generation's transistor slice and stampLo the per-instance
	// range starts at stamp time, so lazy remapping can translate a
	// stage's (stamp-generation) device indexes into the member's devices
	// even after later edit batches have shifted current indexes.
	stampTrans []*netlist.Trans
	stampLo    []int

	viaMu    sync.Mutex
	viaCache map[viaKey]*stage.Stage
}

type viaKey struct {
	inst int
	st   *stage.Stage
}

// AnalyzeHierarchical is Run with hierarchical stamping enabled: detect
// repeated instances, analyze one representative per class, stamp the
// rest. Results are bit-identical to a flat Run at every worker count;
// HierStats/HierInstances report what was stamped versus analyzed flat.
func (a *Analyzer) AnalyzeHierarchical() error {
	a.Opts.Hier = true
	return a.Run()
}

// HierStats returns the hierarchical provenance summary (zero when the
// analysis ran flat).
func (a *Analyzer) HierStats() HierStats {
	hs := a.hier
	if hs == nil {
		return HierStats{}
	}
	st := HierStats{Instances: len(hs.plan.Instances)}
	for _, s := range hs.stamped {
		if s {
			st.Stamped++
		}
	}
	st.Flat = st.Instances - st.Stamped
	return st
}

// HierInstances returns per-instance provenance, in instance order.
func (a *Analyzer) HierInstances() []HierInstance {
	hs := a.hier
	if hs == nil {
		return nil
	}
	out := make([]HierInstance, len(hs.plan.Instances))
	for i := range hs.plan.Instances {
		inst := &hs.plan.Instances[i]
		out[i] = HierInstance{Path: inst.Path, TransLo: inst.TransLo, TransHi: inst.TransHi}
		if hs.stamped[i] {
			out[i].Stamped = true
		} else {
			out[i].Reason = hs.reason[i]
		}
	}
	return out
}

// setupHier detects instances and filters the structural classes down to
// the members whose analysis-level context — static sensitization, loop
// breaks, seeded events — matches the representative rank for rank.
// Structure and boundary identity were already verified by hier.Detect.
func (a *Analyzer) setupHier() {
	plan := hier.Detect(a.Net)
	hs := &hierState{
		plan:     plan,
		repOf:    make([]int, len(plan.Instances)),
		stamped:  make([]bool, len(plan.Instances)),
		reason:   make([]string, len(plan.Instances)),
		stampLo:  make([]int, len(plan.Instances)),
		viaCache: map[viaKey]*stage.Stage{},
	}
	for i := range plan.Instances {
		hs.repOf[i] = -1
		hs.reason[i] = plan.Instances[i].Reason
	}
	seedsByNode := map[int][]seedEvent{}
	for _, s := range a.seeded {
		seedsByNode[s.node.Index] = append(seedsByNode[s.node.Index], s)
	}
	for _, class := range plan.Classes {
		if len(class) < 2 {
			hs.reason[class[0]] = "singleton class: no other copy to share with"
			continue
		}
		rep := class[0]
		members := []int{rep}
		for _, m := range class[1:] {
			if why := a.hierContextMismatch(plan, rep, m, seedsByNode); why != "" {
				hs.reason[m] = why
				continue
			}
			members = append(members, m)
		}
		if len(members) < 2 {
			hs.reason[rep] = "no member matched the analysis context"
			continue
		}
		hs.reason[rep] = "class representative: analyzed flat"
		hs.classes = append(hs.classes, members)
		for _, m := range members {
			hs.repOf[m] = rep
		}
		for _, m := range members[1:] {
			hs.stamped[m] = true
		}
	}
	hs.buildMasks(a)
	a.hier = hs
}

// hierContextMismatch compares the analysis context of member m against
// representative rep, rank by rank: the settled static values (which feed
// both pruning and enumeration), the loop-break directives, and the
// seeded input events (sequence, not set — equal-time seeds tie-break in
// seeding order). Any difference means the member's interior would not
// replay the representative's drain, so it stays flat.
func (a *Analyzer) hierContextMismatch(p *hier.Plan, rep, m int, seeds map[int][]seedEvent) string {
	ir, im := p.Instances[rep].Interior, p.Instances[m].Interior
	for r := range ir {
		ri, mi := int(ir[r]), int(im[r])
		if a.static != nil && a.static[ri] != a.static[mi] {
			return "static sensitization differs from the representative"
		}
		if a.loopBreak[a.row(ri)] != a.loopBreak[a.row(mi)] {
			return "loop-break directives differ from the representative"
		}
		sr, sm := seeds[ri], seeds[mi]
		if len(sr) != len(sm) {
			return "seeded events differ from the representative"
		}
		for k := range sr {
			if sr[k].tr != sm[k].tr || sr[k].t != sm[k].t || sr[k].slope != sm[k].slope {
				return "seeded events differ from the representative"
			}
		}
	}
	return ""
}

// buildMasks rebuilds the drain masks from the currently stamped set,
// sized for the current generation.
func (hs *hierState) buildMasks(a *Analyzer) {
	any := false
	for _, s := range hs.stamped {
		if s {
			any = true
			break
		}
	}
	if !any {
		hs.skipNode, hs.skipTrans = nil, nil
		a.hierSkipNode, a.hierSkipTrans = nil, nil
		return
	}
	hs.skipNode = make([]bool, len(a.Net.Nodes))
	hs.skipTrans = make([]bool, len(a.Net.Trans))
	for m, s := range hs.stamped {
		if !s {
			continue
		}
		inst := &hs.plan.Instances[m]
		for _, idx := range inst.Interior {
			hs.skipNode[idx] = true
		}
		for ti := inst.TransLo; ti < inst.TransHi; ti++ {
			hs.skipTrans[ti] = true
		}
	}
	a.hierSkipNode, a.hierSkipTrans = hs.skipNode, hs.skipTrans
}

// dropHier abandons hierarchical analysis (full re-analysis fallback: the
// flat run recomputes every arrival, leaving nothing stamped).
func (a *Analyzer) dropHier() {
	a.hier = nil
	a.hierSkipNode, a.hierSkipTrans = nil, nil
}

// drainAndStamp runs the masked drain, falls whole classes back to flat
// when the feedback guard fires inside one (the guard's cutoff point is
// order-dependent, so a spinning interior cannot be stamped), and finally
// copies the representatives' interior timing onto their members.
func (a *Analyzer) drainAndStamp() {
	for {
		a.seedAll()
		a.drainRouted(nil)
		if !a.hierGuardUnstamp() {
			break
		}
		// Guard hit inside an active class: rare, and the simple correct
		// path is a clean re-drain with the class unmasked.
		nw := a.Net
		a.events = make([][2]Event, len(nw.Nodes))
		a.count = make([][2]int, len(nw.Nodes))
		a.hist = make([][2]nodeHist, len(nw.Nodes))
		a.resetHistArena()
		a.queued = make([][2]bool, len(nw.Nodes))
		a.queue.Reset()
		a.queue.Grow(4 * len(nw.Nodes))
		a.Unbounded = nil
	}
	a.stampMembers()
}

// hierGuardUnstamp deactivates every class with a feedback-guard hit in
// any member's interior and reports whether it deactivated one.
func (a *Analyzer) hierGuardUnstamp() bool {
	hs := a.hier
	if hs == nil || len(hs.classes) == 0 {
		return false
	}
	bad := map[int]bool{}
	for _, n := range a.Unbounded {
		if n.Index < len(hs.plan.MemberOf) {
			if inst := int(hs.plan.MemberOf[n.Index]) - 1; inst >= 0 {
				bad[inst] = true
			}
		}
	}
	if len(bad) == 0 {
		return false
	}
	removed := false
	kept := hs.classes[:0:0]
	for _, class := range hs.classes {
		hit := false
		for _, m := range class {
			if bad[m] {
				hit = true
				break
			}
		}
		if !hit {
			kept = append(kept, class)
			continue
		}
		removed = true
		for _, m := range class {
			hs.stamped[m] = false
			hs.repOf[m] = -1
			hs.reason[m] = "feedback guard fired in the class interior: analyzed flat"
		}
	}
	hs.classes = kept
	if removed {
		hs.buildMasks(a)
	}
	return removed
}

// stampMembers copies each representative's interior events onto its
// stamped members: times, slopes, validity and propagation counts verbatim
// (they are isomorphic, see the package comment), predecessor node indexes
// rank-remapped, provenance stages left pointing at the representative for
// lazy translation. Member history stays empty — stamped interiors are
// widened wholesale if an edit ever dirties them, so their replay streams
// are never consulted.
func (a *Analyzer) stampMembers() {
	hs := a.hier
	if hs == nil || len(hs.classes) == 0 {
		return
	}
	hs.stampTrans = a.Net.Trans
	for i := range hs.plan.Instances {
		hs.stampLo[i] = hs.plan.Instances[i].TransLo
	}
	for _, class := range hs.classes {
		repID := class[0]
		rep := &hs.plan.Instances[repID]
		for _, mi := range class[1:] {
			if !hs.stamped[mi] {
				continue
			}
			mem := &hs.plan.Instances[mi]
			for r, repIdx := range rep.Interior {
				rowR := a.row(int(repIdx))
				rowM := a.row(int(mem.Interior[r]))
				for tr := 0; tr < 2; tr++ {
					ev := a.events[rowR][tr]
					if ev.Valid && ev.FromNode >= 0 {
						if rank := hs.plan.Rank(repID, int32(ev.FromNode)); rank >= 0 {
							ev.FromNode = int(mem.Interior[rank])
						}
					}
					a.events[rowM][tr] = ev
					a.count[rowM][tr] = a.count[rowR][tr]
					a.freeHist(&a.hist[rowM][tr])
					a.queued[rowM][tr] = false
				}
			}
		}
	}
}

// eventAt returns the recorded event for (node, tr) with its provenance
// stage translated into the node's own instance when the node carries
// stamped timing. Everything reported to callers goes through here.
func (a *Analyzer) eventAt(node int, tr tech.Transition) Event {
	ev := a.events[a.row(node)][tr]
	if a.hier != nil && ev.Via != nil {
		ev.Via = a.hier.remapVia(a, node, ev.Via)
	}
	return ev
}

// remapVia translates a representative-space provenance stage into member
// space: interior nodes by rank, devices by position within the instance
// range at stamp time, shared boundary nodes unchanged. Results are
// cached per (instance, stage) — a handful of stages dominate any traced
// path, so the cache stays tiny relative to eager remapping of every
// stamped stage.
func (hs *hierState) remapVia(a *Analyzer, node int, via *stage.Stage) *stage.Stage {
	if node >= len(hs.plan.MemberOf) {
		return via
	}
	mi := int(hs.plan.MemberOf[node]) - 1
	if mi < 0 || !hs.stamped[mi] {
		return via
	}
	hs.viaMu.Lock()
	defer hs.viaMu.Unlock()
	k := viaKey{mi, via}
	if st, ok := hs.viaCache[k]; ok {
		return st
	}
	repID := hs.repOf[mi]
	mem := &hs.plan.Instances[mi]
	repLo := hs.stampLo[repID]
	repHi := repLo + (hs.plan.Instances[repID].TransHi - hs.plan.Instances[repID].TransLo)
	memLo := hs.stampLo[mi]
	nodeFn := func(n *netlist.Node) *netlist.Node {
		if rank := hs.plan.Rank(repID, int32(n.Index)); rank >= 0 {
			return a.Net.Nodes[mem.Interior[rank]]
		}
		return n
	}
	transFn := func(t *netlist.Trans) *netlist.Trans {
		if t.Index >= repLo && t.Index < repHi {
			return hs.stampTrans[memLo+(t.Index-repLo)]
		}
		return t
	}
	st := via.Remap(nodeFn, transFn)
	hs.viaCache[k] = st
	return st
}

// hierReanalyze reconciles the hierarchical state with an applied edit
// batch, before the incremental/full decision is made. Instance ranges
// are remapped through the batch's transistor index map; a stamped member
// detaches to flat analysis when its range was disturbed, a device in its
// range is dirty, or its interior intersects the invalidation plan's
// dirty set (which is also how boundary-driven changes arrive — the
// plan's closure dirties every interior a moved boundary node feeds).
// Detached interiors are widened into the plan wholesale: a stamped node
// has no replay history, so partial recomputation inside a member would
// replay an incomplete stream. A dirty representative leaves its members
// stamped — their copied events are precisely the flat values, and the
// members themselves are untouched by construction of the dirty set.
func (a *Analyzer) hierReanalyze(res *incremental.Result, plan *incremental.Plan) {
	hs := a.hier
	if hs == nil {
		return
	}
	// Remap instance ranges: per instance, the image of its old range must
	// be exactly one contiguous run of surviving devices.
	type span struct{ min, max, count int }
	spans := make([]span, len(hs.plan.Instances))
	for i := range spans {
		spans[i].min = -1
	}
	for j, old := range res.OldTrans {
		if old < 0 {
			continue
		}
		k := hs.plan.Covering(old)
		if k < 0 {
			continue
		}
		sp := &spans[k]
		if sp.min < 0 || j < sp.min {
			if sp.min < 0 {
				sp.max = j
			}
			sp.min = j
		}
		if j > sp.max {
			sp.max = j
		}
		sp.count++
	}
	detach := make([]bool, len(hs.plan.Instances))
	newRange := make([][2]int, len(hs.plan.Instances))
	for i := range hs.plan.Instances {
		inst := &hs.plan.Instances[i]
		n := inst.TransHi - inst.TransLo
		sp := spans[i]
		if sp.count != n || sp.max-sp.min+1 != n {
			detach[i] = true
			continue
		}
		newRange[i] = [2]int{sp.min, sp.max + 1}
		for j := sp.min; j <= sp.max; j++ {
			if j < len(plan.DirtyTrans) && plan.DirtyTrans[j] {
				detach[i] = true
				break
			}
		}
		if !detach[i] {
			for _, idx := range inst.Interior {
				if plan.NodeDirty(int(idx)) {
					detach[i] = true
					break
				}
			}
		}
	}
	// Commit the surviving ranges (the current-generation view the masks
	// and future batches use; via remapping keeps its stamp-time snapshot).
	for i := range hs.plan.Instances {
		if !detach[i] {
			hs.plan.Instances[i].TransLo = newRange[i][0]
			hs.plan.Instances[i].TransHi = newRange[i][1]
		}
	}
	var widen []int
	changed := false
	kept := hs.classes[:0:0]
	for _, class := range hs.classes {
		members := class[:1]
		for _, m := range class[1:] {
			if !detach[m] {
				members = append(members, m)
				continue
			}
			changed = true
			hs.stamped[m] = false
			hs.repOf[m] = -1
			hs.reason[m] = "edit reached the instance: detached to flat analysis"
			for _, idx := range hs.plan.Instances[m].Interior {
				widen = append(widen, int(idx))
			}
		}
		if len(members) >= 2 {
			kept = append(kept, members)
		} else {
			// Class dissolved; the representative was flat all along.
			hs.repOf[members[0]] = -1
		}
	}
	hs.classes = kept
	if len(widen) > 0 {
		plan.Widen(widen)
	}
	if changed || len(a.Net.Nodes) != len(hs.skipNode) {
		hs.buildMasks(a)
	}
}
