// Parallel intra-run drain: speculate in parallel, commit in order.
//
// The event loop's pop sequence is a pure function of the push multiset
// (sched.Less is a strict total order), and evaluating one popped event's
// consequences — stage enumeration plus delay-model evaluation — reads
// only structures frozen during the drain (the compiled network, the stage
// database, the static sensitization snapshot, the delay tables) plus the
// event payload itself. That makes consequence generation speculatable:
// carve a frontier of upcoming events off the queue, evaluate their
// candidate lists on a worker pool, then commit the results serially in
// strict queue order, validating each speculation against the state the
// commits ahead of it produced.
//
// Three things can invalidate a speculation, and each is detected at
// commit time:
//
//   - the popped entry went stale (an earlier commit improved the node to
//     a later time, re-pushing it) — skipped, exactly as the serial loop
//     skips stale entries;
//   - the entry is still live but its payload changed (an equal-time
//     tie-break improvement rewrote slope/provenance in place) — the item
//     is re-propagated serially from the current payload;
//   - an earlier commit pushed a new entry that precedes the rest of the
//     batch in queue order — the remaining batch items are pushed back and
//     the frontier re-formed, so the commit sequence never deviates from
//     the serial pop sequence.
//
// The frontier is additionally fenced by a time span derived from the
// smallest stage delay committed so far: a commit at time t can only queue
// consequences at t+delay, so a frontier narrower than the minimum delay
// is conflict-free and the validation above never fires. The span is a
// throughput heuristic only — correctness rests on the commit-time checks.
//
// Every structure speculation reads concurrently is safe by construction:
// stage-database entries build under sync.Once, evaluation memos install
// via atomic pointers (duplicate builds produce identical values), and the
// network, sensitization snapshot and delay tables are immutable during
// the drain. With Workers <= 1 none of this runs — the analyzer takes the
// plain serial loop in drainReplay.
package core

import (
	"context"
	"math"
	"runtime/pprof"

	"repro/internal/netlist"
	"repro/internal/sched"
	"repro/internal/stage"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// speculationBatch is the frontier size per worker: large enough to
// amortize the pool's per-round channel hops over many evaluations, small
// enough that a mid-batch preemption wastes little work.
const speculationBatch = 48

// specCand is one speculated improvement candidate: stage st yields an
// arrival at time t with the given output slope. The target is the stage's
// own (Target, Transition).
type specCand struct {
	st       *stage.Stage
	t, slope float64
}

// specItem is one frontier slot: the popped queue entry (or replay item),
// the event payload it was speculated with, and the speculation's results.
type specItem struct {
	key    sched.Item
	ev     Event // payload at formation time; commit validates it is unchanged
	replay bool  // replay items are always live and bypass counters
	live   bool  // live at formation; stale slots skip speculation
	trunc  bool
	evals  int
	cands  []specCand
}

// DrainStats are cumulative counters of the speculative drain's behaviour
// for one analyzer (the Run plus any Reanalyze calls). All zeros when the
// analysis ran serially (Workers <= 1). They are the observability story
// for fence tuning: mean frontier batch size (BatchItems/Batches) says how
// far the fences let the drain read ahead, FenceStalls how often a region
// clock cut a batch short, SpecUsed/SpecLive how much speculated work
// survived commit validation, and CommitDepth the deepest pending-commit
// backlog. Exported by crystald as the /metrics drain.* fields.
type DrainStats struct {
	Batches     int64 // frontiers formed
	BatchItems  int64 // total frontier slots (mean batch size = BatchItems/Batches)
	FenceStalls int64 // batches cut short by a region fence
	Preempts    int64 // commits that preempted the rest of their batch
	SpecLive    int64 // slots speculated (live at formation)
	SpecUsed    int64 // speculations committed unchanged (occupancy = SpecUsed/SpecLive)
	CommitDepth int64 // max commit-queue length observed at batch formation
	Regions     int   // fence regions in the compiled network
}

// DrainStats returns the drain counters accumulated so far.
func (a *Analyzer) DrainStats() DrainStats { return a.stats }

// drainRouted runs the event loop on the configured drain: the serial loop
// at one worker, the speculative parallel drain above it. Arrivals are
// bit-identical either way.
func (a *Analyzer) drainRouted(replays []replayItem) {
	if w := Workers(a.Opts.Workers, 0); w > 1 {
		a.drainParallel(replays, w)
	} else {
		a.drainReplay(replays)
	}
}

// drainParallel is the speculate/validate/commit event loop.
func (a *Analyzer) drainParallel(replays []replayItem, workers int) {
	pool := sched.NewPool(workers)
	defer pool.Close()
	batchMax := speculationBatch * workers
	if cap(a.spec) < batchMax {
		a.spec = make([]specItem, batchMax)
	}
	a.spec = a.spec[:batchMax]
	// Per-region fence state for this generation's partition: spans start
	// unfenced (no committed delay yet) and tighten as commits land.
	nr := a.cnet.NumRegions
	if cap(a.minDelayR) < nr {
		a.minDelayR = make([]float64, nr)
		a.spans = make([]float64, nr)
	}
	a.minDelayR = a.minDelayR[:nr]
	a.spans = a.spans[:nr]
	for i := range a.minDelayR {
		a.minDelayR[i] = math.Inf(1)
		a.spans[i] = 0
	}
	a.fence.Region = a.cnet.Region
	a.fence.Span = a.spans
	a.fence.Reset(nr)
	a.stats.Regions = nr
	ri := 0
	pprof.Do(context.Background(), pprof.Labels("subsystem", "sched", "phase", "drain"),
		func(ctx context.Context) {
			for a.queue.Len() > 0 || ri < len(replays) {
				if d := int64(a.queue.Len()); d > a.stats.CommitDepth {
					a.stats.CommitDepth = d
				}
				nb := a.formBatch(replays, &ri, batchMax)
				a.stats.Batches++
				a.stats.BatchItems += int64(nb)
				if nb > 1 {
					pool.Do("enumerate", func(w int) {
						for i := w; i < nb; i += workers {
							if s := &a.spec[i]; s.live {
								a.speculate(s)
							}
						}
					})
				} else if a.spec[0].live {
					a.speculate(&a.spec[0])
				}
				pprof.Do(ctx, pprof.Labels("phase", "commit"), func(context.Context) {
					a.commitBatch(replays, &ri, nb)
				})
			}
		})
}

// formBatch carves the next frontier off the queue (merged with pending
// replay items in trigger-time order, replays winning ties — the serial
// loop's merge rule) into a.spec, returning the slot count. Admission is
// fenced per region: each region's clock opens at its first item and
// admits later items within the region's span (half the smallest delay
// committed into it), so one region's tight fence never caps the batch's
// reach into independent regions. A fence that cuts a batch short of
// batchMax counts as a stall.
func (a *Analyzer) formBatch(replays []replayItem, ri *int, batchMax int) int {
	if *ri >= len(replays) {
		// Pure-queue frontier: one fenced pass over the heap.
		var stalled bool
		a.fbuf, stalled = a.queue.PopFrontierFenced(a.fbuf[:0], batchMax, &a.fence)
		if stalled {
			a.stats.FenceStalls++
		}
		for i, it := range a.fbuf {
			a.fillSpec(&a.spec[i], it)
		}
		return len(a.fbuf)
	}
	nb := 0
	a.fence.Begin()
	for nb < batchMax && (a.queue.Len() > 0 || *ri < len(replays)) {
		var key sched.Item
		useReplay := false
		if *ri < len(replays) {
			r := replays[*ri]
			key = sched.Item{T: r.t, Node: int32(r.node), Tr: uint8(r.tr)}
			useReplay = a.queue.Len() == 0 || !sched.Less(a.queue.Peek(), key)
		}
		if !useReplay {
			key = a.queue.Peek()
		}
		if !a.fence.Admit(key) {
			a.stats.FenceStalls++
			break
		}
		s := &a.spec[nb]
		if useReplay {
			r := replays[*ri]
			*ri++
			*s = specItem{
				key: key, ev: Event{T: r.t, Slope: r.slope, Valid: true},
				replay: true, live: true, cands: s.cands,
			}
			a.stats.SpecLive++
		} else {
			a.queue.Pop()
			a.fillSpec(s, key)
		}
		nb++
	}
	return nb
}

// fillSpec initializes one frontier slot from a popped queue entry,
// snapshotting the live payload (stale entries stay unspeculated — they
// can only be skipped or, rarely, revived by an in-batch tie-break, which
// the commit's payload check routes to serial re-propagation).
func (a *Analyzer) fillSpec(s *specItem, it sched.Item) {
	row, tr := a.row(int(it.Node)), int(it.Tr)
	live := a.queued[row][tr] && it.T == a.events[row][tr].T
	ev := Event{}
	if live {
		ev = a.events[row][tr]
		a.stats.SpecLive++
	}
	*s = specItem{key: it, ev: ev, live: live, cands: s.cands}
}

// speculate evaluates one frontier slot's consequences into s.cands —
// the same enumeration and evaluation propagateEvent performs, minus the
// improve calls. Runs on pool workers; reads only drain-frozen state.
func (a *Analyzer) speculate(s *specItem) {
	s.cands = s.cands[:0]
	s.evals = 0
	s.trunc = false
	node, tr := int(s.key.Node), tech.Transition(s.key.Tr)
	row := a.row(node)
	if a.loopBreak[row] || !s.ev.Valid {
		return
	}
	if a.hierSkipNode != nil && node < len(a.hierSkipNode) && a.hierSkipNode[node] {
		return // stamped member interior: timing arrives by stamping
	}
	cn := a.cnet
	for _, ref := range cn.GateRef[cn.GateStart[row]:cn.GateStart[row+1]] {
		ti, on1 := netlist.UnpackGateRef(ref)
		if a.hierSkipTrans != nil && int(ti) < len(a.hierSkipTrans) && a.hierSkipTrans[ti] {
			continue // stamped member device
		}
		var stages []*stage.Stage
		var trunc bool
		if (tr == tech.Rise) == on1 {
			stages, trunc = a.db.TurnOnIdx(ti)
		} else {
			stages, trunc = a.db.TurnOffIdx(ti)
		}
		s.trunc = s.trunc || trunc
		for _, st := range stages {
			a.specStage(s, st)
		}
	}
	if cn.IsInput[row] && cn.HasTerms[row] {
		stages, trunc := a.db.From(a.Net.Nodes[node], tr)
		s.trunc = s.trunc || trunc
		for _, st := range stages {
			a.specStage(s, st)
		}
	}
}

// specStage is applyStage without the improve: filter, evaluate, record.
func (a *Analyzer) specStage(s *specItem, st *stage.Stage) {
	if a.hierSkipNode != nil {
		if t := st.Target.Index; t < len(a.hierSkipNode) && a.hierSkipNode[t] {
			return // stamped member interior: boundary fan-in is replayed by the representative
		}
	}
	if si := st.SourceInputIndex(); si >= 0 && !a.Opts.NoStaticPruning {
		sv := a.static[si]
		want := switchsim.V1
		if st.Transition == tech.Fall {
			want = switchsim.V0
		}
		if sv != switchsim.VX && sv != want {
			return
		}
	}
	s.evals++
	r := a.Model.Evaluate(a.Net, st, s.ev.Slope)
	if math.IsNaN(r.Delay) || r.Delay < 0 {
		return
	}
	s.cands = append(s.cands, specCand{st: st, t: s.ev.T + r.Delay, slope: r.Slope})
}

// commitBatch replays the frontier in strict queue order against live
// state: exactly the serial loop's accounting (staleness skip, feedback
// guard, history marking), with speculated candidate lists applied when
// the payload is unchanged and serial re-propagation when it is not. A
// commit that queues an entry preceding the rest of the batch preempts it:
// the remaining slots are pushed back (replay slots rewound) and the
// frontier re-forms.
func (a *Analyzer) commitBatch(replays []replayItem, ri *int, nb int) {
	for bi := 0; bi < nb; bi++ {
		s := &a.spec[bi]
		if s.replay {
			a.applySpec(s)
		} else {
			node, tr := int(s.key.Node), tech.Transition(s.key.Tr)
			row := a.row(node)
			switch {
			case !a.queued[row][tr] || s.key.T != a.events[row][tr].T:
				continue // stale: a fresher entry is in the queue
			default:
				a.queued[row][tr] = false
				a.count[row][tr]++
				if a.count[row][tr] > a.Opts.MaxEventsPerNode {
					if a.count[row][tr] == a.Opts.MaxEventsPerNode+1 {
						a.Unbounded = append(a.Unbounded, a.Net.Nodes[node])
					}
					continue
				}
				a.hist[row][tr].propagated = true
				if s.live && a.events[row][tr] == s.ev {
					a.applySpec(s)
				} else {
					// Payload changed under the speculation (equal-time
					// tie-break) or the slot was stale at formation and a
					// tie-break revived it: re-propagate from live state.
					a.propagateEvent(node, tr, a.events[row][tr])
				}
			}
		}
		if bi+1 < nb && a.queue.Len() > 0 && sched.Less(a.queue.Peek(), a.spec[bi+1].key) {
			a.stats.Preempts++
			for j := nb - 1; j > bi; j-- {
				if a.spec[j].replay {
					*ri--
				} else {
					a.queue.Push(a.spec[j].key)
				}
			}
			return
		}
	}
}

// applySpec commits one validated speculation: the accounting and improve
// calls the serial propagation would have made, in the same order. Each
// committed delay tightens the fence span of the region it lands IN — the
// target's region, since that is where the consequence can invalidate
// later speculation.
func (a *Analyzer) applySpec(s *specItem) {
	a.stageEv += s.evals
	a.Truncated = a.Truncated || s.trunc
	a.stats.SpecUsed++
	node, tr := int(s.key.Node), tech.Transition(s.key.Tr)
	for i := range s.cands {
		c := &s.cands[i]
		if d := c.t - s.ev.T; d > 0 {
			if r := a.cnet.Region[c.st.Target.Index]; d < a.minDelayR[r] {
				a.minDelayR[r] = d
				a.spans[r] = 0.5 * d
			}
		}
		a.improve(c.st.Target.Index, c.st.Transition, Event{
			T: c.t, Slope: c.slope, Valid: true,
			FromNode: node, FromTr: tr, Via: c.st,
		})
	}
}
