package sched

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
)

// popAll drains the queue and checks strict ascending order.
func popAll(t *testing.T, q *Queue) []Item {
	t.Helper()
	var out []Item
	for q.Len() > 0 {
		it := q.Pop()
		if len(out) > 0 {
			prev := out[len(out)-1]
			if Less(it, prev) {
				t.Fatalf("pop order violated: %v after %v", it, prev)
			}
		}
		out = append(out, it)
	}
	return out
}

func TestQueueOrdersRandomPushes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q Queue
	var ref []Item
	for i := 0; i < 5000; i++ {
		it := Item{
			T:    float64(rng.Intn(50)) * 1e-10, // heavy time ties
			Node: int32(rng.Intn(64)),
			Tr:   uint8(rng.Intn(2)),
		}
		q.Push(it)
		ref = append(ref, it)
	}
	got := popAll(t, &q)
	sort.Slice(ref, func(i, j int) bool { return Less(ref[i], ref[j]) })
	if len(got) != len(ref) {
		t.Fatalf("popped %d items, pushed %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("pop %d = %v, want %v", i, got[i], ref[i])
		}
	}
}

func TestQueueInterleavedPushPop(t *testing.T) {
	// Pops interleaved with pushes must still return the global minimum of
	// the current contents (checked against a sorted model).
	rng := rand.New(rand.NewSource(7))
	var q Queue
	var model []Item
	for step := 0; step < 20000; step++ {
		if q.Len() == 0 || rng.Intn(3) != 0 {
			it := Item{T: rng.Float64(), Node: int32(rng.Intn(1000)), Tr: uint8(rng.Intn(2))}
			q.Push(it)
			model = append(model, it)
			continue
		}
		got := q.Pop()
		min := 0
		for i := range model {
			if Less(model[i], model[min]) {
				min = i
			}
		}
		if got != model[min] {
			t.Fatalf("step %d: popped %v, model minimum %v", step, got, model[min])
		}
		model[min] = model[len(model)-1]
		model = model[:len(model)-1]
	}
}

// TestQueueStaleSkipProtocol exercises the analyzer's staleness discipline
// on the queue: improvements re-push the same (node, tr) with a new time,
// and the consumer treats an entry as live only when it matches the
// latest recorded arrival. Every key must be processed exactly once per
// final arrival, in strict order of those live entries.
func TestQueueStaleSkipProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nodes = 128
	var q Queue
	latest := map[[2]int32]float64{}
	for i := 0; i < 4000; i++ {
		k := [2]int32{int32(rng.Intn(nodes)), int32(rng.Intn(2))}
		tm := float64(rng.Intn(1000)) * 1e-11
		if cur, ok := latest[k]; !ok || tm > cur {
			latest[k] = tm
			q.Push(Item{T: tm, Node: k[0], Tr: uint8(k[1])})
		}
	}
	seen := map[[2]int32]bool{}
	var prev Item
	first := true
	for q.Len() > 0 {
		it := q.Pop()
		if !first && Less(it, prev) {
			t.Fatalf("order violated: %v after %v", it, prev)
		}
		prev, first = it, false
		k := [2]int32{it.Node, int32(it.Tr)}
		if it.T != latest[k] {
			continue // stale: a fresher entry exists
		}
		if seen[k] {
			t.Fatalf("key %v processed twice", k)
		}
		seen[k] = true
	}
	if len(seen) != len(latest) {
		t.Fatalf("processed %d keys, want %d", len(seen), len(latest))
	}
}

func TestPopFrontier(t *testing.T) {
	var q Queue
	for i := 9; i >= 0; i-- {
		q.Push(Item{T: float64(i), Node: int32(i)})
	}
	var buf []Item
	// Count-limited.
	buf = q.PopFrontier(buf, 4, 0)
	if len(buf) != 4 || buf[0].T != 0 || buf[3].T != 3 {
		t.Fatalf("count-limited frontier = %v", buf)
	}
	// Span-limited: next first is 4; fence 4+1.5 admits 5 but not 6.
	buf = q.PopFrontier(buf, 100, 1.5)
	if len(buf) != 2 || buf[0].T != 4 || buf[1].T != 5 {
		t.Fatalf("span-limited frontier = %v", buf)
	}
	buf = q.PopFrontier(buf, 100, 0)
	if len(buf) != 4 {
		t.Fatalf("rest = %v", buf)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

func TestPoolRunsAllWorkers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var hits [4]atomic.Int32
	var total atomic.Int64
	for round := 0; round < 50; round++ {
		p.Do("test", func(w int) {
			hits[w].Add(1)
			total.Add(1)
		})
	}
	if total.Load() != 200 {
		t.Fatalf("total = %d, want 200", total.Load())
	}
	for w := range hits {
		if hits[w].Load() != 50 {
			t.Fatalf("worker %d ran %d rounds, want 50", w, hits[w].Load())
		}
	}
}

// FuzzQueueOrder fuzzes the pop-order invariant: however items are pushed
// (including duplicates and interleaved pops), pops come out in strict
// (t, node, tr) order and nothing is lost.
func FuzzQueueOrder(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q Queue
		var model []Item
		pops := 0
		for i := 0; i+2 < len(data); i += 3 {
			if data[i]&0x80 != 0 && q.Len() > 0 {
				got := q.Pop()
				min := 0
				for j := range model {
					if Less(model[j], model[min]) {
						min = j
					}
				}
				if got != model[min] {
					t.Fatalf("pop %d = %v, want %v", pops, got, model[min])
				}
				model[min] = model[len(model)-1]
				model = model[:len(model)-1]
				pops++
			}
			it := Item{
				T:    float64(data[i]&0x7f) * 0.25,
				Node: int32(data[i+1] % 32),
				Tr:   data[i+2] % 2,
			}
			q.Push(it)
			model = append(model, it)
		}
		if q.Len() != len(model) {
			t.Fatalf("queue holds %d, model %d", q.Len(), len(model))
		}
		var prev Item
		for first := true; q.Len() > 0; first = false {
			it := q.Pop()
			if !first && Less(it, prev) {
				t.Fatalf("final drain order violated: %v after %v", it, prev)
			}
			prev = it
		}
	})
}
