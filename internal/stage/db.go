// The stage database: a precomputed, shareable index of every stage the
// analyzer can ask for over one (network, sensitization) pair. Stage
// enumeration is static during an analysis — a trigger's stages never
// change — so the enumeration results are memoized here, slice-indexed by
// (element index, transition) instead of hashed, and built at most once
// per key under a sync.Once so any number of concurrent analyses can
// share one database without rebuilding or locking on the hot path.
package stage

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// DB is the shared stage database for one network under one sensitization
// oracle. Entries are built lazily on first access and are immutable
// afterwards; every accessor is safe for concurrent use. A DB built by one
// analysis run can be handed to later runs over the same network with the
// same static sensitization (core checks the Stamp before accepting one).
type DB struct {
	nw  *netlist.Network
	opt Options

	// Stamp identifies the sensitization state the database was built
	// under (the caller encodes static node values and enumeration
	// bounds). Consumers must not share a DB across different stamps.
	Stamp string

	through []dbEntry   // (trans, transition) → stages through the device
	release []dbEntry   // (node, transition) → stages driving the node
	from    []dbEntry   // (node, transition) → stages fanning out of the node
	groups  []groupEntry // trans → channel-connected group

	truncated atomic.Bool
}

// dbEntry is one memoized enumeration result.
type dbEntry struct {
	once   sync.Once
	stages []*Stage
	trunc  bool
}

// groupEntry is one memoized channel group.
type groupEntry struct {
	once  sync.Once
	nodes []*netlist.Node
}

// NewDB creates an empty database for the network. opt.Oracle fixes the
// sensitization for every enumeration the database will ever perform.
func NewDB(nw *netlist.Network, opt Options) *DB {
	return &DB{
		nw:      nw,
		opt:     opt.fill(),
		through: make([]dbEntry, 2*len(nw.Trans)),
		release: make([]dbEntry, 2*len(nw.Nodes)),
		from:    make([]dbEntry, 2*len(nw.Nodes)),
		groups:  make([]groupEntry, len(nw.Trans)),
	}
}

// Network returns the network the database indexes.
func (db *DB) Network() *netlist.Network { return db.nw }

// Truncated reports whether any enumeration performed so far hit the
// MaxPaths/MaxDepth caps. With a shared database this is cumulative over
// every analysis that touched it.
func (db *DB) Truncated() bool { return db.truncated.Load() }

// Through returns the stages created when transistor t becomes conducting,
// targeting transition tr, plus whether that enumeration was truncated.
func (db *DB) Through(t *netlist.Trans, tr tech.Transition) ([]*Stage, bool) {
	e := &db.through[2*t.Index+int(tr)]
	e.once.Do(func() {
		res := Through(db.nw, t, tr, db.opt)
		e.stages, e.trunc = res.Stages, res.Truncated
		if res.Truncated {
			db.truncated.Store(true)
		}
	})
	return e.stages, e.trunc
}

// Release returns the stages that could drive node n with transition tr
// (the paths a released node may move along), plus truncation.
func (db *DB) Release(n *netlist.Node, tr tech.Transition) ([]*Stage, bool) {
	e := &db.release[2*n.Index+int(tr)]
	e.once.Do(func() {
		res := ToNode(db.nw, n, tr, db.opt)
		e.stages, e.trunc = res.Stages, res.Truncated
		if res.Truncated {
			db.truncated.Store(true)
		}
	})
	return e.stages, e.trunc
}

// From returns the stages created when node n itself transitions (an input
// event riding through conducting pass devices), plus truncation.
func (db *DB) From(n *netlist.Node, tr tech.Transition) ([]*Stage, bool) {
	e := &db.from[2*n.Index+int(tr)]
	e.once.Do(func() {
		res := FromNode(db.nw, n, tr, db.opt)
		e.stages, e.trunc = res.Stages, res.Truncated
		if res.Truncated {
			db.truncated.Store(true)
		}
	})
	return e.stages, e.trunc
}

// Group returns the non-source nodes channel-connected to either terminal
// of t through possibly-conducting transistors (t itself excluded),
// without expanding through strong sources — the set of nodes a turn-off
// of t releases.
func (db *DB) Group(t *netlist.Trans) []*netlist.Node {
	e := &db.groups[t.Index]
	e.once.Do(func() {
		e.nodes = channelGroup(db.nw, t, db.opt.Oracle)
	})
	return e.nodes
}

// seenPool recycles the visited-marks scratch of channelGroup; on a
// chip-scale network a fresh per-call slice is tens of kilobytes times
// tens of thousands of groups, all garbage.
var seenPool sync.Pool

// channelGroup walks the channel graph from t's terminals.
func channelGroup(nw *netlist.Network, t *netlist.Trans, oracle Oracle) []*netlist.Node {
	var seen []bool
	if v := seenPool.Get(); v != nil {
		seen = v.([]bool)
	}
	if len(seen) < len(nw.Nodes) {
		seen = make([]bool, len(nw.Nodes))
	}
	var out []*netlist.Node
	var q []*netlist.Node
	defer func() {
		// The true marks are exactly the group members: clear those and
		// recycle, far cheaper than zeroing the whole slice.
		for _, n := range out {
			seen[n.Index] = false
		}
		seenPool.Put(seen)
	}()
	for _, m := range []*netlist.Node{t.A, t.B} {
		if m != nil && !m.IsSource() && !seen[m.Index] {
			seen[m.Index] = true
			out = append(out, m)
			q = append(q, m)
		}
	}
	for len(q) > 0 {
		n := q[0]
		q = q[1:]
		for _, tr := range n.Terms {
			if tr == t {
				continue
			}
			if oracle(tr) == Off {
				continue
			}
			o := tr.Other(n)
			if o == nil || seen[o.Index] || o.IsSource() {
				continue
			}
			seen[o.Index] = true
			out = append(out, o)
			q = append(q, o)
		}
	}
	return out
}

// Prewarm eagerly builds every entry an analysis can touch, fanning the
// enumeration out over the given number of workers (0 selects GOMAXPROCS).
// The closure matches the analyzer's access pattern: through-stages and
// channel groups for every gated device, release stages for every group
// member, and fan-out stages for every input with channel terminals.
// Prewarming is optional — entries not built here are still built lazily.
func (db *DB) Prewarm(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(db.nw.Trans) {
		workers = len(db.nw.Trans)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(db.nw.Trans) {
					return
				}
				t := db.nw.Trans[i]
				if t.AlwaysOn() {
					continue
				}
				for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
					db.Through(t, tr)
				}
				for _, m := range db.Group(t) {
					for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
						db.Release(m, tr)
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, n := range db.nw.Inputs() {
		if len(n.Terms) > 0 {
			for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
				db.From(n, tr)
			}
		}
	}
}
