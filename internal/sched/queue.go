// Package sched provides the deterministic event-scheduling machinery the
// timing analyzer's drain loop runs on: a priority queue with a strict
// total order on (time, node, transition), a frontier batcher that carves
// off runs of events safe to evaluate together, and a worker pool whose
// goroutines carry pprof labels.
//
// Determinism is the package's contract. The queue's order is total — two
// distinct items never compare equal — so the pop sequence is a pure
// function of the push multiset, independent of push interleaving or of
// the heap's internal arrangement. The analyzer relies on this to keep
// parallel drains bit-identical to serial ones: whatever the batching, the
// commit order is the queue order.
package sched

// Item is one pending propagation: the (node, transition) pair becomes
// ready at time T. The scheduler does not interpret T beyond ordering;
// staleness (a fresher arrival superseding a queued one) is the caller's
// protocol, handled at pop time.
type Item struct {
	T    float64
	Node int32
	Tr   uint8
}

// Less is the strict total order of the scheduler: time, then node, then
// transition. A mere partial order on time would let the pop order of
// tied events depend on the queue's internal state — i.e. on every
// unrelated event ever pushed — making feedback-guard cutoffs
// irreproducible between runs.
func Less(a, b Item) bool {
	if a.T != b.T {
		return a.T < b.T
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Tr < b.Tr
}

// Queue is a priority queue of Items under Less. The zero value is an
// empty queue ready for use. Not safe for concurrent use — the analyzer
// owns it from the serial commit side of the drain.
//
// Internally a 4-ary implicit heap on a value slice: items are moved, not
// boxed, and the four children of a node share a cache line (an Item is 16
// bytes), so sift-down — the cost center of a pop-heavy workload — touches
// half the levels of a binary heap.
type Queue struct {
	s []Item
}

// Len returns the number of queued items (including any stale ones the
// caller has yet to skip).
func (q *Queue) Len() int { return len(q.s) }

// Peek returns the minimum item without removing it. The queue must be
// non-empty.
func (q *Queue) Peek() Item { return q.s[0] }

// Reset empties the queue, keeping its storage for reuse.
func (q *Queue) Reset() { q.s = q.s[:0] }

// Grow ensures capacity for at least n additional items.
func (q *Queue) Grow(n int) {
	if cap(q.s)-len(q.s) < n {
		next := make([]Item, len(q.s), len(q.s)+n)
		copy(next, q.s)
		q.s = next
	}
}

// Push inserts an item.
func (q *Queue) Push(it Item) {
	q.s = append(q.s, it)
	s := q.s
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !Less(s[i], s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

// Pop removes and returns the minimum item. The queue must be non-empty.
func (q *Queue) Pop() Item {
	s := q.s
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	q.s = s
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Select the least of up to four children.
		end := c + 4
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if Less(s[j], s[min]) {
				min = j
			}
		}
		if !Less(s[min], s[i]) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
