package stage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/netlist"
	"repro/internal/tech"
)

// stageKey is a structural fingerprint for comparing stages produced by
// independent enumerations (pointer identity cannot hold across them).
func stageKey(st *Stage) string {
	s := fmt.Sprintf("%s>%s/%v:", st.Source.Name, st.Target.Name, st.Transition)
	for _, e := range st.Path {
		s += e.Trans.Gate.Name + ","
	}
	return s
}

func sameStages(a, b []*Stage) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if stageKey(a[i]) != stageKey(b[i]) {
			return false
		}
	}
	return true
}

// passNet builds a two-transistor pass chain driven by an inverter, rich
// enough to exercise Through/Release/From/Group.
func passNet() (*netlist.Network, *netlist.Node, *netlist.Node) {
	p := tech.NMOS4()
	nw := netlist.New("pass", p)
	in, mid, out := nw.Node("in"), nw.Node("mid"), nw.Node("out")
	g1, g2 := nw.Node("g1"), nw.Node("g2")
	nw.MarkInput(in)
	nw.MarkInput(g1)
	nw.MarkInput(g2)
	nw.AddTrans(tech.NEnh, in, mid, nw.GND(), 0, 0)
	nw.AddTrans(tech.NDep, mid, nw.Vdd(), mid, 0, 4*p.MinL)
	nw.AddTrans(tech.NEnh, g1, mid, out, 0, 0)
	nw.AddTrans(tech.NEnh, g2, out, nw.GND(), 0, 0)
	return nw, in, out
}

// TestDBMatchesDirectEnumeration pins the database to the plain package
// functions: every accessor must return exactly what Through/ToNode/FromNode
// return for the same key, and cached calls must return the same slice.
func TestDBMatchesDirectEnumeration(t *testing.T) {
	nw, in, out := passNet()
	db := NewDB(nw, Options{})
	for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
		for _, tx := range nw.Trans {
			got, trunc := db.Through(tx, tr)
			want := Through(nw, tx, tr, Options{})
			if trunc != want.Truncated || !sameStages(got, want.Stages) {
				t.Errorf("Through(%s,%v): db disagrees with direct enumeration", tx.Gate.Name, tr)
			}
		}
		for _, n := range []*netlist.Node{in, out, nw.Lookup("mid")} {
			got, trunc := db.Release(n, tr)
			want := ToNode(nw, n, tr, Options{})
			if trunc != want.Truncated || !sameStages(got, want.Stages) {
				t.Errorf("Release(%s,%v): db disagrees with direct enumeration", n.Name, tr)
			}
			gotF, truncF := db.From(n, tr)
			wantF := FromNode(nw, n, tr, Options{})
			if truncF != wantF.Truncated || !sameStages(gotF, wantF.Stages) {
				t.Errorf("From(%s,%v): db disagrees with direct enumeration", n.Name, tr)
			}
		}
	}
	// Cached: the second call must hand back the identical slice, not a
	// re-enumeration.
	first, _ := db.Release(out, tech.Fall)
	second, _ := db.Release(out, tech.Fall)
	if len(first) > 0 && &first[0] != &second[0] {
		t.Error("Release re-enumerated a cached entry")
	}
}

// TestDBCompiledConsequenceLists pins the compiled TurnOn/TurnOff lists to
// the reference nested enumeration the event loop used to perform inline:
// turn-on is Through(t, Rise) then Through(t, Fall); turn-off walks the
// released group in order, Rise before Fall per member, with paths through
// the device itself filtered out. The lists exist so the drain does one
// slice walk per gate event — but the order of candidates (which fixes
// tie-breaking and therefore provenance) must be exactly the reference's.
func TestDBCompiledConsequenceLists(t *testing.T) {
	nw, _, _ := passNet()
	db := NewDB(nw, Options{})
	for _, tx := range nw.Trans {
		gotOn, truncOn := db.TurnOn(tx)
		rise, tr1 := db.Through(tx, tech.Rise)
		fall, tr2 := db.Through(tx, tech.Fall)
		wantOn := append(append([]*Stage{}, rise...), fall...)
		if truncOn != (tr1 || tr2) || !sameStages(gotOn, wantOn) {
			t.Errorf("TurnOn(%s): compiled list disagrees with Through enumeration", tx.Gate.Name)
		}

		gotOff, _ := db.TurnOff(tx)
		var wantOff []*Stage
		for _, m := range db.Group(tx) {
			for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
				stages, _ := db.Release(m, tr)
				for _, st := range stages {
					if !st.UsesTrans(tx) {
						wantOff = append(wantOff, st)
					}
				}
			}
		}
		if !sameStages(gotOff, wantOff) {
			t.Errorf("TurnOff(%s): compiled list disagrees with group/Release enumeration", tx.Gate.Name)
		}
		for _, st := range gotOff {
			if st.UsesTrans(tx) {
				t.Errorf("TurnOff(%s): list contains a path through the off device", tx.Gate.Name)
			}
		}
	}
	// Cached: repeated calls hand back the identical slices.
	first, _ := db.TurnOffIdx(0)
	second, _ := db.TurnOffIdx(0)
	if len(first) > 0 && &first[0] != &second[0] {
		t.Error("TurnOffIdx re-built a cached list")
	}
}

func TestDBGroup(t *testing.T) {
	nw, _, out := passNet()
	db := NewDB(nw, Options{})
	var pass *netlist.Trans
	for _, tx := range nw.Trans {
		if tx.Gate.Name == "g1" {
			pass = tx
		}
	}
	g := db.Group(pass)
	found := map[string]bool{}
	for _, n := range g {
		found[n.Name] = true
	}
	// Both channel terminals are non-source and must be in the group; the
	// rails must never be.
	if !found["mid"] || !found[out.Name] {
		t.Errorf("group of pass gate = %v, want mid and out", found)
	}
	for _, n := range g {
		if n.IsSource() {
			t.Errorf("group contains source node %s", n.Name)
		}
	}
}

// TestDBConcurrentAccess hammers every accessor from several goroutines;
// meaningful under -race, where it proves the once-per-entry construction
// publishes safely.
func TestDBConcurrentAccess(t *testing.T) {
	nw, in, out := passNet()
	db := NewDB(nw, Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
				db.Release(out, tr)
				db.From(in, tr)
				for _, tx := range nw.Trans {
					db.Through(tx, tr)
					db.Group(tx)
				}
			}
		}()
	}
	wg.Wait()
}

// TestDBPrewarm checks prewarming builds the same entries lazy access
// would (same slices afterwards — Prewarm must not rebuild).
func TestDBPrewarm(t *testing.T) {
	nw, _, out := passNet()
	db := NewDB(nw, Options{})
	db.Prewarm(4)
	warm, _ := db.Release(out, tech.Fall)
	want := ToNode(nw, out, tech.Fall, Options{})
	if !sameStages(warm, want.Stages) {
		t.Error("prewarmed Release disagrees with direct enumeration")
	}
}
