package netlist

import (
	"bufio"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/tech"
)

// lowChunk forces multi-chunk splits on test-sized inputs; production
// uses minChunkBytes.
const lowChunk = 16

// TestAliasCycleError pins the satellite fix: `= a b` / `= b a` used to
// hang resolve forever. Both parsers must reject the cycle with the same
// line-numbered error instead.
func TestAliasCycleError(t *testing.T) {
	p := tech.NMOS4()
	cases := []struct {
		name, src, wantErr string
	}{
		{"two-cycle", "= a b\n= b a\nN a 1\n", `sim t:3: alias cycle resolving "a"`},
		{"three-cycle", "= a b\n= b c\n= c a\ne a b c\n", `sim t:4: alias cycle resolving "a"`},
		{"cycle-via-directive", "= x y\n= y x\n@ in x\n", `sim t:3: alias cycle resolving "x"`},
		// A reference before the closing alias line resolves fine; only
		// references after the cycle forms may fail.
		{"late-cycle", "= a b\nN a 1\n= b a\nN c 1\nN a 1\n", `sim t:5: alias cycle resolving "a"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSim("t", p, strings.NewReader(tc.src))
			if err == nil || err.Error() != tc.wantErr {
				t.Fatalf("serial: got %v, want %s", err, tc.wantErr)
			}
			for _, workers := range []int{1, 2, 8} {
				_, perr := readSimChunked("t", p, strings.NewReader(tc.src), workers, lowChunk)
				if perr == nil || perr.Error() != tc.wantErr {
					t.Fatalf("parallel workers=%d: got %v, want %s", workers, perr, tc.wantErr)
				}
			}
		})
	}
}

// TestAliasSelfReference checks that `= a a` stays a no-op (not a cycle).
func TestAliasSelfReference(t *testing.T) {
	p := tech.NMOS4()
	for _, parse := range []func() (*Network, error){
		func() (*Network, error) { return ReadSim("t", p, strings.NewReader("= a a\nN a 1\n")) },
		func() (*Network, error) {
			return readSimChunked("t", p, strings.NewReader("= a a\nN a 1\n"), 2, 1)
		},
	} {
		nw, err := parse()
		if err != nil {
			t.Fatalf("self-alias rejected: %v", err)
		}
		if len(nw.Nodes) != 3 { // Vdd, GND, a
			t.Fatalf("got %d nodes, want 3", len(nw.Nodes))
		}
	}
}

// TestParallelErrorIdentity checks that rejected inputs produce the
// byte-identical error — message and absolute line number — at every
// worker count, including when the bad line lands in a late chunk.
func TestParallelErrorIdentity(t *testing.T) {
	p := tech.NMOS4()
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "e g%d a%d b%d 2 2\n", i, i, i+1)
	}
	cases := []string{
		sb.String() + "z bogus record\n",
		sb.String() + "e g\n",
		sb.String() + "@ flow a>b 999999\n",
		sb.String() + "@ flow sideways 0\n",
		sb.String() + "@ flow sideways 999999\n", // bad index wins over bad direction
		"| units: 0\n" + sb.String(),
		sb.String() + "N x notanumber\n",
		sb.String() + "r a b -5\n",
		sb.String() + "C a b nope\n",
		sb.String() + "p g a b 2 2\n", // no p-channel in nMOS
		sb.String() + "@\n",
		sb.String() + "@ whatever x\n",
		sb.String() + "e g a b 0 2\n",
	}
	for i, src := range cases {
		_, err := ReadSim("t", p, strings.NewReader(src))
		if err == nil {
			t.Fatalf("case %d: serial accepted bad input", i)
		}
		for _, workers := range []int{1, 2, 8} {
			_, perr := readSimChunked("t", p, strings.NewReader(src), workers, lowChunk)
			if perr == nil || perr.Error() != err.Error() {
				t.Fatalf("case %d workers=%d:\n  serial:   %v\n  parallel: %v", i, workers, err, perr)
			}
		}
	}
}

// TestParallelTooLongLine checks that an over-long line is rejected the
// same way the serial scanner rejects it.
func TestParallelTooLongLine(t *testing.T) {
	p := tech.NMOS4()
	src := "N a 1\n| " + strings.Repeat("x", maxSimLine+1) + "\nN b 1\n"
	_, err := ReadSim("t", p, strings.NewReader(src))
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("serial: got %v, want ErrTooLong", err)
	}
	for _, workers := range []int{1, 2} {
		_, perr := ReadSimParallel("t", p, strings.NewReader(src), workers)
		if perr == nil || perr.Error() != err.Error() {
			t.Fatalf("workers=%d: got %v, want %v", workers, perr, err)
		}
	}
}

// TestSplitSimChunks checks the chunker's invariants: concatenation
// reproduces the input, every interior boundary is a line boundary, no
// chunk is empty, and the chunk count respects the worker bound.
func TestSplitSimChunks(t *testing.T) {
	inputs := []string{
		"",
		"a\n",
		"one line no newline",
		strings.Repeat("e g a b 2 2\n", 10000),
		strings.Repeat("x\n", 5) + "tail without newline",
		"\n\n\n",
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, minChunk := range []int{1, 16, minChunkBytes} {
			for i, src := range inputs {
				chunks := splitSimChunks(src, workers, minChunk)
				if got := strings.Join(chunks, ""); got != src {
					t.Fatalf("input %d workers=%d min=%d: concatenation differs", i, workers, minChunk)
				}
				if len(chunks) > workers {
					t.Fatalf("input %d workers=%d min=%d: %d chunks", i, workers, minChunk, len(chunks))
				}
				for j, c := range chunks {
					if c == "" {
						t.Fatalf("input %d workers=%d min=%d: empty chunk %d", i, workers, minChunk, j)
					}
					if j < len(chunks)-1 && !strings.HasSuffix(c, "\n") {
						t.Fatalf("input %d workers=%d min=%d: chunk %d not newline-terminated", i, workers, minChunk, j)
					}
				}
			}
		}
	}
}

// TestParallelInterleavedState checks order-dependent records crossing
// chunk boundaries: a units: rescale mid-file, alias redefinition, and
// flow/precharge directives must replay exactly as the serial parser
// applies them, wherever the chunk boundaries land.
func TestParallelInterleavedState(t *testing.T) {
	p := tech.NMOS4()
	var sb strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, "e g%d a%d b%d 2 2\n", i, i, i+1)
		if i == 100 {
			sb.WriteString("| units: 50\n")
		}
		if i == 150 {
			sb.WriteString("= a150 alias150\n")
		}
		if i == 200 {
			// Re-point the alias: later references resolve differently
			// from earlier ones.
			sb.WriteString("= b200 alias150\nN alias150 3\n")
		}
	}
	sb.WriteString("@ flow a>b 250\n@ precharged a42\n@ in g0\n@ out b300\n")
	src := sb.String()
	want, err := ReadSim("t", p, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 17} {
		got, err := readSimChunked("t", p, strings.NewReader(src), workers, lowChunk)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if derr := DiffNetworks(want, got); derr != nil {
			t.Fatalf("workers=%d: %v", workers, derr)
		}
	}
}

// TestReadSimParallelSample checks the documented sample against the
// production entry point (default chunk floor) at several worker counts,
// including 0 = GOMAXPROCS.
func TestReadSimParallelSample(t *testing.T) {
	p := tech.NMOS4()
	want, err := ReadSim("sample", p, strings.NewReader(sampleSim))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 8} {
		got, err := ReadSimParallel("sample", p, strings.NewReader(sampleSim), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if derr := DiffNetworks(want, got); derr != nil {
			t.Fatalf("workers=%d: %v", workers, derr)
		}
	}
}
