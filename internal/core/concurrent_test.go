package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/netlist"
	"repro/internal/stage"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// sameEvent compares arrivals by value, ignoring the Via stage pointer:
// analyzers with private databases hold distinct (but equivalent) stage
// objects, and the guarantee under test is bit-identical times.
func sameEvent(a, b Event) bool {
	return a.Valid == b.Valid && a.T == b.T && a.Slope == b.Slope &&
		a.FromNode == b.FromNode && a.FromTr == b.FromTr
}

// TestConcurrentSharedDB runs several analyzers at once over one network,
// all sharing one stage database, and checks every arrival is bit-identical
// to a strict-serial baseline. Run under -race this exercises the database's
// once-per-entry construction: the "cold" case starts from an empty DB so
// the concurrent analyzers race to build each entry.
func TestConcurrentSharedDB(t *testing.T) {
	p := tech.NMOS4()
	const width = 4
	nw, err := gen.Chip(p, width)
	if err != nil {
		t.Fatal(err)
	}
	fixed, lb := gen.ChipDirectives(width)
	m := delay.NewSlope(delay.AnalyticTables(p))

	newAnalyzer := func(db *stage.DB) *Analyzer {
		opts := Options{DB: db, Workers: 1}
		for _, name := range lb {
			n := nw.Lookup(name)
			if n == nil {
				t.Fatalf("directive node %s missing", name)
			}
			opts.LoopBreak = append(opts.LoopBreak, n)
		}
		a := New(nw, m, opts)
		for name, v := range fixed {
			a.SetFixed(nw.Lookup(name), switchsim.FromBool(v == "1"))
		}
		for _, in := range nw.Inputs() {
			if _, ok := fixed[in.Name]; ok {
				continue
			}
			a.SetInputEvent(in, tech.Rise, 0, 0)
			a.SetInputEvent(in, tech.Fall, 0, 0)
		}
		return a
	}

	// Strict-serial baseline with a private database.
	base := newAnalyzer(nil)
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	warm := base.StageDB()
	if warm == nil {
		t.Fatal("no stage database after run")
	}

	// A cold database with the matching stamp: nothing built yet, so the
	// concurrent runs below contend on every entry's sync.Once.
	cold := stage.NewDB(nw, stage.Options{Oracle: base.oracle()})
	cold.Stamp = warm.Stamp

	for _, tc := range []struct {
		name string
		db   *stage.DB
	}{{"warm", warm}, {"cold", cold}} {
		const runs = 4
		as := make([]*Analyzer, runs)
		errs := make([]error, runs)
		var wg sync.WaitGroup
		for i := range as {
			as[i] = newAnalyzer(tc.db)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = as[i].Run()
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s run %d: %v", tc.name, i, err)
			}
		}
		for i, a := range as {
			if a.StageDB() != tc.db {
				t.Errorf("%s run %d rejected the shared database", tc.name, i)
			}
			for _, n := range nw.Nodes {
				for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
					want, got := base.Arrival(n, tr), a.Arrival(n, tr)
					if !sameEvent(want, got) {
						t.Fatalf("%s run %d: arrival %s/%s = %+v, want %+v",
							tc.name, i, n.Name, tr, got, want)
					}
				}
			}
		}
	}
}

// TestEpochSnapshotIsolation pins the generational guarantee: analyzers
// reading a network and its stage database keep bit-identical results while
// another analyzer runs edit epochs over the same lineage. Reanalyze clones
// the network and derives the next database generation, so the readers'
// snapshot — network, database entries, arrivals — must never mix with the
// new epoch. Run under -race this also proves the derivation shares clean
// entries without writes the readers can observe.
func TestEpochSnapshotIsolation(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.Chip(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	fixed, lb := gen.ChipDirectives(4)
	m := delay.NewSlope(delay.AnalyticTables(p))

	newAnalyzer := func(target *netlist.Network, db *stage.DB) *Analyzer {
		opts := Options{DB: db, Workers: 1}
		for _, name := range lb {
			opts.LoopBreak = append(opts.LoopBreak, target.Lookup(name))
		}
		a := New(target, m, opts)
		for name, v := range fixed {
			a.SetFixed(target.Lookup(name), switchsim.FromBool(v == "1"))
		}
		for _, in := range target.Inputs() {
			if _, ok := fixed[in.Name]; ok {
				continue
			}
			a.SetInputEvent(in, tech.Rise, 0, 0)
			a.SetInputEvent(in, tech.Fall, 0, 0)
		}
		return a
	}

	// The editing analyzer establishes the generation the readers hold.
	editor := newAnalyzer(nw, nil)
	if err := editor.Run(); err != nil {
		t.Fatal(err)
	}
	oldNet, oldDB := editor.Net, editor.StageDB()
	oldEpoch := oldDB.Epoch

	// Baseline arrivals of the old generation, captured before any edit.
	baseline := make([][2]Event, len(oldNet.Nodes))
	for i, n := range oldNet.Nodes {
		baseline[i] = [2]Event{editor.Arrival(n, tech.Rise), editor.Arrival(n, tech.Fall)}
	}

	// Readers re-analyze the old generation against the old database in a
	// loop while the editor advances epochs underneath them.
	done := make(chan struct{})
	var wg sync.WaitGroup
	readerErr := make([]error, 3)
	for r := range readerErr {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				select {
				case <-done:
					return
				default:
				}
				a := newAnalyzer(oldNet, oldDB)
				if err := a.Run(); err != nil {
					readerErr[r] = err
					return
				}
				if a.StageDB() != oldDB {
					readerErr[r] = fmt.Errorf("iter %d: reader rejected the shared database", iter)
					return
				}
				for i, n := range oldNet.Nodes {
					for _, tr := range []tech.Transition{tech.Rise, tech.Fall} {
						if got := a.Arrival(n, tr); !sameEvent(got, baseline[i][tr]) {
							readerErr[r] = fmt.Errorf("iter %d: arrival %s/%s = %+v, want %+v (snapshot leaked across epochs)",
								iter, n.Name, tr, got, baseline[i][tr])
							return
						}
					}
				}
			}
		}(r)
	}

	// Edit epochs: geometry and load tweaks that keep the invalidation
	// plan incremental, so Derive shares most entries with oldDB — the
	// exact sharing the readers race against.
	for epoch := 0; epoch < 4; epoch++ {
		idx := (7 * epoch) % len(editor.Net.Trans)
		for editor.Net.Trans[idx].IsWire() {
			idx = (idx + 1) % len(editor.Net.Trans)
		}
		stats, err := editor.Reanalyze([]incremental.Edit{
			{Kind: incremental.Resize, Index: idx, W: float64(4+epoch) * 1e-6},
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Epoch != oldEpoch+uint64(epoch)+1 {
			t.Fatalf("epoch %d: stats.Epoch = %d, want %d", epoch, stats.Epoch, oldEpoch+uint64(epoch)+1)
		}
	}
	close(done)
	wg.Wait()
	for r, err := range readerErr {
		if err != nil {
			t.Errorf("reader %d: %v", r, err)
		}
	}
	if oldDB.Epoch != oldEpoch {
		t.Errorf("old database epoch moved: %d -> %d", oldEpoch, oldDB.Epoch)
	}
}

// TestSharedDBStampMismatch checks the safety valve: an analyzer handed a
// database built under a different sensitization must fall back to a
// private one rather than reuse wrong enumerations.
func TestSharedDBStampMismatch(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.Chip(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, lb := gen.ChipDirectives(4)
	m := delay.NewSlope(delay.AnalyticTables(p))
	var opts Options
	for _, name := range lb {
		opts.LoopBreak = append(opts.LoopBreak, nw.Lookup(name))
	}

	stale := stage.NewDB(nw, stage.Options{})
	stale.Stamp = "not-the-real-stamp"
	opts.DB = stale
	opts.Workers = 1
	a := New(nw, m, opts)
	for _, in := range nw.Inputs() {
		a.SetInputEvent(in, tech.Rise, 0, 0)
		a.SetInputEvent(in, tech.Fall, 0, 0)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if a.StageDB() == stale {
		t.Error("analyzer accepted a database with a mismatched stamp")
	}
}
