package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/delay"
	"repro/internal/tech"
)

func TestSuiteComposition(t *testing.T) {
	names, err := SuiteNames(tech.NMOS4())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"inv-1x", "inv-fan4", "inv-chain5", "nand2", "nand3", "nor2",
		"superbuffer", "pass3", "pass6", "bus4", "inv-slow-in",
	}
	if len(names) != len(want) {
		t.Fatalf("suite has %d scenarios, want %d: %v", len(names), len(want), names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("scenario %d = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestScenarioModelVsAnalogInverter(t *testing.T) {
	// One representative scenario end to end: the model and reference
	// must agree within a loose factor (the tight comparisons live in
	// the benchmark harness; this pins the plumbing).
	p := tech.NMOS4()
	sc, err := invScenario(p, 2, 0, "plumbing")
	if err != nil {
		t.Fatal(err)
	}
	ref, slope, err := sc.AnalogDelay()
	if err != nil {
		t.Fatal(err)
	}
	if ref <= 0 || ref > 100e-9 {
		t.Fatalf("analog delay %g implausible", ref)
	}
	if !(slope > 0) {
		t.Errorf("analog output slope %g should be positive", slope)
	}
	tb := delay.AnalyticTables(p)
	d, outSlope, err := sc.ModelDelay(delay.NewRC(tb))
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || outSlope <= 0 {
		t.Fatalf("model results non-positive: %g %g", d, outSlope)
	}
	if d < ref/4 || d > ref*4 {
		t.Errorf("model %g vs analog %g: off by more than 4×", d, ref)
	}
}

func TestE3ShapesLumpedQuadratic(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep")
	}
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	rows, err := E3PassChains(p, tb, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Lumped must dominate rc everywhere, with the gap growing in n.
	gapPrev := 0.0
	for _, r := range rows {
		l, rc := r.Model["lumped"], r.Model["rc"]
		if l < rc {
			t.Errorf("n=%g: lumped %g < rc %g", r.X, l, rc)
		}
		gap := l / rc
		if gap < gapPrev-0.05 {
			t.Errorf("n=%g: lumped/rc ratio %g decreased (prev %g)", r.X, gap, gapPrev)
		}
		gapPrev = gap
		// Reference should sit below the distributed estimate on chains
		// (the models are pessimistic here).
		if r.Analog > r.Model["rc"]*1.3 {
			t.Errorf("n=%g: analog %g far above rc %g", r.X, r.Analog, r.Model["rc"])
		}
	}
}

func TestE5OnlySlopeResponds(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep")
	}
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	rows, err := E5InputSlope(p, tb, []float64{0.1e-9, 20e-9})
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := rows[0], rows[1]
	if fast.Model["rc"] != slow.Model["rc"] {
		t.Error("rc model should be flat in input slope")
	}
	if fast.Model["lumped"] != slow.Model["lumped"] {
		t.Error("lumped model should be flat in input slope")
	}
	if slow.Model["slope"] <= fast.Model["slope"] {
		t.Error("slope model should respond to input slope")
	}
	if slow.Analog <= fast.Analog {
		t.Error("reference should slow down with slow inputs")
	}
}

func TestFormatAccuracy(t *testing.T) {
	rows := []AccuracyRow{{
		Scenario: "x", Analog: 1e-9,
		Model: map[string]float64{"lumped": 2e-9, "rc": 1.5e-9, "slope": 1.1e-9},
	}}
	s := FormatAccuracy("title", rows)
	for _, want := range []string{"title", "lumped", "slope", "+100.0%", "mean |err|"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	if got := rows[0].Err("lumped"); math.Abs(got-100) > 1e-9 {
		t.Errorf("Err = %g", got)
	}
	if !math.IsInf((&AccuracyRow{}).Err("x"), 1) {
		t.Error("zero reference should be Inf")
	}
	if s := FormatAccuracy("empty", nil); !strings.Contains(s, "no rows") {
		t.Error("empty table should say so")
	}
}

func TestCSVAccuracy(t *testing.T) {
	rows := []AccuracyRow{{
		Scenario: "x", X: 3, Analog: 1e-9,
		Model: map[string]float64{"lumped": 2e-9, "rc": 1.5e-9, "slope": 1.1e-9},
	}}
	csv := CSVAccuracy(rows)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "scenario,x,analog_s,lumped_s,lumped_err_pct,rc_s,rc_err_pct,slope_s,slope_err_pct" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "x,3,1e-09,2e-09,100.00") {
		t.Errorf("row = %q", lines[1])
	}
	if CSVAccuracy(nil) != "" {
		t.Error("empty rows should give empty csv")
	}
}

func TestE9WireShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep")
	}
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	rows, err := E9PolyWire(p, tb, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	short, long := rows[0], rows[1]
	if long.Analog <= short.Analog {
		t.Error("longer wire should be slower")
	}
	// The lumped error must grow with length; the distributed must not
	// grow nearly as fast.
	if long.Err("lumped") <= short.Err("lumped") {
		t.Errorf("lumped error should grow with length: %g → %g",
			short.Err("lumped"), long.Err("lumped"))
	}
	// The distributed error grows far slower than the lumped error.
	lumpedGrowth := long.Err("lumped") - short.Err("lumped")
	rcGrowth := long.Err("rc") - short.Err("rc")
	if rcGrowth > lumpedGrowth/1.5 {
		t.Errorf("rc error growth %g should be well below lumped growth %g",
			rcGrowth, lumpedGrowth)
	}
}

func TestStandardBlocksBuild(t *testing.T) {
	for _, p := range []*tech.Params{tech.NMOS4(), tech.CMOS3()} {
		blocks, err := StandardBlocks(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(blocks) < 8 {
			t.Fatalf("only %d blocks", len(blocks))
		}
		for _, b := range blocks {
			if err := b.Net.Check(); err != nil {
				t.Errorf("%s: %v", b.Name, err)
			}
			if b.Net.Stats().Trans == 0 {
				t.Errorf("%s: empty", b.Name)
			}
		}
	}
}

func TestE6SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("analysis sweep")
	}
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	rows, err := E6Throughput(p, tb, "rc")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Stages <= 0 || r.Wall <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Block, r)
		}
		if r.CritArr <= 0 {
			t.Errorf("%s: no critical arrival", r.Block)
		}
	}
	out := FormatThroughput("t", rows)
	if !strings.Contains(out, "alu-8") {
		t.Error("format missing block")
	}
}

func TestE7Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("analysis sweep")
	}
	p := tech.NMOS4()
	tb := delay.AnalyticTables(p)
	rows, err := E7CriticalPaths(p, tb)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Arrival["lumped"] < r.Arrival["rc"]-1e-12 {
			t.Errorf("%s: lumped %g < rc %g", r.Block, r.Arrival["lumped"], r.Arrival["rc"])
		}
	}
	out := FormatCritical("t", rows)
	if !strings.Contains(out, "manchester-8") {
		t.Error("format missing block")
	}
}

func TestE8BoundsContainment(t *testing.T) {
	rows, err := E8RCBounds(10, 8, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Contained {
			t.Errorf("bounds violated: analog %g outside [%g, %g]", r.Analog, r.Lower, r.Upper)
		}
		if r.Elmore < r.Elmore50 {
			t.Errorf("TDe %g < ln2·TDe %g impossible", r.Elmore, r.Elmore50)
		}
	}
	out := FormatRCBounds("t", rows)
	if !strings.Contains(out, "containment: 8/8") {
		t.Errorf("containment line wrong:\n%s", out)
	}
}

func TestRandomTreeDeterminism(t *testing.T) {
	a := RandomTree(15, 5)
	b := RandomTree(15, 5)
	if a.String() != b.String() {
		t.Error("same seed, different trees")
	}
	c := RandomTree(15, 6)
	if a.String() == c.String() {
		t.Error("different seeds, same tree")
	}
}
