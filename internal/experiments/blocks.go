// Experiments E6 (verifier throughput/capacity) and E7 (critical paths of
// datapath blocks under each model).
package experiments

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/stage"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

// Block is a named generated circuit for the scaling experiments.
type Block struct {
	Name string
	Net  *netlist.Network
	// Fixed pins control inputs that do not toggle in the analyzed
	// scenario (e.g. unaccessed register-file word lines): the same
	// directives a Crystal user would give.
	Fixed map[string]switchsim.Value
	// LoopBreak names nodes whose fanout the analyzer cuts (latch
	// internals) — Crystal's feedback directive.
	LoopBreak []string
}

// SnapshotDir, when set (delaycmp -snapshot), caches each standard
// block's generated network as a .simx snapshot keyed by block name and
// technology, so repeated delaycmp runs materialize the E6/E7 circuit
// set with a near-memcpy load instead of regenerating it. The cache key
// does not observe generator code, so clear the directory after
// changing package gen.
var SnapshotDir string

// blockSnapshotKey is the freshness hash embedded in a cached block
// snapshot. The version suffix is bumped when the block set or the
// snapshot discipline changes incompatibly.
func blockSnapshotKey(name string, p *tech.Params) [32]byte {
	return sha256.Sum256([]byte("gen-block:" + name + ":" + p.Name + ":v1"))
}

// loadBlockNet materializes one block's network, via the snapshot cache
// when enabled.
func loadBlockNet(name string, p *tech.Params, build func() (*netlist.Network, error)) (*netlist.Network, error) {
	if SnapshotDir == "" {
		return build()
	}
	key := blockSnapshotKey(name, p)
	path := filepath.Join(SnapshotDir, name+"-"+p.Name+".simx")
	// Prefer the zero-copy mapped view; the mapping lives for the process
	// (delaycmp is a one-shot CLI, node names alias the mapped pages).
	if m, merr := netlist.OpenMapped(path, p); merr == nil {
		if m.SourceHash == key {
			return m.Net, nil
		}
		m.Close() // stale: the network never escaped
	}
	if f, err := os.Open(path); err == nil {
		nw, gotKey, rerr := netlist.ReadSnapshot(f, p)
		f.Close()
		if rerr == nil && gotKey == key {
			return nw, nil
		}
	}
	nw, err := build()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(SnapshotDir, 0o755); err == nil {
		// Best effort: a failed cache write only costs the next run a
		// regeneration.
		netlist.WriteSnapshotFile(path, nw, key)
	}
	return nw, nil
}

// StandardBlocks generates the E6/E7 circuit set for technology p. Sizes
// span two orders of magnitude in transistor count.
func StandardBlocks(p *tech.Params) ([]Block, error) {
	type g struct {
		name  string
		build func() (*netlist.Network, error)
	}
	gens := []g{
		{"alu-4", func() (*netlist.Network, error) { return gen.ALU(p, 4) }},
		{"alu-8", func() (*netlist.Network, error) { return gen.ALU(p, 8) }},
		{"alu-16", func() (*netlist.Network, error) { return gen.ALU(p, 16) }},
		{"barrel-8", func() (*netlist.Network, error) { return gen.BarrelShifter(p, 8) }},
		{"barrel-16", func() (*netlist.Network, error) { return gen.BarrelShifter(p, 16) }},
		{"decoder-5", func() (*netlist.Network, error) { return gen.Decoder(p, 5) }},
		{"manchester-8", func() (*netlist.Network, error) { return gen.ManchesterAdder(p, 8) }},
		{"ripple-16", func() (*netlist.Network, error) { return gen.RippleAdder(p, 16) }},
		{"pla-8x24x8", func() (*netlist.Network, error) { return gen.PLA(p, 8, 24, 8, 7) }},
		{"regfile-16x8", func() (*netlist.Network, error) { return gen.RegisterFile(p, 16, 8) }},
		{"carrysel-16", func() (*netlist.Network, error) { return gen.CarrySelectAdder(p, 16, 4) }},
		{"arraymul-8", func() (*netlist.Network, error) { return gen.ArrayMultiplier(p, 8) }},
		{"datapath-8", func() (*netlist.Network, error) { return gen.Datapath(p, 8) }},
	}
	var out []Block
	for _, gg := range gens {
		nw, err := loadBlockNet(gg.name, p, gg.build)
		if err != nil {
			return nil, fmt.Errorf("block %s: %w", gg.name, err)
		}
		b := Block{Name: gg.name, Net: nw}
		switch gg.name {
		case "regfile-16x8":
			// Only one word line toggles per access; analyzing all
			// sixteen toggling at once channel-connects every cell to
			// the bit lines and the analysis degenerates (the same
			// directive a Crystal user would supply).
			b.Fixed = map[string]switchsim.Value{}
			for w := 1; w < 16; w++ {
				b.Fixed[fmt.Sprintf("w%d", w)] = switchsim.V0
			}
			for w := 0; w < 16; w++ {
				for bit := 0; bit < 8; bit++ {
					b.LoopBreak = append(b.LoopBreak, fmt.Sprintf("qb_%d_%d", w, bit))
				}
			}
		case "datapath-8":
			// Same discipline for the embedded register file: pin the
			// upper address bits so at most two words are live, and
			// break the storage-cell feedback loops (a Crystal user's
			// standard latch directive).
			b.Fixed = map[string]switchsim.Value{
				"addr1": switchsim.V0,
				"addr2": switchsim.V0,
			}
			for wl := 0; wl < 8; wl++ {
				for bit := 0; bit < 8; bit++ {
					b.LoopBreak = append(b.LoopBreak, fmt.Sprintf("rf_qb_%d_%d", wl, bit))
				}
			}
		}
		out = append(out, b)
	}
	return out, nil
}

// ThroughputRow is one line of the E6 capacity table.
type ThroughputRow struct {
	Block      string
	Trans      int
	Nodes      int
	Stages     int // stage/model evaluations performed
	Wall       time.Duration
	CritArr    float64 // worst arrival (s)
	TransPerSc float64 // transistors per second of wall time
}

// analyzeBlock runs the verifier over a block with every non-fixed input
// toggling. db optionally seeds the stage database from a previous run of
// the same block (a different model, same sensitization); the analyzer's
// database is reachable from the returned analyzer for further chaining.
func analyzeBlock(b Block, m delay.Model, db *stage.DB) (*core.Analyzer, time.Duration, error) {
	opts := core.Options{DB: db, Workers: 1, NoReorder: NoReorder}
	for _, name := range b.LoopBreak {
		n := b.Net.Lookup(name)
		if n == nil {
			return nil, 0, fmt.Errorf("block %s: no loop-break node %q", b.Name, name)
		}
		opts.LoopBreak = append(opts.LoopBreak, n)
	}
	a := core.New(b.Net, m, opts)
	for name, v := range b.Fixed {
		n := b.Net.Lookup(name)
		if n == nil {
			return nil, 0, fmt.Errorf("block %s: no fixed node %q", b.Name, name)
		}
		a.SetFixed(n, v)
	}
	ins := b.Net.Inputs()
	if len(ins) == 0 {
		return nil, 0, fmt.Errorf("block %s has no inputs", b.Block())
	}
	for _, in := range ins {
		if _, fixed := b.Fixed[in.Name]; fixed {
			continue
		}
		if err := a.SetInputEvent(in, tech.Rise, 0, 0); err != nil {
			return nil, 0, err
		}
		if err := a.SetInputEvent(in, tech.Fall, 0, 0); err != nil {
			return nil, 0, err
		}
	}
	start := time.Now()
	if err := a.Run(); err != nil {
		return nil, 0, err
	}
	return a, time.Since(start), nil
}

// Block returns the block name (method on Block for error paths).
func (b Block) Block() string { return b.Name }

// E6Throughput measures verifier wall time and stage-evaluation counts
// over the standard blocks under the given model.
func E6Throughput(p *tech.Params, tb *delay.Tables, model string) ([]ThroughputRow, error) {
	m, err := delay.ByName(model, tb)
	if err != nil {
		return nil, err
	}
	blocks, err := StandardBlocks(p)
	if err != nil {
		return nil, err
	}
	// Blocks are independent analyses: fan out over the pool. Per-block
	// wall times are still measured per analysis (under contention they
	// include scheduling noise; total throughput is the headline metric).
	rows := make([]ThroughputRow, len(blocks))
	err = core.RunMany(len(blocks), Workers, func(i int) error {
		b := blocks[i]
		st := b.Net.Stats()
		a, wall, err := analyzeBlock(b, m, nil)
		if err != nil {
			return fmt.Errorf("block %s: %w", b.Name, err)
		}
		ev, _ := a.MaxArrival()
		r := ThroughputRow{
			Block:   b.Name,
			Trans:   st.Trans,
			Nodes:   st.Nodes,
			Stages:  a.StagesEvaluated(),
			Wall:    wall,
			CritArr: ev.T,
		}
		if wall > 0 {
			r.TransPerSc = float64(st.Trans) / wall.Seconds()
		}
		rows[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatThroughput renders E6 rows.
func FormatThroughput(title string, rows []ThroughputRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-14s %8s %7s %9s %12s %10s %12s\n",
		title, "block", "trans", "nodes", "stages", "wall", "crit", "trans/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %7d %9d %12s %8.1fns %12.0f\n",
			r.Block, r.Trans, r.Nodes, r.Stages, r.Wall.Round(time.Microsecond),
			r.CritArr*1e9, r.TransPerSc)
	}
	return b.String()
}

// CriticalRow is one line of the E7 table: a block's critical path arrival
// under each model.
type CriticalRow struct {
	Block    string
	Trans    int
	Arrival  map[string]float64 // model → worst arrival (s)
	Endpoint map[string]string  // model → endpoint node
}

// E7CriticalPaths analyzes selected blocks under all three models.
func E7CriticalPaths(p *tech.Params, tb *delay.Tables) ([]CriticalRow, error) {
	blocks, err := StandardBlocks(p)
	if err != nil {
		return nil, err
	}
	// The interesting subset: one of each structure class.
	want := map[string]bool{
		"alu-8": true, "barrel-8": true, "decoder-5": true,
		"manchester-8": true, "ripple-16": true,
	}
	var picked []Block
	for _, b := range blocks {
		if want[b.Name] {
			picked = append(picked, b)
		}
	}
	// Fan out over blocks; within a block the three models run in order,
	// chaining one stage database — the sensitization is model-independent,
	// so the enumeration from the first run serves all three.
	rows := make([]CriticalRow, len(picked))
	err = core.RunMany(len(picked), Workers, func(i int) error {
		b := picked[i]
		row := CriticalRow{
			Block:    b.Name,
			Trans:    b.Net.Stats().Trans,
			Arrival:  map[string]float64{},
			Endpoint: map[string]string{},
		}
		var db *stage.DB
		for _, m := range delay.All(tb) {
			a, _, err := analyzeBlock(b, m, db)
			if err != nil {
				return fmt.Errorf("block %s model %s: %w", b.Name, m.Name(), err)
			}
			db = a.StageDB()
			ev, path := a.MaxArrival()
			row.Arrival[m.Name()] = ev.T
			if path != nil {
				row.Endpoint[m.Name()] = path.End().Node.Name
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatCritical renders E7 rows.
func FormatCritical(title string, rows []CriticalRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-14s %8s %12s %12s %12s %14s\n",
		title, "block", "trans", "lumped", "rc", "slope", "endpoint(slope)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %10.1fns %10.1fns %10.1fns %14s\n",
			r.Block, r.Trans,
			r.Arrival["lumped"]*1e9, r.Arrival["rc"]*1e9, r.Arrival["slope"]*1e9,
			r.Endpoint["slope"])
	}
	return b.String()
}
