# Build/verify/benchmark driver. `make all` is the pre-merge gate: static
# checks, the race-mode short suite, and a full build.
GO ?= go

.PHONY: all build vet test race bench

all: vet race build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The short suite under the race detector: exercises the shared stage
# database and worker-pool fan-out concurrently (see docs/PERFORMANCE.md).
race:
	$(GO) test -race -short ./...

# Headline perf benchmarks (E2 accuracy suite, E6 chip-scale analysis),
# three runs each, recorded in BENCH_1.json next to the seed baseline.
bench:
	./scripts/bench.sh
