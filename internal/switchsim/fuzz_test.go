package switchsim

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// fuzzCircuit mirrors the incremental differential fuzzer's six circuit
// families (internal/incremental): distinct stage shapes — static ratioed
// gates, charge-sharing pass chains, precharged bus, wide fan-in decode,
// carry chains — so the fuzzer exercises every lattice mechanism, not just
// driven logic.
func fuzzCircuit(sel byte) (*netlist.Network, error) {
	p := tech.NMOS4()
	switch sel % 6 {
	case 0:
		return gen.InverterChain(p, 6, 2)
	case 1:
		return gen.PassChain(p, 5)
	case 2:
		return gen.RippleAdder(p, 2)
	case 3:
		return gen.Decoder(p, 2)
	case 4:
		return gen.PrechargedBus(p, 3)
	default:
		return gen.ALU(p, 2)
	}
}

// fuzzVectors decodes fuzz bytes into vectors over ni inputs: one symbol
// per byte (0/1/X with X underweighted, matching randomVectors), the tail
// padded with released inputs, capped past one 64-lane slab so boundary
// crossings stay in scope.
func fuzzVectors(data []byte, ni int) []Value {
	const maxVectors = 80 // > Lanes: keeps multi-slab runs reachable
	k := (len(data) + ni - 1) / ni
	if k > maxVectors {
		k = maxVectors
	}
	vecs := make([]Value, k*ni)
	for i := range vecs {
		vecs[i] = VX
		if i < len(data) {
			switch data[i] % 5 {
			case 0, 1:
				vecs[i] = V0
			case 2, 3:
				vecs[i] = V1
			}
		}
	}
	return vecs
}

// FuzzBatchSim is the batch/scalar differential fuzzer: every decoded
// vector batch must settle bit-identically — per vector, per node,
// including the oscillation flag — between the vectorized engine and a
// fresh scalar Sim per vector.
func FuzzBatchSim(f *testing.F) {
	// Precharged bus: precharge-vs-pulldown fights and K2 storage.
	f.Add([]byte{4, 2, 0, 4, 1, 3, 2, 2, 4, 0, 0, 1, 4, 4, 3})
	// Charge sharing: pass chain with released (X) gate and data symbols.
	f.Add([]byte{1, 3, 4, 0, 4, 2, 1, 4, 4, 0, 3, 4, 1, 2, 4, 4})
	// Ratioed nMOS: inverter chain, driven and floating inputs.
	f.Add([]byte{0, 2, 3, 4, 0, 1, 2, 3, 4, 0})
	// Carry chain and wide decode, multi-vector batches.
	f.Add([]byte{2, 1, 2, 3, 0, 2, 1, 0, 3, 2, 1, 0, 0, 2, 3, 1, 2, 0})
	f.Add([]byte{3, 0, 2, 2, 3, 1, 4, 0, 2, 3, 1})
	// ALU plus a long tail: crosses the 64-lane slab boundary.
	f.Add(append([]byte{5}, bytes.Repeat([]byte{2, 0, 3, 1, 4, 2, 0, 3}, 90)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		nw, err := fuzzCircuit(data[0])
		if err != nil {
			t.Fatalf("circuit: %v", err)
		}
		ni := len(nw.Inputs())
		if ni == 0 {
			t.Fatalf("fuzz circuit has no inputs")
		}
		checkBatchIdentity(t, nw, fuzzVectors(data[1:], ni))
	})
}
