package delay

import (
	"math"
	"testing"

	"repro/internal/netlist"
	"repro/internal/stage"
	"repro/internal/tech"
)

// TestTablesRBoundaries exercises the effective-resistance lookup at the
// geometry edges the verifier can actually be handed: zero or negative
// width (a malformed .sim record — the netlist layer defaults geometry,
// but Tables.R must still behave), zero-ohm-square entries (device types
// a technology does not provide), and extreme aspect ratios.
func TestTablesRBoundaries(t *testing.T) {
	tb := AnalyticTables(tech.NMOS4())
	rsq := tb.RSquare[tech.NEnh][tech.Fall]
	if rsq <= 0 {
		t.Fatalf("NMOS4 must provide NEnh fall resistance, got %g", rsq)
	}
	cases := []struct {
		name string
		d    tech.Device
		tr   tech.Transition
		w, l float64
		want func(r float64) bool
		desc string
	}{
		{"unit square", tech.NEnh, tech.Fall, 1e-6, 1e-6,
			func(r float64) bool { return math.Abs(r-rsq) < 1e-9 }, "R = RSquare"},
		{"double width halves R", tech.NEnh, tech.Fall, 2e-6, 1e-6,
			func(r float64) bool { return math.Abs(r-rsq/2) < 1e-9 }, "R = RSquare/2"},
		{"zero width", tech.NEnh, tech.Fall, 0, 1e-6,
			func(r float64) bool { return math.IsInf(r, 1) }, "+Inf (never silently tiny)"},
		{"zero length", tech.NEnh, tech.Fall, 1e-6, 0,
			func(r float64) bool { return r == 0 }, "0 (ideal short)"},
		{"extreme aspect", tech.NEnh, tech.Fall, 1e-9, 1e-3,
			func(r float64) bool { return r > 0 && !math.IsInf(r, 1) }, "finite positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tb.R(tc.d, tc.tr, tc.w, tc.l); !tc.want(got) {
				t.Errorf("R(%s,%s,%g,%g) = %g, want %s", tc.d, tc.tr, tc.w, tc.l, got, tc.desc)
			}
		})
	}
}

// TestModelsOnSingleElementStage checks every model on the smallest stage
// that exists: one device between a rail and the target (Path length 1).
// Degenerate stages are common — every inverter pulldown is one — and the
// driver detection, Elmore merge, and slope coupling must not assume a
// longer path.
func TestModelsOnSingleElementStage(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("inv", p)
	in := nw.Node("in")
	nw.MarkInput(in)
	out := nw.Node("out")
	nw.AddCap(out, 50e-15)
	pd := nw.AddTrans(tech.NEnh, in, out, nw.GND(), 4e-6, 2e-6)
	res := stage.Through(nw, pd, tech.Fall, stage.Options{})
	if len(res.Stages) == 0 {
		t.Fatal("no stage through the pulldown")
	}
	st := res.Stages[0]
	if len(st.Path) != 1 {
		t.Fatalf("expected single-element path, got %d", len(st.Path))
	}
	tb := AnalyticTables(p)
	for _, m := range All(tb) {
		r := m.Evaluate(nw, st, 1e-9)
		if !(r.Delay > 0) || math.IsInf(r.Delay, 0) || math.IsNaN(r.Delay) {
			t.Errorf("%s: delay %g on single-element stage", m.Name(), r.Delay)
		}
		if !(r.Slope > 0) || math.IsInf(r.Slope, 0) || math.IsNaN(r.Slope) {
			t.Errorf("%s: slope %g on single-element stage", m.Name(), r.Slope)
		}
	}
	// On a one-element stage lumped and rc agree exactly: there is only
	// one resistance for all the capacitance, so Elmore IS ΣR·ΣC.
	l := NewLumped(tb).Evaluate(nw, st, 0).Delay
	rc := NewRC(tb).Evaluate(nw, st, 0).Delay
	if math.Abs(l-rc) > 1e-15 {
		t.Errorf("lumped %g != rc %g on single-element stage", l, rc)
	}
}

// TestModelsOnTruncatedEnumeration drives a wide source fan-in through
// tight MaxPaths/MaxDepth bounds, so enumeration reports Truncated, and
// checks that every stage that IS returned still prices finite and
// positive under every model — truncation must degrade coverage, never
// poison the stages that survive.
func TestModelsOnTruncatedEnumeration(t *testing.T) {
	p := tech.NMOS4()
	nw := netlist.New("fanin", p)
	ctl := nw.Node("ctl")
	nw.MarkInput(ctl)
	out := nw.Node("out")
	// Many parallel pulldown branches of depth 3: path count explodes
	// past a tiny MaxPaths, and depth exceeds a tiny MaxDepth.
	for i := 0; i < 6; i++ {
		m1 := nw.Node("m1_" + string(rune('a'+i)))
		m2 := nw.Node("m2_" + string(rune('a'+i)))
		nw.AddTrans(tech.NEnh, ctl, out, m1, 0, 0)
		nw.AddTrans(tech.NEnh, ctl, m1, m2, 0, 0)
		nw.AddTrans(tech.NEnh, ctl, m2, nw.GND(), 0, 0)
	}
	tb := AnalyticTables(p)
	for _, opt := range []stage.Options{
		{MaxPaths: 2},
		{MaxDepth: 2},
		{MaxPaths: 1, MaxDepth: 2},
	} {
		res := stage.Through(nw, nw.Trans[0], tech.Fall, opt)
		if !res.Truncated {
			t.Fatalf("options %+v: expected truncated enumeration", opt)
		}
		for _, st := range res.Stages {
			for _, m := range All(tb) {
				r := m.Evaluate(nw, st, 1e-9)
				if !(r.Delay > 0) || math.IsInf(r.Delay, 0) || math.IsNaN(r.Delay) {
					t.Errorf("options %+v, %s: delay %g on truncated stage", opt, m.Name(), r.Delay)
				}
			}
		}
	}
}

// TestCurveSinglePoint pins interpolation behaviour on a one-sample curve
// (ratio 0 only): every query collapses to the sole sample, including far
// extrapolation, and Validate accepts it.
func TestCurveSinglePoint(t *testing.T) {
	c := Curve{Ratio: []float64{0}, RMult: []float64{1.5}, TFactor: []float64{2.5}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{0, 0.5, 1, 100} {
		if got := c.MultAt(r); got != 1.5 {
			t.Errorf("MultAt(%g) = %g, want 1.5", r, got)
		}
		if got := c.TFactorAt(r); got != 2.5 {
			t.Errorf("TFactorAt(%g) = %g, want 2.5", r, got)
		}
	}
}

// TestCurveEmpty pins the zero-value Curve: interp's documented fallback
// is the identity multiplier, and Validate rejects it.
func TestCurveEmpty(t *testing.T) {
	var c Curve
	if got := c.MultAt(3); got != 1 {
		t.Errorf("empty curve MultAt = %g, want 1", got)
	}
	if err := c.Validate(); err == nil {
		t.Error("empty curve must not validate")
	}
}

// TestTablesValidateBoundaries drives Tables.Validate through the edges:
// a zero RSquare entry means "device/transition absent" and skips curve
// checks; a populated entry with a broken curve must fail.
func TestTablesValidateBoundaries(t *testing.T) {
	tb := AnalyticTables(tech.NMOS4())
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	// Absent entry: zero RSquare with a zero-value curve passes.
	tb.RSquare[tech.PEnh][tech.Rise] = 0
	tb.Curves[tech.PEnh][tech.Rise] = Curve{}
	if err := tb.Validate(); err != nil {
		t.Errorf("zero RSquare entry should skip curve validation: %v", err)
	}
	// Populated entry with an empty curve fails.
	tb.RSquare[tech.PEnh][tech.Rise] = 1000
	if err := tb.Validate(); err == nil {
		t.Error("populated entry with empty curve must fail validation")
	}
	// Negative resistance fails outright.
	tb2 := AnalyticTables(tech.NMOS4())
	tb2.RSquare[tech.NEnh][tech.Fall] = -1
	if err := tb2.Validate(); err == nil {
		t.Error("negative RSquare must fail validation")
	}
}
