package netlist

// Compact is the compiled structure-of-arrays form of a network: the
// fields the analyzer's event loop reads per event, flattened into dense
// index-keyed arrays. The pointer graph (Node/Trans structs) is the
// construction and reporting representation; the drain loop touches
// millions of events on a chip-scale run, and chasing Node→Gates→Trans
// pointers per event costs more cache misses than the arithmetic it feeds.
// A Compact is a snapshot: compile it after the network is fully built,
// and recompile after edits (generations never mutate a compiled network).
type Compact struct {
	// GateStart/GateRef are the CSR adjacency of gate connections:
	// GateRef[GateStart[n]:GateStart[n+1]] lists the gated devices of node
	// n, each packed as trans index << 1 | conductsOn1. Always-on devices
	// (depletion loads, wires) are omitted — they do not respond to their
	// gate, which is exactly the filter the event loop wants predecoded.
	GateStart []int32
	GateRef   []int32

	// Per-node flags the drain's improve/propagate steps test.
	IsRail     []bool
	IsInput    []bool
	Precharged []bool
	// HasTerms marks nodes with at least one channel terminal (an input
	// transition rides through conducting pass devices only if some device
	// touches it).
	HasTerms []bool
}

// PackGateRef packs a gate adjacency entry.
func PackGateRef(transIndex int, conductsOn1 bool) int32 {
	r := int32(transIndex) << 1
	if conductsOn1 {
		r |= 1
	}
	return r
}

// UnpackGateRef unpacks a gate adjacency entry into the transistor index
// and its conduction polarity (true when the device conducts while its
// gate is high).
func UnpackGateRef(r int32) (transIndex int, conductsOn1 bool) {
	return int(r >> 1), r&1 == 1
}

// Compile builds the compact form of nw.
func Compile(nw *Network) *Compact {
	c := &Compact{
		GateStart:  make([]int32, len(nw.Nodes)+1),
		IsRail:     make([]bool, len(nw.Nodes)),
		IsInput:    make([]bool, len(nw.Nodes)),
		Precharged: make([]bool, len(nw.Nodes)),
		HasTerms:   make([]bool, len(nw.Nodes)),
	}
	total := 0
	for _, n := range nw.Nodes {
		for _, t := range n.Gates {
			if !t.AlwaysOn() {
				total++
			}
		}
	}
	c.GateRef = make([]int32, 0, total)
	for i, n := range nw.Nodes {
		c.GateStart[i] = int32(len(c.GateRef))
		for _, t := range n.Gates {
			if t.AlwaysOn() {
				continue
			}
			c.GateRef = append(c.GateRef, PackGateRef(t.Index, t.ConductsOn() == 1))
		}
		c.IsRail[i] = n.IsRail()
		c.IsInput[i] = n.Kind == KindInput
		c.Precharged[i] = n.Precharged
		c.HasTerms[i] = len(n.Terms) > 0
	}
	c.GateStart[len(nw.Nodes)] = int32(len(c.GateRef))
	return c
}

// Gates returns the packed gate refs of node n.
func (c *Compact) Gates(n int) []int32 {
	return c.GateRef[c.GateStart[n]:c.GateStart[n+1]]
}
