package switchsim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// scalarReference settles one vector on a fresh scalar Sim — the batch
// engine's per-lane semantics by definition.
func scalarReference(nw *netlist.Network, inputs []*netlist.Node, vec []Value) ([]Value, bool) {
	s := New(nw)
	for i, in := range inputs {
		if vec[i] != VX {
			if err := s.SetInput(in, vec[i]); err != nil {
				panic(err)
			}
		}
	}
	s.Settle()
	return s.Snapshot(), s.Oscillated()
}

// randomVectors draws k vectors over ni inputs with a sprinkling of X
// (released) symbols.
func randomVectors(rng *rand.Rand, ni, k int) []Value {
	vecs := make([]Value, ni*k)
	for i := range vecs {
		switch r := rng.Intn(10); {
		case r < 4:
			vecs[i] = V0
		case r < 8:
			vecs[i] = V1
		default:
			vecs[i] = VX
		}
	}
	return vecs
}

// checkBatchIdentity runs vecs through the batch engine and a fresh
// scalar Sim per vector and requires per-vector per-node identity,
// including the oscillation flag.
func checkBatchIdentity(t *testing.T, nw *netlist.Network, vecs []Value) {
	t.Helper()
	b := NewBatch(nw)
	inputs := b.Inputs()
	res, err := b.Run(vecs, nil)
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	ni := len(inputs)
	for v := 0; v < res.Vectors; v++ {
		row := vecs[v*ni : (v+1)*ni]
		want, wantOsc := scalarReference(nw, inputs, row)
		got := res.Out[v]
		if len(got) != len(want) {
			t.Fatalf("vector %d: %d values, want %d", v, len(got), len(want))
		}
		for n := range want {
			if got[n] != want[n] {
				t.Errorf("vector %d (%v): node %s = %s, scalar reference %s",
					v, row, nw.Nodes[n].Name, got[n], want[n])
			}
		}
		if res.Osc[v] != wantOsc {
			t.Errorf("vector %d (%v): oscillated=%v, scalar reference %v", v, row, res.Osc[v], wantOsc)
		}
	}
}

// TestBatchMatchesScalar pins the batch engine bit-identical to the
// scalar reference over every generator family used by the conformance
// sweep, on deterministic pseudo-random vector batches that cross a slab
// boundary (> 64 vectors) and include released (X) symbols.
func TestBatchMatchesScalar(t *testing.T) {
	p := tech.NMOS4()
	specs := []string{
		"invchain:8", "fanout:6", "passchain:6", "superbuffer", "bus:4",
		"ripple:4", "manchester:4", "barrel:4", "decoder:3", "alu:4",
		"regfile:4,4", "polywire:6", "chip:4", "datapath:4", "shiftreg:4",
		"arraymul:4", "carrysel:8", "pla:4,6,4",
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			nw, err := gen.Build(spec, p)
			if err != nil {
				t.Fatalf("gen.Build(%q): %v", spec, err)
			}
			ni := len(nw.Inputs())
			if ni == 0 {
				t.Skipf("%s has no inputs", spec)
			}
			rng := rand.New(rand.NewSource(42))
			k := 70 // crosses the 64-lane slab boundary
			checkBatchIdentity(t, nw, randomVectors(rng, ni, k))
		})
	}
}

// TestBatchExhaustiveSmall exhaustively sweeps all 3^ni ternary vectors of
// a few small networks against the scalar reference — every corner of the
// lattice, not just sampled ones.
func TestBatchExhaustiveSmall(t *testing.T) {
	p := tech.NMOS4()
	for _, spec := range []string{"passchain:3", "bus:2", "superbuffer", "decoder:2"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			nw, err := gen.Build(spec, p)
			if err != nil {
				t.Fatalf("gen.Build(%q): %v", spec, err)
			}
			ni := len(nw.Inputs())
			if ni == 0 || ni > 8 {
				t.Skipf("%s has %d inputs", spec, ni)
			}
			total := 1
			for i := 0; i < ni; i++ {
				total *= 3
			}
			vecs := make([]Value, 0, total*ni)
			for code := 0; code < total; code++ {
				c := code
				for i := 0; i < ni; i++ {
					vecs = append(vecs, Value(c%3))
					c /= 3
				}
			}
			checkBatchIdentity(t, nw, vecs)
		})
	}
}

// TestBatchRunErrors covers the argument-shape failure modes.
func TestBatchRunErrors(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.Build("ripple:2", p)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(nw)
	if len(b.Inputs()) < 2 {
		t.Fatalf("ripple:2 has %d inputs, want >= 2", len(b.Inputs()))
	}
	if _, err := b.Run(make([]Value, len(b.Inputs())+1), nil); err == nil {
		t.Error("ragged vector batch: want error")
	}
	empty := netlist.New("empty", p)
	if _, err := NewBatch(empty).Run(nil, nil); err == nil {
		t.Error("no-input network: want error")
	}
}

// TestBatchWatchList checks that a watch list narrows and orders the
// reported values.
func TestBatchWatchList(t *testing.T) {
	p := tech.NMOS4()
	nw, err := gen.Build("invchain:2", p)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(nw)
	outs := nw.Outputs()
	if len(outs) == 0 {
		t.Fatal("invchain has no outputs")
	}
	res, err := b.Run([]Value{V0, V1}, outs)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < res.Vectors; v++ {
		if len(res.Out[v]) != len(outs) {
			t.Fatalf("vector %d: %d watched values, want %d", v, len(res.Out[v]), len(outs))
		}
		s := New(nw)
		s.SetInput(b.Inputs()[0], Value(v))
		s.Settle()
		for i, o := range outs {
			if res.Out[v][i] != s.Value(o) {
				t.Errorf("vector %d: %s = %s, want %s", v, o.Name, res.Out[v][i], s.Value(o))
			}
		}
	}
}

// TestParseVector covers the vector-row parser.
func TestParseVector(t *testing.T) {
	got, err := ParseVector(" 0 1\tX", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []Value{V0, V1, VX}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ParseVector = %v, want %v", got, want)
	}
	if _, err := ParseVector("012", 3); err == nil {
		t.Error("bad symbol: want error")
	}
	if _, err := ParseVector("01", 3); err == nil {
		t.Error("short row: want error")
	}
}
