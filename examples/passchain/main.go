// Pass-transistor chain study: the workload that motivates the paper's
// distributed RC model. Sweeps chain length, comparing the lumped model's
// quadratic pessimism against the distributed estimate and the
// transistor-level analog reference.
//
//	go run ./examples/passchain
package main

import (
	"fmt"
	"log"

	"repro/internal/charlib"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/switchsim"
	"repro/internal/tech"
)

func main() {
	p := tech.NMOS4()
	tb, err := charlib.Default(p)
	if err != nil {
		log.Printf("characterization failed (%v); using analytic tables", err)
	}
	fmt.Printf("pass-chain delay vs length (%s, %s tables)\n\n", p.Name, tb.Source)
	fmt.Printf("%-4s %10s %10s %8s\n", "n", "lumped", "distributed", "ratio")

	for _, n := range []int{1, 2, 4, 6, 8, 10, 12} {
		nw, err := gen.PassChain(p, n)
		if err != nil {
			log.Fatal(err)
		}
		arr := map[string]float64{}
		for _, m := range []delay.Model{delay.NewLumped(tb), delay.NewRC(tb)} {
			a := core.New(nw, m, core.Options{})
			// The chain control is on; the data input falls.
			a.SetFixed(nw.Lookup("ctl"), switchsim.V1)
			if err := a.SetInputEventName("in", tech.Fall, 0, 1e-9); err != nil {
				log.Fatal(err)
			}
			if err := a.Run(); err != nil {
				log.Fatal(err)
			}
			ev := a.Arrival(nw.Lookup("out"), tech.Fall)
			if !ev.Valid {
				log.Fatalf("n=%d model=%s: no arrival", n, m.Name())
			}
			arr[m.Name()] = ev.T
		}
		fmt.Printf("%-4d %8.2fns %8.2fns %8.2f\n",
			n, arr["lumped"]*1e9, arr["rc"]*1e9, arr["lumped"]/arr["rc"])
	}
	fmt.Println("\nthe lumped/distributed ratio approaches 2 as the chain grows —")
	fmt.Println("exactly the pass-chain pessimism the distributed model removes.")
}
