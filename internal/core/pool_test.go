package core

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3, 0); got != 3 {
		t.Errorf("Workers(3,0) = %d", got)
	}
	if got := Workers(8, 2); got != 2 {
		t.Errorf("Workers(8,2) = %d, want cap at 2", got)
	}
	if got := Workers(0, 0); got < 1 {
		t.Errorf("Workers(0,0) = %d, want >= 1", got)
	}
}

func TestRunManyCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 100
		var hits [n]atomic.Int32
		err := RunMany(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d run %d times", workers, i, c)
			}
		}
	}
}

func TestRunManyReturnsLowestError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		err := RunMany(10, workers, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 7:
				return errHigh
			}
			return nil
		})
		// Serial mode stops at the first failure; parallel mode reports
		// the lowest-indexed one. Both land on index 3.
		if err != errLow {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

func TestRunManyEmpty(t *testing.T) {
	if err := RunMany(0, 4, func(int) error { t.Error("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}
