// Command loadgen drives a crystald daemon with scripted multi-session
// load: the same open-session / analyze / edits / simulate / critical
// transcript grammar the server_e2e harness exercises, scaled out to
// hundreds of concurrent sessions with a configurable concurrency ramp,
// a content-hash reuse ratio (dedup pressure), async-job traffic against
// the bounded worker pool, and built-in fault injection.
//
// Usage:
//
//	loadgen -daemon ./crystald [-snapshot-dir DIR] [-max-sessions 16]
//	        [-ramp 4,8,16,32] [-step-duration 5s] [-sessions 32]
//	        [-reuse 0.3] [-async-frac 0.5] [-validate]
//	        [-restart-after 3s] [-chaos-job-delay 5ms]
//	        [-chaos-job-fail-every 7] [-out report.json]
//	loadgen -addr http://127.0.0.1:8653 [...]        # external daemon
//
// With -daemon, loadgen spawns and manages the crystald process itself,
// which enables the harshest fault injection: -restart-after SIGTERMs the
// daemon mid-run, waits for the graceful drain, restarts it over the same
// -snapshot-dir, and the workers ride through the window — every session
// recreates over the warm .simx cache and the run keeps going. The
// -chaos-* flags are forwarded to the daemon's injected-slow/failed-job
// knobs; chaos-failed jobs are expected and counted, never validation
// failures.
//
// With -validate, a slice of analyze traffic runs as sync/async pairs and
// hard-asserts the async job result is byte-identical to the synchronous
// response after zeroing wall-clock fields (duration_ns, cached). Any
// mismatch is a hard failure: loadgen exits nonzero and prints the diff.
//
// The report (stdout or -out) is a JSON document with one entry per ramp
// step — offered concurrency, throughput, analyze p50/p99, rejection rate
// — plus the detected saturation knee; scripts/bench.sh turns it into
// BENCH_8.json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// sessionConfig mirrors the POST /v1/sessions body (the wire API, not the
// server's internal type — loadgen is a pure HTTP client).
type sessionConfig struct {
	Name   string  `json:"name,omitempty"`
	Sim    string  `json:"sim"`
	Tech   string  `json:"tech,omitempty"`
	Model  string  `json:"model,omitempty"`
	Tables string  `json:"tables,omitempty"`
	Slope  float64 `json:"slope,omitempty"`
	Top    int     `json:"top,omitempty"`
}

// circuit is one generated netlist plus the node names the transcript
// needs (simulate columns, watch lists, edit targets).
type circuit struct {
	spec    string
	sim     string
	inputs  []string
	outputs []string
}

func buildCircuit(spec string) (*circuit, error) {
	nw, err := gen.Build(spec, tech.NMOS4())
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := netlist.WriteSim(&buf, nw); err != nil {
		return nil, err
	}
	c := &circuit{spec: spec, sim: buf.String()}
	for _, n := range nw.Inputs() {
		c.inputs = append(c.inputs, n.Name)
	}
	for _, n := range nw.Outputs() {
		c.outputs = append(c.outputs, n.Name)
	}
	if len(c.inputs) == 0 || len(c.outputs) == 0 {
		return nil, fmt.Errorf("%s: generated circuit has no inputs or outputs", spec)
	}
	return c, nil
}

// slot is one scripted session: a config plus the live session id. Slots
// with aliased=true share a config with a base slot (the content-hash
// reuse ratio); validation pairs run only on exclusive slots, where no
// other worker can edit the server-side session mid-pair.
type slot struct {
	circ    *circuit
	cfg     sessionConfig
	aliased bool // shares a config (and therefore a pristine session)

	mu     sync.Mutex
	id     string
	ready  bool // analyzed at least once (critical queries are valid)
	edited bool
}

// counters aggregates one step's outcomes. Everything is atomic: the
// worker pool hammers these from every goroutine.
type counters struct {
	ops, errors, rejected  atomic.Int64
	chaosFailed, restarted atomic.Int64 // ops absorbed by injected faults / restart windows
	pairs, pairFails       atomic.Int64
	createParse            atomic.Int64
	createWarm             atomic.Int64 // snapshot or mmap source
	createDedup            atomic.Int64

	mu  sync.Mutex
	lat []int64 // analyze wall latencies, ns
}

func (ct *counters) observe(d time.Duration) {
	ct.mu.Lock()
	ct.lat = append(ct.lat, d.Nanoseconds())
	ct.mu.Unlock()
}

func (ct *counters) percentiles() (p50, p99 int64) {
	ct.mu.Lock()
	buf := append([]int64(nil), ct.lat...)
	ct.mu.Unlock()
	if len(buf) == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[len(buf)/2], buf[(len(buf)*99)/100]
}

// stepResult is one ramp step of the report.
type stepResult struct {
	Concurrency   int     `json:"concurrency"`
	DurationS     float64 `json:"duration_s"`
	Ops           int64   `json:"ops"`
	Errors        int64   `json:"errors"`
	Rejected      int64   `json:"rejected"`
	RejectRate    float64 `json:"reject_rate"`
	ThroughputOps float64 `json:"throughput_ops"`
	AnalyzeP50Ns  int64   `json:"analyze_p50_ns"`
	AnalyzeP99Ns  int64   `json:"analyze_p99_ns"`
}

type report struct {
	Bench     string       `json:"bench"`
	Seed      int64        `json:"seed"`
	Circuits  []string     `json:"circuits"`
	Sessions  int          `json:"sessions"`
	ReuseFrac float64      `json:"reuse_frac"`
	AsyncFrac float64      `json:"async_frac"`
	Steps     []stepResult `json:"steps"`
	Knee      *stepResult  `json:"knee,omitempty"`

	Validation struct {
		Pairs    int64  `json:"pairs"`
		Failures int64  `json:"failures"`
		Example  string `json:"example,omitempty"`
	} `json:"validation"`

	Restarts      int     `json:"restarts"`
	RestartOps    int64   `json:"restart_absorbed_ops"` // ops retried/skipped in restart windows
	ChaosFailures int64   `json:"chaos_failures"`
	CreatesParse  int64   `json:"creates_parse"`
	CreatesWarm   int64   `json:"creates_warm"` // snapshot or mmap warm starts
	CreatesDedup  int64   `json:"creates_dedup"`
	ElapsedS      float64 `json:"elapsed_s"`
}

// ---------------------------------------------------------------------------
// HTTP client with restart-window retries.

type client struct {
	base string
	hc   *http.Client
	// restartEpoch increments on every daemon restart; ops that fail while
	// the epoch moves are absorbed, not counted as errors.
	restartEpoch atomic.Int64
}

// do issues one request. Connection errors and 503 (drain window) retry
// with backoff for up to ~20s so workers ride through a daemon restart.
func (c *client) do(method, path string, body any) (int, []byte, error) {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		payload = b
	}
	deadline := time.Now().Add(20 * time.Second)
	backoff := 10 * time.Millisecond
	for {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return 0, nil, err
		}
		resp, err := c.hc.Do(req)
		if err == nil {
			raw, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode != http.StatusServiceUnavailable {
				if ra := resp.Header.Get("Retry-After"); ra != "" && resp.StatusCode == http.StatusTooManyRequests {
					// Surface the admission-control hint to the caller via
					// a pseudo-header decode; the body already carries it.
					_ = ra
				}
				return resp.StatusCode, raw, nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return 0, nil, err
			}
			return http.StatusServiceUnavailable, nil, fmt.Errorf("still draining after 20s")
		}
		time.Sleep(backoff)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// jobPoll is the GET /v1/jobs/{id} body subset loadgen consumes.
type jobPoll struct {
	State  string          `json:"state"`
	Status int             `json:"status"`
	Result json.RawMessage `json:"result"`
}

// waitJob polls one async job to completion.
func (c *client) waitJob(id string, timeout time.Duration) (jobPoll, error) {
	deadline := time.Now().Add(timeout)
	pause := 2 * time.Millisecond
	for {
		st, raw, err := c.do("GET", "/v1/jobs/"+id, nil)
		if err != nil {
			return jobPoll{}, err
		}
		if st == http.StatusNotFound {
			// Restart wiped the in-memory job plane.
			return jobPoll{}, fmt.Errorf("job %s lost", id)
		}
		var j jobPoll
		if err := json.Unmarshal(raw, &j); err != nil {
			return jobPoll{}, fmt.Errorf("job %s: bad poll body %q", id, raw)
		}
		if j.State == "done" || j.State == "failed" {
			return j, nil
		}
		if time.Now().After(deadline) {
			return jobPoll{}, fmt.Errorf("job %s still %s after %s", id, j.State, timeout)
		}
		time.Sleep(pause)
		if pause < 50*time.Millisecond {
			pause *= 2
		}
	}
}

// ---------------------------------------------------------------------------
// Managed daemon (spawn, SIGTERM, restart).

type daemon struct {
	bin  string
	args []string
	addr string
	cmd  *exec.Cmd
}

func (d *daemon) start() error {
	d.cmd = exec.Command(d.bin, d.args...)
	d.cmd.Stdout = os.Stderr
	d.cmd.Stderr = os.Stderr
	if err := d.cmd.Start(); err != nil {
		return err
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("daemon did not become healthy at %s", d.addr)
}

func (d *daemon) stop() error {
	if d.cmd == nil || d.cmd.Process == nil {
		return nil
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
		return nil
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		<-done
		return fmt.Errorf("daemon ignored SIGTERM; killed")
	}
}

// ---------------------------------------------------------------------------
// Response normalization for the validation mode: zero wall-clock fields,
// re-marshal with sorted keys. Equal strings == byte-identical results.

func normalizeBody(raw []byte) (string, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return "", fmt.Errorf("bad JSON %q: %v", raw, err)
	}
	var scrub func(any)
	scrub = func(x any) {
		switch m := x.(type) {
		case map[string]any:
			for k, val := range m {
				switch k {
				case "duration_ns":
					m[k] = 0
				case "cached":
					m[k] = false
				default:
					scrub(val)
				}
			}
		case []any:
			for _, e := range m {
				scrub(e)
			}
		}
	}
	scrub(v)
	out, err := json.Marshal(v)
	return string(out), err
}

// ---------------------------------------------------------------------------

type harness struct {
	c        *client
	slots    []*slot
	ct       *counters // current step's counters (swapped between steps)
	ctMu     sync.RWMutex
	validate bool
	async    float64
	force    float64
	workers  int

	valMu      sync.Mutex
	valExample string
	totPairs   atomic.Int64
	totFails   atomic.Int64
	totChaos   atomic.Int64
	totRestart atomic.Int64
	parse      atomic.Int64
	warm       atomic.Int64
	dedup      atomic.Int64
}

func (h *harness) counters() *counters {
	h.ctMu.RLock()
	defer h.ctMu.RUnlock()
	return h.ct
}

// ensure creates the slot's session if it has no live id, returning the
// id. Called with the slot lock held.
func (h *harness) ensure(s *slot) (string, error) {
	if s.id != "" {
		return s.id, nil
	}
	st, raw, err := h.c.do("POST", "/v1/sessions", s.cfg)
	if err != nil {
		return "", err
	}
	if st != http.StatusCreated && st != http.StatusOK {
		return "", fmt.Errorf("create %s: status %d: %s", s.cfg.Name, st, raw)
	}
	var resp struct {
		Session string `json:"session"`
		Cached  bool   `json:"cached"`
		Source  string `json:"source"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		return "", err
	}
	switch {
	case resp.Cached:
		h.dedup.Add(1)
		h.counters().createDedup.Add(1)
	case resp.Source == "snapshot" || resp.Source == "mmap":
		h.warm.Add(1)
		h.counters().createWarm.Add(1)
	default:
		h.parse.Add(1)
		h.counters().createParse.Add(1)
	}
	s.id, s.ready, s.edited = resp.Session, false, false
	return s.id, nil
}

// absorb classifies an op failure: restart windows and injected chaos are
// expected and absorbed; anything else is a hard error.
func (h *harness) absorb(s *slot, epoch int64, err error) {
	ct := h.counters()
	if h.c.restartEpoch.Load() != epoch {
		ct.restarted.Add(1)
		h.totRestart.Add(1)
		s.id = "" // session is gone; recreate over the warm cache
		return
	}
	ct.errors.Add(1)
	fmt.Fprintf(os.Stderr, "loadgen: error: %v\n", err)
}

// analyzeOp runs one analyze — sync, async, or a validation pair.
func (h *harness) analyzeOp(s *slot, rng *rand.Rand) {
	ct := h.counters()
	epoch := h.c.restartEpoch.Load()
	id, err := h.ensure(s)
	if err != nil {
		h.absorb(s, epoch, err)
		return
	}
	force := rng.Float64() < h.force
	doPair := h.validate && !s.aliased && rng.Float64() < 0.5

	if doPair {
		h.validatePair(s, id, epoch)
		return
	}

	body := map[string]any{"workers": 1, "force": force}
	if rng.Float64() < h.async {
		body["async"] = true
		start := time.Now()
		st, raw, err := h.c.do("POST", "/v1/sessions/"+id+"/analyze", body)
		switch {
		case err != nil:
			h.absorb(s, epoch, err)
			return
		case st == http.StatusTooManyRequests:
			ct.rejected.Add(1)
			time.Sleep(20 * time.Millisecond) // admission backoff
			return
		case st == http.StatusNotFound:
			s.id = ""
			return
		case st != http.StatusAccepted:
			h.absorb(s, epoch, fmt.Errorf("async analyze %s: status %d: %s", id, st, raw))
			return
		}
		var acc struct {
			Job string `json:"job"`
		}
		if err := json.Unmarshal(raw, &acc); err != nil {
			h.absorb(s, epoch, err)
			return
		}
		j, err := h.c.waitJob(acc.Job, 60*time.Second)
		if err != nil {
			h.absorb(s, epoch, err)
			return
		}
		if j.State == "failed" {
			if strings.Contains(string(j.Result), "chaos") {
				ct.chaosFailed.Add(1)
				h.totChaos.Add(1)
				return
			}
			h.absorb(s, epoch, fmt.Errorf("job %s failed: %s", acc.Job, j.Result))
			return
		}
		ct.observe(time.Since(start))
		s.ready = true
		ct.ops.Add(1)
		return
	}

	start := time.Now()
	st, raw, err := h.c.do("POST", "/v1/sessions/"+id+"/analyze", body)
	switch {
	case err != nil:
		h.absorb(s, epoch, err)
	case st == http.StatusNotFound:
		s.id = ""
	case st != http.StatusOK:
		h.absorb(s, epoch, fmt.Errorf("analyze %s: status %d: %s", id, st, raw))
	default:
		ct.observe(time.Since(start))
		s.ready = true
		ct.ops.Add(1)
	}
}

// validatePair hard-asserts the async analyze result is byte-identical
// to the synchronous response. Runs only on exclusive slots (no other
// worker can touch the session), with the slot lock held.
func (h *harness) validatePair(s *slot, id string, epoch int64) {
	ct := h.counters()
	body := map[string]any{"workers": 1, "force": true}
	st, syncRaw, err := h.c.do("POST", "/v1/sessions/"+id+"/analyze", body)
	if err != nil || st != http.StatusOK {
		if st == http.StatusNotFound {
			s.id = ""
			return
		}
		h.absorb(s, epoch, fmt.Errorf("pair sync arm: status %d err %v", st, err))
		return
	}
	body["async"] = true
	st, raw, err := h.c.do("POST", "/v1/sessions/"+id+"/analyze", body)
	if err != nil || st != http.StatusAccepted {
		if st == http.StatusTooManyRequests {
			ct.rejected.Add(1)
			return
		}
		h.absorb(s, epoch, fmt.Errorf("pair async arm: status %d err %v", st, err))
		return
	}
	var acc struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal(raw, &acc); err != nil {
		h.absorb(s, epoch, err)
		return
	}
	j, err := h.c.waitJob(acc.Job, 60*time.Second)
	if err != nil {
		h.absorb(s, epoch, err)
		return
	}
	if j.State == "failed" {
		if strings.Contains(string(j.Result), "chaos") {
			ct.chaosFailed.Add(1)
			h.totChaos.Add(1)
			return
		}
		h.absorb(s, epoch, fmt.Errorf("pair job failed: %s", j.Result))
		return
	}
	if h.c.restartEpoch.Load() != epoch {
		// The daemon bounced between the two arms; the pair is not
		// comparable (different processes served it). Skip, don't assert.
		ct.restarted.Add(1)
		h.totRestart.Add(1)
		return
	}
	sn, err1 := normalizeBody(syncRaw)
	an, err2 := normalizeBody(j.Result)
	h.totPairs.Add(1)
	ct.pairs.Add(1)
	if err1 != nil || err2 != nil || sn != an {
		h.totFails.Add(1)
		ct.pairFails.Add(1)
		h.valMu.Lock()
		if h.valExample == "" {
			h.valExample = fmt.Sprintf("session %s (%s):\n--- sync\n%s\n--- async\n%s",
				id, s.cfg.Name, sn, an)
		}
		h.valMu.Unlock()
		return
	}
	s.ready = true
	ct.ops.Add(2)
	ct.observe(0) // pair latencies are validation overhead, not samples
}

func (h *harness) editOp(s *slot) {
	ct := h.counters()
	epoch := h.c.restartEpoch.Load()
	id, err := h.ensure(s)
	if err != nil {
		h.absorb(s, epoch, err)
		return
	}
	if !s.ready {
		return // edits need a prior analyze (409 otherwise)
	}
	out := s.circ.outputs[0]
	script := fmt.Sprintf("cap %s 1e-15\nrun\ncap %s -1e-15\nrun\n", out, out)
	st, raw, err := h.c.do("POST", "/v1/sessions/"+id+"/edits", map[string]any{"script": script})
	switch {
	case err != nil:
		h.absorb(s, epoch, err)
	case st == http.StatusNotFound:
		s.id = ""
	case st == http.StatusConflict:
		// An alias slot's delete+recreate swapped in a pristine session
		// under the same id; it needs an analyze before edits.
		s.ready = false
	case st != http.StatusOK:
		h.absorb(s, epoch, fmt.Errorf("edits %s: status %d: %s", id, st, raw))
	default:
		s.edited = true
		ct.ops.Add(1)
	}
}

func (h *harness) simulateOp(s *slot, rng *rand.Rand) {
	ct := h.counters()
	epoch := h.c.restartEpoch.Load()
	id, err := h.ensure(s)
	if err != nil {
		h.absorb(s, epoch, err)
		return
	}
	cols := s.circ.inputs
	if len(cols) > 8 {
		cols = cols[:8]
	}
	watch := s.circ.outputs
	if len(watch) > 4 {
		watch = watch[:4]
	}
	vecs := make([]string, 2)
	for i := range vecs {
		var b strings.Builder
		for range cols {
			b.WriteByte('0' + byte(rng.Intn(2)))
		}
		vecs[i] = b.String()
	}
	st, raw, err := h.c.do("POST", "/v1/sessions/"+id+"/simulate", map[string]any{
		"inputs": cols, "watch": watch, "vectors": vecs,
	})
	switch {
	case err != nil:
		h.absorb(s, epoch, err)
	case st == http.StatusNotFound:
		s.id = ""
	case st != http.StatusOK:
		h.absorb(s, epoch, fmt.Errorf("simulate %s: status %d: %s", id, st, raw))
	default:
		ct.ops.Add(1)
	}
}

func (h *harness) criticalOp(s *slot) {
	ct := h.counters()
	epoch := h.c.restartEpoch.Load()
	id, err := h.ensure(s)
	if err != nil {
		h.absorb(s, epoch, err)
		return
	}
	if !s.ready {
		return
	}
	st, raw, err := h.c.do("GET", "/v1/sessions/"+id+"/critical?n=3", nil)
	switch {
	case err != nil:
		h.absorb(s, epoch, err)
	case st == http.StatusNotFound:
		s.id = ""
	case st == http.StatusConflict: // evict+recreate raced the analyze
		s.ready = false
	case st != http.StatusOK:
		h.absorb(s, epoch, fmt.Errorf("critical %s: status %d: %s", id, st, raw))
	default:
		ct.ops.Add(1)
	}
}

func (h *harness) deleteOp(s *slot) {
	ct := h.counters()
	if s.id == "" {
		return
	}
	epoch := h.c.restartEpoch.Load()
	st, _, err := h.c.do("DELETE", "/v1/sessions/"+s.id, nil)
	if err != nil {
		h.absorb(s, epoch, err)
		return
	}
	if st == http.StatusOK || st == http.StatusNotFound {
		s.id = ""
		ct.ops.Add(1)
	}
}

// step runs one offered-concurrency level for the given duration and
// folds the counters into a stepResult.
func (h *harness) step(concurrency int, d time.Duration, seed int64) stepResult {
	ct := &counters{}
	h.ctMu.Lock()
	h.ct = ct
	h.ctMu.Unlock()

	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			for time.Now().Before(stop) {
				s := h.slots[rng.Intn(len(h.slots))]
				s.mu.Lock()
				switch p := rng.Float64(); {
				case p < 0.55:
					h.analyzeOp(s, rng)
				case p < 0.70:
					h.editOp(s)
				case p < 0.85:
					h.simulateOp(s, rng)
				case p < 0.95:
					h.criticalOp(s)
				default:
					h.deleteOp(s)
				}
				s.mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	ops := ct.ops.Load()
	rej := ct.rejected.Load()
	p50, p99 := ct.percentiles()
	res := stepResult{
		Concurrency:   concurrency,
		DurationS:     d.Seconds(),
		Ops:           ops,
		Errors:        ct.errors.Load(),
		Rejected:      rej,
		ThroughputOps: float64(ops) / d.Seconds(),
		AnalyzeP50Ns:  p50,
		AnalyzeP99Ns:  p99,
	}
	if ops+rej > 0 {
		res.RejectRate = float64(rej) / float64(ops+rej)
	}
	return res
}

// knee finds the saturation point: the first step whose throughput gain
// over the previous step falls under 10%, or whose rejection rate tops
// 1%. Falls back to the last step when the curve never flattens.
func knee(steps []stepResult) *stepResult {
	if len(steps) == 0 {
		return nil
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].RejectRate > 0.01 || steps[i].ThroughputOps < steps[i-1].ThroughputOps*1.10 {
			k := steps[i]
			return &k
		}
	}
	k := steps[len(steps)-1]
	return &k
}

func main() {
	addr := flag.String("addr", "", "target an already-running daemon at this base URL (e.g. http://127.0.0.1:8653)")
	bin := flag.String("daemon", "", "spawn and manage this crystald binary (enables -restart-after)")
	port := flag.Int("port", 8943, "listen port for the spawned daemon")
	snapshotDir := flag.String("snapshot-dir", "", "snapshot dir for the spawned daemon (default: a temp dir; required for warm restarts)")
	maxSessions := flag.Int("max-sessions", 16, "spawned daemon session bound (eviction pressure)")
	jobWorkers := flag.Int("job-workers", 2, "spawned daemon async worker pool")
	jobQueue := flag.Int("job-queue", 32, "spawned daemon async queue bound")
	chaosDelay := flag.Duration("chaos-job-delay", 0, "forward to the daemon: stretch every async job")
	chaosFail := flag.Int("chaos-job-fail-every", 0, "forward to the daemon: fail every Nth async job")
	circuits := flag.String("circuits", "invchain:32,ripple:4,passchain:16,decoder:3", "comma-separated generator specs for the session corpus")
	sessions := flag.Int("sessions", 24, "scripted session slots")
	reuse := flag.Float64("reuse", 0.3, "fraction of slots sharing a config (content-hash dedup pressure)")
	asyncFrac := flag.Float64("async-frac", 0.5, "fraction of analyzes submitted as async jobs")
	forceFrac := flag.Float64("force-frac", 0.5, "fraction of analyzes forcing a fresh drain")
	concurrency := flag.Int("concurrency", 8, "offered concurrency (fixed mode)")
	ramp := flag.String("ramp", "", "comma-separated concurrency steps (e.g. 4,8,16,32); overrides -concurrency")
	duration := flag.Duration("duration", 5*time.Second, "run length (fixed mode)")
	stepDuration := flag.Duration("step-duration", 5*time.Second, "per-step run length (ramp mode)")
	validate := flag.Bool("validate", false, "hard-assert async analyze results byte-identical to sync")
	restartAfter := flag.Duration("restart-after", 0, "SIGTERM + restart the spawned daemon after this much elapsed run time (0 = off)")
	seed := flag.Int64("seed", 1, "PRNG seed")
	out := flag.String("out", "-", "report destination (- = stdout)")
	flag.Parse()

	if (*addr == "") == (*bin == "") {
		fmt.Fprintln(os.Stderr, "loadgen: exactly one of -addr or -daemon is required")
		os.Exit(2)
	}
	if *restartAfter > 0 && *bin == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -restart-after needs -daemon (loadgen must own the process)")
		os.Exit(2)
	}

	// Build the circuit corpus locally: loadgen knows every node name
	// without asking the daemon.
	var corpus []*circuit
	var specs []string
	for _, spec := range strings.Split(*circuits, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		c, err := buildCircuit(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(2)
		}
		corpus = append(corpus, c)
		specs = append(specs, spec)
	}
	if len(corpus) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: empty circuit corpus")
		os.Exit(2)
	}

	// Session slots: the exclusive prefix gets unique configs; the aliased
	// tail re-POSTs an exclusive slot's config and rides its pristine
	// session through content-hash dedup.
	nAlias := int(float64(*sessions) * *reuse)
	nExcl := *sessions - nAlias
	if nExcl < 1 {
		nExcl, nAlias = 1, *sessions-1
	}
	slots := make([]*slot, 0, *sessions)
	for i := 0; i < nExcl; i++ {
		c := corpus[i%len(corpus)]
		slots = append(slots, &slot{circ: c, cfg: sessionConfig{
			Name: fmt.Sprintf("lg%d-s%d", *seed, i), Sim: c.sim, Top: 3,
		}})
	}
	for i := 0; i < nAlias; i++ {
		base := slots[i%nExcl]
		slots = append(slots, &slot{circ: base.circ, cfg: base.cfg, aliased: true})
	}
	// Aliased slots share a server session with their base: the base is
	// no longer exclusive either.
	for i := 0; i < nAlias; i++ {
		slots[i%nExcl].aliased = true
	}

	// Spawn the daemon if we own it.
	var d *daemon
	base := *addr
	if *bin != "" {
		dir := *snapshotDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "loadgen-snap-*")
			if err != nil {
				fmt.Fprintln(os.Stderr, "loadgen:", err)
				os.Exit(2)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		base = fmt.Sprintf("http://127.0.0.1:%d", *port)
		d = &daemon{bin: *bin, addr: base, args: []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", *port),
			"-max-sessions", strconv.Itoa(*maxSessions),
			"-snapshot-dir", dir,
			"-job-workers", strconv.Itoa(*jobWorkers),
			"-job-queue", strconv.Itoa(*jobQueue),
			"-chaos-job-delay", chaosDelay.String(),
			"-chaos-job-fail-every", strconv.Itoa(*chaosFail),
		}}
		if err := d.start(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
	// os.Exit skips defers: every exit below goes through fail() so a
	// managed daemon never outlives loadgen (it would hold the inherited
	// stderr pipe open and hang the caller).
	fail := func(code int) {
		if d != nil {
			d.stop()
		}
		os.Exit(code)
	}

	h := &harness{
		c:        &client{base: base, hc: &http.Client{Timeout: 90 * time.Second}},
		slots:    slots,
		ct:       &counters{},
		validate: *validate,
		async:    *asyncFrac,
		force:    *forceFrac,
	}

	// Fault injection: SIGTERM the daemon mid-run, wait out the graceful
	// drain, restart it over the same snapshot dir. Workers ride through
	// on the client's retry loop and recreate sessions over the warm
	// cache.
	restarts := 0
	var restartWG sync.WaitGroup
	if *restartAfter > 0 {
		restartWG.Add(1)
		go func() {
			defer restartWG.Done()
			time.Sleep(*restartAfter)
			fmt.Fprintln(os.Stderr, "loadgen: injecting daemon restart")
			if err := d.stop(); err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: restart stop:", err)
			}
			h.c.restartEpoch.Add(1)
			if err := d.start(); err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: restart:", err)
				fail(1)
			}
			restarts++
		}()
	}

	steps := []int{*concurrency}
	stepDur := *duration
	if *ramp != "" {
		steps = steps[:0]
		for _, s := range strings.Split(*ramp, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "loadgen: bad ramp step %q\n", s)
				fail(2)
			}
			steps = append(steps, n)
		}
		stepDur = *stepDuration
	}

	start := time.Now()
	rep := report{
		Bench: "loadgen", Seed: *seed, Circuits: specs,
		Sessions: *sessions, ReuseFrac: *reuse, AsyncFrac: *asyncFrac,
	}
	for i, c := range steps {
		res := h.step(c, stepDur, *seed+int64(i)*104729)
		rep.Steps = append(rep.Steps, res)
		fmt.Fprintf(os.Stderr,
			"loadgen: step c=%-4d ops=%-7d %.0f ops/s p50=%.2fms p99=%.2fms rejected=%d errors=%d\n",
			c, res.Ops, res.ThroughputOps,
			float64(res.AnalyzeP50Ns)/1e6, float64(res.AnalyzeP99Ns)/1e6,
			res.Rejected, res.Errors)
	}
	restartWG.Wait()

	rep.Knee = knee(rep.Steps)
	rep.Validation.Pairs = h.totPairs.Load()
	rep.Validation.Failures = h.totFails.Load()
	rep.Validation.Example = h.valExample
	rep.Restarts = restarts
	rep.RestartOps = h.totRestart.Load()
	rep.ChaosFailures = h.totChaos.Load()
	rep.CreatesParse = h.parse.Load()
	rep.CreatesWarm = h.warm.Load()
	rep.CreatesDedup = h.dedup.Load()
	rep.ElapsedS = time.Since(start).Seconds()

	enc, _ := json.MarshalIndent(rep, "", "  ")
	if *out == "-" {
		fmt.Println(string(enc))
	} else if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		fail(1)
	}

	var hardErrors int64
	for _, s := range rep.Steps {
		hardErrors += s.Errors
	}
	if rep.Validation.Failures > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d validation mismatches\n%s\n",
			rep.Validation.Failures, rep.Validation.Example)
		fail(1)
	}
	if hardErrors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d hard errors\n", hardErrors)
		fail(1)
	}
	if d != nil {
		d.stop()
	}
}
