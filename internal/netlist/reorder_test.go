package netlist

import (
	"fmt"
	"testing"

	"repro/internal/tech"
)

// reorderTestNetworks builds a spread of connectivity shapes for the
// permutation properties: a chain, a star, a disconnected forest with
// isolated nodes, and pseudo-random device soups of growing size.
func reorderTestNetworks(t *testing.T) []*Network {
	t.Helper()
	p := tech.NMOS4()
	var nets []*Network

	chain := New("chain", p)
	prev := chain.Node("in")
	chain.MarkInput(prev)
	for i := 0; i < 12; i++ {
		out := chain.Node(fmt.Sprintf("n%d", i))
		chain.AddTrans(tech.NEnh, prev, out, chain.GND(), 0, 0)
		chain.AddTrans(tech.NDep, out, chain.Vdd(), out, 0, 4*p.MinL)
		prev = out
	}
	nets = append(nets, chain)

	star := New("star", p)
	hub := star.Node("hub")
	for i := 0; i < 9; i++ {
		leaf := star.Node(fmt.Sprintf("leaf%d", i))
		star.AddTrans(tech.NEnh, hub, leaf, star.GND(), 0, 0)
	}
	nets = append(nets, star)

	forest := New("forest", p)
	for i := 0; i < 4; i++ {
		a := forest.Node(fmt.Sprintf("a%d", i))
		b := forest.Node(fmt.Sprintf("b%d", i))
		g := forest.Node(fmt.Sprintf("g%d", i))
		forest.MarkInput(g)
		forest.AddTrans(tech.NEnh, g, a, b, 0, 0)
		forest.Node(fmt.Sprintf("iso%d", i)) // no devices at all
	}
	nets = append(nets, forest)

	for _, size := range []int{20, 150} {
		nw := New(fmt.Sprintf("soup%d", size), p)
		nodes := make([]*Node, size)
		for i := range nodes {
			nodes[i] = nw.Node(fmt.Sprintf("s%d", i))
		}
		seed := uint64(0x2545F4914F6CDD1D)
		pick := func(n int) int {
			seed = seed*6364136223846793005 + 1442695040888963407
			return int(seed>>33) % n
		}
		for i := 0; i < 3*size; i++ {
			g, a, b := nodes[pick(size)], nodes[pick(size)], nodes[pick(size)]
			if a == b {
				b = nw.GND()
			}
			nw.AddTrans(tech.NEnh, g, a, b, 0, 0)
		}
		nets = append(nets, nw)
	}
	return nets
}

// TestReorderBijection is the permutation property test: for every
// network shape, the RCM layout must be a true bijection — Perm and
// InvPerm exact inverses, every row assigned to exactly one node — with
// rails pinned to the highest rows, and the per-node adjacency and flags
// read through the permutation must match the identity compilation
// entry for entry. Reordering relocates data; it must never change it.
func TestReorderBijection(t *testing.T) {
	for _, nw := range reorderTestNetworks(t) {
		t.Run(nw.Name, func(t *testing.T) {
			n := len(nw.Nodes)
			off := CompileWith(nw, CompileOptions{})
			on := CompileWith(nw, CompileOptions{Reorder: true})
			if !on.Reordered || off.Reordered {
				t.Fatalf("Reordered flags: on=%v off=%v", on.Reordered, off.Reordered)
			}
			if len(on.Perm) != n || len(on.InvPerm) != n {
				t.Fatalf("Perm/InvPerm lengths %d/%d, want %d", len(on.Perm), len(on.InvPerm), n)
			}

			// Bijection: every row hit exactly once and the maps invert.
			seen := make([]bool, n)
			for i := 0; i < n; i++ {
				row := int(on.Perm[i])
				if row < 0 || row >= n {
					t.Fatalf("Perm[%d] = %d out of range", i, row)
				}
				if seen[row] {
					t.Fatalf("row %d assigned twice (second time to node %d)", row, i)
				}
				seen[row] = true
				if int(on.InvPerm[row]) != i {
					t.Fatalf("InvPerm[Perm[%d]] = %d, not the identity", i, on.InvPerm[row])
				}
			}

			// Rails occupy the last rows, so the hot prefix is rail-free.
			rails := 0
			for _, nd := range nw.Nodes {
				if nd.IsRail() {
					rails++
				}
			}
			for i, nd := range nw.Nodes {
				if nd.IsRail() && int(on.Perm[i]) < n-rails {
					t.Errorf("rail %s at row %d, want >= %d", nd.Name, on.Perm[i], n-rails)
				}
			}

			// Adjacency and flags preserved: per node (not per row), the
			// reordered compilation must serve the identical packed gate
			// refs and flag bits the identity compilation serves.
			for i := range nw.Nodes {
				w, g := off.Gates(i), on.Gates(i)
				if len(w) != len(g) {
					t.Fatalf("node %d: %d gate refs reordered, want %d", i, len(g), len(w))
				}
				for j := range w {
					if w[j] != g[j] {
						t.Errorf("node %d: gate ref %d = %d, want %d", i, j, g[j], w[j])
					}
				}
				or, ir := int(on.Perm[i]), i
				if on.IsRail[or] != off.IsRail[ir] || on.IsInput[or] != off.IsInput[ir] ||
					on.Precharged[or] != off.Precharged[ir] || on.HasTerms[or] != off.HasTerms[ir] {
					t.Errorf("node %d: flags changed under reordering", i)
				}
			}

			// With reorder off the layout is the identity.
			for i := 0; i < n; i++ {
				if off.Perm[i] != int32(i) || off.InvPerm[i] != int32(i) {
					t.Fatalf("identity layout broken at %d: perm=%d inv=%d",
						i, off.Perm[i], off.InvPerm[i])
				}
			}
		})
	}
}

// TestReorderRegions pins the fence-partition properties: region labels
// are identical with reordering on and off (the partition is keyed by
// node index, not row), ids are dense in [0, NumRegions), rails are
// singletons, and the two channel terminals of any internal device share
// a region — the invariant the drain's span fences rest on.
func TestReorderRegions(t *testing.T) {
	for _, nw := range reorderTestNetworks(t) {
		t.Run(nw.Name, func(t *testing.T) {
			off := CompileWith(nw, CompileOptions{})
			on := CompileWith(nw, CompileOptions{Reorder: true})
			if off.NumRegions != on.NumRegions {
				t.Fatalf("NumRegions %d reordered vs %d identity", on.NumRegions, off.NumRegions)
			}
			count := make([]int, on.NumRegions)
			for i := range nw.Nodes {
				if on.Region[i] != off.Region[i] {
					t.Fatalf("node %d: region %d reordered vs %d identity", i, on.Region[i], off.Region[i])
				}
				r := int(on.Region[i])
				if r < 0 || r >= on.NumRegions {
					t.Fatalf("node %d: region %d out of [0,%d)", i, r, on.NumRegions)
				}
				count[r]++
			}
			for r, c := range count {
				if c == 0 {
					t.Errorf("region %d empty; ids must be dense", r)
				}
			}
			for _, nd := range nw.Nodes {
				if nd.IsRail() && count[on.Region[nd.Index]] != 1 {
					t.Errorf("rail %s shares region %d with %d other nodes",
						nd.Name, on.Region[nd.Index], count[on.Region[nd.Index]]-1)
				}
			}
			for _, tx := range nw.Trans {
				a, b := tx.A, tx.B
				if a.IsRail() || b.IsRail() || a == b {
					continue
				}
				if on.Region[a.Index] != on.Region[b.Index] {
					t.Errorf("channel edge %s-%s crosses regions %d/%d",
						a.Name, b.Name, on.Region[a.Index], on.Region[b.Index])
				}
			}
		})
	}
}
