package main

import (
	"os"
	"strings"
	"testing"
)

// testdataPath points at the repository-level testdata directory.
const testdataPath = "../../testdata/"

func TestRunDLatch(t *testing.T) {
	var out strings.Builder
	cfg := config{
		simFile: testdataPath + "dlatch.sim",
		// Analytic tables keep the test fast and hermetic.
		techName: "nmos-4u", model: "slope", tables: "analytic",
		rise: "d", fall: "d", fix: "wr=1",
		inSlope: 1e-9, top: 3,
	}
	v, err := run(cfg, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if v != 0 {
		t.Errorf("violations without a deadline should be 0, got %d", v)
	}
	rep := out.String()
	for _, want := range []string{"crystal: ", "timing report", "path 1:", "out"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestRunWithDeadline(t *testing.T) {
	var out strings.Builder
	cfg := config{
		simFile:  testdataPath + "mux2-cmos.sim",
		techName: "cmos-3u", model: "rc", tables: "analytic",
		inSlope: 1e-9, top: 3, deadline: 1e-12, // everything violates
	}
	v, err := run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0 {
		t.Errorf("1 ps deadline should violate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "slack report") {
		t.Error("missing slack report")
	}
}

func TestRunERCFlag(t *testing.T) {
	var out strings.Builder
	cfg := config{
		simFile:  testdataPath + "dynamic-stage.sim",
		techName: "nmos-4u", model: "lumped", tables: "analytic",
		inSlope: 1e-9, top: 1, runERC: true,
		fix: "phi=0,b=1", rise: "a",
	}
	if _, err := run(cfg, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "electrical rules") {
		t.Error("missing ERC section")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []config{
		{},                    // no sim file
		{simFile: "nope.sim"}, // missing file
		{simFile: testdataPath + "dlatch.sim", techName: "ge-5"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "mystery"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "analytic", model: "psychic"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "analytic", model: "rc", fix: "wr"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "analytic", model: "rc", fix: "wr=7"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "analytic", model: "rc", fix: "ghost=1"},
		{simFile: testdataPath + "dlatch.sim", techName: "nmos-4u", tables: "analytic", model: "rc", rise: "ghost"},
	}
	for i, cfg := range cases {
		var out strings.Builder
		if _, err := run(cfg, &out); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestGoldenDLatchReport(t *testing.T) {
	// Exact-output regression guard for the report format and the
	// analytic-table timing numbers. Regenerate with:
	//   go run ./cmd/crystal -sim testdata/dlatch.sim -tables analytic \
	//     -model slope -rise d -fall d -fix wr=1 -top 2 \
	//     > testdata/golden/dlatch-report.txt
	want, err := os.ReadFile(testdataPath + "golden/dlatch-report.txt")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	cfg := config{
		simFile:  testdataPath + "dlatch.sim",
		techName: "nmos-4u", model: "slope", tables: "analytic",
		rise: "d", fall: "d", fix: "wr=1",
		inSlope: 1e-9, top: 2,
	}
	if _, err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// The sim file path appears in the report; normalize it.
	got = strings.ReplaceAll(got, testdataPath, "testdata/")
	if got != string(want) {
		t.Errorf("golden mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Errorf("empty = %v", got)
	}
	if got := splitList(" a, b ,,c "); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("got %v", got)
	}
}
